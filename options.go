package repro

import (
	"fmt"

	"repro/internal/sketchio"
)

// Defaults applied by New when the corresponding option is omitted —
// the shape the paper's evaluation uses throughout §5.1.
const (
	DefaultWords = 4096
	DefaultDepth = 9
	DefaultSeed  = 1
)

// Option configures New and NewSharded. Options follow the functional-
// options idiom so the constructor signature stays stable as knobs are
// added.
type Option func(*newConfig)

type newConfig struct {
	dim   int
	words int
	depth int
	seed  int64
}

// WithDim sets n, the dimension of the summarized frequency vector.
// Required.
func WithDim(n int) Option { return func(c *newConfig) { c.dim = n } }

// WithWords sets s, the per-row word budget (the paper's c_s·k: the
// bias-aware sketches split it into buckets plus bias-estimator
// samples, the baselines use it as buckets per row). Total sketch size
// is (depth+1)·words for every algorithm. Default 4096.
func WithWords(s int) Option { return func(c *newConfig) { c.words = s } }

// WithDepth sets d, the number of independent repetitions (Θ(log n)
// in the theorems; 9 in §5.1). Default 9.
func WithDepth(d int) Option { return func(c *newConfig) { c.depth = d } }

// WithSeed sets the seed deriving every hash function and sampled
// position. Two sketches merge — and a serialized sketch reloads —
// only under the same seed: this is the paper's shared-randomness
// protocol (§5.5 footnote 4). Default 1.
func WithSeed(seed int64) Option { return func(c *newConfig) { c.seed = seed } }

func buildConfig(opts []Option) (newConfig, error) {
	cfg := newConfig{words: DefaultWords, depth: DefaultDepth, seed: DefaultSeed}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dim <= 0 {
		return cfg, fmt.Errorf("repro: WithDim is required and must be positive, got %d", cfg.dim)
	}
	if cfg.words <= 0 {
		return cfg, fmt.Errorf("repro: WithWords must be positive, got %d", cfg.words)
	}
	if cfg.depth <= 0 {
		return cfg, fmt.Errorf("repro: WithDepth must be positive, got %d", cfg.depth)
	}
	if cfg.seed < 0 {
		return cfg, fmt.Errorf("repro: WithSeed must be non-negative (the wire format carries it unsigned), got %d", cfg.seed)
	}
	// Enforce the wire format's descriptor bounds at construction time,
	// so every sketch New builds can be marshaled AND unmarshaled — a
	// site must never produce packets the coordinator rejects.
	desc := sketchio.Desc{N: cfg.dim, S: cfg.words, D: cfg.depth, Seed: cfg.seed}
	if err := desc.Validate(); err != nil {
		return cfg, fmt.Errorf("repro: configuration outside wire-format bounds (dim ≤ 2^26, 4 ≤ words ≤ 2^22, depth ≤ 64, words·depth ≤ 2^24): %w", err)
	}
	return cfg, nil
}
