package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
)

// Defaults applied by New when the corresponding option is omitted —
// the shape the paper's evaluation uses throughout §5.1.
const (
	DefaultWords = 4096
	DefaultDepth = 9
	DefaultSeed  = 1
)

// DefaultPanes is the window length NewWindowed uses when WithPanes is
// omitted.
const DefaultPanes = 8

// MaxPanes bounds WithPanes: a window holds at most 2^16 panes (each
// pane is a full sketch replica — beyond this the "ring of sketches"
// design is the wrong tool and the value is almost certainly a unit
// mistake).
const MaxPanes = 1 << 16

// ErrInvalidOption is the typed error every constructor wraps when a
// functional option carries an unusable value — zero or negative where
// a positive count is required, a value beyond the wire-format bounds,
// a nil clock. Configuration is never silently clamped: check with
// errors.Is(err, repro.ErrInvalidOption).
var ErrInvalidOption = errors.New("repro: invalid option")

// Option configures New, NewSharded, and NewWindowed. Options follow
// the functional-options idiom so the constructor signatures stay
// stable as knobs are added.
type Option func(*newConfig)

type newConfig struct {
	dim     int
	words   int
	depth   int
	seed    int64
	backend Backend
	hash    Hashing

	// Sliding-window knobs, consumed by NewWindowed only (New and
	// NewSharded validate but otherwise ignore them).
	panes     int
	paneWidth time.Duration
	clock     func() time.Time
	clockSet  bool
}

// WithDim sets n, the dimension of the summarized frequency vector.
// Required.
func WithDim(n int) Option { return func(c *newConfig) { c.dim = n } }

// WithWords sets s, the per-row word budget (the paper's c_s·k: the
// bias-aware sketches split it into buckets plus bias-estimator
// samples, the baselines use it as buckets per row). Total sketch size
// is (depth+1)·words for every algorithm. Default 4096.
func WithWords(s int) Option { return func(c *newConfig) { c.words = s } }

// WithDepth sets d, the number of independent repetitions (Θ(log n)
// in the theorems; 9 in §5.1). Default 9.
func WithDepth(d int) Option { return func(c *newConfig) { c.depth = d } }

// WithSeed sets the seed deriving every hash function and sampled
// position. Two sketches merge — and a serialized sketch reloads —
// only under the same seed: this is the paper's shared-randomness
// protocol (§5.5 footnote 4). Default 1.
func WithSeed(seed int64) Option { return func(c *newConfig) { c.seed = seed } }

// WithBackend selects the counter-plane storage backend New builds the
// sketch on. BackendDense (the default) is the flat float64 table every
// prior release used — bit-identical behavior, allocation-free hot
// paths. BackendCompressed stores the counters in a Counter Braids
// layered structure at a fraction of the memory, with the CB
// constraints: insert-only (negative or fractional updates return
// ErrInsertOnly) and decode-at-query (a query past the braid's load
// threshold returns ErrDecodeBudget). Not every algorithm supports
// every backend — see Backends; unsupported pairs return
// ErrBackendUnsupported from New.
//
// BackendMmap cannot be requested here: a memory-mapped sketch is
// opened from a checkpoint file via OpenMmap, not built empty.
func WithBackend(b Backend) Option { return func(c *newConfig) { c.backend = b } }

// WithHashing selects the hash family the sketch's rows draw from.
// HashPairwise (the default) is the Carter–Wegman pairwise family over
// the Mersenne prime 2^61−1 — bit-identical to every prior release and
// the construction the paper's proofs assume. HashTabulation is simple
// tabulation hashing (Pǎtraşcu–Thorup): 3-wise independent, ~16 KiB of
// lookup tables per hash function, and substantially faster per update
// because it replaces the Mersenne reduction's hardware division with
// table lookups and a multiply-shift range reduction. Only the table
// sketches support it — see Hashings; unsupported pairs return
// ErrHashUnsupported from New. The family is recorded in checkpoints,
// and two sketches merge only under the same family.
func WithHashing(h Hashing) Option { return func(c *newConfig) { c.hash = h } }

// WithPanes sets the sliding-window length in panes for NewWindowed:
// the open pane absorbing writes plus panes-1 closed ones, so queries
// cover the last panes pane-widths of traffic. Must be in
// [1, MaxPanes]. Default DefaultPanes. Ignored by New and NewSharded.
func WithPanes(panes int) Option { return func(c *newConfig) { c.panes = panes } }

// WithPaneWidth sets the pane duration for clock-driven rotation in
// NewWindowed: every update or query first folds in the panes the
// clock says have elapsed. Zero (the default) means panes rotate only
// through explicit Advance calls. Must be non-negative. Ignored by New
// and NewSharded.
func WithPaneWidth(d time.Duration) Option {
	return func(c *newConfig) { c.paneWidth = d }
}

// WithClock injects the clock WithPaneWidth-driven rotation consults,
// so tests control pane boundaries deterministically. Must be non-nil.
// Default time.Now. Ignored by New and NewSharded.
func WithClock(now func() time.Time) Option {
	return func(c *newConfig) { c.clock = now; c.clockSet = true }
}

func buildConfig(opts []Option) (newConfig, error) {
	cfg := newConfig{
		words: DefaultWords, depth: DefaultDepth, seed: DefaultSeed,
		panes: DefaultPanes,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dim <= 0 {
		return cfg, fmt.Errorf("%w: WithDim is required and must be positive, got %d", ErrInvalidOption, cfg.dim)
	}
	if cfg.words <= 0 {
		return cfg, fmt.Errorf("%w: WithWords must be positive, got %d", ErrInvalidOption, cfg.words)
	}
	if cfg.depth <= 0 {
		return cfg, fmt.Errorf("%w: WithDepth must be positive, got %d", ErrInvalidOption, cfg.depth)
	}
	if cfg.seed < 0 {
		return cfg, fmt.Errorf("%w: WithSeed must be non-negative (the wire format carries it unsigned), got %d", ErrInvalidOption, cfg.seed)
	}
	if cfg.panes <= 0 {
		return cfg, fmt.Errorf("%w: WithPanes must be positive, got %d", ErrInvalidOption, cfg.panes)
	}
	if cfg.panes > MaxPanes {
		return cfg, fmt.Errorf("%w: WithPanes must be at most %d (each pane is a full sketch replica), got %d", ErrInvalidOption, MaxPanes, cfg.panes)
	}
	if cfg.paneWidth < 0 {
		return cfg, fmt.Errorf("%w: WithPaneWidth must be non-negative, got %v", ErrInvalidOption, cfg.paneWidth)
	}
	if cfg.clockSet && cfg.clock == nil {
		return cfg, fmt.Errorf("%w: WithClock must be non-nil", ErrInvalidOption)
	}
	switch cfg.hash {
	case sketch.HashPairwise, sketch.HashTabulation:
	default:
		return cfg, fmt.Errorf("%w: unknown hashing family %v", ErrInvalidOption, cfg.hash)
	}
	switch cfg.backend {
	case sketch.BackendDense, sketch.BackendCompressed, sketch.BackendTiled:
	case sketch.BackendMmap:
		return cfg, fmt.Errorf("%w: WithBackend(BackendMmap) — mmap sketches are opened from a checkpoint file via OpenMmap, not built empty", ErrInvalidOption)
	default:
		return cfg, fmt.Errorf("%w: unknown backend %v", ErrInvalidOption, cfg.backend)
	}
	// Enforce the wire format's descriptor bounds at construction time,
	// so every sketch New builds can be marshaled AND unmarshaled — a
	// site must never produce packets the coordinator rejects.
	desc := codec.Desc{N: cfg.dim, S: cfg.words, D: cfg.depth, Seed: cfg.seed, Hash: cfg.hash}
	if err := desc.Validate(); err != nil {
		return cfg, fmt.Errorf("%w: configuration outside wire-format bounds (dim ≤ 2^26, 4 ≤ words ≤ 2^22, depth ≤ 64, words·depth ≤ 2^24): %w", ErrInvalidOption, err)
	}
	return cfg, nil
}

// shape is the registry construction shape the options describe.
func (c newConfig) shape() registry.Shape {
	return registry.Shape{N: c.dim, S: c.words, D: c.depth, Seed: c.seed, Hash: c.hash}
}
