// Package repro is a from-scratch Go reproduction of "Bias-Aware
// Sketches" (Jiecao Chen and Qin Zhang, PVLDB 10(9), VLDB 2017) — and
// a production-shaped library around it.
//
// The paper's contribution — the ℓ1-S/R and ℓ2-S/R bias-aware linear
// sketches with the guarantee
//
//	‖x̂ − x‖∞ = O(k^{-1/p}) · min_β Err_p^k(x − β),  p ∈ {1, 2},
//
// — lives in internal/core. Every baseline the paper evaluates against
// (Count-Min, Count-Median, Count-Sketch, CM-CU, CML-CU) and every
// related system it discusses (Deng–Rafiei, BOMP, Counter Braids) is
// implemented alongside, with the streaming and distributed execution
// substrates, synthetic equivalents of the seven evaluation datasets,
// and a benchmark harness (cmd/biasrepro) that regenerates every
// figure of the paper's §5.
//
// # Public API
//
// This package is the facade over all of it. One registry constructs
// every algorithm by canonical name through a single functional-
// options constructor:
//
//	sk, err := repro.New("l2sr",
//	    repro.WithDim(1_000_000),  // n, required
//	    repro.WithWords(16_384),   // s, per-row word budget
//	    repro.WithDepth(9),        // d, independent repetitions
//	    repro.WithSeed(42),        // shared-randomness seed
//	)
//
// Algorithms: l1sr, l2sr, l1mean, l2mean, countmin, countmedian,
// countsketch, cmcu, cmlcu, dengrafiei, exact (the ground-truth dense
// vector); the paper's legend names ("l2-S/R", "CM-CU", …) are
// accepted aliases. All follow the paper's equal-words protocol, so at
// one (words, depth) setting every algorithm costs the same memory.
//
// Capabilities are layered as interfaces — Sketch (update/query),
// BatchUpdater (adds batched ingestion), Linear (adds Merge),
// Serializable (adds the wire format), Biased (adds the β̂ estimate) —
// and as package-level helpers returning typed errors where a
// capability is absent: Merge (ErrNotLinear on the conservative-update
// sketches), Marshal/Unmarshal (the self-describing wire format of
// §5.5's shared-randomness protocol), Recover, Bias, Scan and TopK
// (deviation heavy hitters), NewSharded (contention-free concurrent
// ingestion), and NewRange (dyadic range sums and quantiles).
//
// # Batched ingestion
//
// High-throughput pipelines feed updates in batches rather than one
// stream element at a time. UpdateBatch(sk, idx, deltas) applies
// x[idx[j]] += deltas[j] for every j through the sketch's native
// batched path: a row-major traversal evaluates each row's hash over
// the whole batch (one Carter–Wegman coefficient load per row, see
// internal/hashing's HashMany) and keeps each counter row cache-hot
// while it absorbs every element. The result is bit-identical to the
// element-wise Update loop — batching is a throughput knob, never a
// semantic change — and batches of a few hundred to a few thousand
// elements give 1.2–2× single-threaded speedups depending on the
// algorithm (see README.md for measured numbers). Sharded exposes the
// same entry point with one shard-lock acquisition per batch.
//
// # Batched queries and snapshot serving
//
// The read side mirrors the write side. QueryBatch(sk, idx, out)
// answers a batch of point queries through the same row-major
// traversal — each row's hash and sign coefficients load once per
// batch, the row's buckets are gathered cache-hot, and the per-element
// min/median/bias-correction step runs over the gathered values —
// with results bit-identical to the element-wise Query loop. The
// min-answer sketches gain ~1.5–1.7×, the median-answer ones ~1.1–1.4×
// (the depth-d median is inherently per-element); see README.md for
// measured numbers. Recover, TopK, and Scan use this path internally.
// Batched query scratch is borrowed from a sync.Pool per call — zero
// steady-state allocations, no state shared between calls — so
// concurrent QueryBatch calls against a sketch that is no longer
// being written are safe.
//
// Sharded serves reads from snapshots: every shard carries an epoch
// bumped per write, Refresh freezes only the shards that changed and
// atomically publishes an immutable merged replica, and Snapshot
// returns the published replica with zero shard locks — readers never
// block writers and never see a torn merge, at the cost of reading a
// view that is only as fresh as the last Refresh. The snapshot exposes
// the full read surface (Query, QueryBatch, Bias, TopK, Scan, Stale)
// plus Owned, which clones it into a mutable facade sketch.
//
// # Wire format and checkpoint/restore
//
// Serialization is a streaming codec (wire format v2): versioned,
// length-prefixed, section-based containers over io.Writer/io.Reader.
// Encode/Decode (and the buffer forms Marshal/Unmarshal) carry single
// sketches; Sharded.Checkpoint/RestoreSharded,
// Windowed.Checkpoint/RestoreWindowed, and
// RangeSketch.Checkpoint/RestoreRange carry the composite serving
// structures — shard states with their epochs, pane rings with their
// rotation sequences and clock-independent pane width, dyadic level
// stacks (exact coarse levels included). A restored structure answers
// Query/QueryBatch/TopK bit-identically to the checkpointed original
// and keeps ingesting as its exact continuation; checkpoints taken
// under concurrent writers are consistent (the Merged guarantee).
// Legacy v1 payloads written by older builds still decode; writers
// emit v2 only. Unmarshal rejects trailing bytes with the typed
// ErrTrailingData; all decode paths bound every length and count
// against the validated descriptor before allocating, so hostile
// bytes error rather than panic or exhaust memory.
//
// # Storage backends
//
// The counter plane behind every table-backed algorithm is pluggable:
// WithBackend selects how the rows are stored without changing what
// they mean. BackendDense (the default) keeps plain float64 rows —
// writable, zero-alloc, bit-identical to every prior release.
// BackendCompressed stores the plane as a Counter Braids structure:
// insert-only (negative or fractional deltas fail with the typed
// ErrInsertOnly), decoded at query time (an overloaded braid fails
// with ErrDecodeBudget rather than answering wrong), and worth it
// when resident size dominates — Words reports the smaller footprint.
// BackendMmap is read-only serving: WriteSketchFile writes an
// 8-byte-aligned wire-v2 checkpoint atomically, OpenMmap maps it and
// answers queries directly from the mapped cells — time-to-first-query
// is O(1) in the sketch size, writes fail with ErrReadOnly. Backends
// are a storage choice, not a sketch identity: a dense and an mmap
// copy of the same sketch merge and answer identically, DecodeWith
// restores a checkpoint onto a chosen backend, and Backends reports
// which backends an algorithm supports (sign-carrying and
// conservative-update planes reject BackendCompressed with
// ErrBackendUnsupported). Counter Braids itself is also a first-class
// registry algorithm ("counterbraids", legend alias "CB") with the
// same insert-only, decode-at-query contract. BackendTiled is a
// cache-blocked variant of the dense plane — buckets grouped into
// 64-wide tiles with all d rows of a tile contiguous, so a point
// operation touches one tile column instead of d scattered rows —
// with bit-identical answers; the linear-add table sketches and
// countsketch support it.
//
// # Hash families
//
// The row hashes behind every table sketch are pluggable the same
// way: WithHashing selects the family without changing the
// algorithm's guarantees. HashPairwise (the default) is the paper's
// Carter–Wegman construction over the Mersenne prime 2^61−1 — every
// sketch built without the option is bit-identical to every prior
// release. HashTabulation is simple tabulation (Pǎtraşcu–Thorup):
// each hash function carries eight 256-entry lookup tables (~16 KiB,
// ~2 KiB for a sign function), is 3-wise independent — strictly more
// than the pairwise analysis needs, so every (ε, δ) bound carries
// over unchanged and the accuracy harness runs under both families —
// and replaces the Mersenne reduction's hardware division with table
// lookups plus a multiply-shift range reduction. The ablation in
// BENCH_10.json quantifies the trade: tabulation runs the headline
// BenchmarkUpdateBatch/BenchmarkQueryBatch entries 2–5× faster
// than the pairwise baseline of BENCH_9.json (the batched kernels
// also got branchless median networks, signs, and min-folds, which
// the /pairwise sub-entries inherit), at the cost of the
// table footprint and estimates that differ numerically (different
// randomness, same bounds) from the pairwise draw. The family is
// part of the sketch's identity: checkpoints record it (wire v2 only
// — EncodeV1 refuses with ErrHashUnsupported), merges require both
// sides to share family and seed, and Hashings reports which
// families an algorithm supports (the bias-aware S/R schemes pin the
// paper's pairwise construction).
//
// # Sliding windows
//
// NewWindowed runs any linear algorithm over a pane-based sliding
// window, the shape monitoring traffic needs: point queries cover
// only the last WithPanes panes of the stream, and expired panes are
// forgotten. The open pane is a sharded sketch (multi-writer,
// contention-free), closed panes are immutable, and rotation —
// explicit Advance or clock-driven via WithPaneWidth, with WithClock
// injectable for tests — is a merge: the open pane freezes into the
// ring and panes older than the window fall out. Reads come from a
// cached merged replica (closed-pane sum + open-pane snapshot)
// published through an atomic pointer, so queries against a fresh
// window take zero locks; TopK serves windowed deviation heavy
// hitters the same way. Non-linear algorithms return ErrNotLinear.
//
// # Serving
//
// cmd/sketchd serves the stack over HTTP (stdlib net/http): named
// sketches per tenant — plain, sharded, or windowed, on any supported
// backend — created from a JSON spec mirroring the facade options,
// ingested as wire-v2 batch frames (EncodeBatch client-side,
// DecodeBatch's hostile-input validation server-side), and queried
// through the same point/range/top-k paths as the library. A
// background scheduler checkpoints every sketch atomically to a data
// directory and the server restores them on boot; SIGTERM drains —
// in-flight requests finish, one final checkpoint lands — so a
// restart answers bit-identically to the process that was killed.
// Per-tenant in-flight caps shed overload with 429 rather than
// queueing, and a panicking handler is a 500, not a crash. The logic
// lives in internal/server; the binary is a thin flag-parsing skin.
//
// # Continuous distributed monitoring
//
// Monitor runs §1's distributed model continuously: sites ingest
// local streams and synchronize through a fan-in-k aggregation tree,
// each hop shipping a wire-v2 delta frame that carries only the
// replica shards whose epoch advanced since the last acknowledged
// sync — quiet sites cost nothing in steady state, and MonitorReport
// ledgers the realized communication against the paper's theoretical
// sites × sketch-size per-round budget (§5.5). Interior nodes cache
// per-child shard states and aggregate by linearity, so the
// coordinator's answers are bit-identical to a single sketch fed
// every update, even when sites crash mid-run and rejoin from their
// last checkpoint with one full-state resynchronization frame.
//
// # Accuracy guarantees under test
//
// Beyond bit-identity (batch ≡ element-wise, snapshot ≡ sequential,
// window ≡ live-pane recount), the test suite pins the estimates to
// the paper's theory: an accuracy-bound harness drives a seeded zipf
// workload through every registry algorithm and asserts observed
// point-query error sits inside the algorithm's (ε, δ) guarantee,
// with the bias-aware bounds taken relative to the residual x − β̂.
// Every constructor option is validated with the typed
// ErrInvalidOption — out-of-range values error, never silently clamp.
//
// # Static analysis & invariants
//
// The invariants above are enforced mechanically by cmd/sketchlint,
// the repository's own go/analysis multichecker (four analyzers under
// internal/analysis, run in CI and via
//
//	go vet -vettool="$(go run ./cmd/sketchlint -print-path)" ./...
//
// ): lockdefer requires every Lock/RLock in the concurrency layers to
// pair with a deferred unlock in the same function; hotpathalloc
// requires functions tagged with a "sketch:hotpath" doc-comment
// directive to contain no allocating constructs — the per-element
// update/query paths and the pooled batch kernels carry the tag, and
// testing.AllocsPerRun gates in the test suite pin the same paths to
// zero allocations at runtime; boundedmake requires every decode-side
// make in internal/codec to be dominated by a bound check against the
// validated descriptor; typederr requires exported functions and
// constructors to return typed or %w-wrapped errors and forbids panic
// in the codec. The suite runs green over the whole module with zero
// suppressions, and BENCH_10.json is the checked-in ns/op + allocs/op
// baseline these contracts protect (cmd/benchjson -diff compares two
// baselines and fails past a regression threshold).
//
// The subpackages repro/workload (the §5.1 synthetic datasets) and
// repro/bench (the figure harness) complete the public surface;
// everything under internal/ is an implementation detail.
//
// Start with README.md for usage; the runnable entry points are the
// examples/ programs and the commands under cmd/.
package repro
