// Package repro is a from-scratch Go reproduction of "Bias-Aware
// Sketches" (Jiecao Chen and Qin Zhang, PVLDB 10(9), VLDB 2017).
//
// The paper's contribution — the ℓ1-S/R and ℓ2-S/R bias-aware linear
// sketches with the guarantee
//
//	‖x̂ − x‖∞ = O(k^{-1/p}) · min_β Err_p^k(x − β),  p ∈ {1, 2},
//
// — lives in internal/core. Every baseline the paper evaluates against
// (Count-Min, Count-Median, Count-Sketch, CM-CU, CML-CU) and every
// related system it discusses (Deng–Rafiei, BOMP, Counter Braids) is
// implemented alongside, with the streaming and distributed execution
// substrates, synthetic equivalents of the seven evaluation datasets,
// and a benchmark harness (internal/bench, cmd/biasrepro) that
// regenerates every figure of the paper's §5.
//
// Start with README.md for usage, DESIGN.md for the system inventory
// and dataset substitutions, and EXPERIMENTS.md for paper-versus-
// measured results. The runnable entry points are the examples/
// programs and the three commands under cmd/.
package repro
