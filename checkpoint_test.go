package repro_test

// Checkpoint/restore property layer at the public API: a restored
// Sharded / Windowed / RangeSketch must answer Query / QueryBatch /
// TopK bit-identically to the live original — not approximately, bit
// for bit, across every linear registry algorithm — and must keep
// ingesting as the original's exact continuation. Plus the wire-level
// contracts: v1 payloads still decode, trailing garbage is a typed
// error, wrong-kind containers are named in the error.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/codec"
)

// linearAlgos is every registry algorithm Sharded/Windowed accept —
// the paper's four bias-aware sketches and four linear baselines.
var linearAlgos = []string{
	"l1sr", "l2sr", "l1mean", "l2mean",
	"countmin", "countmedian", "countsketch", "dengrafiei",
}

func shapeOpts() []repro.Option {
	return []repro.Option{
		repro.WithDim(600), repro.WithWords(32), repro.WithDepth(3), repro.WithSeed(5),
	}
}

// ingestSharded drives a deterministic multi-slot stream through both
// element and batched paths.
func ingestSharded(t *testing.T, s *repro.Sharded, from, to int) {
	t.Helper()
	idx := make([]int, 0, 64)
	deltas := make([]float64, 0, 64)
	for u := from; u < to; u++ {
		if u%3 == 0 {
			s.Update(u%4, (u*u+7)%600, float64(1+u%4))
			continue
		}
		idx = append(idx, (u*13+5)%600)
		deltas = append(deltas, float64(1+u%6))
		if len(idx) == 64 {
			if err := s.UpdateBatch(u%4, idx, deltas); err != nil {
				t.Fatal(err)
			}
			idx, deltas = idx[:0], deltas[:0]
		}
	}
	if len(idx) > 0 {
		if err := s.UpdateBatch(0, idx, deltas); err != nil {
			t.Fatal(err)
		}
	}
}

// identicalSharded asserts bit-identical read behavior across the full
// query surface.
func identicalSharded(t *testing.T, algo string, a, b *repro.Sharded) {
	t.Helper()
	for i := 0; i < 600; i += 7 {
		x, err := a.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		y, err := b.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("%s: query %d: live %v restored %v", algo, i, x, y)
		}
	}
	idx := make([]int, 600)
	for i := range idx {
		idx[i] = i
	}
	xs, ys := make([]float64, 600), make([]float64, 600)
	if err := a.QueryBatch(idx, xs); err != nil {
		t.Fatal(err)
	}
	if err := b.QueryBatch(idx, ys); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("%s: batch query %d: live %v restored %v", algo, i, xs[i], ys[i])
		}
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ba, errA := sa.Bias()
	bb, errB := sb.Bias()
	if (errA == nil) != (errB == nil) || ba != bb {
		t.Fatalf("%s: bias: live (%v,%v) restored (%v,%v)", algo, ba, errA, bb, errB)
	}
	ka, errA := sa.TopK(10)
	kb, errB := sb.TopK(10)
	if (errA == nil) != (errB == nil) || len(ka) != len(kb) {
		t.Fatalf("%s: topk: live (%d,%v) restored (%d,%v)", algo, len(ka), errA, len(kb), errB)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: topk[%d]: live %+v restored %+v", algo, i, ka[i], kb[i])
		}
	}
}

func TestShardedCheckpointRestoreBitIdentical(t *testing.T) {
	for _, algo := range linearAlgos {
		t.Run(algo, func(t *testing.T) {
			live, err := repro.NewSharded(4, algo, shapeOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			ingestSharded(t, live, 0, 5000)
			var buf bytes.Buffer
			if err := live.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := repro.RestoreSharded(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Algo() != live.Algo() || restored.Dim() != live.Dim() ||
				restored.Shards() != live.Shards() || restored.Words() != live.Words() {
				t.Fatalf("identity lost: %s/%d/%d vs %s/%d/%d",
					restored.Algo(), restored.Dim(), restored.Shards(),
					live.Algo(), live.Dim(), live.Shards())
			}
			identicalSharded(t, algo, live, restored)

			// The restored instance is a true continuation: identical
			// further ingestion keeps the two bit-identical.
			ingestSharded(t, live, 5000, 7000)
			ingestSharded(t, restored, 5000, 7000)
			identicalSharded(t, algo, live, restored)

			// And it re-checkpoints to the identical bytes.
			var again, ref bytes.Buffer
			if err := restored.Checkpoint(&again); err != nil {
				t.Fatal(err)
			}
			if err := live.Checkpoint(&ref); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), ref.Bytes()) {
				t.Fatalf("%s: re-checkpoint diverged (%d vs %d bytes)", algo, again.Len(), ref.Len())
			}
		})
	}
}

// ingestWindowed drives both windows through the same stream with the
// same rotations.
func ingestWindowed(t *testing.T, ws []*repro.Windowed, from, to, rotateEvery int) {
	t.Helper()
	for u := from; u < to; u++ {
		for _, w := range ws {
			if err := w.Update(u%3, (u*u+11)%600, float64(1+u%5)); err != nil {
				t.Fatal(err)
			}
		}
		if u%rotateEvery == rotateEvery-1 {
			for _, w := range ws {
				if err := w.Advance(1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func identicalWindowed(t *testing.T, algo string, a, b *repro.Windowed) {
	t.Helper()
	if a.Live() != b.Live() || a.Panes() != b.Panes() || a.PaneWidth() != b.PaneWidth() {
		t.Fatalf("%s: shape: live %d/%d/%v restored %d/%d/%v",
			algo, a.Live(), a.Panes(), a.PaneWidth(), b.Live(), b.Panes(), b.PaneWidth())
	}
	idx := make([]int, 600)
	for i := range idx {
		idx[i] = i
	}
	xs, ys := make([]float64, 600), make([]float64, 600)
	if err := a.QueryBatch(idx, xs); err != nil {
		t.Fatal(err)
	}
	if err := b.QueryBatch(idx, ys); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("%s: query %d: live %v restored %v", algo, i, xs[i], ys[i])
		}
	}
	ka, errA := a.TopK(8)
	kb, errB := b.TopK(8)
	if (errA == nil) != (errB == nil) || len(ka) != len(kb) {
		t.Fatalf("%s: topk: live (%d,%v) restored (%d,%v)", algo, len(ka), errA, len(kb), errB)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: topk[%d]: live %+v restored %+v", algo, i, ka[i], kb[i])
		}
	}
}

func TestWindowedCheckpointRestoreBitIdentical(t *testing.T) {
	for _, algo := range linearAlgos {
		t.Run(algo, func(t *testing.T) {
			opts := append(shapeOpts(), repro.WithPanes(4))
			live, err := repro.NewWindowed(3, algo, opts...)
			if err != nil {
				t.Fatal(err)
			}
			// Enough rotations that panes have expired before the
			// checkpoint: the full ring machinery is in the state.
			ingestWindowed(t, []*repro.Windowed{live}, 0, 3500, 500)
			var buf bytes.Buffer
			if err := live.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := repro.RestoreWindowed(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Algo() != live.Algo() || restored.Dim() != live.Dim() {
				t.Fatalf("identity lost: %s/%d vs %s/%d",
					restored.Algo(), restored.Dim(), live.Algo(), live.Dim())
			}
			identicalWindowed(t, algo, live, restored)

			// Continue both through more traffic and rotations —
			// including expiry of panes that predate the checkpoint.
			ingestWindowed(t, []*repro.Windowed{live, restored}, 3500, 6000, 500)
			identicalWindowed(t, algo, live, restored)
		})
	}
}

func TestRangeCheckpointRestoreBitIdentical(t *testing.T) {
	const n = 900
	factory := func(level, size int, seed int64) repro.Sketch {
		if size <= 64 {
			return repro.Exact(size)
		}
		algo := "countsketch"
		if level%2 == 1 {
			algo = "l2sr"
		}
		return repro.MustNew(algo,
			repro.WithDim(size), repro.WithWords(24), repro.WithDepth(3), repro.WithSeed(seed))
	}
	live, err := repro.NewRange(n, factory, 77)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4000; u++ {
		live.Update((u*u+u*29)%n, float64(1+u%7))
	}
	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := repro.RestoreRange(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Dim() != live.Dim() || restored.Levels() != live.Levels() || restored.Words() != live.Words() {
		t.Fatalf("identity lost: %d/%d/%d vs %d/%d/%d",
			restored.Dim(), restored.Levels(), restored.Words(),
			live.Dim(), live.Levels(), live.Words())
	}
	check := func() {
		t.Helper()
		for _, r := range [][2]int{{0, n}, {17, 400}, {100, 101}, {512, 900}, {0, 64}} {
			if a, b := live.RangeSum(r[0], r[1]), restored.RangeSum(r[0], r[1]); a != b {
				t.Fatalf("RangeSum(%d,%d): live %v restored %v", r[0], r[1], a, b)
			}
		}
		for _, hi := range []int{1, 63, 250, 899} {
			if a, b := live.PrefixSum(hi), restored.PrefixSum(hi); a != b {
				t.Fatalf("PrefixSum(%d): live %v restored %v", hi, a, b)
			}
		}
		if a, b := live.Total(), restored.Total(); a != b {
			t.Fatalf("Total: live %v restored %v", a, b)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if a, b := live.Quantile(q), restored.Quantile(q); a != b {
				t.Fatalf("Quantile(%v): live %v restored %v", q, a, b)
			}
		}
	}
	check()
	// The restored stack keeps ingesting in lockstep.
	for u := 0; u < 1000; u++ {
		i, d := (u*31+7)%n, float64(2+u%3)
		live.Update(i, d)
		restored.Update(i, d)
	}
	check()
}

// v1 payloads — the format every pre-v2 build wrote — must still
// decode through the new codec, at arbitrary shapes, with query
// equality against a fresh facade twin.
func TestV1PayloadsStillDecode(t *testing.T) {
	for _, algo := range serializableAlgos {
		desc := codec.Desc{Algo: algo, N: 700, S: 48, D: 4, Seed: 21}
		inner := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
		twin, err := repro.New(algo,
			repro.WithDim(desc.N), repro.WithWords(desc.S), repro.WithDepth(desc.D), repro.WithSeed(desc.Seed))
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 2500; u++ {
			i, d := (u*u+3)%desc.N, float64(1+u%9)
			inner.Update(i, d)
			twin.Update(i, d)
		}
		var v1 bytes.Buffer
		if err := codec.EncodeV1(&v1, desc, inner); err != nil {
			t.Fatalf("%s: EncodeV1: %v", algo, err)
		}
		loaded, err := repro.Unmarshal(v1.Bytes())
		if err != nil {
			t.Fatalf("%s: v1 payload does not decode: %v", algo, err)
		}
		if loaded.Algo() != twin.Algo() || loaded.Dim() != twin.Dim() || loaded.Words() != twin.Words() {
			t.Fatalf("%s: identity lost across v1 decode", algo)
		}
		for i := 0; i < desc.N; i += 13 {
			if a, b := twin.Query(i), loaded.Query(i); a != b {
				t.Fatalf("%s: query %d: twin %v, v1-loaded %v", algo, i, a, b)
			}
		}
		// A v1 payload re-marshals to v2 and reloads.
		re, err := repro.Marshal(loaded)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", algo, err)
		}
		if !bytes.HasPrefix(re, []byte("BAS2")) {
			t.Fatalf("%s: re-marshal is not v2", algo)
		}
		if _, err := repro.Unmarshal(re); err != nil {
			t.Fatalf("%s: re-marshaled payload does not reload: %v", algo, err)
		}
	}
}

// Trailing garbage after a valid payload is a typed error — for v2 and
// for legacy v1 payloads alike.
func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	sk := repro.MustNew("countmin", repro.WithDim(300), repro.WithWords(16), repro.WithDepth(3))
	for i := 0; i < 300; i += 5 {
		sk.Update(i, 2)
	}
	data, err := repro.Marshal(sk)
	if err != nil {
		t.Fatal(err)
	}
	for _, tail := range [][]byte{{0}, []byte("x"), bytes.Repeat([]byte{0xAA}, 100), data} {
		bad := append(append([]byte(nil), data...), tail...)
		_, err := repro.Unmarshal(bad)
		if !errors.Is(err, repro.ErrTrailingData) {
			t.Fatalf("%d trailing bytes: got %v, want ErrTrailingData", len(tail), err)
		}
	}
	// The clean payload still loads.
	if _, err := repro.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	// Streams are different: UnmarshalFrom leaves the next frame
	// readable.
	double := append(append([]byte(nil), data...), data...)
	r := bytes.NewReader(double)
	if _, err := repro.UnmarshalFrom(r); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.UnmarshalFrom(r); err != nil {
		t.Fatalf("second frame unreadable: %v", err)
	}
}

// Wrong-container errors must name what the bytes actually hold, and
// every restore entry point must reject the other kinds.
func TestContainerKindMismatchesRejected(t *testing.T) {
	sh, err := repro.NewSharded(2, "countmin", repro.WithDim(100), repro.WithWords(8), repro.WithDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	sh.Update(0, 3, 1)
	var shardedBytes bytes.Buffer
	if err := sh.Checkpoint(&shardedBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Unmarshal(shardedBytes.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "sharded checkpoint") {
		t.Errorf("Decode of sharded checkpoint: %v", err)
	}
	if _, err := repro.RestoreWindowed(bytes.NewReader(shardedBytes.Bytes())); err == nil {
		t.Error("RestoreWindowed accepted a sharded checkpoint")
	}
	if _, err := repro.RestoreRange(bytes.NewReader(shardedBytes.Bytes())); err == nil {
		t.Error("RestoreRange accepted a sharded checkpoint")
	}

	sk := repro.MustNew("countmin", repro.WithDim(100), repro.WithWords(8), repro.WithDepth(2))
	data, err := repro.Marshal(sk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RestoreSharded(bytes.NewReader(data)); err == nil {
		t.Error("RestoreSharded accepted single-sketch bytes")
	}
}

// Checkpoints of non-linear and exact single sketches: Marshal still
// refuses exact with the typed error, and cmcu/cmlcu round-trip as
// plain sketches (local persistence needs no linearity).
func TestSerializabilityContractUnchanged(t *testing.T) {
	if _, err := repro.Marshal(repro.Exact(50)); !errors.Is(err, repro.ErrNotSerializable) {
		t.Errorf("Marshal(exact) = %v, want ErrNotSerializable", err)
	}
	for _, algo := range []string{"cmcu", "cmlcu"} {
		sk := repro.MustNew(algo, repro.WithDim(200), repro.WithWords(16), repro.WithDepth(2))
		for i := 0; i < 200; i += 3 {
			sk.Update(i, 1)
		}
		data, err := repro.Marshal(sk)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		loaded, err := repro.Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if loaded.Query(3) != sk.Query(3) {
			t.Errorf("%s: query mismatch after round trip", algo)
		}
	}
}
