// Package repro_test hosts the top-level benchmark suite: one
// testing.B benchmark per table/figure of the paper's evaluation (§5),
// each a scaled-down run of the corresponding internal/bench harness
// (custom metrics report the headline error ratios), plus the ablation
// benchmarks called out in DESIGN.md §4. Full-scale figure runs are
// produced by cmd/biasrepro.
package repro_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/biasheap"
	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/sketch"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// benchCfg is the scaled configuration used by the per-figure
// benchmarks. Depth stays at the paper's 9.
func benchCfg() bench.Config { return bench.Config{Scale: 0.01, Seed: 1} }

// reportRatio reports how many times larger the baseline's average
// error is than the bias-aware sketch's, averaged over sweep points —
// the headline quantity of each figure.
func reportRatio(b *testing.B, tables []*bench.Table, ours, baseline string) {
	var ratio float64
	var cells int
	for _, t := range tables {
		oi, bi := t.Col(ours), t.Col(baseline)
		if oi < 0 || bi < 0 {
			continue
		}
		for xi := range t.X {
			if t.Avg[xi][oi] > 0 {
				ratio += t.Avg[xi][bi] / t.Avg[xi][oi]
				cells++
			}
		}
	}
	if cells > 0 {
		b.ReportMetric(ratio/float64(cells), "x-vs-"+baseline)
	}
}

func BenchmarkFig1Gaussian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig1(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCS)
		reportRatio(b, tables, bench.AlgoL1SR, bench.AlgoCM)
	}
}

func BenchmarkFig2Wiki(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig2(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCS)
	}
}

func BenchmarkFig3WorldCup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig3(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCM)
	}
}

func BenchmarkFig4Higgs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig4(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCS)
	}
}

func BenchmarkFig5Meme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig5(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCS)
	}
}

func BenchmarkFig6Hudong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig6(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCS)
	}
}

func BenchmarkFig7Depth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig7(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoCS)
	}
}

func BenchmarkFig8MeanHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig8(benchCfg())
		// On the shifted variant the interesting ratio is mean-vs-S/R.
		reportRatio(b, tables[1:], bench.AlgoL2SR, bench.AlgoL2Mean)
	}
}

func BenchmarkFig9WikiMean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Fig9(benchCfg())
		reportRatio(b, tables, bench.AlgoL2SR, bench.AlgoL2Mean)
	}
}

func BenchmarkExtraBOMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.ExtraBOMP(bench.Config{Seed: 1, Depth: 5})
		// Exactly-biased-sparse table: BOMP should be exact (avg 0);
		// report its decode-time penalty against l2-S/R full recovery.
		t := tables[0]
		bo, l2 := t.Col("BOMP"), t.Col(bench.AlgoL2SR)
		var ratio float64
		for xi := range t.X {
			if t.QueryNs[xi][l2] > 0 {
				ratio += t.QueryNs[xi][bo] / t.QueryNs[xi][l2]
			}
		}
		b.ReportMetric(ratio/float64(len(t.X)), "decode-slowdown")
	}
}

func BenchmarkExtraCounterBraids(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.ExtraCounterBraids(bench.Config{Seed: 1, Depth: 5})
		t := tables[0]
		cq, lq := t.Col("CB point-query ns"), t.Col("l2 point-query ns")
		var ratio float64
		for xi := range t.X {
			if t.Avg[xi][lq] > 0 {
				ratio += t.Avg[xi][cq] / t.Avg[xi][lq]
			}
		}
		b.ReportMetric(ratio/float64(len(t.X)), "point-query-slowdown")
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)

// BenchmarkAblationHash compares pairwise against 4-wise bucket
// hashing inside a minimal Count-Sketch. The paper argues (§4.4) that
// 2-wise independence suffices for the error bounds, and the bounds do
// hold for both; on *sequential* coordinate ids (as here) the affine
// 2-wise hash is actually measurably better than 4-wise, a known
// low-discrepancy artifact — an arithmetic progression mod s spreads
// dense key ranges more evenly than truly random placement. The
// 4-wise number is the honest "random hashing" reference; see
// EXPERIMENTS.md.
func BenchmarkAblationHash(b *testing.B) {
	const n, s, d = 100_000, 1024, 9
	r := rand.New(rand.NewSource(1))
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)

	run := func(b *testing.B, family string) {
		for it := 0; it < b.N; it++ {
			rr := rand.New(rand.NewSource(int64(it + 2)))
			var hash func(t int, i uint64) int
			switch family {
			case "fourwise":
				hs := make([]hashing.FourWise, d)
				for t := range hs {
					h, err := hashing.NewFourWise(rr, s)
					if err != nil {
						b.Fatal(err)
					}
					hs[t] = h
				}
				hash = func(t int, i uint64) int { return hs[t].Hash(i) }
			case "tabulation":
				f, err := hashing.NewTabFamily(rr, d, s)
				if err != nil {
					b.Fatal(err)
				}
				hash = func(t int, i uint64) int { return f.T[t].Hash(i) }
			default:
				f, err := hashing.NewFamily(rr, d, s)
				if err != nil {
					b.Fatal(err)
				}
				hash = func(t int, i uint64) int { return f.H[t].Hash(i) }
			}
			signs := hashing.NewSignFamily(rr, d)
			cells := make([][]float64, d)
			for t := range cells {
				cells[t] = make([]float64, s)
			}
			for i, v := range x {
				u := uint64(i)
				for t := 0; t < d; t++ {
					cells[t][hash(t, u)] += signs.S[t].SignFloat(u) * v
				}
			}
			var sum float64
			buf := make([]float64, d)
			for i := range x {
				u := uint64(i)
				for t := 0; t < d; t++ {
					buf[t] = signs.S[t].SignFloat(u) * cells[t][hash(t, u)]
				}
				est := vecmath.Median(buf)
				if diff := est - x[i]; diff > 0 {
					sum += diff
				} else {
					sum -= diff
				}
			}
			b.ReportMetric(sum/float64(n), "avgerr")
		}
	}
	b.Run("pairwise", func(b *testing.B) { run(b, "pairwise") })
	b.Run("fourwise", func(b *testing.B) { run(b, "fourwise") })
	b.Run("tabulation", func(b *testing.B) { run(b, "tabulation") })
}

// BenchmarkAblationBiasEstimator compares the three ℓ2 bias estimators
// on contaminated data (Gaussian-2 with shifted outliers): the
// median-bucket estimator of Algorithm 4 must stay accurate where the
// mean blows up.
func BenchmarkAblationBiasEstimator(b *testing.B) {
	const n, k = 100_000, 64
	r := rand.New(rand.NewSource(3))
	x := workload.GaussianShifted{Bias: 100, Sigma: 15, ShiftCount: 10, ShiftBy: 100_000}.Vector(n, r)
	for _, est := range []struct {
		name string
		kind core.EstimatorKind
	}{
		{"median-bucket", core.EstimatorMedianBucket},
		{"sampled-median", core.EstimatorSampledMedian},
		{"mean", core.EstimatorMean},
	} {
		b.Run(est.name, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				l2 := core.NewL2SR(core.L2Config{
					N: n, K: k, Estimator: est.kind, SampleCount: 4 * k,
				}, rand.New(rand.NewSource(int64(it+4))))
				sketch.SketchVector(l2, x)
				b.ReportMetric(l2.Bias()-100, "bias-err")
				b.ReportMetric(vecmath.AvgAbsErr(x, sketch.Recover(l2)), "avgerr")
			}
		})
	}
}

// BenchmarkAblationCs sweeps the row-width constant c_s at a fixed
// word budget (s·d constant): wider-but-fewer rows versus
// narrower-but-more rows.
func BenchmarkAblationCs(b *testing.B) {
	const n, k, budget = 100_000, 64, 9 * 4 * 64 // words in cells at cs=4,d=9
	r := rand.New(rand.NewSource(5))
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	for _, cs := range []int{4, 8, 16} {
		d := budget / (cs * k)
		if d < 1 {
			d = 1
		}
		b.Run(map[int]string{4: "cs4", 8: "cs8", 16: "cs16"}[cs], func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				l2 := core.NewL2SR(core.L2Config{N: n, K: k, Cs: cs, Depth: d},
					rand.New(rand.NewSource(int64(it+6))))
				sketch.SketchVector(l2, x)
				b.ReportMetric(vecmath.AvgAbsErr(x, sketch.Recover(l2)), "avgerr")
			}
		})
	}
}

// BenchmarkAblationSampleCount sweeps the ℓ1 sampling-matrix size: the
// paper's theory needs 20·log n samples (Algorithm 1), its
// implementation uses s "for stability" (§5.1). The bias-estimate
// error shrinks with sample count; the recovery error of ℓ1-S/R is
// highly sensitive to it because a β̂ error is amplified by π ≈ n/s in
// every de-biased bucket.
func BenchmarkAblationSampleCount(b *testing.B) {
	const n, k = 100_000, 256
	r := rand.New(rand.NewSource(8))
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	for _, sc := range []struct {
		name  string
		count int
	}{
		{"20logn", 20 * 17}, // 20·log2(100k) ≈ 340
		{"s", 4 * k},        // the paper's implementation choice
		{"4s", 16 * k},
	} {
		b.Run(sc.name, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				l1 := core.NewL1SR(core.L1Config{N: n, K: k, SampleCount: sc.count},
					rand.New(rand.NewSource(int64(it+9))))
				sketch.SketchVector(l1, x)
				b.ReportMetric(l1.Bias()-100, "bias-err")
				b.ReportMetric(vecmath.AvgAbsErr(x, sketch.Recover(l1)), "avgerr")
			}
		})
	}
}

// BenchmarkAblationBiasHeap compares the Bias-Heap (Algorithm 5)
// against sort-at-query bias maintenance when every update is followed
// by a bias query — the real-time regime the heap exists for.
func BenchmarkAblationBiasHeap(b *testing.B) {
	const s, mid = 4096, 2048
	pi := make([]float64, s)
	for i := range pi {
		pi[i] = 25
	}
	b.Run("heap", func(b *testing.B) {
		h := biasheap.New(pi, mid)
		r := rand.New(rand.NewSource(7))
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			h.Update(r.Intn(s), r.NormFloat64())
			sink += h.Bias()
		}
		_ = sink
	})
	b.Run("sort", func(b *testing.B) {
		// Sort-based reference: recompute the middle average per query
		// via the estimator's sort path, by rebuilding with dirty flag.
		w := make([]float64, s)
		r := rand.New(rand.NewSource(7))
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			w[r.Intn(s)] += r.NormFloat64()
			sink += sortBias(w, pi, mid)
		}
		_ = sink
	})
}

// sortBias is the sort-per-call reference used by the Bias-Heap
// ablation.
func sortBias(w, pi []float64, mid int) float64 {
	s := len(w)
	type kv struct {
		key float64
		id  int
	}
	ids := make([]kv, s)
	for i := range ids {
		k := 0.0
		if pi[i] > 0 {
			k = w[i] / pi[i]
		}
		ids[i] = kv{k, i}
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].key != ids[b].key {
			return ids[a].key < ids[b].key
		}
		return ids[a].id < ids[b].id
	})
	top := (s - mid) / 2
	bot := (s - mid) - top
	var ws, ps float64
	for _, e := range ids[bot : s-top] {
		ws += w[e.id]
		ps += pi[e.id]
	}
	if ps == 0 {
		return 0
	}
	return ws / ps
}
