package repro_test

// Property/fuzz layer for the query-side fast path: QueryBatch must be
// bit-identical to the element-wise Query loop for every registry
// algorithm at randomized shapes, and snapshot reads of a Sharded must
// agree with one sequentially ingested sketch — the facade-level
// extension of internal/core/property_test.go.

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro"
)

// Property: QueryBatch ≡ Query loop — for every registry algorithm,
// across random dimensions, shapes, seeds, ingestion histories, and
// batch sizes, the batched path returns exactly the element-wise
// answers.
func TestQueryBatchMatchesQueryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(3000)
		words := 8 + r.Intn(120)
		depth := 1 + r.Intn(8)
		skSeed := r.Int63()
		for _, algo := range repro.Algorithms() {
			sk, err := repro.New(algo,
				repro.WithDim(n), repro.WithWords(words), repro.WithDepth(depth), repro.WithSeed(skSeed))
			if err != nil {
				t.Logf("%s: New(n=%d s=%d d=%d): %v", algo, n, words, depth, err)
				return false
			}
			bq, ok := sk.(repro.BatchQuerier)
			if !ok {
				t.Logf("%s: not a BatchQuerier", algo)
				return false
			}
			updates := 200 + r.Intn(3000)
			for u := 0; u < updates; u++ {
				// Non-negative deltas keep the insert-only sketches legal.
				sk.Update(r.Intn(n), float64(r.Intn(6)))
			}
			m := 1 + r.Intn(700)
			idx := make([]int, m)
			out := make([]float64, m)
			for j := range idx {
				idx[j] = r.Intn(n)
			}
			equal, overloaded := func() (equal bool, overloaded bool) {
				// A random shape can load a compressed plane past its
				// decodable threshold; the documented ErrDecodeBudget
				// panic is a capacity limit, not a batching bug — skip
				// the shape instead of failing the property.
				defer func() {
					if v := recover(); v != nil {
						if err, ok := v.(error); ok && errors.Is(err, repro.ErrDecodeBudget) {
							overloaded = true
							return
						}
						panic(v)
					}
				}()
				bq.QueryBatch(idx, out)
				for j, i := range idx {
					if want := sk.Query(i); out[j] != want {
						t.Logf("%s: query %d: batched %v, element-wise %v", algo, i, out[j], want)
						return false, false
					}
				}
				return true, false
			}()
			if overloaded {
				t.Logf("%s: braid overloaded at n=%d s=%d d=%d; shape skipped", algo, n, words, depth)
				continue
			}
			if !equal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: snapshot-read ≡ sequential-ingest — a Sharded fed the
// stream in batches over random slots must, after Refresh, answer
// batched snapshot queries exactly like one sketch fed the same stream
// element-wise (integer deltas make the merge arithmetic exact).
func TestSnapshotReadMatchesSequentialProperty(t *testing.T) {
	linear := []string{"l1sr", "l2sr", "l1mean", "l2mean", "countmin",
		"countmedian", "countsketch", "dengrafiei", "exact"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		algo := linear[r.Intn(len(linear))]
		n := 100 + r.Intn(2000)
		shards := 1 + r.Intn(6)
		opts := []repro.Option{
			repro.WithDim(n), repro.WithWords(16 + r.Intn(100)),
			repro.WithDepth(1 + r.Intn(6)), repro.WithSeed(r.Int63()),
		}
		sh, err := repro.NewSharded(shards, algo, opts...)
		if err != nil {
			t.Logf("%s: NewSharded: %v", algo, err)
			return false
		}
		seq, err := repro.New(algo, opts...)
		if err != nil {
			t.Logf("%s: New: %v", algo, err)
			return false
		}
		rounds := 3 + r.Intn(20)
		for round := 0; round < rounds; round++ {
			m := 1 + r.Intn(400)
			idx := make([]int, m)
			deltas := make([]float64, m)
			for j := range idx {
				idx[j] = r.Intn(n)
				deltas[j] = float64(r.Intn(5) - 1)
				seq.Update(idx[j], deltas[j])
			}
			if err := sh.UpdateBatch(r.Int(), idx, deltas); err != nil {
				t.Logf("%s: UpdateBatch: %v", algo, err)
				return false
			}
		}
		snap, err := sh.Refresh()
		if err != nil {
			t.Logf("%s: Refresh: %v", algo, err)
			return false
		}
		if snap.Stale() {
			t.Logf("%s: freshly refreshed snapshot is stale", algo)
			return false
		}
		idx := make([]int, 0, n/7+1)
		for i := 0; i < n; i += 7 {
			idx = append(idx, i)
		}
		out := make([]float64, len(idx))
		if err := snap.QueryBatch(idx, out); err != nil {
			t.Logf("%s: QueryBatch: %v", algo, err)
			return false
		}
		for j, i := range idx {
			if want := seq.Query(i); math.Abs(out[j]-want) > 1e-9 {
				t.Logf("%s: query %d: snapshot %v, sequential %v", algo, i, out[j], want)
				return false
			}
			if got := snap.Query(i); got != out[j] {
				t.Logf("%s: query %d: Snapshot.Query %v != QueryBatch %v", algo, i, got, out[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The package-level helper: native path, foreign-sketch fallback, and
// length validation before anything is written.
func TestQueryBatchHelper(t *testing.T) {
	sk := mustNew(t, "countmedian", repro.WithDim(500), repro.WithWords(32), repro.WithDepth(5))
	fill(sk, 5000, 31)
	idx := []int{0, 13, 499, 13}
	out := make([]float64, 4)
	if err := repro.QueryBatch(sk, idx, out); err != nil {
		t.Fatal(err)
	}
	for j, i := range idx {
		if want := sk.Query(i); out[j] != want {
			t.Fatalf("query %d: %v, want %v", i, out[j], want)
		}
	}
	if err := repro.QueryBatch(sk, []int{1, 2}, make([]float64, 1)); err == nil {
		t.Fatal("length mismatch should return an error")
	}

	f := &foreignSketch{x: make([]float64, 10)}
	f.x[2], f.x[9] = 3, 4
	fout := make([]float64, 3)
	if err := repro.QueryBatch(f, []int{2, 2, 9}, fout); err != nil {
		t.Fatal(err)
	}
	if fout[0] != 3 || fout[1] != 3 || fout[2] != 4 {
		t.Fatalf("fallback loop answered %v", fout)
	}
}

// Recover runs through the batched path; it must equal the per-
// coordinate Query loop exactly.
func TestRecoverMatchesQueryLoop(t *testing.T) {
	for _, algo := range []string{"l2sr", "countmin", "cmlcu"} {
		sk := mustNew(t, algo, repro.WithDim(3000), repro.WithWords(64), repro.WithDepth(5))
		fill(sk, 20000, 37)
		xhat := repro.Recover(sk)
		if len(xhat) != 3000 {
			t.Fatalf("%s: Recover length %d", algo, len(xhat))
		}
		for i, v := range xhat {
			if want := sk.Query(i); v != want {
				t.Fatalf("%s: Recover[%d] = %v, Query = %v", algo, i, v, want)
			}
		}
	}
}

// Snapshot read surface: Bias/TopK/Scan work on bias-aware snapshots,
// return ErrNoBias otherwise, and Owned produces an independent clone.
func TestSnapshotReadSurface(t *testing.T) {
	sh, err := repro.NewSharded(3, "l2sr",
		repro.WithDim(2000), repro.WithWords(256), repro.WithDepth(5))
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 2000)
	deltas := make([]float64, 2000)
	for i := range idx {
		idx[i] = i
		deltas[i] = 100
	}
	if err := sh.UpdateBatch(0, idx, deltas); err != nil {
		t.Fatal(err)
	}
	sh.Update(1, 7, 10_000)
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	beta, err := snap.Bias()
	if err != nil {
		t.Fatal(err)
	}
	if beta < 50 || beta > 150 {
		t.Errorf("snapshot bias %f, want ≈100", beta)
	}
	top, err := snap.TopK(1)
	if err != nil || len(top) != 1 || top[0].Index != 7 {
		t.Errorf("snapshot TopK = %v, %v; want index 7", top, err)
	}
	devs, err := snap.Scan(5000)
	if err != nil || len(devs) != 1 || devs[0].Index != 7 {
		t.Errorf("snapshot Scan = %v, %v; want index 7", devs, err)
	}

	owned, err := snap.Owned()
	if err != nil {
		t.Fatal(err)
	}
	owned.Update(3, 1e6) // mutating the clone must not touch the snapshot
	if got := snap.Query(3); math.Abs(got-100) > 50 {
		t.Errorf("snapshot changed by mutating its Owned clone: Query(3) = %v", got)
	}

	cm, err := repro.NewSharded(2, "countmin", repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	cmSnap, err := cm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cmSnap.Bias(); err == nil {
		t.Error("countmin snapshot Bias should fail")
	}
	if _, err := cmSnap.TopK(3); err == nil {
		t.Error("countmin snapshot TopK should fail")
	}
}

// Race shape of the issue: concurrent snapshot readers while writers
// batch-update. The exact sharded sketch carries two marker
// coordinates that every batch moves in lockstep, so a torn merge is
// numerically visible: any snapshot with x[0] != x[1] tore a batch.
// Alongside, readers drive the full bias-aware read surface (batched
// queries and TopK) on an l2sr sharded under the same write load.
// Run with -race.
func TestSnapshotReadersDuringBatchWrites(t *testing.T) {
	const n, writers, batches, batchLen = 5000, 4, 60, 128
	exact, err := repro.NewSharded(writers, "exact", repro.WithDim(n))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := repro.NewSharded(writers, "l2sr",
		repro.WithDim(n), repro.WithWords(64), repro.WithDepth(4))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(300 + w)))
			idx := make([]int, batchLen)
			deltas := make([]float64, batchLen)
			for u := 0; u < batches; u++ {
				// Two lockstep markers in every batch + random filler.
				idx[0], deltas[0] = 0, 1
				idx[1], deltas[1] = 1, 1
				for j := 2; j < batchLen; j++ {
					idx[j] = 2 + r.Intn(n-2)
					deltas[j] = 1
				}
				if err := exact.UpdateBatch(w, idx, deltas); err != nil {
					t.Error(err)
					return
				}
				if err := l2.UpdateBatch(w, idx, deltas); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			out := make([]float64, 2)
			for rounds := 0; ; rounds++ {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := exact.Refresh()
				if err != nil {
					t.Error(err)
					return
				}
				if err := snap.QueryBatch([]int{0, 1}, out); err != nil {
					t.Error(err)
					return
				}
				if out[0] != out[1] {
					t.Errorf("torn merge: x[0]=%v x[1]=%v", out[0], out[1])
					return
				}
				l2snap, err := l2.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				if err := l2snap.QueryBatch([]int{0, 1}, out); err != nil {
					t.Error(err)
					return
				}
				if g == 0 && rounds%8 == 0 {
					if _, err := l2.Refresh(); err != nil {
						t.Error(err)
						return
					}
					if _, err := l2snap.TopK(3); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	snap, err := exact.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(writers * batches)
	if got := snap.Query(0); got != want {
		t.Fatalf("final x[0] = %v, want %v (a batch was lost or torn)", got, want)
	}
}
