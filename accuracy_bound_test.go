package repro_test

// Accuracy-bound regression harness: for every registry algorithm, a
// seeded zipf workload is sketched and the observed point-query errors
// are checked against the algorithm's theoretical (ε, δ) guarantee —
// at most a δ fraction of coordinates may deviate beyond the ε-scaled
// norm. Earlier layers lock bit-identity (batch ≡ element-wise,
// snapshot ≡ sequential); this one locks the thing the paper is
// actually about: the estimates stay inside the error bounds. A
// refactor that keeps paths bit-identical but silently degrades an
// estimator (wrong hash family, dropped repetition, broken bias
// subtraction) fails here and nowhere else.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro"
	"repro/workload"
)

// The harness shape: n coordinates, s words per row, depth d — so the
// baselines run d+1 rows of s buckets and the bias-aware sketches run
// d rows of s/4 buckets (the registry's equal-words protocol).
const (
	accN     = 4096
	accWords = 256
	accDepth = 5
)

// bound is one algorithm's theoretical guarantee instantiated for a
// concrete dataset: at most a delta fraction of coordinates may have
// |x̂_i − x_i| > eps-scaled-threshold.
type bound struct {
	threshold float64 // the ε side: the per-coordinate error cap
	delta     float64 // the δ side: allowed fraction of violations
	oneSided  bool    // estimator never underestimates (insert-only)
}

// norms of the residual vector x − β (β = 0 for the unbiased
// algorithms; the bias-aware bounds are relative to the sketch's own
// β̂ — that is their entire point).
type norms struct {
	l1, l2 float64
}

func residualNorms(x []float64, beta float64) norms {
	var n norms
	for _, v := range x {
		r := v - beta
		n.l1 += math.Abs(r)
		n.l2 += r * r
	}
	n.l2 = math.Sqrt(n.l2)
	return n
}

// boundFor instantiates the paper-form guarantee for one algorithm.
//
//   - Count-Min family (countmin, cmcu, cmlcu, dengrafiei): b = words
//     buckets per row, r = depth+1 rows; the row minimum (or
//     noise-corrected estimate) satisfies |err| ≤ e·‖x‖₁/b with
//     probability 1 − e^{−r} (Markov per row, independence across
//     rows). Count-Min and CM-CU additionally never underestimate on
//     an insert-only stream — that half is structural, not
//     probabilistic, and is asserted exactly.
//   - Count-Median: median of r rows, each within 8·‖x‖₁/b with
//     per-row failure p = 1/8 (Markov at 8× the expected row noise);
//     a Chernoff bound on the median gives δ = (4p(1−p))^{r/2}.
//   - Count-Sketch: median of r rows with per-row variance ‖x‖₂²/b,
//     so |err| ≤ 3·‖x‖₂/√b at p = 1/9 (Chebyshev at 3σ) and
//     δ = (4p(1−p))^{r/2}.
//   - l1sr/l1mean: the paper's ℓ1-S/R guarantee with k = words/4
//     buckets and d rows, relative to the residual the sketch itself
//     de-biases: |err| ≤ e·‖x − β̂‖₁/k, δ = e^{−d}.
//   - l2sr/l2mean: the ℓ2-S/R analogue: |err| ≤ 3·‖x − β̂‖₂/√k,
//     δ = (4p(1−p))^{d/2} at p = 1/9.
//   - exact: zero error, always.
func boundFor(t *testing.T, algo string, x []float64, sk repro.Sketch) bound {
	t.Helper()
	chernoff := func(p float64, rows int) float64 {
		return math.Pow(4*p*(1-p), float64(rows)/2)
	}
	base := residualNorms(x, 0)
	rows := accDepth + 1
	buckets := float64(accWords)
	k := float64(accWords / 4)
	switch algo {
	case "countmin", "cmcu":
		return bound{threshold: math.E * base.l1 / buckets, delta: math.Exp(-float64(rows)), oneSided: true}
	case "cmlcu", "dengrafiei":
		// Same ε as Count-Min but two-sided: the log counters (cmlcu)
		// and the expected-noise subtraction (dengrafiei) can undershoot.
		return bound{threshold: math.E * base.l1 / buckets, delta: math.Exp(-float64(rows))}
	case "countmedian":
		return bound{threshold: 8 * base.l1 / buckets, delta: chernoff(1.0/8, rows)}
	case "countsketch":
		return bound{threshold: 3 * base.l2 / math.Sqrt(buckets), delta: chernoff(1.0/9, rows)}
	case "l1sr", "l1mean":
		beta, err := repro.Bias(sk)
		if err != nil {
			t.Fatalf("%s: Bias: %v", algo, err)
		}
		res := residualNorms(x, beta)
		return bound{threshold: math.E * res.l1 / k, delta: math.Exp(-float64(accDepth))}
	case "l2sr", "l2mean":
		beta, err := repro.Bias(sk)
		if err != nil {
			t.Fatalf("%s: Bias: %v", algo, err)
		}
		res := residualNorms(x, beta)
		return bound{threshold: 3 * res.l2 / math.Sqrt(k), delta: chernoff(1.0/9, accDepth)}
	case "exact":
		return bound{threshold: 1e-12, delta: 0}
	case "counterbraids":
		// Counter Braids is not an approximate sketch: below its load
		// threshold the message-passing decode recovers every count
		// exactly (Lu et al., Thm. 1); past it, queries fail loudly
		// rather than degrade. The harness shape stays below threshold.
		return bound{threshold: 1e-9, delta: 0}
	default:
		t.Fatalf("no accuracy bound on file for algorithm %q — add one here", algo)
		return bound{}
	}
}

// TestAccuracyWithinTheoreticalBounds drives a seeded zipf workload
// through every registry algorithm — under every hash family the
// algorithm supports — and asserts the recovered estimates sit inside
// the (ε, δ) guarantee: at most a δ fraction of the n coordinates may
// deviate beyond the ε threshold. Two independent (workload seed,
// sketch seed) pairs guard against a single lucky hash draw. The
// tabulation runs are the accuracy validation the family relies on:
// its answers differ bit-wise from pairwise ones, but must satisfy the
// same bounds (simple tabulation is 3-wise independent, strictly more
// than the analysis' pairwise requirement).
func TestAccuracyWithinTheoreticalBounds(t *testing.T) {
	for _, seeds := range []struct{ data, sketch int64 }{{7, 3}, {101, 55}} {
		x := (workload.ZipfLike{}).Vector(accN, rand.New(rand.NewSource(seeds.data)))
		for _, algo := range repro.Algorithms() {
			for _, h := range repro.Hashings(algo) {
				name := fmt.Sprintf("%s/%v", algo, h)
				sk, err := repro.New(algo,
					repro.WithDim(accN), repro.WithWords(accWords),
					repro.WithDepth(accDepth), repro.WithSeed(seeds.sketch),
					repro.WithHashing(h))
				if err != nil {
					t.Fatalf("%s: New: %v", name, err)
				}
				if err := repro.SketchVector(sk, x); err != nil {
					t.Fatalf("%s: SketchVector: %v", name, err)
				}
				b := boundFor(t, algo, x, sk)
				xhat := repro.Recover(sk)

				violations := 0
				worst := 0.0
				for i := range x {
					e := xhat[i] - x[i]
					if b.oneSided && e < -1e-9 {
						t.Errorf("%s (seeds %d/%d): underestimate at %d: x=%v x̂=%v — structurally impossible on an insert-only stream",
							name, seeds.data, seeds.sketch, i, x[i], xhat[i])
					}
					if a := math.Abs(e); a > b.threshold {
						violations++
						if a > worst {
							worst = a
						}
					}
				}
				// The δ side: the guarantee holds per coordinate with
				// probability 1−δ, so across n coordinates up to δ·n
				// violations are within contract (plus 1% finite-sample
				// slack so the harness tests the guarantee, not the exact
				// tail constant).
				allowed := (b.delta + 0.01) * float64(len(x))
				if float64(violations) > allowed {
					t.Errorf("%s (seeds %d/%d): %d of %d coordinates exceed the ε bound %.2f (worst |err| %.2f); theory allows %.0f (δ=%.4f)",
						name, seeds.data, seeds.sketch, violations, len(x), b.threshold, worst, allowed, b.delta)
				}
			}
		}
	}
}
