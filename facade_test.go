package repro_test

// Public-API tests: everything here exercises the facade exactly as an
// external consumer would — repro.New, Merge, Marshal/Unmarshal,
// Sharded — with no repro/internal imports.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro"
)

// paperAlgos are the eight algorithms of the paper's evaluation; all
// must construct via New and round-trip through Marshal/Unmarshal.
var paperAlgos = []string{
	"l1sr", "l2sr", "countmin", "countmedian", "countsketch",
	"cmcu", "cmlcu", "dengrafiei",
}

func mustNew(t *testing.T, algo string, opts ...repro.Option) repro.Sketch {
	t.Helper()
	s, err := repro.New(algo, opts...)
	if err != nil {
		t.Fatalf("New(%s): %v", algo, err)
	}
	return s
}

func fill(s repro.Sketch, updates int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for u := 0; u < updates; u++ {
		s.Update(r.Intn(s.Dim()), float64(1+r.Intn(5)))
	}
}

func TestRegistryRoundTripEveryAlgorithm(t *testing.T) {
	for _, algo := range append(paperAlgos, "l1mean", "l2mean") {
		opts := []repro.Option{
			repro.WithDim(20000), repro.WithWords(256), repro.WithDepth(7), repro.WithSeed(99),
		}
		orig := mustNew(t, algo, opts...)
		fill(orig, 30000, 1)

		data, err := repro.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", algo, err)
		}
		loaded, err := repro.Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", algo, err)
		}
		if loaded.Algo() != orig.Algo() || loaded.Dim() != orig.Dim() || loaded.Words() != orig.Words() {
			t.Fatalf("%s: identity lost: %s/%d/%d vs %s/%d/%d", algo,
				loaded.Algo(), loaded.Dim(), loaded.Words(),
				orig.Algo(), orig.Dim(), orig.Words())
		}
		for i := 0; i < orig.Dim(); i += 97 {
			if a, b := orig.Query(i), loaded.Query(i); math.Abs(a-b) > 1e-9 {
				t.Fatalf("%s: query %d: %f != %f", algo, i, a, b)
			}
		}
	}
}

// Legend aliases resolve to the same canonical algorithms.
func TestNewAcceptsLegendAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"l2-S/R": "l2sr", "CM": "countmedian", "CS": "countsketch",
		"CM-CU": "cmcu", "CML-CU": "cmlcu", "Count-Min": "countmin",
		"Deng-Rafiei": "dengrafiei",
	} {
		s := mustNew(t, alias, repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3))
		if s.Algo() != canonical {
			t.Errorf("New(%q).Algo() = %q, want %q", alias, s.Algo(), canonical)
		}
	}
}

// Merging the sketches of two disjoint halves must equal sketching the
// whole stream sequentially — linearity at the public-API level.
func TestMergeEquivalence(t *testing.T) {
	for _, algo := range []string{"l1sr", "l2sr", "countmin", "countmedian", "countsketch", "dengrafiei", "exact"} {
		opts := []repro.Option{
			repro.WithDim(5000), repro.WithWords(128), repro.WithDepth(5), repro.WithSeed(7),
		}
		seq := mustNew(t, algo, opts...)
		left := mustNew(t, algo, opts...)
		right := mustNew(t, algo, opts...)

		r := rand.New(rand.NewSource(2))
		for u := 0; u < 20000; u++ {
			i, d := r.Intn(5000), float64(1+r.Intn(3))
			seq.Update(i, d)
			if u < 10000 {
				left.Update(i, d)
			} else {
				right.Update(i, d)
			}
		}
		if err := repro.Merge(left, right); err != nil {
			t.Fatalf("%s: Merge: %v", algo, err)
		}
		for i := 0; i < 5000; i += 13 {
			if a, b := seq.Query(i), left.Query(i); math.Abs(a-b) > 1e-6 {
				t.Fatalf("%s: merged query %d = %f, sequential = %f", algo, i, b, a)
			}
		}
	}
}

// Two sharded halves merged must equal one sequential sketch.
func TestShardedMatchesSequential(t *testing.T) {
	opts := []repro.Option{
		repro.WithDim(5000), repro.WithWords(128), repro.WithDepth(5), repro.WithSeed(7),
	}
	sh, err := repro.NewSharded(4, "l2sr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	seq := mustNew(t, "l2sr", opts...)

	r := rand.New(rand.NewSource(3))
	for u := 0; u < 20000; u++ {
		i, d := r.Intn(5000), float64(1+r.Intn(3))
		seq.Update(i, d)
		sh.Update(u, i, d) // round-robin slots
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i += 13 {
		if a, b := seq.Query(i), snap.Query(i); math.Abs(a-b) > 1e-6 {
			t.Fatalf("query %d: sharded %f != sequential %f", i, b, a)
		}
	}
	// An owned clone of the snapshot is a full facade sketch: it must
	// merge and marshal; Merged builds the same thing from live shards.
	owned, err := snap.Owned()
	if err != nil {
		t.Fatalf("snapshot Owned: %v", err)
	}
	if err := repro.Merge(owned, seq); err != nil {
		t.Fatalf("owned snapshot Merge: %v", err)
	}
	if _, err := repro.Marshal(owned); err != nil {
		t.Fatalf("owned snapshot Marshal: %v", err)
	}
	merged, err := sh.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	for i := 0; i < 5000; i += 13 {
		if a, b := snap.Query(i), merged.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: snapshot %f != merged %f", i, a, b)
		}
	}
}

// Conservative-update sketches are not linear; Merge must say so with
// the typed error rather than silently corrupting state.
func TestMergeNotLinear(t *testing.T) {
	for _, algo := range []string{"cmcu", "cmlcu"} {
		opts := []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3)}
		a := mustNew(t, algo, opts...)
		b := mustNew(t, algo, opts...)
		err := repro.Merge(a, b)
		if !errors.Is(err, repro.ErrNotLinear) {
			t.Errorf("%s: Merge error = %v, want ErrNotLinear", algo, err)
		}
		if _, ok := a.(repro.Linear); ok {
			t.Errorf("%s: should not satisfy repro.Linear", algo)
		}
		if _, err := repro.NewSharded(4, algo, opts...); !errors.Is(err, repro.ErrNotLinear) {
			t.Errorf("%s: NewSharded error = %v, want ErrNotLinear", algo, err)
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	base := []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3)}
	a := mustNew(t, "countmin", base...)
	cases := map[string]repro.Sketch{
		"different seed":  mustNew(t, "countmin", append(base, repro.WithSeed(5))...),
		"different algo":  mustNew(t, "countsketch", base...),
		"different shape": mustNew(t, "countmin", repro.WithDim(100), repro.WithWords(32), repro.WithDepth(3)),
	}
	for name, b := range cases {
		if err := repro.Merge(a, b); !errors.Is(err, repro.ErrIncompatible) {
			t.Errorf("%s: Merge error = %v, want ErrIncompatible", name, err)
		}
	}
}

// The capability hierarchy is meaningful: type assertions reflect what
// each algorithm can actually do.
func TestCapabilityHierarchy(t *testing.T) {
	opts := []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3)}
	type caps struct{ linear, serial, biased bool }
	want := map[string]caps{
		"l2sr":     {true, true, true},
		"l1sr":     {true, true, true},
		"countmin": {true, true, false},
		"cmcu":     {false, false, false},
		"cmlcu":    {false, false, false},
		"exact":    {true, false, false},
	}
	for algo, w := range want {
		s := mustNew(t, algo, opts...)
		_, linear := s.(repro.Linear)
		_, serial := s.(repro.Serializable)
		_, biased := s.(repro.Biased)
		if got := (caps{linear, serial, biased}); got != w {
			t.Errorf("%s: capabilities %+v, want %+v", algo, got, w)
		}
	}
}

func TestExactNotSerializableButMarshalableCMCUIs(t *testing.T) {
	ex := repro.Exact(50)
	if _, err := repro.Marshal(ex); !errors.Is(err, repro.ErrNotSerializable) {
		t.Errorf("Marshal(exact) = %v, want ErrNotSerializable", err)
	}
	// cmcu is not Serializable (not linear, never shipped between
	// sites) but still persists locally through Marshal/Unmarshal.
	cm := mustNew(t, "cmcu", repro.WithDim(50), repro.WithWords(16), repro.WithDepth(3))
	if _, err := repro.Marshal(cm); err != nil {
		t.Errorf("Marshal(cmcu) = %v, want nil", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := repro.New("bogus", repro.WithDim(10)); !errors.Is(err, repro.ErrUnknownAlgorithm) {
		t.Errorf("unknown algo error = %v", err)
	}
	if _, err := repro.New("l2sr"); err == nil {
		t.Error("missing WithDim should fail")
	}
	if _, err := repro.New("l2sr", repro.WithDim(10), repro.WithWords(-1)); err == nil {
		t.Error("negative words should fail")
	}
	if _, err := repro.New("l2sr", repro.WithDim(10), repro.WithDepth(0), repro.WithDepth(-2)); err == nil {
		t.Error("non-positive depth should fail")
	}
}

// New must reject any shape the wire format's Unmarshal-side bounds
// would reject, so a site can never marshal packets the coordinator
// cannot load.
func TestNewEnforcesWireFormatBounds(t *testing.T) {
	cases := map[string][]repro.Option{
		"row width below 4": {repro.WithDim(100), repro.WithWords(2), repro.WithDepth(3)},
		"depth above 64":    {repro.WithDim(100), repro.WithWords(16), repro.WithDepth(100)},
		"dim above 2^26":    {repro.WithDim(1 << 27), repro.WithWords(16), repro.WithDepth(3)},
		"table too large":   {repro.WithDim(100), repro.WithWords(1 << 22), repro.WithDepth(64)},
	}
	for name, opts := range cases {
		if _, err := repro.New("countmin", opts...); err == nil {
			t.Errorf("%s: New should fail", name)
		}
	}
	// Anything New accepts must round-trip.
	sk := mustNew(t, "countmin", repro.WithDim(100), repro.WithWords(4), repro.WithDepth(1))
	data, err := repro.Marshal(sk)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if _, err := repro.Unmarshal(data); err != nil {
		t.Fatalf("minimal accepted shape does not round-trip: %v", err)
	}
}

func TestBiasHelpers(t *testing.T) {
	l2 := mustNew(t, "l2sr", repro.WithDim(1000), repro.WithWords(256), repro.WithDepth(5))
	for i := 0; i < 1000; i++ {
		l2.Update(i, 100)
	}
	l2.Update(7, 10_000)
	beta, err := repro.Bias(l2)
	if err != nil {
		t.Fatalf("Bias: %v", err)
	}
	if beta < 50 || beta > 150 {
		t.Errorf("bias estimate %f, want ≈100", beta)
	}
	top, err := repro.TopK(l2, 1)
	if err != nil || len(top) != 1 || top[0].Index != 7 {
		t.Errorf("TopK = %v, %v; want index 7", top, err)
	}

	cm := mustNew(t, "countmin", repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3))
	if _, err := repro.Bias(cm); !errors.Is(err, repro.ErrNoBias) {
		t.Errorf("Bias(countmin) error = %v, want ErrNoBias", err)
	}
	if _, err := repro.TopK(cm, 3); !errors.Is(err, repro.ErrNoBias) {
		t.Errorf("TopK(countmin) error = %v, want ErrNoBias", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE00000000"),
		"truncated": []byte("BAS1\x01\x00"),
	} {
		if _, err := repro.Unmarshal(b); err == nil {
			t.Errorf("%s: Unmarshal should fail", name)
		}
	}
}

func TestRangeSketch(t *testing.T) {
	const n = 2048
	rq, err := repro.NewRange(n, func(_, size int, seed int64) repro.Sketch {
		if size <= 256 {
			return repro.Exact(size)
		}
		return repro.MustNew("l2sr",
			repro.WithDim(size), repro.WithWords(128), repro.WithDepth(5), repro.WithSeed(seed))
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	r := rand.New(rand.NewSource(4))
	for i := range x {
		x[i] = float64(50 + r.Intn(20))
		rq.Update(i, x[i])
	}
	var exact float64
	for _, v := range x[100:600] {
		exact += v
	}
	got := rq.RangeSum(100, 600)
	if math.Abs(got-exact) > 0.05*exact {
		t.Errorf("RangeSum(100,600) = %f, exact %f", got, exact)
	}
	mid := rq.Quantile(0.5)
	if mid < n/3 || mid > 2*n/3 {
		t.Errorf("median second %d implausible for uniform mass", mid)
	}
}

// Every sketch New constructs exposes the batched ingestion path, and
// the batch must leave exactly the state of the element-wise loop —
// query-for-query, including the bias estimate where there is one.
func TestUpdateBatchMatchesElementwiseEveryAlgorithm(t *testing.T) {
	for _, algo := range append(append([]string{}, paperAlgos...), "l1mean", "l2mean", "exact") {
		opts := []repro.Option{
			repro.WithDim(20000), repro.WithWords(256), repro.WithDepth(7), repro.WithSeed(21),
		}
		batched := mustNew(t, algo, opts...)
		seq := mustNew(t, algo, opts...)
		if _, ok := batched.(repro.BatchUpdater); !ok {
			t.Fatalf("%s: facade sketch does not satisfy repro.BatchUpdater", algo)
		}
		r := rand.New(rand.NewSource(22))
		for round := 0; round < 10; round++ {
			m := 1 + r.Intn(700)
			idx := make([]int, m)
			deltas := make([]float64, m)
			for j := range idx {
				idx[j] = r.Intn(20000)
				deltas[j] = float64(1 + r.Intn(5)) // non-negative: cmcu/cmlcu safe
			}
			if err := repro.UpdateBatch(batched, idx, deltas); err != nil {
				t.Fatalf("%s: UpdateBatch: %v", algo, err)
			}
			for j := range idx {
				seq.Update(idx[j], deltas[j])
			}
		}
		for i := 0; i < 20000; i += 89 {
			if a, b := batched.Query(i), seq.Query(i); a != b {
				t.Fatalf("%s: query %d: batched %v, element-wise %v", algo, i, a, b)
			}
		}
		if bb, err1 := repro.Bias(batched); err1 == nil {
			bs, _ := repro.Bias(seq)
			if bb != bs {
				t.Fatalf("%s: bias: batched %v, element-wise %v", algo, bb, bs)
			}
		}
	}
}

// A length mismatch is reported as an error before any update lands.
func TestUpdateBatchLengthMismatch(t *testing.T) {
	s := mustNew(t, "countmin", repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3))
	if err := repro.UpdateBatch(s, []int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should return an error")
	}
	for i := 0; i < 100; i++ {
		if s.Query(i) != 0 {
			t.Fatalf("sketch modified despite mismatch: Query(%d) = %f", i, s.Query(i))
		}
	}
}

// foreignSketch is a Sketch implementation from outside the module
// with no native batched path; the helper must loop for it.
type foreignSketch struct{ x []float64 }

func (f *foreignSketch) Update(i int, delta float64) { f.x[i] += delta }
func (f *foreignSketch) Query(i int) float64         { return f.x[i] }
func (f *foreignSketch) Dim() int                    { return len(f.x) }
func (f *foreignSketch) Words() int                  { return len(f.x) }
func (f *foreignSketch) Algo() string                { return "foreign" }

func TestUpdateBatchFallsBackForForeignSketch(t *testing.T) {
	f := &foreignSketch{x: make([]float64, 10)}
	if err := repro.UpdateBatch(f, []int{2, 2, 9}, []float64{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if f.x[2] != 3 || f.x[9] != 4 {
		t.Fatalf("fallback loop lost updates: %v", f.x)
	}
}

// Acceptance shape of the issue: batched sharded ingestion must end in
// the same counters as one sequential sketch fed element-wise.
func TestShardedUpdateBatchMatchesSequential(t *testing.T) {
	opts := []repro.Option{
		repro.WithDim(5000), repro.WithWords(128), repro.WithDepth(5), repro.WithSeed(7),
	}
	sh, err := repro.NewSharded(4, "l2sr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	seq := mustNew(t, "l2sr", opts...)

	r := rand.New(rand.NewSource(23))
	for round := 0; round < 40; round++ {
		m := 1 + r.Intn(500)
		idx := make([]int, m)
		deltas := make([]float64, m)
		for j := range idx {
			idx[j] = r.Intn(5000)
			deltas[j] = float64(1 + r.Intn(3))
			seq.Update(idx[j], deltas[j])
		}
		if err := sh.UpdateBatch(round, idx, deltas); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.UpdateBatch(0, []int{1}, []float64{1, 2}); err == nil {
		t.Fatal("sharded length mismatch should return an error")
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i += 13 {
		if a, b := seq.Query(i), snap.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: sharded-batched %f != sequential %f", i, b, a)
		}
	}
}

// SketchVector mirrors the internal implementation: error on length
// mismatch, zero coordinates skipped.
func TestSketchVectorDelegation(t *testing.T) {
	s := mustNew(t, "countmin", repro.WithDim(4), repro.WithWords(8), repro.WithDepth(2))
	if err := repro.SketchVector(s, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should return an error")
	}
	if err := repro.SketchVector(s, []float64{5, 0, 0, 7}); err != nil {
		t.Fatal(err)
	}
	if got := s.Query(0); got < 5 {
		t.Errorf("Query(0) = %f, want >= 5", got)
	}
}

// NewRange must stop invoking the level factory after the first nil
// return instead of building dead placeholder levels.
func TestNewRangeShortCircuitsOnFactoryError(t *testing.T) {
	calls := 0
	_, err := repro.NewRange(1<<16, func(level, size int, seed int64) repro.Sketch {
		calls++
		return nil // fail immediately on level 0
	}, 1)
	if err == nil {
		t.Fatal("nil factory result should fail NewRange")
	}
	if calls != 1 {
		t.Fatalf("factory called %d times after failing on the first level, want 1", calls)
	}
}
