package repro

import (
	"fmt"
	"io"

	"repro/internal/codec"
)

// MaxBatchLen bounds the element count one wire-v2 update-batch frame
// may carry; see EncodeBatch.
const MaxBatchLen = codec.MaxBatchLen

// EncodeBatch writes an (idx, deltas) update batch to w as a wire-v2
// batch container — the frame a sketch server's ingest endpoint
// accepts and routes straight into UpdateBatch. The slices must have
// equal length (else ErrBadBatch) and at most MaxBatchLen elements;
// indexes must be non-negative and deltas must not be NaN.
//
// The frame carries no sketch descriptor: the receiver already knows
// which sketch the batch targets and validates indexes against that
// sketch's dimension when it calls DecodeBatch.
func EncodeBatch(w io.Writer, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("%w: %d indexes, %d deltas", ErrBadBatch, len(idx), len(deltas))
	}
	if err := codec.EncodeBatch(w, idx, deltas); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// DecodeBatch reads one wire-v2 update-batch container from r,
// validating every index against dim — the dimension of the sketch
// the batch targets. Malformed framing, an implausible element count,
// an index at or beyond dim, or a NaN delta all error before a single
// update could be applied, so a hostile payload can never drive an
// out-of-range update. Trailing bytes after the container are left
// unread; batch frames compose on a stream.
func DecodeBatch(r io.Reader, dim int) (idx []int, deltas []float64, err error) {
	idx, deltas, err = codec.DecodeBatch(r, dim)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: %w", err)
	}
	return idx, deltas, nil
}
