package repro

import (
	"fmt"

	"repro/internal/registry"
)

// Merge adds src's state into dst — the coordinator step of the
// distributed model: by linearity, merging site sketches yields the
// sketch of the summed vector. Both sketches must have been built (or
// unmarshaled) with the same algorithm, dimension, words, depth, and
// seed.
//
// Non-linear algorithms (cmcu, cmlcu) return ErrNotLinear: the whole
// point of conservative update is that buckets no longer hold sums, so
// no merge exists. Shape or seed mismatches return ErrIncompatible.
func Merge(dst, src Sketch) error {
	for _, s := range []Sketch{dst, src} {
		if !IsLinear(s.Algo()) {
			return fmt.Errorf("%w: %s", ErrNotLinear, s.Algo())
		}
	}
	if l, ok := dst.(Linear); ok {
		return l.Merge(src)
	}
	return fmt.Errorf("%w: %T", ErrNotLinear, dst)
}

// mergeHandles implements Linear.Merge for every handle flavor.
func mergeHandles(dst *handle, other Sketch) error {
	o, ok := other.(baser)
	if !ok {
		return fmt.Errorf("%w: %T was not built by repro.New", ErrIncompatible, other)
	}
	ob := o.base()
	// The backend is a storage choice, not part of the sketch's
	// identity: a dense receiver may fold in a mapped checkpoint of the
	// same shape and seed. Read-only receivers are refused one layer
	// down, with ErrReadOnly.
	da, db := dst.desc, ob.desc
	da.Backend, db.Backend = BackendDense, BackendDense
	if ob.entry != dst.entry || da != db {
		return fmt.Errorf("%w: %v vs %v", ErrIncompatible, dst, ob)
	}
	return registry.Merge(dst.inner, ob.inner)
}
