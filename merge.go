package repro

import (
	"fmt"

	"repro/internal/registry"
)

// Merge adds src's state into dst — the coordinator step of the
// distributed model: by linearity, merging site sketches yields the
// sketch of the summed vector. Both sketches must have been built (or
// unmarshaled) with the same algorithm, dimension, words, depth, and
// seed.
//
// Non-linear algorithms (cmcu, cmlcu) return ErrNotLinear: the whole
// point of conservative update is that buckets no longer hold sums, so
// no merge exists. Shape or seed mismatches return ErrIncompatible.
func Merge(dst, src Sketch) error {
	for _, s := range []Sketch{dst, src} {
		if !IsLinear(s.Algo()) {
			return fmt.Errorf("%w: %s", ErrNotLinear, s.Algo())
		}
	}
	if l, ok := dst.(Linear); ok {
		return l.Merge(src)
	}
	return fmt.Errorf("%w: %T", ErrNotLinear, dst)
}

// mergeHandles implements Linear.Merge for every handle flavor.
func mergeHandles(dst *handle, other Sketch) error {
	o, ok := other.(baser)
	if !ok {
		return fmt.Errorf("%w: %T was not built by repro.New", ErrIncompatible, other)
	}
	ob := o.base()
	if ob.entry != dst.entry || ob.desc != dst.desc {
		return fmt.Errorf("%w: %v vs %v", ErrIncompatible, dst, ob)
	}
	return registry.Merge(dst.inner, ob.inner)
}
