// Command sketchlint is the repository's static-analysis suite: a
// multichecker over the four invariant analyzers (lockdefer,
// hotpathalloc, boundedmake, typederr) built on internal/analysis.
//
// Three modes:
//
//	sketchlint ./...                 standalone: analyze packages
//	sketchlint -print-path           build self, print binary path
//	go vet -vettool=$(go run repro/cmd/sketchlint -print-path) ./...
//
// The last runs sketchlint under the go vet unit-checker protocol:
// vet invokes the tool once per package with a JSON .cfg file naming
// the sources and the export data of every dependency, plus -V=full
// and -flags probes for cache keying and flag discovery.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/boundedmake"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockdefer"
	"repro/internal/analysis/typederr"
)

var analyzers = []*analysis.Analyzer{
	lockdefer.Analyzer,
	hotpathalloc.Analyzer,
	boundedmake.Analyzer,
	typederr.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	// go vet protocol probes come before flag parsing: the tool must
	// answer -V=full (cache keying) and -flags (flag discovery)
	// exactly, whatever else its flag set holds.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			// A "devel" version line must carry a buildID go vet can
			// key its action cache on; the hash of the executable
			// itself changes exactly when the analyzers do.
			fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
			return
		}
		if arg == "-flags" || arg == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	printPath := flag.Bool("print-path", false, "build sketchlint and print the binary path (for go vet -vettool)")
	tests := flag.Bool("tests", true, "also analyze _test.go files and test packages")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [packages]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printPath {
		path, err := buildSelf()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sketchlint:", err)
			os.Exit(1)
		}
		fmt.Println(path)
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(1)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.Run(".", *tests, selected, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sketchlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selfHash returns the hex SHA-256 of the running binary, a content
// ID for vet's cache key.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// buildSelf compiles the sketchlint binary into the user cache and
// returns its path, so `go vet -vettool=$(go run repro/cmd/sketchlint
// -print-path)` works without a checked-in binary. (The `go run`
// temporary binary itself is deleted when go run exits, so printing
// os.Executable() would hand vet a dangling path.)
func buildSelf() (string, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		dir = os.TempDir()
	}
	dir = filepath.Join(dir, "sketchlint")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", err
	}
	out := filepath.Join(dir, "sketchlint")
	cmd := exec.Command("go", "build", "-o", out, "repro/cmd/sketchlint")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("building sketchlint: %w", err)
	}
	return out, nil
}

// vetConfig is the JSON unit description go vet hands the tool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	SucceedOnTypecheckFailure bool
	VetxOnly                  bool
	VetxOutput                string
}

// vetUnit analyzes one package under the vet unit-checker protocol
// and returns the process exit code.
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sketchlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Facts file: this suite exports none, but vet requires the output
	// to exist for downstream units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "sketchlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if m, ok := cfg.ImportMap[path]; ok {
			path = m
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("sketchlint: no export data for %q", path)
		}
		return os.Open(f)
	}
	findings, err := runUnit(cfg, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// runUnit resolves the unit's file names (the protocol may hand them
// relative to the unit directory) and analyzes the package.
func runUnit(cfg vetConfig, lookup func(string) (io.ReadCloser, error)) ([]driver.Finding, error) {
	filenames := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) && cfg.Dir != "" {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames[i] = f
	}
	return driver.RunFiles(cfg.ImportPath, filenames, lookup, analyzers)
}
