package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/driver"
)

// writeModule lays out a throwaway module reintroducing the two bug
// classes the lint job must catch: the PR 2 unpaired shard lock and
// an unbounded decode make.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintprobe\n\ngo 1.24\n",
		"internal/concurrent/concurrent.go": `package concurrent

import "sync"

type Shard struct {
	mu sync.Mutex
	n  int
}

func (s *Shard) Update(d int) {
	s.mu.Lock()
	s.n += d
	s.mu.Unlock()
}
`,
		"internal/codec/codec.go": `package codec

import (
	"encoding/binary"
	"io"
)

func DecodePayload(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func wantProbeFindings(t *testing.T, out string) {
	t.Helper()
	if !strings.Contains(out, "not paired with a deferred") {
		t.Errorf("reintroduced unpaired lock not flagged; output:\n%s", out)
	}
	if !strings.Contains(out, "not dominated by a bound check") {
		t.Errorf("reintroduced unbounded decode make not flagged; output:\n%s", out)
	}
}

// TestReintroducedBugsFailStandalone drives the suite the way `make
// lint` does and checks both regressions are reported.
func TestReintroducedBugsFailStandalone(t *testing.T) {
	dir := writeModule(t)
	findings, err := driver.Run(dir, false, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.String())
	}
	wantProbeFindings(t, strings.Join(msgs, "\n"))
}

// TestReintroducedBugsFailUnderVet builds the real binary and runs it
// behind `go vet -vettool`, exercising the unit-checker protocol end
// to end.
func TestReintroducedBugsFailUnderVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "sketchlint")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/sketchlint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sketchlint: %v\n%s", err, out)
	}

	dir := writeModule(t)
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a module with reintroduced bugs:\n%s", out)
	}
	wantProbeFindings(t, string(out))
}

// TestCleanModulePassesUnderVet checks the protocol's happy path: a
// module with none of the bug classes vets clean.
func TestCleanModulePassesUnderVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "sketchlint")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/sketchlint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sketchlint: %v\n%s", err, out)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module cleanprobe\n\ngo 1.24\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	src := `package clean

func Double(n int) int { return 2 * n }
`
	if err := os.WriteFile(filepath.Join(dir, "clean.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
