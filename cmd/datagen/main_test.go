package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/workload"
)

func TestRunEmitsVectorToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "gaussian", "-n", "50", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 50 {
		t.Fatalf("emitted %d lines, want 50", len(lines))
	}
	x, err := workload.ReadVector(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 50 {
		t.Fatalf("parsed %d values", len(x))
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.txt")
	if err := run([]string{"-dataset", "wiki", "-n", "30", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	x, err := workload.ReadVectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 30 {
		t.Fatalf("file has %d values", len(x))
	}
}

func TestRunHudongEmitsEdgeStream(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "hudong", "-n", "100", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// 7.7 edges per article on average.
	if len(lines) != 770 {
		t.Fatalf("edge stream length %d, want 770", len(lines))
	}
}

func TestRunAllDatasets(t *testing.T) {
	for _, ds := range []string{"gaussian", "gaussian2", "worldcup", "wiki", "higgs", "meme"} {
		var out bytes.Buffer
		if err := run([]string{"-dataset", ds, "-n", "20"}, &out); err != nil {
			t.Errorf("%s: %v", ds, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-n", "-5"}, &bytes.Buffer{}); err == nil {
		t.Error("negative n should fail")
	}
	if err := run([]string{"-out", filepath.Join("no", "such", "dir", "f.txt"), "-n", "5"}, &bytes.Buffer{}); err == nil {
		t.Error("uncreatable output file should fail")
	}
	if _, err := os.Stat("f.txt"); err == nil {
		t.Error("stray output file created")
	}
}
