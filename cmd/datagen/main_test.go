package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/workload"
)

func TestRunEmitsVectorToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "gaussian", "-n", "50", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 50 {
		t.Fatalf("emitted %d lines, want 50", len(lines))
	}
	x, err := workload.ReadVector(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 50 {
		t.Fatalf("parsed %d values", len(x))
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.txt")
	if err := run([]string{"-dataset", "wiki", "-n", "30", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	x, err := workload.ReadVectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 30 {
		t.Fatalf("file has %d values", len(x))
	}
}

func TestRunHudongEmitsEdgeStream(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "hudong", "-n", "100", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// 7.7 edges per article on average.
	if len(lines) != 770 {
		t.Fatalf("edge stream length %d, want 770", len(lines))
	}
}

func TestRunAllDatasets(t *testing.T) {
	for _, ds := range []string{"gaussian", "gaussian2", "worldcup", "wiki", "higgs", "meme"} {
		var out bytes.Buffer
		if err := run([]string{"-dataset", ds, "-n", "20"}, &out); err != nil {
			t.Errorf("%s: %v", ds, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-n", "-5"}, &bytes.Buffer{}); err == nil {
		t.Error("negative n should fail")
	}
	if err := run([]string{"-out", filepath.Join("no", "such", "dir", "f.txt"), "-n", "5"}, &bytes.Buffer{}); err == nil {
		t.Error("uncreatable output file should fail")
	}
	if _, err := os.Stat("f.txt"); err == nil {
		t.Error("stray output file created")
	}
}

func TestRunIngestDrivesBatchPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	var out bytes.Buffer
	err := run([]string{"-dataset", "hudong", "-n", "200", "-seed", "5",
		"-out", path, "-ingest", "l2sr", "-batch", "64"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "updates into l2sr") {
		t.Fatalf("missing ingest summary, got: %q", out.String())
	}
	// The data file is still written alongside the ingest run.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("edge stream file not written: %v", err)
	}

	// Vector datasets ingest their non-zero coordinates.
	vpath := filepath.Join(t.TempDir(), "v.txt")
	out.Reset()
	err = run([]string{"-dataset", "gaussian", "-n", "500", "-out", vpath,
		"-ingest", "countmin", "-batch", "128"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "updates into countmin") {
		t.Fatalf("missing ingest summary, got: %q", out.String())
	}
}

func TestRunWindowedIngest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	var out bytes.Buffer
	err := run([]string{"-dataset", "hudong", "-n", "200", "-seed", "5",
		"-out", path, "-ingest", "countmin", "-batch", "64", "-panes", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "windowed ingest") || !strings.Contains(s, "4 panes") {
		t.Fatalf("missing windowed summary, got: %q", s)
	}
	// The stream spans one full window by default, so some early-pane
	// mass has already been merged out of nothing — but nothing was
	// advanced past the window, so all mass is still live.
	if !strings.Contains(s, "live mass") {
		t.Fatalf("missing live-mass report, got: %q", s)
	}

	// An explicit rotation much shorter than the stream must expire
	// early traffic: the run still succeeds and reports advances.
	out.Reset()
	err = run([]string{"-dataset", "hudong", "-n", "200", "-seed", "5",
		"-out", path, "-ingest", "exact", "-batch", "32", "-panes", "2", "-rotate", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "advances") {
		t.Fatalf("missing advance count, got: %q", out.String())
	}
}

func TestRunWindowedValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.txt")
	if err := run([]string{"-n", "10", "-panes", "4"}, &bytes.Buffer{}); err == nil {
		t.Error("-panes without -ingest should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "countmin", "-panes", "-2"}, &bytes.Buffer{}); err == nil {
		t.Error("negative panes should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "countmin", "-panes", "2", "-rotate", "-1"}, &bytes.Buffer{}); err == nil {
		t.Error("negative rotate should fail")
	}
	// Windowed mode needs a linear algorithm: the conservative-update
	// baselines must be rejected with an error, not a panic.
	if err := run([]string{"-dataset", "hudong", "-n", "50", "-out", path,
		"-ingest", "cmcu", "-panes", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("windowed cmcu should fail (not linear)")
	}
}

func TestRunIngestValidation(t *testing.T) {
	if err := run([]string{"-n", "10", "-ingest", "l2sr"}, &bytes.Buffer{}); err == nil {
		t.Error("-ingest without -out should fail")
	}
	path := filepath.Join(t.TempDir(), "v.txt")
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown ingest algorithm should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "l2sr", "-batch", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("non-positive batch should fail")
	}
	// A conservative-update sketch fed negative coordinates must
	// surface a CLI error, not a panic stack trace.
	err := run([]string{"-dataset", "gaussian", "-bias", "0", "-n", "200", "-out", path,
		"-ingest", "cmcu"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "cmcu") {
		t.Errorf("negative updates into cmcu should error cleanly, got %v", err)
	}
}

// A run killed after -checkpoint and resumed with -resume must end in
// the same state as one uninterrupted run: the two-phase ingest of the
// same stream reports the same live mass as the single-phase one.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.txt")
	ckpt := filepath.Join(dir, "w.ckpt")

	// Phase 1: windowed ingest, checkpoint at the end.
	var out bytes.Buffer
	err := run([]string{"-dataset", "hudong", "-n", "300", "-seed", "4", "-out", data,
		"-ingest", "countmin", "-batch", "64", "-panes", "3", "-rotate", "150",
		"-checkpoint", ckpt}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint written to") {
		t.Fatalf("missing checkpoint report, got: %q", out.String())
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint file: %v (%v)", err, fi)
	}

	// Phase 2: resume from it and ingest the stream again (any stream
	// works — the point is that restored state keeps absorbing).
	out.Reset()
	err = run([]string{"-dataset", "hudong", "-n", "300", "-seed", "4", "-out", data,
		"-ingest", "countmin", "-batch", "64", "-panes", "3", "-rotate", "150",
		"-resume", ckpt}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "resumed countmin window") {
		t.Fatalf("missing resume report, got: %q", s)
	}
	if !strings.Contains(s, "live mass") {
		t.Fatalf("missing live-mass report, got: %q", s)
	}

	// A windowed checkpoint selects windowed mode by itself: resuming
	// without -panes works, with the pane count from the file.
	out.Reset()
	err = run([]string{"-dataset", "hudong", "-n", "300", "-seed", "4", "-out", data,
		"-ingest", "countmin", "-batch", "64", "-resume", ckpt}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 panes") {
		t.Fatalf("pane count not adopted from checkpoint, got: %q", out.String())
	}

	// Plain (unbounded) checkpoint/resume: the resumed sketch holds
	// twice the mass of a single pass.
	plain := filepath.Join(dir, "s.ckpt")
	out.Reset()
	err = run([]string{"-dataset", "hudong", "-n", "300", "-seed", "4", "-out", data,
		"-ingest", "countmin", "-batch", "64", "-checkpoint", plain}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-dataset", "hudong", "-n", "300", "-seed", "4", "-out", data,
		"-ingest", "countmin", "-batch", "64", "-resume", plain}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed countmin") {
		t.Fatalf("missing resume report, got: %q", out.String())
	}
}

func TestRunCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.txt")
	if err := run([]string{"-n", "10", "-checkpoint", filepath.Join(dir, "c")}, &bytes.Buffer{}); err == nil {
		t.Error("-checkpoint without -ingest should fail")
	}
	if err := run([]string{"-n", "10", "-resume", filepath.Join(dir, "c")}, &bytes.Buffer{}); err == nil {
		t.Error("-resume without -ingest should fail")
	}
	// Resuming from a missing file errors cleanly.
	if err := run([]string{"-dataset", "hudong", "-n", "50", "-out", data,
		"-ingest", "countmin", "-resume", filepath.Join(dir, "absent")}, &bytes.Buffer{}); err == nil {
		t.Error("missing resume file should fail")
	}
	// Resuming a checkpoint of a different algorithm errors cleanly.
	ckpt := filepath.Join(dir, "cm.ckpt")
	if err := run([]string{"-dataset", "hudong", "-n", "50", "-out", data,
		"-ingest", "countmin", "-checkpoint", ckpt}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-dataset", "hudong", "-n", "50", "-out", data,
		"-ingest", "l2sr", "-resume", ckpt}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "countmin") {
		t.Errorf("algorithm mismatch should name the checkpointed algo, got %v", err)
	}
}

// -monitor deals the stream across sites and reports communication
// against the budget, with the coordinator verified bit-identical to
// a single reference sketch.
func TestRunMonitorMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	var out bytes.Buffer
	err := run([]string{"-dataset", "hudong", "-n", "400", "-seed", "3", "-out", path,
		"-ingest", "countmin", "-monitor", "6", "-sync", "40", "-fanin", "3",
		"-mshards", "2", "-site-checkpoint-every", "1", "-churn", "2:1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"across 6 sites", "delta shipping", "1 restarts",
		"words/round budget", "verified bit-identical",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("monitor summary missing %q, got: %q", want, s)
		}
	}

	// The full-state baseline runs through the same path.
	out.Reset()
	err = run([]string{"-dataset", "hudong", "-n", "400", "-seed", "3", "-out", path,
		"-ingest", "countmin", "-monitor", "6", "-sync", "40", "-full"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "full-state shipping") {
		t.Fatalf("full-state summary missing, got: %q", out.String())
	}
}

func TestRunMonitorValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.txt")
	if err := run([]string{"-n", "10", "-monitor", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("-monitor without -ingest should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "l2sr", "-monitor", "-2"}, &bytes.Buffer{}); err == nil {
		t.Error("negative -monitor should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "l2sr", "-monitor", "2", "-panes", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("-monitor with -panes should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "l2sr", "-monitor", "2", "-churn", "oops"}, &bytes.Buffer{}); err == nil {
		t.Error("malformed -churn should fail")
	}
	if err := run([]string{"-n", "10", "-out", path, "-ingest", "cmcu", "-monitor", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("non-linear algorithm in -monitor should fail")
	}
}
