// Command datagen materializes the synthetic datasets of §5.1 to disk,
// one coordinate value per line, for use with cmd/sketchtool or
// external tools.
//
// Usage:
//
//	datagen -dataset gaussian|gaussian2|worldcup|wiki|higgs|meme|hudong \
//	        [-n N] [-seed S] [-out FILE] [-ingest ALGO] [-batch B] \
//	        [-panes P] [-rotate R] [-checkpoint FILE] [-resume FILE]
//
// For hudong the output is the edge stream (one source article id per
// line) rather than the final vector; every other dataset emits the
// frequency vector.
//
// With -ingest the generated dataset is additionally fed into the
// named sketch through the batched update path (repro.UpdateBatch, B
// elements per batch) and a throughput summary is printed — a quick
// end-to-end smoke of the high-throughput ingestion pipeline. -ingest
// requires -out so the summary does not interleave with the data.
//
// With -panes the ingestion runs in windowed mode: the stream flows
// into a repro.Windowed sliding window of P panes (the algorithm must
// be linear), rotating one pane every R updates (-rotate, default
// len/P so the stream spans one full window), and the summary
// additionally reports how much of the stream's mass is still live in
// the window — the monitoring shape where only recent traffic counts.
//
// With -monitor the ingestion instead drives the continuous
// distributed-monitoring fabric: the update stream is dealt round-robin
// across that many sites, each site sketches locally, and the sketches
// flow up a fan-in -fanin aggregation tree as delta frames every -sync
// updates (-full ships complete state every round instead — the
// communication baseline). -mshards sets the per-site replica shard
// count, -site-checkpoint-every the site checkpoint cadence, and
// -churn a comma-separated round:site list of mid-run site restarts.
// The summary reports rounds, per-round communication against the
// theoretical sites × sketch-size budget, and verifies the coordinator
// against a single reference sketch fed the whole stream.
//
// With -checkpoint the ingested state is written to the named file
// after the stream drains — the wire-format v2 checkpoint of the
// sliding window in windowed mode, the encoded sketch otherwise. With
// -resume ingestion starts from a previously written checkpoint
// instead of an empty sketch: a datagen run killed between the two
// flags picks up exactly where it left off. Both require -ingest. A
// windowed checkpoint selects windowed mode by itself (-panes is not
// needed on resume), and the window's configuration (panes, shape)
// comes from the checkpoint file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	dataset := fs.String("dataset", "gaussian", "dataset name (gaussian, gaussian2, worldcup, wiki, higgs, meme, hudong)")
	n := fs.Int("n", 1_000_000, "vector dimension (article count for hudong)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	bias := fs.Float64("bias", 100, "gaussian bias b")
	sigma := fs.Float64("sigma", 15, "gaussian sigma")
	ingest := fs.String("ingest", "", "also ingest the dataset into this sketch algorithm via the batched update path and report throughput (requires -out)")
	batch := fs.Int("batch", 4096, "updates per batch for -ingest")
	panes := fs.Int("panes", 0, "ingest through a sliding window of this many panes (0 = unbounded; requires -ingest)")
	rotate := fs.Int("rotate", 0, "updates per pane in windowed mode (0 = stream length / panes)")
	checkpoint := fs.String("checkpoint", "", "write the ingested state to this file after the stream drains (requires -ingest)")
	resume := fs.String("resume", "", "start ingestion from this checkpoint file instead of an empty sketch (requires -ingest)")
	monitor := fs.Int("monitor", 0, "deal the stream across this many sites and run the distributed-monitoring fabric (requires -ingest)")
	fanIn := fs.Int("fanin", 4, "aggregation-tree fan-in for -monitor")
	mshards := fs.Int("mshards", 4, "per-site replica shards for -monitor")
	sync := fs.Int("sync", 1024, "updates each site ingests between synchronization rounds for -monitor")
	full := fs.Bool("full", false, "ship full site state every round instead of deltas (-monitor baseline)")
	siteCkptEvery := fs.Int("site-checkpoint-every", 4, "site checkpoint cadence in rounds for -monitor (0 = replay from scratch on restart)")
	churn := fs.String("churn", "", "comma-separated round:site restart schedule for -monitor, e.g. 3:1,5:0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("n must be positive, got %d", *n)
	}
	if *ingest != "" {
		if *out == "" {
			return fmt.Errorf("-ingest requires -out (the summary goes to stdout)")
		}
		if *batch <= 0 {
			return fmt.Errorf("batch must be positive, got %d", *batch)
		}
	}
	if *panes != 0 {
		if *ingest == "" {
			return fmt.Errorf("-panes requires -ingest")
		}
		if *panes < 0 {
			return fmt.Errorf("panes must be non-negative, got %d", *panes)
		}
		if *rotate < 0 {
			return fmt.Errorf("rotate must be non-negative, got %d", *rotate)
		}
	}
	if (*checkpoint != "" || *resume != "") && *ingest == "" {
		return fmt.Errorf("-checkpoint and -resume require -ingest")
	}
	if *monitor < 0 {
		return fmt.Errorf("monitor must be non-negative, got %d", *monitor)
	}
	if *monitor > 0 {
		if *ingest == "" {
			return fmt.Errorf("-monitor requires -ingest")
		}
		if *panes != 0 || *checkpoint != "" || *resume != "" {
			return fmt.Errorf("-monitor is incompatible with -panes, -checkpoint, and -resume")
		}
	}
	restarts, err := parseChurn(*churn)
	if err != nil {
		return err
	}

	var w *bufio.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	} else {
		w = bufio.NewWriter(stdout)
	}
	defer w.Flush()

	r := rand.New(rand.NewSource(*seed))

	// Materialize the dataset as an update stream: coordinate indexes
	// plus deltas (unit increments for the hudong edge stream, one
	// weighted update per non-zero coordinate otherwise).
	var idx []int
	var deltas []float64
	if *dataset == "hudong" {
		edges := (workload.HudongLike{}).EdgeStream(*n, r)
		for _, src := range edges {
			w.WriteString(strconv.Itoa(src))
			w.WriteByte('\n')
		}
		if *ingest != "" {
			idx = edges
			deltas = make([]float64, len(edges))
			for j := range deltas {
				deltas[j] = 1
			}
		}
	} else {
		var gen workload.Generator
		switch *dataset {
		case "gaussian":
			gen = workload.Gaussian{Bias: *bias, Sigma: *sigma}
		case "gaussian2":
			gen = workload.GaussianShifted{Bias: *bias, Sigma: *sigma, ShiftCount: *n / 10_000, ShiftBy: 100_000}
		case "worldcup":
			gen = workload.WorldCupLike{}
		case "wiki":
			gen = workload.WikiLike{}
		case "higgs":
			gen = workload.HiggsLike{}
		case "meme":
			gen = workload.MemeLike{}
		default:
			return fmt.Errorf("unknown dataset %q", *dataset)
		}
		for i, v := range gen.Vector(*n, r) {
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			w.WriteByte('\n')
			if *ingest != "" && v != 0 {
				idx = append(idx, i)
				deltas = append(deltas, v)
			}
		}
	}

	if *ingest == "" {
		return nil
	}
	if *monitor > 0 {
		cfg := repro.MonitorConfig{
			Sites: *monitor, SyncEvery: *sync, FanIn: *fanIn, Shards: *mshards,
			FullState: *full, CheckpointEvery: *siteCkptEvery, Restarts: restarts,
		}
		return ingestMonitor(stdout, *ingest, *n, cfg, idx, deltas)
	}
	windowed := *panes > 0
	if !windowed && *resume != "" {
		// Without -panes, let the checkpoint file pick the mode: a
		// windowed checkpoint resumes as a window (its pane count comes
		// from the wire), anything else goes through the plain path.
		w, err := checkpointIsWindowed(*resume)
		if err != nil {
			return err
		}
		windowed = w
	}
	if windowed {
		return ingestWindowed(stdout, *ingest, *n, *batch, *panes, *rotate, *checkpoint, *resume, idx, deltas)
	}
	return ingestStream(stdout, *ingest, *n, *batch, *checkpoint, *resume, idx, deltas)
}

// parseChurn parses the -churn schedule: comma-separated round:site
// pairs.
func parseChurn(s string) ([]repro.MonitorRestart, error) {
	if s == "" {
		return nil, nil
	}
	var out []repro.MonitorRestart
	for _, part := range strings.Split(s, ",") {
		var r repro.MonitorRestart
		if _, err := fmt.Sscanf(part, "%d:%d", &r.Round, &r.Site); err != nil {
			return nil, fmt.Errorf("churn entry %q is not round:site", part)
		}
		out = append(out, r)
	}
	return out, nil
}

// ingestMonitor deals the update stream round-robin across the
// configured sites and runs the delta-shipping aggregation tree,
// reporting round count and communication against the theoretical
// sites × sketch-size budget, then verifies the coordinator against a
// single sketch fed the whole stream.
func ingestMonitor(out io.Writer, algo string, dim int, cfg repro.MonitorConfig, idx []int, deltas []float64) error {
	streams := make([][]repro.SiteUpdate, cfg.Sites)
	for j := range idx {
		p := j % cfg.Sites
		streams[p] = append(streams[p], repro.SiteUpdate{I: idx[j], Delta: deltas[j]})
	}
	start := time.Now()
	coord, rep, err := repro.Monitor(algo, cfg, streams, nil, repro.WithDim(dim))
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	single, err := repro.New(algo, repro.WithDim(dim))
	if err != nil {
		return err
	}
	if err := repro.UpdateBatch(single, idx, deltas); err != nil {
		return err
	}
	diverged := 0
	for i := 0; i < dim; i++ {
		if coord.Query(i) != single.Query(i) {
			diverged++
		}
	}
	mode := "delta"
	if cfg.FullState {
		mode = "full-state"
	}
	fmt.Fprintf(out, "monitored %d updates across %d sites (%s shipping, fan-in %d, %d shards, sync every %d, %d restarts): %d rounds in %v\n",
		rep.UpdatesApplied, cfg.Sites, mode, cfg.FanIn, cfg.Shards, cfg.SyncEvery, rep.Restarts, rep.Rounds, elapsed.Round(time.Microsecond))
	perRound := 0
	if rep.Rounds > 0 {
		perRound = rep.CommWords / rep.Rounds
	}
	fmt.Fprintf(out, "communication: %d bytes, %d words total; %d words/round against the %d words/round budget (%d sites × %d-word sketch)\n",
		rep.CommBytes, rep.CommWords, perRound, rep.BudgetWordsPerRound, cfg.Sites, rep.SketchWords)
	if diverged != 0 {
		return fmt.Errorf("coordinator diverges from the single-sketch reference at %d of %d coordinates", diverged, dim)
	}
	fmt.Fprintf(out, "coordinator verified bit-identical to a single sketch over all %d coordinates\n", dim)
	return nil
}

// checkpointIsWindowed sniffs a checkpoint file's container header:
// wire-format v2 magic "BAS2" followed by the container kind, where
// kind 3 is a windowed checkpoint (see the wire-format section of the
// repro README).
func checkpointIsWindowed(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var hdr [5]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false, fmt.Errorf("reading checkpoint %s: %w", path, err)
	}
	return string(hdr[:4]) == "BAS2" && hdr[4] == 3, nil
}

// verifyResumed checks a restored structure continues the requested
// run: same algorithm (resolved through the registry, so aliases
// match) and dimension.
func verifyResumed(path, algo string, dim int, gotAlgo string, gotDim int) error {
	probe, err := repro.New(algo, repro.WithDim(dim))
	if err != nil {
		return err
	}
	if gotAlgo != probe.Algo() || gotDim != dim {
		return fmt.Errorf("checkpoint %s holds %s (n=%d), run wants %s (n=%d)",
			path, gotAlgo, gotDim, probe.Algo(), dim)
	}
	return nil
}

// resumeSketch loads a single-sketch checkpoint and verifies it is a
// continuation of the requested run.
func resumeSketch(path, algo string, dim int) (repro.Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sk, err := repro.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("resuming from %s: %w", path, err)
	}
	if err := verifyResumed(path, algo, dim, sk.Algo(), sk.Dim()); err != nil {
		return nil, err
	}
	return sk, nil
}

// writeCheckpoint writes enc's output to path and reports the size.
func writeCheckpoint(out io.Writer, path string, enc func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f); err != nil {
		f.Close()
		return fmt.Errorf("writing checkpoint %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "checkpoint written to %s (%d bytes)\n", path, info.Size())
	return nil
}

// ingestStream drives the batched ingestion path: the whole update
// stream flows through repro.UpdateBatch in batches of batchSize, and
// the measured throughput is reported. Sketch panics (e.g. a negative
// coordinate fed to a conservative-update sketch) surface as ordinary
// CLI errors.
func ingestStream(out io.Writer, algo string, dim, batchSize int, checkpoint, resume string, idx []int, deltas []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ingesting into %s: %v", algo, r)
		}
	}()
	var sk repro.Sketch
	if resume != "" {
		if sk, err = resumeSketch(resume, algo, dim); err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed %s (n=%d, %d words) from %s\n", sk.Algo(), sk.Dim(), sk.Words(), resume)
	} else if sk, err = repro.New(algo, repro.WithDim(dim)); err != nil {
		return err
	}
	start := time.Now()
	for pos := 0; pos < len(idx); pos += batchSize {
		end := pos + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		if err := repro.UpdateBatch(sk, idx[pos:end], deltas[pos:end]); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	perUpdate := 0.0
	if len(idx) > 0 {
		perUpdate = float64(elapsed.Nanoseconds()) / float64(len(idx))
	}
	fmt.Fprintf(out, "ingested %d updates into %s (n=%d, %d words) in %v: %.1f ns/update at batch size %d\n",
		len(idx), sk.Algo(), dim, sk.Words(), elapsed.Round(time.Microsecond), perUpdate, batchSize)
	if checkpoint != "" {
		return writeCheckpoint(out, checkpoint, func(w io.Writer) error { return repro.Encode(w, sk) })
	}
	return nil
}

// ingestWindowed drives the sliding-window ingestion path: the update
// stream flows through repro.Windowed in batches, rotating one pane
// every rotate updates, and the summary reports how much of the
// stream's mass is still live in the window at the end — the
// monitoring shape where old traffic is meant to be forgotten.
func ingestWindowed(out io.Writer, algo string, dim, batchSize, panes, rotate int, checkpoint, resume string, idx []int, deltas []float64) error {
	var w *repro.Windowed
	if resume != "" {
		f, err := os.Open(resume)
		if err != nil {
			return err
		}
		w, err = repro.RestoreWindowed(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("resuming from %s: %w", resume, err)
		}
		if err := verifyResumed(resume, algo, dim, w.Algo(), w.Dim()); err != nil {
			return err
		}
		// The window's configuration comes from the checkpoint.
		panes = w.Panes()
		fmt.Fprintf(out, "resumed %s window (n=%d, %d panes, %d live) from %s\n",
			w.Algo(), w.Dim(), panes, w.Live(), resume)
	} else {
		var err error
		w, err = repro.NewWindowed(1, algo, repro.WithDim(dim), repro.WithPanes(panes))
		if err != nil {
			return err
		}
	}
	if rotate == 0 {
		// Default: the whole stream spans exactly one window.
		if rotate = len(idx) / panes; rotate == 0 {
			rotate = 1
		}
	}
	var total float64
	for _, d := range deltas {
		total += d
	}
	start := time.Now()
	advances := 0
	sinceRotate := 0
	// Chunks are capped at the pane edge so every pane holds exactly
	// rotate updates — the live-mass report then means "the last
	// panes·rotate updates", not "whatever batch granularity allowed".
	for pos := 0; pos < len(idx); {
		m := batchSize
		if rem := len(idx) - pos; rem < m {
			m = rem
		}
		if room := rotate - sinceRotate; m > room {
			m = room
		}
		if err := w.UpdateBatch(0, idx[pos:pos+m], deltas[pos:pos+m]); err != nil {
			return err
		}
		pos += m
		if sinceRotate += m; sinceRotate == rotate && pos < len(idx) {
			if err := w.Advance(1); err != nil {
				return err
			}
			advances++
			sinceRotate = 0
		}
	}
	elapsed := time.Since(start)

	// Live mass: sum the windowed estimates over every touched
	// coordinate (batched) — against the full-stream mass it shows how
	// much the window has already forgotten.
	touched := make([]int, 0, len(idx))
	seen := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			touched = append(touched, i)
		}
	}
	var live float64
	est := make([]float64, batchSize)
	for pos := 0; pos < len(touched); pos += batchSize {
		end := pos + batchSize
		if end > len(touched) {
			end = len(touched)
		}
		if err := w.QueryBatch(touched[pos:end], est[:end-pos]); err != nil {
			return err
		}
		for _, v := range est[:end-pos] {
			live += v
		}
	}
	perUpdate := 0.0
	if len(idx) > 0 {
		perUpdate = float64(elapsed.Nanoseconds()) / float64(len(idx))
	}
	fmt.Fprintf(out, "windowed ingest of %d updates into %s (n=%d, %d panes, rotate every %d, %d advances, %d live panes) in %v: %.1f ns/update; live mass %.0f of %.0f total\n",
		len(idx), w.Algo(), dim, panes, rotate, advances, w.Live(), elapsed.Round(time.Microsecond), perUpdate, live, total)
	if checkpoint != "" {
		return writeCheckpoint(out, checkpoint, w.Checkpoint)
	}
	return nil
}
