// Command datagen materializes the synthetic datasets of §5.1 to disk,
// one coordinate value per line, for use with cmd/sketchtool or
// external tools.
//
// Usage:
//
//	datagen -dataset gaussian|gaussian2|worldcup|wiki|higgs|meme|hudong \
//	        [-n N] [-seed S] [-out FILE]
//
// For hudong the output is the edge stream (one source article id per
// line) rather than the final vector; every other dataset emits the
// frequency vector.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"repro/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	dataset := fs.String("dataset", "gaussian", "dataset name (gaussian, gaussian2, worldcup, wiki, higgs, meme, hudong)")
	n := fs.Int("n", 1_000_000, "vector dimension (article count for hudong)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	bias := fs.Float64("bias", 100, "gaussian bias b")
	sigma := fs.Float64("sigma", 15, "gaussian sigma")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("n must be positive, got %d", *n)
	}

	var w *bufio.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	} else {
		w = bufio.NewWriter(stdout)
	}
	defer w.Flush()

	r := rand.New(rand.NewSource(*seed))

	if *dataset == "hudong" {
		for _, src := range (workload.HudongLike{}).EdgeStream(*n, r) {
			w.WriteString(strconv.Itoa(src))
			w.WriteByte('\n')
		}
		return nil
	}

	var gen workload.Generator
	switch *dataset {
	case "gaussian":
		gen = workload.Gaussian{Bias: *bias, Sigma: *sigma}
	case "gaussian2":
		gen = workload.GaussianShifted{Bias: *bias, Sigma: *sigma, ShiftCount: *n / 10_000, ShiftBy: 100_000}
	case "worldcup":
		gen = workload.WorldCupLike{}
	case "wiki":
		gen = workload.WikiLike{}
	case "higgs":
		gen = workload.HiggsLike{}
	case "meme":
		gen = workload.MemeLike{}
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	for _, v := range gen.Vector(*n, r) {
		w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		w.WriteByte('\n')
	}
	return nil
}
