// Command biasrepro regenerates the tables behind every figure in the
// evaluation section (§5) of "Bias-Aware Sketches" (Chen & Zhang,
// VLDB 2017), plus the extra experiments the paper argues in prose
// (BOMP, Remark 1, Counter Braids).
//
// Usage:
//
//	biasrepro [-fig N] [-scale F] [-seed S] [-depth D] [-csv] [-v]
//
// With -fig 0 (the default) every figure runs in order. -scale
// multiplies the default (laptop-sized) vector dimensions; see
// DESIGN.md for the mapping between paper sizes and defaults. Output
// is an aligned text table per sub-figure, or CSV rows with -csv.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "biasrepro: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("biasrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (1-9; 10=BOMP 11=Remark1 12=CounterBraids 13=DengRafiei), 0 = all")
	scale := fs.Float64("scale", 1, "dimension multiplier over laptop defaults")
	seed := fs.Int64("seed", 1, "random seed")
	depth := fs.Int("depth", 9, "sketch depth d for the bias-aware algorithms")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	verbose := fs.Bool("v", false, "print per-cell progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Depth: *depth}
	if *verbose {
		cfg.Progress = stderr
	}

	var figs []int
	if *fig == 0 {
		for f := range bench.Figures {
			figs = append(figs, f)
		}
		sort.Ints(figs)
	} else {
		if _, ok := bench.Figures[*fig]; !ok {
			return fmt.Errorf("unknown figure %d (valid: 1-13)", *fig)
		}
		figs = []int{*fig}
	}

	for _, f := range figs {
		start := time.Now()
		tables := bench.Figures[f](cfg)
		for _, t := range tables {
			if *csv {
				t.CSV(stdout)
			} else {
				t.Print(stdout)
				fmt.Fprintln(stdout)
			}
		}
		if *verbose {
			fmt.Fprintf(stderr, "figure %d done in %v\n", f, time.Since(start))
		}
	}
	return nil
}
