package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errBuf bytes.Buffer
	// Figure 3 at minuscule scale finishes in a couple of seconds.
	if err := run([]string{"-fig", "3", "-scale", "0.001", "-depth", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig3", "average error", "maximum error", "l2-S/R"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "3", "-scale", "0.001", "-depth", "3", "-csv"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "figure,metric,s,") {
		t.Errorf("bad CSV header %q", first)
	}
}

func TestRunVerboseProgress(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "3", "-scale", "0.001", "-depth", "3", "-v"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "fig3") {
		t.Error("verbose mode produced no progress lines")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "99"}, &out, &errBuf); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run([]string{"-bogusflag"}, &out, &errBuf); err == nil {
		t.Error("bad flag should fail")
	}
}
