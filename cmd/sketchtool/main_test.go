package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func writeVector(t *testing.T, vals string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "v.txt")
	if err := os.WriteFile(path, []byte(vals), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueriesAndStats(t *testing.T) {
	path := writeVector(t, "100\n101\n99\n500\n100\n98\n102\n100\n99\n101\n")
	var out bytes.Buffer
	err := run([]string{"-in", path, "-algo", "l2sr", "-s", "8", "-d", "3",
		"-query", "0,3", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"sketched l2sr", "x[0]:", "x[3]: exact=500", "avg error", "max error"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeVector(t, "1\n2\n")
	cases := map[string][]string{
		"missing in":    {"-algo", "cm"},
		"unknown algo":  {"-in", path, "-algo", "bogus"},
		"bad index":     {"-in", path, "-algo", "cm", "-query", "zzz"},
		"index too big": {"-in", path, "-algo", "cm", "-query", "99"},
		"missing file":  {"-in", filepath.Join(t.TempDir(), "none.txt")},
	}
	for name, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunSaveProducesLoadableSketch(t *testing.T) {
	path := writeVector(t, strings.Repeat("100\n", 200))
	saved := filepath.Join(t.TempDir(), "sk.bin")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "cs", "-s", "16", "-d", "3",
		"-save", saved}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(saved)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sk, err := repro.UnmarshalFrom(f)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Algo() != "countsketch" || sk.Dim() != 200 {
		t.Errorf("loaded algo=%s dim=%d, want countsketch/200", sk.Algo(), sk.Dim())
	}
	if got := sk.Query(5); got < 50 || got > 150 {
		t.Errorf("loaded sketch Query(5) = %f, want ≈100", got)
	}
}

func TestRunAllAlgoNamesConstructible(t *testing.T) {
	path := writeVector(t, strings.Repeat("7\n", 100))
	for _, name := range repro.Algorithms() {
		if err := run([]string{"-in", path, "-algo", name, "-s", "8", "-d", "2"}, &bytes.Buffer{}); err != nil {
			t.Errorf("algo %s: %v", name, err)
		}
	}
	// The paper's legend names stay accepted as aliases.
	for _, alias := range []string{"cm", "cs", "CM-CU", "l2-S/R", "Deng-Rafiei"} {
		if err := run([]string{"-in", path, "-algo", alias, "-s", "8", "-d", "2"}, &bytes.Buffer{}); err != nil {
			t.Errorf("alias %s: %v", alias, err)
		}
	}
}
