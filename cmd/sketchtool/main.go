// Command sketchtool builds a sketch over a frequency vector read from
// a file (one value per line, as written by cmd/datagen) and either
// answers point queries or reports recovery quality against the exact
// vector.
//
// Usage:
//
//	sketchtool -in data.txt -algo l2sr [-s 4096] [-d 9] [-seed 1] \
//	           [-query 3,17,99] [-stats] [-save sketch.bin]
//
// Algorithms are the repro.New registry names (l1sr, l2sr, l1mean,
// l2mean, countmin, countmedian, countsketch, cmcu, cmlcu, dengrafiei)
// or the paper's legend aliases (cm, cs, ...). -save writes the sketch
// in the repro wire format; repro.UnmarshalFrom loads it back.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchtool: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sketchtool", flag.ContinueOnError)
	in := fs.String("in", "", "input vector file (one value per line)")
	algo := fs.String("algo", "l2sr", "algorithm (see repro.Algorithms)")
	s := fs.Int("s", 4096, "buckets per row")
	d := fs.Int("d", 9, "depth")
	seed := fs.Int64("seed", 1, "random seed")
	query := fs.String("query", "", "comma-separated coordinate indexes to query")
	stats := fs.Bool("stats", false, "report avg/max recovery error and compression")
	save := fs.String("save", "", "write the sketch to this file (repro wire format)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	x, err := workload.ReadVectorFile(*in)
	if err != nil {
		return err
	}

	sk, err := repro.New(*algo,
		repro.WithDim(len(x)), repro.WithWords(*s), repro.WithDepth(*d), repro.WithSeed(*seed))
	if err != nil {
		return err
	}
	if err := repro.SketchVector(sk, x); err != nil {
		return err
	}
	fmt.Fprintf(out, "sketched %s: n=%d words=%d (%.1fx compression)\n",
		sk.Algo(), len(x), sk.Words(), float64(len(x))/float64(sk.Words()))

	if *query != "" {
		for _, tok := range strings.Split(*query, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || i < 0 || i >= len(x) {
				return fmt.Errorf("bad index %q", tok)
			}
			fmt.Fprintf(out, "x[%d]: exact=%g estimate=%g\n", i, x[i], sk.Query(i))
		}
	}
	if *stats {
		xhat := repro.Recover(sk)
		fmt.Fprintf(out, "avg error = %g\nmax error = %g\n",
			repro.AvgAbsErr(x, xhat), repro.MaxAbsErr(x, xhat))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := repro.MarshalTo(f, sk); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved sketch to %s\n", *save)
	}
	return nil
}
