// Command sketchtool builds a sketch over a frequency vector read from
// a file (one value per line, as written by cmd/datagen) and either
// answers point queries or reports recovery quality against the exact
// vector.
//
// Usage:
//
//	sketchtool -in data.txt -algo l2sr [-s 4096] [-d 9] [-seed 1] \
//	           [-query 3,17,99] [-stats] [-save sketch.bin]
//
// Algorithms: l1sr, l2sr, l1mean, l2mean, cm (Count-Median), cs
// (Count-Sketch), cmcu, cmlcu, countmin, dengrafiei. -save writes the
// sketch in the sketchio wire format (linear sketches only).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/sketch"
	"repro/internal/sketchio"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

var algoNames = map[string]string{
	"l1sr":       bench.AlgoL1SR,
	"l2sr":       bench.AlgoL2SR,
	"l1mean":     bench.AlgoL1Mean,
	"l2mean":     bench.AlgoL2Mean,
	"cm":         bench.AlgoCM,
	"cs":         bench.AlgoCS,
	"cmcu":       bench.AlgoCMCU,
	"cmlcu":      bench.AlgoCMLCU,
	"countmin":   bench.AlgoCntMin,
	"dengrafiei": bench.AlgoDeng,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchtool: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sketchtool", flag.ContinueOnError)
	in := fs.String("in", "", "input vector file (one value per line)")
	algo := fs.String("algo", "l2sr", "algorithm")
	s := fs.Int("s", 4096, "buckets per row")
	d := fs.Int("d", 9, "depth")
	seed := fs.Int64("seed", 1, "random seed")
	query := fs.String("query", "", "comma-separated coordinate indexes to query")
	stats := fs.Bool("stats", false, "report avg/max recovery error and compression")
	save := fs.String("save", "", "write the sketch to this file (sketchio format)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	name, ok := algoNames[*algo]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	x, err := workload.ReadVectorFile(*in)
	if err != nil {
		return err
	}

	sk := bench.Make(name, len(x), *s, *d, *seed)
	sketch.SketchVector(sk, x)
	fmt.Fprintf(out, "sketched %s: n=%d words=%d (%.1fx compression)\n",
		name, len(x), sk.Words(), float64(len(x))/float64(sk.Words()))

	if *query != "" {
		for _, tok := range strings.Split(*query, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || i < 0 || i >= len(x) {
				return fmt.Errorf("bad index %q", tok)
			}
			fmt.Fprintf(out, "x[%d]: exact=%g estimate=%g\n", i, x[i], sk.Query(i))
		}
	}
	if *stats {
		xhat := sketch.Recover(sk)
		fmt.Fprintf(out, "avg error = %g\nmax error = %g\n",
			vecmath.AvgAbsErr(x, xhat), vecmath.MaxAbsErr(x, xhat))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		desc := sketchio.Desc{Algo: name, N: len(x), S: *s, D: *d, Seed: *seed}
		if err := sketchio.Save(f, desc, sk); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved sketch to %s\n", *save)
	}
	return nil
}
