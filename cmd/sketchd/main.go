// Command sketchd serves sketches over HTTP: a multi-tenant registry
// of named sketches (plain, sharded, windowed) with wire-v2 batched
// ingest, point/range/top-k queries, periodic checkpoints to a data
// directory with restore-on-boot, per-tenant load shedding, and a
// graceful drain on SIGINT/SIGTERM — stop accepting, let in-flight
// requests finish, write one final checkpoint, exit 0. See the
// README's Serving section for the endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dataDir := flag.String("data", "", "checkpoint directory (empty disables persistence)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (0 disables)")
	maxInflight := flag.Int("max-inflight", 64, "per-tenant in-flight request cap (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	if err := run(*addr, *dataDir, *ckptEvery, *maxInflight, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sketchd:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, ckptEvery time.Duration, maxInflight int, drainTimeout time.Duration) error {
	srv, err := server.New(server.Config{
		DataDir:         dataDir,
		CheckpointEvery: ckptEvery,
		MaxInflight:     maxInflight,
	})
	if err != nil {
		return err
	}

	// Bind before announcing: with -addr host:0 the kernel picks the
	// port, and scripts (and the smoke test) parse it from this line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		return err // listener died before any signal
	case sig := <-sigc:
		fmt.Printf("caught %s, draining\n", sig)
	}

	// Drain: stop accepting and wait for in-flight requests, then
	// write the final checkpoint so a restart answers bit-identically.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := srv.Drain(); err != nil {
		return err
	}
	fmt.Println("drained cleanly")
	return nil
}
