// Command benchjson regenerates the checked-in benchmark baseline
// (BENCH_9.json): it runs the curated ingestion/serving/codec
// benchmarks at the paper's §5.1 shape (s=4096, d=9) with -benchmem
// and writes the parsed results as stable, machine-readable JSON.
// Since PR 7 the set includes the counter-plane backend entries
// (BenchmarkBackend*): per-backend update/query/restore costs and the
// time-to-first-query comparison of an mmap open against a full
// decode of the same checkpoint file. Since PR 8 it also includes the
// served ingestion path (BenchmarkIngestEndpoint): one wire-v2 batch
// per op through the sketchd HTTP handler stack, so the serving tax
// over the in-process batched path stays visible. Since PR 9 it also
// includes the distributed-monitoring fabric (BenchmarkMonitorRound):
// one complete continuous-monitoring run per op, with the custom
// comm-B/round and comm-words/round metrics comparing delta shipping
// against the full-state baseline.
//
// The update/query benchmarks count one vector element per op, so
// ns/op is already normalized per element and directly comparable
// between the element-wise and batched paths; allocs/op on the batched
// and snapshot serving paths is the number the //sketch:hotpath
// contract pins to zero (see the AllocsPerRun gates in alloc_test.go
// files).
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_10.json] [-benchtime 0.3s] [-bench regexp]
//	go run ./cmd/benchjson -diff [-threshold 10] OLD.json NEW.json
//
// The -diff mode compares two committed baselines: it prints the
// per-benchmark ns/op delta for every entry present in both files
// (plus entries that appeared or disappeared) and exits non-zero if
// any shared benchmark slowed down by more than -threshold percent —
// the regression gate the CI baseline-diff step runs non-blocking on
// every PR.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"text/tabwriter"
)

// defaultBench selects the curated baseline set: per-algorithm update
// and query paths (element-wise and batched), the wire-format
// encode/decode round trip, and the counter-plane backend paths
// (per-backend update/query/restore and time-to-first-query).
const defaultBench = "^(BenchmarkUpdate|BenchmarkUpdateBatch|BenchmarkQuery|BenchmarkQueryBatch|BenchmarkEncode|BenchmarkDecode|BenchmarkBackendUpdate|BenchmarkBackendQuery|BenchmarkBackendRestore|BenchmarkBackendTimeToFirstQuery|BenchmarkIngestEndpoint|BenchmarkMonitorRound)$"

// defaultPackages are the benchmark homes: internal/bench holds the
// per-algorithm paths, bench the facade/codec paths, internal/server
// the served ingestion path.
var defaultPackages = []string{"./internal/bench", "./bench", "./internal/server"}

// Entry is one parsed benchmark result.
type Entry struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Monitoring-fabric metrics (BenchmarkMonitorRound): encoded frame
	// bytes / sketch words shipped per synchronization round.
	CommBytesPerRound float64 `json:"comm_bytes_per_round,omitempty"`
	CommWordsPerRound float64 `json:"comm_words_per_round,omitempty"`
}

// Baseline is the BENCH_9.json document.
type Baseline struct {
	Note      string  `json:"note"`
	Shape     Shape   `json:"shape"`
	Benchtime string  `json:"benchtime"`
	GoVersion string  `json:"go_version"`
	Entries   []Entry `json:"entries"`
}

// Shape records the paper's §5.1 benchmark configuration.
type Shape struct {
	N     int `json:"n"`
	Words int `json:"words"`
	Depth int `json:"depth"`
}

func main() {
	out := flag.String("out", "BENCH_10.json", "output file")
	benchtime := flag.String("benchtime", "0.3s", "go test -benchtime value")
	benchRe := flag.String("bench", defaultBench, "go test -bench regexp")
	diff := flag.Bool("diff", false, "compare two baseline files (OLD.json NEW.json) instead of running benchmarks")
	threshold := flag.Float64("threshold", 10, "with -diff: exit non-zero if any benchmark's ns/op regresses by more than this percentage")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two baseline files: benchjson -diff OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}

	var entries []Entry
	for _, pkg := range defaultPackages {
		es, err := runPackage(pkg, *benchRe, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		entries = append(entries, es...)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	doc := Baseline{
		Note: "ns/op on Update/Query paths is per vector element (batched benchmarks consume one element per op); " +
			"allocs/op on batched and snapshot paths is pinned to 0 by the //sketch:hotpath contract. " +
			"BenchmarkBackend* entries compare counter-plane backends (dense/compressed/mmap); " +
			"BenchmarkBackendTimeToFirstQuery is restart latency from a checkpoint file (full decode vs mmap). " +
			"BenchmarkIngestEndpoint is one 512-element wire-v2 batch per op through the sketchd HTTP stack " +
			"(divide ns/op by 512 for the per-element serving cost). " +
			"BenchmarkMonitorRound is one complete distributed-monitoring run per op on a skewed 64-site workload; " +
			"comm_bytes_per_round compares delta shipping against the full-state baseline. " +
			"Regenerate with: go run ./cmd/benchjson",
		Shape:     Shape{N: 1_000_000, Words: 4096, Depth: 9},
		Benchtime: *benchtime,
		GoVersion: goVersion(),
		Entries:   entries,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d entries to %s\n", len(entries), *out)
}

// runPackage runs one package's benchmarks and parses the output.
func runPackage(pkg, benchRe, benchtime string) ([]Entry, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", benchRe,
		"-benchmem", "-benchtime", benchtime, pkg)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, err
	}
	var entries []Entry
	sc := bufio.NewScanner(&outBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if e, ok := parseLine(pkg, sc.Text()); ok {
			entries = append(entries, e)
		}
	}
	return entries, sc.Err()
}

// parseLine parses one `go test -bench` result line of the form
//
//	BenchmarkName/sub-8   12345   678.9 ns/op   0 B/op   0 allocs/op
func parseLine(pkg, line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Package: pkg, Name: trimGOMAXPROCS(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		case "MB/s":
			e.MBPerSec = v
		case "comm-B/round":
			e.CommBytesPerRound = v
		case "comm-words/round":
			e.CommWordsPerRound = v
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// trimGOMAXPROCS drops the trailing -N processor-count suffix so the
// baseline diffs cleanly across machines with different core counts.
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadBaseline reads one committed baseline document.
func loadBaseline(path string) (Baseline, error) {
	var doc Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// benchKey identifies a benchmark across baselines.
type benchKey struct{ Pkg, Name string }

// runDiff compares two baselines and returns the process exit code:
// 0 when no shared benchmark regressed past the threshold, 1 when one
// did, 2 on unreadable input.
func runDiff(oldPath, newPath string, threshold float64) int {
	oldDoc, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldBy := map[benchKey]Entry{}
	for _, e := range oldDoc.Entries {
		oldBy[benchKey{e.Package, e.Name}] = e
	}
	newBy := map[benchKey]Entry{}
	for _, e := range newDoc.Entries {
		newBy[benchKey{e.Package, e.Name}] = e
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tdelta\n")
	var shared, added, removed int
	var regressions []string
	// Walk the new file in its committed order so the report is stable.
	for _, e := range newDoc.Entries {
		o, ok := oldBy[benchKey{e.Package, e.Name}]
		if !ok {
			added++
			fmt.Fprintf(w, "%s\t-\t%.2f\tnew\n", e.Name, e.NsPerOp)
			continue
		}
		shared++
		pct := (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%+.1f%%\n", e.Name, o.NsPerOp, e.NsPerOp, pct)
		if pct > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: %.2f -> %.2f ns/op (%+.1f%% > %.1f%%)",
				e.Name, o.NsPerOp, e.NsPerOp, pct, threshold))
		}
	}
	for _, e := range oldDoc.Entries {
		if _, ok := newBy[benchKey{e.Package, e.Name}]; !ok {
			removed++
			fmt.Fprintf(w, "%s\t%.2f\t-\tremoved\n", e.Name, e.NsPerOp)
		}
	}
	w.Flush()
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.1f%%:\n", len(regressions), threshold)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("benchjson: no regression past %.1f%% (%d shared, %d new, %d removed)\n",
		threshold, shared, added, removed)
	return 0
}

// goVersion returns the toolchain's version string.
func goVersion() string {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
