package repro_test

// Construction fuzz layer, mirroring the PR 3 wire fuzzers: hostile
// dimensions, shapes, and misbehaving level factories must make
// NewRange (and NewWindowed) return an error — never panic — and
// anything they do accept must answer queries.

import (
	"testing"
	"time"

	"repro"
)

// FuzzNewRange drives the dyadic-stack constructor with arbitrary
// dimensions and per-level factory behavior: negative and overflowing
// dims, factories that fail at a fuzzed level (returning nil, as the
// LevelFactory contract specifies for unusable parameters), and
// factories building real sketches at fuzzed shapes. The contract: a
// typed error for anything unusable, a working sketch otherwise, and
// no panic anywhere.
func FuzzNewRange(f *testing.F) {
	f.Add(int64(1024), uint8(0), uint16(16), uint8(3), uint8(255))
	f.Add(int64(0), uint8(0), uint16(16), uint8(3), uint8(255))
	f.Add(int64(-77), uint8(1), uint16(8), uint8(1), uint8(255))
	f.Add(int64(1)<<40, uint8(2), uint16(64), uint8(9), uint8(255))
	f.Add(int64(300), uint8(3), uint16(0), uint8(0), uint8(2)) // factory fails at level 2
	f.Fuzz(func(t *testing.T, n int64, algoRaw uint8, wordsRaw uint16, depthRaw uint8, nilLevel uint8) {
		algos := []string{"exact", "countmin", "countsketch", "l2sr"}
		algo := algos[int(algoRaw)%len(algos)]
		levels := 0
		factory := func(level, size int, seed int64) repro.Sketch {
			levels++
			if uint8(level) == nilLevel {
				return nil // a factory rejecting this level's parameters
			}
			sk, err := repro.New(algo,
				repro.WithDim(size),
				repro.WithWords(4+int(wordsRaw)%1024),
				repro.WithDepth(1+int(depthRaw)%8),
				repro.WithSeed(seed&(1<<62-1)))
			if err != nil {
				return nil
			}
			return sk
		}
		rs, err := repro.NewRange(int(n), factory, 42)
		if err != nil {
			return // rejected without panicking: the contract
		}
		if rs == nil {
			t.Fatal("nil RangeSketch with nil error")
		}
		// Anything accepted must be a working structure.
		dim := rs.Dim()
		if dim <= 0 || dim != int(n) {
			t.Fatalf("accepted dim %d from request %d", dim, n)
		}
		if rs.Levels() <= 0 {
			t.Fatalf("accepted structure has %d levels", rs.Levels())
		}
		rs.Update(0, 3)
		rs.Update(dim-1, 2)
		if got := rs.RangeSum(0, dim); got != got { // NaN guard
			t.Fatalf("RangeSum returned NaN")
		}
		_ = rs.Total()
		_ = rs.Quantile(0.5)
		_ = rs.Words()
	})
}

// FuzzNewWindowed drives the sliding-window constructor with arbitrary
// shard counts, algorithm names, shapes, and window knobs: every
// unusable combination must come back as a typed error, never a
// panic, and every accepted window must ingest, rotate, and query.
func FuzzNewWindowed(f *testing.F) {
	f.Add(1, "countmin", 100, 16, 3, int64(1), 4, int64(0))
	f.Add(0, "l2sr", 100, 16, 3, int64(1), 4, int64(0))
	f.Add(3, "cmcu", 50, 8, 2, int64(9), 2, int64(0))
	f.Add(2, "exact", -5, 0, 0, int64(-1), -3, int64(-10))
	f.Add(4, "zzz", 1<<30, 1<<30, 1000, int64(1)<<62, 1<<30, int64(time.Hour))
	f.Fuzz(func(t *testing.T, shards int, algo string, dim, words, depth int, seed int64, panes int, width int64) {
		w, err := repro.NewWindowed(shards, algo,
			repro.WithDim(dim), repro.WithWords(words), repro.WithDepth(depth),
			repro.WithSeed(seed), repro.WithPanes(panes),
			repro.WithPaneWidth(time.Duration(width)))
		if err != nil {
			return // rejected without panicking: the contract
		}
		if w == nil {
			t.Fatal("nil Windowed with nil error")
		}
		if err := w.Update(0, 0, 1); err != nil {
			t.Fatalf("accepted window rejects Update: %v", err)
		}
		if err := w.Advance(1); err != nil {
			t.Fatalf("accepted window rejects Advance: %v", err)
		}
		if _, err := w.Query(0); err != nil {
			t.Fatalf("accepted window rejects Query: %v", err)
		}
	})
}
