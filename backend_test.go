package repro_test

// Backend-equivalence property tests: the counter-plane backends are
// storage choices, not estimator choices, so for any workload the
// answers must be bit-identical across them — dense vs a restored
// mmap checkpoint, dense vs the Counter-Braids-compressed plane below
// its decoding threshold. The constraint surface (insert-only,
// read-only, capability gates) is pinned as typed errors.

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/workload"
)

// tableAlgos are the algorithms whose counters live in the shared d×s
// table — the ones with a pluggable plane.
var tableAlgos = []string{"countmin", "countmedian", "countsketch", "cmcu", "cmlcu", "dengrafiei"}

// compressedAlgos is the subset whose updates are plain linear adds,
// the only write pattern a Counter Braids plane can absorb.
var compressedAlgos = []string{"countmin", "countmedian", "dengrafiei"}

const (
	beDim   = 2048
	beWords = 128
	beDepth = 4
)

func newBE(t *testing.T, algo string, opts ...repro.Option) repro.Sketch {
	t.Helper()
	opts = append([]repro.Option{
		repro.WithDim(beDim), repro.WithWords(beWords),
		repro.WithDepth(beDepth), repro.WithSeed(42),
	}, opts...)
	sk, err := repro.New(algo, opts...)
	if err != nil {
		t.Fatalf("New(%s): %v", algo, err)
	}
	return sk
}

// feedInsertOnly drives a deterministic non-negative integer workload
// through the sketch's batched path.
func feedInsertOnly(t *testing.T, sk repro.Sketch, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, 1.4, 1, beDim-1)
	idx := make([]int, 512)
	deltas := make([]float64, 512)
	for round := 0; round < 8; round++ {
		for j := range idx {
			idx[j] = int(zipf.Uint64())
			deltas[j] = float64(1 + r.Intn(4))
		}
		if err := repro.UpdateBatch(sk, idx, deltas); err != nil {
			t.Fatalf("UpdateBatch: %v", err)
		}
	}
}

func TestBackendsMatrix(t *testing.T) {
	wants := map[string][]repro.Backend{
		"countmin":      {repro.BackendDense, repro.BackendCompressed, repro.BackendMmap, repro.BackendTiled},
		"countmedian":   {repro.BackendDense, repro.BackendCompressed, repro.BackendMmap, repro.BackendTiled},
		"dengrafiei":    {repro.BackendDense, repro.BackendCompressed, repro.BackendMmap, repro.BackendTiled},
		"countsketch":   {repro.BackendDense, repro.BackendMmap, repro.BackendTiled},
		"cmcu":          {repro.BackendDense, repro.BackendMmap},
		"cmlcu":         {repro.BackendDense, repro.BackendMmap},
		"l1sr":          {repro.BackendDense},
		"l2sr":          {repro.BackendDense},
		"counterbraids": {repro.BackendDense},
		"exact":         {repro.BackendDense},
	}
	for algo, want := range wants {
		got := repro.Backends(algo)
		if len(got) != len(want) {
			t.Errorf("Backends(%s) = %v, want %v", algo, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Backends(%s) = %v, want %v", algo, got, want)
			}
		}
	}
	if repro.Backends("no-such-algo") != nil {
		t.Error("Backends of unknown algorithm should be nil")
	}
}

func TestWithBackendMmapRejectedByNew(t *testing.T) {
	_, err := repro.New("countmin", repro.WithDim(100), repro.WithBackend(repro.BackendMmap))
	if !errors.Is(err, repro.ErrInvalidOption) {
		t.Fatalf("New with BackendMmap: got %v, want ErrInvalidOption", err)
	}
}

func TestCompressedCapabilityGate(t *testing.T) {
	for _, algo := range []string{"countsketch", "cmcu", "cmlcu", "l1sr", "exact"} {
		_, err := repro.New(algo, repro.WithDim(100), repro.WithBackend(repro.BackendCompressed))
		if !errors.Is(err, repro.ErrBackendUnsupported) {
			t.Errorf("New(%s, compressed): got %v, want ErrBackendUnsupported", algo, err)
		}
	}
}

func TestShardedAndWindowedAreDenseOnly(t *testing.T) {
	if _, err := repro.NewSharded(2, "countmin", repro.WithDim(100),
		repro.WithBackend(repro.BackendCompressed)); !errors.Is(err, repro.ErrInvalidOption) {
		t.Errorf("NewSharded compressed: got %v, want ErrInvalidOption", err)
	}
	if _, err := repro.NewWindowed(2, "countmin", repro.WithDim(100),
		repro.WithBackend(repro.BackendCompressed)); !errors.Is(err, repro.ErrInvalidOption) {
		t.Errorf("NewWindowed compressed: got %v, want ErrInvalidOption", err)
	}
}

// The compressed plane stores the same counter matrix the dense plane
// does — below the braid's decoding threshold every cell decodes
// exactly, so point queries are bit-identical to the dense twin built
// from the same seed.
func TestCompressedQueriesBitIdenticalToDense(t *testing.T) {
	for _, algo := range compressedAlgos {
		t.Run(algo, func(t *testing.T) {
			dense := newBE(t, algo)
			comp := newBE(t, algo, repro.WithBackend(repro.BackendCompressed))
			if got := repro.BackendOf(comp); got != repro.BackendCompressed {
				t.Fatalf("BackendOf = %v", got)
			}
			feedInsertOnly(t, dense, 9)
			feedInsertOnly(t, comp, 9)
			dv, cv := repro.Recover(dense), repro.Recover(comp)
			for i := range dv {
				if dv[i] != cv[i] {
					t.Fatalf("coordinate %d: dense %v != compressed %v", i, dv[i], cv[i])
				}
			}
			if comp.Words() >= dense.Words() {
				t.Errorf("compressed plane uses %d words, dense %d — compression should save space",
					comp.Words(), dense.Words())
			}
		})
	}
}

// The compressed plane is insert-only: negative and fractional deltas
// must refuse loudly (typed panic) before any counter moves.
func TestCompressedInsertOnly(t *testing.T) {
	for _, delta := range []float64{-1, 2.5} {
		comp := newBE(t, "countmin", repro.WithBackend(repro.BackendCompressed))
		func() {
			defer func() {
				r := recover()
				err, ok := r.(error)
				if !ok || !errors.Is(err, repro.ErrInsertOnly) {
					t.Errorf("delta %v: recovered %v, want ErrInsertOnly", delta, r)
				}
			}()
			comp.Update(3, delta)
			t.Errorf("delta %v: update was accepted", delta)
		}()
	}
}

// Backend equivalence, mmap flavor: for every table algorithm, a
// checkpoint file served by mmap must answer Query and QueryBatch
// bit-identically to the dense sketch it was written from — and
// re-serializing the mapped sketch must reproduce the dense wire bytes.
func TestMmapQueriesBitIdenticalToDense(t *testing.T) {
	for _, algo := range tableAlgos {
		t.Run(algo, func(t *testing.T) {
			dense := newBE(t, algo)
			feedInsertOnly(t, dense, 17)
			path := filepath.Join(t.TempDir(), "sk.bas2")
			if err := repro.WriteSketchFile(path, dense); err != nil {
				t.Fatalf("WriteSketchFile: %v", err)
			}

			mapped, closeMap, err := repro.OpenMmap(path)
			if err != nil {
				t.Fatalf("OpenMmap: %v", err)
			}
			defer closeMap()
			if got := repro.BackendOf(mapped); got != repro.BackendMmap {
				t.Fatalf("BackendOf = %v", got)
			}
			if mapped.Algo() != dense.Algo() || mapped.Dim() != dense.Dim() {
				t.Fatalf("descriptor mismatch: %s/%d vs %s/%d",
					mapped.Algo(), mapped.Dim(), dense.Algo(), dense.Dim())
			}

			dv, mv := repro.Recover(dense), repro.Recover(mapped)
			for i := range dv {
				if dv[i] != mv[i] {
					t.Fatalf("coordinate %d: dense %v != mmap %v", i, dv[i], mv[i])
				}
			}
			for i := 0; i < beDim; i += 97 {
				if dense.Query(i) != mapped.Query(i) {
					t.Fatalf("Query(%d) disagrees", i)
				}
			}

			db, err := repro.Marshal(dense)
			if err != nil {
				t.Fatalf("Marshal(dense): %v", err)
			}
			mb, err := repro.Marshal(mapped)
			if err != nil {
				t.Fatalf("Marshal(mmap): %v", err)
			}
			if !bytes.Equal(db, mb) {
				t.Error("re-serialized mmap sketch differs from dense wire bytes")
			}
		})
	}
}

// A mapped checkpoint is a read-only serving replica: updates panic
// with the typed read-only error, merges refuse with an error.
func TestMmapIsReadOnly(t *testing.T) {
	dense := newBE(t, "countmin")
	feedInsertOnly(t, dense, 23)
	path := filepath.Join(t.TempDir(), "sk.bas2")
	if err := repro.WriteSketchFile(path, dense); err != nil {
		t.Fatal(err)
	}
	mapped, closeMap, err := repro.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeMap()

	func() {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, repro.ErrReadOnly) {
				t.Errorf("Update on mmap: recovered %v, want ErrReadOnly", r)
			}
		}()
		mapped.Update(1, 1)
		t.Error("Update on mmap sketch was accepted")
	}()

	lin, ok := mapped.(repro.Linear)
	if !ok {
		t.Fatal("mapped countmin should still expose Merge")
	}
	if err := lin.Merge(dense); !errors.Is(err, repro.ErrReadOnly) {
		t.Errorf("Merge into mmap: got %v, want ErrReadOnly", err)
	}
	// The other direction is fine: a mapped sketch is a valid merge
	// source for a dense receiver.
	dl := dense.(repro.Linear)
	if err := dl.Merge(mapped); err != nil {
		t.Errorf("Merge dense <- mmap: %v", err)
	}
}

// OpenMmap must reject what it cannot serve — with errors, never
// panics: missing files, plain (unaligned) checkpoints, truncated
// files, and algorithms without mmap capability.
func TestOpenMmapRejections(t *testing.T) {
	dir := t.TempDir()

	if _, _, err := repro.OpenMmap(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file should error")
	}

	dense := newBE(t, "countmin")
	feedInsertOnly(t, dense, 5)

	// A plain Marshal stream is a valid checkpoint but not the aligned
	// layout; OpenMmap must refuse rather than serve misaligned floats.
	plain, err := repro.Marshal(dense)
	if err != nil {
		t.Fatal(err)
	}
	plainPath := filepath.Join(dir, "plain.bas2")
	if err := os.WriteFile(plainPath, plain, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repro.OpenMmap(plainPath); err == nil {
		t.Error("unaligned 2-section container should be refused")
	}

	// Truncations of a valid aligned file: every prefix must error.
	alignedPath := filepath.Join(dir, "aligned.bas2")
	if err := repro.WriteSketchFile(alignedPath, dense); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(alignedPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, 9, 20, len(full) / 2, len(full) - 1} {
		p := filepath.Join(dir, "trunc.bas2")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := repro.OpenMmap(p); err == nil {
			t.Errorf("truncation to %d bytes should error", cut)
		}
	}

	// An algorithm without mmap capability round-trips as a stream but
	// must be refused by the mapped opener.
	cb, err := repro.New("counterbraids", repro.WithDim(256))
	if err != nil {
		t.Fatal(err)
	}
	cb.Update(3, 7)
	cbPath := filepath.Join(dir, "cb.bas2")
	if err := repro.WriteSketchFile(cbPath, cb); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repro.OpenMmap(cbPath); !errors.Is(err, repro.ErrBackendUnsupported) {
		t.Errorf("OpenMmap(counterbraids): got %v, want ErrBackendUnsupported", err)
	}
}

// DecodeWith restores a checkpoint stream onto a chosen backend; the
// restored answers must match the source regardless of plane.
func TestDecodeWithBackends(t *testing.T) {
	dense := newBE(t, "countmedian")
	feedInsertOnly(t, dense, 31)
	blob, err := repro.Marshal(dense)
	if err != nil {
		t.Fatal(err)
	}

	comp, err := repro.DecodeWith(blob, repro.BackendCompressed)
	if err != nil {
		t.Fatalf("DecodeWith(compressed): %v", err)
	}
	if got := repro.BackendOf(comp); got != repro.BackendCompressed {
		t.Fatalf("BackendOf = %v", got)
	}
	dv, cv := repro.Recover(dense), repro.Recover(comp)
	for i := range dv {
		if dv[i] != cv[i] {
			t.Fatalf("coordinate %d: dense %v != compressed restore %v", i, dv[i], cv[i])
		}
	}

	if _, err := repro.DecodeWith(blob, repro.BackendMmap); err == nil {
		t.Error("DecodeWith(mmap) should refuse: streams have no mappable bytes")
	}

	cs := newBE(t, "countsketch")
	feedInsertOnly(t, cs, 31)
	csBlob, err := repro.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.DecodeWith(csBlob, repro.BackendCompressed); !errors.Is(err, repro.ErrBackendUnsupported) {
		t.Errorf("DecodeWith(countsketch, compressed): got %v, want ErrBackendUnsupported", err)
	}
}

// Counter Braids as a first-class registry algorithm: exact decode,
// linear merge, wire round trip, and the insert-only constraint.
func TestCounterBraidsFacade(t *testing.T) {
	const n = 600
	a, err := repro.New("counterbraids", repro.WithDim(n), repro.WithSeed(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.Algo() != "counterbraids" {
		t.Fatalf("Algo = %q", a.Algo())
	}
	b, err := repro.New("CB", repro.WithDim(n), repro.WithSeed(3)) // legend alias
	if err != nil {
		t.Fatal(err)
	}

	want := make([]float64, n)
	r := rand.New(rand.NewSource(8))
	for u := 0; u < 3000; u++ {
		i, d := r.Intn(n), float64(1+r.Intn(3))
		want[i] += d
		if u%2 == 0 {
			a.Update(i, d)
		} else {
			b.Update(i, d)
		}
	}

	// Merge the halves; the braid of the concatenated stream must
	// decode every coordinate exactly.
	al := a.(repro.Linear)
	if err := al.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	got := repro.Recover(a)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coordinate %d: decoded %v, want %v", i, got[i], want[i])
		}
	}

	blob, err := repro.Marshal(a)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := repro.Unmarshal(blob)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for i := 0; i < n; i += 7 {
		if back.Query(i) != want[i] {
			t.Fatalf("restored Query(%d) = %v, want %v", i, back.Query(i), want[i])
		}
	}

	// Mismatched seeds must refuse to merge.
	c, err := repro.New("counterbraids", repro.WithDim(n), repro.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Merge(c); !errors.Is(err, repro.ErrIncompatible) {
		t.Errorf("Merge with different seed: got %v, want ErrIncompatible", err)
	}

	func() {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, repro.ErrInsertOnly) {
				t.Errorf("negative update: recovered %v, want ErrInsertOnly", r)
			}
		}()
		a.Update(0, -1)
		t.Error("negative update was accepted")
	}()
}

// An overloaded braid must fail decode loudly (typed error), and still
// checkpoint losslessly — serialization uses the native braid state,
// not the decoded vector.
func TestCounterBraidsOverloadFailsLoudly(t *testing.T) {
	const n = 400
	sk, err := repro.New("counterbraids", repro.WithDim(n), repro.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	// Saturate every coordinate with large counts: far past the
	// decodable load for a braid sized at 1.5n shallow counters.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		sk.Update(i, float64(1+r.Intn(1<<16)))
	}
	decodeErr := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err, _ = rec.(error)
			}
		}()
		sk.Query(0)
		return nil
	}()
	if decodeErr == nil {
		t.Skip("braid decoded a saturating workload; threshold not reached on this shape")
	}
	if !errors.Is(decodeErr, repro.ErrDecodeBudget) {
		t.Fatalf("overloaded query: got %v, want ErrDecodeBudget", decodeErr)
	}
	// The braid itself still serializes byte-for-byte.
	if _, err := repro.Marshal(sk); err != nil {
		t.Fatalf("Marshal of overloaded braid: %v", err)
	}
}

// The accuracy harness exercises all algorithms; this pins the zipf
// workload generator used above to integer non-negative values, the
// precondition the compressed-plane tests rely on.
func TestWorkloadIsInsertOnly(t *testing.T) {
	x := (workload.ZipfLike{}).Vector(256, rand.New(rand.NewSource(1)))
	for i, v := range x {
		if v < 0 || v != float64(int64(v)) {
			t.Fatalf("workload coordinate %d = %v is not a non-negative integer", i, v)
		}
	}
}
