package repro_test

// Wire-format fuzz layer at the public-API level: arbitrary bytes must
// never panic Unmarshal, and Marshal→Unmarshal→Marshal must be a
// byte-exact fixed point for every serializable algorithm.

import (
	"bytes"
	"errors"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/codec"
)

// serializableAlgos is every registry algorithm the wire format
// carries — all of them except exact.
var serializableAlgos = []string{
	"l1sr", "l2sr", "l1mean", "l2mean", "countmin", "countmedian",
	"countsketch", "cmcu", "cmlcu", "dengrafiei", "counterbraids",
}

// mustMarshalSeed builds a valid wire payload for the fuzz corpus.
func mustMarshalSeed(f *testing.F, algo string) []byte {
	f.Helper()
	sk, err := repro.New(algo, repro.WithDim(300), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(9))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 300; i += 3 {
		sk.Update(i, float64(1+i%7))
	}
	data, err := repro.Marshal(sk)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// mustMarshalTabulationSeed builds a valid tabulation-family payload
// for the corpus, so the fuzzer exercises the hash-family descriptor
// byte.
func mustMarshalTabulationSeed(f *testing.F, algo string) []byte {
	f.Helper()
	sk, err := repro.New(algo, repro.WithDim(300), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(9),
		repro.WithHashing(repro.HashTabulation))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 300; i += 3 {
		sk.Update(i, float64(1+i%7))
	}
	data, err := repro.Marshal(sk)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// mustMarshalV1Seed builds a legacy v1 payload for the corpus, so the
// fuzzer exercises the backward-compatibility path too.
func mustMarshalV1Seed(f *testing.F, algo string) []byte {
	f.Helper()
	desc := codec.Desc{Algo: algo, N: 300, S: 16, D: 3, Seed: 9}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	for i := 0; i < 300; i += 3 {
		sk.Update(i, float64(1+i%7))
	}
	var buf bytes.Buffer
	if err := codec.EncodeV1(&buf, desc, sk); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzUnmarshal feeds arbitrary bytes to the public loader: it must
// reject garbage with an error — never panic — and anything it does
// accept must be a working sketch whose re-marshaled bytes reload.
// Trailing bytes after a valid payload must be rejected (with
// ErrTrailingData), never silently swallowed.
func FuzzUnmarshal(f *testing.F) {
	for _, algo := range []string{"l2sr", "countmin", "cmlcu"} {
		f.Add(mustMarshalSeed(f, algo))
		f.Add(mustMarshalV1Seed(f, algo))
	}
	for _, algo := range []string{"countmin", "countsketch"} {
		f.Add(mustMarshalTabulationSeed(f, algo))
	}
	// A tabulation descriptor naming a pairwise-only algorithm must be
	// rejected, not panic — seeded so the capability gate stays fuzzed.
	f.Add(append(mustMarshalTabulationSeed(f, "countmin"), 0x01))
	// A valid payload with trailing garbage: historically accepted,
	// now a typed error — seeded so the boundary stays fuzzed.
	f.Add(append(mustMarshalSeed(f, "countmin"), "trailing-garbage"...))
	f.Add(append(mustMarshalV1Seed(f, "countmin"), 0x00, 0xFF))
	f.Add([]byte{})
	f.Add([]byte("BAS1"))
	f.Add([]byte("BAS2"))
	f.Add([]byte("BAS1\xff\xff\xff\xffgarbage"))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := repro.Unmarshal(data)
		if err != nil {
			return // rejected without panicking: the contract
		}
		if sk == nil {
			t.Fatal("nil sketch with nil error")
		}
		_ = sk.Query(0)
		re, err := repro.Marshal(sk)
		if err != nil {
			t.Fatalf("accepted payload does not re-marshal: %v", err)
		}
		if _, err := repro.Unmarshal(re); err != nil {
			t.Fatalf("re-marshaled payload does not reload: %v", err)
		}
		// An accepted buffer plus any trailing byte is no longer one
		// payload: Unmarshal must reject it.
		if _, err := repro.Unmarshal(append(append([]byte(nil), data...), 0x5A)); err == nil {
			t.Fatal("payload with trailing byte accepted")
		}
	})
}

// FuzzMarshalRoundTrip drives every serializable algorithm through
// Marshal→Unmarshal→Marshal at fuzzed shapes, seeds, and ingestion
// histories: the reload must answer queries identically and the second
// Marshal must reproduce the first byte for byte.
func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(1), uint16(16), uint8(3), uint16(500))
	f.Add(uint8(4), int64(42), uint16(64), uint8(9), uint16(2000))
	f.Add(uint8(9), int64(7), uint16(8), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, algoRaw uint8, seed int64, sRaw uint16, dRaw uint8, updRaw uint16) {
		algo := serializableAlgos[int(algoRaw)%len(serializableAlgos)]
		// A fuzzed counterbraids shape can be legitimately overloaded
		// (too much mass for the braid): Query then panics with the
		// documented ErrDecodeBudget instead of answering wrong. The
		// round trip is still exercised up to the query; skip only
		// that documented outcome, re-panic anything else.
		defer func() {
			if v := recover(); v != nil {
				if err, ok := v.(error); ok && errors.Is(err, repro.ErrDecodeBudget) {
					t.Skipf("%s: braid overloaded at fuzzed shape: %v", algo, err)
				}
				panic(v)
			}
		}()
		n := 400
		s := 8 + int(sRaw)%256
		d := 1 + int(dRaw)%10
		skSeed := seed & (1<<63 - 1) // the wire format carries seeds unsigned
		orig, err := repro.New(algo,
			repro.WithDim(n), repro.WithWords(s), repro.WithDepth(d), repro.WithSeed(skSeed))
		if err != nil {
			t.Fatalf("%s: New(n=%d s=%d d=%d seed=%d): %v", algo, n, s, d, skSeed, err)
		}
		updates := int(updRaw) % 3000
		for u := 0; u < updates; u++ {
			// Deterministic insert-only stream (cmcu/cmlcu safe).
			orig.Update((u*u+13)%n, float64(1+u%5))
		}

		data1, err := repro.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", algo, err)
		}
		loaded, err := repro.Unmarshal(data1)
		if err != nil {
			t.Fatalf("%s: Unmarshal of own Marshal output: %v", algo, err)
		}
		if loaded.Algo() != orig.Algo() || loaded.Dim() != orig.Dim() || loaded.Words() != orig.Words() {
			t.Fatalf("%s: identity lost across round trip", algo)
		}
		for i := 0; i < n; i += 7 {
			if a, b := orig.Query(i), loaded.Query(i); a != b {
				t.Fatalf("%s: query %d: original %v, reloaded %v", algo, i, a, b)
			}
		}
		data2, err := repro.Marshal(loaded)
		if err != nil {
			t.Fatalf("%s: re-Marshal: %v", algo, err)
		}
		if !bytes.Equal(data1, data2) {
			t.Fatalf("%s: Marshal→Unmarshal→Marshal not byte-identical (%d vs %d bytes)",
				algo, len(data1), len(data2))
		}
	})
}
