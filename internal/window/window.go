// Package window serves time-decayed frequency queries from any linear
// sketch: "how heavy was coordinate i recently", not since the
// beginning of the stream. It uses the classical pane decomposition — a
// ring of per-pane sketches where the open pane absorbs writes and the
// closed panes are immutable — so that forgetting is O(1) metadata
// (expired panes fall off the ring) and the sliding-window estimate is
// the linear sum of the live panes, computed through the same Merge
// path that powers the distributed model of §1.
//
// The open pane is a concurrent.Sharded, so multi-goroutine ingestion
// is contention-free exactly as it is for unbounded streams. The read
// side reuses the epoch/snapshot machinery: queries are served from a
// cached merged replica (closed-pane sum + open-pane snapshot)
// published through an atomic pointer, rebuilt only when a pane rotates
// or the open pane's shard epochs advance — readers of a fresh view
// take zero locks.
//
// Rotation is either explicit (Advance) or clock-driven: with a pane
// width configured, every Update/Query first folds in any panes the
// injected clock says have elapsed, so expired traffic disappears even
// from a write-idle window.
package window

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/concurrent"
)

// Config shapes a Window.
type Config struct {
	// Panes is the window length in panes: the open pane plus Panes-1
	// closed ones. Must be at least 1 (1 = only the open pane).
	Panes int
	// Shards is the open pane's writer-shard count (concurrent.New).
	// Must be at least 1.
	Shards int
	// Width is the pane duration for clock-driven rotation; 0 means
	// rotation happens only through explicit Advance calls.
	Width time.Duration
	// Now is the clock Width-driven rotation consults; nil means
	// time.Now. Injected by tests to make rotation deterministic.
	Now func() time.Time
}

// Window is a sliding window over a stream of (index, delta) updates,
// answering point queries against the last Panes panes only.
type Window[S concurrent.Mergeable] struct {
	mk    func() S
	merge func(dst, src S) error
	panes int
	sh    int
	width time.Duration
	now   func() time.Time

	// rot guards the rotation state below. Writers take it shared so
	// the open pane cannot be frozen out from under an in-flight
	// update; Advance takes it exclusively. Queries against a fresh
	// published view never touch it.
	rot       sync.RWMutex
	cur       *concurrent.Sharded[S]
	curSeq    uint64          // pane index of the open pane
	closed    []frozenPane[S] // live closed panes, oldest first
	closedSum S               // cached sum of closed panes; meaningful iff hasClosed
	hasClosed bool
	paneStart time.Time // open pane's start (clock-driven mode)

	gen      atomic.Uint64 // bumped per rotation; views carry the gen they saw
	deadline atomic.Int64  // open pane's end, unix nanos (clock-driven mode)

	// view is the published read replica; refreshMu serializes rebuilds.
	view      atomic.Pointer[View[S]]
	refreshMu sync.Mutex
}

// frozenPane is one closed pane: an immutable sketch of the updates
// that landed while it was open, tagged with its pane index so expiry
// under multi-pane advances (which close empty panes the ring never
// materializes) is a sequence comparison, not ring arithmetic.
type frozenPane[S any] struct {
	sk  S
	seq uint64
}

// ErrBadConfig is returned by New for non-positive pane or shard
// counts and negative pane widths.
var ErrBadConfig = errors.New("window: invalid configuration")

// New builds a sliding window whose panes are sketches built by mk and
// summed by merge — the same (mk, merge) contract as concurrent.New,
// and mk must likewise build replicas with identical configuration and
// seeds so panes merge.
func New[S concurrent.Mergeable](cfg Config, mk func() S, merge func(dst, src S) error) (*Window[S], error) {
	if cfg.Panes <= 0 {
		return nil, fmt.Errorf("%w: pane count must be positive, got %d", ErrBadConfig, cfg.Panes)
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrBadConfig, cfg.Shards)
	}
	if cfg.Width < 0 {
		return nil, fmt.Errorf("%w: pane width must be non-negative, got %v", ErrBadConfig, cfg.Width)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	w := &Window[S]{
		mk:    mk,
		merge: merge,
		panes: cfg.Panes,
		sh:    cfg.Shards,
		width: cfg.Width,
		now:   now,
		cur:   concurrent.New(cfg.Shards, mk, merge),
	}
	if cfg.Width > 0 {
		w.paneStart = now()
		w.deadline.Store(w.paneStart.Add(cfg.Width).UnixNano())
	}
	return w, nil
}

// Panes returns the configured window length in panes.
func (w *Window[S]) Panes() int { return w.panes }

// Width returns the pane duration (0 in explicit-Advance mode).
func (w *Window[S]) Width() time.Duration { return w.width }

// Live returns the number of panes currently holding data: the open
// pane plus the closed panes that have not expired. At most Panes;
// less when the stream is younger than the window or recent panes were
// write-idle. In clock-driven mode any due rotation is folded in
// first, exactly as for Update and Query: a write-idle window must not
// keep reporting expired panes as live. (A rotation-merge failure —
// possible only with a caller-supplied merge function — leaves the
// pre-rotation count; the next Update or Query surfaces the error.)
func (w *Window[S]) Live() int {
	_ = w.maybeAdvance()
	w.rot.RLock()
	defer w.rot.RUnlock()
	return len(w.closed) + 1
}

// Advance rotates k panes: the open pane freezes into the ring, k-1
// empty panes pass through it, panes older than the window expire, and
// a fresh open pane starts. Advancing by the full window (k ≥ Panes)
// empties it. k must be positive.
func (w *Window[S]) Advance(k int) error {
	if k <= 0 {
		return fmt.Errorf("window: advance count must be positive, got %d", k)
	}
	w.rot.Lock()
	defer w.rot.Unlock()
	return w.advanceLocked(k)
}

// advanceLocked is Advance under w.rot held exclusively: no writer
// holds the open pane, so freezing it is an uncontended merge. All
// fallible steps run against locals first and the rotation commits
// only once every merge succeeded — a failing merge (possible with a
// caller-supplied merge function) leaves the window exactly as it
// was: pane still open, nothing double-counted, views still valid.
func (w *Window[S]) advanceLocked(k int) error {
	newSeq := w.curSeq + uint64(k)

	// Expire threshold: a closed pane is live while its index is
	// within Panes-1 of the open pane's. closed is oldest-first, so
	// the panes to expire are a prefix.
	var minLive uint64
	if span := uint64(w.panes - 1); newSeq > span {
		minLive = newSeq - span
	}
	expire := 0
	for expire < len(w.closed) && w.closed[expire].seq < minLive {
		expire++
	}
	written := w.cur.Written()

	// Idle rotation: nothing to freeze, nothing expires — the window
	// contents are unchanged. Advance the pane index only, keeping the
	// pristine open pane, the cached sum, and the published view (a
	// clock-driven window polled while write-idle would otherwise
	// allocate a fresh shard set and rebuild its view every tick).
	if !written && expire == 0 {
		w.curSeq = newSeq
		return nil
	}

	// A written pane is frozen only if it survives its own rotation
	// (advancing by k ≥ Panes expires it immediately — skip the copy).
	freeze := written && w.curSeq >= minLive
	keep := make([]frozenPane[S], 0, len(w.closed)-expire+1)
	keep = append(keep, w.closed[expire:]...)
	if freeze {
		frozen, err := w.cur.Merged()
		if err != nil {
			return fmt.Errorf("window: freezing open pane: %w", err)
		}
		keep = append(keep, frozenPane[S]{sk: frozen, seq: w.curSeq})
	}

	// Rebuild the cached closed-pane sum — incrementally (old sum,
	// which is immutable, plus the newly frozen pane: two merges) when
	// nothing expired, from scratch otherwise. Paid per rotation so
	// every refresh between rotations is two merges regardless of
	// Panes.
	var sum S
	hasClosed := len(keep) > 0
	switch {
	case !hasClosed:
	case expire == 0 && w.hasClosed && freeze:
		sum = w.mk()
		if err := w.merge(sum, w.closedSum); err != nil {
			return fmt.Errorf("window: summing closed panes: %w", err)
		}
		if err := w.merge(sum, keep[len(keep)-1].sk); err != nil {
			return fmt.Errorf("window: summing closed panes: %w", err)
		}
	default:
		sum = w.mk()
		for _, p := range keep {
			if err := w.merge(sum, p.sk); err != nil {
				return fmt.Errorf("window: summing closed panes: %w", err)
			}
		}
	}

	// Commit: nothing below can fail.
	w.closed = keep
	w.closedSum = sum
	w.hasClosed = hasClosed
	w.curSeq = newSeq
	if written {
		w.cur = concurrent.New(w.sh, w.mk, w.merge)
	}
	w.gen.Add(1) // views built before this rotation are now stale
	return nil
}

// maybeAdvance folds in any panes the clock says have elapsed. The
// fast path — pane not yet due — is one atomic load.
func (w *Window[S]) maybeAdvance() error {
	if w.width <= 0 {
		return nil
	}
	if w.now().UnixNano() < w.deadline.Load() {
		return nil
	}
	w.rot.Lock()
	defer w.rot.Unlock()
	elapsed := w.now().Sub(w.paneStart)
	if elapsed < w.width {
		return nil // another goroutine rotated while we waited for the lock
	}
	k := int(elapsed / w.width)
	if err := w.advanceLocked(k); err != nil {
		return err
	}
	w.paneStart = w.paneStart.Add(time.Duration(k) * w.width)
	w.deadline.Store(w.paneStart.Add(w.width).UnixNano())
	return nil
}

// Update applies x[i] += delta to the open pane, on the shard owning
// the caller's slot (concurrent.Sharded.Update semantics). In
// clock-driven mode any due rotation happens first, so the update
// lands in the pane its timestamp belongs to.
func (w *Window[S]) Update(slot, i int, delta float64) error {
	if err := w.maybeAdvance(); err != nil {
		return err
	}
	w.rot.RLock()
	defer w.rot.RUnlock()
	w.cur.Update(slot, i, delta)
	return nil
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j to the open
// pane under one shard-lock acquisition — the same high-throughput
// ingestion path as concurrent.Sharded.UpdateBatch.
func (w *Window[S]) UpdateBatch(slot int, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("window: batch index count %d != delta count %d", len(idx), len(deltas))
	}
	if err := w.maybeAdvance(); err != nil {
		return err
	}
	w.rot.RLock()
	defer w.rot.RUnlock()
	w.cur.UpdateBatch(slot, idx, deltas)
	return nil
}

// View is an immutable merged replica of the window's live panes as of
// the rotation generation and open-pane epochs that built it. Readers
// share it: any number of goroutines may query it concurrently with
// zero locks while writers keep ingesting and panes keep rotating —
// exactly the concurrent.Snapshot contract, extended with the pane
// generation so a rotation also marks it stale.
type View[S concurrent.Mergeable] struct {
	owner *Window[S]
	sk    S
	gen   uint64
	snap  *concurrent.Snapshot[S] // open-pane snapshot folded into sk
}

// Sketch returns the merged live-pane replica. It is shared and
// immutable: callers must not update or merge into it.
func (v *View[S]) Sketch() S { return v.sk }

// Stale reports whether a rotation happened or the open pane absorbed
// writes since this view was published — atomics only, no locks.
func (v *View[S]) Stale() bool {
	return v.gen != v.owner.gen.Load() || v.snap.Stale()
}

// Query answers a point query against the view, lock-free, through the
// replica's batched path as a batch of one (per-call scratch, so
// concurrent readers never share state).
func (v *View[S]) Query(i int) float64 {
	var (
		idx = [1]int{i}
		out [1]float64
	)
	v.QueryBatch(idx[:], out[:])
	return out[0]
}

// batchQuerier matches sketches with a native batched query path — the
// sketch.BatchQuerier capability, restated structurally so this
// package keeps zero sketch dependencies.
type batchQuerier interface {
	QueryBatch(idx []int, out []float64)
}

// readPreparer and readCacheAdopter mirror the concurrent package's
// snapshot warm-up hooks (see concurrent.Refresh).
type readPreparer interface{ PrepareRead() }
type readCacheAdopter interface{ AdoptReadCaches(src any) }

// QueryBatch answers a batch of point queries against the view,
// lock-free, through the replica's native batched path when it has one
// (bit-identical to the Query loop either way).
func (v *View[S]) QueryBatch(idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("window: batch index count %d != output count %d", len(idx), len(out)))
	}
	if b, ok := any(v.sk).(batchQuerier); ok {
		b.QueryBatch(idx, out)
		return
	}
	for j, i := range idx {
		out[j] = v.sk.Query(i)
	}
}

// View returns a merged replica of the live panes, reusing the
// published one when neither a rotation nor an open-pane write made it
// stale — the common serving path is an atomic load. In clock-driven
// mode any due rotation is folded in first, so a view never shows
// expired panes.
func (w *Window[S]) View() (*View[S], error) {
	if err := w.maybeAdvance(); err != nil {
		return nil, err
	}
	if v := w.view.Load(); v != nil && !v.Stale() {
		return v, nil
	}
	return w.refresh()
}

// rotationState reads the rotation-guarded fields under one read
// lock: the generation, the open pane, and the closed-pane sum.
func (w *Window[S]) rotationState() (gen uint64, cur *concurrent.Sharded[S], closedSum S, hasClosed bool) {
	w.rot.RLock()
	defer w.rot.RUnlock()
	return w.gen.Load(), w.cur, w.closedSum, w.hasClosed
}

// refresh rebuilds and publishes the merged view: closed-pane sum plus
// a fresh open-pane snapshot — two merges, independent of Panes.
func (w *Window[S]) refresh() (*View[S], error) {
	w.refreshMu.Lock()
	defer w.refreshMu.Unlock()
	if v := w.view.Load(); v != nil && !v.Stale() {
		return v, nil // an earlier waiter already rebuilt it
	}
	// Capture a consistent rotation state; the open pane's snapshot is
	// taken outside the lock (Refresh locks only changed shards).
	gen, cur, closedSum, hasClosed := w.rotationState()

	snap, err := cur.Refresh()
	if err != nil {
		return nil, fmt.Errorf("window: snapshotting open pane: %w", err)
	}
	merged := w.mk()
	if hasClosed {
		if err := w.merge(merged, closedSum); err != nil {
			return nil, fmt.Errorf("window: merging closed panes: %w", err)
		}
	}
	if err := w.merge(merged, snap.Sketch()); err != nil {
		return nil, fmt.Errorf("window: merging open pane: %w", err)
	}
	// Warm the replica's query caches, adopting seed-determined ones
	// from the outgoing view so successive refreshes share them.
	if a, ok := any(merged).(readCacheAdopter); ok {
		if prev := w.view.Load(); prev != nil {
			a.AdoptReadCaches(any(prev.sk))
		}
	}
	if p, ok := any(merged).(readPreparer); ok {
		p.PrepareRead()
	}
	v := &View[S]{owner: w, sk: merged, gen: gen, snap: snap}
	w.view.Store(v)
	return v, nil
}

// Query answers a point query over the live panes only, refreshing the
// merged view if a rotation or write made it stale.
func (w *Window[S]) Query(i int) (float64, error) {
	v, err := w.View()
	if err != nil {
		return 0, err
	}
	return v.Query(i), nil
}

// QueryBatch answers a batch of point queries over the live panes
// only, through the replica's native batched path.
func (w *Window[S]) QueryBatch(idx []int, out []float64) error {
	if len(idx) != len(out) {
		return fmt.Errorf("window: batch index count %d != output count %d", len(idx), len(out))
	}
	v, err := w.View()
	if err != nil {
		return err
	}
	v.QueryBatch(idx, out)
	return nil
}

// Words returns the total live memory in 64-bit words: the open pane's
// shards, every closed pane, and the cached closed-pane sum. The
// published view adds one more single-sketch replica. In clock-driven
// mode any due rotation is folded in first (see Live), so expired
// panes stop counting without waiting for the next Update or Query.
func (w *Window[S]) Words() int {
	_ = w.maybeAdvance()
	w.rot.RLock()
	defer w.rot.RUnlock()
	t := w.cur.Words()
	for _, p := range w.closed {
		t += p.sk.Words()
	}
	if w.hasClosed {
		t += w.closedSum.Words()
	}
	return t
}
