package window

// Degraded-path tests: pane sketches from outside this module without
// a batched query path must be served through the element-wise
// fallback, and a failing merge must surface as an error from every
// entry point that merges — never corrupt the published view.

import (
	"errors"
	"strings"
	"testing"
)

// plainSketch is a minimal Mergeable with no QueryBatch capability.
type plainSketch struct{ x []float64 }

func newPlain() *plainSketch { return &plainSketch{x: make([]float64, 16)} }

func (p *plainSketch) Update(i int, d float64) { p.x[i] += d }
func (p *plainSketch) Query(i int) float64     { return p.x[i] }
func (p *plainSketch) Dim() int                { return len(p.x) }
func (p *plainSketch) Words() int              { return len(p.x) }

func mergePlain(dst, src *plainSketch) error {
	for i, v := range src.x {
		dst.x[i] += v
	}
	return nil
}

func TestQueryFallbackWithoutBatchPath(t *testing.T) {
	w, err := New(Config{Panes: 2, Shards: 1}, newPlain, mergePlain)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 3, 7); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	if err := w.QueryBatch([]int{3, 0}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || out[1] != 0 {
		t.Fatalf("fallback QueryBatch = %v, want [9 0]", out)
	}
	if got, err := w.Query(3); err != nil || got != 9 {
		t.Fatalf("fallback Query = %v, %v; want 9", got, err)
	}
}

func TestViewQueryBatchPanicsOnLengthMismatch(t *testing.T) {
	w, err := New(Config{Panes: 2, Shards: 1}, newPlain, mergePlain)
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.QueryBatch([]int{1, 2}, make([]float64, 1))
}

// failAfter makes a merge function that fails once its budget runs
// out, exercising the error paths of Advance and refresh.
func failAfter(budget int) func(dst, src *plainSketch) error {
	calls := 0
	return func(dst, src *plainSketch) error {
		if calls++; calls > budget {
			return errors.New("merge exploded")
		}
		return mergePlain(dst, src)
	}
}

func TestAdvanceSurfacesMergeError(t *testing.T) {
	w, err := New(Config{Panes: 3, Shards: 1}, newPlain, failAfter(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// First advance: freeze merge + closed-sum merge (budget spent).
	// The second advance's freeze merge then fails.
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	err = w.Advance(1)
	if err == nil || !strings.Contains(err.Error(), "merge exploded") {
		t.Fatalf("Advance error = %v, want merge failure", err)
	}
}

// A failed Advance must be a no-op: the pane stays open, nothing is
// double-counted, and once the merge heals the window rotates and
// queries correctly.
func TestFailedAdvanceLeavesWindowIntact(t *testing.T) {
	failing := false
	merge := func(dst, src *plainSketch) error {
		if failing {
			return errors.New("merge exploded")
		}
		return mergePlain(dst, src)
	}
	w, err := New(Config{Panes: 3, Shards: 1}, newPlain, merge)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	failing = true
	if err := w.Advance(1); err == nil || !strings.Contains(err.Error(), "merge exploded") {
		t.Fatalf("Advance error = %v, want merge failure", err)
	}
	failing = false
	// State intact: the pane never rotated, totals unchanged.
	if got, err := w.Query(1); err != nil || got != 15 {
		t.Fatalf("after failed Advance, Query = %v, %v; want 15 (no loss, no double count)", got, err)
	}
	if w.Live() != 2 {
		t.Fatalf("Live = %d after failed Advance, want 2", w.Live())
	}
	// Healed: rotation proceeds and expiry math is unharmed.
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Query(1); err != nil || got != 15 {
		t.Fatalf("after healed Advance, Query = %v, %v; want 15", got, err)
	}
	if err := w.Advance(1); err != nil { // first pane (the 10) expires
		t.Fatal(err)
	}
	if got, err := w.Query(1); err != nil || got != 5 {
		t.Fatalf("after expiry, Query = %v, %v; want 5", got, err)
	}
	if err := w.Advance(1); err != nil { // second pane (the 5) expires
		t.Fatal(err)
	}
	if got, err := w.Query(1); err != nil || got != 0 {
		t.Fatalf("after full expiry, Query = %v, %v; want 0", got, err)
	}
}

func TestRefreshSurfacesMergeError(t *testing.T) {
	w, err := New(Config{Panes: 2, Shards: 1}, newPlain, failAfter(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query(1); err == nil || !strings.Contains(err.Error(), "merge exploded") {
		t.Fatalf("Query error = %v, want merge failure", err)
	}
	if err := w.QueryBatch([]int{1}, make([]float64, 1)); err == nil {
		t.Fatal("QueryBatch should surface the merge failure")
	}
	if _, err := w.View(); err == nil {
		t.Fatal("View should surface the merge failure")
	}
}
