package window

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

const dim = 512

func mkExact() *stream.Exact { return stream.NewExact(dim) }

func mergeExact(dst, src *stream.Exact) error {
	for i, v := range src.Vector() {
		if v != 0 {
			dst.Update(i, v)
		}
	}
	return nil
}

func mustWindow(t *testing.T, cfg Config) *Window[*stream.Exact] {
	t.Helper()
	w, err := New(cfg, mkExact, mergeExact)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidatesConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Panes: 0, Shards: 1},
		{Panes: -3, Shards: 1},
		{Panes: 4, Shards: 0},
		{Panes: 4, Shards: -1},
		{Panes: 4, Shards: 1, Width: -time.Second},
	} {
		if _, err := New(cfg, mkExact, mergeExact); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestAdvanceRejectsNonPositive(t *testing.T) {
	w := mustWindow(t, Config{Panes: 3, Shards: 1})
	for _, k := range []int{0, -1} {
		if err := w.Advance(k); err == nil {
			t.Errorf("Advance(%d) should fail", k)
		}
	}
}

func TestBatchLengthMismatch(t *testing.T) {
	w := mustWindow(t, Config{Panes: 3, Shards: 1})
	if err := w.UpdateBatch(0, []int{1, 2}, []float64{1}); err == nil {
		t.Error("UpdateBatch length mismatch should fail")
	}
	if err := w.QueryBatch([]int{1, 2}, make([]float64, 1)); err == nil {
		t.Error("QueryBatch length mismatch should fail")
	}
}

// Property: Window.Query ≡ brute-force recount over only the live
// panes, across random pane counts, shard counts, and advance
// schedules. The exact pane sketch makes the comparison bit-for-bit.
func TestQueryMatchesLivePaneRecountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		panes := 1 + r.Intn(5)
		w, err := New(Config{Panes: panes, Shards: 1 + r.Intn(4)}, mkExact, mergeExact)
		if err != nil {
			t.Log(err)
			return false
		}
		// byPane[seq] accumulates the updates that landed in pane seq.
		byPane := map[int][]float64{}
		cur := 0
		rounds := 2 + r.Intn(12)
		for round := 0; round < rounds; round++ {
			m := r.Intn(60)
			idx := make([]int, m)
			deltas := make([]float64, m)
			for j := range idx {
				idx[j] = r.Intn(dim)
				deltas[j] = float64(r.Intn(9) - 2)
			}
			if p := byPane[cur]; p == nil {
				byPane[cur] = make([]float64, dim)
			}
			for j, i := range idx {
				byPane[cur][i] += deltas[j]
			}
			if r.Intn(2) == 0 {
				if err := w.UpdateBatch(r.Int(), idx, deltas); err != nil {
					t.Log(err)
					return false
				}
			} else {
				for j, i := range idx {
					if err := w.Update(r.Int(), i, deltas[j]); err != nil {
						t.Log(err)
						return false
					}
				}
			}
			if r.Intn(3) == 0 {
				k := 1 + r.Intn(panes+1) // sometimes beyond the window
				if err := w.Advance(k); err != nil {
					t.Log(err)
					return false
				}
				cur += k
			}
			// Brute force: sum exactly the live panes.
			want := make([]float64, dim)
			for seq, x := range byPane {
				if seq >= cur-(panes-1) {
					for i, v := range x {
						want[i] += v
					}
				}
			}
			idxAll := make([]int, dim)
			for i := range idxAll {
				idxAll[i] = i
			}
			out := make([]float64, dim)
			if err := w.QueryBatch(idxAll, out); err != nil {
				t.Log(err)
				return false
			}
			for i := range out {
				if out[i] != want[i] {
					t.Logf("seed %d round %d: x[%d] = %v, live-pane recount %v",
						seed, round, i, out[i], want[i])
					return false
				}
				if q, err := w.Query(i); err != nil || q != out[i] {
					t.Logf("Query(%d) = %v, %v; QueryBatch gave %v", i, q, err, out[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAdvanceFullWindowEmpties(t *testing.T) {
	w := mustWindow(t, Config{Panes: 4, Shards: 2})
	for i := 0; i < dim; i++ {
		if err := w.Update(i, i, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(4); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Query(7); err != nil || got != 0 {
		t.Fatalf("after full-window advance Query = %v, %v; want 0", got, err)
	}
	if w.Live() != 1 {
		t.Fatalf("Live = %d after full-window advance, want 1", w.Live())
	}
}

// A never-written open pane must not materialize a frozen copy: only
// written panes occupy ring slots.
func TestEmptyPanesNeverStored(t *testing.T) {
	w := mustWindow(t, Config{Panes: 5, Shards: 1})
	for k := 0; k < 3; k++ {
		if err := w.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	if w.Live() != 1 {
		t.Fatalf("Live = %d after advancing an idle window, want 1", w.Live())
	}
	if err := w.Update(0, 9, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if w.Live() != 2 {
		t.Fatalf("Live = %d with one written closed pane, want 2", w.Live())
	}
}

// An idle rotation — nothing to freeze, nothing expiring — must not
// invalidate the published view: the window contents are unchanged,
// so a clock-driven window polled while write-idle keeps serving the
// same replica instead of rebuilding it every tick.
func TestIdleRotationKeepsViewFresh(t *testing.T) {
	w := mustWindow(t, Config{Panes: 4, Shards: 1})
	if err := w.Update(0, 3, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	v1, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil { // idle: open pane unwritten, nothing expires
		t.Fatal(err)
	}
	v2, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("idle rotation rebuilt the view")
	}
	if err := w.Advance(2); err != nil { // now the written pane expires
		t.Fatal(err)
	}
	if !v2.Stale() {
		t.Fatal("expiring rotation left the view fresh")
	}
	if got, err := w.Query(3); err != nil || got != 0 {
		t.Fatalf("after expiry Query = %v, %v; want 0", got, err)
	}
}

// The published view must be reused while fresh (pointer identity) and
// rebuilt after a write or a rotation.
func TestViewCaching(t *testing.T) {
	w := mustWindow(t, Config{Panes: 3, Shards: 1})
	if err := w.Update(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	v1, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("fresh view was rebuilt instead of reused")
	}
	if v1.Stale() {
		t.Fatal("freshly built view reports stale")
	}
	if err := w.Update(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !v1.Stale() {
		t.Fatal("view not stale after a write")
	}
	v3, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("stale view was reused")
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if !v3.Stale() {
		t.Fatal("view not stale after a rotation")
	}
}

// Clock-driven rotation: a fake clock crossing pane boundaries must
// expire old traffic on the next touch — including multi-pane jumps
// and query-only touches on a write-idle window.
func TestClockDrivenRotation(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advanceClock := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}
	w, err := New(Config{Panes: 3, Shards: 2, Width: time.Second, Now: clock}, mkExact, mergeExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 5, 10); err != nil {
		t.Fatal(err)
	}
	advanceClock(1100 * time.Millisecond) // into pane 1
	if err := w.Update(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Query(5); got != 11 {
		t.Fatalf("both panes live: Query = %v, want 11", got)
	}
	advanceClock(2 * time.Second) // into pane 3: pane 0 expired
	if got, _ := w.Query(5); got != 1 {
		t.Fatalf("pane 0 expired: Query = %v, want 1", got)
	}
	advanceClock(10 * time.Second) // far future: everything expired, query-only touch
	if got, _ := w.Query(5); got != 0 {
		t.Fatalf("all panes expired: Query = %v, want 0", got)
	}
}

// Rotation race: concurrent writers, readers, and an advancer. Every
// batch moves two marker coordinates in lockstep and both always land
// in the same pane, so any live-pane sum must keep x[0] == x[1]; a
// mismatch means a torn rotation or a torn merge. Run with -race.
func TestRotationRace(t *testing.T) {
	const writers, batches, batchLen, panes = 4, 50, 64, 3
	w := mustWindow(t, Config{Panes: panes, Shards: writers})

	var writerWG, helperWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			r := rand.New(rand.NewSource(int64(7 + g)))
			idx := make([]int, batchLen)
			deltas := make([]float64, batchLen)
			for u := 0; u < batches; u++ {
				idx[0], deltas[0] = 0, 1
				idx[1], deltas[1] = 1, 1
				for j := 2; j < batchLen; j++ {
					idx[j] = 2 + r.Intn(dim-2)
					deltas[j] = 1
				}
				if err := w.UpdateBatch(g, idx, deltas); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	helperWG.Add(1)
	go func() { // rotator: yields between rotations so writers progress
		defer helperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.Advance(1); err != nil {
				t.Error(err)
				return
			}
			runtime.Gosched()
		}
	}()

	for g := 0; g < 3; g++ {
		helperWG.Add(1)
		go func() {
			defer helperWG.Done()
			out := make([]float64, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.QueryBatch([]int{0, 1}, out); err != nil {
					t.Error(err)
					return
				}
				if out[0] != out[1] {
					t.Errorf("torn window: x[0]=%v x[1]=%v", out[0], out[1])
					return
				}
				runtime.Gosched()
			}
		}()
	}

	writerWG.Wait() // writers done; stop rotator and readers
	close(stop)
	helperWG.Wait()

	// Expire everything: the window must drain to zero.
	if err := w.Advance(panes); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2, dim - 1} {
		if got, err := w.Query(i); err != nil || got != 0 {
			t.Fatalf("after draining, Query(%d) = %v, %v; want 0", i, got, err)
		}
	}
}

// Bias-aware panes: the window must serve the full read surface of a
// merged L2SR (queries and bias) and agree with a single sketch fed
// only the live panes' updates.
func TestL2SRWindowMatchesLiveRecount(t *testing.T) {
	const n = 2000
	mk := func() *core.L2SR {
		return core.NewL2SR(core.L2Config{N: n, K: 64, UseBiasHeap: true},
			rand.New(rand.NewSource(5)))
	}
	merge := func(dst, src *core.L2SR) error { return dst.MergeFrom(src) }
	w, err := New(Config{Panes: 2, Shards: 2}, mk, merge)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	// Pane 0: about-to-expire traffic. Panes 1-2: the live window.
	for u := 0; u < 4000; u++ {
		if err := w.Update(u, r.Intn(n), float64(100+r.Intn(10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	ref := mk()
	r2 := rand.New(rand.NewSource(12))
	for u := 0; u < 4000; u++ {
		i, d := r2.Intn(n), float64(100+r2.Intn(10))
		if err := w.Update(u, i, d); err != nil {
			t.Fatal(err)
		}
		ref.Update(i, d)
	}
	if err := w.Advance(1); err != nil { // pane 0 expires; live = ref's updates
		t.Fatal(err)
	}
	v, err := w.View()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 37 {
		if a, b := v.Query(i), ref.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: window %v, live recount %v", i, a, b)
		}
	}
	if a, b := v.Sketch().Bias(), ref.Bias(); math.Abs(a-b) > 1e-9 {
		t.Fatalf("bias: window %v, live recount %v", a, b)
	}
}

func TestWordsAccumulates(t *testing.T) {
	w := mustWindow(t, Config{Panes: 4, Shards: 3})
	base := w.Words()
	if base != 3*dim {
		t.Fatalf("fresh window Words = %d, want %d (3 shards)", base, 3*dim)
	}
	if err := w.Update(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	// Open pane shards + 1 closed pane + the cached closed sum.
	if got := w.Words(); got != 3*dim+2*dim {
		t.Fatalf("Words after one rotation = %d, want %d", got, 5*dim)
	}
}

func TestAccessors(t *testing.T) {
	w := mustWindow(t, Config{Panes: 4, Shards: 2, Width: 0})
	if w.Panes() != 4 || w.Width() != 0 || w.Live() != 1 {
		t.Fatalf("accessors: Panes=%d Width=%v Live=%d", w.Panes(), w.Width(), w.Live())
	}
}

// Live and Words must fold clock-driven rotations in before reporting,
// exactly as Update and Query do: a write-idle window whose panes have
// all expired reports one live pane (the open one) and open-pane-only
// memory, without waiting for some Update or Query to land first.
func TestLiveWordsFoldClockRotations(t *testing.T) {
	now := time.Unix(2000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advanceClock := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}
	cfg := Config{Panes: 3, Shards: 1, Width: time.Second, Now: clock}
	w, err := New(cfg, mkExact, mergeExact)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := New(cfg, mkExact, mergeExact)
	if err != nil {
		t.Fatal(err)
	}
	freshWords := pristine.Words()

	if err := w.Update(0, 5, 10); err != nil {
		t.Fatal(err)
	}
	advanceClock(1100 * time.Millisecond)
	if got := w.Live(); got != 2 { // rotation folded in by Live itself
		t.Fatalf("Live = %d after one pane closed, want 2", got)
	}
	if got := w.Words(); got <= freshWords {
		t.Fatalf("Words = %d with a closed pane live, want > pristine %d", got, freshWords)
	}

	advanceClock(10 * time.Second) // far future: every pane expired, no Update/Query lands
	if got := w.Live(); got != 1 {
		t.Fatalf("Live = %d after full expiry on a write-idle window, want 1", got)
	}
	if got := w.Words(); got != freshWords {
		t.Fatalf("Words = %d after full expiry, want pristine %d", got, freshWords)
	}
	if got, err := w.Query(5); err != nil || got != 0 {
		t.Fatalf("Query(5) = %v, %v after full expiry, want 0", got, err)
	}
}
