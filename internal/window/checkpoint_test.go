package window

import (
	"strings"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/stream"
)

// cloneExact copies an exact pane (what the codec does by serializing).
func cloneExact(src *stream.Exact) *stream.Exact {
	dst := mkExact()
	_ = mergeExact(dst, src)
	return dst
}

// snapshotState captures a window's checkpoint with cloned panes and a
// cloned open-pane replica set — a pure in-memory stand-in for the
// codec.
func snapshotState(t *testing.T, w *Window[*stream.Exact]) Checkpoint[*stream.Exact] {
	t.Helper()
	var out Checkpoint[*stream.Exact]
	err := w.Checkpoint(func(cp Checkpoint[*stream.Exact]) error {
		out.CurSeq = cp.CurSeq
		out.ClosedSeqs = append([]uint64(nil), cp.ClosedSeqs...)
		for _, p := range cp.Closed {
			out.Closed = append(out.Closed, cloneExact(p))
		}
		open := concurrent.New(cp.Open.Shards(), mkExact, mergeExact)
		var states []*stream.Exact
		var epochs []uint64
		if err := cp.Open.CheckpointShards(func(i int, epoch uint64, sk *stream.Exact) error {
			states = append(states, cloneExact(sk))
			epochs = append(epochs, epoch)
			return nil
		}); err != nil {
			return err
		}
		if err := open.RestoreShards(func(i int, sk *stream.Exact) (uint64, error) {
			return epochs[i], mergeExact(sk, states[i])
		}); err != nil {
			return err
		}
		out.Open = open
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Checkpoint → Restore must reproduce the window exactly: live panes,
// sequences, answers — and both windows must evolve identically
// afterwards, including expiry of pre-checkpoint panes.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	live := mustWindow(t, Config{Panes: 4, Shards: 2})
	for u := 0; u < 2600; u++ {
		if err := live.Update(u%2, (u*7+3)%dim, float64(1+u%3)); err != nil {
			t.Fatal(err)
		}
		if u%400 == 399 {
			if err := live.Advance(1); err != nil {
				t.Fatal(err)
			}
		}
	}

	cp := snapshotState(t, live)
	restored := mustWindow(t, Config{Panes: 4, Shards: 2})
	if err := restored.Restore(cp); err != nil {
		t.Fatal(err)
	}

	same := func() {
		t.Helper()
		if live.Live() != restored.Live() {
			t.Fatalf("live panes %d != %d", live.Live(), restored.Live())
		}
		for i := 0; i < dim; i += 5 {
			a, err := live.Query(i)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Query(i)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("query %d: %v != %v", i, a, b)
			}
		}
	}
	same()

	// Lockstep evolution: writes, rotations, expiry.
	for u := 0; u < 1800; u++ {
		if err := live.Update(u%2, (u*11+1)%dim, 2); err != nil {
			t.Fatal(err)
		}
		if err := restored.Update(u%2, (u*11+1)%dim, 2); err != nil {
			t.Fatal(err)
		}
		if u%300 == 299 {
			if err := live.Advance(1); err != nil {
				t.Fatal(err)
			}
			if err := restored.Advance(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	same()
}

// Restore validation: every structurally invalid checkpoint is
// rejected with the window untouched.
func TestRestoreValidates(t *testing.T) {
	mkOpen := func(shards int) *concurrent.Sharded[*stream.Exact] {
		return concurrent.New(shards, mkExact, mergeExact)
	}
	base := func() Checkpoint[*stream.Exact] {
		return Checkpoint[*stream.Exact]{
			CurSeq:     5,
			ClosedSeqs: []uint64{3, 4},
			Closed:     []*stream.Exact{mkExact(), mkExact()},
			Open:       mkOpen(2),
		}
	}
	cases := map[string]func(cp *Checkpoint[*stream.Exact]){
		"nil open":          func(cp *Checkpoint[*stream.Exact]) { cp.Open = nil },
		"seq/pane mismatch": func(cp *Checkpoint[*stream.Exact]) { cp.ClosedSeqs = cp.ClosedSeqs[:1] },
		"too many panes": func(cp *Checkpoint[*stream.Exact]) {
			cp.ClosedSeqs = []uint64{1, 2, 3, 4}
			cp.Closed = []*stream.Exact{mkExact(), mkExact(), mkExact(), mkExact()}
		},
		"seq at open pane":    func(cp *Checkpoint[*stream.Exact]) { cp.ClosedSeqs = []uint64{3, 5} },
		"seq expired":         func(cp *Checkpoint[*stream.Exact]) { cp.CurSeq = 100; cp.ClosedSeqs = []uint64{3, 99} },
		"seqs not increasing": func(cp *Checkpoint[*stream.Exact]) { cp.ClosedSeqs = []uint64{4, 4} },
	}
	for name, corrupt := range cases {
		w := mustWindow(t, Config{Panes: 4, Shards: 2})
		if err := w.Update(0, 1, 7); err != nil {
			t.Fatal(err)
		}
		cp := base()
		corrupt(&cp)
		if err := w.Restore(cp); err == nil {
			t.Errorf("%s: Restore should fail", name)
			continue
		}
		// Window untouched by the failed restore.
		if v, err := w.Query(1); err != nil || v != 7 {
			t.Errorf("%s: window disturbed by failed restore: %v %v", name, v, err)
		}
	}
}

// A valid restore replaces prior contents and invalidates published
// views.
func TestRestoreReplacesContents(t *testing.T) {
	w := mustWindow(t, Config{Panes: 3, Shards: 1})
	if err := w.Update(0, 9, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := w.View(); err != nil {
		t.Fatal(err)
	}
	open := concurrent.New(1, mkExact, mergeExact)
	open.Update(0, 2, 11)
	closedPane := mkExact()
	closedPane.Update(4, 6)
	err := w.Restore(Checkpoint[*stream.Exact]{
		CurSeq:     8,
		ClosedSeqs: []uint64{7},
		Closed:     []*stream.Exact{closedPane},
		Open:       open,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Query(9); got != 0 {
		t.Fatalf("old contents survived: %v", got)
	}
	if got, _ := w.Query(2); got != 11 {
		t.Fatalf("open pane state: %v", got)
	}
	if got, _ := w.Query(4); got != 6 {
		t.Fatalf("closed pane state: %v", got)
	}
	if w.Live() != 2 {
		t.Fatalf("live = %d", w.Live())
	}
	// One more advance expires the restored closed pane (seq 7 with
	// curSeq 8 in a 3-pane window survives until curSeq 10).
	if err := w.Advance(3); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Query(4); got != 0 {
		t.Fatalf("closed pane should have expired: %v", got)
	}
}

// Restore adopts the checkpoint's writer-shard count: a shell built
// with one shard ends up with the checkpointed shard layout, and the
// next rotation builds fresh open panes with that count.
func TestRestoreAdoptsShardCount(t *testing.T) {
	w := mustWindow(t, Config{Panes: 3, Shards: 1})
	open := concurrent.New(4, mkExact, mergeExact)
	open.Update(2, 5, 9)
	if err := w.Restore(Checkpoint[*stream.Exact]{CurSeq: 1, Open: open}); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Query(5); got != 9 {
		t.Fatalf("restored open pane state: %v", got)
	}
	// Rotate: the fresh open pane must carry the adopted shard count.
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	shards := func() int {
		w.rot.RLock()
		defer w.rot.RUnlock()
		return w.cur.Shards()
	}()
	if shards != 4 {
		t.Fatalf("post-rotation open pane has %d shards, want 4", shards)
	}
}

// In clock-driven mode a restore restarts the open pane's deadline at
// the injected clock's now.
func TestRestoreRestartsClock(t *testing.T) {
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	w, err := New(Config{Panes: 3, Shards: 1, Width: time.Minute, Now: clock}, mkExact, mergeExact)
	if err != nil {
		t.Fatal(err)
	}
	open := concurrent.New(1, mkExact, mergeExact)
	open.Update(0, 1, 5)
	// Move the clock far past the original deadline, then restore: the
	// restored pane must get a fresh full width, not rotate instantly.
	now = now.Add(10 * time.Minute)
	if err := w.Restore(Checkpoint[*stream.Exact]{CurSeq: 2, Open: open}); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Query(1); got != 5 {
		t.Fatalf("restored state: %v", got)
	}
	now = now.Add(59 * time.Second)
	if got, _ := w.Query(1); got != 5 {
		t.Fatalf("pane rotated before its width elapsed: %v", got)
	}
	now = now.Add(2 * time.Second)
	// The update stays live (now a closed pane) and a query folds the
	// due rotation in.
	if got, _ := w.Query(1); got != 5 {
		t.Fatalf("rotated-out pane lost its mass: %v", got)
	}
	if w.Live() != 2 {
		t.Fatalf("pane should have rotated after its width: live=%d", w.Live())
	}
}

// Checkpoint must name merge failures rather than panic, and the
// failing callback's error must surface.
func TestCheckpointPropagatesCallbackError(t *testing.T) {
	w := mustWindow(t, Config{Panes: 2, Shards: 1})
	err := w.Checkpoint(func(Checkpoint[*stream.Exact]) error {
		return errFor("checkpoint sink full")
	})
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v", err)
	}
}

type errFor string

func (e errFor) Error() string { return string(e) }
