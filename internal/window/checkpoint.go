package window

import (
	"fmt"

	"repro/internal/concurrent"
)

// This file is the checkpoint surface the streaming codec drives. A
// window's durable identity is its rotation state: the open pane's
// sequence number, the closed panes with their sequences, and the open
// pane's sharded replica set. Pane width is configuration (a duration,
// clock-independent); absolute pane boundaries are deliberately not
// part of a checkpoint — on restore the open pane's clock restarts.

// Checkpoint is the rotation state handed to (and accepted from) the
// codec.
type Checkpoint[S concurrent.Mergeable] struct {
	// CurSeq is the open pane's sequence number.
	CurSeq uint64
	// ClosedSeqs holds the closed panes' sequence numbers, oldest
	// first, strictly increasing, all below CurSeq and within the
	// window span.
	ClosedSeqs []uint64
	// Closed holds the closed panes, parallel to ClosedSeqs. They are
	// immutable shared replicas.
	Closed []S
	// Open is the open pane's replica set.
	Open *concurrent.Sharded[S]
}

// Checkpoint invokes f with the window's current rotation state, held
// stable for the duration of the call: the rotation read-lock blocks
// Advance and clock-driven rotation, while writers keep ingesting into
// the open pane — per-shard locking inside CheckpointShards gives f
// the same consistent-interleaving guarantee as Merged. In clock-
// driven mode any due rotation is folded in first, so a checkpoint
// never carries expired panes. f must not retain the state after
// returning: the closed panes are shared immutable replicas and the
// open pane is live.
func (w *Window[S]) Checkpoint(f func(Checkpoint[S]) error) error {
	if err := w.maybeAdvance(); err != nil {
		return err
	}
	w.rot.RLock()
	defer w.rot.RUnlock()
	cp := Checkpoint[S]{
		CurSeq:     w.curSeq,
		ClosedSeqs: make([]uint64, len(w.closed)),
		Closed:     make([]S, len(w.closed)),
		Open:       w.cur,
	}
	for i, p := range w.closed {
		cp.ClosedSeqs[i] = p.seq
		cp.Closed[i] = p.sk
	}
	return f(cp)
}

// Restore installs a checkpointed rotation state, replacing the
// window's entire contents: the closed panes are adopted as immutable,
// the open pane becomes cp.Open, and the cached closed-pane sum is
// rebuilt with the same left-fold (oldest first) association the live
// rotation path uses — so a restored window answers queries
// bit-identically to the window that was checkpointed. The published
// view is invalidated; in clock-driven mode the open pane's clock
// restarts at restore time.
//
// Restore is meant for a freshly built Window (the codec path). The
// window adopts the checkpoint's writer-shard count (so the shell may
// be built with Shards: 1 — its pre-restore open pane is discarded),
// and views handed out before a restore keep serving the pre-restore
// state.
func (w *Window[S]) Restore(cp Checkpoint[S]) error {
	if cp.Open == nil {
		return fmt.Errorf("window: restore: nil open pane")
	}
	if len(cp.Closed) != len(cp.ClosedSeqs) {
		return fmt.Errorf("window: restore: %d closed panes with %d sequences", len(cp.Closed), len(cp.ClosedSeqs))
	}
	if len(cp.Closed) > w.panes-1 {
		return fmt.Errorf("window: restore: %d closed panes do not fit a %d-pane window", len(cp.Closed), w.panes)
	}
	var minLive uint64
	if span := uint64(w.panes - 1); cp.CurSeq > span {
		minLive = cp.CurSeq - span
	}
	for i, seq := range cp.ClosedSeqs {
		if seq >= cp.CurSeq {
			return fmt.Errorf("window: restore: closed pane %d sequence %d not below the open pane's %d", i, seq, cp.CurSeq)
		}
		if seq < minLive {
			return fmt.Errorf("window: restore: closed pane %d sequence %d already expired (window starts at %d)", i, seq, minLive)
		}
		if i > 0 && seq <= cp.ClosedSeqs[i-1] {
			return fmt.Errorf("window: restore: closed pane sequences not strictly increasing at %d", i)
		}
	}

	// Rebuild the cached closed-pane sum before committing anything: a
	// failing merge (possible with a caller-supplied merge function)
	// leaves the window untouched.
	var sum S
	hasClosed := len(cp.Closed) > 0
	if hasClosed {
		sum = w.mk()
		for i, p := range cp.Closed {
			if err := w.merge(sum, p); err != nil {
				return fmt.Errorf("window: restore: summing closed pane %d: %w", i, err)
			}
		}
	}
	keep := make([]frozenPane[S], len(cp.Closed))
	for i := range cp.Closed {
		keep[i] = frozenPane[S]{sk: cp.Closed[i], seq: cp.ClosedSeqs[i]}
	}

	w.rot.Lock()
	defer w.rot.Unlock()
	w.closed = keep
	w.closedSum = sum
	w.hasClosed = hasClosed
	w.curSeq = cp.CurSeq
	w.cur = cp.Open
	// Adopt the checkpoint's writer-shard count: future rotations build
	// fresh open panes shaped like the restored one, and the caller can
	// construct the shell window with a single throwaway shard instead
	// of pre-building a replica set Restore would discard.
	w.sh = cp.Open.Shards()
	if w.width > 0 {
		w.paneStart = w.now()
		w.deadline.Store(w.paneStart.Add(w.width).UnixNano())
	}
	w.view.Store(nil)
	w.gen.Add(1)
	return nil
}
