package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/counterbraids"
)

// cbDecodeIters bounds the min-sum iterations per braid layer when the
// compressed plane materializes its view. Below the decoding threshold
// the message passing settles in a handful of rounds; 32 matches the
// guidance on counterbraids.Decode.
const cbDecodeIters = 32

// cbPlane is the compressed backend: the d×s counter matrix lives in a
// Counter Braids structure over the flattened cell universe
// (cell (t,b) ↦ flow t·rows+b), at a fraction of the bits of the dense
// layout. The braid inherits Counter Braids' contract wholesale —
// updates must be non-negative integers (ErrInsertOnly otherwise), and
// reads decode the whole plane by message passing, exact below the
// braid's load threshold and ErrPlaneDecode beyond it. The decoded
// view is cached until the next Add, so query bursts against a
// quiescent sketch pay for one decode.
type cbPlane struct {
	depth, rows int
	braid       *counterbraids.Braid

	view  [][]float64 // cached decoded rows
	fresh bool        // view matches the braid state
}

func newCBPlane(depth, rows int, r *rand.Rand) *cbPlane {
	return &cbPlane{
		depth: depth,
		rows:  rows,
		braid: counterbraids.New(counterbraids.Config{N: depth * rows}, r),
	}
}

func (p *cbPlane) Kind() BackendKind         { return BackendCompressed }
func (p *cbPlane) WritableRows() [][]float64 { return nil }
func (p *cbPlane) Bits() int                 { return p.braid.Bits() }

func (p *cbPlane) ValidateAdd(delta float64) error {
	if delta < 0 || float64(uint64(delta)) != delta {
		return fmt.Errorf("%w: delta %v", ErrInsertOnly, delta)
	}
	return nil
}

func (p *cbPlane) Add(t, b int, delta float64) error {
	if err := p.ValidateAdd(delta); err != nil {
		return err
	}
	p.braid.Update(t*p.rows+b, delta)
	p.fresh = false
	return nil
}

// View decodes the braid into per-row slices, reusing the cached
// decode when no Add intervened.
func (p *cbPlane) View() ([][]float64, error) {
	if p.fresh {
		return p.view, nil
	}
	flat, err := p.braid.Decode(cbDecodeIters)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrPlaneDecode, err)
	}
	if p.view == nil {
		p.view = make([][]float64, p.depth)
	}
	for t := range p.view {
		p.view[t] = flat[t*p.rows : (t+1)*p.rows]
	}
	p.fresh = true
	return p.view, nil
}

// MergeFrom adds o's counters into the braid. A same-shape compressed
// plane merges braid-to-braid — exact and without decoding either
// side. Any other readable plane is decoded and re-inserted cell by
// cell, which requires its values to satisfy the insert-only contract.
func (p *cbPlane) MergeFrom(o Plane) error {
	if ocb, ok := o.(*cbPlane); ok && p.braid.SameShape(ocb.braid) {
		if err := p.braid.MergeFrom(ocb.braid); err != nil {
			return err
		}
		p.fresh = false
		return nil
	}
	ov, err := o.View()
	if err != nil {
		return err
	}
	for t := range ov {
		for b, v := range ov[t] {
			if v == 0 {
				continue
			}
			if err := p.Add(t, b, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// MarshalCells decodes the plane and emits the shared wire cell
// layout, so a compressed checkpoint restores into any backend. Past
// the braid threshold the state is unrecoverable and so unserializable
// (ErrPlaneDecode).
func (p *cbPlane) MarshalCells() ([]byte, error) {
	v, err := p.View()
	if err != nil {
		return nil, err
	}
	return marshalRows(v, p.rows), nil
}

// UnmarshalCells rebuilds the braid from a wire cell payload by
// re-inserting every non-zero cell total. The braid state is a
// deterministic additive function of the per-cell totals, so this
// reproduces bit-identical braid state for any payload a compressed
// plane produced; payloads with negative or fractional cells (a dense
// checkpoint of a signed sketch) are rejected with ErrInsertOnly.
func (p *cbPlane) UnmarshalCells(buf []byte) error {
	if err := checkCellPayload(buf, p.depth, p.rows); err != nil {
		return err
	}
	for off := 0; off < len(buf); off += 8 {
		if err := p.ValidateAdd(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))); err != nil {
			return err
		}
	}
	p.braid.Reset()
	p.fresh = false
	off := 0
	for t := 0; t < p.depth; t++ {
		for b := 0; b < p.rows; b++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			if v != 0 {
				p.braid.Update(t*p.rows+b, v)
			}
		}
	}
	return nil
}
