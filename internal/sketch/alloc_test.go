// AllocsPerRun gates are meaningless under the race detector: race-
// instrumented sync.Pool randomly drops Puts, so pooled paths
// legitimately allocate. The lexical hotpathalloc analyzer still
// covers these paths in race builds.
//go:build !race

package sketch

import (
	"math/rand"
	"testing"
)

// The runtime half of the //sketch:hotpath contract (the lexical half
// is enforced by the hotpathalloc analyzer in cmd/sketchlint): after a
// warm-up pass that grows every reusable buffer and primes the shared
// scratch pool, the batched ingestion and serving paths of every
// algorithm run with zero allocations per operation.

const (
	allocDim   = 1 << 12
	allocBatch = 600 // spans multiple queryChunk tiles
)

func allocSketches(r *rand.Rand) map[string]Sketch {
	cfg := Config{N: allocDim, Rows: 128, Depth: 5}
	return map[string]Sketch{
		"countmin":    must(NewCountMin(cfg, r)),
		"countmedian": must(NewCountMedian(cfg, r)),
		"countsketch": must(NewCountSketch(cfg, r)),
		"cmcu":        must(NewCMCU(cfg, r)),
		"cmlcu":       must(NewCMLCU(cfg, DefaultCMLBase, r)),
		"dengrafiei":  must(NewDengRafiei(cfg, r)),
	}
}

// allocVariantSketches covers the hot-path variants introduced by the
// hash-family and counter-plane work: tabulation hashing, the tiled
// plane, and the two combined — each must hold the same zero-alloc
// steady state as the default pairwise/dense configuration.
func allocVariantSketches(r *rand.Rand) map[string]Sketch {
	tab := Config{N: allocDim, Rows: 128, Depth: 5, Hash: HashTabulation}
	pair := Config{N: allocDim, Rows: 128, Depth: 5}
	tiled := Backend{Kind: BackendTiled}
	return map[string]Sketch{
		"countmin/tab":          must(NewCountMin(tab, r)),
		"countmedian/tab":       must(NewCountMedian(tab, r)),
		"countsketch/tab":       must(NewCountSketch(tab, r)),
		"cmcu/tab":              must(NewCMCU(tab, r)),
		"cmlcu/tab":             must(NewCMLCU(tab, DefaultCMLBase, r)),
		"dengrafiei/tab":        must(NewDengRafiei(tab, r)),
		"countmin/tiled":        must(NewCountMinBackend(pair, tiled, r)),
		"countmedian/tiled":     must(NewCountMedianBackend(pair, tiled, r)),
		"countsketch/tiled":     must(NewCountSketchBackend(pair, tiled, r)),
		"dengrafiei/tiled":      must(NewDengRafieiBackend(pair, tiled, r)),
		"countmin/tab+tiled":    must(NewCountMinBackend(tab, tiled, r)),
		"countmedian/tab+tiled": must(NewCountMedianBackend(tab, tiled, r)),
		"countsketch/tab+tiled": must(NewCountSketchBackend(tab, tiled, r)),
		"dengrafiei/tab+tiled":  must(NewDengRafieiBackend(tab, tiled, r)),
	}
}

func allocBatchData(r *rand.Rand) (idx []int, deltas, out []float64) {
	idx = make([]int, allocBatch)
	deltas = make([]float64, allocBatch)
	out = make([]float64, allocBatch)
	for j := range idx {
		idx[j] = r.Intn(allocDim)
		deltas[j] = float64(1 + r.Intn(5))
	}
	return idx, deltas, out
}

func TestUpdateBatchAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idx, deltas, _ := allocBatchData(r)
	for _, group := range []map[string]Sketch{allocSketches(r), allocVariantSketches(r)} {
		for name, s := range group {
			b := s.(BatchUpdater)
			b.UpdateBatch(idx, deltas) // warm-up: grows reusable buffers
			if n := testing.AllocsPerRun(50, func() { b.UpdateBatch(idx, deltas) }); n != 0 {
				t.Errorf("%s: UpdateBatch allocates %.1f per call in steady state", name, n)
			}
		}
	}
}

func TestQueryBatchAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idx, deltas, out := allocBatchData(r)
	for _, group := range []map[string]Sketch{allocSketches(r), allocVariantSketches(r)} {
		for name, s := range group {
			s.(BatchUpdater).UpdateBatch(idx, deltas)
			b := s.(BatchQuerier)
			b.QueryBatch(idx, out) // warm-up: primes the scratch pool
			if n := testing.AllocsPerRun(50, func() { b.QueryBatch(idx, out) }); n != 0 {
				t.Errorf("%s: QueryBatch allocates %.1f per call in steady state", name, n)
			}
		}
	}
}

// The package-level dispatch helpers must add nothing on top of the
// native paths: a concrete sketch held in the interface is a pointer,
// so the dispatch itself stays allocation-free too.
func TestDispatchHelpersAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idx, deltas, out := allocBatchData(r)
	s := Sketch(must(NewCountMedian(Config{N: allocDim, Rows: 128, Depth: 5}, r)))
	UpdateBatch(s, idx, deltas)
	QueryBatch(s, idx, out)
	if n := testing.AllocsPerRun(50, func() { UpdateBatch(s, idx, deltas) }); n != 0 {
		t.Errorf("sketch.UpdateBatch allocates %.1f per call in steady state", n)
	}
	if n := testing.AllocsPerRun(50, func() { QueryBatch(s, idx, out) }); n != 0 {
		t.Errorf("sketch.QueryBatch allocates %.1f per call in steady state", n)
	}
}
