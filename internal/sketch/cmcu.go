package sketch

import (
	"fmt"
	"math/rand"
)

// CMCU is Count-Min with conservative update (Estan–Varghese [17],
// Goyal et al. [21]): on an increment, only the buckets that would
// otherwise fall below the new lower bound are raised. CM-CU strictly
// improves the accuracy of Count-Min on insert-only streams but loses
// linearity — it cannot be merged, which is exactly the drawback §2 of
// the paper points out for the distributed setting.
//
// Update supports arbitrary positive deltas using the standard
// weighted conservative rule: every bucket of i is raised to
// max(bucket, min_t bucket_t(i) + delta).
type CMCU struct {
	tb   table
	hbuf []int // d×batch bucket indexes, row-major, reused across UpdateBatch calls
}

// NewCMCU creates a dense conservative-update Count-Min sketch.
// Invalid configurations return an ErrConfig-wrapped error.
func NewCMCU(cfg Config, r *rand.Rand) (*CMCU, error) {
	return NewCMCUBackend(cfg, Backend{}, r)
}

// NewCMCUBackend creates a conservative-update Count-Min sketch on the
// chosen counter plane. The conservative raise sets buckets to a
// target value — not a linear add — which the compressed plane cannot
// represent: BackendCompressed returns ErrBackendUnsupported. Dense
// and mmap (read-only) are supported.
func NewCMCUBackend(cfg Config, be Backend, r *rand.Rand) (*CMCU, error) {
	if be.Kind == BackendCompressed {
		return nil, fmt.Errorf("%w: cmcu's conservative raise sets buckets in place, the compressed plane only adds", ErrBackendUnsupported)
	}
	if be.Kind == BackendTiled {
		return nil, fmt.Errorf("%w: cmcu's conservative raise needs in-place row views, which the tiled plane does not expose", ErrBackendUnsupported)
	}
	tb, err := newTable(cfg, r, be)
	if err != nil {
		return nil, err
	}
	return &CMCU{tb: tb}, nil
}

// Backend reports the counter plane's storage backend.
func (c *CMCU) Backend() BackendKind { return c.tb.backend() }

// growHbuf ensures the row-major bucket-index scratch holds n entries;
// growth helper kept out of the tagged hot path.
func (c *CMCU) growHbuf(n int) {
	if cap(c.hbuf) < n {
		c.hbuf = make([]int, n)
	}
}

// Update applies a conservative increment of delta to coordinate i.
// Negative deltas are not representable under conservative update
// (the structure is insert-only); they panic.
//
//sketch:hotpath
func (c *CMCU) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	if delta < 0 {
		panic("sketch: CMCU does not support negative updates (insert-only)")
	}
	cells := c.tb.writable()
	depth := len(cells)
	c.growHbuf(depth)
	hb := c.hbuf[:depth]
	c.tb.hashPoint(uint64(i), hb)
	m := cells[0][hb[0]]
	for t := 1; t < depth; t++ {
		m = min(m, cells[t][hb[t]])
	}
	target := m + delta
	for t, b := range hb {
		if cells[t][b] < target {
			cells[t][b] = target
		}
	}
}

// UpdateBatch applies the batch of conservative increments. The hash
// evaluation is row-major (one coefficient load per row for the whole
// batch), but the conservative raise stays element-ordered — each
// element's row-wise minimum depends on every earlier element — so the
// final counters exactly match the element-wise Update loop.
//
//sketch:hotpath
func (c *CMCU) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	for _, d := range deltas {
		if d < 0 {
			panic("sketch: CMCU does not support negative updates (insert-only)")
		}
	}
	cells := c.tb.writable()
	m := len(idx)
	depth := len(cells)
	c.growHbuf(depth * m)
	for t := 0; t < depth; t++ {
		c.tb.hash.HashMany(t, idx, c.hbuf[t*m:(t+1)*m])
	}
	for j := 0; j < m; j++ {
		min := cells[0][c.hbuf[j]]
		for t := 1; t < depth; t++ {
			if v := cells[t][c.hbuf[t*m+j]]; v < min {
				min = v
			}
		}
		target := min + deltas[j]
		for t := 0; t < depth; t++ {
			b := c.hbuf[t*m+j]
			if cells[t][b] < target {
				cells[t][b] = target
			}
		}
	}
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j.
// Queries read counters without the conservative-raise coupling that
// forces element order on the write side, so the read path is plainly
// row-major and bit-identical to the element-wise Query loop.
//
//sketch:hotpath
func (c *CMCU) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	c.tb.minRows(idx, out)
}

// Query estimates x[i] as the minimum bucket over rows.
//
//sketch:hotpath
func (c *CMCU) Query(i int) float64 {
	c.tb.checkIndex(i)
	return c.tb.minPoint(i)
}

// Dim returns the vector dimension n.
func (c *CMCU) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words.
func (c *CMCU) Words() int { return c.tb.words() }

// Marshal serializes the counter matrix. CM-CU is not linear — a
// restored sketch resumes local ingestion, it cannot be merged.
func (c *CMCU) Marshal() ([]byte, error) { return c.tb.marshalCells() }

// Unmarshal restores state captured by Marshal on a sketch built with
// the same configuration and seeds.
func (c *CMCU) Unmarshal(b []byte) error { return c.tb.unmarshalCells(b) }
