package sketch

import (
	"errors"
	"fmt"
)

// HashKind selects the hash family a sketch's rows draw from. The zero
// value is the paper's §4.4 Carter–Wegman pairwise family, so existing
// configurations (and wire descriptors without a family byte) keep
// their exact behavior.
type HashKind uint8

const (
	// HashPairwise is the Carter–Wegman pairwise family over the
	// Mersenne prime 2^61−1 — the paper's choice, exact 2-wise
	// independence, O(1) words per function. The default.
	HashPairwise HashKind = iota
	// HashTabulation is Pǎtraşcu–Thorup simple tabulation: 3-wise
	// independent (a fortiori satisfying every second-moment analysis in
	// the paper), divisionless evaluation — cheaper per hash than the
	// pairwise family's hardware modulo — at 16 KiB of tables per
	// function (2 KiB per sign function).
	HashTabulation
)

// String names the hash family for error messages and descriptors.
func (k HashKind) String() string {
	switch k {
	case HashPairwise:
		return "pairwise"
	case HashTabulation:
		return "tabulation"
	default:
		return fmt.Sprintf("hash(%d)", uint8(k))
	}
}

// ErrHashUnsupported is returned when an algorithm cannot run with the
// requested hash family.
var ErrHashUnsupported = errors.New("sketch: hash family not supported by this algorithm")
