package sketch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func testCfg() Config { return Config{N: 10000, Rows: 256, Depth: 9} }

// gaussianVector builds a biased Gaussian vector like the paper's
// synthetic dataset (§5.1).
func gaussianVector(n int, bias, sigma float64, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Round(r.NormFloat64()*sigma + bias)
	}
	return x
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0, Rows: 1, Depth: 1},
		{N: 1, Rows: 0, Depth: 1},
		{N: 1, Rows: 1, Depth: 0},
		{N: -5, Rows: 8, Depth: 2},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	if (Config{N: 1, Rows: 1, Depth: 1}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestMedianOf(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{}, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		buf := append([]float64(nil), c.in...)
		if got := medianOf(buf); got != c.want {
			t.Errorf("medianOf(%v) = %f, want %f", c.in, got, c.want)
		}
	}
}

// every sketch must answer exact queries on a sparse vector that fits
// entirely in its buckets with no collisions of consequence.
func TestExactOnVerySparse(t *testing.T) {
	cfg := Config{N: 1000, Rows: 512, Depth: 9}
	r := rand.New(rand.NewSource(1))
	sketches := map[string]Sketch{
		"countmin":    must(NewCountMin(cfg, r)),
		"countmedian": must(NewCountMedian(cfg, r)),
		"countsketch": must(NewCountSketch(cfg, r)),
		"cmcu":        must(NewCMCU(cfg, r)),
		"dengrafiei":  must(NewDengRafiei(cfg, r)),
	}
	for name, s := range sketches {
		s.Update(7, 42)
		got := s.Query(7)
		if math.Abs(got-42) > 1 {
			t.Errorf("%s: Query(7) = %f, want ~42", name, got)
		}
		if g := s.Query(8); math.Abs(g) > 1 {
			t.Errorf("%s: Query(8) = %f, want ~0", name, g)
		}
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cfg := Config{N: 5000, Rows: 64, Depth: 5}
	r := rand.New(rand.NewSource(2))
	cm := must(NewCountMin(cfg, r))
	x := make([]float64, cfg.N)
	for i := 0; i < 20000; i++ {
		j := r.Intn(cfg.N)
		x[j]++
		cm.Update(j, 1)
	}
	for i := 0; i < cfg.N; i++ {
		if cm.Query(i) < x[i]-1e-9 {
			t.Fatalf("Count-Min underestimated x[%d]: %f < %f", i, cm.Query(i), x[i])
		}
	}
}

func TestCMCUNeverUnderestimatesAndBeatsCM(t *testing.T) {
	cfg := Config{N: 5000, Rows: 64, Depth: 5}
	r := rand.New(rand.NewSource(3))
	cm := must(NewCountMin(cfg, rand.New(rand.NewSource(4))))
	cu := must(NewCMCU(cfg, rand.New(rand.NewSource(4))))
	x := make([]float64, cfg.N)
	zipf := rand.NewZipf(r, 1.3, 1, uint64(cfg.N-1))
	for i := 0; i < 50000; i++ {
		j := int(zipf.Uint64())
		x[j]++
		cm.Update(j, 1)
		cu.Update(j, 1)
	}
	var cmErr, cuErr float64
	for i := 0; i < cfg.N; i++ {
		if cu.Query(i) < x[i]-1e-9 {
			t.Fatalf("CM-CU underestimated x[%d]", i)
		}
		cmErr += cm.Query(i) - x[i]
		cuErr += cu.Query(i) - x[i]
	}
	if cuErr > cmErr {
		t.Errorf("CM-CU total overestimate %f should not exceed CM %f", cuErr, cmErr)
	}
}

func TestCMCURejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative update")
		}
	}()
	must(NewCMCU(testCfg(), rand.New(rand.NewSource(5)))).Update(0, -1)
}

func TestCMLCURejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative update")
		}
	}()
	must(NewCMLCU(testCfg(), DefaultCMLBase, rand.New(rand.NewSource(5)))).Update(0, -1)
}

func TestCMLCURejectsBadBase(t *testing.T) {
	if _, err := NewCMLCU(testCfg(), 1.0, rand.New(rand.NewSource(5))); !errors.Is(err, ErrConfig) {
		t.Fatalf("base <= 1: got %v, want ErrConfig", err)
	}
}

func TestCMLCUApproximatesCounts(t *testing.T) {
	cfg := Config{N: 2000, Rows: 512, Depth: 7}
	r := rand.New(rand.NewSource(6))
	cml := must(NewCMLCU(cfg, DefaultCMLBase, r))
	// Large-ish counts on a few coordinates; base 1.00025 counters are
	// near-linear so relative error should be small.
	counts := map[int]float64{3: 1000, 77: 5000, 500: 250}
	for i, c := range counts {
		for j := 0; j < int(c); j++ {
			cml.Update(i, 1)
		}
	}
	for i, c := range counts {
		got := cml.Query(i)
		if math.Abs(got-c)/c > 0.05 {
			t.Errorf("CML-CU Query(%d) = %f, want within 5%% of %f", i, got, c)
		}
	}
}

func TestCMLCUWeightedMatchesUnit(t *testing.T) {
	cfg := Config{N: 100, Rows: 64, Depth: 5}
	unit := must(NewCMLCU(cfg, DefaultCMLBase, rand.New(rand.NewSource(7))))
	weighted := must(NewCMLCU(cfg, DefaultCMLBase, rand.New(rand.NewSource(7))))
	for j := 0; j < 2000; j++ {
		unit.Update(5, 1)
	}
	weighted.Update(5, 2000)
	u, w := unit.Query(5), weighted.Query(5)
	if math.Abs(u-w)/2000 > 0.02 {
		t.Errorf("unit-increment %f and weighted %f disagree beyond 2%%", u, w)
	}
}

// Theorem 1: Count-Median error bounded by O(1/k)·Err_1^k(x). We check
// the empirical max error is within a generous constant of the bound.
func TestCountMedianErrorBound(t *testing.T) {
	n, k := 20000, 32
	cfg := Config{N: n, Rows: 8 * k, Depth: 11}
	r := rand.New(rand.NewSource(8))
	x := make([]float64, n)
	// k-ish heavy coordinates + light tail.
	for i := 0; i < k; i++ {
		x[r.Intn(n)] += 10000
	}
	for i := 0; i < n/10; i++ {
		x[r.Intn(n)] += 1
	}
	cm := must(NewCountMedian(cfg, r))
	SketchVector(cm, x)
	xhat := Recover(cm)
	bound := vecmath.ErrK(x, k, 1) / float64(k)
	// With d = 11 rows the per-coordinate failure probability is small
	// but not 1/n, so a handful of the 20000 coordinates may be
	// contaminated by a heavy collision; check the bulk (99.5%) of
	// coordinates obey the Theorem 1 bound instead of the strict max.
	errs := make([]float64, n)
	for i := range errs {
		errs[i] = math.Abs(x[i] - xhat[i])
	}
	if got := vecmath.Percentile(errs, 0.995); got > 4*bound+1e-9 {
		t.Errorf("Count-Median P99.5 error %f exceeds 4×bound %f", got, 4*bound)
	}
}

// Theorem 2: Count-Sketch error bounded by O(1/√k)·Err_2^k(x).
func TestCountSketchErrorBound(t *testing.T) {
	n, k := 20000, 32
	cfg := Config{N: n, Rows: 8 * k, Depth: 11}
	r := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := 0; i < k; i++ {
		x[r.Intn(n)] += 10000
	}
	for i := range x {
		x[i] += math.Round(r.Float64() * 3)
	}
	cs := must(NewCountSketch(cfg, r))
	SketchVector(cs, x)
	xhat := Recover(cs)
	bound := vecmath.ErrK(x, k, 2) / math.Sqrt(float64(k))
	errs := make([]float64, n)
	for i := range errs {
		errs[i] = math.Abs(x[i] - xhat[i])
	}
	if got := vecmath.Percentile(errs, 0.995); got > 4*bound+1e-9 {
		t.Errorf("Count-Sketch P99.5 error %f exceeds 4×bound %f", got, 4*bound)
	}
}

// Linearity: sketching a stream split across two sketches and merging
// must equal sketching the whole stream (exact cell equality).
func TestLinearityMergeEqualsWhole(t *testing.T) {
	cfg := Config{N: 3000, Rows: 128, Depth: 7}
	seed := int64(10)
	builders := []struct {
		name string
		mk   func(int64) Linear
	}{
		{"countmin", func(s int64) Linear { return must(NewCountMin(cfg, rand.New(rand.NewSource(s)))) }},
		{"countmedian", func(s int64) Linear { return must(NewCountMedian(cfg, rand.New(rand.NewSource(s)))) }},
		{"countsketch", func(s int64) Linear { return must(NewCountSketch(cfg, rand.New(rand.NewSource(s)))) }},
		{"dengrafiei", func(s int64) Linear { return must(NewDengRafiei(cfg, rand.New(rand.NewSource(s)))) }},
	}
	r := rand.New(rand.NewSource(11))
	type upd struct {
		i int
		d float64
	}
	stream := make([]upd, 5000)
	for i := range stream {
		stream[i] = upd{r.Intn(cfg.N), float64(r.Intn(20) - 5)}
	}
	for _, b := range builders {
		whole := b.mk(seed)
		left := b.mk(seed)
		right := b.mk(seed)
		for i, u := range stream {
			whole.Update(u.i, u.d)
			if i%2 == 0 {
				left.Update(u.i, u.d)
			} else {
				right.Update(u.i, u.d)
			}
		}
		if err := left.MergeFrom(right); err != nil {
			t.Fatalf("%s: MergeFrom: %v", b.name, err)
		}
		for i := 0; i < cfg.N; i += 37 {
			if w, m := whole.Query(i), left.Query(i); math.Abs(w-m) > 1e-9 {
				t.Fatalf("%s: merged query %f != whole %f at %d", b.name, m, w, i)
			}
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	cfg := testCfg()
	a := must(NewCountMedian(cfg, rand.New(rand.NewSource(12))))
	b := must(NewCountMedian(cfg, rand.New(rand.NewSource(13)))) // different seeds
	if err := a.MergeFrom(b); err != ErrIncompatible {
		t.Errorf("merging different hash seeds should fail, got %v", err)
	}
	cs := must(NewCountSketch(cfg, rand.New(rand.NewSource(12))))
	if err := a.MergeFrom(cs); err != ErrIncompatible {
		t.Errorf("merging different types should fail, got %v", err)
	}
	cfg2 := cfg
	cfg2.Rows *= 2
	c := must(NewCountMedian(cfg2, rand.New(rand.NewSource(12))))
	if err := a.MergeFrom(c); err != ErrIncompatible {
		t.Errorf("merging different shapes should fail, got %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cfg := Config{N: 500, Rows: 32, Depth: 5}
	a := must(NewCountMedian(cfg, rand.New(rand.NewSource(14))))
	for i := 0; i < 1000; i++ {
		a.Update(i%cfg.N, float64(i%7))
	}
	b := must(NewCountMedian(cfg, rand.New(rand.NewSource(14))))
	if err := b.Unmarshal(must(a.Marshal())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i++ {
		if a.Query(i) != b.Query(i) {
			t.Fatalf("round-trip query mismatch at %d", i)
		}
	}
	if err := b.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short payload should fail")
	}
}

func TestCountSketchMarshalRoundTrip(t *testing.T) {
	cfg := Config{N: 500, Rows: 32, Depth: 5}
	a := must(NewCountSketch(cfg, rand.New(rand.NewSource(15))))
	for i := 0; i < 1000; i++ {
		a.Update(i%cfg.N, 1)
	}
	b := must(NewCountSketch(cfg, rand.New(rand.NewSource(15))))
	if err := b.Unmarshal(must(a.Marshal())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i += 13 {
		if a.Query(i) != b.Query(i) {
			t.Fatalf("round-trip query mismatch at %d", i)
		}
	}
}

func TestWords(t *testing.T) {
	cfg := Config{N: 100, Rows: 64, Depth: 9}
	r := rand.New(rand.NewSource(16))
	if w := must(NewCountMedian(cfg, r)).Words(); w != 576 {
		t.Errorf("CountMedian.Words = %d, want 576", w)
	}
	if w := must(NewDengRafiei(cfg, r)).Words(); w != 577 {
		t.Errorf("DengRafiei.Words = %d, want 577", w)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	s := must(NewCountMedian(Config{N: 10, Rows: 8, Depth: 3}, rand.New(rand.NewSource(17))))
	for _, idx := range []int{-1, 10, 999} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Update(%d) should panic", idx)
				}
			}()
			s.Update(idx, 1)
		}()
	}
}

func TestSketchVectorLengthMismatchErrors(t *testing.T) {
	cm := must(NewCountMin(Config{N: 10, Rows: 8, Depth: 3}, rand.New(rand.NewSource(18))))
	if err := SketchVector(cm, make([]float64, 5)); err == nil {
		t.Fatal("length mismatch should return an error")
	}
	// No update may have been applied before the mismatch was caught.
	for i := 0; i < 10; i++ {
		if cm.Query(i) != 0 {
			t.Fatalf("sketch modified despite length mismatch: Query(%d) = %f", i, cm.Query(i))
		}
	}
	if err := SketchVector(cm, make([]float64, 10)); err != nil {
		t.Fatalf("matching length: %v", err)
	}
}

// DengRafiei should beat plain Count-Min on biased data (its entire
// purpose), even if it cannot reach bias-aware quality.
func TestDengRafieiBeatsCountMinOnBias(t *testing.T) {
	n := 20000
	cfg := Config{N: n, Rows: 256, Depth: 9}
	x := gaussianVector(n, 100, 15, 19)
	cm := must(NewCountMin(cfg, rand.New(rand.NewSource(20))))
	dr := must(NewDengRafiei(cfg, rand.New(rand.NewSource(20))))
	SketchVector(cm, x)
	SketchVector(dr, x)
	cmErr := vecmath.AvgAbsErr(x, Recover(cm))
	drErr := vecmath.AvgAbsErr(x, Recover(dr))
	if drErr >= cmErr {
		t.Errorf("DengRafiei avg err %f should beat Count-Min %f on biased data", drErr, cmErr)
	}
}

func BenchmarkCountMedianUpdate(b *testing.B) {
	s := must(NewCountMedian(Config{N: 1 << 20, Rows: 1024, Depth: 9}, rand.New(rand.NewSource(1))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(i&(1<<20-1), 1)
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	s := must(NewCountSketch(Config{N: 1 << 20, Rows: 1024, Depth: 9}, rand.New(rand.NewSource(1))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(i&(1<<20-1), 1)
	}
}

func BenchmarkCountSketchQuery(b *testing.B) {
	s := must(NewCountSketch(Config{N: 1 << 20, Rows: 1024, Depth: 9}, rand.New(rand.NewSource(1))))
	for i := 0; i < 1<<16; i++ {
		s.Update(i, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(i & (1<<20 - 1))
	}
}

func BenchmarkCMCUUpdate(b *testing.B) {
	s := must(NewCMCU(Config{N: 1 << 20, Rows: 1024, Depth: 9}, rand.New(rand.NewSource(1))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(i&(1<<20-1), 1)
	}
}
