package sketch

import (
	"math/rand"
	"testing"
)

// QueryBatch must return bit-identical results to the element-wise
// Query loop on every sketch in this package, across uneven batch
// sizes, after a mixed ingestion history.
func TestQueryBatchMatchesElementwise(t *testing.T) {
	for _, tc := range batchCases(71) {
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.mk()
			bq, ok := sk.(BatchQuerier)
			if !ok {
				t.Fatalf("%T does not implement BatchQuerier", sk)
			}
			r := rand.New(rand.NewSource(72))
			for u := 0; u < 30000; u++ {
				d := float64(r.Intn(9))
				if !tc.insertOnly && r.Intn(3) == 0 {
					d = -d
				}
				sk.Update(r.Intn(20000), d)
			}
			for round := 0; round < 20; round++ {
				m := 1 + r.Intn(600) // uneven batch sizes, incl. tiny ones
				idx := make([]int, m)
				out := make([]float64, m)
				for j := range idx {
					idx[j] = r.Intn(20000)
				}
				bq.QueryBatch(idx, out)
				for j, i := range idx {
					if want := sk.Query(i); out[j] != want {
						t.Fatalf("query %d: batched %v, element-wise %v", i, out[j], want)
					}
				}
			}
		})
	}
}

// A query batch is validated before anything is written: an invalid
// element (bad index, mismatched lengths) must panic with out
// untouched, and querying must never mutate sketch state.
func TestQueryBatchValidatesAndDoesNotMutate(t *testing.T) {
	for _, tc := range batchCases(73) {
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.mk()
			bq := sk.(BatchQuerier)
			r := rand.New(rand.NewSource(74))
			for u := 0; u < 5000; u++ {
				sk.Update(r.Intn(20000), float64(1+r.Intn(5)))
			}
			before := must(sk.(marshaler).Marshal())

			bad := []struct {
				idx []int
				out []float64
			}{
				{[]int{1, 2, 20000}, []float64{7, 7, 7}}, // out of range
				{[]int{1, 2, -1}, []float64{7, 7, 7}},    // negative index
				{[]int{1, 2}, []float64{7}},              // length mismatch
			}
			for _, c := range bad {
				sentinel := append([]float64(nil), c.out...)
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("batch %v should panic", c.idx)
						}
					}()
					bq.QueryBatch(c.idx, c.out)
				}()
				for j := range c.out {
					if c.out[j] != sentinel[j] {
						t.Errorf("rejected batch wrote out[%d] = %v", j, c.out[j])
					}
				}
			}

			idx := []int{0, 5, 19999}
			out := make([]float64, 3)
			bq.QueryBatch(idx, out)
			after := must(sk.(marshaler).Marshal())
			if string(before) != string(after) {
				t.Fatal("QueryBatch mutated counter state")
			}
		})
	}
}

// The package-level helper must use the native path when present and
// fall back to a Query loop otherwise.
func TestQueryBatchHelperFallback(t *testing.T) {
	cfg := Config{N: 100, Rows: 16, Depth: 3}
	native := must(NewCountMin(cfg, rand.New(rand.NewSource(75))))
	plain := &queryLoopOnly{must(NewCountMin(cfg, rand.New(rand.NewSource(75))))}
	for i := 0; i < 100; i++ {
		native.Update(i, float64(i%7))
		plain.CountMin.Update(i, float64(i%7))
	}
	idx := []int{3, 7, 3, 99}
	a, b := make([]float64, 4), make([]float64, 4)
	QueryBatch(native, idx, a)
	QueryBatch(plain, idx, b)
	for j := range idx {
		if a[j] != b[j] {
			t.Fatalf("batch %d: native %v, fallback %v", j, a[j], b[j])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch should panic")
			}
		}()
		QueryBatch(plain, []int{1, 2}, make([]float64, 1))
	}()
}

// queryLoopOnly hides the embedded sketch's QueryBatch so the helper's
// fallback path is exercised.
type queryLoopOnly struct{ *CountMin }

func (l *queryLoopOnly) Query(i int) float64 { return l.CountMin.Query(i) }
func (l *queryLoopOnly) QueryBatch()         {} // different arity: not a BatchQuerier
