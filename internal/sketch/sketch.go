// Package sketch implements the classical point-query sketches the
// paper builds on and compares against: Count-Min, Count-Median
// (Definition 1, Theorem 1), Count-Sketch (Definition 2, Theorem 2),
// Count-Min with conservative update (CM-CU), Count-Min-Log with
// conservative update (CML-CU), and the Deng–Rafiei bias-corrected
// Count-Min estimator.
//
// All sketches consume a stream of (index, delta) updates against an
// implicit frequency vector x ∈ R^n and answer point queries for
// individual coordinates. The linear ones (Count-Min, Count-Median,
// Count-Sketch) additionally support MergeFrom, which makes them
// directly usable in the distributed model of §1: sites sketch their
// local vectors and the coordinator sums the sketches.
package sketch

import (
	"errors"
	"fmt"
)

// Sketch is the common interface: a summary of a frequency vector
// x ∈ R^n supporting point updates and point queries.
type Sketch interface {
	// Update applies x[i] += delta. i must be in [0, Dim()).
	Update(i int, delta float64)
	// Query returns an estimate of x[i].
	Query(i int) float64
	// Dim returns n, the dimension of the summarized vector.
	Dim() int
	// Words returns the sketch size in 64-bit words, the x-axis of
	// every size-versus-accuracy plot in §5.
	Words() int
}

// BatchUpdater is the optional capability of sketches with a native
// batched ingestion path. UpdateBatch applies x[idx[j]] += deltas[j]
// for every j and leaves exactly the state of the equivalent
// element-wise Update loop; implementations validate the whole batch
// (slice lengths and index ranges) before touching any counter, so a
// panic cannot leave the sketch partially updated.
//
// Every algorithm in this repository implements it with a row-major
// traversal: each row's hash is evaluated over the whole batch (one
// coefficient load per row, see hashing.Pairwise.HashMany) and the
// row's counters — a few KB — stay cache-hot while absorbing every
// element, instead of the whole d·s-word table being walked per
// element.
type BatchUpdater interface {
	UpdateBatch(idx []int, deltas []float64)
}

// UpdateBatch feeds a batch through s's native batched path when it
// has one, or an element-wise loop otherwise.
//
//sketch:hotpath
func UpdateBatch(s Sketch, idx []int, deltas []float64) {
	if b, ok := s.(BatchUpdater); ok {
		b.UpdateBatch(idx, deltas)
		return
	}
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("sketch: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	for j, i := range idx {
		s.Update(i, deltas[j])
	}
}

// BatchQuerier is the read-side twin of BatchUpdater: QueryBatch
// writes an estimate of x[idx[j]] into out[j] for every j, and the
// results are bit-identical to the element-wise Query loop.
//
// Every algorithm in this repository implements it with the same
// row-major traversal as UpdateBatch: each row's hash (and sign)
// coefficients load once per batch and the row's counters stay
// cache-hot while every element's bucket is gathered; the per-element
// combination step (min / median / bias correction) then runs over the
// gathered values. The whole batch is validated before out is written.
//
// Unlike the single-element Query methods — which reuse per-sketch
// scratch buffers — QueryBatch implementations allocate their scratch
// per call, so concurrent QueryBatch calls on a sketch that is no
// longer being written (e.g. a Sharded snapshot replica) are safe.
type BatchQuerier interface {
	QueryBatch(idx []int, out []float64)
}

// QueryBatch answers a batch of point queries through s's native
// batched path when it has one, or an element-wise Query loop
// otherwise. Both paths produce bit-identical results.
//
//sketch:hotpath
func QueryBatch(s Sketch, idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("sketch: batch index count %d != output count %d", len(idx), len(out)))
	}
	if b, ok := s.(BatchQuerier); ok {
		b.QueryBatch(idx, out)
		return
	}
	for j, i := range idx {
		out[j] = s.Query(i)
	}
}

// Linear is a sketch with the linearity property Φ(x+y) = Φx + Φy,
// hence mergeable across distributed sites.
type Linear interface {
	Sketch
	// MergeFrom adds other's sketch state into the receiver. It fails
	// unless other has the same concrete type, shape, and hash seeds.
	MergeFrom(other Linear) error
}

// ErrIncompatible is returned by MergeFrom when the two sketches do
// not share type, shape, or hash functions.
var ErrIncompatible = errors.New("sketch: incompatible sketches")

// Recover reconstructs the full estimate vector x̂ by querying every
// coordinate — the recovery phase R(Φx) of §1.
func Recover(s Sketch) []float64 {
	out := make([]float64, s.Dim())
	for i := range out {
		out[i] = s.Query(i)
	}
	return out
}

// SketchVector feeds a dense frequency vector into s, one update per
// non-zero coordinate. A length mismatch returns an error before any
// update is applied; the public repro.SketchVector delegates here, so
// the two paths share one behavior.
func SketchVector(s Sketch, x []float64) error {
	if len(x) != s.Dim() {
		return fmt.Errorf("sketch: vector length %d != sketch dim %d", len(x), s.Dim())
	}
	for i, v := range x {
		if v != 0 {
			s.Update(i, v)
		}
	}
	return nil
}

// Config carries the shared shape parameters of every sketch in this
// package: the vector dimension n, the row width s (number of buckets
// per hash function; s = c_s·k in the paper), and the depth d (number
// of independent rows; Θ(log n) in the theorems, 9–10 in §5.1).
type Config struct {
	N     int      // dimension of the input vector
	Rows  int      // s, buckets per row
	Depth int      // d, number of rows
	Hash  HashKind // hash family for the rows; zero value is pairwise
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("sketch: N must be positive, got %d", c.N)
	}
	if c.Rows <= 0 {
		return fmt.Errorf("sketch: Rows must be positive, got %d", c.Rows)
	}
	if c.Depth <= 0 {
		return fmt.Errorf("sketch: Depth must be positive, got %d", c.Depth)
	}
	if c.Hash > HashTabulation {
		return fmt.Errorf("sketch: unknown hash family %v", c.Hash)
	}
	return nil
}

// Median returns the paper's Table 1 median of buf (midpoint average
// for even length), reordering buf in place. Exported for the recovery
// algorithms layered on top of this package, so their per-element
// combine step shares the sorting networks of the sketches' own median
// queries.
//
//sketch:hotpath
func Median(buf []float64) float64 { return medianOf(buf) }

// medianOf returns the median of buf, reordering buf in place. It uses
// the paper's Table 1 definition (midpoint average for even length).
//
//sketch:hotpath
func medianOf(buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return 0
	}
	// Branchless sorting network for the depths that occur in
	// practice (see median.go); insertion sort covers the rest — depth
	// d is small, so either beats sort.Slice on the query hot path and
	// allocates nothing.
	if !sortSmall(buf) {
		for i := 1; i < n; i++ {
			v := buf[i]
			j := i - 1
			for j >= 0 && buf[j] > v {
				buf[j+1] = buf[j]
				j--
			}
			buf[j+1] = v
		}
	}
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}
