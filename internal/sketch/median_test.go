package sketch

import (
	"math/rand"
	"sort"
	"testing"
)

// The 0-1 principle: a comparator network sorts every input iff it
// sorts every boolean input. 2^n cases per network is cheap for the
// sizes we hardcode.
func TestSortNetworksZeroOnePrinciple(t *testing.T) {
	for n := 4; n <= 16; n++ {
		buf := make([]float64, n)
		for m := 0; m < 1<<n; m++ {
			for i := range buf {
				buf[i] = float64((m >> i) & 1)
			}
			if !sortSmall(buf) {
				t.Fatalf("no network for n=%d", n)
			}
			for i := 1; i < n; i++ {
				if buf[i-1] > buf[i] {
					t.Fatalf("n=%d input %b: not sorted: %v", n, m, buf)
				}
			}
		}
	}
}

// medianOf must agree with the definitional sorted-middle median for
// every length, network-backed or fallback.
func TestMedianOfMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 1; n <= 20; n++ {
		for trial := 0; trial < 200; trial++ {
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = float64(r.Intn(7)) - 3 // ties are the hard case
			}
			ref := append([]float64(nil), buf...)
			sort.Float64s(ref)
			want := ref[n/2]
			if n%2 == 0 {
				want = (ref[n/2-1] + ref[n/2]) / 2
			}
			if got := medianOf(buf); got != want {
				t.Fatalf("n=%d trial %d: medianOf=%v want %v", n, trial, got, want)
			}
		}
	}
}
