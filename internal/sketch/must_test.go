package sketch

// must unwraps a (value, error) constructor result for test setup
// whose configurations are statically valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
