package sketch

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/hashing"
)

// CountSketch is the Count-Sketch of Charikar, Chen and Farach-Colton
// (Definition 2 / Theorem 2 of the paper): each row pairs a bucket
// hash h_t with a pairwise random sign r_t; updates add r_t(i)·delta
// and queries take the median over rows of r_t(i)·bucket. It achieves
// the ℓ∞/ℓ2 guarantee ‖x̂−x‖∞ = O(1/√k)·Err_2^k(x).
type CountSketch struct {
	tb    table
	signs hashing.SignFamily
	buf   []float64
	sbuf  []float64 // per-row signs, reused across UpdateBatch calls

	psis atomic.Pointer[[][]float64] // cached per-row signed column sums ψ (see columns.go)
}

// NewCountSketch creates a dense Count-Sketch with the given shape.
// Invalid configurations return an ErrConfig-wrapped error.
func NewCountSketch(cfg Config, r *rand.Rand) (*CountSketch, error) {
	return NewCountSketchBackend(cfg, Backend{}, r)
}

// NewCountSketchBackend creates a Count-Sketch on the chosen counter
// plane. The signed updates r_t(i)·delta go negative on every second
// coordinate, which the insert-only compressed plane cannot represent —
// BackendCompressed returns ErrBackendUnsupported. Dense, tiled, and
// mmap (read-only) are supported.
//
// The sign family matches the configured hash family (pairwise signs
// with pairwise hashes, tabulation signs with tabulation hashes) and is
// drawn from r after the table — the same order as every prior
// release, so pairwise sketches keep their exact seeds.
func NewCountSketchBackend(cfg Config, be Backend, r *rand.Rand) (*CountSketch, error) {
	if be.Kind == BackendCompressed {
		return nil, fmt.Errorf("%w: countsketch writes signed cell values, the compressed plane is insert-only", ErrBackendUnsupported)
	}
	tb, err := newTable(cfg, r, be)
	if err != nil {
		return nil, err
	}
	var signs hashing.SignFamily
	if cfg.Hash == HashTabulation {
		signs = hashing.NewTabSignFamily(r, cfg.Depth)
	} else {
		signs = hashing.NewSignFamily(r, cfg.Depth)
	}
	return &CountSketch{
		tb:    tb,
		signs: signs,
		buf:   make([]float64, cfg.Depth),
	}, nil
}

// Backend reports the counter plane's storage backend.
func (c *CountSketch) Backend() BackendKind { return c.tb.backend() }

// Update applies x[i] += delta.
//
//sketch:hotpath
func (c *CountSketch) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	u := uint64(i)
	if tp := c.tb.tplane; tp != nil {
		tp.dirty = true
		buf := tp.buf
		for t := 0; t < c.tb.cfg.Depth; t++ {
			buf[tp.pos(t, c.tb.hash.Hash(t, u))] += c.signs.SignFloat(t, u) * delta
		}
		return
	}
	cells := c.tb.writable()
	if ts := c.tb.hash.T; ts != nil {
		for t, h := range ts {
			cells[t][h.Hash(u)] += c.signs.T[t].SignFloat(u) * delta
		}
		return
	}
	for t, h := range c.tb.hash.H {
		cells[t][h.Hash(u)] += c.signs.S[t].SignFloat(u) * delta
	}
}

// growSbuf ensures the per-row sign scratch covers an n-element batch;
// growth helper kept out of the tagged hot path.
func (c *CountSketch) growSbuf(n int) {
	if cap(c.sbuf) < n {
		c.sbuf = make([]float64, n)
	}
}

// UpdateBatch applies x[idx[j]] += r_t(idx[j])·deltas[j] for every j,
// row-major: each row's bucket hash and sign function run over the
// whole batch before the row's counters absorb it. Equivalent to the
// element-wise Update loop.
//
//sketch:hotpath
func (c *CountSketch) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	c.growSbuf(len(idx))
	sg := c.sbuf[:len(idx)]
	if tp := c.tb.tplane; tp != nil {
		tp.dirty = true
		buf := tp.buf
		for t := 0; t < c.tb.cfg.Depth; t++ {
			c.signs.SignFloatMany(t, idx, sg)
			for j, b := range c.tb.hashRow(t, idx) {
				buf[tp.pos(t, b)] += sg[j] * deltas[j]
			}
		}
		return
	}
	cells := c.tb.writable()
	for t := range cells {
		row := cells[t]
		c.signs.SignFloatMany(t, idx, sg)
		for j, b := range c.tb.hashRow(t, idx) {
			row[b] += sg[j] * deltas[j]
		}
	}
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j.
// Each row's bucket hash and sign function run over the whole batch
// (one coefficient load per row each) before the signed buckets are
// gathered; the median then runs per element in the same row order as
// Query, so results are bit-identical to the element-wise Query loop.
// Scratch is borrowed from the package pool per call, so concurrent
// QueryBatch calls on a quiescent sketch are safe.
//
//sketch:hotpath
func (c *CountSketch) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	QueryBatchMedian(c.tb.cfg.Depth, idx, out, 0, c)
}

// GatherRow implements BatchRecovery: row t's sign-corrected bucket
// values for the tile. Used by QueryBatchMedian, not meant for direct
// callers.
//
//sketch:hotpath
func (c *CountSketch) GatherRow(t int, tile []int, o []float64, sc *QScratch) {
	c.tb.gatherRowValues(t, tile, o, sc)
	sg := sc.F1[:len(tile)]
	c.signs.SignFloatMany(t, tile, sg)
	for j := range o {
		o[j] *= sg[j]
	}
}

// Combine implements BatchRecovery: the Table 1 median.
//
//sketch:hotpath
func (c *CountSketch) Combine(vals []float64, _ *QScratch) float64 { return medianOf(vals) }

// Query estimates x[i] as the median over rows of the signed bucket.
//
//sketch:hotpath
func (c *CountSketch) Query(i int) float64 {
	c.tb.checkIndex(i)
	c.tb.gatherPoint(i, c.buf)
	u := uint64(i)
	for t, v := range c.buf {
		c.buf[t] = c.signs.SignFloat(t, u) * v
	}
	return medianOf(c.buf)
}

// Dim returns the vector dimension n.
func (c *CountSketch) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words.
func (c *CountSketch) Words() int { return c.tb.words() }

// MergeFrom adds another CountSketch with identical shape and seeds.
// Read-only receivers return ErrReadOnlyPlane.
func (c *CountSketch) MergeFrom(other Linear) error {
	o, ok := other.(*CountSketch)
	if !ok || !c.tb.sameShape(&o.tb) {
		return ErrIncompatible
	}
	if !c.signs.Equal(o.signs) {
		return ErrIncompatible
	}
	return c.tb.mergeFrom(&o.tb)
}

// Marshal serializes the counter state.
func (c *CountSketch) Marshal() ([]byte, error) { return c.tb.marshalCells() }

// Unmarshal restores counter state written by Marshal.
func (c *CountSketch) Unmarshal(b []byte) error { return c.tb.unmarshalCells(b) }
