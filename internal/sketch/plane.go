package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file defines the counter plane: the storage layer under every
// table-based sketch. The table owns the hashing and the algorithms
// own the recovery rule; the plane owns only where the d×s counters
// live and how they are read, added to, merged, and serialized. Three
// implementations exist — dense (plane_dense, the flat [][]float64
// the repository always had), compressed (plane_cb, Counter Braids
// from internal/counterbraids), and mmap (plane_mmap, read-only views
// over a mapped checkpoint file).

// BackendKind selects a counter-plane storage backend.
type BackendKind uint8

const (
	// BackendDense is the flat [][]float64 layout: direct-write rows,
	// bit-identical to the pre-plane implementation and allocation-free
	// on the //sketch:hotpath paths. The default.
	BackendDense BackendKind = iota
	// BackendCompressed stores the counters in a Counter Braids
	// structure: a fraction of the bits, in exchange for insert-only
	// non-negative integer updates and whole-plane decode at query
	// time (exact below the braid's decoding threshold).
	BackendCompressed
	// BackendMmap serves the counters read-only from a memory-mapped
	// checkpoint file: queries come up in O(1) after restart, updates
	// and merges return ErrReadOnlyPlane.
	BackendMmap
	// BackendTiled stores the counters in a cache-blocked, depth-major
	// tiled layout (plane_tiled): buckets are grouped into tiles of 64
	// and all d rows of one tile sit contiguously, so the batched
	// update/query paths walk counters in stride instead of jumping d
	// rows per element. A pure layout transformation — answers are
	// bit-identical to the dense plane. Linear-add algorithms only (no
	// in-place row views for conservative update).
	BackendTiled
)

// String names the backend for error messages and descriptors.
func (k BackendKind) String() string {
	switch k {
	case BackendDense:
		return "dense"
	case BackendCompressed:
		return "compressed"
	case BackendMmap:
		return "mmap"
	case BackendTiled:
		return "tiled"
	default:
		return fmt.Sprintf("backend(%d)", uint8(k))
	}
}

// Backend selects how a table stores its counter plane. The zero value
// is the dense backend.
type Backend struct {
	Kind BackendKind
	// Mapped is the raw state payload backing a BackendMmap plane —
	// the marshalCells bytes, served in place (typically a slice of a
	// memory-mapped checkpoint file). It must be 8-byte aligned and
	// exactly 8·depth·rows bytes; constructors reject anything else
	// with ErrBackendState. Ignored by the other backends.
	Mapped []byte
}

// Typed plane and backend errors. Constructors and plane operations
// wrap these so callers can errors.Is against the constraint they hit.
var (
	// ErrConfig wraps every invalid-configuration error a sketch
	// constructor returns.
	ErrConfig = errors.New("sketch: invalid configuration")
	// ErrBackendUnsupported is returned when an algorithm cannot run on
	// the requested backend (e.g. conservative update or signed updates
	// on the insert-only compressed plane).
	ErrBackendUnsupported = errors.New("sketch: backend not supported by this algorithm")
	// ErrBackendState is returned when a backend's initial state bytes
	// are unusable: wrong length, misaligned, or not produced by a
	// matching marshal.
	ErrBackendState = errors.New("sketch: bad backend state")
	// ErrReadOnlyPlane is returned (or panicked, from the in-place
	// update hot paths) when a write reaches an mmap-backed plane.
	ErrReadOnlyPlane = errors.New("sketch: plane is read-only (mmap backend)")
	// ErrInsertOnly is returned when an update violates the compressed
	// plane's Counter Braids constraint: deltas must be non-negative
	// integers.
	ErrInsertOnly = errors.New("sketch: compressed plane is insert-only (non-negative integer deltas)")
	// ErrPlaneDecode is returned when the compressed plane cannot
	// reconstruct its counters — the braid was loaded beyond its
	// decoding threshold (wraps counterbraids.ErrNoConverge).
	ErrPlaneDecode = errors.New("sketch: compressed plane decode failed")
)

// Plane is the storage backend of a table: the d×s counter matrix
// behind row-addressed read, add, merge, and serialization primitives.
// Implementations are not safe for concurrent use; the table layers
// its own discipline (quiescent reads, single writer) on top, exactly
// as it always did for the dense cells.
type Plane interface {
	// Kind identifies the backend.
	Kind() BackendKind
	// View returns the counter matrix as per-row slices. Dense and
	// mmap planes return a fixed view; the compressed plane decodes on
	// demand (cached until the next Add) and fails with ErrPlaneDecode
	// past the braid's threshold. Callers must not modify the rows
	// unless WritableRows returns the same slices.
	View() ([][]float64, error)
	// WritableRows returns the rows for direct in-place mutation, or
	// nil when the backend cannot be written through raw slices (the
	// hot paths branch on this once and fall back to Add).
	WritableRows() [][]float64
	// ValidateAdd reports whether delta is addable on this backend,
	// without touching state — batch paths call it for the whole batch
	// before any counter moves.
	ValidateAdd(delta float64) error
	// Add applies cells[t][b] += delta.
	Add(t, b int, delta float64) error
	// MergeFrom adds o's counters into the receiver. Shapes are the
	// caller's contract (table.sameShape); backends may mix wherever
	// the values admit it.
	MergeFrom(o Plane) error
	// MarshalCells serializes the counter matrix in the wire cell
	// layout: 8 bytes per cell, little endian, row-major. All backends
	// emit this same layout, so checkpoints interoperate.
	MarshalCells() ([]byte, error)
	// UnmarshalCells overwrites the counters from MarshalCells output.
	UnmarshalCells(b []byte) error
	// Bits returns the resident storage cost of the counters in bits.
	Bits() int
}

// densePlane is the default backend: the flat [][]float64 layout the
// repository always had, unchanged down to the allocation pattern.
type densePlane struct {
	rows  int
	cells [][]float64
}

func newDensePlane(depth, rows int) *densePlane {
	cells := make([][]float64, depth)
	for t := range cells {
		cells[t] = make([]float64, rows)
	}
	return &densePlane{rows: rows, cells: cells}
}

func (p *densePlane) Kind() BackendKind          { return BackendDense }
func (p *densePlane) View() ([][]float64, error) { return p.cells, nil }
func (p *densePlane) WritableRows() [][]float64  { return p.cells }
func (p *densePlane) ValidateAdd(float64) error  { return nil }
func (p *densePlane) Bits() int                  { return 64 * len(p.cells) * p.rows }

func (p *densePlane) Add(t, b int, delta float64) error {
	p.cells[t][b] += delta
	return nil
}

// MergeFrom adds any readable plane's counters cell by cell; merging
// dense←dense is the pre-plane mergeFrom, and dense←compressed decodes
// the braid once and folds it in.
func (p *densePlane) MergeFrom(o Plane) error {
	ov, err := o.View()
	if err != nil {
		return err
	}
	for t := range p.cells {
		row, orow := p.cells[t], ov[t]
		for b := range row {
			row[b] += orow[b]
		}
	}
	return nil
}

func (p *densePlane) MarshalCells() ([]byte, error) {
	return marshalRows(p.cells, p.rows), nil
}

func (p *densePlane) UnmarshalCells(buf []byte) error {
	if err := checkCellPayload(buf, len(p.cells), p.rows); err != nil {
		return err
	}
	off := 0
	for t := range p.cells {
		for b := range p.cells[t] {
			p.cells[t][b] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return nil
}

// marshalRows serializes per-row counters in the wire cell layout —
// shared by every backend so their checkpoints are interchangeable.
func marshalRows(cells [][]float64, rows int) []byte {
	buf := make([]byte, 8*len(cells)*rows)
	off := 0
	for t := range cells {
		for _, v := range cells[t] {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf
}

// checkCellPayload validates the byte length of a cell payload.
func checkCellPayload(buf []byte, depth, rows int) error {
	if want := 8 * depth * rows; len(buf) != want {
		return fmt.Errorf("sketch: cell payload %d bytes, want %d", len(buf), want)
	}
	return nil
}
