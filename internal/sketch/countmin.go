package sketch

import "math/rand"

// CountMin is the classical Count-Min sketch [12]: same sketching
// matrix as Count-Median, but a point query returns the minimum over
// rows instead of the median. It never underestimates on non-negative
// streams and has one-sided error O(1/k)·‖x‖₁ noise per bucket.
//
// The paper omits Count-Min from its plots because CM-CU strictly
// improves on it; we implement and bench it anyway for completeness.
type CountMin struct {
	tb table
}

// NewCountMin creates a Count-Min sketch with the given shape.
func NewCountMin(cfg Config, r *rand.Rand) *CountMin {
	return &CountMin{tb: newTable(cfg, r)}
}

// Update applies x[i] += delta.
//
//sketch:hotpath
func (c *CountMin) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	for t := range c.tb.cells {
		c.tb.cells[t][c.tb.hash.H[t].Hash(uint64(i))] += delta
	}
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j, row-major:
// each row's hash runs over the whole batch and the row stays cache-
// hot while it absorbs every element. Equivalent to the element-wise
// Update loop (each cell receives the same addends in the same order).
//
//sketch:hotpath
func (c *CountMin) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	for t := range c.tb.cells {
		row := c.tb.cells[t]
		for j, b := range c.tb.hashRow(t, idx) {
			row[b] += deltas[j]
		}
	}
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j,
// row-major: each row's hash runs over the whole batch (one coefficient
// load per row) and the per-element minimum folds row by row. Results
// are bit-identical to the element-wise Query loop.
//
//sketch:hotpath
func (c *CountMin) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	c.tb.minRows(idx, out)
}

// Query estimates x[i] as the minimum bucket over rows.
//
//sketch:hotpath
func (c *CountMin) Query(i int) float64 {
	c.tb.checkIndex(i)
	min := c.tb.cells[0][c.tb.hash.H[0].Hash(uint64(i))]
	for t := 1; t < len(c.tb.cells); t++ {
		if v := c.tb.cells[t][c.tb.hash.H[t].Hash(uint64(i))]; v < min {
			min = v
		}
	}
	return min
}

// Dim returns the vector dimension n.
func (c *CountMin) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words.
func (c *CountMin) Words() int { return c.tb.words() }

// MergeFrom adds another CountMin with identical shape and seeds.
func (c *CountMin) MergeFrom(other Linear) error {
	o, ok := other.(*CountMin)
	if !ok || !c.tb.sameShape(&o.tb) {
		return ErrIncompatible
	}
	c.tb.mergeFrom(&o.tb)
	return nil
}

// Marshal serializes the counter state.
func (c *CountMin) Marshal() []byte { return c.tb.marshalCells() }

// Unmarshal restores counter state written by Marshal.
func (c *CountMin) Unmarshal(b []byte) error { return c.tb.unmarshalCells(b) }
