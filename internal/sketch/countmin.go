package sketch

import "math/rand"

// CountMin is the classical Count-Min sketch [12]: same sketching
// matrix as Count-Median, but a point query returns the minimum over
// rows instead of the median. It never underestimates on non-negative
// streams and has one-sided error O(1/k)·‖x‖₁ noise per bucket.
//
// The paper omits Count-Min from its plots because CM-CU strictly
// improves on it; we implement and bench it anyway for completeness.
type CountMin struct {
	tb table
}

// NewCountMin creates a dense Count-Min sketch with the given shape.
// Invalid configurations return an ErrConfig-wrapped error.
func NewCountMin(cfg Config, r *rand.Rand) (*CountMin, error) {
	return NewCountMinBackend(cfg, Backend{}, r)
}

// NewCountMinBackend creates a Count-Min sketch on the chosen counter
// plane. Count-Min's updates are plain non-negative-leaning linear
// adds, so every backend is supported: dense, tiled, compressed
// (insert-only integer streams), and mmap (read-only).
func NewCountMinBackend(cfg Config, be Backend, r *rand.Rand) (*CountMin, error) {
	tb, err := newTable(cfg, r, be)
	if err != nil {
		return nil, err
	}
	return &CountMin{tb: tb}, nil
}

// Backend reports the counter plane's storage backend.
func (c *CountMin) Backend() BackendKind { return c.tb.backend() }

// Update applies x[i] += delta.
//
//sketch:hotpath
func (c *CountMin) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	c.tb.addPoint(i, delta)
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j, row-major:
// each row's hash runs over the whole batch and the row stays cache-
// hot while it absorbs every element. Equivalent to the element-wise
// Update loop (each cell receives the same addends in the same order).
//
//sketch:hotpath
func (c *CountMin) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	c.tb.addBatch(idx, deltas)
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j,
// row-major: each row's hash runs over the whole batch (one coefficient
// load per row) and the per-element minimum folds row by row. Results
// are bit-identical to the element-wise Query loop.
//
//sketch:hotpath
func (c *CountMin) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	c.tb.minRows(idx, out)
}

// Query estimates x[i] as the minimum bucket over rows.
//
//sketch:hotpath
func (c *CountMin) Query(i int) float64 {
	c.tb.checkIndex(i)
	return c.tb.minPoint(i)
}

// Dim returns the vector dimension n.
func (c *CountMin) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words.
func (c *CountMin) Words() int { return c.tb.words() }

// MergeFrom adds another CountMin with identical shape and seeds.
// Backends may differ wherever the values admit it (a compressed
// receiver re-inserts a dense source's cells); read-only receivers
// return ErrReadOnlyPlane.
func (c *CountMin) MergeFrom(other Linear) error {
	o, ok := other.(*CountMin)
	if !ok || !c.tb.sameShape(&o.tb) {
		return ErrIncompatible
	}
	return c.tb.mergeFrom(&o.tb)
}

// Marshal serializes the counter state in the backend-independent wire
// cell layout. A compressed plane loaded past its decoding threshold
// cannot serialize (ErrPlaneDecode).
func (c *CountMin) Marshal() ([]byte, error) { return c.tb.marshalCells() }

// Unmarshal restores counter state written by Marshal.
func (c *CountMin) Unmarshal(b []byte) error { return c.tb.unmarshalCells(b) }
