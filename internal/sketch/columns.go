package sketch

// This file exposes the per-row structure the bias-aware recovery
// algorithms need: Algorithm 2 subtracts β̂·π_t from row t of the
// Count-Median sketch, where π_t is the coordinate-wise sum of the
// columns of Π(h_t) (bucket occupancy counts); Algorithm 4 subtracts
// β̂·ψ_t from row t of the Count-Sketch, where ψ_t is the signed
// column sum of Ψ(h_t, r_t). Both depend only on the hash functions,
// never on the data, so they are computed once and cached — in the
// distributed model they are "common knowledge" shared alongside the
// hash seeds (§5.5, footnote 4).

// ColumnCounts returns π for row t: π[b] = |{j : h_t(j) = b}|. The
// result is cached behind an atomic pointer — the caches are pure
// functions of the hash seeds, so concurrent first readers may compute
// them redundantly but always install identical values, and later
// readers see one immutable slice. Callers must not modify it.
func (c *CountMedian) ColumnCounts(t int) []float64 {
	if p := c.pis.Load(); p != nil {
		return (*p)[t]
	}
	pis := make([][]float64, c.tb.cfg.Depth)
	for r := range pis {
		pi := make([]float64, c.tb.cfg.Rows)
		for j := 0; j < c.tb.cfg.N; j++ {
			pi[c.tb.hash.Hash(r, uint64(j))]++
		}
		pis[r] = pi
	}
	c.pis.CompareAndSwap(nil, &pis)
	return (*c.pis.Load())[t]
}

// ShareColumnCounts adopts src's already-computed π caches when the
// two sketches share shape and hash seeds — π is seed-determined
// "common knowledge", so replicas of one configuration can skip the
// O(N·d) recompute (the Sharded refresh path does this between
// successive snapshots).
func (c *CountMedian) ShareColumnCounts(src *CountMedian) {
	if p := src.pis.Load(); p != nil && c.tb.sameShape(&src.tb) {
		c.pis.Store(p)
	}
}

// BucketIndex returns h_t(i), the bucket coordinate i occupies in row t.
func (c *CountMedian) BucketIndex(t, i int) int {
	return c.tb.hash.Hash(t, uint64(i))
}

// BucketIndexMany writes h_t(idx[j]) into out[j] for every j — the
// batch companion of BucketIndex, loading row t's hash coefficients
// once for the whole batch.
func (c *CountMedian) BucketIndexMany(t int, idx []int, out []int) {
	c.tb.hash.HashMany(t, idx, out)
}

// BucketIndexes writes h_t(i) for every row t into out[t] — the
// all-rows companion of BucketIndex for point queries, branching the
// family arm once instead of once per row.
//
//sketch:hotpath
func (c *CountMedian) BucketIndexes(i int, out []int) {
	c.tb.hashPoint(uint64(i), out)
}

// Bucket returns the raw value of bucket b in row t.
func (c *CountMedian) Bucket(t, b int) float64 { return c.tb.rows()[t][b] }

// Row returns row t's counters. Callers must not modify the slice.
func (c *CountMedian) Row(t int) []float64 { return c.tb.rows()[t] }

// CheckIndexBatch validates a query batch (matching lengths, in-range
// indexes) without touching any state, for the recovery algorithms
// layered on top of this sketch.
func (c *CountMedian) CheckIndexBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
}

// SignedColumnSums returns ψ for row t: ψ[b] = Σ_{j: h_t(j)=b} r_t(j).
// The result is cached behind an atomic pointer — see ColumnCounts for
// the concurrency contract. Callers must not modify it.
func (c *CountSketch) SignedColumnSums(t int) []float64 {
	if p := c.psis.Load(); p != nil {
		return (*p)[t]
	}
	psis := make([][]float64, c.tb.cfg.Depth)
	for r := range psis {
		psi := make([]float64, c.tb.cfg.Rows)
		for j := 0; j < c.tb.cfg.N; j++ {
			u := uint64(j)
			psi[c.tb.hash.Hash(r, u)] += c.signs.SignFloat(r, u)
		}
		psis[r] = psi
	}
	c.psis.CompareAndSwap(nil, &psis)
	return (*c.psis.Load())[t]
}

// ShareSignedColumnSums adopts src's already-computed ψ caches when
// the two sketches share shape, hash seeds, and sign seeds — the
// Count-Sketch analogue of ShareColumnCounts.
func (c *CountSketch) ShareSignedColumnSums(src *CountSketch) {
	p := src.psis.Load()
	if p == nil || !c.tb.sameShape(&src.tb) {
		return
	}
	if !c.signs.Equal(src.signs) {
		return
	}
	c.psis.Store(p)
}

// BucketIndex returns h_t(i) for the Count-Sketch row t.
func (c *CountSketch) BucketIndex(t, i int) int {
	return c.tb.hash.Hash(t, uint64(i))
}

// BucketIndexMany writes h_t(idx[j]) into out[j] for every j — the
// batch companion of BucketIndex, loading row t's hash coefficients
// once for the whole batch.
func (c *CountSketch) BucketIndexMany(t int, idx []int, out []int) {
	c.tb.hash.HashMany(t, idx, out)
}

// BucketIndexes writes h_t(i) for every row t into out[t] — the
// all-rows companion of BucketIndex for point queries, branching the
// family arm once instead of once per row.
//
//sketch:hotpath
func (c *CountSketch) BucketIndexes(i int, out []int) {
	c.tb.hashPoint(uint64(i), out)
}

// Bucket returns the raw (signed-sum) value of bucket b in row t.
func (c *CountSketch) Bucket(t, b int) float64 { return c.tb.rows()[t][b] }

// Row returns row t's counters. Callers must not modify the slice.
func (c *CountSketch) Row(t int) []float64 { return c.tb.rows()[t] }

// SignOf returns r_t(i) as a float64.
func (c *CountSketch) SignOf(t, i int) float64 {
	return c.signs.SignFloat(t, uint64(i))
}

// SignOfMany writes r_t(idx[j]) into out[j] for every j — the batch
// companion of SignOf.
func (c *CountSketch) SignOfMany(t int, idx []int, out []float64) {
	c.signs.SignFloatMany(t, idx, out)
}

// SignsOf writes r_t(i) for every row t into out[t] — the all-rows
// companion of SignOf for point queries, branching the family arm once
// instead of once per row.
//
//sketch:hotpath
func (c *CountSketch) SignsOf(i int, out []float64) {
	u := uint64(i)
	if ts := c.signs.T; ts != nil {
		for t, s := range ts {
			out[t] = s.SignFloat(u)
		}
		return
	}
	for t, s := range c.signs.S {
		out[t] = s.SignFloat(u)
	}
}

// CheckIndexBatch validates a query batch (matching lengths, in-range
// indexes) without touching any state, for the recovery algorithms
// layered on top of this sketch.
func (c *CountSketch) CheckIndexBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
}
