package sketch

// This file exposes the per-row structure the bias-aware recovery
// algorithms need: Algorithm 2 subtracts β̂·π_t from row t of the
// Count-Median sketch, where π_t is the coordinate-wise sum of the
// columns of Π(h_t) (bucket occupancy counts); Algorithm 4 subtracts
// β̂·ψ_t from row t of the Count-Sketch, where ψ_t is the signed
// column sum of Ψ(h_t, r_t). Both depend only on the hash functions,
// never on the data, so they are computed once and cached — in the
// distributed model they are "common knowledge" shared alongside the
// hash seeds (§5.5, footnote 4).

// ColumnCounts returns π for row t: π[b] = |{j : h_t(j) = b}|. The
// result is cached; callers must not modify it.
func (c *CountMedian) ColumnCounts(t int) []float64 {
	if c.pis == nil {
		c.pis = make([][]float64, c.tb.cfg.Depth)
	}
	if c.pis[t] == nil {
		pi := make([]float64, c.tb.cfg.Rows)
		for j := 0; j < c.tb.cfg.N; j++ {
			pi[c.tb.hash.H[t].Hash(uint64(j))]++
		}
		c.pis[t] = pi
	}
	return c.pis[t]
}

// BucketIndex returns h_t(i), the bucket coordinate i occupies in row t.
func (c *CountMedian) BucketIndex(t, i int) int {
	return c.tb.hash.H[t].Hash(uint64(i))
}

// Bucket returns the raw value of bucket b in row t.
func (c *CountMedian) Bucket(t, b int) float64 { return c.tb.cells[t][b] }

// SignedColumnSums returns ψ for row t: ψ[b] = Σ_{j: h_t(j)=b} r_t(j).
// The result is cached; callers must not modify it.
func (c *CountSketch) SignedColumnSums(t int) []float64 {
	if c.psis == nil {
		c.psis = make([][]float64, c.tb.cfg.Depth)
	}
	if c.psis[t] == nil {
		psi := make([]float64, c.tb.cfg.Rows)
		for j := 0; j < c.tb.cfg.N; j++ {
			u := uint64(j)
			psi[c.tb.hash.H[t].Hash(u)] += c.signs.S[t].SignFloat(u)
		}
		c.psis[t] = psi
	}
	return c.psis[t]
}

// BucketIndex returns h_t(i) for the Count-Sketch row t.
func (c *CountSketch) BucketIndex(t, i int) int {
	return c.tb.hash.H[t].Hash(uint64(i))
}

// Bucket returns the raw (signed-sum) value of bucket b in row t.
func (c *CountSketch) Bucket(t, b int) float64 { return c.tb.cells[t][b] }

// SignOf returns r_t(i) as a float64.
func (c *CountSketch) SignOf(t, i int) float64 {
	return c.signs.S[t].SignFloat(uint64(i))
}
