package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// DengRafiei is the bias-corrected Count-Min estimator of Deng and
// Rafiei [14], sketched in §2 of the paper: when recovering a
// coordinate mapped to a bucket, subtract an estimate of the noise in
// that bucket obtained by averaging the mass in all the *other*
// buckets of the row, then combine rows by median. Section 2 notes the
// resulting quality is only comparable to Count-Sketch — it cannot
// exploit a data bias the way the paper's ℓ1/ℓ2-S/R do; we implement
// it so that claim can be checked empirically.
//
// The estimator for row t is
//
//	x̂_t(i) = bucket_t(i) − (total − bucket_t(i)) / (s − 1),
//
// where total is the running sum of all updates (the row mass).
type DengRafiei struct {
	tb    table
	total float64
	buf   []float64
}

// NewDengRafiei creates a dense Deng–Rafiei corrected Count-Min
// sketch. Invalid configurations (including Rows < 2, which the
// noise-averaging denominator s−1 cannot tolerate) return an
// ErrConfig-wrapped error.
func NewDengRafiei(cfg Config, r *rand.Rand) (*DengRafiei, error) {
	return NewDengRafieiBackend(cfg, Backend{}, r)
}

// NewDengRafieiBackend creates a Deng–Rafiei sketch on the chosen
// counter plane. Updates are plain linear adds, so every backend is
// supported: dense, tiled, compressed (insert-only integer streams),
// and mmap (read-only).
//
// The sketch carries one scalar of state beyond the cell matrix — the
// running total — so a mapped backend's byte region is the Marshal
// layout: 8·Depth·Rows cell bytes followed by an 8-byte total.
func NewDengRafieiBackend(cfg Config, be Backend, r *rand.Rand) (*DengRafiei, error) {
	if cfg.Rows < 2 {
		return nil, fmt.Errorf("%w: DengRafiei needs at least 2 buckets per row", ErrConfig)
	}
	var total float64
	if be.Kind == BackendMmap {
		cellBytes := 8 * cfg.Depth * cfg.Rows
		if len(be.Mapped) != cellBytes+8 {
			return nil, fmt.Errorf("%w: DengRafiei mapped state is %d bytes, want %d cell bytes + 8-byte total", ErrBackendState, len(be.Mapped), cellBytes)
		}
		total = math.Float64frombits(binary.LittleEndian.Uint64(be.Mapped[cellBytes:]))
		be.Mapped = be.Mapped[:cellBytes]
	}
	tb, err := newTable(cfg, r, be)
	if err != nil {
		return nil, err
	}
	return &DengRafiei{tb: tb, total: total, buf: make([]float64, cfg.Depth)}, nil
}

// Backend reports the counter plane's storage backend.
func (c *DengRafiei) Backend() BackendKind { return c.tb.backend() }

// Update applies x[i] += delta.
//
//sketch:hotpath
func (c *DengRafiei) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	c.tb.addPoint(i, delta)
	c.total += delta
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j, row-major,
// folding the batch into the running total once. Equivalent to the
// element-wise Update loop.
//
//sketch:hotpath
func (c *DengRafiei) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	c.tb.addBatch(idx, deltas)
	for _, d := range deltas {
		c.total += d
	}
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j:
// a row-major gather of the noise-corrected bucket values (one hash-
// coefficient load per row), then the per-element median in the same
// row order as Query — results are bit-identical to the element-wise
// Query loop. Scratch is borrowed from the package pool per call, so
// concurrent QueryBatch calls on a quiescent sketch are safe.
//
//sketch:hotpath
func (c *DengRafiei) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	QueryBatchMedian(c.tb.cfg.Depth, idx, out, 0, c)
}

// GatherRow implements BatchRecovery: row t's noise-corrected bucket
// values for the tile. The running total is re-read per row — the same
// value every time on the quiescent sketches batched queries require.
// Used by QueryBatchMedian, not meant for direct callers.
//
//sketch:hotpath
func (c *DengRafiei) GatherRow(t int, tile []int, o []float64, sc *QScratch) {
	c.tb.gatherRowValues(t, tile, o, sc)
	s1 := float64(c.tb.cfg.Rows - 1)
	total := c.total
	for j, v := range o {
		o[j] = v - (total-v)/s1
	}
}

// Combine implements BatchRecovery: the Table 1 median.
//
//sketch:hotpath
func (c *DengRafiei) Combine(vals []float64, _ *QScratch) float64 { return medianOf(vals) }

// Query estimates x[i] as the median over rows of the noise-corrected
// bucket values.
//
//sketch:hotpath
func (c *DengRafiei) Query(i int) float64 {
	c.tb.checkIndex(i)
	c.tb.gatherPoint(i, c.buf)
	s1 := float64(c.tb.cfg.Rows - 1)
	for t, v := range c.buf {
		c.buf[t] = v - (c.total-v)/s1
	}
	return medianOf(c.buf)
}

// Dim returns the vector dimension n.
func (c *DengRafiei) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words (+1 for the total).
func (c *DengRafiei) Words() int { return c.tb.words() + 1 }

// Marshal serializes the counter matrix followed by the running total
// (8 bytes, little endian).
func (c *DengRafiei) Marshal() ([]byte, error) {
	cells, err := c.tb.marshalCells()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(cells)+8)
	copy(out, cells)
	binary.LittleEndian.PutUint64(out[len(cells):], math.Float64bits(c.total))
	return out, nil
}

// Unmarshal restores state captured by Marshal on a sketch built with
// the same configuration and seeds.
func (c *DengRafiei) Unmarshal(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: DengRafiei payload %d bytes, want at least 8", ErrBackendState, len(b))
	}
	if err := c.tb.unmarshalCells(b[:len(b)-8]); err != nil {
		return err
	}
	c.total = math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
	return nil
}

// MergeFrom adds another DengRafiei with identical shape and seeds.
// The estimator is linear: both the cells and the running total add.
func (c *DengRafiei) MergeFrom(other Linear) error {
	o, ok := other.(*DengRafiei)
	if !ok || !c.tb.sameShape(&o.tb) {
		return ErrIncompatible
	}
	if err := c.tb.mergeFrom(&o.tb); err != nil {
		return err
	}
	c.total += o.total
	return nil
}
