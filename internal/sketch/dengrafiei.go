package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// DengRafiei is the bias-corrected Count-Min estimator of Deng and
// Rafiei [14], sketched in §2 of the paper: when recovering a
// coordinate mapped to a bucket, subtract an estimate of the noise in
// that bucket obtained by averaging the mass in all the *other*
// buckets of the row, then combine rows by median. Section 2 notes the
// resulting quality is only comparable to Count-Sketch — it cannot
// exploit a data bias the way the paper's ℓ1/ℓ2-S/R do; we implement
// it so that claim can be checked empirically.
//
// The estimator for row t is
//
//	x̂_t(i) = bucket_t(i) − (total − bucket_t(i)) / (s − 1),
//
// where total is the running sum of all updates (the row mass).
type DengRafiei struct {
	tb    table
	total float64
	buf   []float64
}

// NewDengRafiei creates a Deng–Rafiei corrected Count-Min sketch.
func NewDengRafiei(cfg Config, r *rand.Rand) *DengRafiei {
	if cfg.Rows < 2 {
		panic("sketch: DengRafiei needs at least 2 buckets per row")
	}
	return &DengRafiei{tb: newTable(cfg, r), buf: make([]float64, cfg.Depth)}
}

// Update applies x[i] += delta.
//
//sketch:hotpath
func (c *DengRafiei) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	c.total += delta
	for t := range c.tb.cells {
		c.tb.cells[t][c.tb.hash.H[t].Hash(uint64(i))] += delta
	}
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j, row-major,
// folding the batch into the running total once. Equivalent to the
// element-wise Update loop.
//
//sketch:hotpath
func (c *DengRafiei) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	for _, d := range deltas {
		c.total += d
	}
	for t := range c.tb.cells {
		row := c.tb.cells[t]
		for j, b := range c.tb.hashRow(t, idx) {
			row[b] += deltas[j]
		}
	}
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j:
// a row-major gather of the noise-corrected bucket values (one hash-
// coefficient load per row), then the per-element median in the same
// row order as Query — results are bit-identical to the element-wise
// Query loop. Scratch is borrowed from the package pool per call, so
// concurrent QueryBatch calls on a quiescent sketch are safe.
//
//sketch:hotpath
func (c *DengRafiei) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	QueryBatchMedian(len(c.tb.cells), idx, out, 0, c)
}

// GatherRow implements BatchRecovery: row t's noise-corrected bucket
// values for the tile. The running total is re-read per row — the same
// value every time on the quiescent sketches batched queries require.
// Used by QueryBatchMedian, not meant for direct callers.
//
//sketch:hotpath
func (c *DengRafiei) GatherRow(t int, tile []int, o []float64, sc *QScratch) {
	s1 := float64(c.tb.cfg.Rows - 1)
	total := c.total
	hb := sc.Ints[:len(tile)]
	c.tb.hash.H[t].HashMany(tile, hb)
	row := c.tb.cells[t]
	for j, b := range hb {
		v := row[b]
		o[j] = v - (total-v)/s1
	}
}

// Combine implements BatchRecovery: the Table 1 median.
//
//sketch:hotpath
func (c *DengRafiei) Combine(vals []float64, _ *QScratch) float64 { return medianOf(vals) }

// Query estimates x[i] as the median over rows of the noise-corrected
// bucket values.
//
//sketch:hotpath
func (c *DengRafiei) Query(i int) float64 {
	c.tb.checkIndex(i)
	s1 := float64(c.tb.cfg.Rows - 1)
	for t := range c.tb.cells {
		b := c.tb.cells[t][c.tb.hash.H[t].Hash(uint64(i))]
		c.buf[t] = b - (c.total-b)/s1
	}
	return medianOf(c.buf)
}

// Dim returns the vector dimension n.
func (c *DengRafiei) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words (+1 for the total).
func (c *DengRafiei) Words() int { return c.tb.words() + 1 }

// Marshal serializes the counter matrix followed by the running total
// (8 bytes, little endian).
func (c *DengRafiei) Marshal() []byte {
	cells := c.tb.marshalCells()
	out := make([]byte, len(cells)+8)
	copy(out, cells)
	binary.LittleEndian.PutUint64(out[len(cells):], math.Float64bits(c.total))
	return out
}

// Unmarshal restores state captured by Marshal on a sketch built with
// the same configuration and seeds.
func (c *DengRafiei) Unmarshal(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("sketch: DengRafiei payload %d bytes, want at least 8", len(b))
	}
	if err := c.tb.unmarshalCells(b[:len(b)-8]); err != nil {
		return err
	}
	c.total = math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
	return nil
}

// MergeFrom adds another DengRafiei with identical shape and seeds.
// The estimator is linear: both the cells and the running total add.
func (c *DengRafiei) MergeFrom(other Linear) error {
	o, ok := other.(*DengRafiei)
	if !ok || !c.tb.sameShape(&o.tb) {
		return ErrIncompatible
	}
	c.tb.mergeFrom(&o.tb)
	c.total += o.total
	return nil
}
