package sketch

import (
	"fmt"
	"unsafe"
)

// mmapPlane is the read-only backend: the counter matrix is the state
// payload of a wire-v2 checkpoint, served in place. The backing bytes
// typically come from syscall.Mmap (internal/codec's OpenMmapSketch),
// so nothing is decoded into the heap — the plane is row slices aliased
// onto the mapped region and a query's first page faults pull in only
// the buckets it touches. All writes, merges, and restores return
// ErrReadOnlyPlane.
//
// The payload must be 8-byte aligned: the float64 row views are built
// with unsafe.Slice, and a misaligned base is undefined behavior (and
// rejected by checkptr under -race). codec.WriteSketchFile pads its
// containers so the state payload lands aligned.
type mmapPlane struct {
	rows  int
	data  []byte      // the raw cell payload, aliased, never written
	cells [][]float64 // row views into data
}

func newMmapPlane(depth, rows int, data []byte) (*mmapPlane, error) {
	if want := 8 * depth * rows; len(data) != want {
		return nil, fmt.Errorf("%w: mmap payload %d bytes, want %d", ErrBackendState, len(data), want)
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 != 0 {
		return nil, fmt.Errorf("%w: mmap payload is not 8-byte aligned (write checkpoints with codec.WriteSketchFile)", ErrBackendState)
	}
	flat := unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(data))), depth*rows)
	cells := make([][]float64, depth)
	for t := range cells {
		cells[t] = flat[t*rows : (t+1)*rows]
	}
	return &mmapPlane{rows: rows, data: data, cells: cells}, nil
}

func (p *mmapPlane) Kind() BackendKind           { return BackendMmap }
func (p *mmapPlane) View() ([][]float64, error)  { return p.cells, nil }
func (p *mmapPlane) WritableRows() [][]float64   { return nil }
func (p *mmapPlane) ValidateAdd(float64) error   { return ErrReadOnlyPlane }
func (p *mmapPlane) Add(int, int, float64) error { return ErrReadOnlyPlane }
func (p *mmapPlane) MergeFrom(Plane) error       { return ErrReadOnlyPlane }
func (p *mmapPlane) UnmarshalCells([]byte) error { return ErrReadOnlyPlane }
func (p *mmapPlane) Bits() int                   { return 8 * len(p.data) }

// MarshalCells copies the mapped payload out — re-checkpointing a
// mapped sketch is just a byte copy; the wire layout and the mapped
// layout are the same.
func (p *mmapPlane) MarshalCells() ([]byte, error) {
	out := make([]byte, len(p.data))
	copy(out, p.data)
	return out, nil
}
