package sketch

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultCMLBase is the log base used in §5.1 of the paper for
// Count-Min-Log with conservative update.
const DefaultCMLBase = 1.00025

// CMLCU is Count-Min-Log with conservative update (Pitel–Fouquier
// [29]): the buckets hold logarithmic counters instead of linear
// counts. A counter value c encodes the estimate
//
//	value(c) = (base^c − 1) / (base − 1),
//
// so each unit increment advances the counter with probability
// base^(−c), and conservative update only advances the counters that
// are at the row-wise minimum. Like CM-CU it is not linear.
//
// Weighted updates convert the target count to the log domain and
// round probabilistically, which coincides with repeated unit
// increments in expectation and is indistinguishable at the paper's
// base of 1.00025 (the counters are nearly linear).
type CMLCU struct {
	tb   table
	base float64
	lnB  float64
	rng  *rand.Rand
	hbuf []int // d×batch bucket indexes, row-major, reused across UpdateBatch calls
}

// NewCMLCU creates a dense Count-Min-Log sketch with the given shape
// and base. Pass DefaultCMLBase to mirror the paper's configuration.
// Invalid configurations (including base ≤ 1) return an
// ErrConfig-wrapped error.
func NewCMLCU(cfg Config, base float64, r *rand.Rand) (*CMLCU, error) {
	return NewCMLCUBackend(cfg, base, Backend{}, r)
}

// NewCMLCUBackend creates a Count-Min-Log sketch on the chosen counter
// plane. Like CM-CU the conservative raise sets buckets in place, so
// BackendCompressed returns ErrBackendUnsupported; dense and mmap
// (read-only) are supported.
func NewCMLCUBackend(cfg Config, base float64, be Backend, r *rand.Rand) (*CMLCU, error) {
	if base <= 1 {
		return nil, fmt.Errorf("%w: CMLCU base must exceed 1, got %v", ErrConfig, base)
	}
	if be.Kind == BackendCompressed {
		return nil, fmt.Errorf("%w: cmlcu's conservative raise sets buckets in place, the compressed plane only adds", ErrBackendUnsupported)
	}
	if be.Kind == BackendTiled {
		return nil, fmt.Errorf("%w: cmlcu's conservative raise needs in-place row views, which the tiled plane does not expose", ErrBackendUnsupported)
	}
	tb, err := newTable(cfg, r, be)
	if err != nil {
		return nil, err
	}
	return &CMLCU{
		tb:   tb,
		base: base,
		lnB:  math.Log(base),
		rng:  rand.New(rand.NewSource(r.Int63())),
	}, nil
}

// Backend reports the counter plane's storage backend.
func (c *CMLCU) Backend() BackendKind { return c.tb.backend() }

// value decodes a log counter into a linear-scale estimate.
func (c *CMLCU) value(counter float64) float64 {
	return (math.Exp(counter*c.lnB) - 1) / (c.base - 1)
}

// counter encodes a linear-scale count into the log domain.
func (c *CMLCU) counter(value float64) float64 {
	return math.Log1p(value*(c.base-1)) / c.lnB
}

// growHbuf ensures the row-major bucket-index scratch holds n entries;
// growth helper kept out of the tagged hot path.
func (c *CMLCU) growHbuf(n int) {
	if cap(c.hbuf) < n {
		c.hbuf = make([]int, n)
	}
}

// Update applies a conservative log-domain increment of delta to
// coordinate i. Negative deltas panic (insert-only structure).
//
//sketch:hotpath
func (c *CMLCU) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	if delta < 0 {
		panic("sketch: CMLCU does not support negative updates (insert-only)")
	}
	cells := c.tb.writable()
	depth := len(cells)
	c.growHbuf(depth)
	hb := c.hbuf[:depth]
	c.tb.hashPoint(uint64(i), hb)
	m := cells[0][hb[0]]
	for t := 1; t < depth; t++ {
		m = min(m, cells[t][hb[t]])
	}
	// Target counter after adding delta to the current estimate, with
	// probabilistic rounding of the fractional part so that repeated
	// small updates are unbiased.
	exact := c.counter(c.value(m) + delta)
	target := math.Floor(exact)
	if c.rng.Float64() < exact-target {
		target++
	}
	for t, b := range hb {
		if cells[t][b] < target {
			cells[t][b] = target
		}
	}
}

// UpdateBatch applies the batch of conservative log-domain increments.
// Hash evaluation is row-major; the conservative raise (and hence the
// probabilistic-rounding RNG draws) stays element-ordered, so the
// final counters exactly match the element-wise Update loop.
//
//sketch:hotpath
func (c *CMLCU) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	for _, d := range deltas {
		if d < 0 {
			panic("sketch: CMLCU does not support negative updates (insert-only)")
		}
	}
	cells := c.tb.writable()
	m := len(idx)
	depth := len(cells)
	c.growHbuf(depth * m)
	for t := 0; t < depth; t++ {
		c.tb.hash.HashMany(t, idx, c.hbuf[t*m:(t+1)*m])
	}
	for j := 0; j < m; j++ {
		min := cells[0][c.hbuf[j]]
		for t := 1; t < depth; t++ {
			if v := cells[t][c.hbuf[t*m+j]]; v < min {
				min = v
			}
		}
		exact := c.counter(c.value(min) + deltas[j])
		target := math.Floor(exact)
		if c.rng.Float64() < exact-target {
			target++
		}
		for t := 0; t < depth; t++ {
			b := c.hbuf[t*m+j]
			if cells[t][b] < target {
				cells[t][b] = target
			}
		}
	}
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j:
// the row-major minimum gather of the Count-Min family, then a log-
// domain decode per element. Bit-identical to the element-wise Query
// loop, and — unlike Update — entirely deterministic: queries never
// touch the probabilistic-rounding RNG.
//
//sketch:hotpath
func (c *CMLCU) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	c.tb.minRows(idx, out)
	for j, v := range out {
		out[j] = c.value(v)
	}
}

// Query estimates x[i] by decoding the minimum log counter.
//
//sketch:hotpath
func (c *CMLCU) Query(i int) float64 {
	c.tb.checkIndex(i)
	return c.value(c.tb.minPoint(i))
}

// Dim returns the vector dimension n.
func (c *CMLCU) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words. (A production CML
// would use narrow integer counters; we count cells to keep the
// size-versus-accuracy axes comparable across algorithms, matching how
// the paper plots all algorithms at equal word budgets.)
func (c *CMLCU) Words() int { return c.tb.words() }

// Marshal serializes the log-counter matrix. The probabilistic-
// rounding RNG is not part of the state: queries never touch it, and a
// restored sketch that keeps ingesting just continues with the fresh
// seed-derived stream.
func (c *CMLCU) Marshal() ([]byte, error) { return c.tb.marshalCells() }

// Unmarshal restores state captured by Marshal on a sketch built with
// the same configuration, base, and seeds.
func (c *CMLCU) Unmarshal(b []byte) error { return c.tb.unmarshalCells(b) }
