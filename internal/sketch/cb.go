package sketch

import (
	"fmt"
	"math/rand"

	"repro/internal/counterbraids"
)

// CounterBraids adapts the two-layer Counter Braids structure of Lu et
// al. (SIGMETRICS 2008) to the Sketch interface, so the related work §2
// contrasts against is constructible through the same registry as the
// paper's own algorithms. The adapter makes the structure's constraints
// explicit as typed errors:
//
//   - insert-only: updates must be non-negative integers (ErrInsertOnly);
//   - decode-at-query: a braid has no per-coordinate query — the whole
//     vector is reconstructed by message passing the first time a query
//     arrives after a write, and the reconstruction fails with
//     ErrPlaneDecode once the braid is loaded past its decoding
//     threshold.
//
// Below the threshold the reconstruction is exact while the braid
// stores a fraction of the bits exact counters would need — that
// trade-off is the point of surfacing it next to the CM family.
type CounterBraids struct {
	br      *counterbraids.Braid
	decoded []float64
	fresh   bool
}

// NewCounterBraids creates a braid summarizing an n-dimensional
// insert-only vector, drawing hash functions from r. The braid's
// layers are sized by n alone (≈1.5·n shallow counters plus the deep
// second layer, the standard CB design rule); invalid dimensions
// return an ErrConfig-wrapped error.
func NewCounterBraids(n int, r *rand.Rand) (*CounterBraids, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: counterbraids dimension must be positive, got %d", ErrConfig, n)
	}
	return &CounterBraids{br: counterbraids.New(counterbraids.Config{N: n}, r)}, nil
}

// Backend reports the storage backend. A braid is its own compressed
// representation, so this is always BackendCompressed.
func (c *CounterBraids) Backend() BackendKind { return BackendCompressed }

// Update adds delta to coordinate i. The structure is insert-only:
// negative or fractional deltas panic with an ErrInsertOnly-wrapped
// error (use errors.Is to classify recovered panics).
func (c *CounterBraids) Update(i int, delta float64) {
	if i < 0 || i >= c.br.Dim() {
		panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, c.br.Dim()))
	}
	if delta < 0 || float64(uint64(delta)) != delta {
		panic(fmt.Errorf("%w: counterbraids accepts only non-negative integer deltas, got %v", ErrInsertOnly, delta))
	}
	c.br.Update(i, delta)
	c.fresh = false
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j. The whole
// batch is validated (index ranges, insert-only deltas) before any
// counter moves, so a panic cannot leave the braid partially updated.
func (c *CounterBraids) UpdateBatch(idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("sketch: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	for _, i := range idx {
		if i < 0 || i >= c.br.Dim() {
			panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, c.br.Dim()))
		}
	}
	for _, d := range deltas {
		if d < 0 || float64(uint64(d)) != d {
			panic(fmt.Errorf("%w: counterbraids accepts only non-negative integer deltas, got %v", ErrInsertOnly, d))
		}
	}
	for j, i := range idx {
		c.br.Update(i, deltas[j])
	}
	c.fresh = false
}

// Decoded returns the reconstructed count vector, running the CB
// message-passing decode if a write happened since the last call and
// caching the result. Callers must not modify the returned slice. Past
// the decoding threshold the reconstruction fails with an
// ErrPlaneDecode-wrapped error (counterbraids.ErrNoConverge is in the
// chain).
func (c *CounterBraids) Decoded() ([]float64, error) {
	if c.fresh {
		return c.decoded, nil
	}
	x, err := c.br.Decode(cbDecodeIters)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrPlaneDecode, err)
	}
	c.decoded, c.fresh = x, true
	return x, nil
}

// Query returns the reconstructed count of coordinate i, decoding the
// whole vector on the first query after a write (there is no
// per-coordinate read — that is the API criticism §2 makes concrete).
// A braid loaded past its decoding threshold panics with the
// ErrPlaneDecode-wrapped error Decoded returns; error-aware callers
// use Decoded directly.
func (c *CounterBraids) Query(i int) float64 {
	if i < 0 || i >= c.br.Dim() {
		panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, c.br.Dim()))
	}
	x, err := c.Decoded()
	if err != nil {
		panic(err)
	}
	return x[i]
}

// QueryBatch writes the reconstructed count of idx[j] into out[j] for
// every j, sharing one decode across the batch. Same threshold
// behavior as Query.
func (c *CounterBraids) QueryBatch(idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("sketch: batch index count %d != output count %d", len(idx), len(out)))
	}
	for _, i := range idx {
		if i < 0 || i >= c.br.Dim() {
			panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, c.br.Dim()))
		}
	}
	x, err := c.Decoded()
	if err != nil {
		panic(err)
	}
	for j, i := range idx {
		out[j] = x[i]
	}
}

// Dim returns the flow universe size n.
func (c *CounterBraids) Dim() int { return c.br.Dim() }

// Words returns the storage cost in 64-bit words, rounding the braid's
// bit count up — the honest x-axis position for CB on the paper's
// size-versus-accuracy plots.
func (c *CounterBraids) Words() int { return (c.br.Bits() + 63) / 64 }

// MergeFrom adds another braid built with the same shape and seeds.
// Braids are linear in their counter state: layer-1 residues add mod
// 2^bits with carries pushed into layer 2, which reproduces exactly
// the braid of the concatenated streams. Mismatched shapes or seeds
// return ErrIncompatible.
func (c *CounterBraids) MergeFrom(other Linear) error {
	o, ok := other.(*CounterBraids)
	if !ok || !c.br.SameShape(o.br) {
		return ErrIncompatible
	}
	if err := c.br.MergeFrom(o.br); err != nil {
		return ErrIncompatible
	}
	c.fresh = false
	return nil
}

// Marshal serializes the braid's native two-layer counter state —
// no decode happens, so (unlike the compressed counter plane of the
// table sketches) a braid past its decoding threshold still
// checkpoints losslessly.
func (c *CounterBraids) Marshal() ([]byte, error) { return c.br.Marshal(), nil }

// Unmarshal restores state captured by Marshal on a braid built with
// the same configuration and seeds.
func (c *CounterBraids) Unmarshal(b []byte) error {
	if err := c.br.Unmarshal(b); err != nil {
		return err
	}
	c.fresh = false
	return nil
}
