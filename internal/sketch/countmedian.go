package sketch

import (
	"math/rand"
	"sync/atomic"
)

// CountMedian is the Count-Median sketch of Cormode and Muthukrishnan
// (Definition 1 / Theorem 1 of the paper): d independent CM-matrix
// rows; a point query returns the median over rows of the bucket the
// queried coordinate hashes into. It achieves the ℓ∞/ℓ1 guarantee
// ‖x̂−x‖∞ = O(1/k)·Err_1^k(x) with s = Θ(k), d = Θ(log n).
type CountMedian struct {
	tb  table
	buf []float64 // scratch for the per-query median

	pis atomic.Pointer[[][]float64] // cached per-row column counts π (see columns.go)
}

// NewCountMedian creates a dense Count-Median sketch with the given
// shape, drawing hash functions from r. Invalid configurations return
// an ErrConfig-wrapped error.
func NewCountMedian(cfg Config, r *rand.Rand) (*CountMedian, error) {
	return NewCountMedianBackend(cfg, Backend{}, r)
}

// NewCountMedianBackend creates a Count-Median sketch on the chosen
// counter plane. Updates are plain linear adds, so every backend is
// supported: dense, tiled, compressed (insert-only integer streams),
// and mmap (read-only).
func NewCountMedianBackend(cfg Config, be Backend, r *rand.Rand) (*CountMedian, error) {
	tb, err := newTable(cfg, r, be)
	if err != nil {
		return nil, err
	}
	return &CountMedian{tb: tb, buf: make([]float64, cfg.Depth)}, nil
}

// Backend reports the counter plane's storage backend.
func (c *CountMedian) Backend() BackendKind { return c.tb.backend() }

// Update applies x[i] += delta.
//
//sketch:hotpath
func (c *CountMedian) Update(i int, delta float64) {
	c.tb.checkIndex(i)
	c.tb.addPoint(i, delta)
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j, row-major:
// each row's hash runs over the whole batch and the row stays cache-
// hot while it absorbs every element. Equivalent to the element-wise
// Update loop (each cell receives the same addends in the same order).
//
//sketch:hotpath
func (c *CountMedian) UpdateBatch(idx []int, deltas []float64) {
	c.tb.checkBatch(idx, deltas)
	c.tb.addBatch(idx, deltas)
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j.
// The bucket gather is row-major (one hash-coefficient load per row,
// cache-hot rows); the median then runs per element over the gathered
// column, in the same row order as Query, so results are bit-identical
// to the element-wise Query loop. Scratch is borrowed from the package
// pool per call, so concurrent QueryBatch calls on a quiescent sketch
// are safe.
//
//sketch:hotpath
func (c *CountMedian) QueryBatch(idx []int, out []float64) {
	c.tb.checkQueryBatch(idx, out)
	QueryBatchMedian(c.tb.cfg.Depth, idx, out, 0, c)
}

// GatherRow implements BatchRecovery: row t's bucket values for the
// tile. Used by QueryBatchMedian, not meant for direct callers.
//
//sketch:hotpath
func (c *CountMedian) GatherRow(t int, tile []int, o []float64, sc *QScratch) {
	c.tb.gatherRowValues(t, tile, o, sc)
}

// Combine implements BatchRecovery: the Table 1 median.
//
//sketch:hotpath
func (c *CountMedian) Combine(vals []float64, _ *QScratch) float64 { return medianOf(vals) }

// Query estimates x[i] as the median over rows of the hashed bucket.
//
//sketch:hotpath
func (c *CountMedian) Query(i int) float64 {
	c.tb.checkIndex(i)
	c.tb.gatherPoint(i, c.buf)
	return medianOf(c.buf)
}

// Dim returns the vector dimension n.
func (c *CountMedian) Dim() int { return c.tb.dim() }

// Words returns the sketch size in 64-bit words.
func (c *CountMedian) Words() int { return c.tb.words() }

// MergeFrom adds another CountMedian with identical shape and seeds.
// Backends may differ wherever the values admit it; read-only
// receivers return ErrReadOnlyPlane.
func (c *CountMedian) MergeFrom(other Linear) error {
	o, ok := other.(*CountMedian)
	if !ok || !c.tb.sameShape(&o.tb) {
		return ErrIncompatible
	}
	return c.tb.mergeFrom(&o.tb)
}

// Marshal serializes the counter state (not the hash seeds; in the
// distributed model hash functions are shared up front by the
// coordinator, §5.5 footnote 4).
func (c *CountMedian) Marshal() ([]byte, error) { return c.tb.marshalCells() }

// Unmarshal restores counter state written by Marshal.
func (c *CountMedian) Unmarshal(b []byte) error { return c.tb.unmarshalCells(b) }
