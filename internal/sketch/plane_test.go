package sketch

// Unit tests for the counter-plane backends at the Plane seam: the
// facade-level property tests prove the sketches agree across
// backends; these pin the plane contracts themselves — insert-only
// validation, read-only rejection, decode caching, alignment and
// length checks — where the error paths are reachable directly.

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

func TestBackendKindString(t *testing.T) {
	cases := map[BackendKind]string{
		BackendDense:      "dense",
		BackendCompressed: "compressed",
		BackendMmap:       "mmap",
		BackendKind(42):   "backend(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestDensePlaneContract(t *testing.T) {
	p := newDensePlane(3, 4)
	if p.Kind() != BackendDense {
		t.Fatalf("Kind = %v", p.Kind())
	}
	if p.WritableRows() == nil {
		t.Fatal("dense plane must expose writable rows")
	}
	if err := p.ValidateAdd(-2.5); err != nil {
		t.Fatalf("dense accepts any delta: %v", err)
	}
	if err := p.Add(1, 2, -2.5); err != nil {
		t.Fatal(err)
	}
	v, err := p.View()
	if err != nil {
		t.Fatal(err)
	}
	if v[1][2] != -2.5 {
		t.Fatalf("cell = %v", v[1][2])
	}
	if p.Bits() != 64*3*4 {
		t.Errorf("Bits = %d", p.Bits())
	}
	blob, err := p.MarshalCells()
	if err != nil {
		t.Fatal(err)
	}
	q := newDensePlane(3, 4)
	if err := q.UnmarshalCells(blob); err != nil {
		t.Fatal(err)
	}
	qv, _ := q.View()
	if qv[1][2] != -2.5 {
		t.Fatalf("restored cell = %v", qv[1][2])
	}
	if err := q.UnmarshalCells(blob[:8]); err == nil {
		t.Error("short payload should be rejected")
	}
}

func TestCBPlaneContract(t *testing.T) {
	const depth, rows = 3, 16
	p := newCBPlane(depth, rows, rand.New(rand.NewSource(1)))
	if p.Kind() != BackendCompressed {
		t.Fatalf("Kind = %v", p.Kind())
	}
	if p.WritableRows() != nil {
		t.Fatal("compressed plane must not expose writable rows")
	}
	for _, bad := range []float64{-1, 0.5, math.NaN()} {
		if err := p.ValidateAdd(bad); !errors.Is(err, ErrInsertOnly) {
			t.Errorf("ValidateAdd(%v) = %v, want ErrInsertOnly", bad, err)
		}
		if err := p.Add(0, 0, bad); !errors.Is(err, ErrInsertOnly) {
			t.Errorf("Add(%v) = %v, want ErrInsertOnly", bad, err)
		}
	}

	// Mirror a dense plane cell by cell; views must agree exactly.
	d := newDensePlane(depth, rows)
	r := rand.New(rand.NewSource(2))
	for u := 0; u < 200; u++ {
		ti, b, v := r.Intn(depth), r.Intn(rows), float64(1+r.Intn(9))
		if err := p.Add(ti, b, v); err != nil {
			t.Fatal(err)
		}
		if err := d.Add(ti, b, v); err != nil {
			t.Fatal(err)
		}
	}
	pv, err := p.View()
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	dv, _ := d.View()
	for ti := range dv {
		for b := range dv[ti] {
			if pv[ti][b] != dv[ti][b] {
				t.Fatalf("cell (%d,%d): compressed %v, dense %v", ti, b, pv[ti][b], dv[ti][b])
			}
		}
	}
	// The decode is cached until the next write.
	pv2, _ := p.View()
	if &pv2[0][0] != &pv[0][0] {
		t.Error("quiescent View should reuse the cached decode")
	}
	if err := p.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if p.fresh {
		t.Error("Add must invalidate the cached decode")
	}

	if p.Bits() >= d.Bits() {
		t.Errorf("compressed plane uses %d bits, dense %d — no compression", p.Bits(), d.Bits())
	}

	// Wire interop: compressed marshal restores into dense and back.
	blob, err := p.MarshalCells()
	if err != nil {
		t.Fatal(err)
	}
	back := newCBPlane(depth, rows, rand.New(rand.NewSource(1)))
	if err := back.UnmarshalCells(blob); err != nil {
		t.Fatal(err)
	}
	bv, err := back.View()
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := p.View()
	for ti := range cur {
		for b := range cur[ti] {
			if bv[ti][b] != cur[ti][b] {
				t.Fatalf("restored cell (%d,%d) differs", ti, b)
			}
		}
	}
	if err := back.UnmarshalCells(blob[:16]); err == nil {
		t.Error("short payload should be rejected")
	}
	neg := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(neg, math.Float64bits(-3))
	if err := back.UnmarshalCells(neg); !errors.Is(err, ErrInsertOnly) {
		t.Errorf("negative cell payload: %v, want ErrInsertOnly", err)
	}
}

func TestCBPlaneMergeFrom(t *testing.T) {
	const depth, rows = 2, 8
	mk := func(seed int64) *cbPlane { return newCBPlane(depth, rows, rand.New(rand.NewSource(seed))) }
	a, b := mk(3), mk(3)
	if err := a.Add(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	// Same shape: braid-to-braid, no decode of either side.
	if err := a.MergeFrom(b); err != nil {
		t.Fatalf("braid merge: %v", err)
	}
	av, err := a.View()
	if err != nil {
		t.Fatal(err)
	}
	if av[0][1] != 5 || av[1][2] != 7 {
		t.Fatalf("merged view: %v", av)
	}

	// Cross-backend: decode the dense source and re-insert.
	d := newDensePlane(depth, rows)
	if err := d.Add(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.MergeFrom(d); err != nil {
		t.Fatalf("dense merge: %v", err)
	}
	av, _ = a.View()
	if av[0][0] != 3 {
		t.Fatalf("cross-backend merge lost mass: %v", av[0][0])
	}
	// A signed dense source violates the insert-only contract.
	if err := d.Add(0, 3, -1); err != nil {
		t.Fatal(err)
	}
	if err := mk(4).MergeFrom(d); !errors.Is(err, ErrInsertOnly) {
		t.Errorf("signed source: %v, want ErrInsertOnly", err)
	}
}

// alignedBuf returns an 8-byte-aligned slice of n bytes.
func alignedBuf(n int) []byte {
	raw := make([]byte, n+8)
	off := 0
	for uintptr(unsafe.Pointer(unsafe.SliceData(raw[off:])))%8 != 0 {
		off++
	}
	return raw[off : off+n : off+n]
}

func TestMmapPlaneContract(t *testing.T) {
	const depth, rows = 2, 4
	data := alignedBuf(8 * depth * rows)
	for c := 0; c < depth*rows; c++ {
		binary.LittleEndian.PutUint64(data[8*c:], math.Float64bits(float64(c)*1.5))
	}
	p, err := newMmapPlane(depth, rows, data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != BackendMmap {
		t.Fatalf("Kind = %v", p.Kind())
	}
	if p.WritableRows() != nil {
		t.Fatal("mmap plane must not expose writable rows")
	}
	v, err := p.View()
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < depth; ti++ {
		for b := 0; b < rows; b++ {
			if want := float64(ti*rows+b) * 1.5; v[ti][b] != want {
				t.Fatalf("cell (%d,%d) = %v, want %v", ti, b, v[ti][b], want)
			}
		}
	}
	for name, err := range map[string]error{
		"ValidateAdd":    p.ValidateAdd(1),
		"Add":            p.Add(0, 0, 1),
		"MergeFrom":      p.MergeFrom(newDensePlane(depth, rows)),
		"UnmarshalCells": p.UnmarshalCells(make([]byte, 8*depth*rows)),
	} {
		if !errors.Is(err, ErrReadOnlyPlane) {
			t.Errorf("%s: %v, want ErrReadOnlyPlane", name, err)
		}
	}
	if p.Bits() != 64*depth*rows {
		t.Errorf("Bits = %d", p.Bits())
	}
	out, err := p.MarshalCells()
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] == &data[0] {
		t.Error("MarshalCells must copy, not alias the mapping")
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("MarshalCells byte %d differs", i)
		}
	}

	// Construction rejections: wrong length, misalignment.
	if _, err := newMmapPlane(depth, rows, data[:8]); !errors.Is(err, ErrBackendState) {
		t.Errorf("short payload: %v, want ErrBackendState", err)
	}
	raw := make([]byte, 8*depth*rows+1)
	misaligned := raw[1:]
	if uintptr(unsafe.Pointer(unsafe.SliceData(misaligned)))%8 == 0 {
		misaligned = raw[:8*depth*rows]
	}
	if _, err := newMmapPlane(depth, rows, misaligned[:8*depth*rows]); !errors.Is(err, ErrBackendState) {
		t.Errorf("misaligned payload: %v, want ErrBackendState", err)
	}
}

// Backend() accessors and cross-backend construction on every table
// sketch: compressed where the write pattern allows, rejected where it
// does not, mmap from a marshaled twin everywhere.
func TestTableSketchBackends(t *testing.T) {
	cfg := Config{N: 300, Rows: 16, Depth: 3}

	t.Run("compressed", func(t *testing.T) {
		cm := must(NewCountMinBackend(cfg, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))))
		if cm.Backend() != BackendCompressed {
			t.Fatalf("Backend = %v", cm.Backend())
		}
		cmd := must(NewCountMedianBackend(cfg, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))))
		if cmd.Backend() != BackendCompressed {
			t.Fatalf("Backend = %v", cmd.Backend())
		}
		dr := must(NewDengRafieiBackend(cfg, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))))
		if dr.Backend() != BackendCompressed {
			t.Fatalf("Backend = %v", dr.Backend())
		}
		if _, err := NewCountSketchBackend(cfg, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBackendUnsupported) {
			t.Errorf("countsketch compressed: %v", err)
		}
		if _, err := NewCMCUBackend(cfg, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBackendUnsupported) {
			t.Errorf("cmcu compressed: %v", err)
		}
		if _, err := NewCMLCUBackend(cfg, DefaultCMLBase, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBackendUnsupported) {
			t.Errorf("cmlcu compressed: %v", err)
		}
	})

	t.Run("mmap", func(t *testing.T) {
		// Marshal a dense CountSketch and serve its cells mapped.
		src := must(NewCountSketch(cfg, rand.New(rand.NewSource(2))))
		for i := 0; i < cfg.N; i++ {
			src.Update(i, float64(i%5)-2)
		}
		blob := must(src.Marshal())
		data := alignedBuf(len(blob))
		copy(data, blob)
		mm := must(NewCountSketchBackend(cfg, Backend{Kind: BackendMmap, Mapped: data}, rand.New(rand.NewSource(2))))
		if mm.Backend() != BackendMmap {
			t.Fatalf("Backend = %v", mm.Backend())
		}
		for i := 0; i < cfg.N; i += 13 {
			if src.Query(i) != mm.Query(i) {
				t.Fatalf("Query(%d) disagrees", i)
			}
		}
		if err := mm.Unmarshal(blob); !errors.Is(err, ErrReadOnlyPlane) {
			t.Errorf("Unmarshal on mmap: %v, want ErrReadOnlyPlane", err)
		}

		// DengRafiei's mapped layout carries the 8-byte total tail.
		dsrc := must(NewDengRafiei(cfg, rand.New(rand.NewSource(3))))
		for i := 0; i < cfg.N; i++ {
			dsrc.Update(i, float64(1+i%4))
		}
		dblob := must(dsrc.Marshal())
		ddata := alignedBuf(len(dblob))
		copy(ddata, dblob)
		dmm := must(NewDengRafieiBackend(cfg, Backend{Kind: BackendMmap, Mapped: ddata}, rand.New(rand.NewSource(3))))
		for i := 0; i < cfg.N; i += 13 {
			if dsrc.Query(i) != dmm.Query(i) {
				t.Fatalf("DengRafiei Query(%d) disagrees", i)
			}
		}
		if _, err := NewDengRafieiBackend(cfg, Backend{Kind: BackendMmap, Mapped: ddata[:16]}, rand.New(rand.NewSource(3))); !errors.Is(err, ErrBackendState) {
			t.Errorf("short DengRafiei mapped state: %v, want ErrBackendState", err)
		}
	})

	t.Run("dense-default", func(t *testing.T) {
		for name, sk := range map[string]interface{ Backend() BackendKind }{
			"countmin":    must(NewCountMin(cfg, rand.New(rand.NewSource(4)))),
			"countmedian": must(NewCountMedian(cfg, rand.New(rand.NewSource(4)))),
			"countsketch": must(NewCountSketch(cfg, rand.New(rand.NewSource(4)))),
			"cmcu":        must(NewCMCU(cfg, rand.New(rand.NewSource(4)))),
			"cmlcu":       must(NewCMLCU(cfg, DefaultCMLBase, rand.New(rand.NewSource(4)))),
			"dengrafiei":  must(NewDengRafiei(cfg, rand.New(rand.NewSource(4)))),
		} {
			if sk.Backend() != BackendDense {
				t.Errorf("%s: default backend = %v", name, sk.Backend())
			}
		}
	})
}

// Restores must land on every backend: cmcu and cmlcu are not linear
// (no merge) but do checkpoint; their Unmarshal paths were previously
// only reachable through the codec.
func TestNonLinearUnmarshal(t *testing.T) {
	cfg := Config{N: 200, Rows: 16, Depth: 3}
	cu := must(NewCMCU(cfg, rand.New(rand.NewSource(5))))
	lu := must(NewCMLCU(cfg, DefaultCMLBase, rand.New(rand.NewSource(5))))
	for i := 0; i < 800; i++ {
		cu.Update(i%cfg.N, float64(1+i%3))
		lu.Update(i%cfg.N, float64(1+i%3))
	}
	cu2 := must(NewCMCU(cfg, rand.New(rand.NewSource(5))))
	if err := cu2.Unmarshal(must(cu.Marshal())); err != nil {
		t.Fatal(err)
	}
	lu2 := must(NewCMLCU(cfg, DefaultCMLBase, rand.New(rand.NewSource(5))))
	if err := lu2.Unmarshal(must(lu.Marshal())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i += 7 {
		if cu.Query(i) != cu2.Query(i) {
			t.Fatalf("cmcu restore: Query(%d) disagrees", i)
		}
		if lu.Query(i) != lu2.Query(i) {
			t.Fatalf("cmlcu restore: Query(%d) disagrees", i)
		}
	}

	dr := must(NewDengRafiei(cfg, rand.New(rand.NewSource(6))))
	for i := 0; i < 500; i++ {
		dr.Update(i%cfg.N, 2)
	}
	dr2 := must(NewDengRafiei(cfg, rand.New(rand.NewSource(6))))
	if err := dr2.Unmarshal(must(dr.Marshal())); err != nil {
		t.Fatal(err)
	}
	if dr.Query(3) != dr2.Query(3) {
		t.Error("dengrafiei restore: query disagrees")
	}
	if err := dr2.Unmarshal([]byte{1, 2}); err == nil {
		t.Error("truncated dengrafiei payload should be rejected")
	}
}

// The CounterBraids adapter: exactness below threshold, the typed
// constraint surface, and merge/marshal round trips — exercised
// directly so the adapter's own validation (not the facade's) is
// what's covered.
func TestCounterBraidsAdapter(t *testing.T) {
	if _, err := NewCounterBraids(0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrConfig) {
		t.Fatalf("n=0: %v, want ErrConfig", err)
	}
	const n = 500
	cb := must(NewCounterBraids(n, rand.New(rand.NewSource(1))))
	if cb.Backend() != BackendCompressed {
		t.Fatalf("Backend = %v", cb.Backend())
	}
	if cb.Dim() != n {
		t.Fatalf("Dim = %d", cb.Dim())
	}
	if cb.Words() <= 0 || cb.Words() >= n {
		t.Fatalf("Words = %d — a braid over %d flows should cost less than exact counters", cb.Words(), n)
	}

	want := make([]float64, n)
	r := rand.New(rand.NewSource(2))
	idx := make([]int, 64)
	deltas := make([]float64, 64)
	for round := 0; round < 10; round++ {
		for j := range idx {
			idx[j] = r.Intn(n)
			deltas[j] = float64(1 + r.Intn(4))
			want[idx[j]] += deltas[j]
		}
		cb.UpdateBatch(idx, deltas)
	}
	cb.Update(7, 3)
	want[7] += 3

	out := make([]float64, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	cb.QueryBatch(all, out)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("coordinate %d: decoded %v, want %v", i, out[i], want[i])
		}
	}
	if cb.Query(7) != want[7] {
		t.Fatalf("Query(7) = %v", cb.Query(7))
	}

	// Typed panics: out-of-range index, non-integer delta, batch shape.
	expectPanic := func(name string, wantErr error, fn func()) {
		t.Helper()
		defer func() {
			rec := recover()
			if rec == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if wantErr != nil {
				err, ok := rec.(error)
				if !ok || !errors.Is(err, wantErr) {
					t.Errorf("%s: recovered %v, want %v", name, rec, wantErr)
				}
			}
		}()
		fn()
	}
	expectPanic("negative delta", ErrInsertOnly, func() { cb.Update(0, -1) })
	expectPanic("fractional delta", ErrInsertOnly, func() { cb.Update(0, 0.5) })
	expectPanic("index out of range", nil, func() { cb.Update(n, 1) })
	expectPanic("query out of range", nil, func() { cb.Query(-1) })
	expectPanic("batch length mismatch", nil, func() { cb.UpdateBatch([]int{1}, []float64{1, 2}) })
	expectPanic("batch bad index", nil, func() { cb.UpdateBatch([]int{n}, []float64{1}) })
	expectPanic("batch bad delta", ErrInsertOnly, func() { cb.UpdateBatch([]int{1}, []float64{-1}) })
	expectPanic("query batch length mismatch", nil, func() { cb.QueryBatch([]int{1}, make([]float64, 2)) })
	expectPanic("query batch bad index", nil, func() { cb.QueryBatch([]int{-1}, make([]float64, 1)) })
	// A failed batch must not have moved any counter.
	if cb.Query(0) != want[0] || cb.Query(1) != want[1] {
		t.Fatal("rejected batch leaked a partial update")
	}

	// Merge and wire round trip.
	other := must(NewCounterBraids(n, rand.New(rand.NewSource(1))))
	other.Update(11, 4)
	if err := cb.MergeFrom(other); err != nil {
		t.Fatalf("MergeFrom: %v", err)
	}
	want[11] += 4
	if cb.Query(11) != want[11] {
		t.Fatalf("merged Query(11) = %v, want %v", cb.Query(11), want[11])
	}
	mismatch := must(NewCounterBraids(n, rand.New(rand.NewSource(99))))
	if err := cb.MergeFrom(mismatch); !errors.Is(err, ErrIncompatible) {
		t.Errorf("seed-mismatched merge: %v, want ErrIncompatible", err)
	}
	if err := cb.MergeFrom(must(NewCountMin(Config{N: n, Rows: 8, Depth: 2}, rand.New(rand.NewSource(1))))); !errors.Is(err, ErrIncompatible) {
		t.Errorf("cross-type merge: %v, want ErrIncompatible", err)
	}

	blob := must(cb.Marshal())
	back := must(NewCounterBraids(n, rand.New(rand.NewSource(1))))
	if err := back.Unmarshal(blob); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for i := 0; i < n; i += 11 {
		if back.Query(i) != want[i] {
			t.Fatalf("restored Query(%d) = %v, want %v", i, back.Query(i), want[i])
		}
	}
	if err := back.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("truncated braid state should be rejected")
	}
}

// Table-level write rejection: the hot paths panic with the typed
// plane error when an update reaches a read-only or constraint-
// violating plane through the panic-only Update/UpdateBatch surface.
func TestTableWriteRejections(t *testing.T) {
	cfg := Config{N: 100, Rows: 8, Depth: 2}

	// Read-only: updates through the mapped plane.
	src := must(NewCountMin(cfg, rand.New(rand.NewSource(1))))
	blob := must(src.Marshal())
	data := alignedBuf(len(blob))
	copy(data, blob)
	mm := must(NewCountMinBackend(cfg, Backend{Kind: BackendMmap, Mapped: data}, rand.New(rand.NewSource(1))))
	func() {
		defer func() {
			rec := recover()
			err, ok := rec.(error)
			if !ok || !errors.Is(err, ErrReadOnlyPlane) {
				t.Errorf("mmap Update: recovered %v, want ErrReadOnlyPlane", rec)
			}
		}()
		mm.Update(1, 1)
		t.Error("mmap Update accepted")
	}()

	// Insert-only: a batch with one bad delta moves nothing.
	comp := must(NewCountMinBackend(cfg, Backend{Kind: BackendCompressed}, rand.New(rand.NewSource(1))))
	comp.Update(5, 2)
	func() {
		defer func() {
			rec := recover()
			err, ok := rec.(error)
			if !ok || !errors.Is(err, ErrInsertOnly) {
				t.Errorf("compressed batch: recovered %v, want ErrInsertOnly", rec)
			}
		}()
		comp.UpdateBatch([]int{1, 2}, []float64{1, -1})
		t.Error("compressed batch with negative delta accepted")
	}()
	if comp.Query(1) != 0 || comp.Query(5) != 2 {
		t.Error("rejected batch leaked a partial update")
	}
}
