package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// batchCases constructs one of every sketch in this package from the
// same shape and seed, paired with a twin for the element-wise
// reference. insertOnly marks the conservative-update sketches, whose
// streams must stay non-negative.
func batchCases(seed int64) []struct {
	name       string
	mk         func() Sketch
	insertOnly bool
} {
	cfg := Config{N: 20000, Rows: 256, Depth: 7}
	return []struct {
		name       string
		mk         func() Sketch
		insertOnly bool
	}{
		{"countmin", func() Sketch { return must(NewCountMin(cfg, rand.New(rand.NewSource(seed)))) }, false},
		{"countmedian", func() Sketch { return must(NewCountMedian(cfg, rand.New(rand.NewSource(seed)))) }, false},
		{"countsketch", func() Sketch { return must(NewCountSketch(cfg, rand.New(rand.NewSource(seed)))) }, false},
		{"dengrafiei", func() Sketch { return must(NewDengRafiei(cfg, rand.New(rand.NewSource(seed)))) }, false},
		{"cmcu", func() Sketch { return must(NewCMCU(cfg, rand.New(rand.NewSource(seed)))) }, true},
		{"cmlcu", func() Sketch { return must(NewCMLCU(cfg, DefaultCMLBase, rand.New(rand.NewSource(seed)))) }, true},
	}
}

// UpdateBatch must leave bit-identical state to the element-wise
// Update loop: per cell the addends arrive in the same order (linear
// sketches), and the conservative sketches process elements in stream
// order, so even floating point agrees exactly.
func TestUpdateBatchMatchesElementwise(t *testing.T) {
	for _, tc := range batchCases(51) {
		t.Run(tc.name, func(t *testing.T) {
			batched, seq := tc.mk(), tc.mk()
			bu, ok := batched.(BatchUpdater)
			if !ok {
				t.Fatalf("%T does not implement BatchUpdater", batched)
			}
			r := rand.New(rand.NewSource(52))
			for round := 0; round < 20; round++ {
				m := 1 + r.Intn(600) // uneven batch sizes, incl. tiny ones
				idx := make([]int, m)
				deltas := make([]float64, m)
				for j := range idx {
					idx[j] = r.Intn(20000)
					deltas[j] = float64(r.Intn(9))
					if !tc.insertOnly && r.Intn(3) == 0 {
						deltas[j] = -deltas[j]
					}
				}
				bu.UpdateBatch(idx, deltas)
				for j := range idx {
					seq.Update(idx[j], deltas[j])
				}
			}
			a, b := must(batched.(marshaler).Marshal()), must(seq.(marshaler).Marshal())
			if !bytes.Equal(a, b) {
				t.Fatal("batched and element-wise counter state differ")
			}
			for i := 0; i < 20000; i += 97 {
				if x, y := batched.Query(i), seq.Query(i); x != y {
					t.Fatalf("query %d: batched %v, element-wise %v", i, x, y)
				}
			}
		})
	}
}

// marshaler mirrors the registry's state surface for the exactness
// check above.
type marshaler interface{ Marshal() ([]byte, error) }

// A batch is all-or-nothing: an invalid element (bad index, mismatched
// lengths, negative delta on an insert-only sketch) must panic before
// any counter moves.
func TestUpdateBatchValidatesBeforeTouchingState(t *testing.T) {
	for _, tc := range batchCases(53) {
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.mk()
			bu := sk.(BatchUpdater)
			bad := [][2]interface{}{
				{[]int{1, 2, 20000}, []float64{1, 1, 1}}, // out of range
				{[]int{1, 2, -1}, []float64{1, 1, 1}},    // negative index
				{[]int{1, 2}, []float64{1}},              // length mismatch
			}
			if tc.insertOnly {
				bad = append(bad, [2]interface{}{[]int{1, 2, 3}, []float64{1, 1, -1}})
			}
			for _, c := range bad {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("batch %v/%v should panic", c[0], c[1])
						}
					}()
					bu.UpdateBatch(c[0].([]int), c[1].([]float64))
				}()
			}
			for i := 0; i < 20000; i += 501 {
				if v := sk.Query(i); v != 0 {
					t.Fatalf("state modified by rejected batch: Query(%d) = %v", i, v)
				}
			}
		})
	}
}

// The package-level helper must use the native path when present and
// fall back to a loop otherwise.
func TestUpdateBatchHelperFallback(t *testing.T) {
	cfg := Config{N: 100, Rows: 16, Depth: 3}
	native := must(NewCountMin(cfg, rand.New(rand.NewSource(54))))
	plain := &loopOnly{must(NewCountMin(cfg, rand.New(rand.NewSource(54))))}
	idx := []int{3, 7, 3, 99}
	deltas := []float64{1, 2, 3, 4}
	UpdateBatch(native, idx, deltas)
	UpdateBatch(plain, idx, deltas)
	for _, i := range idx {
		if a, b := native.Query(i), plain.Query(i); a != b {
			t.Fatalf("query %d: native %v, fallback %v", i, a, b)
		}
	}
}

// loopOnly hides the embedded sketch's UpdateBatch so the helper's
// fallback path is exercised.
type loopOnly struct{ *CountMin }

func (l *loopOnly) Update(i int, delta float64) { l.CountMin.Update(i, delta) }
func (l *loopOnly) UpdateBatch()                {} // different arity: not a BatchUpdater
