package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/hashing"
)

// table is the d×s counter matrix shared by every hashing-based sketch
// in this package, together with its row hash functions. It is the
// in-memory realization of the stacked CM/CS-matrices of Definitions 1
// and 2: row t holds the sketching vector Π(h_t)x (or Ψ(h_t,r_t)x).
type table struct {
	cfg   Config
	hash  hashing.Family
	cells [][]float64 // cells[t][b], t < Depth, b < Rows

	scratch []int // per-row bucket indexes, reused across UpdateBatch calls
}

func newTable(cfg Config, r *rand.Rand) table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cells := make([][]float64, cfg.Depth)
	for t := range cells {
		cells[t] = make([]float64, cfg.Rows)
	}
	return table{cfg: cfg, hash: hashing.NewFamily(r, cfg.Depth, cfg.Rows), cells: cells}
}

func (tb *table) dim() int   { return tb.cfg.N }
func (tb *table) words() int { return tb.cfg.Depth * tb.cfg.Rows }

// sameShape reports whether two tables share shape and hash seeds, the
// precondition for a meaningful merge.
func (tb *table) sameShape(o *table) bool {
	if tb.cfg != o.cfg {
		return false
	}
	for t := range tb.hash.H {
		if tb.hash.H[t] != o.hash.H[t] {
			return false
		}
	}
	return true
}

// mergeFrom adds o's cells into tb. Caller must have checked sameShape.
func (tb *table) mergeFrom(o *table) {
	for t := range tb.cells {
		row, orow := tb.cells[t], o.cells[t]
		for b := range row {
			row[b] += orow[b]
		}
	}
}

// marshalCells serializes the counter matrix to a byte slice (8 bytes
// per cell, little endian). Used by the distributed simulation to
// account communication in bytes.
func (tb *table) marshalCells() []byte {
	buf := make([]byte, 8*tb.cfg.Depth*tb.cfg.Rows)
	off := 0
	for t := range tb.cells {
		for _, v := range tb.cells[t] {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf
}

// unmarshalCells overwrites the counter matrix from marshalCells output.
func (tb *table) unmarshalCells(buf []byte) error {
	want := 8 * tb.cfg.Depth * tb.cfg.Rows
	if len(buf) != want {
		return fmt.Errorf("sketch: cell payload %d bytes, want %d", len(buf), want)
	}
	off := 0
	for t := range tb.cells {
		for b := range tb.cells[t] {
			tb.cells[t][b] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return nil
}

// checkIndex panics on out-of-range coordinate indexes; sketches are
// internal infrastructure and an out-of-range index is a programmer
// error, not an input error.
func (tb *table) checkIndex(i int) {
	if i < 0 || i >= tb.cfg.N {
		panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, tb.cfg.N))
	}
}

// checkBatch validates a whole batch before any counter is touched, so
// a panic cannot leave the table partially updated.
func (tb *table) checkBatch(idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("sketch: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	for _, i := range idx {
		tb.checkIndex(i)
	}
}

// hashRow evaluates row t's hash over the whole batch into the shared
// scratch buffer and returns it. Valid until the next hashRow call.
func (tb *table) hashRow(t int, idx []int) []int {
	if cap(tb.scratch) < len(idx) {
		tb.scratch = make([]int, len(idx))
	}
	out := tb.scratch[:len(idx)]
	tb.hash.H[t].HashMany(idx, out)
	return out
}
