package sketch

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/hashing"
)

// table is the d×s counter matrix shared by every hashing-based sketch
// in this package, together with its row hash functions. It is the
// in-memory realization of the stacked CM/CS-matrices of Definitions 1
// and 2: row t holds the sketching vector Π(h_t)x (or Ψ(h_t,r_t)x).
// Where the counters live is the plane's concern (see plane.go): the
// table binds one Plane to the hash family and exposes the read/write
// primitives the algorithms use.
type table struct {
	cfg   Config
	hash  hashing.Family
	plane Plane

	// tplane is the concrete tiled plane when the backend is
	// BackendTiled, nil otherwise. The hot paths branch on it once and
	// index its flat buffer directly (plane interface calls would cost
	// a dynamic dispatch per counter).
	tplane *tiledPlane

	// wrows is the plane's direct-write row view — non-nil only for
	// the dense backend. The update hot paths branch on it once and
	// mutate in place, exactly as the pre-plane code did; the fallback
	// routes through the plane's Add primitive.
	wrows [][]float64
	// rview is the current read view. For dense and mmap backends
	// (fixed == true) it is set once at construction and never goes
	// stale; the compressed backend re-materializes through the plane
	// on every read batch (cached inside the plane until the next
	// write).
	rview [][]float64
	fixed bool

	scratch []int // per-row bucket indexes, reused across UpdateBatch calls
}

// newTable builds a table on the requested backend. Invalid
// configurations return ErrConfig (wrapped); unusable backend state
// (mmap payloads) returns ErrBackendState.
func newTable(cfg Config, r *rand.Rand, be Backend) (table, error) {
	if err := cfg.Validate(); err != nil {
		return table{}, fmt.Errorf("%w: %w", ErrConfig, err)
	}
	// The hash family draws from r first under every backend, so two
	// sketches built from the same seed share hashes regardless of the
	// plane behind them — dense, compressed, and mmap replicas of one
	// configuration answer against the same bucket geometry. The
	// pairwise family draws exactly the coefficients it always did, so
	// HashPairwise sketches stay byte-identical to every prior release.
	var h hashing.Family
	var err error
	switch cfg.Hash {
	case HashTabulation:
		h, err = hashing.NewTabFamily(r, cfg.Depth, cfg.Rows)
	default:
		h, err = hashing.NewFamily(r, cfg.Depth, cfg.Rows)
	}
	if err != nil {
		return table{}, fmt.Errorf("%w: %w", ErrConfig, err)
	}
	var p Plane
	var tp *tiledPlane
	switch be.Kind {
	case BackendDense:
		p = newDensePlane(cfg.Depth, cfg.Rows)
	case BackendCompressed:
		p = newCBPlane(cfg.Depth, cfg.Rows, r)
	case BackendMmap:
		mp, err := newMmapPlane(cfg.Depth, cfg.Rows, be.Mapped)
		if err != nil {
			return table{}, err
		}
		p = mp
	case BackendTiled:
		tp = newTiledPlane(cfg.Depth, cfg.Rows)
		p = tp
	default:
		return table{}, fmt.Errorf("%w: unknown backend %v", ErrConfig, be.Kind)
	}
	tb := table{cfg: cfg, hash: h, plane: p, tplane: tp, wrows: p.WritableRows()}
	if be.Kind != BackendCompressed && be.Kind != BackendTiled {
		v, err := p.View()
		if err != nil {
			return table{}, err
		}
		tb.rview, tb.fixed = v, true
	}
	return tb, nil
}

func (tb *table) dim() int { return tb.cfg.N }

// words reports the storage cost of the counter plane in 64-bit words,
// rounding bit-packed backends up — dense and mmap planes report
// exactly Depth·Rows, the compressed plane reports the braid's actual
// footprint (its honest position on size-versus-accuracy plots).
func (tb *table) words() int { return (tb.plane.Bits() + 63) / 64 }

// backend reports the plane's kind.
func (tb *table) backend() BackendKind { return tb.plane.Kind() }

// rows returns the current read view of the counter matrix. Dense and
// mmap planes resolve to a cached field load; the compressed plane
// decodes on demand (panicking with an ErrPlaneDecode-wrapped error
// past the braid threshold — see planeRows).
//
//sketch:hotpath
func (tb *table) rows() [][]float64 {
	if tb.fixed {
		return tb.rview
	}
	return tb.planeRows()
}

// planeRows materializes the plane's view. Decode failure past the
// compressed plane's threshold panics: the read hot paths (Query,
// QueryBatch) have no error channel by design — the overload is
// detectable up front via Readable, and the panic value wraps
// ErrPlaneDecode for recover-based boundaries.
func (tb *table) planeRows() [][]float64 {
	v, err := tb.plane.View()
	if err != nil {
		panic(err)
	}
	return v
}

// readable reports whether the plane can currently serve reads —
// false only for a compressed plane loaded beyond its decoding
// threshold, with the ErrPlaneDecode-wrapped cause.
func (tb *table) readable() error {
	_, err := tb.plane.View()
	return err
}

// writable returns the direct-write rows, panicking on read-only
// planes. Only the dense backend is in-place writable; the algorithms
// that need read-modify-write semantics (conservative update, signed
// updates) reject the compressed backend at construction, so reaching
// this with nil wrows means an mmap plane absorbed an update call.
//
//sketch:hotpath
func (tb *table) writable() [][]float64 {
	if tb.wrows == nil {
		panic(ErrReadOnlyPlane)
	}
	return tb.wrows
}

// addSlow routes one linear add through the plane's Add primitive —
// the non-dense path of the linear algorithms' Update. Constraint
// violations (read-only plane, non-integer delta on the compressed
// plane) panic with their typed error, mirroring the panic-on-misuse
// contract of the in-range checks.
func (tb *table) addSlow(i int, delta float64) {
	if err := tb.plane.ValidateAdd(delta); err != nil {
		panic(err)
	}
	u := uint64(i)
	if ts := tb.hash.T; ts != nil {
		for t, h := range ts {
			if err := tb.plane.Add(t, h.Hash(u), delta); err != nil {
				panic(err)
			}
		}
		return
	}
	for t, h := range tb.hash.H {
		if err := tb.plane.Add(t, h.Hash(u), delta); err != nil {
			panic(err)
		}
	}
}

// addBatchSlow is addSlow over a batch: the whole batch is validated
// against the plane's add constraint before any counter moves, so a
// panic cannot leave the plane partially updated.
func (tb *table) addBatchSlow(idx []int, deltas []float64) {
	for _, d := range deltas {
		if err := tb.plane.ValidateAdd(d); err != nil {
			panic(err)
		}
	}
	for t := 0; t < tb.cfg.Depth; t++ {
		for j, b := range tb.hashRow(t, idx) {
			if err := tb.plane.Add(t, b, deltas[j]); err != nil {
				panic(err)
			}
		}
	}
}

// addPoint applies one linear add of delta at every row's bucket for
// coordinate i — the element-wise write primitive of the linear
// sketches. The layout (dense rows / tiled buffer / plane primitive)
// and the hash arm are each branched once, so the inner loops carry no
// per-element dispatch and the dense-pairwise path compiles exactly as
// it did before the family became pluggable.
//
//sketch:hotpath
func (tb *table) addPoint(i int, delta float64) {
	u := uint64(i)
	if w := tb.wrows; w != nil {
		if ts := tb.hash.T; ts != nil {
			for t, h := range ts {
				w[t][h.Hash(u)] += delta
			}
			return
		}
		for t, h := range tb.hash.H {
			w[t][h.Hash(u)] += delta
		}
		return
	}
	if tp := tb.tplane; tp != nil {
		tp.dirty = true
		buf := tp.buf
		if ts := tb.hash.T; ts != nil {
			for t, h := range ts {
				buf[tp.pos(t, h.Hash(u))] += delta
			}
			return
		}
		for t, h := range tb.hash.H {
			buf[tp.pos(t, h.Hash(u))] += delta
		}
		return
	}
	tb.addSlow(i, delta)
}

// addBatch applies the batched linear add row-major: each row's hash
// kernel runs over the whole batch (one table/coefficient load per
// row), then the row's counters absorb every element. Equivalent to
// the element-wise addPoint loop.
//
//sketch:hotpath
func (tb *table) addBatch(idx []int, deltas []float64) {
	if w := tb.wrows; w != nil {
		for t := range w {
			row := w[t]
			for j, b := range tb.hashRow(t, idx) {
				row[b] += deltas[j]
			}
		}
		return
	}
	if tp := tb.tplane; tp != nil {
		tp.dirty = true
		buf := tp.buf
		for t := 0; t < tb.cfg.Depth; t++ {
			for j, b := range tb.hashRow(t, idx) {
				buf[tp.pos(t, b)] += deltas[j]
			}
		}
		return
	}
	tb.addBatchSlow(idx, deltas)
}

// gatherRowValues hashes row t over tile into sc.Ints and writes the
// row's bucket values into o — the shared layout-dispatched gather
// behind every BatchRecovery.GatherRow.
//
//sketch:hotpath
func (tb *table) gatherRowValues(t int, tile []int, o []float64, sc *QScratch) {
	hb := sc.Ints[:len(tile)]
	tb.hash.HashMany(t, tile, hb)
	if tp := tb.tplane; tp != nil {
		buf := tp.buf
		for j, b := range hb {
			o[j] = buf[tp.pos(t, b)]
		}
		return
	}
	row := tb.rows()[t]
	for j, b := range hb {
		o[j] = row[b]
	}
}

// minPoint returns the minimum bucket value over rows for coordinate i
// — the element-wise Count-Min-family query, branched once on layout
// and hash arm.
//
//sketch:hotpath
func (tb *table) minPoint(i int) float64 {
	u := uint64(i)
	if tp := tb.tplane; tp != nil {
		buf := tp.buf
		m := buf[tp.pos(0, tb.hash.Hash(0, u))]
		for t := 1; t < tb.cfg.Depth; t++ {
			m = min(m, buf[tp.pos(t, tb.hash.Hash(t, u))])
		}
		return m
	}
	cells := tb.rows()
	if ts := tb.hash.T; ts != nil {
		m := cells[0][ts[0].Hash(u)]
		for t := 1; t < len(cells); t++ {
			m = min(m, cells[t][ts[t].Hash(u)])
		}
		return m
	}
	hs := tb.hash.H
	m := cells[0][hs[0].Hash(u)]
	for t := 1; t < len(cells); t++ {
		m = min(m, cells[t][hs[t].Hash(u)])
	}
	return m
}

// gatherPoint writes every row's bucket value for coordinate i into
// buf[t] — the element-wise gather of the median-family queries,
// branched once on layout and hash arm.
//
//sketch:hotpath
func (tb *table) gatherPoint(i int, buf []float64) {
	u := uint64(i)
	if tp := tb.tplane; tp != nil {
		pbuf := tp.buf
		for t := range buf {
			buf[t] = pbuf[tp.pos(t, tb.hash.Hash(t, u))]
		}
		return
	}
	cells := tb.rows()
	if ts := tb.hash.T; ts != nil {
		for t, h := range ts {
			buf[t] = cells[t][h.Hash(u)]
		}
		return
	}
	for t, h := range tb.hash.H {
		buf[t] = cells[t][h.Hash(u)]
	}
}

// sameShape reports whether two tables share shape and hash seeds, the
// precondition for a meaningful merge. Backends may differ: shape is
// about the sketched linear map, not the storage behind it.
func (tb *table) sameShape(o *table) bool {
	return tb.cfg == o.cfg && tb.hash.Equal(o.hash)
}

// mergeFrom adds o's counters into tb through the planes. Caller must
// have checked sameShape. Dense←dense is the flat cell loop it always
// was; compressed←compressed merges braid state exactly; read-only
// receivers return ErrReadOnlyPlane.
func (tb *table) mergeFrom(o *table) error {
	return tb.plane.MergeFrom(o.plane)
}

// marshalCells serializes the counter matrix to a byte slice (8 bytes
// per cell, little endian) — the wire cell layout every backend emits,
// so checkpoints restore across backends. The compressed plane must
// decode to serialize and fails past its threshold.
func (tb *table) marshalCells() ([]byte, error) {
	return tb.plane.MarshalCells()
}

// unmarshalCells overwrites the counter matrix from marshalCells
// output. Read-only planes reject it; the compressed plane re-inserts
// the cell totals (exact, but only for non-negative integer cells).
func (tb *table) unmarshalCells(buf []byte) error {
	return tb.plane.UnmarshalCells(buf)
}

// checkIndex panics on out-of-range coordinate indexes; sketches are
// internal infrastructure and an out-of-range index is a programmer
// error, not an input error.
func (tb *table) checkIndex(i int) {
	if i < 0 || i >= tb.cfg.N {
		panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, tb.cfg.N))
	}
}

// checkBatch validates a whole batch before any counter is touched, so
// a panic cannot leave the table partially updated.
func (tb *table) checkBatch(idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("sketch: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	for _, i := range idx {
		tb.checkIndex(i)
	}
}

// checkQueryBatch validates a whole query batch — matching slice
// lengths and in-range indexes — before any output is written.
func (tb *table) checkQueryBatch(idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("sketch: batch index count %d != output count %d", len(idx), len(out)))
	}
	for _, i := range idx {
		tb.checkIndex(i)
	}
}

// hashPoint writes h_t(u) for every row t into out — the element-wise
// companion of hashRow for the point paths that need every row's
// bucket of one coordinate, with the family arm branched once instead
// of once per row.
//
//sketch:hotpath
func (tb *table) hashPoint(u uint64, out []int) {
	if ts := tb.hash.T; ts != nil {
		for t, h := range ts {
			out[t] = h.Hash(u)
		}
		return
	}
	for t, h := range tb.hash.H {
		out[t] = h.Hash(u)
	}
}

// hashRow evaluates row t's hash over the whole batch into the shared
// scratch buffer and returns it. Valid until the next hashRow call.
func (tb *table) hashRow(t int, idx []int) []int {
	if cap(tb.scratch) < len(idx) {
		tb.scratch = make([]int, len(idx))
	}
	out := tb.scratch[:len(idx)]
	tb.hash.HashMany(t, idx, out)
	return out
}

// queryChunk is the internal tile width of the median-family
// QueryBatch implementations: the row-major gather fills a
// depth×queryChunk tile, then the per-element median reads it back
// column-major. At 256 elements the tile is a few KB — L1-resident for
// the strided read-back — while still amortizing each row's hash
// coefficients over hundreds of elements. Purely an iteration-order
// choice: results are bit-identical at any tile width.
const queryChunk = 256

// TileWidth returns the scratch length a QueryBatchMedian gather
// needs for a batch of n elements: the tile width, never more than
// the batch itself (a batch of one borrows one slot, not a full
// tile).
func TileWidth(n int) int {
	if n > queryChunk {
		return queryChunk
	}
	return n
}

// QScratch bundles the scratch buffers of one batched-query call,
// recycled through a sync.Pool so the serving paths run
// allocation-free in steady state. Ints and F1 are tile-width buffers
// for BatchRecovery.GatherRow implementations (bucket indexes and
// sign/weight coefficients); Bias carries the caller's bias estimate
// β̂ into GatherRow and Combine so the bias-aware recoveries need no
// closure capture. The buffers are valid only between GetQScratch and
// PutQScratch; they must never be retained past the call.
type QScratch struct {
	Ints []int
	F1   []float64
	Bias float64

	vb  []float64 // depth×tile row-major gather buffer
	buf []float64 // depth-length per-element column
}

// grow resizes the buffers for a depth×width query; growth stays out
// of the tagged hot paths, which only slice the grown buffers.
func (sc *QScratch) grow(depth, width int) {
	if cap(sc.Ints) < width {
		sc.Ints = make([]int, width)
	}
	if cap(sc.F1) < width {
		sc.F1 = make([]float64, width)
	}
	if cap(sc.vb) < depth*width {
		sc.vb = make([]float64, depth*width)
	}
	if cap(sc.buf) < depth {
		sc.buf = make([]float64, depth)
	}
}

var qscratchPool = sync.Pool{New: func() any { return new(QScratch) }}

// GetQScratch returns a pooled scratch with capacity for a
// depth×width batched query. Pair with PutQScratch.
func GetQScratch(depth, width int) *QScratch {
	sc := qscratchPool.Get().(*QScratch)
	sc.grow(depth, width)
	return sc
}

// PutQScratch returns a scratch to the pool. The caller must not
// touch sc or any slice of its buffers afterwards.
func PutQScratch(sc *QScratch) {
	sc.Bias = 0
	qscratchPool.Put(sc)
}

// BatchRecovery is the per-algorithm half of QueryBatchMedian: the
// row-major gather of one row's per-element contributions and the
// per-element collapse of the gathered column. Implementations are
// methods on the sketch types themselves (not adapter closures), so
// the interface value is a plain pointer and the batched paths stay
// allocation-free.
type BatchRecovery interface {
	// GatherRow writes row t's contribution for every element of tile
	// into o (len(o) == len(tile)), using sc.Ints/sc.F1 as tile-width
	// scratch and reading the bias estimate from sc.Bias.
	GatherRow(t int, tile []int, o []float64, sc *QScratch)
	// Combine collapses one element's depth values (row order) into
	// the estimate; vals may be reordered in place.
	Combine(vals []float64, sc *QScratch) float64
}

// QueryBatchMedian is the shared skeleton of every median-family
// QueryBatch (Count-Median, Count-Sketch, Deng–Rafiei, and the
// bias-aware recoveries in internal/core): it walks the batch in
// L1-resident tiles, calls r.GatherRow to write row t's per-element
// contribution for the whole tile (one hash/sign-coefficient load per
// row per tile), then reads each element's depth values back in row
// order and collapses them with r.Combine. Results are bit-identical
// to the element-wise loop that fills a depth buffer per element,
// because each element's values reach Combine in the same row order.
// Scratch comes from the package pool and every call borrows its own,
// so concurrent calls on a quiescent sketch are safe and the steady
// state allocates nothing.
//
//sketch:hotpath
func QueryBatchMedian(depth int, idx []int, out []float64, bias float64, r BatchRecovery) {
	cw := TileWidth(len(idx))
	sc := GetQScratch(depth, cw)
	defer PutQScratch(sc)
	sc.Bias = bias
	vb := sc.vb[:depth*cw]
	buf := sc.buf[:depth]
	for base := 0; base < len(idx); base += queryChunk {
		m := len(idx) - base
		if m > queryChunk {
			m = queryChunk
		}
		tile := idx[base : base+m]
		for t := 0; t < depth; t++ {
			r.GatherRow(t, tile, vb[t*m:(t+1)*m], sc)
		}
		for j := 0; j < m; j++ {
			for t := 0; t < depth; t++ {
				buf[t] = vb[t*m+j]
			}
			out[base+j] = r.Combine(buf, sc)
		}
	}
}

// minRows writes, for every batch element, the minimum bucket value
// over all rows into out — the shared row-major gather behind the
// Count-Min-family QueryBatch implementations. Per element the
// comparison sequence is exactly the element-wise Query's (row 0
// seeds, rows 1..d-1 compare with <), so the result is bit-identical.
// Scratch is borrowed from the package pool, not taken from
// tb.scratch, so concurrent calls on a table that is no longer being
// written are safe.
//
//sketch:hotpath
func (tb *table) minRows(idx []int, out []float64) {
	sc := GetQScratch(0, len(idx))
	defer PutQScratch(sc)
	hb := sc.Ints[:len(idx)]
	if tp := tb.tplane; tp != nil {
		buf := tp.buf
		for t := 0; t < tb.cfg.Depth; t++ {
			tb.hash.HashMany(t, idx, hb)
			if t == 0 {
				for j, b := range hb {
					out[j] = buf[tp.pos(0, b)]
				}
				continue
			}
			for j, b := range hb {
				// builtin min is branchless; a compare-and-assign
				// mispredicts on random counters.
				out[j] = min(out[j], buf[tp.pos(t, b)])
			}
		}
		return
	}
	cells := tb.rows()
	for t := range cells {
		row := cells[t]
		tb.hash.HashMany(t, idx, hb)
		if t == 0 {
			for j, b := range hb {
				out[j] = row[b]
			}
			continue
		}
		for j, b := range hb {
			out[j] = min(out[j], row[b])
		}
	}
}
