package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/hashing"
)

// table is the d×s counter matrix shared by every hashing-based sketch
// in this package, together with its row hash functions. It is the
// in-memory realization of the stacked CM/CS-matrices of Definitions 1
// and 2: row t holds the sketching vector Π(h_t)x (or Ψ(h_t,r_t)x).
type table struct {
	cfg   Config
	hash  hashing.Family
	cells [][]float64 // cells[t][b], t < Depth, b < Rows

	scratch []int // per-row bucket indexes, reused across UpdateBatch calls
}

func newTable(cfg Config, r *rand.Rand) table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cells := make([][]float64, cfg.Depth)
	for t := range cells {
		cells[t] = make([]float64, cfg.Rows)
	}
	return table{cfg: cfg, hash: hashing.NewFamily(r, cfg.Depth, cfg.Rows), cells: cells}
}

func (tb *table) dim() int   { return tb.cfg.N }
func (tb *table) words() int { return tb.cfg.Depth * tb.cfg.Rows }

// sameShape reports whether two tables share shape and hash seeds, the
// precondition for a meaningful merge.
func (tb *table) sameShape(o *table) bool {
	if tb.cfg != o.cfg {
		return false
	}
	for t := range tb.hash.H {
		if tb.hash.H[t] != o.hash.H[t] {
			return false
		}
	}
	return true
}

// mergeFrom adds o's cells into tb. Caller must have checked sameShape.
func (tb *table) mergeFrom(o *table) {
	for t := range tb.cells {
		row, orow := tb.cells[t], o.cells[t]
		for b := range row {
			row[b] += orow[b]
		}
	}
}

// marshalCells serializes the counter matrix to a byte slice (8 bytes
// per cell, little endian). Used by the distributed simulation to
// account communication in bytes.
func (tb *table) marshalCells() []byte {
	buf := make([]byte, 8*tb.cfg.Depth*tb.cfg.Rows)
	off := 0
	for t := range tb.cells {
		for _, v := range tb.cells[t] {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf
}

// unmarshalCells overwrites the counter matrix from marshalCells output.
func (tb *table) unmarshalCells(buf []byte) error {
	want := 8 * tb.cfg.Depth * tb.cfg.Rows
	if len(buf) != want {
		return fmt.Errorf("sketch: cell payload %d bytes, want %d", len(buf), want)
	}
	off := 0
	for t := range tb.cells {
		for b := range tb.cells[t] {
			tb.cells[t][b] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return nil
}

// checkIndex panics on out-of-range coordinate indexes; sketches are
// internal infrastructure and an out-of-range index is a programmer
// error, not an input error.
func (tb *table) checkIndex(i int) {
	if i < 0 || i >= tb.cfg.N {
		panic(fmt.Sprintf("sketch: index %d out of range [0,%d)", i, tb.cfg.N))
	}
}

// checkBatch validates a whole batch before any counter is touched, so
// a panic cannot leave the table partially updated.
func (tb *table) checkBatch(idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("sketch: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	for _, i := range idx {
		tb.checkIndex(i)
	}
}

// checkQueryBatch validates a whole query batch — matching slice
// lengths and in-range indexes — before any output is written.
func (tb *table) checkQueryBatch(idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("sketch: batch index count %d != output count %d", len(idx), len(out)))
	}
	for _, i := range idx {
		tb.checkIndex(i)
	}
}

// hashRow evaluates row t's hash over the whole batch into the shared
// scratch buffer and returns it. Valid until the next hashRow call.
func (tb *table) hashRow(t int, idx []int) []int {
	if cap(tb.scratch) < len(idx) {
		tb.scratch = make([]int, len(idx))
	}
	out := tb.scratch[:len(idx)]
	tb.hash.H[t].HashMany(idx, out)
	return out
}

// queryChunk is the internal tile width of the median-family
// QueryBatch implementations: the row-major gather fills a
// depth×queryChunk tile, then the per-element median reads it back
// column-major. At 256 elements the tile is a few KB — L1-resident for
// the strided read-back — while still amortizing each row's hash
// coefficients over hundreds of elements. Purely an iteration-order
// choice: results are bit-identical at any tile width.
const queryChunk = 256

// TileWidth returns the scratch length a QueryBatchMedian gather
// needs for a batch of n elements: the tile width, never more than
// the batch itself (a batch of one borrows one slot, not a full
// tile).
func TileWidth(n int) int {
	if n > queryChunk {
		return queryChunk
	}
	return n
}

// QScratch bundles the scratch buffers of one batched-query call,
// recycled through a sync.Pool so the serving paths run
// allocation-free in steady state. Ints and F1 are tile-width buffers
// for BatchRecovery.GatherRow implementations (bucket indexes and
// sign/weight coefficients); Bias carries the caller's bias estimate
// β̂ into GatherRow and Combine so the bias-aware recoveries need no
// closure capture. The buffers are valid only between GetQScratch and
// PutQScratch; they must never be retained past the call.
type QScratch struct {
	Ints []int
	F1   []float64
	Bias float64

	vb  []float64 // depth×tile row-major gather buffer
	buf []float64 // depth-length per-element column
}

// grow resizes the buffers for a depth×width query; growth stays out
// of the tagged hot paths, which only slice the grown buffers.
func (sc *QScratch) grow(depth, width int) {
	if cap(sc.Ints) < width {
		sc.Ints = make([]int, width)
	}
	if cap(sc.F1) < width {
		sc.F1 = make([]float64, width)
	}
	if cap(sc.vb) < depth*width {
		sc.vb = make([]float64, depth*width)
	}
	if cap(sc.buf) < depth {
		sc.buf = make([]float64, depth)
	}
}

var qscratchPool = sync.Pool{New: func() any { return new(QScratch) }}

// GetQScratch returns a pooled scratch with capacity for a
// depth×width batched query. Pair with PutQScratch.
func GetQScratch(depth, width int) *QScratch {
	sc := qscratchPool.Get().(*QScratch)
	sc.grow(depth, width)
	return sc
}

// PutQScratch returns a scratch to the pool. The caller must not
// touch sc or any slice of its buffers afterwards.
func PutQScratch(sc *QScratch) {
	sc.Bias = 0
	qscratchPool.Put(sc)
}

// BatchRecovery is the per-algorithm half of QueryBatchMedian: the
// row-major gather of one row's per-element contributions and the
// per-element collapse of the gathered column. Implementations are
// methods on the sketch types themselves (not adapter closures), so
// the interface value is a plain pointer and the batched paths stay
// allocation-free.
type BatchRecovery interface {
	// GatherRow writes row t's contribution for every element of tile
	// into o (len(o) == len(tile)), using sc.Ints/sc.F1 as tile-width
	// scratch and reading the bias estimate from sc.Bias.
	GatherRow(t int, tile []int, o []float64, sc *QScratch)
	// Combine collapses one element's depth values (row order) into
	// the estimate; vals may be reordered in place.
	Combine(vals []float64, sc *QScratch) float64
}

// QueryBatchMedian is the shared skeleton of every median-family
// QueryBatch (Count-Median, Count-Sketch, Deng–Rafiei, and the
// bias-aware recoveries in internal/core): it walks the batch in
// L1-resident tiles, calls r.GatherRow to write row t's per-element
// contribution for the whole tile (one hash/sign-coefficient load per
// row per tile), then reads each element's depth values back in row
// order and collapses them with r.Combine. Results are bit-identical
// to the element-wise loop that fills a depth buffer per element,
// because each element's values reach Combine in the same row order.
// Scratch comes from the package pool and every call borrows its own,
// so concurrent calls on a quiescent sketch are safe and the steady
// state allocates nothing.
//
//sketch:hotpath
func QueryBatchMedian(depth int, idx []int, out []float64, bias float64, r BatchRecovery) {
	cw := TileWidth(len(idx))
	sc := GetQScratch(depth, cw)
	defer PutQScratch(sc)
	sc.Bias = bias
	vb := sc.vb[:depth*cw]
	buf := sc.buf[:depth]
	for base := 0; base < len(idx); base += queryChunk {
		m := len(idx) - base
		if m > queryChunk {
			m = queryChunk
		}
		tile := idx[base : base+m]
		for t := 0; t < depth; t++ {
			r.GatherRow(t, tile, vb[t*m:(t+1)*m], sc)
		}
		for j := 0; j < m; j++ {
			for t := 0; t < depth; t++ {
				buf[t] = vb[t*m+j]
			}
			out[base+j] = r.Combine(buf, sc)
		}
	}
}

// minRows writes, for every batch element, the minimum bucket value
// over all rows into out — the shared row-major gather behind the
// Count-Min-family QueryBatch implementations. Per element the
// comparison sequence is exactly the element-wise Query's (row 0
// seeds, rows 1..d-1 compare with <), so the result is bit-identical.
// Scratch is borrowed from the package pool, not taken from
// tb.scratch, so concurrent calls on a table that is no longer being
// written are safe.
//
//sketch:hotpath
func (tb *table) minRows(idx []int, out []float64) {
	sc := GetQScratch(0, len(idx))
	defer PutQScratch(sc)
	hb := sc.Ints[:len(idx)]
	for t := range tb.cells {
		row := tb.cells[t]
		tb.hash.H[t].HashMany(idx, hb)
		if t == 0 {
			for j, b := range hb {
				out[j] = row[b]
			}
			continue
		}
		for j, b := range hb {
			if v := row[b]; v < out[j] {
				out[j] = v
			}
		}
	}
}
