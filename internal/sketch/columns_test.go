package sketch

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// π must count every coordinate exactly once per row (columns of a
// CM-matrix each have exactly one 1).
func TestColumnCountsSumToN(t *testing.T) {
	cfg := Config{N: 5000, Rows: 64, Depth: 4}
	cm := must(NewCountMedian(cfg, rand.New(rand.NewSource(1))))
	for tr := 0; tr < cfg.Depth; tr++ {
		pi := cm.ColumnCounts(tr)
		if len(pi) != cfg.Rows {
			t.Fatalf("row %d: len(pi) = %d", tr, len(pi))
		}
		var sum float64
		for _, v := range pi {
			sum += v
		}
		if sum != float64(cfg.N) {
			t.Errorf("row %d: sum(pi) = %f, want %d", tr, sum, cfg.N)
		}
	}
	// Cached: same slice on second call.
	if &cm.ColumnCounts(0)[0] != &cm.ColumnCounts(0)[0] {
		t.Error("ColumnCounts not cached")
	}
}

// π must agree with the bucket assignment: updating coordinate i by 1
// lands in bucket BucketIndex(t, i), and that bucket's π counts i.
func TestColumnCountsMatchBucketIndex(t *testing.T) {
	cfg := Config{N: 300, Rows: 16, Depth: 3}
	cm := must(NewCountMedian(cfg, rand.New(rand.NewSource(2))))
	for tr := 0; tr < cfg.Depth; tr++ {
		counts := make([]float64, cfg.Rows)
		for i := 0; i < cfg.N; i++ {
			counts[cm.BucketIndex(tr, i)]++
		}
		pi := cm.ColumnCounts(tr)
		for b := range counts {
			if counts[b] != pi[b] {
				t.Fatalf("row %d bucket %d: recount %f != pi %f", tr, b, counts[b], pi[b])
			}
		}
	}
}

// Sketching the all-ones vector must produce exactly π in every row:
// Π(h)·1 = π by definition.
func TestColumnCountsViaAllOnes(t *testing.T) {
	cfg := Config{N: 1000, Rows: 32, Depth: 5}
	cm := must(NewCountMedian(cfg, rand.New(rand.NewSource(3))))
	for i := 0; i < cfg.N; i++ {
		cm.Update(i, 1)
	}
	for tr := 0; tr < cfg.Depth; tr++ {
		pi := cm.ColumnCounts(tr)
		for b := 0; b < cfg.Rows; b++ {
			if got := cm.Bucket(tr, b); got != pi[b] {
				t.Fatalf("row %d bucket %d: Π·1 = %f != π = %f", tr, b, got, pi[b])
			}
		}
	}
}

// Likewise Ψ(h,r)·1 = ψ for the Count-Sketch.
func TestSignedColumnSumsViaAllOnes(t *testing.T) {
	cfg := Config{N: 1000, Rows: 32, Depth: 5}
	cs := must(NewCountSketch(cfg, rand.New(rand.NewSource(4))))
	for i := 0; i < cfg.N; i++ {
		cs.Update(i, 1)
	}
	for tr := 0; tr < cfg.Depth; tr++ {
		psi := cs.SignedColumnSums(tr)
		if len(psi) != cfg.Rows {
			t.Fatalf("row %d: len(psi) = %d", tr, len(psi))
		}
		for b := 0; b < cfg.Rows; b++ {
			if got := cs.Bucket(tr, b); math.Abs(got-psi[b]) > 1e-12 {
				t.Fatalf("row %d bucket %d: Ψ·1 = %f != ψ = %f", tr, b, got, psi[b])
			}
		}
	}
}

// ψ must be consistent with SignOf and BucketIndex.
func TestSignedColumnSumsMatchSigns(t *testing.T) {
	cfg := Config{N: 500, Rows: 16, Depth: 3}
	cs := must(NewCountSketch(cfg, rand.New(rand.NewSource(5))))
	for tr := 0; tr < cfg.Depth; tr++ {
		sums := make([]float64, cfg.Rows)
		for i := 0; i < cfg.N; i++ {
			sums[cs.BucketIndex(tr, i)] += cs.SignOf(tr, i)
			if s := cs.SignOf(tr, i); s != 1 && s != -1 {
				t.Fatalf("SignOf(%d,%d) = %f", tr, i, s)
			}
		}
		psi := cs.SignedColumnSums(tr)
		for b := range sums {
			if sums[b] != psi[b] {
				t.Fatalf("row %d bucket %d: recomputed %f != psi %f", tr, b, sums[b], psi[b])
			}
		}
	}
}

func TestCountMinMarshalRoundTrip(t *testing.T) {
	cfg := Config{N: 200, Rows: 16, Depth: 3}
	a := must(NewCountMin(cfg, rand.New(rand.NewSource(6))))
	for i := 0; i < 500; i++ {
		a.Update(i%cfg.N, 2)
	}
	b := must(NewCountMin(cfg, rand.New(rand.NewSource(6))))
	if err := b.Unmarshal(must(a.Marshal())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i++ {
		if a.Query(i) != b.Query(i) {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if a.Words() != cfg.Rows*cfg.Depth {
		t.Errorf("Words = %d", a.Words())
	}
}

func TestDimAccessors(t *testing.T) {
	cfg := Config{N: 77, Rows: 8, Depth: 2}
	r := rand.New(rand.NewSource(7))
	for name, s := range map[string]Sketch{
		"cmcu":  must(NewCMCU(cfg, r)),
		"cmlcu": must(NewCMLCU(cfg, DefaultCMLBase, r)),
		"cs":    must(NewCountSketch(cfg, r)),
	} {
		if s.Dim() != 77 {
			t.Errorf("%s: Dim = %d", name, s.Dim())
		}
		if s.Words() < cfg.Rows*cfg.Depth {
			t.Errorf("%s: Words = %d", name, s.Words())
		}
	}
}

func TestDengRafieiRejectsOneRow(t *testing.T) {
	if _, err := NewDengRafiei(Config{N: 10, Rows: 1, Depth: 2}, rand.New(rand.NewSource(8))); !errors.Is(err, ErrConfig) {
		t.Fatalf("Rows < 2: got %v, want ErrConfig", err)
	}
}
