package sketch

import (
	"encoding/binary"
	"math"
)

// tileWidth is the bucket-tile size of the tiled plane: 64 buckets ×
// 8 bytes = 512 B per row segment, so one tile's segment spans 8 cache
// lines and a batch element's d counters land within one tile column.
const tileWidth = 64

// tiledPlane is the cache-blocked, depth-major counter layout: buckets
// are grouped into tiles of tileWidth, and within a tile all d rows sit
// contiguously —
//
//	buf[(b/64)·(pdepth·64) + t·64 + (b mod 64)]  holds cells[t][b].
//
// The depth is padded to odd (pdepth) so consecutive tiles stride an
// odd multiple of 8 cache lines: a row's per-tile segments then cycle
// through all 64 L1 sets instead of aliasing into a quarter of them.
// It is a pure layout transformation — every value equals the dense
// plane's cell bit for bit — so the tiled backend changes iteration
// cost, never answers.
type tiledPlane struct {
	depth, rows int
	pdepth      int // depth padded to odd — see layout note above
	buf         []float64

	// cache is a lazily materialized row-major view for the cold
	// readers (column caches, merges into other backends); the hot
	// paths read buf directly through pos. dirty is set by every write
	// — including the table's direct-buf fast paths — and cleared when
	// the cache is rebuilt.
	cache [][]float64
	dirty bool
}

func newTiledPlane(depth, rows int) *tiledPlane {
	pd := depth
	if pd%2 == 0 {
		pd++
	}
	tiles := (rows + tileWidth - 1) / tileWidth
	return &tiledPlane{
		depth:  depth,
		rows:   rows,
		pdepth: pd,
		buf:    make([]float64, tiles*pd*tileWidth),
		dirty:  true,
	}
}

// pos returns the buf index of cells[t][b].
//
//sketch:hotpath
func (p *tiledPlane) pos(t, b int) int {
	return (b>>6)*(p.pdepth<<6) + (t << 6) + (b & 63)
}

func (p *tiledPlane) Kind() BackendKind { return BackendTiled }

// View materializes (and caches) a row-major copy of the counters for
// cold readers. The cache is rebuilt only after a write; hot paths
// never come through here — they index buf via pos.
func (p *tiledPlane) View() ([][]float64, error) {
	if p.cache == nil {
		backing := make([]float64, p.depth*p.rows)
		cache := make([][]float64, p.depth)
		for t := range cache {
			cache[t] = backing[t*p.rows : (t+1)*p.rows]
		}
		p.cache = cache
	}
	if p.dirty {
		for t := 0; t < p.depth; t++ {
			row := p.cache[t]
			for b := range row {
				row[b] = p.buf[p.pos(t, b)]
			}
		}
		p.dirty = false
	}
	return p.cache, nil
}

// WritableRows returns nil: the tiled layout has no row-major slices to
// hand out, so in-place read-modify-write algorithms (conservative
// update) reject this backend at construction and the linear hot paths
// write buf directly through the table.
func (p *tiledPlane) WritableRows() [][]float64 { return nil }

func (p *tiledPlane) ValidateAdd(float64) error { return nil }

// Bits reports the resident footprint including the odd-depth padding —
// the honest position of the tiled layout on size-versus-accuracy
// plots.
func (p *tiledPlane) Bits() int { return 64 * len(p.buf) }

func (p *tiledPlane) Add(t, b int, delta float64) error {
	p.buf[p.pos(t, b)] += delta
	p.dirty = true
	return nil
}

// MergeFrom adds any readable plane's counters. Tiled←tiled with the
// same shape folds the flat buffers directly (padding slots are zero on
// both sides); any other source merges through its row-major view.
func (p *tiledPlane) MergeFrom(o Plane) error {
	if ot, ok := o.(*tiledPlane); ok && ot.depth == p.depth && ot.rows == p.rows {
		for i, v := range ot.buf {
			p.buf[i] += v
		}
		p.dirty = true
		return nil
	}
	ov, err := o.View()
	if err != nil {
		return err
	}
	for t := 0; t < p.depth; t++ {
		orow := ov[t]
		for b := range orow {
			p.buf[p.pos(t, b)] += orow[b]
		}
	}
	p.dirty = true
	return nil
}

// MarshalCells emits the shared row-major wire cell layout — the tiled
// geometry is an in-memory concern only, so tiled checkpoints
// interoperate with every other backend.
func (p *tiledPlane) MarshalCells() ([]byte, error) {
	buf := make([]byte, 8*p.depth*p.rows)
	off := 0
	for t := 0; t < p.depth; t++ {
		for b := 0; b < p.rows; b++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(p.buf[p.pos(t, b)]))
			off += 8
		}
	}
	return buf, nil
}

func (p *tiledPlane) UnmarshalCells(buf []byte) error {
	if err := checkCellPayload(buf, p.depth, p.rows); err != nil {
		return err
	}
	off := 0
	for t := 0; t < p.depth; t++ {
		for b := 0; b < p.rows; b++ {
			p.buf[p.pos(t, b)] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	p.dirty = true
	return nil
}
