package distributed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sketch"
)

func TestSplitConservesMass(t *testing.T) {
	global := []float64{10, 0, -4, 7.5, 3}
	parts := Split(global, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	for i := range global {
		var sum float64
		for _, p := range parts {
			sum += p[i]
		}
		if math.Abs(sum-global[i]) > 1e-12 {
			t.Errorf("coordinate %d: split sum %f != %f", i, sum, global[i])
		}
	}
}

func TestSplitPanicsOnBadSites(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split([]float64{1}, 0)
}

func TestRunErrors(t *testing.T) {
	mk := func() *sketch.CountMedian {
		return sketch.NewCountMedian(sketch.Config{N: 10, Rows: 8, Depth: 3}, rand.New(rand.NewSource(1)))
	}
	merge := func(d, s *sketch.CountMedian) error { return d.MergeFrom(s) }
	if _, _, err := Run(mk, merge, nil); err == nil {
		t.Error("no sites should error")
	}
	if _, _, err := Run(mk, merge, [][]float64{make([]float64, 10), make([]float64, 5)}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, _, err := Run(mk, merge, [][]float64{make([]float64, 7)}); err == nil {
		t.Error("sketch/vector dim mismatch should error")
	}
}

// Distributed recovery must equal centralized sketching of the global
// vector, for the classical and the bias-aware sketches.
func TestDistributedEqualsCentralized(t *testing.T) {
	const n, sites = 3000, 5
	r := rand.New(rand.NewSource(2))
	global := make([]float64, n)
	for i := range global {
		global[i] = math.Round(r.NormFloat64()*10 + 80)
	}
	parts := Split(global, sites)

	t.Run("countsketch", func(t *testing.T) {
		cfg := sketch.Config{N: n, Rows: 128, Depth: 9}
		mk := func() *sketch.CountSketch {
			return sketch.NewCountSketch(cfg, rand.New(rand.NewSource(3)))
		}
		merged, st, err := Run(mk, func(d, s *sketch.CountSketch) error { return d.MergeFrom(s) }, parts)
		if err != nil {
			t.Fatal(err)
		}
		central := mk()
		sketch.SketchVector(central, global)
		for i := 0; i < n; i += 61 {
			if a, b := central.Query(i), merged.Query(i); math.Abs(a-b) > 1e-6 {
				t.Fatalf("query %d: centralized %f distributed %f", i, a, b)
			}
		}
		if st.Sites != sites || st.TotalCommWords != sites*central.Words() {
			t.Errorf("bad stats %+v", st)
		}
		if st.CompressionFactor <= 1 {
			t.Errorf("sketching should compress: factor %f", st.CompressionFactor)
		}
	})

	t.Run("l2sr", func(t *testing.T) {
		cfg := core.L2Config{N: n, K: 16}
		mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(4))) }
		merged, _, err := Run(mk, func(d, s *core.L2SR) error { return d.MergeFrom(s) }, parts)
		if err != nil {
			t.Fatal(err)
		}
		central := mk()
		sketch.SketchVector(central, global)
		if math.Abs(central.Bias()-merged.Bias()) > 1e-9 {
			t.Fatalf("bias: centralized %f distributed %f", central.Bias(), merged.Bias())
		}
		for i := 0; i < n; i += 61 {
			if a, b := central.Query(i), merged.Query(i); math.Abs(a-b) > 1e-6 {
				t.Fatalf("query %d: centralized %f distributed %f", i, a, b)
			}
		}
	})

	t.Run("l1sr", func(t *testing.T) {
		cfg := core.L1Config{N: n, K: 16, SampleCount: 128}
		mk := func() *core.L1SR { return core.NewL1SR(cfg, rand.New(rand.NewSource(5))) }
		merged, _, err := Run(mk, func(d, s *core.L1SR) error { return d.MergeFrom(s) }, parts)
		if err != nil {
			t.Fatal(err)
		}
		central := mk()
		sketch.SketchVector(central, global)
		for i := 0; i < n; i += 61 {
			if a, b := central.Query(i), merged.Query(i); math.Abs(a-b) > 1e-6 {
				t.Fatalf("query %d: centralized %f distributed %f", i, a, b)
			}
		}
	})
}

func TestMergeFailurePropagates(t *testing.T) {
	// Sites with different seeds produce incompatible sketches.
	seed := int64(0)
	mk := func() *sketch.CountMedian {
		seed++
		return sketch.NewCountMedian(sketch.Config{N: 10, Rows: 8, Depth: 3}, rand.New(rand.NewSource(seed)))
	}
	parts := [][]float64{make([]float64, 10), make([]float64, 10)}
	_, _, err := Run(mk, func(d, s *sketch.CountMedian) error { return d.MergeFrom(s) }, parts)
	if err == nil {
		t.Error("incompatible sites should propagate a merge error")
	}
}
