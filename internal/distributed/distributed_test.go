package distributed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
)

func TestSplitConservesMass(t *testing.T) {
	global := []float64{10, 0, -4, 7.5, 3}
	parts := Split(global, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	for i := range global {
		var sum float64
		for _, p := range parts {
			sum += p[i]
		}
		if math.Abs(sum-global[i]) > 1e-12 {
			t.Errorf("coordinate %d: split sum %f != %f", i, sum, global[i])
		}
	}
}

func TestSplitPanicsOnBadSites(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split([]float64{1}, 0)
}

func TestRunErrors(t *testing.T) {
	desc := codec.Desc{Algo: "countmedian", N: 10, S: 8, D: 2, Seed: 1}
	if _, _, err := Run(desc, nil); err == nil {
		t.Error("no sites should error")
	}
	if _, _, err := Run(desc, [][]float64{make([]float64, 10), make([]float64, 5)}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, _, err := Run(desc, [][]float64{make([]float64, 7)}); err == nil {
		t.Error("sketch/vector dim mismatch should error")
	}
	bogus := desc
	bogus.Algo = "no-such-algo"
	if _, _, err := Run(bogus, [][]float64{make([]float64, 10)}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

// Non-linear algorithms cannot participate in the distributed model at
// all — the site sketches have no meaningful sum — and exact would
// ship the raw vector, defeating the sketch. Both are rejected up
// front.
func TestRunRejectsUnshippableAlgorithms(t *testing.T) {
	for _, algo := range []string{"cmcu", "cmlcu", "exact"} {
		desc := codec.Desc{Algo: algo, N: 10, S: 8, D: 2, Seed: 1}
		if _, _, err := Run(desc, [][]float64{make([]float64, 10)}); err == nil {
			t.Errorf("%s: Run should refuse", algo)
		}
	}
}

// Distributed recovery must equal centralized sketching of the global
// vector, for the classical and the bias-aware sketches — with every
// site→coordinator hop going through encoded bytes.
func TestDistributedEqualsCentralized(t *testing.T) {
	const n, sites = 3000, 5
	r := rand.New(rand.NewSource(2))
	global := make([]float64, n)
	for i := range global {
		global[i] = math.Round(r.NormFloat64()*10 + 80)
	}
	parts := Split(global, sites)

	for _, tc := range []struct {
		name string
		desc codec.Desc
	}{
		{"countsketch", codec.Desc{Algo: "countsketch", N: n, S: 128, D: 8, Seed: 3}},
		{"l2sr", codec.Desc{Algo: "l2sr", N: n, S: 128, D: 2, Seed: 4}},
		{"l1sr", codec.Desc{Algo: "l1sr", N: n, S: 128, D: 2, Seed: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			merged, st, err := Run(tc.desc, parts)
			if err != nil {
				t.Fatal(err)
			}
			central, err := registry.SafeNew(tc.desc.Algo, tc.desc.Shape())
			if err != nil {
				t.Fatal(err)
			}
			if err := sketch.SketchVector(central, global); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i += 61 {
				if a, b := central.Query(i), merged.Query(i); math.Abs(a-b) > 1e-6 {
					t.Fatalf("query %d: centralized %f distributed %f", i, a, b)
				}
			}
			if st.Sites != sites || st.TotalCommWords != sites*central.Words() {
				t.Errorf("bad stats %+v", st)
			}
			if st.CommBytes <= 0 {
				t.Errorf("no bytes shipped: %+v", st)
			}
			if st.CompressionFactor <= 1 {
				t.Errorf("sketching should compress: factor %f", st.CompressionFactor)
			}
		})
	}

	t.Run("l2sr bias survives shipping", func(t *testing.T) {
		desc := codec.Desc{Algo: "l2sr", N: n, S: 128, D: 2, Seed: 4}
		merged, _, err := Run(desc, parts)
		if err != nil {
			t.Fatal(err)
		}
		central, err := registry.SafeNew(desc.Algo, desc.Shape())
		if err != nil {
			t.Fatal(err)
		}
		if err := sketch.SketchVector(central, global); err != nil {
			t.Fatal(err)
		}
		cb := central.(interface{ Bias() float64 }).Bias()
		mb := merged.(interface{ Bias() float64 }).Bias()
		if math.Abs(cb-mb) > 1e-9 {
			t.Fatalf("bias: centralized %f distributed %f", cb, mb)
		}
	})
}
