package distributed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

func TestMonitorConfigValidate(t *testing.T) {
	if (MonitorConfig{Sites: 0, SyncEvery: 1}).Validate() == nil {
		t.Error("zero sites should fail")
	}
	if (MonitorConfig{Sites: 1, SyncEvery: 0}).Validate() == nil {
		t.Error("zero sync interval should fail")
	}
	if (MonitorConfig{Sites: 2, SyncEvery: 10}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func mkStreams(sites, perSite, n int, seed int64) ([][]stream.Update, []float64) {
	r := rand.New(rand.NewSource(seed))
	streams := make([][]stream.Update, sites)
	global := make([]float64, n)
	for p := range streams {
		us := make([]stream.Update, perSite)
		for u := range us {
			us[u] = stream.Update{I: r.Intn(n), Delta: float64(1 + r.Intn(4))}
			global[us[u].I] += us[u].Delta
		}
		streams[p] = us
	}
	return streams, global
}

func TestMonitorMatchesCentralized(t *testing.T) {
	const n, sites, perSite = 4000, 4, 6000
	streams, global := mkStreams(sites, perSite, n, 1)
	cfg := core.L2Config{N: n, K: 32, UseBiasHeap: true}
	mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(2))) }
	merge := func(d, s *core.L2SR) error { return d.MergeFrom(s) }

	rounds := 0
	final, st, err := Monitor(MonitorConfig{Sites: sites, SyncEvery: 1000},
		mk, merge, streams, func(round int, _ *core.L2SR) { rounds = round })
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesApplied != sites*perSite {
		t.Errorf("applied %d updates, want %d", st.UpdatesApplied, sites*perSite)
	}
	if rounds != st.Rounds || st.Rounds != 6 {
		t.Errorf("rounds = %d (callback %d), want 6", st.Rounds, rounds)
	}
	if st.CommWords != st.Rounds*sites*mk().Words() {
		t.Errorf("CommWords = %d, want %d", st.CommWords, st.Rounds*sites*mk().Words())
	}

	central := mk()
	for i, v := range global {
		if v != 0 {
			central.Update(i, v)
		}
	}
	for i := 0; i < n; i += 61 {
		if a, b := central.Query(i), final.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: central %f monitored %f", i, a, b)
		}
	}
}

// Mid-run coordinator states must track the global prefix: error
// against the running exact vector should stay bounded at every round.
func TestMonitorIntermediateRounds(t *testing.T) {
	const n, sites, perSite = 2000, 3, 3000
	streams, _ := mkStreams(sites, perSite, n, 3)
	cfg := core.L2Config{N: n, K: 64, UseBiasHeap: true}
	mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(4))) }

	// Track the exact prefix as rounds complete.
	exactAt := func(round int) []float64 {
		x := make([]float64, n)
		for p := 0; p < sites; p++ {
			upTo := round * 1000
			if upTo > len(streams[p]) {
				upTo = len(streams[p])
			}
			for _, u := range streams[p][:upTo] {
				x[u.I] += u.Delta
			}
		}
		return x
	}

	_, _, err := Monitor(MonitorConfig{Sites: sites, SyncEvery: 1000},
		mk, func(d, s *core.L2SR) error { return d.MergeFrom(s) }, streams,
		func(round int, coord *core.L2SR) {
			x := exactAt(round)
			var worst float64
			for i := 0; i < n; i += 37 {
				if e := math.Abs(coord.Query(i) - x[i]); e > worst {
					worst = e
				}
			}
			// Bucket noise at k=64, s=256: sqrt(2000/256)·σ ≈ small;
			// generous cap to keep the test robust.
			if worst > 50 {
				t.Errorf("round %d: worst tracked error %f", round, worst)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMonitorErrors(t *testing.T) {
	cfg := core.L2Config{N: 100, K: 4}
	mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(5))) }
	merge := func(d, s *core.L2SR) error { return d.MergeFrom(s) }
	if _, _, err := Monitor(MonitorConfig{Sites: 0, SyncEvery: 1}, mk, merge, nil, nil); err == nil {
		t.Error("bad config should fail")
	}
	if _, _, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 1}, mk, merge,
		make([][]stream.Update, 3), nil); err == nil {
		t.Error("stream/site mismatch should fail")
	}
	// Incompatible site sketches (factory with changing seeds).
	seed := int64(0)
	badMk := func() *core.L2SR {
		seed++
		return core.NewL2SR(cfg, rand.New(rand.NewSource(seed)))
	}
	streams := [][]stream.Update{{{I: 1, Delta: 1}}, {{I: 2, Delta: 1}}}
	if _, _, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 1}, badMk, merge, streams, nil); err == nil {
		t.Error("incompatible sites should fail")
	}
}

func TestMonitorEmptyStreams(t *testing.T) {
	cfg := core.L2Config{N: 100, K: 4}
	mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(6))) }
	final, st, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 10}, mk,
		func(d, s *core.L2SR) error { return d.MergeFrom(s) },
		[][]stream.Update{{}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.UpdatesApplied != 0 {
		t.Errorf("empty run stats %+v", st)
	}
	if final.Query(0) != 0 {
		t.Error("empty coordinator should answer 0")
	}
}

func TestMonitorUnevenStreams(t *testing.T) {
	// One site has far more data; rounds continue until all drained.
	const n = 500
	cfg := core.L2Config{N: n, K: 8}
	mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(7))) }
	streams := [][]stream.Update{
		make([]stream.Update, 2500),
		make([]stream.Update, 100),
	}
	for p := range streams {
		for u := range streams[p] {
			streams[p][u] = stream.Update{I: (p*7 + u) % n, Delta: 1}
		}
	}
	final, st, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 1000}, mk,
		func(d, s *core.L2SR) error { return d.MergeFrom(s) }, streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesApplied != 2600 {
		t.Errorf("applied %d, want 2600", st.UpdatesApplied)
	}
	if st.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", st.Rounds)
	}
	var total float64
	for i := 0; i < n; i++ {
		total += final.Query(i)
	}
	if math.Abs(total-2600) > 50 {
		t.Errorf("total recovered mass %f, want ≈2600", total)
	}
}
