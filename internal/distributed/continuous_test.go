package distributed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func TestMonitorConfigValidate(t *testing.T) {
	if (MonitorConfig{Sites: 0, SyncEvery: 1}).Validate() == nil {
		t.Error("zero sites should fail")
	}
	if (MonitorConfig{Sites: 1, SyncEvery: 0}).Validate() == nil {
		t.Error("zero sync interval should fail")
	}
	if (MonitorConfig{Sites: 2, SyncEvery: 10}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func mkStreams(sites, perSite, n int, seed int64) ([][]stream.Update, []float64) {
	r := rand.New(rand.NewSource(seed))
	streams := make([][]stream.Update, sites)
	global := make([]float64, n)
	for p := range streams {
		us := make([]stream.Update, perSite)
		for u := range us {
			us[u] = stream.Update{I: r.Intn(n), Delta: float64(1 + r.Intn(4))}
			global[us[u].I] += us[u].Delta
		}
		streams[p] = us
	}
	return streams, global
}

func TestMonitorMatchesCentralized(t *testing.T) {
	const n, sites, perSite = 4000, 4, 6000
	streams, global := mkStreams(sites, perSite, n, 1)
	desc := codec.Desc{Algo: "l2sr", N: n, S: 128, D: 1, Seed: 2}

	rounds := 0
	final, st, err := Monitor(MonitorConfig{Sites: sites, SyncEvery: 1000},
		desc, streams, func(round int, _ sketch.Sketch) { rounds = round })
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesApplied != sites*perSite {
		t.Errorf("applied %d updates, want %d", st.UpdatesApplied, sites*perSite)
	}
	if rounds != st.Rounds || st.Rounds != 6 {
		t.Errorf("rounds = %d (callback %d), want 6", st.Rounds, rounds)
	}
	perSketch := final.Words()
	if st.CommWords != st.Rounds*sites*perSketch {
		t.Errorf("CommWords = %d, want %d", st.CommWords, st.Rounds*sites*perSketch)
	}
	if st.CommBytes <= 0 {
		t.Errorf("no bytes shipped: %+v", st)
	}

	central, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range global {
		if v != 0 {
			central.Update(i, v)
		}
	}
	for i := 0; i < n; i += 61 {
		if a, b := central.Query(i), final.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: central %f monitored %f", i, a, b)
		}
	}
}

// Mid-run coordinator states must track the global prefix: error
// against the running exact vector should stay bounded at every round.
func TestMonitorIntermediateRounds(t *testing.T) {
	const n, sites, perSite = 2000, 3, 3000
	streams, _ := mkStreams(sites, perSite, n, 3)
	desc := codec.Desc{Algo: "l2sr", N: n, S: 256, D: 1, Seed: 4}

	// Track the exact prefix as rounds complete.
	exactAt := func(round int) []float64 {
		x := make([]float64, n)
		for p := 0; p < sites; p++ {
			upTo := round * 1000
			if upTo > len(streams[p]) {
				upTo = len(streams[p])
			}
			for _, u := range streams[p][:upTo] {
				x[u.I] += u.Delta
			}
		}
		return x
	}

	_, _, err := Monitor(MonitorConfig{Sites: sites, SyncEvery: 1000},
		desc, streams,
		func(round int, coord sketch.Sketch) {
			x := exactAt(round)
			var worst float64
			for i := 0; i < n; i += 37 {
				if e := math.Abs(coord.Query(i) - x[i]); e > worst {
					worst = e
				}
			}
			// Bucket noise at k=64, s=256: sqrt(2000/256)·σ ≈ small;
			// generous cap to keep the test robust.
			if worst > 50 {
				t.Errorf("round %d: worst tracked error %f", round, worst)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMonitorErrors(t *testing.T) {
	desc := codec.Desc{Algo: "l2sr", N: 100, S: 16, D: 1, Seed: 5}
	if _, _, err := Monitor(MonitorConfig{Sites: 0, SyncEvery: 1}, desc, nil, nil); err == nil {
		t.Error("bad config should fail")
	}
	if _, _, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 1}, desc,
		make([][]stream.Update, 3), nil); err == nil {
		t.Error("stream/site mismatch should fail")
	}
	streams := [][]stream.Update{{{I: 1, Delta: 1}}, {{I: 2, Delta: 1}}}
	for _, algo := range []string{"cmcu", "exact", "no-such-algo"} {
		bad := desc
		bad.Algo = algo
		if _, _, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 1}, bad, streams, nil); err == nil {
			t.Errorf("%s: Monitor should refuse", algo)
		}
	}
}

func TestMonitorEmptyStreams(t *testing.T) {
	desc := codec.Desc{Algo: "l2sr", N: 100, S: 16, D: 1, Seed: 6}
	final, st, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 10}, desc,
		[][]stream.Update{{}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.UpdatesApplied != 0 {
		t.Errorf("empty run stats %+v", st)
	}
	if final.Query(0) != 0 {
		t.Error("empty coordinator should answer 0")
	}
}

func TestMonitorUnevenStreams(t *testing.T) {
	// One site has far more data; rounds continue until all drained.
	const n = 500
	desc := codec.Desc{Algo: "l2sr", N: n, S: 32, D: 1, Seed: 7}
	streams := [][]stream.Update{
		make([]stream.Update, 2500),
		make([]stream.Update, 100),
	}
	for p := range streams {
		for u := range streams[p] {
			streams[p][u] = stream.Update{I: (p*7 + u) % n, Delta: 1}
		}
	}
	final, st, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 1000}, desc, streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesApplied != 2600 {
		t.Errorf("applied %d, want 2600", st.UpdatesApplied)
	}
	if st.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", st.Rounds)
	}
	var total float64
	for i := 0; i < n; i++ {
		total += final.Query(i)
	}
	if math.Abs(total-2600) > 50 {
		t.Errorf("total recovered mass %f, want ≈2600", total)
	}
}

// The zero-round path (every stream empty) must hand back a usable
// empty coordinator and must propagate — not discard — a constructor
// error: the old `coordinator, _ = SafeNew(...)` could return a nil
// coordinator with a nil error and move the crash to the caller's
// first Query.
func TestMonitorEmptyStreamsCoordinatorNeverNil(t *testing.T) {
	desc := codec.Desc{Algo: "countmin", N: 100, S: 16, D: 2, Seed: 1}
	coord, st, err := Monitor(MonitorConfig{Sites: 2, SyncEvery: 10},
		desc, make([][]stream.Update, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.UpdatesApplied != 0 || st.CommBytes != 0 {
		t.Fatalf("empty streams ran work: %+v", st)
	}
	if coord == nil {
		t.Fatal("zero-round path returned a nil coordinator with a nil error")
	}
	if got := coord.Query(3); got != 0 {
		t.Fatalf("empty coordinator Query(3) = %v, want 0", got)
	}
}
