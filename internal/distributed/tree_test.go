package distributed

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Regression for the Split remainder bug: the comment always promised
// site (i mod sites) the remainder, but the loop handed it to the last
// site for every coordinate. With an inexactly divisible value the
// remainder share differs from the plain share in the last bits, so
// the rotation is observable per coordinate.
func TestSplitRotatesRemainder(t *testing.T) {
	const sites = 3
	global := []float64{1, 1, 1, 1} // 1/3 is inexact: remainder share ≠ plain share
	parts := Split(global, sites)
	share := 1.0 / 3
	remShare := 1 - 2*share
	if remShare == share {
		t.Fatal("test needs an inexact division to observe rotation")
	}
	for i := range global {
		rem := i % sites
		for p := 0; p < sites; p++ {
			want := share
			if p == rem {
				want = remShare
			}
			if parts[p][i] != want {
				t.Errorf("coordinate %d site %d = %v, want %v (remainder belongs to site %d)",
					i, p, parts[p][i], want, rem)
			}
		}
	}
	// The buggy split gave every remainder to the last site, leaving
	// per-site masses structurally identical. Rotated, site 0 holds two
	// remainder shares of the four coordinates and site 2 only one.
	mass := func(p int) (m float64) {
		for _, v := range parts[p] {
			m += v
		}
		return m
	}
	if mass(0) == mass(2) {
		t.Errorf("per-site mass identical (%v): remainder is not rotating", mass(0))
	}
}

func TestTreeConfigValidate(t *testing.T) {
	ok := TreeConfig{Sites: 8, SyncEvery: 10, FanIn: 2, Shards: 4}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(*TreeConfig){
		"zero sites":        func(c *TreeConfig) { c.Sites = 0 },
		"zero sync":         func(c *TreeConfig) { c.SyncEvery = 0 },
		"fan-in one":        func(c *TreeConfig) { c.FanIn = 1 },
		"zero shards":       func(c *TreeConfig) { c.Shards = 0 },
		"huge shards":       func(c *TreeConfig) { c.Shards = codec.MaxShards + 1 },
		"unknown mode":      func(c *TreeConfig) { c.Mode = ShipMode(7) },
		"negative ckpt":     func(c *TreeConfig) { c.CheckpointEvery = -1 },
		"restart bad site":  func(c *TreeConfig) { c.Restarts = []Restart{{Round: 1, Site: 8}} },
		"restart neg site":  func(c *TreeConfig) { c.Restarts = []Restart{{Round: 1, Site: -1}} },
		"restart bad round": func(c *TreeConfig) { c.Restarts = []Restart{{Round: 0, Site: 0}} },
	} {
		c := ok
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestMonitorTreeArgumentErrors(t *testing.T) {
	desc := codec.Desc{Algo: "l2sr", N: 100, S: 16, D: 1, Seed: 5}
	cfg := TreeConfig{Sites: 2, SyncEvery: 5, FanIn: 2, Shards: 2}
	if _, _, err := MonitorTree(TreeConfig{}, desc, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config: %v", err)
	}
	if _, _, err := MonitorTree(cfg, desc, make([][]stream.Update, 3), nil); !errors.Is(err, ErrNoSites) {
		t.Errorf("stream/site mismatch: %v", err)
	}
	streams := [][]stream.Update{{{I: 1, Delta: 1}}, {{I: 2, Delta: 1}}}
	for _, algo := range []string{"cmcu", "exact", "no-such-algo"} {
		bad := desc
		bad.Algo = algo
		if _, _, err := MonitorTree(cfg, bad, streams, nil); err == nil {
			t.Errorf("%s: MonitorTree should refuse", algo)
		}
	}
}

// sampleBits fingerprints a coordinator: the exact bit patterns of a
// spread of point queries.
func sampleBits(sk sketch.Sketch, n int) []uint64 {
	var bits []uint64
	for i := 0; i < n; i += 17 {
		bits = append(bits, math.Float64bits(sk.Query(i)))
	}
	return bits
}

// The fabric's headline correctness property: for every linear
// shippable algorithm, the delta-shipped coordinator answers
// bit-identically to the full-state-shipped one, to the star
// topology's, and to a single sketch fed the union of the streams —
// including runs with mid-stream churn. Integer update deltas make
// every counter an exactly represented float64 sum, so association
// order cannot perturb a single bit.
func TestTreeBitIdenticalAcrossShippingModes(t *testing.T) {
	const n, sites, perSite, syncEvery = 800, 9, 600, 100
	streams, global := mkStreams(sites, perSite, n, 21)
	churn := []Restart{{Round: 2, Site: 1}, {Round: 4, Site: 7}}

	for _, algo := range []string{
		"l1sr", "l2sr", "l1mean", "l2mean",
		"countmedian", "countsketch", "countmin", "dengrafiei", "counterbraids",
	} {
		t.Run(algo, func(t *testing.T) {
			desc := codec.Desc{Algo: algo, N: n, S: 32, D: 2, Seed: 9}
			base := TreeConfig{
				Sites: sites, SyncEvery: syncEvery, FanIn: 3, Shards: 4,
				CheckpointEvery: 2, Restarts: churn,
			}

			perRound := map[ShipMode][][]uint64{}
			run := func(mode ShipMode) sketch.Sketch {
				cfg := base
				cfg.Mode = mode
				coord, st, err := MonitorTree(cfg, desc, streams, func(round int, c sketch.Sketch) {
					perRound[mode] = append(perRound[mode], sampleBits(c, n))
				})
				if err != nil {
					t.Fatalf("mode %d: %v", mode, err)
				}
				if st.Restarts != len(churn) {
					t.Fatalf("mode %d: %d restarts applied, want %d", mode, st.Restarts, len(churn))
				}
				return coord
			}
			delta := run(ShipDelta)
			full := run(ShipFull)

			// Same churn schedule → the coordinator sees identical
			// per-site prefixes every round, so every round must agree
			// bit for bit, not just the final state.
			if len(perRound[ShipDelta]) != len(perRound[ShipFull]) {
				t.Fatalf("round counts diverge: delta %d, full %d",
					len(perRound[ShipDelta]), len(perRound[ShipFull]))
			}
			for r := range perRound[ShipDelta] {
				for k := range perRound[ShipDelta][r] {
					if perRound[ShipDelta][r][k] != perRound[ShipFull][r][k] {
						t.Fatalf("round %d sample %d: delta and full shipping disagree", r+1, k)
					}
				}
			}

			star, _, err := Monitor(MonitorConfig{Sites: sites, SyncEvery: syncEvery}, desc, streams, nil)
			if err != nil {
				t.Fatal(err)
			}
			single, err := registry.SafeNew(desc.Algo, desc.Shape())
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range global {
				if v != 0 {
					single.Update(i, v)
				}
			}
			db, fb, sb, ib := sampleBits(delta, n), sampleBits(full, n), sampleBits(star, n), sampleBits(single, n)
			for k := range db {
				if db[k] != fb[k] || db[k] != sb[k] || db[k] != ib[k] {
					t.Fatalf("sample %d: delta %x full %x star %x single %x",
						k, db[k], fb[k], sb[k], ib[k])
				}
			}
		})
	}
}

// skewedChurnStreams builds the acceptance workload: a few long-lived
// sites whose keys concentrate on one replica shard each, and a large
// cold majority that drains in the first round — the regime where delta
// shipping pays.
func skewedChurnStreams(sites, hot, hotLen, coldLen, n, shards int, seed int64) [][]stream.Update {
	r := rand.New(rand.NewSource(seed))
	streams := make([][]stream.Update, sites)
	for p := range streams {
		length, stride := coldLen, 1
		if p < hot {
			// Hot site p touches only keys ≡ p (mod shards): one shard
			// of its replica set ever advances.
			length, stride = hotLen, shards
		}
		us := make([]stream.Update, length)
		for u := range us {
			k := r.Intn(n / stride)
			us[u] = stream.Update{I: (k*stride + p%shards) % n, Delta: float64(1 + r.Intn(3))}
		}
		streams[p] = us
	}
	return streams
}

// The acceptance criterion of this change: on a 200-site skewed-churn
// workload, steady-state per-round communication under delta shipping
// is at least 5× below full-state shipping, while the coordinator's
// answers stay bit-identical.
func TestTreeDeltaCommSavings200Sites(t *testing.T) {
	const (
		sites, hot = 200, 20
		n, shards  = 2048, 8
		hotLen     = 1200
		coldLen    = 30
		syncEvery  = 60
	)
	streams := skewedChurnStreams(sites, hot, hotLen, coldLen, n, shards, 77)
	desc := codec.Desc{Algo: "l2sr", N: n, S: 16, D: 1, Seed: 3}
	base := TreeConfig{
		Sites: sites, SyncEvery: syncEvery, FanIn: 4, Shards: shards,
		CheckpointEvery: 3,
		Restarts:        []Restart{{Round: 8, Site: 2}, {Round: 8, Site: 150}},
	}

	run := func(mode ShipMode) (sketch.Sketch, MonitorStats) {
		cfg := base
		cfg.Mode = mode
		coord, st, err := MonitorTree(cfg, desc, streams, nil)
		if err != nil {
			t.Fatal(err)
		}
		return coord, st
	}
	dCoord, dStats := run(ShipDelta)
	fCoord, fStats := run(ShipFull)

	db, fb := sampleBits(dCoord, n), sampleBits(fCoord, n)
	for k := range db {
		if db[k] != fb[k] {
			t.Fatalf("sample %d: delta %x, full %x — answers must be bit-identical", k, db[k], fb[k])
		}
	}
	if dStats.Rounds != fStats.Rounds || dStats.Rounds < 12 {
		t.Fatalf("rounds: delta %d, full %d", dStats.Rounds, fStats.Rounds)
	}
	if dStats.BudgetWordsPerRound != sites*dStats.SketchWords || dStats.SketchWords <= 0 {
		t.Fatalf("budget bookkeeping: %+v", dStats)
	}

	// Steady state: the cold majority has drained and no churn event is
	// near — round 11 onward (restarts fire at round 8; give the replay
	// two rounds to catch up).
	for r := 10; r < dStats.Rounds; r++ {
		dr, fr := dStats.PerRound[r], fStats.PerRound[r]
		if dr.Round != r+1 || fr.Round != r+1 {
			t.Fatalf("round ledger misnumbered: %+v %+v", dr, fr)
		}
		if dr.FullFrames != 0 {
			t.Errorf("round %d: %d full frames in steady-state delta shipping", dr.Round, dr.FullFrames)
		}
		if dr.CommBytes == 0 || fr.CommBytes == 0 {
			t.Fatalf("round %d: no communication recorded (delta %d, full %d)", dr.Round, dr.CommBytes, fr.CommBytes)
		}
		if 5*dr.CommBytes > fr.CommBytes {
			t.Errorf("round %d: delta %d bytes vs full %d — less than the required 5× saving",
				dr.Round, dr.CommBytes, fr.CommBytes)
		}
		// Words tell the same story against full-state shipping, and
		// delta rounds stay under the paper's theoretical per-round
		// budget (sites × sketch size — what a full-state star ships).
		if 5*dr.CommWords > fr.CommWords {
			t.Errorf("round %d: delta %d words vs full %d", dr.Round, dr.CommWords, fr.CommWords)
		}
		if dr.CommWords >= dStats.BudgetWordsPerRound {
			t.Errorf("round %d: delta %d words exceeds the %d budget", dr.Round, dr.CommWords, dStats.BudgetWordsPerRound)
		}
	}

	// Churn accounting: both restarts applied, and the rejoin round
	// shipped full frames even in delta mode.
	if dStats.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", dStats.Restarts)
	}
	if dStats.PerRound[7].FullFrames == 0 {
		t.Errorf("rejoin round shipped no full frame: %+v", dStats.PerRound[7])
	}
}

// Interior nodes enforce the insert-only-per-epoch invariant: a delta
// frame that repeats or regresses an acknowledged epoch is rejected
// with ErrStaleFrame, and a frame from a different fabric shape with
// ErrFrameMismatch. Only full frames may reset an edge.
func TestNodeRejectsProtocolViolations(t *testing.T) {
	desc := codec.Desc{Algo: "l2sr", N: 100, S: 8, D: 1, Seed: 1}
	e, _ := registry.Lookup(desc.Algo)
	mk := func() sketch.Sketch { return e.MustNew(desc.Shape()) }
	nd := newNode(2, 4)

	fresh := &codec.DeltaFrame{Desc: desc, Shards: 4, Entries: []codec.DeltaEntry{
		{Shard: 1, Epoch: 5, Sk: mk()},
	}}
	if err := nd.absorb(0, fresh, desc, 4); err != nil {
		t.Fatal(err)
	}
	stale := &codec.DeltaFrame{Desc: desc, Shards: 4, Entries: []codec.DeltaEntry{
		{Shard: 1, Epoch: 5, Sk: mk()}, // equal, not advancing
	}}
	if err := nd.absorb(0, stale, desc, 4); !errors.Is(err, ErrStaleFrame) {
		t.Errorf("repeated epoch: err = %v, want ErrStaleFrame", err)
	}
	// The same epoch on the *other* edge is fine: epochs are per edge.
	if err := nd.absorb(1, stale, desc, 4); err != nil {
		t.Errorf("other edge rejected an independent epoch: %v", err)
	}
	// A full frame may reset the edge to any epochs.
	reset := &codec.DeltaFrame{Desc: desc, Full: true, Shards: 4, Entries: []codec.DeltaEntry{
		{Shard: 0, Epoch: 0, Sk: mk()}, {Shard: 1, Epoch: 1, Sk: mk()},
		{Shard: 2, Epoch: 0, Sk: mk()}, {Shard: 3, Epoch: 0, Sk: mk()},
	}}
	if err := nd.absorb(0, reset, desc, 4); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
	if !nd.full {
		t.Error("full frame did not arm the upward cascade")
	}
	after := &codec.DeltaFrame{Desc: desc, Shards: 4, Entries: []codec.DeltaEntry{
		{Shard: 1, Epoch: 2, Sk: mk()},
	}}
	if err := nd.absorb(0, after, desc, 4); err != nil {
		t.Errorf("post-reset delta rejected: %v", err)
	}

	wrongShards := &codec.DeltaFrame{Desc: desc, Shards: 8}
	if err := nd.absorb(0, wrongShards, desc, 4); !errors.Is(err, ErrFrameMismatch) {
		t.Errorf("shard mismatch: err = %v, want ErrFrameMismatch", err)
	}
	otherDesc := desc
	otherDesc.Seed = 99
	wrongDesc := &codec.DeltaFrame{Desc: otherDesc, Shards: 4}
	if err := nd.absorb(0, wrongDesc, desc, 4); !errors.Is(err, ErrFrameMismatch) {
		t.Errorf("desc mismatch: err = %v, want ErrFrameMismatch", err)
	}
}

// A restart scheduled after every stream has drained keeps the fabric
// alive through idle rounds, replays the site from its checkpoint, and
// still converges to the exact same global state.
func TestTreeChurnAfterDrain(t *testing.T) {
	const n, sites = 256, 4
	streams, global := mkStreams(sites, 150, n, 31)
	desc := codec.Desc{Algo: "countsketch", N: n, S: 16, D: 3, Seed: 2}
	cfg := TreeConfig{
		Sites: sites, SyncEvery: 50, FanIn: 2, Shards: 2, Mode: ShipDelta,
		CheckpointEvery: 1,
		Restarts:        []Restart{{Round: 7, Site: 3}},
	}
	coord, st, err := MonitorTree(cfg, desc, streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 7 {
		t.Fatalf("run ended at round %d, before the scheduled restart", st.Rounds)
	}
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d", st.Restarts)
	}
	single, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range global {
		if v != 0 {
			single.Update(i, v)
		}
	}
	for i := 0; i < n; i++ {
		if a, b := coord.Query(i), single.Query(i); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("query %d after drain-churn: %v != %v", i, a, b)
		}
	}
}

// A site that restarts before any checkpoint was taken boots empty and
// replays its whole stream — nothing is lost, nothing is doubled.
func TestTreeRestartWithoutCheckpoint(t *testing.T) {
	const n = 128
	streams, global := mkStreams(3, 90, n, 41)
	desc := codec.Desc{Algo: "countmin", N: n, S: 32, D: 2, Seed: 6}
	cfg := TreeConfig{
		Sites: 3, SyncEvery: 30, FanIn: 2, Shards: 3, Mode: ShipDelta,
		// CheckpointEvery 0: restarts replay from scratch.
		Restarts: []Restart{{Round: 3, Site: 0}},
	}
	coord, st, err := MonitorTree(cfg, desc, streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d", st.Restarts)
	}
	single, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range global {
		if v != 0 {
			single.Update(i, v)
		}
	}
	for i := 0; i < n; i += 7 {
		if a, b := coord.Query(i), single.Query(i); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("query %d: %v != %v", i, a, b)
		}
	}
}

// Empty streams: zero rounds, an empty, usable coordinator.
func TestTreeEmptyStreams(t *testing.T) {
	desc := codec.Desc{Algo: "l2sr", N: 64, S: 8, D: 1, Seed: 4}
	cfg := TreeConfig{Sites: 3, SyncEvery: 10, FanIn: 2, Shards: 2}
	coord, st, err := MonitorTree(cfg, desc, make([][]stream.Update, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.UpdatesApplied != 0 || st.CommBytes != 0 {
		t.Fatalf("empty run did work: %+v", st)
	}
	if coord == nil || coord.Query(1) != 0 {
		t.Fatal("empty coordinator unusable")
	}
}

// The star Monitor's extended ledger: per-round entries sum to the
// totals, every round is a full-frame round, and the budget matches
// the paper's sites × sketch-size bound.
func TestMonitorPerRoundLedger(t *testing.T) {
	const n, sites = 400, 3
	streams, _ := mkStreams(sites, 500, n, 51)
	desc := codec.Desc{Algo: "l2sr", N: n, S: 32, D: 1, Seed: 8}
	_, st, err := Monitor(MonitorConfig{Sites: sites, SyncEvery: 100}, desc, streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerRound) != st.Rounds {
		t.Fatalf("%d per-round entries for %d rounds", len(st.PerRound), st.Rounds)
	}
	var bytes, words int
	for i, r := range st.PerRound {
		if r.Round != i+1 {
			t.Errorf("entry %d numbered %d", i, r.Round)
		}
		if r.FullFrames != sites {
			t.Errorf("round %d: %d full frames, want %d (star ships everyone)", r.Round, r.FullFrames, sites)
		}
		if r.CommWords != st.BudgetWordsPerRound {
			t.Errorf("round %d: %d words, want the %d budget", r.Round, r.CommWords, st.BudgetWordsPerRound)
		}
		bytes += r.CommBytes
		words += r.CommWords
	}
	if bytes != st.CommBytes || words != st.CommWords {
		t.Fatalf("ledger does not sum: %d/%d bytes, %d/%d words", bytes, st.CommBytes, words, st.CommWords)
	}
	if st.SketchWords <= 0 || st.BudgetWordsPerRound != sites*st.SketchWords {
		t.Fatalf("budget fields: %+v", st)
	}
}
