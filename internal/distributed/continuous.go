package distributed

import (
	"bytes"
	"fmt"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// This file simulates the *continuous* distributed monitoring setting
// (§1 combined with §5.5): sites ingest their local update streams in
// real time and periodically ship their current sketch to the
// coordinator, which — again by linearity — replaces each site's
// contribution and answers queries over the up-to-date global vector.
// The shipping goes through the streaming codec: each synchronization
// encodes every site's sketch to wire-format bytes and the coordinator
// decodes and merges, so communication is counted both in words
// (reproducing the paper's sites × sketch size per round) and in
// encoded bytes.

// MonitorConfig shapes a continuous monitoring run.
type MonitorConfig struct {
	Sites     int // number of sites
	SyncEvery int // updates per site between synchronizations
}

// Validate checks the configuration.
func (c MonitorConfig) Validate() error {
	if c.Sites <= 0 {
		return fmt.Errorf("%w: Sites must be positive, got %d", ErrBadConfig, c.Sites)
	}
	if c.SyncEvery <= 0 {
		return fmt.Errorf("%w: SyncEvery must be positive, got %d", ErrBadConfig, c.SyncEvery)
	}
	return nil
}

// MonitorStats accumulates the cost of a monitoring run.
type MonitorStats struct {
	Rounds         int
	UpdatesApplied int
	CommWords      int // total words shipped toward the coordinator
	CommBytes      int // total encoded bytes shipped toward the coordinator

	// SketchWords is the single-sketch size for the run's descriptor,
	// and BudgetWordsPerRound the paper's theoretical per-round budget:
	// sites × sketch size (§5.5) — what a full-state synchronization
	// ships. Delta rounds are measured against it.
	SketchWords         int
	BudgetWordsPerRound int

	Restarts int          // churn events applied (tree fabric only)
	PerRound []RoundStats // per-synchronization communication ledger
}

// Monitor runs the simulation: streams[p] is site p's update sequence,
// consumed round-robin in SyncEvery-sized batches; after every full
// round each site encodes its current sketch through the codec and
// ships the bytes, and the coordinator rebuilds the global sketch from
// scratch by decoding and merging every site payload. onSync, if
// non-nil, is invoked with the coordinator's merged sketch after every
// round, so callers can track query error over time.
//
// desc names the shared configuration every site constructs — the
// same linear, serializable contract as Run.
func Monitor(
	cfg MonitorConfig,
	desc codec.Desc,
	streams [][]stream.Update,
	onSync func(round int, coordinator sketch.Sketch),
) (sketch.Sketch, MonitorStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, MonitorStats{}, err
	}
	if len(streams) != cfg.Sites {
		return nil, MonitorStats{}, fmt.Errorf("%w: %d streams for %d sites", ErrNoSites, len(streams), cfg.Sites)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		return nil, MonitorStats{}, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	if err := shippable(e); err != nil {
		return nil, MonitorStats{}, err
	}

	sites := make([]sketch.Sketch, cfg.Sites)
	pos := make([]int, cfg.Sites)
	for p := range sites {
		sk, err := registry.SafeNew(desc.Algo, desc.Shape())
		if err != nil {
			return nil, MonitorStats{}, fmt.Errorf("distributed: %w", err)
		}
		sites[p] = sk
	}

	st := MonitorStats{
		SketchWords:         sites[0].Words(),
		BudgetWordsPerRound: cfg.Sites * sites[0].Words(),
	}
	var coordinator sketch.Sketch
	for {
		rs := RoundStats{Round: st.Rounds + 1}
		progressed := false
		for p := 0; p < cfg.Sites; p++ {
			end := pos[p] + cfg.SyncEvery
			if end > len(streams[p]) {
				end = len(streams[p])
			}
			if end > pos[p] {
				rs.ActiveSites++
			}
			for ; pos[p] < end; pos[p]++ {
				u := streams[p][pos[p]]
				sites[p].Update(u.I, u.Delta)
				st.UpdatesApplied++
				progressed = true
			}
		}
		if !progressed {
			break
		}
		// Synchronization: every site encodes and ships its sketch; the
		// coordinator decodes each payload and merges them fresh.
		fresh, err := registry.SafeNew(desc.Algo, desc.Shape())
		if err != nil {
			return nil, st, fmt.Errorf("distributed: %w", err)
		}
		coordinator = fresh
		for p := 0; p < cfg.Sites; p++ {
			var pkt bytes.Buffer
			if err := codec.EncodeSketch(&pkt, desc, sites[p]); err != nil {
				return nil, st, fmt.Errorf("distributed: round %d site %d encode: %w", st.Rounds, p, err)
			}
			rs.CommWords += sites[p].Words()
			rs.CommBytes += pkt.Len()
			rs.FullFrames++
			shipped, _, err := codec.DecodeSketch(&pkt)
			if err != nil {
				return nil, st, fmt.Errorf("distributed: round %d site %d decode: %w", st.Rounds, p, err)
			}
			if err := registry.Merge(coordinator, shipped); err != nil {
				return nil, st, fmt.Errorf("distributed: round %d site %d: %w", st.Rounds, p, err)
			}
		}
		st.Rounds++
		st.CommWords += rs.CommWords
		st.CommBytes += rs.CommBytes
		st.PerRound = append(st.PerRound, rs)
		if onSync != nil {
			onSync(st.Rounds, coordinator)
		}
	}
	if st.Rounds == 0 {
		// Every stream was empty, so no synchronization ever built a
		// coordinator: hand back an empty one. The constructor error must
		// propagate — discarding it could return (nil, nil) and move the
		// crash to the caller's first Query.
		fresh, err := registry.SafeNew(desc.Algo, desc.Shape())
		if err != nil {
			return nil, st, fmt.Errorf("distributed: %w", err)
		}
		coordinator = fresh
	}
	return coordinator, st, nil
}
