package distributed

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// This file simulates the *continuous* distributed monitoring setting
// (§1 combined with §5.5): sites ingest their local update streams in
// real time and periodically ship their current sketch to the
// coordinator, which — again by linearity — replaces each site's
// contribution and answers queries over the up-to-date global vector.
// Communication is counted per round, reproducing the paper's
// observation that total communication is (#sites × sketch size) per
// synchronization.

// MonitorConfig shapes a continuous monitoring run.
type MonitorConfig struct {
	Sites     int // number of sites
	SyncEvery int // updates per site between synchronizations
}

// Validate checks the configuration.
func (c MonitorConfig) Validate() error {
	if c.Sites <= 0 {
		return fmt.Errorf("distributed: Sites must be positive, got %d", c.Sites)
	}
	if c.SyncEvery <= 0 {
		return fmt.Errorf("distributed: SyncEvery must be positive, got %d", c.SyncEvery)
	}
	return nil
}

// MonitorStats accumulates the cost of a monitoring run.
type MonitorStats struct {
	Rounds         int
	UpdatesApplied int
	CommWords      int // total words shipped site→coordinator
}

// Monitor runs the simulation: streams[p] is site p's update sequence,
// consumed round-robin in SyncEvery-sized batches; after each site's
// batch the site ships its full sketch (Words() words) and the
// coordinator rebuilds the global sketch from scratch by merging all
// site sketches. onSync, if non-nil, is invoked with the coordinator's
// merged sketch after every full round, so callers can track query
// error over time.
//
// mk must build identically-seeded sketches; merge adds src into dst.
func Monitor[S sketch.Sketch](
	cfg MonitorConfig,
	mk func() S,
	merge func(dst, src S) error,
	streams [][]stream.Update,
	onSync func(round int, coordinator S),
) (S, MonitorStats, error) {
	var zero S
	if err := cfg.Validate(); err != nil {
		return zero, MonitorStats{}, err
	}
	if len(streams) != cfg.Sites {
		return zero, MonitorStats{}, fmt.Errorf("distributed: %d streams for %d sites", len(streams), cfg.Sites)
	}

	sites := make([]S, cfg.Sites)
	pos := make([]int, cfg.Sites)
	for p := range sites {
		sites[p] = mk()
	}

	var st MonitorStats
	var coordinator S
	for {
		progressed := false
		for p := 0; p < cfg.Sites; p++ {
			end := pos[p] + cfg.SyncEvery
			if end > len(streams[p]) {
				end = len(streams[p])
			}
			for ; pos[p] < end; pos[p]++ {
				u := streams[p][pos[p]]
				sites[p].Update(u.I, u.Delta)
				st.UpdatesApplied++
				progressed = true
			}
		}
		if !progressed {
			break
		}
		// Synchronization: every site ships its sketch; the
		// coordinator merges them fresh.
		coordinator = mk()
		for p := 0; p < cfg.Sites; p++ {
			st.CommWords += sites[p].Words()
			if err := merge(coordinator, sites[p]); err != nil {
				return zero, st, fmt.Errorf("distributed: round %d site %d: %w", st.Rounds, p, err)
			}
		}
		st.Rounds++
		if onSync != nil {
			onSync(st.Rounds, coordinator)
		}
	}
	if st.Rounds == 0 {
		coordinator = mk()
	}
	return coordinator, st, nil
}
