package distributed

import (
	"bytes"
	"fmt"

	"repro/internal/codec"
	"repro/internal/concurrent"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// A site is one leaf of the aggregation tree: a concurrent.Sharded
// replica set absorbing the site's local update stream, plus the
// bookkeeping that makes delta shipping possible — the per-shard
// epoch vector the parent last acknowledged, the wire-v2 checkpoint
// the churn simulator restarts it from, and the rejoin flag that
// forces a full-state frame after a restart.
//
// Updates route to shard (key mod shards), so a skewed key
// distribution concentrates writes on few shards and a sync ships few
// sections — the communication saving the delta protocol exists for.
type site struct {
	id     int
	shards int
	rep    *concurrent.Sharded[sketch.Sketch]
	stream []stream.Update
	pos    int

	// acked[i] is shard i's epoch as of the last frame the parent
	// accepted; a shard ships only when its live epoch differs.
	acked []uint64
	// rejoin forces the next frame to carry full state: the site
	// restarted from checkpoint, so the parent's view of it is stale
	// from the future and must be reset wholesale.
	rejoin bool

	// Last durable checkpoint: a wire-v2 sharded container plus the
	// stream position it covers. nil state means no checkpoint was
	// ever taken — a restart then rewinds to an empty replica set at
	// position zero and replays the whole stream.
	ckptState []byte
	ckptPos   int

	epochScratch []uint64
}

// newSite builds site id over its stream with a fresh replica set.
func newSite(id int, desc codec.Desc, e *registry.Entry, shards int, updates []stream.Update) (*site, error) {
	rep, err := newReplicaSet(desc, e, shards)
	if err != nil {
		return nil, err
	}
	return &site{
		id:           id,
		shards:       shards,
		rep:          rep,
		stream:       updates,
		acked:        make([]uint64, shards),
		epochScratch: make([]uint64, 0, shards),
	}, nil
}

// newReplicaSet builds a Sharded replica set of the fabric's shape,
// converting a constructor panic into an error once up front.
func newReplicaSet(desc codec.Desc, e *registry.Entry, shards int) (*concurrent.Sharded[sketch.Sketch], error) {
	if _, err := registry.SafeNew(desc.Algo, desc.Shape()); err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}
	mk := func() sketch.Sketch { return e.MustNew(desc.Shape()) }
	return concurrent.New(shards, mk, registry.Merge), nil
}

// ingest applies up to budget stream updates and reports how many ran.
// Updates route to the shard owning the key, so per-shard epochs track
// which key ranges moved.
func (s *site) ingest(budget int) int {
	end := s.pos + budget
	if end > len(s.stream) {
		end = len(s.stream)
	}
	applied := end - s.pos
	for ; s.pos < end; s.pos++ {
		u := s.stream[s.pos]
		s.rep.Update(u.I, u.I, u.Delta)
	}
	return applied
}

// drained reports whether the site's stream is exhausted.
func (s *site) drained() bool { return s.pos >= len(s.stream) }

// checkpoint captures the site's durable state: the replica set as a
// wire-v2 sharded container plus the stream position it covers. A
// restart restores exactly this pair and replays the stream from the
// saved position, so no update is ever lost or double-applied.
func (s *site) checkpoint(desc codec.Desc) error {
	var buf bytes.Buffer
	if err := codec.EncodeSharded(&buf, desc, s.rep); err != nil {
		return fmt.Errorf("distributed: site %d checkpoint: %w", s.id, err)
	}
	s.ckptState = buf.Bytes()
	s.ckptPos = s.pos
	return nil
}

// restart simulates a crash + reboot: all in-memory state is dropped
// and the site restores from its last checkpoint (or boots empty if
// none was ever taken), rewinding the stream to the checkpointed
// position. The next frame it ships is a full-state resynchronization.
func (s *site) restart(desc codec.Desc, e *registry.Entry) error {
	if s.ckptState == nil {
		rep, err := newReplicaSet(desc, e, s.shards)
		if err != nil {
			return err
		}
		s.rep = rep
		s.pos = 0
	} else {
		rep, rdesc, err := codec.DecodeSharded(bytes.NewReader(s.ckptState))
		if err != nil {
			return fmt.Errorf("distributed: site %d restore: %w", s.id, err)
		}
		if rdesc != desc || rep.Shards() != s.shards {
			return fmt.Errorf("%w: site %d checkpoint shape changed", ErrFrameMismatch, s.id)
		}
		s.rep = rep
		s.pos = s.ckptPos
	}
	s.acked = make([]uint64, s.shards)
	s.rejoin = true
	return nil
}

// emit builds the site's frame for this round: nil when nothing
// changed and no resynchronization is due, a delta frame carrying only
// the shards whose epoch advanced past the acknowledged vector, or a
// full-state frame when the site just rejoined (or the fabric runs in
// full-state mode). The returned epochs are recorded as acknowledged —
// the simulation's hop is synchronous, so shipping is acking.
func (s *site) emit(desc codec.Desc, e *registry.Entry, mode ShipMode) (*codec.DeltaFrame, error) {
	full := s.rejoin || mode == ShipFull
	s.epochScratch = s.rep.Epochs(s.epochScratch[:0])
	var want []int
	for i, ep := range s.epochScratch {
		if full || ep != s.acked[i] {
			want = append(want, i)
		}
	}
	if len(want) == 0 {
		return nil, nil
	}
	frame := &codec.DeltaFrame{Desc: desc, Full: full, Shards: s.shards}
	for _, i := range want {
		// Capture a private copy under the shard lock: the frame must
		// stay stable while it is encoded, merged, and forwarded.
		copyErr := s.rep.CheckpointShard(i, func(epoch uint64, sk sketch.Sketch) error {
			cp := e.MustNew(desc.Shape())
			if err := registry.Merge(cp, sk); err != nil {
				return err
			}
			frame.Entries = append(frame.Entries, codec.DeltaEntry{Shard: i, Epoch: epoch, Sk: cp})
			return nil
		})
		if copyErr != nil {
			return nil, fmt.Errorf("distributed: site %d shard %d capture: %w", s.id, i, copyErr)
		}
	}
	for _, en := range frame.Entries {
		s.acked[en.Shard] = en.Epoch
	}
	s.rejoin = false
	return frame, nil
}
