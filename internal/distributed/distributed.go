// Package distributed simulates the distributed computation model of
// §1: t sites each hold a local frequency vector x^i; every site
// sketches its vector with shared randomness and ships the sketch to a
// coordinator, which sums them (linearity: Φx = Φx¹ + … + Φxᵗ) and
// recovers the global vector. The simulation accounts communication in
// words, matching §5.5's observation that total communication is
// (number of sites) × (sketch size).
package distributed

import (
	"fmt"

	"repro/internal/sketch"
)

// Stats summarizes one distributed run.
type Stats struct {
	Sites             int
	WordsPerSite      int
	TotalCommWords    int // Sites × WordsPerSite
	NaiveCommWords    int // Sites × n: the cost of shipping raw vectors
	CompressionFactor float64
}

// Run simulates the model for any mergeable sketch type S. mk must
// construct structurally identical sketches (same shape and random
// seeds — the coordinator distributes hash functions up front, §5.5
// footnote 4); merge adds src into dst; locals are the per-site
// vectors. It returns the coordinator's merged sketch and the
// communication accounting.
func Run[S sketch.Sketch](
	mk func() S,
	merge func(dst, src S) error,
	locals [][]float64,
) (S, Stats, error) {
	var zero S
	if len(locals) == 0 {
		return zero, Stats{}, fmt.Errorf("distributed: no sites")
	}
	n := len(locals[0])
	for i, l := range locals {
		if len(l) != n {
			return zero, Stats{}, fmt.Errorf("distributed: site %d has dimension %d, want %d", i, len(l), n)
		}
	}

	coordinator := mk()
	if coordinator.Dim() != n {
		return zero, Stats{}, fmt.Errorf("distributed: sketch dim %d != vector dim %d", coordinator.Dim(), n)
	}
	// Site 0's sketch becomes the accumulator; remaining sites are
	// merged in one at a time.
	sketch.SketchVector(coordinator, locals[0])
	for _, local := range locals[1:] {
		site := mk()
		sketch.SketchVector(site, local)
		if err := merge(coordinator, site); err != nil {
			return zero, Stats{}, fmt.Errorf("distributed: merge: %w", err)
		}
	}

	st := Stats{
		Sites:          len(locals),
		WordsPerSite:   coordinator.Words(),
		TotalCommWords: len(locals) * coordinator.Words(),
		NaiveCommWords: len(locals) * n,
	}
	if st.TotalCommWords > 0 {
		st.CompressionFactor = float64(st.NaiveCommWords) / float64(st.TotalCommWords)
	}
	return coordinator, st, nil
}

// Split partitions a global vector into `sites` local vectors whose
// sum is the original, deterministically spreading each coordinate's
// mass. It is a convenience for experiments and examples.
func Split(global []float64, sites int) [][]float64 {
	if sites <= 0 {
		panic("distributed: sites must be positive")
	}
	parts := make([][]float64, sites)
	for p := range parts {
		parts[p] = make([]float64, len(global))
	}
	for i, v := range global {
		// Deterministic uneven split: site (i mod sites) gets the
		// remainder so mass distribution varies across sites.
		share := v / float64(sites)
		var assigned float64
		for p := 0; p < sites-1; p++ {
			parts[p][i] = share
			assigned += share
		}
		parts[sites-1][i] = v - assigned
	}
	return parts
}
