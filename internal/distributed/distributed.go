// Package distributed simulates the distributed computation model of
// §1: t sites each hold a local frequency vector x^i; every site
// sketches its vector with shared randomness and ships the sketch to a
// coordinator, which sums them (linearity: Φx = Φx¹ + … + Φxᵗ) and
// recovers the global vector. Sites and coordinator share no memory:
// the only thing that crosses the boundary is the encoded wire-format
// payload, exactly as it would over a network. The simulation accounts
// communication both in words (matching §5.5's observation that total
// communication is sites × sketch size) and in actual encoded bytes.
package distributed

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
)

// Typed errors for the simulation entry points, so callers can
// errors.Is against the failure class instead of matching message
// strings.
var (
	// ErrNoSites is returned when a run is given zero site vectors or
	// streams.
	ErrNoSites = errors.New("distributed: no sites")
	// ErrDimensionMismatch is returned when site vectors disagree in
	// dimension, or the sketch descriptor does not match them.
	ErrDimensionMismatch = errors.New("distributed: dimension mismatch")
	// ErrUnknownAlgorithm is returned for descriptor algorithm names
	// the registry does not resolve.
	ErrUnknownAlgorithm = errors.New("distributed: unknown algorithm")
	// ErrNotShippable is returned for algorithms that cannot play a
	// site's role: non-linear sketches cannot be summed by the
	// coordinator, and exact would ship the raw vector.
	ErrNotShippable = errors.New("distributed: algorithm cannot ship site sketches")
	// ErrBadConfig is returned by MonitorConfig.Validate and
	// TreeConfig.Validate for unusable knob values — non-positive
	// sites, synchronization intervals, fan-in, or shard counts, and
	// churn events naming sites that do not exist.
	ErrBadConfig = errors.New("distributed: invalid monitor configuration")
	// ErrStaleFrame is returned when a delta frame regresses or
	// repeats an acknowledged epoch on an aggregation-tree edge —
	// the insert-only-per-epoch protocol violation. Only full-state
	// frames (a site rejoining after a restart) may reset epochs.
	ErrStaleFrame = errors.New("distributed: delta frame regresses an acknowledged epoch")
	// ErrFrameMismatch is returned when a frame's descriptor or shard
	// count disagrees with the fabric configuration the tree was built
	// with — a foreign or corrupted hop payload.
	ErrFrameMismatch = errors.New("distributed: frame does not match the fabric configuration")
)

// Stats summarizes one distributed run.
type Stats struct {
	Sites             int
	WordsPerSite      int
	TotalCommWords    int // Sites × WordsPerSite
	CommBytes         int // encoded bytes actually shipped site→coordinator
	NaiveCommWords    int // Sites × n: the cost of shipping raw vectors
	CompressionFactor float64
}

// Run simulates the model. desc names the shared configuration every
// site constructs (the coordinator distributes algorithm, shape, and
// seed up front — the shared-randomness protocol of §5.5 footnote 4);
// locals are the per-site vectors. Each site sketches its local
// vector and encodes it through the streaming codec; the coordinator
// decodes each packet and merges. The algorithm must be linear (the
// precondition of the model) and serializable (exact ships the whole
// vector and is exactly what sketching is here to avoid).
func Run(desc codec.Desc, locals [][]float64) (sketch.Sketch, Stats, error) {
	if len(locals) == 0 {
		return nil, Stats{}, ErrNoSites
	}
	n := len(locals[0])
	for i, l := range locals {
		if len(l) != n {
			return nil, Stats{}, fmt.Errorf("%w: site %d has dimension %d, want %d", ErrDimensionMismatch, i, len(l), n)
		}
	}
	if desc.N != n {
		return nil, Stats{}, fmt.Errorf("%w: sketch dim %d != vector dim %d", ErrDimensionMismatch, desc.N, n)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		return nil, Stats{}, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	if err := shippable(e); err != nil {
		return nil, Stats{}, err
	}

	coordinator, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		return nil, Stats{}, fmt.Errorf("distributed: %w", err)
	}
	st := Stats{Sites: len(locals), NaiveCommWords: len(locals) * n}
	for p, local := range locals {
		shipped, bytes, err := shipSite(desc, local)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("distributed: site %d: %w", p, err)
		}
		st.CommBytes += bytes
		if err := registry.Merge(coordinator, shipped); err != nil {
			return nil, Stats{}, fmt.Errorf("distributed: merge site %d: %w", p, err)
		}
	}

	st.WordsPerSite = coordinator.Words()
	st.TotalCommWords = st.Sites * st.WordsPerSite
	if st.TotalCommWords > 0 {
		st.CompressionFactor = float64(st.NaiveCommWords) / float64(st.TotalCommWords)
	}
	return coordinator, st, nil
}

// shippable gates the algorithms that can play a site's role, before
// any per-site work: the model needs linearity (site sketches must
// sum) and a wire representation smaller than the data (exact would
// ship the raw vector — exactly what sketching is here to avoid, and
// the codec refuses it as a standalone container anyway).
func shippable(e *registry.Entry) error {
	if !e.Linear {
		return fmt.Errorf("%w: %s is not linear; site sketches cannot be summed", ErrNotShippable, e.Name)
	}
	if e.Name == registry.Exact {
		return fmt.Errorf("%w: exact ships the raw vector; use a sketch", ErrNotShippable)
	}
	return nil
}

// shipSite builds one site's sketch of its local vector and round-
// trips it through the codec — the site→coordinator hop. The returned
// sketch was reconstructed purely from the encoded payload.
func shipSite(desc codec.Desc, local []float64) (sketch.Sketch, int, error) {
	site, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		return nil, 0, err
	}
	if err := sketch.SketchVector(site, local); err != nil {
		return nil, 0, err
	}
	var pkt bytes.Buffer
	if err := codec.EncodeSketch(&pkt, desc, site); err != nil {
		return nil, 0, fmt.Errorf("encode: %w", err)
	}
	size := pkt.Len()
	shipped, _, err := codec.DecodeSketch(&pkt)
	if err != nil {
		return nil, 0, fmt.Errorf("decode: %w", err)
	}
	return shipped, size, nil
}

// Split partitions a global vector into `sites` local vectors whose
// sum is the original, deterministically spreading each coordinate's
// mass. It is a convenience for experiments and examples.
func Split(global []float64, sites int) [][]float64 {
	if sites <= 0 {
		panic("distributed: sites must be positive")
	}
	parts := make([][]float64, sites)
	for p := range parts {
		parts[p] = make([]float64, len(global))
	}
	for i, v := range global {
		// Deterministic uneven split: site (i mod sites) gets the
		// remainder so mass distribution varies across sites.
		share := v / float64(sites)
		rem := i % sites
		var assigned float64
		for p := range parts {
			if p == rem {
				continue
			}
			parts[p][i] = share
			assigned += share
		}
		parts[rem][i] = v - assigned
	}
	return parts
}
