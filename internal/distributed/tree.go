package distributed

import (
	"bytes"
	"fmt"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// This file is the delta-shipping aggregation-tree fabric: the star of
// continuous.go generalized to a fan-in-k tree whose edges carry delta
// frames — only the shards whose epoch advanced since the last
// acknowledged hop — instead of full site state every round. Interior
// nodes cache each child's last-shipped per-shard state, merge the
// deltas into per-shard aggregates (linearity again: the aggregate of
// a shard is the sum of the children's shard replicas), and forward
// their own delta upward. A site restarting mid-run (the churn
// simulator) rejoins with one full-state frame, which cascades to the
// root so every cached copy of the lost site is replaced wholesale.
//
// The protocol invariant the codec and the tree enforce together:
// delta frames are insert-only per epoch. On any edge, a delta entry's
// epoch must strictly exceed the last epoch acknowledged for that
// shard; only full frames — a rejoin after churn — may reset an edge's
// epoch tracking.

// ShipMode selects what a synchronization ships on every tree edge.
type ShipMode int

const (
	// ShipDelta ships only the shards whose epoch advanced since the
	// last acknowledged hop — the fabric this file exists for.
	ShipDelta ShipMode = iota
	// ShipFull ships every site's complete replica state every round —
	// the baseline the delta saving is measured against.
	ShipFull
)

// Restart is one churn event: before round Round ingests, site Site
// crashes and restarts from its last checkpoint, replaying its stream
// from the checkpointed position and rejoining with a full-state frame.
type Restart struct {
	Round int // 1-based monitoring round the restart precedes
	Site  int
}

// TreeConfig shapes a tree-fabric monitoring run.
type TreeConfig struct {
	Sites     int      // number of leaf sites
	SyncEvery int      // updates per site between synchronizations
	FanIn     int      // children per interior node (k ≥ 2)
	Shards    int      // per-site replica shards; updates route by key mod Shards
	Mode      ShipMode // delta shipping or the full-state baseline

	// CheckpointEvery takes a durable site checkpoint every that many
	// rounds (0 disables; a site restarting without one boots empty and
	// replays its whole stream).
	CheckpointEvery int
	Restarts        []Restart
}

// Validate checks the configuration.
func (c TreeConfig) Validate() error {
	if c.Sites <= 0 {
		return fmt.Errorf("%w: Sites must be positive, got %d", ErrBadConfig, c.Sites)
	}
	if c.SyncEvery <= 0 {
		return fmt.Errorf("%w: SyncEvery must be positive, got %d", ErrBadConfig, c.SyncEvery)
	}
	if c.FanIn < 2 {
		return fmt.Errorf("%w: FanIn must be at least 2, got %d", ErrBadConfig, c.FanIn)
	}
	if c.Shards < 1 || c.Shards > codec.MaxShards {
		return fmt.Errorf("%w: Shards must be in [1, %d], got %d", ErrBadConfig, codec.MaxShards, c.Shards)
	}
	if c.Mode != ShipDelta && c.Mode != ShipFull {
		return fmt.Errorf("%w: unknown ship mode %d", ErrBadConfig, int(c.Mode))
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("%w: CheckpointEvery must be non-negative, got %d", ErrBadConfig, c.CheckpointEvery)
	}
	for i, r := range c.Restarts {
		if r.Site < 0 || r.Site >= c.Sites {
			return fmt.Errorf("%w: restart %d names site %d of %d", ErrBadConfig, i, r.Site, c.Sites)
		}
		if r.Round < 1 {
			return fmt.Errorf("%w: restart %d scheduled for round %d", ErrBadConfig, i, r.Round)
		}
	}
	return nil
}

// RoundStats is the communication ledger of one synchronization round.
type RoundStats struct {
	Round        int
	CommBytes    int // encoded frame bytes across every tree edge this round
	CommWords    int // sketch words inside those frames
	DeltaEntries int // shard sections shipped in delta frames
	FullFrames   int // full-state frames shipped (rejoins and ShipFull mode)
	ActiveSites  int // sites that ingested at least one update this round
}

// node is one interior vertex of the aggregation tree. It caches, per
// child and per shard, the last state that child shipped (replacement
// semantics: a delta entry carries the shard's full current replica,
// superseding the cached copy), and the epoch it acknowledged for that
// edge. Its own per-shard aggregate is the child-order sum of the
// cached copies, and the epoch it advertises upward is the sum of the
// child epochs — monotone as long as every child edge is.
type node struct {
	childAgg [][]sketch.Sketch // childAgg[c][s]: child c's last-shipped shard s (nil: never shipped)
	seen     [][]uint64        // seen[c][s]: last epoch acknowledged on edge c for shard s
	pending  []bool            // shard changed since this node last emitted upward
	full     bool              // a child rejoined: cascade a full frame upward
}

func newNode(children, shards int) *node {
	n := &node{
		childAgg: make([][]sketch.Sketch, children),
		seen:     make([][]uint64, children),
		pending:  make([]bool, shards),
	}
	for c := range n.childAgg {
		n.childAgg[c] = make([]sketch.Sketch, shards)
		n.seen[c] = make([]uint64, shards)
	}
	return n
}

// absorb applies one child frame, enforcing the wire contract: the
// frame must match the fabric's descriptor and shard count
// (ErrFrameMismatch otherwise), and a delta entry must strictly advance
// the edge's acknowledged epoch (ErrStaleFrame otherwise). A full frame
// resets the edge — every cached copy and epoch for the child is
// replaced — and marks the node to cascade a full frame upward.
func (n *node) absorb(c int, f *codec.DeltaFrame, desc codec.Desc, shards int) error {
	if f.Desc != desc {
		return fmt.Errorf("%w: frame descriptor %+v, fabric %+v", ErrFrameMismatch, f.Desc, desc)
	}
	if f.Shards != shards {
		return fmt.Errorf("%w: frame has %d shards, fabric %d", ErrFrameMismatch, f.Shards, shards)
	}
	if f.Full {
		for s := range n.seen[c] {
			n.seen[c][s] = 0
			n.childAgg[c][s] = nil
			n.pending[s] = true
		}
		for _, en := range f.Entries {
			n.seen[c][en.Shard] = en.Epoch
			n.childAgg[c][en.Shard] = en.Sk
		}
		n.full = true
		return nil
	}
	for _, en := range f.Entries {
		if en.Epoch <= n.seen[c][en.Shard] {
			return fmt.Errorf("%w: child %d shard %d epoch %d, acknowledged %d",
				ErrStaleFrame, c, en.Shard, en.Epoch, n.seen[c][en.Shard])
		}
		n.seen[c][en.Shard] = en.Epoch
		n.childAgg[c][en.Shard] = en.Sk
		n.pending[en.Shard] = true
	}
	return nil
}

// aggregate sums shard s across the node's children in child order into
// a fresh replica.
func (n *node) aggregate(sh int, desc codec.Desc, e *registry.Entry) (sketch.Sketch, uint64, error) {
	sum := e.MustNew(desc.Shape())
	var epoch uint64
	for c := range n.childAgg {
		epoch += n.seen[c][sh]
		if n.childAgg[c][sh] == nil {
			continue
		}
		if err := registry.Merge(sum, n.childAgg[c][sh]); err != nil {
			return nil, 0, err
		}
	}
	return sum, epoch, nil
}

// emit builds the node's upward frame: a full frame when a child
// rejoined this round (the reset must cascade) or the fabric runs in
// full-state mode, a delta frame of the shards some child advanced, or
// nil when nothing changed. Emitting clears the pending and cascade
// state.
func (n *node) emit(desc codec.Desc, e *registry.Entry, shards int, mode ShipMode) (*codec.DeltaFrame, error) {
	full := n.full || mode == ShipFull
	var changed bool
	for _, p := range n.pending {
		changed = changed || p
	}
	if !full && !changed {
		return nil, nil
	}
	frame := &codec.DeltaFrame{Desc: desc, Full: full, Shards: shards}
	for sh := 0; sh < shards; sh++ {
		if !full && !n.pending[sh] {
			continue
		}
		sum, epoch, err := n.aggregate(sh, desc, e)
		if err != nil {
			return nil, fmt.Errorf("distributed: aggregating shard %d: %w", sh, err)
		}
		frame.Entries = append(frame.Entries, codec.DeltaEntry{Shard: sh, Epoch: epoch, Sk: sum})
	}
	for sh := range n.pending {
		n.pending[sh] = false
	}
	n.full = false
	return frame, nil
}

// global merges the node's per-shard aggregates, in shard order, into a
// fresh sketch — the coordinator's answer when the node is the root.
func (n *node) global(shards int, desc codec.Desc, e *registry.Entry) (sketch.Sketch, error) {
	out := e.MustNew(desc.Shape())
	for sh := 0; sh < shards; sh++ {
		sum, _, err := n.aggregate(sh, desc, e)
		if err != nil {
			return nil, err
		}
		if err := registry.Merge(out, sum); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildLevels shapes the tree: level 0 groups the sites under
// ceil(sites/fanIn) interior nodes, each further level groups the one
// below, and the last level is the single root.
func buildLevels(sites, fanIn, shards int) [][]*node {
	var levels [][]*node
	width := sites
	for {
		groups := (width + fanIn - 1) / fanIn
		level := make([]*node, groups)
		for g := range level {
			lo := g * fanIn
			hi := lo + fanIn
			if hi > width {
				hi = width
			}
			level[g] = newNode(hi-lo, shards)
		}
		levels = append(levels, level)
		if groups == 1 {
			return levels
		}
		width = groups
	}
}

// MonitorTree runs the continuous-monitoring simulation over the
// aggregation-tree fabric. streams[p] is site p's update sequence,
// consumed in SyncEvery-sized batches per round; after ingestion every
// tree edge ships its frame (encoded wire bytes, exactly as over a
// network), interior nodes merge child deltas, and the root's merged
// aggregate is the coordinator's up-to-date global sketch. Churn
// events in cfg.Restarts crash-and-restore sites between rounds.
// onSync, if non-nil, observes the coordinator after every round.
//
// Because every shipped delta carries the shard's full replacement
// state and the workload sums are exact in float64 (integer deltas),
// the coordinator's answers are bit-identical to a full-state run and
// to a single-stream ingest of the interleaved updates.
func MonitorTree(
	cfg TreeConfig,
	desc codec.Desc,
	streams [][]stream.Update,
	onSync func(round int, coordinator sketch.Sketch),
) (sketch.Sketch, MonitorStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, MonitorStats{}, err
	}
	if len(streams) != cfg.Sites {
		return nil, MonitorStats{}, fmt.Errorf("%w: %d streams for %d sites", ErrNoSites, len(streams), cfg.Sites)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		return nil, MonitorStats{}, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	if err := shippable(e); err != nil {
		return nil, MonitorStats{}, err
	}

	leaves := make([]*site, cfg.Sites)
	for p := range leaves {
		st, err := newSite(p, desc, e, cfg.Shards, streams[p])
		if err != nil {
			return nil, MonitorStats{}, err
		}
		leaves[p] = st
	}
	levels := buildLevels(cfg.Sites, cfg.FanIn, cfg.Shards)
	root := levels[len(levels)-1][0]

	restartsAt := make(map[int][]int)
	lastRestart := 0
	for _, r := range cfg.Restarts {
		restartsAt[r.Round] = append(restartsAt[r.Round], r.Site)
		if r.Round > lastRestart {
			lastRestart = r.Round
		}
	}

	probe := e.MustNew(desc.Shape())
	st := MonitorStats{
		SketchWords:         probe.Words(),
		BudgetWordsPerRound: cfg.Sites * probe.Words(),
	}
	var coordinator sketch.Sketch
	for round := 1; ; round++ {
		restarted := false
		for _, p := range restartsAt[round] {
			if err := leaves[p].restart(desc, e); err != nil {
				return nil, st, err
			}
			st.Restarts++
			restarted = true
		}
		rs := RoundStats{Round: round}
		applied := 0
		for _, l := range leaves {
			a := l.ingest(cfg.SyncEvery)
			applied += a
			if a > 0 {
				rs.ActiveSites++
			}
		}
		st.UpdatesApplied += applied
		// The run ends when no site ingested, none rejoined this round,
		// and no churn event remains scheduled: nothing can change the
		// coordinator anymore. Idle rounds before a still-scheduled
		// restart keep synchronizing — the fabric stays live (and in
		// delta mode ships nothing).
		if applied == 0 && !restarted && round > lastRestart {
			break
		}
		if cfg.CheckpointEvery > 0 && round%cfg.CheckpointEvery == 0 {
			for _, l := range leaves {
				if err := l.checkpoint(desc); err != nil {
					return nil, st, err
				}
			}
		}
		// Ship bottom-up: site→level-0 edges first, then each interior
		// level into the one above. Every edge goes through the codec —
		// the frame a parent absorbs was rebuilt purely from wire bytes.
		for p, l := range leaves {
			frame, err := l.emit(desc, e, cfg.Mode)
			if err != nil {
				return nil, st, err
			}
			if err := ship(frame, levels[0][p/cfg.FanIn], p%cfg.FanIn, desc, cfg.Shards, &rs); err != nil {
				return nil, st, fmt.Errorf("distributed: round %d site %d: %w", round, p, err)
			}
		}
		for li := 1; li < len(levels); li++ {
			for ci, child := range levels[li-1] {
				frame, err := child.emit(desc, e, cfg.Shards, cfg.Mode)
				if err != nil {
					return nil, st, err
				}
				if err := ship(frame, levels[li][ci/cfg.FanIn], ci%cfg.FanIn, desc, cfg.Shards, &rs); err != nil {
					return nil, st, fmt.Errorf("distributed: round %d level %d node %d: %w", round, li-1, ci, err)
				}
			}
		}
		st.Rounds++
		st.CommBytes += rs.CommBytes
		st.CommWords += rs.CommWords
		st.PerRound = append(st.PerRound, rs)
		g, err := root.global(cfg.Shards, desc, e)
		if err != nil {
			return nil, st, fmt.Errorf("distributed: round %d: %w", round, err)
		}
		coordinator = g
		if onSync != nil {
			onSync(round, coordinator)
		}
	}
	if coordinator == nil {
		coordinator = e.MustNew(desc.Shape())
	}
	return coordinator, st, nil
}

// ship moves one frame across one tree edge: encode to wire bytes,
// account the cost, decode on the receiving side, absorb. A nil frame
// is a quiet edge — nothing crosses, nothing is counted.
func ship(frame *codec.DeltaFrame, parent *node, edge int, desc codec.Desc, shards int, rs *RoundStats) error {
	if frame == nil {
		return nil
	}
	var pkt bytes.Buffer
	if err := codec.EncodeDelta(&pkt, *frame); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	rs.CommBytes += pkt.Len()
	got, err := codec.DecodeDelta(&pkt)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	for _, en := range got.Entries {
		rs.CommWords += en.Sk.Words()
	}
	if got.Full {
		rs.FullFrames++
	} else {
		rs.DeltaEntries += len(got.Entries)
	}
	return parent.absorb(edge, &got, desc, shards)
}
