// Package registry is the single algorithm catalog behind every way a
// sketch gets constructed by name: the public repro.New facade, the
// bench harness's legend-name dispatch, and the sketchio wire-format
// loader all resolve through the one table here. Each entry carries
// the canonical public name, the paper's legend name, the accepted
// aliases, the capability flags (linear / bias-aware), and the
// constructor implementing the paper's equal-words sizing protocol
// (§5.1): the bias-aware sketches use depth d with s extra words for
// bias estimation, the baselines use depth d+1, so every algorithm
// consumes (d+1)·s words at the same (s, d) setting.
package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Canonical algorithm names — the strings the public API accepts and
// the wire format writes.
const (
	L1SR        = "l1sr"
	L2SR        = "l2sr"
	L1Mean      = "l1mean"
	L2Mean      = "l2mean"
	CountMin    = "countmin"
	CountMedian = "countmedian"
	CountSketch = "countsketch"
	CMCU        = "cmcu"
	CMLCU       = "cmlcu"
	DengRafiei  = "dengrafiei"
	Exact       = "exact"
)

// Entry describes one constructible algorithm.
type Entry struct {
	Name    string   // canonical name, e.g. "l2sr"
	Legend  string   // the paper's legend name, e.g. "l2-S/R"
	Aliases []string // extra accepted lookups (case-insensitive)

	// Linear marks sketches with the property Φ(x+y) = Φx + Φy, the
	// precondition for Merge and for the distributed model of §1.
	Linear bool
	// Bias marks the bias-aware sketches exposing a Bias() estimate.
	Bias bool

	// New constructs the sketch for dimension n, row width s, depth d,
	// and hash seed. It panics on unusable parameters (constructors
	// validate); callers with untrusted inputs go through SafeNew.
	New func(n, s, d int, seed int64) sketch.Sketch
}

// Stateful is the capture/restore surface a sketch must offer to be
// serializable (the sketchio payload body).
type Stateful interface {
	MarshalState() []byte
	UnmarshalState([]byte) error
}

// marshaler is the simpler state surface of the table-based sketches.
type marshaler interface {
	Marshal() []byte
	Unmarshal([]byte) error
}

type marshalAdapter struct{ m marshaler }

func (a marshalAdapter) MarshalState() []byte          { return a.m.Marshal() }
func (a marshalAdapter) UnmarshalState(b []byte) error { return a.m.Unmarshal(b) }

var (
	entries []*Entry
	byName  = map[string]*Entry{}
)

// Register adds an entry to the catalog. The canonical name, legend,
// and every alias become valid lookups; collisions panic (the catalog
// is assembled in init, a collision is a programmer error).
func Register(e Entry) {
	cp := e
	entries = append(entries, &cp)
	for _, name := range append([]string{e.Name, e.Legend}, e.Aliases...) {
		key := strings.ToLower(name)
		if key == "" {
			continue
		}
		if prev, dup := byName[key]; dup && prev != &cp {
			panic(fmt.Sprintf("registry: name %q registered twice", key))
		}
		byName[key] = &cp
	}
}

// Lookup resolves an algorithm by canonical name, legend name, or
// alias, case-insensitively.
func Lookup(name string) (*Entry, bool) {
	e, ok := byName[strings.ToLower(name)]
	return e, ok
}

// Names returns the canonical names of every registered algorithm,
// sorted.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// SafeNew constructs the named algorithm, converting constructor
// panics (parameter combinations an algorithm rejects) into errors —
// the entry point for descriptors read off the network.
func SafeNew(name string, n, s, d int, seed int64) (sk sketch.Sketch, err error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown algorithm %q", name)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("registry: constructing %s: %v", e.Name, r)
		}
	}()
	return e.New(n, s, d, seed), nil
}

// State adapts sk to the capture/restore surface, or reports that the
// sketch holds state the wire format cannot carry.
func State(sk sketch.Sketch) (Stateful, error) {
	switch s := sk.(type) {
	case Stateful:
		return s, nil
	case marshaler:
		return marshalAdapter{s}, nil
	default:
		return nil, fmt.Errorf("registry: %T is not serializable", sk)
	}
}

// Merge adds src's state into dst. Both must come from the same entry
// with identical shape and seeds; non-linear sketches (or mismatched
// pairs) return sketch.ErrIncompatible from the concrete MergeFrom,
// and types with no merge surface at all report an error naming the
// type.
func Merge(dst, src sketch.Sketch) error {
	switch d := dst.(type) {
	case *core.L1SR:
		s, ok := src.(*core.L1SR)
		if !ok {
			return sketch.ErrIncompatible
		}
		return d.MergeFrom(s)
	case *core.L2SR:
		s, ok := src.(*core.L2SR)
		if !ok {
			return sketch.ErrIncompatible
		}
		return d.MergeFrom(s)
	case sketch.Linear:
		s, ok := src.(sketch.Linear)
		if !ok {
			return sketch.ErrIncompatible
		}
		return d.MergeFrom(s)
	case *stream.Exact:
		s, ok := src.(*stream.Exact)
		if !ok || s.Dim() != d.Dim() {
			return sketch.ErrIncompatible
		}
		for i, v := range s.Vector() {
			if v != 0 {
				d.Update(i, v)
			}
		}
		return nil
	default:
		return fmt.Errorf("registry: %T is not mergeable", dst)
	}
}

// baseCfg is the baselines' shape under the equal-words protocol.
func baseCfg(n, s, d int) sketch.Config {
	return sketch.Config{N: n, Rows: s, Depth: d + 1}
}

func kOf(s int) int {
	if k := s / 4; k >= 1 {
		return k
	}
	return 1
}

func init() {
	Register(Entry{
		Name: L1SR, Legend: "l1-S/R", Aliases: []string{"l1-sr", "l1s/r"},
		Linear: true, Bias: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return core.NewL1SR(core.L1Config{
				N: n, K: kOf(s), Cs: 4, Depth: d, SampleCount: s,
			}, rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: L2SR, Legend: "l2-S/R", Aliases: []string{"l2-sr", "l2s/r"},
		Linear: true, Bias: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return core.NewL2SR(core.L2Config{
				N: n, K: kOf(s), Cs: 4, Depth: d, UseBiasHeap: true,
			}, rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: L1Mean, Legend: "l1-mean",
		Linear: true, Bias: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return core.NewL1SR(core.L1Config{
				N: n, K: kOf(s), Cs: 4, Depth: d, SampleCount: 1, Estimator: core.EstimatorMean,
			}, rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: L2Mean, Legend: "l2-mean",
		Linear: true, Bias: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return core.NewL2SR(core.L2Config{
				N: n, K: kOf(s), Cs: 4, Depth: d, Estimator: core.EstimatorMean,
			}, rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: CountMedian, Legend: "CM", Aliases: []string{"count-median"},
		Linear: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return sketch.NewCountMedian(baseCfg(n, s, d), rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: CountSketch, Legend: "CS", Aliases: []string{"count-sketch"},
		Linear: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return sketch.NewCountSketch(baseCfg(n, s, d), rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: CountMin, Legend: "Count-Min", Aliases: []string{"count-min"},
		Linear: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return sketch.NewCountMin(baseCfg(n, s, d), rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: CMCU, Legend: "CM-CU",
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return sketch.NewCMCU(baseCfg(n, s, d), rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: CMLCU, Legend: "CML-CU",
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return sketch.NewCMLCU(baseCfg(n, s, d), sketch.DefaultCMLBase, rand.New(rand.NewSource(seed)))
		},
	})
	Register(Entry{
		Name: DengRafiei, Legend: "Deng-Rafiei", Aliases: []string{"deng-rafiei"},
		Linear: true,
		New: func(n, s, d int, seed int64) sketch.Sketch {
			return sketch.NewDengRafiei(baseCfg(n, s, d), rand.New(rand.NewSource(seed)))
		},
	})
	// Exact is the ground-truth "sketch": a plain dense vector. It is
	// trivially linear but never shipped in the wire format (its state
	// is the full vector — there is nothing sketched to save).
	Register(Entry{
		Name: Exact, Legend: "Exact",
		Linear: true,
		New: func(n, _, _ int, _ int64) sketch.Sketch {
			return stream.NewExact(n)
		},
	})
}
