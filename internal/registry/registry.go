// Package registry is the single algorithm catalog behind every way a
// sketch gets constructed by name: the public repro.New facade, the
// bench harness's legend-name dispatch, and the sketchio wire-format
// loader all resolve through the one table here. Each entry carries
// the canonical public name, the paper's legend name, the accepted
// aliases, the capability flags (linear / bias-aware / supported
// counter-plane backends), and the constructor implementing the
// paper's equal-words sizing protocol (§5.1): the bias-aware sketches
// use depth d with s extra words for bias estimation, the baselines
// use depth d+1, so every algorithm consumes (d+1)·s words at the same
// (s, d) setting.
package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Canonical algorithm names — the strings the public API accepts and
// the wire format writes.
const (
	L1SR         = "l1sr"
	L2SR         = "l2sr"
	L1Mean       = "l1mean"
	L2Mean       = "l2mean"
	CountMin     = "countmin"
	CountMedian  = "countmedian"
	CountSketch  = "countsketch"
	CMCU         = "cmcu"
	CMLCU        = "cmlcu"
	DengRafiei   = "dengrafiei"
	CounterBraid = "counterbraids"
	Exact        = "exact"
)

// ErrNotLinear is returned when a merge is requested for an algorithm
// without the linearity property Φ(x+y) = Φx + Φy (cmcu, cmlcu):
// conservative update loses it, which is exactly the drawback §2 of
// the paper points out for the distributed setting.
var ErrNotLinear = errors.New("registry: algorithm is not linear")

// ErrBackendUnsupported re-exports the sketch package's capability
// error so callers holding only a registry entry can classify backend
// rejections with one errors.Is target.
var ErrBackendUnsupported = sketch.ErrBackendUnsupported

// ErrHashUnsupported re-exports the sketch package's hash-capability
// error: the requested hash family is not available for the algorithm.
var ErrHashUnsupported = sketch.ErrHashUnsupported

// Shape is the construction-time shape of a sketch: the paper's (n, s,
// d) sizing parameters, the hash seed, and the hash family the rows
// draw from. The zero Hash is pairwise, so shapes (and the wire
// descriptors they come from) without an explicit family keep today's
// exact behavior.
type Shape struct {
	N    int // dimension of the input vector
	S    int // row width (buckets per row)
	D    int // depth (independent rows)
	Seed int64
	Hash sketch.HashKind
}

// Entry describes one constructible algorithm.
type Entry struct {
	Name    string   // canonical name, e.g. "l2sr"
	Legend  string   // the paper's legend name, e.g. "l2-S/R"
	Aliases []string // extra accepted lookups (case-insensitive)

	// Linear marks sketches with the property Φ(x+y) = Φx + Φy, the
	// precondition for Merge and for the distributed model of §1.
	Linear bool
	// Bias marks the bias-aware sketches exposing a Bias() estimate.
	Bias bool
	// Compressed marks algorithms whose counter plane can live in a
	// Counter-Braids-compressed backend (linear, insert-only integer
	// streams only).
	Compressed bool
	// Mmap marks algorithms whose counter plane can be served read-only
	// straight out of a mapped checkpoint file.
	Mmap bool
	// Tiled marks algorithms whose counter plane can use the
	// cache-blocked depth-major tiled layout (linear adds only — the
	// conservative-update algorithms need in-place row views).
	Tiled bool
	// Tabulation marks algorithms whose rows can draw from the
	// tabulation hash family instead of the default pairwise one (the
	// table-based sketches; the S/R recoveries pin the paper's pairwise
	// construction).
	Tabulation bool

	// New constructs the sketch for the given shape and counter-plane
	// backend. Unusable parameters return an error (backend rejections
	// wrap sketch.ErrBackendUnsupported); a constructor may still panic
	// on programmer-error misuse, which SafeNew converts. The zero
	// Backend is the dense plane.
	New func(sh Shape, be sketch.Backend) (sketch.Sketch, error)
}

// MustNew constructs with the dense backend and panics on error — for
// the replica factories (shards, window panes, range levels) whose
// shape was already validated by a successful probe construction.
func (e *Entry) MustNew(sh Shape) sketch.Sketch {
	sk, err := e.New(sh, sketch.Backend{})
	if err != nil {
		panic(err)
	}
	return sk
}

// Stateful is the capture/restore surface a sketch must offer to be
// serializable (the sketchio payload body). MarshalState may fail:
// a compressed counter plane loaded past its decoding threshold has
// no exact cell matrix to write.
type Stateful interface {
	MarshalState() ([]byte, error)
	UnmarshalState([]byte) error
}

// marshaler is the simpler state surface of the table-based sketches.
type marshaler interface {
	Marshal() ([]byte, error)
	Unmarshal([]byte) error
}

type marshalAdapter struct{ m marshaler }

func (a marshalAdapter) MarshalState() ([]byte, error) { return a.m.Marshal() }
func (a marshalAdapter) UnmarshalState(b []byte) error { return a.m.Unmarshal(b) }

var (
	entries []*Entry
	byName  = map[string]*Entry{}
)

// Register adds an entry to the catalog. The canonical name, legend,
// and every alias become valid lookups; collisions panic (the catalog
// is assembled in init, a collision is a programmer error).
func Register(e Entry) {
	cp := e
	entries = append(entries, &cp)
	for _, name := range append([]string{e.Name, e.Legend}, e.Aliases...) {
		key := strings.ToLower(name)
		if key == "" {
			continue
		}
		if prev, dup := byName[key]; dup && prev != &cp {
			panic(fmt.Sprintf("registry: name %q registered twice", key))
		}
		byName[key] = &cp
	}
}

// Lookup resolves an algorithm by canonical name, legend name, or
// alias, case-insensitively.
func Lookup(name string) (*Entry, bool) {
	e, ok := byName[strings.ToLower(name)]
	return e, ok
}

// Names returns the canonical names of every registered algorithm,
// sorted.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// SafeNew constructs the named algorithm on the dense backend,
// additionally converting constructor panics (parameter combinations
// an algorithm rejects at runtime) into errors — the entry point for
// descriptors read off the network.
func SafeNew(name string, sh Shape) (sketch.Sketch, error) {
	return SafeNewBackend(name, sh, sketch.Backend{})
}

// SafeNewBackend is SafeNew with an explicit counter-plane backend.
// Algorithms whose capability flags exclude the requested backend or
// hash family are rejected with an ErrBackendUnsupported- or
// ErrHashUnsupported-wrapped error before the constructor runs.
func SafeNewBackend(name string, sh Shape, be sketch.Backend) (sk sketch.Sketch, err error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown algorithm %q", name)
	}
	switch be.Kind {
	case sketch.BackendCompressed:
		if !e.Compressed {
			return nil, fmt.Errorf("%w: %s has no compressed counter plane", ErrBackendUnsupported, e.Name)
		}
	case sketch.BackendMmap:
		if !e.Mmap {
			return nil, fmt.Errorf("%w: %s cannot be served from a mapped checkpoint", ErrBackendUnsupported, e.Name)
		}
	case sketch.BackendTiled:
		if !e.Tiled {
			return nil, fmt.Errorf("%w: %s cannot use the tiled counter plane", ErrBackendUnsupported, e.Name)
		}
	}
	if sh.Hash != sketch.HashPairwise && !e.Tabulation {
		return nil, fmt.Errorf("%w: %s only supports the pairwise family, got %v", ErrHashUnsupported, e.Name, sh.Hash)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("registry: constructing %s: %v", e.Name, r)
		}
	}()
	sk, err = e.New(sh, be)
	if err != nil {
		return nil, fmt.Errorf("registry: constructing %s: %w", e.Name, err)
	}
	return sk, nil
}

// State adapts sk to the capture/restore surface, or reports that the
// sketch holds state the wire format cannot carry.
func State(sk sketch.Sketch) (Stateful, error) {
	switch s := sk.(type) {
	case Stateful:
		return s, nil
	case marshaler:
		return marshalAdapter{s}, nil
	default:
		return nil, fmt.Errorf("registry: %T is not serializable", sk)
	}
}

// Merge adds src's state into dst. Both must come from the same entry
// with identical shape and seeds; non-linear sketches (or mismatched
// pairs) return sketch.ErrIncompatible from the concrete MergeFrom,
// and types with no merge surface at all return ErrNotLinear.
func Merge(dst, src sketch.Sketch) error {
	switch d := dst.(type) {
	case *core.L1SR:
		s, ok := src.(*core.L1SR)
		if !ok {
			return sketch.ErrIncompatible
		}
		return d.MergeFrom(s)
	case *core.L2SR:
		s, ok := src.(*core.L2SR)
		if !ok {
			return sketch.ErrIncompatible
		}
		return d.MergeFrom(s)
	case sketch.Linear:
		s, ok := src.(sketch.Linear)
		if !ok {
			return sketch.ErrIncompatible
		}
		return d.MergeFrom(s)
	case *stream.Exact:
		s, ok := src.(*stream.Exact)
		if !ok || s.Dim() != d.Dim() {
			return sketch.ErrIncompatible
		}
		for i, v := range s.Vector() {
			if v != 0 {
				d.Update(i, v)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %T has no merge surface", ErrNotLinear, dst)
	}
}

// baseCfg is the baselines' shape under the equal-words protocol.
func baseCfg(sh Shape) sketch.Config {
	return sketch.Config{N: sh.N, Rows: sh.S, Depth: sh.D + 1, Hash: sh.Hash}
}

func kOf(s int) int {
	if k := s / 4; k >= 1 {
		return k
	}
	return 1
}

func init() {
	Register(Entry{
		Name: L1SR, Legend: "l1-S/R", Aliases: []string{"l1-sr", "l1s/r"},
		Linear: true, Bias: true,
		New: func(sh Shape, _ sketch.Backend) (sketch.Sketch, error) {
			return core.NewL1SR(core.L1Config{
				N: sh.N, K: kOf(sh.S), Cs: 4, Depth: sh.D, SampleCount: sh.S,
			}, rand.New(rand.NewSource(sh.Seed))), nil
		},
	})
	Register(Entry{
		Name: L2SR, Legend: "l2-S/R", Aliases: []string{"l2-sr", "l2s/r"},
		Linear: true, Bias: true,
		New: func(sh Shape, _ sketch.Backend) (sketch.Sketch, error) {
			return core.NewL2SR(core.L2Config{
				N: sh.N, K: kOf(sh.S), Cs: 4, Depth: sh.D, UseBiasHeap: true,
			}, rand.New(rand.NewSource(sh.Seed))), nil
		},
	})
	Register(Entry{
		Name: L1Mean, Legend: "l1-mean",
		Linear: true, Bias: true,
		New: func(sh Shape, _ sketch.Backend) (sketch.Sketch, error) {
			return core.NewL1SR(core.L1Config{
				N: sh.N, K: kOf(sh.S), Cs: 4, Depth: sh.D, SampleCount: 1, Estimator: core.EstimatorMean,
			}, rand.New(rand.NewSource(sh.Seed))), nil
		},
	})
	Register(Entry{
		Name: L2Mean, Legend: "l2-mean",
		Linear: true, Bias: true,
		New: func(sh Shape, _ sketch.Backend) (sketch.Sketch, error) {
			return core.NewL2SR(core.L2Config{
				N: sh.N, K: kOf(sh.S), Cs: 4, Depth: sh.D, Estimator: core.EstimatorMean,
			}, rand.New(rand.NewSource(sh.Seed))), nil
		},
	})
	Register(Entry{
		Name: CountMedian, Legend: "CM", Aliases: []string{"count-median"},
		Linear: true, Compressed: true, Mmap: true, Tiled: true, Tabulation: true,
		New: func(sh Shape, be sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewCountMedianBackend(baseCfg(sh), be, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	Register(Entry{
		Name: CountSketch, Legend: "CS", Aliases: []string{"count-sketch"},
		Linear: true, Mmap: true, Tiled: true, Tabulation: true,
		New: func(sh Shape, be sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewCountSketchBackend(baseCfg(sh), be, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	Register(Entry{
		Name: CountMin, Legend: "Count-Min", Aliases: []string{"count-min"},
		Linear: true, Compressed: true, Mmap: true, Tiled: true, Tabulation: true,
		New: func(sh Shape, be sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewCountMinBackend(baseCfg(sh), be, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	Register(Entry{
		Name: CMCU, Legend: "CM-CU",
		Mmap: true, Tabulation: true,
		New: func(sh Shape, be sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewCMCUBackend(baseCfg(sh), be, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	Register(Entry{
		Name: CMLCU, Legend: "CML-CU",
		Mmap: true, Tabulation: true,
		New: func(sh Shape, be sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewCMLCUBackend(baseCfg(sh), sketch.DefaultCMLBase, be, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	Register(Entry{
		Name: DengRafiei, Legend: "Deng-Rafiei", Aliases: []string{"deng-rafiei"},
		Linear: true, Compressed: true, Mmap: true, Tiled: true, Tabulation: true,
		New: func(sh Shape, be sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewDengRafieiBackend(baseCfg(sh), be, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	// Counter Braids (the §2 related work): sized by the dimension n
	// alone — the braid's layers follow the CB design rule, not the
	// equal-words (s, d) protocol, so s and d are accepted and ignored.
	// The braid is natively its own compressed representation; it has
	// no flat cell plane to map, so only the default backend applies.
	Register(Entry{
		Name: CounterBraid, Legend: "CB", Aliases: []string{"cb", "counter-braids"},
		Linear: true,
		New: func(sh Shape, _ sketch.Backend) (sketch.Sketch, error) {
			return sketch.NewCounterBraids(sh.N, rand.New(rand.NewSource(sh.Seed)))
		},
	})
	// Exact is the ground-truth "sketch": a plain dense vector. It is
	// trivially linear but never shipped in the wire format (its state
	// is the full vector — there is nothing sketched to save).
	Register(Entry{
		Name: Exact, Legend: "Exact",
		Linear: true,
		New: func(sh Shape, _ sketch.Backend) (sketch.Sketch, error) {
			return stream.NewExact(sh.N), nil
		},
	})
}
