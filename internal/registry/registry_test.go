package registry

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// paperAlgos are the eight algorithms of the paper's evaluation.
var paperAlgos = []string{
	L1SR, L2SR, CountMin, CountMedian, CountSketch, CMCU, CMLCU, DengRafiei,
}

func TestLookupResolvesCanonicalLegendAndAliases(t *testing.T) {
	cases := map[string]string{
		// canonical names
		"l1sr": L1SR, "l2sr": L2SR, "countmin": CountMin, "exact": Exact,
		// legend names, mixed case
		"l2-S/R": L2SR, "CM": CountMedian, "cs": CountSketch,
		"cm-cu": CMCU, "CML-CU": CMLCU, "Count-Min": CountMin,
		"DENG-RAFIEI": DengRafiei, "Exact": Exact,
		// extra aliases
		"l1-sr": L1SR, "l2s/r": L2SR, "count-median": CountMedian,
		"count-sketch": CountSketch, "count-min": CountMin,
	}
	for name, want := range cases {
		e, ok := Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) failed", name)
			continue
		}
		if e.Name != want {
			t.Errorf("Lookup(%q) = %s, want %s", name, e.Name, want)
		}
	}
	if _, ok := Lookup("no-such-algorithm"); ok {
		t.Error("Lookup of unknown name should fail")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("Names() has %d entries, want 12: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range append(append([]string{}, paperAlgos...), L1Mean, L2Mean, Exact, CounterBraid) {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() missing %s", want)
		}
	}
}

// SafeNew converts constructor panics into errors — the contract for
// descriptors read off the network.
func TestSafeNewConvertsPanics(t *testing.T) {
	if _, err := SafeNew("nope", Shape{N: 100, S: 16, D: 3, Seed: 1}); err == nil {
		t.Error("unknown algorithm should error")
	}
	bad := map[string]struct {
		algo    string
		n, s, d int
	}{
		"negative dim":   {L2SR, -1, 16, 3},
		"zero rows":      {CountMin, 100, 0, 3}, // baselines use s buckets directly
		"negative depth": {L2SR, 100, 16, -1},
		"dengrafiei s<2": {DengRafiei, 100, 1, 3},
	}
	for name, p := range bad {
		if _, err := SafeNew(p.algo, Shape{N: p.n, S: p.s, D: p.d, Seed: 1}); err == nil {
			t.Errorf("%s: SafeNew should return an error, not panic", name)
		}
	}
	sk, err := SafeNew(L2SR, Shape{N: 1000, S: 64, D: 5, Seed: 1})
	if err != nil {
		t.Fatalf("valid parameters: %v", err)
	}
	if sk.Dim() != 1000 {
		t.Errorf("Dim = %d", sk.Dim())
	}
}

// State must adapt every paper algorithm (they all persist), and
// reject the exact vector (nothing sketched to save).
func TestStateCoversAllPaperAlgorithms(t *testing.T) {
	for _, algo := range paperAlgos {
		sk, err := SafeNew(algo, Shape{N: 5000, S: 64, D: 5, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		st, err := State(sk)
		if err != nil {
			t.Fatalf("%s: State: %v", algo, err)
		}
		sk.Update(7, 3)
		sk.Update(7, 2)
		blob, err := st.MarshalState()
		if err != nil {
			t.Fatalf("%s: MarshalState: %v", algo, err)
		}
		fresh, err := SafeNew(algo, Shape{N: 5000, S: 64, D: 5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		fst, err := State(fresh)
		if err != nil {
			t.Fatal(err)
		}
		if err := fst.UnmarshalState(blob); err != nil {
			t.Fatalf("%s: UnmarshalState: %v", algo, err)
		}
		if a, b := sk.Query(7), fresh.Query(7); a != b {
			t.Errorf("%s: state round trip lost updates: %v != %v", algo, a, b)
		}
		if err := fst.UnmarshalState([]byte{1, 2, 3}); err == nil {
			t.Errorf("%s: truncated state should fail", algo)
		}
	}
	ex, err := SafeNew(Exact, Shape{N: 100, S: 0, D: 0, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := State(ex); err == nil {
		t.Error("State(exact) should report not serializable")
	}
}

// Every registry algorithm carries the batched ingestion capability.
func TestEveryEntryImplementsBatchUpdater(t *testing.T) {
	for _, name := range Names() {
		sk, err := SafeNew(name, Shape{N: 1000, S: 64, D: 5, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := sk.(sketch.BatchUpdater); !ok {
			t.Errorf("%s (%T) does not implement sketch.BatchUpdater", name, sk)
		}
	}
}

func TestMergeDispatch(t *testing.T) {
	a, _ := SafeNew(CountMin, Shape{N: 100, S: 16, D: 3, Seed: 1})
	b, _ := SafeNew(CountMin, Shape{N: 100, S: 16, D: 3, Seed: 1})
	b.Update(5, 4)
	if err := Merge(a, b); err != nil {
		t.Fatalf("Merge(countmin, countmin): %v", err)
	}
	if a.Query(5) != 4 {
		t.Errorf("merge lost mass: Query(5) = %f", a.Query(5))
	}
	cs, _ := SafeNew(CountSketch, Shape{N: 100, S: 16, D: 3, Seed: 1})
	if err := Merge(a, cs); err == nil {
		t.Error("cross-type merge should fail")
	}
	ex1, _ := SafeNew(Exact, Shape{N: 10, S: 0, D: 0, Seed: 0})
	ex2, _ := SafeNew(Exact, Shape{N: 10, S: 0, D: 0, Seed: 0})
	ex2.Update(3, 2)
	if err := Merge(ex1, ex2); err != nil || ex1.Query(3) != 2 {
		t.Errorf("exact merge: err=%v Query(3)=%f", err, ex1.Query(3))
	}
	if _, ok := ex1.(*stream.Exact); !ok {
		t.Errorf("exact entry built %T", ex1)
	}
}
