package bench

import "testing"

func TestExtraBOMPStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("OMP decodes take seconds")
	}
	tables := ExtraBOMP(Config{Seed: 1, Depth: 5})
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	exact := tables[0]
	bo, l2 := exact.Col("BOMP"), exact.Col(AlgoL2SR)
	if bo < 0 || l2 < 0 {
		t.Fatal("missing columns")
	}
	for xi := range exact.X {
		if exact.Avg[xi][bo] > 1e-6 {
			t.Errorf("k=%d: BOMP should be exact on biased k-sparse, got %g",
				exact.X[xi], exact.Avg[xi][bo])
		}
		// §2's cost claim: full OMP decode is orders of magnitude
		// slower than a full hash-sketch recovery.
		if exact.QueryNs[xi][bo] < 5*exact.QueryNs[xi][l2] {
			t.Errorf("k=%d: BOMP decode %f ns not ≫ l2 recover %f ns",
				exact.X[xi], exact.QueryNs[xi][bo], exact.QueryNs[xi][l2])
		}
	}
}

func TestExtraRemark1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("remark1 runs a DP per sweep point")
	}
	tables := ExtraRemark1(Config{Seed: 1, Depth: 5})
	tb := tables[0]
	one, two := tb.Col("minbeta-err2k"), tb.Col("two-bias-err2")
	// The single-bias tail must grow with the mode gap while the
	// two-bias optimum stays roughly flat.
	first, last := 0, len(tb.X)-1
	if tb.Avg[last][one] < 5*tb.Avg[first][one] {
		t.Errorf("single-bias tail should grow with gap: %f -> %f",
			tb.Avg[first][one], tb.Avg[last][one])
	}
	if tb.Avg[last][two] > 3*tb.Avg[first][two] {
		t.Errorf("two-bias optimum should stay flat: %f -> %f",
			tb.Avg[first][two], tb.Avg[last][two])
	}
	// At the largest gap the gap between the columns is the price of
	// Remark 1's impossibility.
	if tb.Avg[last][one] < 10*tb.Avg[last][two] {
		t.Errorf("expected a wide 1-bias/2-bias gap at gap=%d", tb.X[last])
	}
}

func TestExtraCounterBraidsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("CB decodes take seconds")
	}
	tables := ExtraCounterBraids(Config{Seed: 1, Depth: 5})
	tb := tables[0]
	cbErr, l2Err := tb.Col("CB avgerr"), tb.Col("l2 avgerr")
	cbQ, l2Q := tb.Col("CB point-query ns"), tb.Col("l2 point-query ns")
	for xi := range tb.X {
		if tb.Avg[xi][cbErr] != 0 {
			t.Errorf("n=%d: CB should decode exactly, got err %f", tb.X[xi], tb.Avg[xi][cbErr])
		}
		if tb.Avg[xi][l2Err] <= 0 {
			t.Errorf("n=%d: l2 error should be positive (approximate)", tb.X[xi])
		}
		// The §2 claim: CB cannot answer a point query without a full
		// decode — orders of magnitude slower.
		if tb.Avg[xi][cbQ] < 100*tb.Avg[xi][l2Q] {
			t.Errorf("n=%d: CB point query %f ns not ≫ l2 %f ns",
				tb.X[xi], tb.Avg[xi][cbQ], tb.Avg[xi][l2Q])
		}
	}
}

func TestExtraDengRafieiStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps a few sketch builds")
	}
	tables := ExtraDengRafiei(Config{Scale: 0.02, Seed: 1, Depth: 9})
	tb := tables[0]
	dr, cs := tb.Col(AlgoDeng), tb.Col(AlgoCS)
	l2, cm := tb.Col(AlgoL2SR), tb.Col(AlgoCntMin)
	for xi := range tb.X {
		// §2: Deng-Rafiei ≈ Count-Sketch (within 2× either way)...
		if tb.Avg[xi][dr] > 2*tb.Avg[xi][cs] || tb.Avg[xi][cs] > 2*tb.Avg[xi][dr] {
			t.Errorf("s=%d: DR %f and CS %f should be comparable",
				tb.X[xi], tb.Avg[xi][dr], tb.Avg[xi][cs])
		}
		// ...far better than uncorrected Count-Min...
		if tb.Avg[xi][dr] > tb.Avg[xi][cm]/5 {
			t.Errorf("s=%d: DR %f should be well below Count-Min %f",
				tb.X[xi], tb.Avg[xi][dr], tb.Avg[xi][cm])
		}
		// ...but unable to reach bias-aware quality.
		if tb.Avg[xi][l2] > tb.Avg[xi][dr]/1.5 {
			t.Errorf("s=%d: l2-S/R %f should be clearly below DR %f",
				tb.X[xi], tb.Avg[xi][l2], tb.Avg[xi][dr])
		}
	}
}
