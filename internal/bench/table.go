// Package bench is the experiment harness for §5 of the paper: one
// runner per figure, each sweeping sketch size (or depth) over the
// figure's workload, scoring every algorithm by the paper's two point
// query measurements — average error (1/n)·‖x−x̂‖₁ and maximum error
// ‖x−x̂‖∞ — and, for the streaming experiment, per-update and
// per-query times. Runners emit Tables that print as aligned text or
// CSV; cmd/biasrepro is the CLI front end and bench_test.go wires each
// figure into `go test -bench`.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table holds one figure's (or sub-figure's) results: a sweep variable
// on the x axis and one column per algorithm for each metric.
type Table struct {
	ID     string // e.g. "fig1a"
	Title  string
	XLabel string // "s" or "d"
	X      []int
	Algos  []string

	// Avg[xi][ai] and Max[xi][ai] are the two §5.1 measurements.
	Avg [][]float64
	Max [][]float64

	// UpdateNs and QueryNs are set only by the streaming experiment
	// (Figure 6c–6d).
	UpdateNs [][]float64
	QueryNs  [][]float64
}

// Print renders the table as aligned text, one block per metric.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	t.printMetric(w, "average error", t.Avg)
	t.printMetric(w, "maximum error", t.Max)
	if t.UpdateNs != nil {
		t.printMetric(w, "update ns/op", t.UpdateNs)
	}
	if t.QueryNs != nil {
		t.printMetric(w, "query ns/op", t.QueryNs)
	}
}

func (t *Table) printMetric(w io.Writer, name string, data [][]float64) {
	if data == nil {
		return
	}
	fmt.Fprintf(w, "-- %s --\n", name)
	fmt.Fprintf(w, "%10s", t.XLabel)
	for _, a := range t.Algos {
		fmt.Fprintf(w, " %14s", a)
	}
	fmt.Fprintln(w)
	for xi, x := range t.X {
		fmt.Fprintf(w, "%10d", x)
		for ai := range t.Algos {
			fmt.Fprintf(w, " %14.4f", data[xi][ai])
		}
		fmt.Fprintln(w)
	}
}

// CSV renders the table as comma-separated rows with a metric column.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "figure,metric,%s,%s\n", t.XLabel, strings.Join(t.Algos, ","))
	emit := func(metric string, data [][]float64) {
		if data == nil {
			return
		}
		for xi, x := range t.X {
			fmt.Fprintf(w, "%s,%s,%d", t.ID, metric, x)
			for ai := range t.Algos {
				fmt.Fprintf(w, ",%g", data[xi][ai])
			}
			fmt.Fprintln(w)
		}
	}
	emit("avg", t.Avg)
	emit("max", t.Max)
	emit("update_ns", t.UpdateNs)
	emit("query_ns", t.QueryNs)
}

// Col returns the column index of an algorithm, -1 if absent.
func (t *Table) Col(algo string) int {
	for i, a := range t.Algos {
		if a == algo {
			return i
		}
	}
	return -1
}
