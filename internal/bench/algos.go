package bench

import (
	"fmt"

	"repro/internal/registry"
	"repro/internal/sketch"
)

// Algorithm names as used in the paper's legends.
const (
	AlgoL1SR   = "l1-S/R"
	AlgoL2SR   = "l2-S/R"
	AlgoCM     = "CM"     // Count-Median
	AlgoCS     = "CS"     // Count-Sketch
	AlgoCMCU   = "CM-CU"  // Count-Min, conservative update
	AlgoCMLCU  = "CML-CU" // Count-Min-Log, conservative update
	AlgoL1Mean = "l1-mean"
	AlgoL2Mean = "l2-mean"
	AlgoCntMin = "Count-Min" // extra baseline (paper omits it: CM-CU dominates)
	AlgoDeng   = "Deng-Rafiei"
)

// SixMain is the algorithm set of Figures 1–7.
var SixMain = []string{AlgoL1SR, AlgoL2SR, AlgoCM, AlgoCS, AlgoCMCU, AlgoCMLCU}

// MeanComparison is the algorithm set of Figures 8–9 (§5.4).
var MeanComparison = []string{AlgoL1SR, AlgoL2SR, AlgoL1Mean, AlgoL2Mean}

// All lists every constructible algorithm.
var All = []string{
	AlgoL1SR, AlgoL2SR, AlgoCM, AlgoCS, AlgoCMCU, AlgoCMLCU,
	AlgoL1Mean, AlgoL2Mean, AlgoCntMin, AlgoDeng,
}

// Make constructs an algorithm following the paper's sizing protocol
// (§5.1): the bias-aware sketches use depth d with s extra words for
// bias estimation; the baselines use depth d+1, so every algorithm
// consumes (d+1)·s words. k is s/4 (the minimal c_s = 4). Streaming
// variants of the bias-aware sketches (Bias-Heap / BST-maintained
// samples) are always used, so the same constructor serves the vector
// and the stream experiments.
//
// Make is legend-name sugar over the shared algorithm catalog in
// internal/registry, which also backs the public repro.New facade and
// the wire-format codec loader.
func Make(algo string, n, s, d int, seed int64) sketch.Sketch {
	e, ok := registry.Lookup(algo)
	if !ok {
		panic(fmt.Sprintf("bench: unknown algorithm %q", algo))
	}
	return e.MustNew(registry.Shape{N: n, S: s, D: d, Seed: seed})
}

// MakeFast constructs an algorithm at the same shape as Make but in
// its fastest supported configuration: the tabulation hash family
// where the entry supports it (the table sketches), falling back to
// the paper's pairwise construction otherwise. The plane stays dense —
// at the benchmark shape each row fits L1, so the tiled layout's extra
// position arithmetic only costs (the tiled plane is benchmarked
// separately by the Backend* benchmarks). The batched update/query
// benchmarks use MakeFast for their headline entries so the committed
// baseline tracks the hot path users are expected to run; the pairwise
// construction stays benchmarked under the /pairwise sub-entries.
func MakeFast(algo string, n, s, d int, seed int64) sketch.Sketch {
	e, ok := registry.Lookup(algo)
	if !ok {
		panic(fmt.Sprintf("bench: unknown algorithm %q", algo))
	}
	sh := registry.Shape{N: n, S: s, D: d, Seed: seed}
	if e.Tabulation {
		sh.Hash = sketch.HashTabulation
	}
	return e.MustNew(sh)
}
