package bench

import (
	"fmt"

	"repro/internal/registry"
	"repro/internal/sketch"
)

// Algorithm names as used in the paper's legends.
const (
	AlgoL1SR   = "l1-S/R"
	AlgoL2SR   = "l2-S/R"
	AlgoCM     = "CM"     // Count-Median
	AlgoCS     = "CS"     // Count-Sketch
	AlgoCMCU   = "CM-CU"  // Count-Min, conservative update
	AlgoCMLCU  = "CML-CU" // Count-Min-Log, conservative update
	AlgoL1Mean = "l1-mean"
	AlgoL2Mean = "l2-mean"
	AlgoCntMin = "Count-Min" // extra baseline (paper omits it: CM-CU dominates)
	AlgoDeng   = "Deng-Rafiei"
)

// SixMain is the algorithm set of Figures 1–7.
var SixMain = []string{AlgoL1SR, AlgoL2SR, AlgoCM, AlgoCS, AlgoCMCU, AlgoCMLCU}

// MeanComparison is the algorithm set of Figures 8–9 (§5.4).
var MeanComparison = []string{AlgoL1SR, AlgoL2SR, AlgoL1Mean, AlgoL2Mean}

// All lists every constructible algorithm.
var All = []string{
	AlgoL1SR, AlgoL2SR, AlgoCM, AlgoCS, AlgoCMCU, AlgoCMLCU,
	AlgoL1Mean, AlgoL2Mean, AlgoCntMin, AlgoDeng,
}

// Make constructs an algorithm following the paper's sizing protocol
// (§5.1): the bias-aware sketches use depth d with s extra words for
// bias estimation; the baselines use depth d+1, so every algorithm
// consumes (d+1)·s words. k is s/4 (the minimal c_s = 4). Streaming
// variants of the bias-aware sketches (Bias-Heap / BST-maintained
// samples) are always used, so the same constructor serves the vector
// and the stream experiments.
//
// Make is legend-name sugar over the shared algorithm catalog in
// internal/registry, which also backs the public repro.New facade and
// the wire-format codec loader.
func Make(algo string, n, s, d int, seed int64) sketch.Sketch {
	e, ok := registry.Lookup(algo)
	if !ok {
		panic(fmt.Sprintf("bench: unknown algorithm %q", algo))
	}
	return e.MustNew(n, s, d, seed)
}
