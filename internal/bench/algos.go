package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sketch"
)

// Algorithm names as used in the paper's legends.
const (
	AlgoL1SR   = "l1-S/R"
	AlgoL2SR   = "l2-S/R"
	AlgoCM     = "CM"     // Count-Median
	AlgoCS     = "CS"     // Count-Sketch
	AlgoCMCU   = "CM-CU"  // Count-Min, conservative update
	AlgoCMLCU  = "CML-CU" // Count-Min-Log, conservative update
	AlgoL1Mean = "l1-mean"
	AlgoL2Mean = "l2-mean"
	AlgoCntMin = "Count-Min" // extra baseline (paper omits it: CM-CU dominates)
	AlgoDeng   = "Deng-Rafiei"
)

// SixMain is the algorithm set of Figures 1–7.
var SixMain = []string{AlgoL1SR, AlgoL2SR, AlgoCM, AlgoCS, AlgoCMCU, AlgoCMLCU}

// MeanComparison is the algorithm set of Figures 8–9 (§5.4).
var MeanComparison = []string{AlgoL1SR, AlgoL2SR, AlgoL1Mean, AlgoL2Mean}

// All lists every constructible algorithm.
var All = []string{
	AlgoL1SR, AlgoL2SR, AlgoCM, AlgoCS, AlgoCMCU, AlgoCMLCU,
	AlgoL1Mean, AlgoL2Mean, AlgoCntMin, AlgoDeng,
}

// Make constructs an algorithm following the paper's sizing protocol
// (§5.1): the bias-aware sketches use depth d with s extra words for
// bias estimation; the baselines use depth d+1, so every algorithm
// consumes (d+1)·s words. k is s/4 (the minimal c_s = 4). Streaming
// variants of the bias-aware sketches (Bias-Heap / BST-maintained
// samples) are always used, so the same constructor serves the vector
// and the stream experiments.
func Make(algo string, n, s, d int, seed int64) sketch.Sketch {
	r := rand.New(rand.NewSource(seed))
	k := s / 4
	if k < 1 {
		k = 1
	}
	scfg := sketch.Config{N: n, Rows: s, Depth: d + 1}
	switch algo {
	case AlgoL1SR:
		return core.NewL1SR(core.L1Config{
			N: n, K: k, Cs: 4, Depth: d, SampleCount: s,
		}, r)
	case AlgoL2SR:
		return core.NewL2SR(core.L2Config{
			N: n, K: k, Cs: 4, Depth: d, UseBiasHeap: true,
		}, r)
	case AlgoL1Mean:
		return core.NewL1SR(core.L1Config{
			N: n, K: k, Cs: 4, Depth: d, SampleCount: 1, Estimator: core.EstimatorMean,
		}, r)
	case AlgoL2Mean:
		return core.NewL2SR(core.L2Config{
			N: n, K: k, Cs: 4, Depth: d, Estimator: core.EstimatorMean,
		}, r)
	case AlgoCM:
		return sketch.NewCountMedian(scfg, r)
	case AlgoCS:
		return sketch.NewCountSketch(scfg, r)
	case AlgoCMCU:
		return sketch.NewCMCU(scfg, r)
	case AlgoCMLCU:
		return sketch.NewCMLCU(scfg, sketch.DefaultCMLBase, r)
	case AlgoCntMin:
		return sketch.NewCountMin(scfg, r)
	case AlgoDeng:
		return sketch.NewDengRafiei(scfg, r)
	default:
		panic(fmt.Sprintf("bench: unknown algorithm %q", algo))
	}
}
