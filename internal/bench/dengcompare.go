package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/sketch"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// ExtraDengRafiei checks the remaining §2 prose claim: Deng and
// Rafiei's bias-corrected Count-Min "can only achieve comparable
// recovery quality as Count-Sketch" — its other-buckets-average noise
// estimate removes the global mass level but cannot exploit the data
// bias the way ℓ1/ℓ2-S/R do. We sweep s on biased Gaussian data and
// report all four plus plain Count-Min as the uncorrected reference.
func ExtraDengRafiei(cfg Config) []*Table {
	n := cfg.dim(1_000_000)
	svals := cfg.sweep([]int{1000, 2000, 5000, 10000}, n)
	algos := []string{AlgoDeng, AlgoCS, AlgoL2SR, AlgoCntMin}
	r := rand.New(rand.NewSource(cfg.seedFor(13)))
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	t := &Table{
		ID:     "dengrafiei",
		Title:  fmt.Sprintf("Deng-Rafiei vs CS vs l2-S/R, Gaussian n=%d", n),
		XLabel: "s",
		X:      svals,
		Algos:  algos,
	}
	d := cfg.depth()
	for xi, s := range svals {
		avg := make([]float64, len(algos))
		mx := make([]float64, len(algos))
		for ai, algo := range algos {
			sk := Make(algo, n, s, d, cfg.seedFor(xi, ai+60))
			sketch.SketchVector(sk, x)
			xhat := sketch.Recover(sk)
			avg[ai] = vecmath.AvgAbsErr(x, xhat)
			mx[ai] = vecmath.MaxAbsErr(x, xhat)
			cfg.progress("dengrafiei s=%d %s: avg=%.4f", s, algo, avg[ai])
		}
		t.Avg = append(t.Avg, avg)
		t.Max = append(t.Max, mx)
	}
	return []*Table{t}
}
