package bench

import (
	"math/rand"
	"testing"

	"repro/internal/sketch"
)

// Query benchmarks at the paper's §5.1 shape (s=4096, d=9), the twin
// of update_bench_test.go: the same b.N point queries flow through the
// element-wise Query loop and through QueryBatch in batches of
// queryBatchLen, so ns/op is directly comparable between the two — the
// batched number must win by the row-major traversal (one
// hash/sign-coefficient load per row per batch, cache-hot rows for the
// gather; the median/min step runs per element either way).
const (
	queryBenchN   = 1_000_000
	queryBenchS   = 4096
	queryBenchD   = 9
	queryBatchLen = 1024
	queryFillLen  = 1 << 18 // updates ingested before queries start
)

// queriedSketch builds an algorithm at the benchmark shape (via mk:
// MakeFast for the batched headline entries, Make for the element-wise
// and /pairwise entries) and feeds it a fixed stream, so queries touch
// realistically populated rows.
func queriedSketch(b *testing.B, algo string, mk func(string, int, int, int, int64) sketch.Sketch) sketch.Sketch {
	b.Helper()
	sk := mk(algo, queryBenchN, queryBenchS, queryBenchD, 1)
	r := rand.New(rand.NewSource(79))
	idx := make([]int, 4096)
	ones := make([]float64, 4096)
	for j := range ones {
		ones[j] = 1
	}
	for done := 0; done < queryFillLen; done += len(idx) {
		for j := range idx {
			idx[j] = r.Intn(queryBenchN)
		}
		sketch.UpdateBatch(sk, idx, ones)
	}
	return sk
}

// queryStream pre-materializes the queried coordinates so neither
// benchmark pays RNG costs inside the timed loop.
func queryStream() []int {
	r := rand.New(rand.NewSource(80))
	idx := make([]int, 1<<16)
	for j := range idx {
		idx[j] = r.Intn(queryBenchN)
	}
	return idx
}

func BenchmarkQuery(b *testing.B) {
	idx := queryStream()
	for _, algo := range All {
		b.Run(algo, func(b *testing.B) {
			sk := queriedSketch(b, algo, Make)
			mask := len(idx) - 1
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += sk.Query(idx[i&mask])
			}
			_ = sink
		})
	}
}

func BenchmarkQueryBatch(b *testing.B) {
	idx := queryStream()
	run := func(name string, mk func(string, int, int, int, int64) sketch.Sketch) {
		for _, algo := range All {
			b.Run(algo+name, func(b *testing.B) {
				sk := queriedSketch(b, algo, mk)
				bq, ok := sk.(sketch.BatchQuerier)
				if !ok {
					b.Fatalf("%s (%T) has no batched query path", algo, sk)
				}
				out := make([]float64, queryBatchLen)
				span := len(idx) - queryBatchLen
				b.ResetTimer()
				for done := 0; done < b.N; done += queryBatchLen {
					m := queryBatchLen
					if rem := b.N - done; rem < m {
						m = rem
					}
					off := done % span
					bq.QueryBatch(idx[off:off+m], out[:m])
				}
			})
		}
	}
	run("", MakeFast)
	run("/pairwise", Make)
}
