package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sketch"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// ExtraRemark1 quantifies Remark 1 of the paper: multiple bias values
// cannot be supported by any sublinear sketch (the recovery would need
// one bit per coordinate to know which bias to add back), but the
// *offline* multi-bias optimum is computable. On two-level (bimodal)
// data we report, as the mode separation grows:
//
//   - the single-bias tail min_β Err_2^k(x−β) (what ℓ2-S/R's guarantee
//     is expressed in),
//   - the offline two-bias optimum (what a hypothetical two-bias
//     sketch could target), and
//   - the measured ℓ2-S/R average recovery error.
//
// The single-bias tail grows linearly with the separation while the
// two-bias optimum stays flat — the gap is exactly the price of
// Remark 1's impossibility.
func ExtraRemark1(cfg Config) []*Table {
	const n, k = 50_000, 64
	separations := []int{0, 50, 200, 800}
	algos := []string{"minbeta-err2k", "two-bias-err2", "l2-S/R avgerr"}
	t := &Table{
		ID:     "remark1",
		Title:  fmt.Sprintf("Remark 1: bimodal data, n=%d, mode gap sweep", n),
		XLabel: "gap",
		X:      separations,
		Algos:  algos,
	}
	// The O(n²·m) DP runs on a subsample for tractability.
	const dpSample = 1500
	for xi, gap := range separations {
		r := rand.New(rand.NewSource(cfg.seedFor(xi, 41)))
		x := workload.Gaussian{Bias: 100, Sigma: 10}.Vector(n, r)
		for i := 0; i < n; i += 2 { // half the coordinates at the second level
			x[i] += float64(gap)
		}
		_, oneBias := vecmath.MinBetaErrK(x, k, 2)

		sub := make([]float64, dpSample)
		for j := range sub {
			sub[j] = x[r.Intn(n)]
		}
		// Scale the subsampled ℓ2 cost back to the full dimension
		// (cost² is additive per coordinate).
		twoBias := vecmath.MinMultiBiasErr(sub, 2, 2) *
			math.Sqrt(float64(n)/float64(dpSample))

		l2 := Make(AlgoL2SR, n, 4*k*4, cfg.depth(), cfg.seedFor(xi, 42))
		sketch.SketchVector(l2, x)
		avgErr := vecmath.AvgAbsErr(x, sketch.Recover(l2))

		t.Avg = append(t.Avg, []float64{oneBias, twoBias, avgErr})
		t.Max = append(t.Max, []float64{oneBias, twoBias, avgErr})
		cfg.progress("remark1 gap=%d: 1-bias=%.0f 2-bias=%.0f l2err=%.2f", gap, oneBias, twoBias, avgErr)
	}
	return []*Table{t}
}
