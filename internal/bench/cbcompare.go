package bench

import (
	"math/rand"
	"time"

	"repro/internal/counterbraids"
	"repro/internal/sketch"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// ExtraCounterBraids checks §2's prose on Counter Braids [24]: "it
// requires a larger amount of space to execute; and its
// encoding/decoding procedures are recursive, layer by layer, and thus
// it cannot answer point query without decoding the whole input
// vector". We give CB a braid sized for exact decoding of a biased
// Gaussian vector and ℓ2-S/R a quarter of those bits, and report
// space, recovery error (CB exact, ℓ2 approximate), and the cost of a
// single point query (CB: a full layered decode; ℓ2: d bucket reads).
func ExtraCounterBraids(cfg Config) []*Table {
	sizes := []int{20_000, 50_000, 100_000}
	algos := []string{"CB bits/coord", "l2 bits/coord", "CB avgerr", "l2 avgerr",
		"CB point-query ns", "l2 point-query ns"}
	t := &Table{
		ID:     "cbraids",
		Title:  "Counter Braids vs l2-S/R, Gaussian(100,15) traffic",
		XLabel: "n",
		X:      sizes,
		Algos:  algos,
	}
	for xi, n := range sizes {
		r := rand.New(rand.NewSource(cfg.seedFor(xi, 51)))
		x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
		for i := range x {
			if x[i] < 0 {
				x[i] = 0 // CB is insert-only/non-negative
			}
		}

		cb := counterbraids.New(counterbraids.Config{N: n},
			rand.New(rand.NewSource(cfg.seedFor(xi, 52))))
		for i, v := range x {
			if v > 0 {
				cb.Update(i, v)
			}
		}
		start := time.Now()
		dec, err := cb.Decode(64)
		cbQueryNs := float64(time.Since(start).Nanoseconds()) // one point query = full decode
		cbErr := -1.0
		if err == nil {
			cbErr = vecmath.AvgAbsErr(x, dec)
		}

		// ℓ2-S/R at a quarter of CB's bit budget.
		words := cb.Bits() / 64 / 4
		s := words / 10
		l2 := Make(AlgoL2SR, n, s, cfg.depth(), cfg.seedFor(xi, 53))
		sketch.SketchVector(l2, x)
		l2.Query(0) // warm the ψ column-sum caches outside the timer
		start = time.Now()
		const probes = 1000
		for q := 0; q < probes; q++ {
			l2.Query(q % n)
		}
		l2QueryNs := float64(time.Since(start).Nanoseconds()) / probes
		l2Err := vecmath.AvgAbsErr(x, sketch.Recover(l2))

		row := []float64{
			float64(cb.Bits()) / float64(n),
			float64(l2.Words()*64) / float64(n),
			cbErr,
			l2Err,
			cbQueryNs,
			l2QueryNs,
		}
		t.Avg = append(t.Avg, row)
		t.Max = append(t.Max, row)
		cfg.progress("cbraids n=%d: CB %d bits (err %.2f), l2 %d bits (err %.2f)",
			n, cb.Bits(), cbErr, l2.Words()*64, l2Err)
	}
	return []*Table{t}
}
