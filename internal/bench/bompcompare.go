package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bomp"
	"repro/internal/sketch"
	"repro/internal/vecmath"
)

// ExtraBOMP is an experiment the paper argues in prose (§2) but does
// not plot: BOMP [31] versus the bias-aware sketches on the biased
// k-sparse model BOMP was designed for, and on biased-noisy data where
// its analysis does not apply. Columns are recovery error at matched
// sketch sizes, plus decode time — the paper's two criticisms (OMP is
// "very time expensive" and "cannot answer point query without
// decoding the whole vector x") made measurable.
//
// BOMP's dense Gaussian matrix is Θ(t·n) memory, so this experiment
// runs at small n regardless of Scale.
func ExtraBOMP(cfg Config) []*Table {
	const n = 2000
	outlierCounts := []int{1, 4, 16}
	algos := []string{"BOMP", AlgoL1SR, AlgoL2SR, AlgoCS}

	mkVec := func(k int, noisy bool, r *rand.Rand) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = 100
			if noisy {
				x[i] += r.NormFloat64() * 15
			}
		}
		for j := 0; j < k; j++ {
			x[r.Intn(n)] += float64(50_000 * (j%3 + 1))
		}
		return x
	}

	run := func(id, title string, noisy bool) *Table {
		t := &Table{ID: id, Title: title, XLabel: "k", X: outlierCounts, Algos: algos}
		for xi, k := range outlierCounts {
			avg := make([]float64, len(algos))
			mx := make([]float64, len(algos))
			dec := make([]float64, len(algos))
			r := rand.New(rand.NewSource(cfg.seedFor(xi, boolToInt(noisy))))
			x := mkVec(k, noisy, r)
			// BOMP: t rows sized to match the hash sketches' words.
			s := 16 * k
			if s < 64 {
				s = 64
			}
			words := (cfg.depth() + 1) * s
			bp := bomp.New(n, words, rand.New(rand.NewSource(cfg.seedFor(xi, 7))))
			for i, v := range x {
				bp.Update(i, v)
			}
			start := time.Now()
			xt, err := bp.Recover(k)
			dec[0] = float64(time.Since(start).Nanoseconds())
			if err != nil {
				avg[0], mx[0] = -1, -1
			} else {
				avg[0] = vecmath.AvgAbsErr(x, xt)
				mx[0] = vecmath.MaxAbsErr(x, xt)
			}
			for ai, algo := range algos[1:] {
				sk := Make(algo, n, s, cfg.depth(), cfg.seedFor(xi, ai+20))
				sketch.SketchVector(sk, x)
				start := time.Now()
				xhat := sketch.Recover(sk)
				dec[ai+1] = float64(time.Since(start).Nanoseconds())
				avg[ai+1] = vecmath.AvgAbsErr(x, xhat)
				mx[ai+1] = vecmath.MaxAbsErr(x, xhat)
			}
			cfg.progress("%s k=%d done", id, k)
			t.Avg = append(t.Avg, avg)
			t.Max = append(t.Max, mx)
			t.QueryNs = append(t.QueryNs, dec)
		}
		return t
	}

	return []*Table{
		run("bompA", fmt.Sprintf("BOMP comparison, exactly biased k-sparse, n=%d", n), false),
		run("bompB", fmt.Sprintf("BOMP comparison, biased noisy (sigma=15), n=%d", n), true),
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
