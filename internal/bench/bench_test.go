package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Scale: 0.002, Seed: 42, Depth: 5} }

func TestMakeAllAlgorithms(t *testing.T) {
	for _, algo := range All {
		sk := Make(algo, 10000, 256, 5, 1)
		if sk.Dim() != 10000 {
			t.Errorf("%s: Dim = %d", algo, sk.Dim())
		}
		sk.Update(3, 5)
		_ = sk.Query(3)
		if sk.Words() <= 0 {
			t.Errorf("%s: non-positive Words", algo)
		}
	}
}

func TestMakeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Make("nope", 100, 16, 3, 1)
}

// Equal-words protocol: at the same (s, d) every algorithm must use
// (d+1)·s words within a ±s slack (the paper's sizing, §5.1).
func TestEqualWordsProtocol(t *testing.T) {
	const n, s, d = 50000, 1024, 9
	want := (d + 1) * s
	for _, algo := range SixMain {
		w := Make(algo, n, s, d, 1).Words()
		if w < want-s || w > want+s {
			t.Errorf("%s: %d words, want %d±%d", algo, w, want, s)
		}
	}
}

func TestSweepClampsAndDeduplicates(t *testing.T) {
	cfg := Config{Scale: 0.0001}
	sv := cfg.sweep([]int{1000, 2000, 5000}, 400)
	for i, s := range sv {
		if s < 64 || s > 100 {
			t.Errorf("sweep[%d] = %d out of clamp range", i, s)
		}
		if i > 0 && sv[i] == sv[i-1] {
			t.Error("duplicates not removed")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	if cfg.scale() != 1 || cfg.depth() != 9 {
		t.Error("zero config should default to scale 1, depth 9")
	}
	if cfg.dim(500) != 1000 {
		t.Error("dim should clamp up to 1000")
	}
}

func TestSeedForDeterministic(t *testing.T) {
	cfg := Config{Seed: 7}
	if cfg.seedFor(1, 2) != cfg.seedFor(1, 2) {
		t.Error("seedFor not deterministic")
	}
	if cfg.seedFor(1, 2) == cfg.seedFor(2, 1) {
		t.Error("seedFor should depend on order")
	}
	if cfg.seedFor(1) < 0 {
		t.Error("seedFor must be non-negative for rand.NewSource")
	}
}

// Smoke-run every figure at tiny scale and validate table structure
// plus the paper's qualitative ordering where it is robust at small n.
func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke runs take a few seconds")
	}
	cfg := tiny()
	for fig, run := range Figures {
		tables := run(cfg)
		if len(tables) == 0 {
			t.Fatalf("fig %d returned no tables", fig)
		}
		for _, tb := range tables {
			if tb.ID == "" || len(tb.X) == 0 || len(tb.Algos) == 0 {
				t.Fatalf("fig %d: malformed table %+v", fig, tb)
			}
			if len(tb.Avg) != len(tb.X) || len(tb.Max) != len(tb.X) {
				t.Fatalf("fig %d (%s): row count mismatch", fig, tb.ID)
			}
			for xi := range tb.X {
				for ai, a := range tb.Algos {
					if tb.Avg[xi][ai] < 0 || tb.Max[xi][ai] < tb.Avg[xi][ai] {
						t.Errorf("fig %d (%s) %s: avg %f max %f inconsistent",
							fig, tb.ID, a, tb.Avg[xi][ai], tb.Max[xi][ai])
					}
				}
			}
		}
	}
}

// Figure 1's headline shape must hold even at tiny scale: the
// bias-aware sketches beat CM and CS on biased Gaussian data at every
// sweep point.
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs the fig1 harness")
	}
	cfg := tiny()
	cfg.Depth = 9
	tables := Fig1(cfg)
	for _, tb := range tables {
		l1, l2 := tb.Col(AlgoL1SR), tb.Col(AlgoL2SR)
		cm, cs := tb.Col(AlgoCM), tb.Col(AlgoCS)
		for xi := range tb.X {
			if tb.Avg[xi][l1] >= tb.Avg[xi][cm] {
				t.Errorf("%s s=%d: l1-S/R avg %f not below CM %f",
					tb.ID, tb.X[xi], tb.Avg[xi][l1], tb.Avg[xi][cm])
			}
			if tb.Avg[xi][l2] >= tb.Avg[xi][cs] {
				t.Errorf("%s s=%d: l2-S/R avg %f not below CS %f",
					tb.ID, tb.X[xi], tb.Avg[xi][l2], tb.Avg[xi][cs])
			}
		}
	}
}

// Figure 8's shape: with shifted outliers, the mean heuristics must be
// much worse than the bias-aware estimators.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs the fig8 harness")
	}
	// Depth 9 (the paper's d): at depth 5 an outlier coordinate can
	// lose its row-median majority at the smallest s and leak a ~1e5
	// error into the average, which is exactly the small-d failure
	// mode Theorem 4's d = Θ(log n) exists to exclude.
	cfg := tiny()
	cfg.Depth = 9
	tables := Fig8(cfg)
	shifted := tables[1]
	l1, l2 := shifted.Col(AlgoL1SR), shifted.Col(AlgoL2SR)
	m1, m2 := shifted.Col(AlgoL1Mean), shifted.Col(AlgoL2Mean)
	for xi := range shifted.X {
		if shifted.Avg[xi][m1] < 2*shifted.Avg[xi][l1] {
			t.Errorf("s=%d: l1-mean %f should blow up vs l1-S/R %f",
				shifted.X[xi], shifted.Avg[xi][m1], shifted.Avg[xi][l1])
		}
		if shifted.Avg[xi][m2] < 2*shifted.Avg[xi][l2] {
			t.Errorf("s=%d: l2-mean %f should blow up vs l2-S/R %f",
				shifted.X[xi], shifted.Avg[xi][m2], shifted.Avg[xi][l2])
		}
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tb := &Table{
		ID: "figX", Title: "demo", XLabel: "s",
		X: []int{10, 20}, Algos: []string{"a", "b"},
		Avg: [][]float64{{1, 2}, {3, 4}},
		Max: [][]float64{{5, 6}, {7, 8}},
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "average error", "maximum error", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q", want)
		}
	}
	buf.Reset()
	tb.CSV(&buf)
	if !strings.Contains(buf.String(), "figX,avg,10,1,2") {
		t.Errorf("CSV output malformed:\n%s", buf.String())
	}
	if tb.Col("b") != 1 || tb.Col("zz") != -1 {
		t.Error("Col lookup broken")
	}
}

func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Scale: 0.001, Seed: 1, Depth: 3, Progress: &buf}
	Fig3(cfg)
	if buf.Len() == 0 {
		t.Error("no progress lines emitted")
	}
}
