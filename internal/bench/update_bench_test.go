package bench

import (
	"math/rand"
	"testing"

	"repro/internal/sketch"
)

// Ingestion benchmarks at the paper's §5.1 shape (s=4096, d=9): the
// same b.N updates flow through the element-wise Update loop and
// through UpdateBatch in batches of updateBatchLen, so ns/op is
// directly comparable between the two — the batched number must win by
// the row-major traversal (cache-hot rows, one hash-coefficient load
// per row per batch).
//
// Element-wise entries run the paper's pairwise/dense construction.
// Batched headline entries run each algorithm's fastest supported
// configuration (tabulation hashing where available, see MakeFast);
// the /pairwise sub-entries keep the pairwise construction tracked so
// a pairwise regression is visible in the baseline diff too.
const (
	updateBenchN   = 1_000_000
	updateBenchS   = 4096
	updateBenchD   = 9
	updateBatchLen = 1024
)

// updateStream pre-materializes a reusable random coordinate stream so
// neither benchmark pays RNG costs inside the timed loop.
func updateStream() (idx []int, ones []float64) {
	r := rand.New(rand.NewSource(77))
	idx = make([]int, 1<<16)
	ones = make([]float64, 1<<16)
	for j := range idx {
		idx[j] = r.Intn(updateBenchN)
		ones[j] = 1
	}
	return idx, ones
}

func BenchmarkUpdate(b *testing.B) {
	idx, ones := updateStream()
	for _, algo := range All {
		b.Run(algo, func(b *testing.B) {
			sk := Make(algo, updateBenchN, updateBenchS, updateBenchD, 1)
			mask := len(idx) - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Update(idx[i&mask], ones[0])
			}
		})
	}
}

func BenchmarkUpdateBatch(b *testing.B) {
	idx, ones := updateStream()
	run := func(name string, mk func(string, int, int, int, int64) sketch.Sketch) {
		for _, algo := range All {
			b.Run(algo+name, func(b *testing.B) {
				sk := mk(algo, updateBenchN, updateBenchS, updateBenchD, 1)
				bu, ok := sk.(sketch.BatchUpdater)
				if !ok {
					b.Fatalf("%s (%T) has no batched path", algo, sk)
				}
				span := len(idx) - updateBatchLen
				b.ResetTimer()
				for done := 0; done < b.N; done += updateBatchLen {
					m := updateBatchLen
					if rem := b.N - done; rem < m {
						m = rem
					}
					off := done % span
					bu.UpdateBatch(idx[off:off+m], ones[off:off+m])
				}
			})
		}
	}
	run("", MakeFast)
	run("/pairwise", Make)
}
