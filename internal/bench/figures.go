package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies each figure's default vector dimension (and the
	// Hudong article count). The defaults below are laptop-scale
	// reductions of the paper's sizes; Scale restores or shrinks them
	// (e.g. 0.01 for the smoke tests in bench_test.go). Zero means 1.
	Scale float64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Depth is the bias-aware sketches' d (baselines get d+1, §5.1).
	// Zero means the paper's 9.
	Depth int
	// Progress, when non-nil, receives one line per completed sweep
	// point.
	Progress io.Writer
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c Config) depth() int {
	if c.Depth <= 0 {
		return 9
	}
	return c.Depth
}

func (c Config) dim(base int) int {
	n := int(float64(base) * c.scale())
	if n < 1000 {
		n = 1000
	}
	return n
}

// scaleSweep shrinks the s sweep alongside n so that s stays well
// below n (a sketch wider than the vector is pointless).
func (c Config) sweep(base []int, n int) []int {
	out := make([]int, 0, len(base))
	for _, s := range base {
		v := int(float64(s) * math.Sqrt(c.scale()))
		if v < 64 {
			v = 64
		}
		if v > n/4 {
			v = n / 4
		}
		out = append(out, v)
	}
	// Deduplicate after clamping.
	sort.Ints(out)
	ded := out[:0]
	for i, v := range out {
		if i == 0 || v != ded[len(ded)-1] {
			ded = append(ded, v)
		}
	}
	return ded
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// seedFor derives a deterministic per-cell seed.
func (c Config) seedFor(parts ...int) int64 {
	h := uint64(c.Seed)*0x9e3779b97f4a7c15 + 0x12345
	for _, p := range parts {
		h ^= uint64(p) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return int64(h & 0x7fffffffffffffff)
}

// sweepVector runs the standard protocol: for each s in svals and each
// algorithm, sketch the vector x, recover, and record avg/max error.
func (c Config) sweepVector(id, title string, x []float64, algos []string, svals []int) *Table {
	t := &Table{ID: id, Title: title, XLabel: "s", X: svals, Algos: algos}
	n := len(x)
	d := c.depth()
	for xi, s := range svals {
		avg := make([]float64, len(algos))
		mx := make([]float64, len(algos))
		for ai, algo := range algos {
			sk := Make(algo, n, s, d, c.seedFor(xi, ai))
			sketch.SketchVector(sk, x)
			xhat := sketch.Recover(sk)
			avg[ai] = vecmath.AvgAbsErr(x, xhat)
			mx[ai] = vecmath.MaxAbsErr(x, xhat)
			c.progress("%s s=%d %s: avg=%.4f max=%.4f", id, s, algo, avg[ai], mx[ai])
		}
		t.Avg = append(t.Avg, avg)
		t.Max = append(t.Max, mx)
	}
	return t
}

// sweepDepth fixes s and varies d (Figure 7's protocol).
func (c Config) sweepDepth(id, title string, x []float64, algos []string, s int, dvals []int) *Table {
	t := &Table{ID: id, Title: title, XLabel: "d", X: dvals, Algos: algos}
	n := len(x)
	for xi, d := range dvals {
		avg := make([]float64, len(algos))
		mx := make([]float64, len(algos))
		for ai, algo := range algos {
			sk := Make(algo, n, s, d, c.seedFor(xi, ai))
			sketch.SketchVector(sk, x)
			xhat := sketch.Recover(sk)
			avg[ai] = vecmath.AvgAbsErr(x, xhat)
			mx[ai] = vecmath.MaxAbsErr(x, xhat)
			c.progress("%s d=%d %s: avg=%.4f max=%.4f", id, d, algo, avg[ai], mx[ai])
		}
		t.Avg = append(t.Avg, avg)
		t.Max = append(t.Max, mx)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure runners

// Fig1 is the Gaussian experiment (Figure 1a–1d): n i.i.d. N(b, 15²)
// coordinates, b ∈ {100, 500}; the bias-aware sketches' errors must be
// far below all baselines and independent of b. Paper n = 5·10⁸; the
// default here is 2·10⁶ (Scale restores larger sizes).
func Fig1(cfg Config) []*Table {
	n := cfg.dim(2_000_000)
	svals := cfg.sweep([]int{1000, 2000, 5000, 10000, 20000}, n)
	var out []*Table
	for _, b := range []float64{100, 500} {
		r := rand.New(rand.NewSource(cfg.seedFor(int(b))))
		x := workload.Gaussian{Bias: b, Sigma: 15}.Vector(n, r)
		sub := "ab"
		if b == 500 {
			sub = "cd"
		}
		out = append(out, cfg.sweepVector(
			"fig1"+sub,
			fmt.Sprintf("Gaussian n=%d sigma=15 b=%g", n, b),
			x, SixMain, svals))
	}
	return out
}

// Fig2 is the Wiki experiment (Figure 2): pageviews-per-second-like
// vector at the paper's exact dimension n = 3,513,600.
func Fig2(cfg Config) []*Table {
	n := cfg.dim(3_513_600)
	svals := cfg.sweep([]int{2000, 5000, 10000, 20000, 50000}, n)
	r := rand.New(rand.NewSource(cfg.seedFor(2)))
	x := workload.WikiLike{}.Vector(n, r)
	return []*Table{cfg.sweepVector("fig2", fmt.Sprintf("Wiki-like n=%d", n), x, SixMain, svals)}
}

// Fig3 is the WorldCup experiment (Figure 3): requests-per-second over
// one day, n = 86,400 (paper-exact dimension; not scaled down, but
// Scale > 1 still grows it).
func Fig3(cfg Config) []*Table {
	n := 86_400
	if cfg.scale() > 1 {
		n = cfg.dim(n)
	}
	svals := cfg.sweep([]int{500, 1000, 2000, 5000, 10000}, n)
	r := rand.New(rand.NewSource(cfg.seedFor(3)))
	x := workload.WorldCupLike{}.Vector(n, r)
	return []*Table{cfg.sweepVector("fig3", fmt.Sprintf("WorldCup-like n=%d", n), x, SixMain, svals)}
}

// Fig4 is the Higgs experiment (Figure 4): Gamma-shaped kinematic
// feature values. Paper n = 1.1·10⁷; default 2·10⁶.
func Fig4(cfg Config) []*Table {
	n := cfg.dim(2_000_000)
	svals := cfg.sweep([]int{2000, 5000, 10000, 20000, 50000}, n)
	r := rand.New(rand.NewSource(cfg.seedFor(4)))
	x := workload.HiggsLike{}.Vector(n, r)
	return []*Table{cfg.sweepVector("fig4", fmt.Sprintf("Higgs-like n=%d", n), x, SixMain, svals)}
}

// Fig5 is the Meme experiment (Figure 5): long-tailed meme lengths.
// Paper n = 2.11·10⁸; default 2·10⁶.
func Fig5(cfg Config) []*Table {
	n := cfg.dim(2_000_000)
	svals := cfg.sweep([]int{2000, 5000, 10000, 20000, 50000}, n)
	r := rand.New(rand.NewSource(cfg.seedFor(5)))
	x := workload.MemeLike{}.Vector(n, r)
	return []*Table{cfg.sweepVector("fig5", fmt.Sprintf("Meme-like n=%d", n), x, SixMain, svals)}
}

// Fig6 is the Hudong streaming experiment (Figure 6a–6d): edges arrive
// one at a time, sketches are updated online, and we report recovery
// errors plus per-update and per-query times. Paper: 2.23M articles,
// 18.9M edges; default 300k articles (~2.3M edges).
func Fig6(cfg Config) []*Table {
	n := cfg.dim(300_000)
	svals := cfg.sweep([]int{1000, 2000, 5000, 10000}, n)
	d := cfg.depth()
	r := rand.New(rand.NewSource(cfg.seedFor(6)))
	edges := workload.HudongLike{}.EdgeStream(n, r)
	src := stream.NewUnitSource(edges)
	exact := stream.NewExact(n)
	stream.Drive(exact, src)
	x := exact.Vector()

	// Query cost is measured over a fixed random index sample so all
	// algorithms answer the identical queries.
	qidx := make([]int, 200_000)
	for i := range qidx {
		qidx[i] = r.Intn(n)
	}

	t := &Table{
		ID: "fig6", Title: fmt.Sprintf("Hudong-like stream n=%d edges=%d", n, len(edges)),
		XLabel: "s", X: svals, Algos: SixMain,
	}
	for xi, s := range svals {
		avg := make([]float64, len(SixMain))
		mx := make([]float64, len(SixMain))
		upd := make([]float64, len(SixMain))
		qry := make([]float64, len(SixMain))
		for ai, algo := range SixMain {
			sk := Make(algo, n, s, d, cfg.seedFor(xi, ai))
			ds := stream.Drive(sk, src)
			qs := stream.MeasureQueries(sk, qidx)
			xhat := sketch.Recover(sk)
			avg[ai] = vecmath.AvgAbsErr(x, xhat)
			mx[ai] = vecmath.MaxAbsErr(x, xhat)
			upd[ai] = ds.NsPerUpdate
			qry[ai] = qs.NsPerQuery
			cfg.progress("fig6 s=%d %s: avg=%.4f max=%.4f upd=%.0fns qry=%.0fns",
				s, algo, avg[ai], mx[ai], upd[ai], qry[ai])
		}
		t.Avg = append(t.Avg, avg)
		t.Max = append(t.Max, mx)
		t.UpdateNs = append(t.UpdateNs, upd)
		t.QueryNs = append(t.QueryNs, qry)
	}
	return []*Table{t}
}

// Fig7 is the depth experiment (Figure 7): Higgs-like data, fixed
// s = 50,000 (scaled), d swept. The paper's d axis is for the
// bias-aware sketches; baselines use d+1 (handled by Make).
func Fig7(cfg Config) []*Table {
	n := cfg.dim(2_000_000)
	s := cfg.sweep([]int{50000}, n)[0]
	dvals := []int{3, 5, 7, 9, 11}
	r := rand.New(rand.NewSource(cfg.seedFor(7)))
	x := workload.HiggsLike{}.Vector(n, r)
	return []*Table{cfg.sweepDepth("fig7",
		fmt.Sprintf("Higgs-like n=%d fixed s=%d, varying depth", n, s),
		x, SixMain, s, dvals)}
}

// Fig8 is the mean-heuristic comparison (Figure 8a–8d) on Gaussian-2:
// without shifted entries all four algorithms are comparable; with 500
// entries shifted by 100,000 the mean heuristics blow up. Paper
// n = 5·10⁶; default 1·10⁶ with the shift count scaled to keep the
// same outlier fraction.
func Fig8(cfg Config) []*Table {
	n := cfg.dim(1_000_000)
	shift := n / 10_000 // paper: 500 of 5M = 1 per 10k
	if shift < 3 {
		shift = 3
	}
	svals := cfg.sweep([]int{1000, 2000, 5000, 10000, 20000}, n)
	var out []*Table
	r := rand.New(rand.NewSource(cfg.seedFor(8)))
	plain := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	out = append(out, cfg.sweepVector("fig8ab",
		fmt.Sprintf("Gaussian-2 n=%d (no shift)", n), plain, MeanComparison, svals))
	r2 := rand.New(rand.NewSource(cfg.seedFor(88)))
	shifted := workload.GaussianShifted{Bias: 100, Sigma: 15, ShiftCount: shift, ShiftBy: 100_000}.Vector(n, r2)
	out = append(out, cfg.sweepVector("fig8cd",
		fmt.Sprintf("Gaussian-2 n=%d (%d entries shifted by 1e5)", n, shift), shifted, MeanComparison, svals))
	return out
}

// Fig9 is the mean-heuristic comparison on the Wiki-like dataset
// (Figure 9): few extremes, so the mean heuristics are competitive.
func Fig9(cfg Config) []*Table {
	n := cfg.dim(3_513_600)
	svals := cfg.sweep([]int{2000, 5000, 10000, 20000, 50000}, n)
	r := rand.New(rand.NewSource(cfg.seedFor(9)))
	x := workload.WikiLike{}.Vector(n, r)
	return []*Table{cfg.sweepVector("fig9",
		fmt.Sprintf("Wiki-like n=%d, mean heuristics", n), x, MeanComparison, svals)}
}

// Figures maps figure numbers to runners, for cmd/biasrepro. Entries
// 10–13 are extra experiments the paper argues in prose but does not
// plot: the BOMP comparison (§2), the Remark 1 multi-bias gap, the
// Counter Braids comparison (§2), and the Deng–Rafiei comparison (§2).
var Figures = map[int]func(Config) []*Table{
	1: Fig1, 2: Fig2, 3: Fig3, 4: Fig4, 5: Fig5, 6: Fig6, 7: Fig7, 8: Fig8, 9: Fig9,
	10: ExtraBOMP, 11: ExtraRemark1, 12: ExtraCounterBraids, 13: ExtraDengRafiei,
}
