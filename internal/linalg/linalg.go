// Package linalg provides the small dense linear algebra kernel needed
// by the BOMP baseline (§2 of the paper, Yan et al. [31]): matrix
// storage, products, and Householder-QR least squares. Stdlib only.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Col copies column j into dst (allocating when dst is nil).
func (m *Matrix) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.At(i, j)
	}
	return dst
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns ⟨a, b⟩.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns ‖a‖₂.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// LeastSquares solves min_x ‖A·x − b‖₂ for a full-column-rank A with
// Rows ≥ Cols, via Householder QR. It does not modify A or b.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", m, n)
	}
	// Working copies.
	r := append([]float64(nil), a.Data...)
	qtb := append([]float64(nil), b...)

	at := func(i, j int) float64 { return r[i*n+j] }
	set := func(i, j int, v float64) { r[i*n+j] = v }

	for j := 0; j < n; j++ {
		// Householder vector for column j below the diagonal.
		var norm float64
		for i := j; i < m; i++ {
			norm += at(i, j) * at(i, j)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("linalg: rank-deficient matrix at column %d", j)
		}
		alpha := -norm
		if at(j, j) < 0 {
			alpha = norm
		}
		v := make([]float64, m-j)
		v[0] = at(j, j) - alpha
		for i := j + 1; i < m; i++ {
			v[i-j] = at(i, j)
		}
		vnorm2 := Dot(v, v)
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I − 2vvᵀ/‖v‖² to the remaining columns and to qtb.
		for c := j; c < n; c++ {
			var s float64
			for i := j; i < m; i++ {
				s += v[i-j] * at(i, c)
			}
			s = 2 * s / vnorm2
			for i := j; i < m; i++ {
				set(i, c, at(i, c)-s*v[i-j])
			}
		}
		var s float64
		for i := j; i < m; i++ {
			s += v[i-j] * qtb[i]
		}
		s = 2 * s / vnorm2
		for i := j; i < m; i++ {
			qtb[i] -= s * v[i-j]
		}
	}

	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= at(i, j) * x[j]
		}
		d := at(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("linalg: singular R at row %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}
