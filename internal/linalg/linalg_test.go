package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 5)
	m.Set(1, 1, -2)
	if m.At(0, 2) != 5 || m.At(1, 1) != -2 || m.At(1, 0) != 0 {
		t.Error("At/Set broken")
	}
	col := m.Col(1, nil)
	if col[0] != 0 || col[1] != -2 {
		t.Errorf("Col = %v", col)
	}
	out := m.MulVec([]float64{1, 1, 1})
	if out[0] != 6 || out[1] != -2 {
		t.Errorf("MulVec = %v", out)
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1})
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square well-conditioned system: solution must be exact.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noisy-free samples: residual 0.
	a := NewMatrix(5, 2)
	b := make([]float64, 5)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i))
		a.Set(i, 1, 1)
		b[i] = 2*float64(i) + 1
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Errorf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresMatchesNormalEquations(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, n := 12+r.Intn(10), 3+r.Intn(4)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Residual must be orthogonal to the column space: Aᵀ(Ax−b)=0.
		ax := a.MulVec(x)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a.At(i, j) * (ax[i] - b[i])
			}
			if math.Abs(s) > 1e-8 {
				t.Fatalf("trial %d: normal equation residual %e at column %d", trial, s, j)
			}
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("underdetermined system should fail")
	}
	sq := NewMatrix(3, 2)
	if _, err := LeastSquares(sq, []float64{1}); err == nil {
		t.Error("rhs length mismatch should fail")
	}
	// Rank-deficient: zero column.
	z := NewMatrix(3, 2)
	z.Set(0, 0, 1)
	z.Set(1, 0, 2)
	z.Set(2, 0, 3)
	if _, err := LeastSquares(z, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient matrix should fail")
	}
}

func TestLeastSquaresDoesNotMutate(t *testing.T) {
	a := NewMatrix(3, 2)
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	orig := append([]float64(nil), a.Data...)
	b := []float64{1, 2, 3}
	if _, err := LeastSquares(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if a.Data[i] != orig[i] {
			t.Fatal("LeastSquares mutated A")
		}
	}
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatal("LeastSquares mutated b")
	}
}
