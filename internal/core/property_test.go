package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: linearity — for any random update stream and any split of
// it into two halves, merge(sketch(A), sketch(B)) answers every query
// exactly like sketch(A+B). Checked across both schemes and estimator
// modes with randomized shapes.
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(2000)
		k := 1 + r.Intn(8)
		updates := 100 + r.Intn(2000)

		type upd struct {
			i int
			d float64
		}
		us := make([]upd, updates)
		for u := range us {
			us[u] = upd{r.Intn(n), math.Round(r.NormFloat64() * 10)}
		}

		check := func(mk func() interface {
			Update(int, float64)
			Query(int) float64
		}, merge func(a, b interface{}) error) bool {
			whole := mk()
			left := mk()
			right := mk()
			for u, x := range us {
				whole.Update(x.i, x.d)
				if u%2 == 0 {
					left.Update(x.i, x.d)
				} else {
					right.Update(x.i, x.d)
				}
			}
			if err := merge(left, right); err != nil {
				return false
			}
			for i := 0; i < n; i += 1 + n/37 {
				if math.Abs(whole.Query(i)-left.Query(i)) > 1e-6 {
					return false
				}
			}
			return true
		}

		seedL1 := r.Int63()
		okL1 := check(func() interface {
			Update(int, float64)
			Query(int) float64
		} {
			return NewL1SR(L1Config{N: n, K: k, SampleCount: 16}, rand.New(rand.NewSource(seedL1)))
		}, func(a, b interface{}) error {
			return a.(*L1SR).MergeFrom(b.(*L1SR))
		})

		seedL2 := r.Int63()
		heap := r.Intn(2) == 0
		okL2 := check(func() interface {
			Update(int, float64)
			Query(int) float64
		} {
			return NewL2SR(L2Config{N: n, K: k, UseBiasHeap: heap}, rand.New(rand.NewSource(seedL2)))
		}, func(a, b interface{}) error {
			return a.(*L2SR).MergeFrom(b.(*L2SR))
		})

		return okL1 && okL2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: scale equivariance — sketching c·x yields estimates
// c·(estimates of x) when both sketches share seeds, because every
// component (cells, samples, bucket sums) is linear.
func TestScaleEquivarianceProperty(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		c := float64(1 + int(cRaw)%7)
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(1000)
		k := 1 + r.Intn(6)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Round(r.NormFloat64() * 20)
		}
		skSeed := r.Int63()
		a := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(skSeed)))
		b := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(skSeed)))
		for i, v := range x {
			a.Update(i, v)
			b.Update(i, c*v)
		}
		for i := 0; i < n; i += 1 + n/29 {
			qa, qb := a.Query(i), b.Query(i)
			if math.Abs(c*qa-qb) > 1e-6*(1+math.Abs(qb)) {
				return false
			}
		}
		return math.Abs(c*a.Bias()-b.Bias()) < 1e-6*(1+math.Abs(b.Bias()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: query determinism — queries do not mutate state; asking
// twice gives the identical answer, interleaved with bias queries.
func TestQueryIdempotenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(500)
		l1 := NewL1SR(L1Config{N: n, K: 2, SampleCount: 8}, rand.New(rand.NewSource(seed+1)))
		l2 := NewL2SR(L2Config{N: n, K: 2, UseBiasHeap: true}, rand.New(rand.NewSource(seed+2)))
		for u := 0; u < 300; u++ {
			i, d := r.Intn(n), float64(r.Intn(9)-4)
			l1.Update(i, d)
			l2.Update(i, d)
		}
		for i := 0; i < n; i += 7 {
			a1, b1 := l1.Query(i), l2.Query(i)
			_ = l1.Bias()
			_ = l2.Bias()
			if l1.Query(i) != a1 || l2.Query(i) != b1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
