package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sketch"
	"repro/internal/vecmath"
)

// paperExample is the running example of §1: k = 2, n = 10.
func paperExample() ([]float64, int) {
	return []float64{3, 100, 101, 500, 102, 98, 97, 100, 99, 103}, 2
}

func biasedGaussian(n int, bias, sigma float64, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Round(r.NormFloat64()*sigma + bias)
	}
	return x
}

func feed(s sketch.Sketch, x []float64) {
	for i, v := range x {
		if v != 0 {
			s.Update(i, v)
		}
	}
}

func TestL1ConfigDefaults(t *testing.T) {
	l := NewL1SR(L1Config{N: 1000, K: 8}, rand.New(rand.NewSource(1)))
	cfg := l.Config()
	if cfg.Cs != 4 || cfg.Depth != 9 {
		t.Errorf("defaults: Cs=%d Depth=%d, want 4 and 9", cfg.Cs, cfg.Depth)
	}
	if cfg.SampleCount != defaultSampleCount(1000) {
		t.Errorf("SampleCount = %d, want %d", cfg.SampleCount, defaultSampleCount(1000))
	}
	if cfg.Estimator != EstimatorSampledMedian {
		t.Errorf("Estimator = %v, want sampled-median", cfg.Estimator)
	}
}

func TestL2ConfigDefaults(t *testing.T) {
	l := NewL2SR(L2Config{N: 1000, K: 8}, rand.New(rand.NewSource(1)))
	cfg := l.Config()
	if cfg.Cs != 4 || cfg.Depth != 9 || cfg.Estimator != EstimatorMedianBucket {
		t.Errorf("unexpected defaults %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []L1Config{
		{N: 0, K: 1},
		{N: 10, K: 0},
		{N: 10, K: 1, Cs: 2},
		{N: 10, K: 1, Depth: -1},
		{N: 10, K: 1, SampleCount: -5},
		{N: 10, K: 1, Estimator: EstimatorMedianBucket}, // not valid for ℓ1
	}
	for _, c := range bad {
		cc := c.withDefaults()
		// Put back the explicitly-invalid zero fields the defaults fixed.
		if c.N == 0 {
			cc.N = 0
		}
		if c.K == 0 {
			cc.K = 0
		}
		if c.Cs == 2 {
			cc.Cs = 2
		}
		if c.Depth == -1 {
			cc.Depth = -1
		}
		if c.SampleCount == -5 {
			cc.SampleCount = -5
		}
		if cc.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", cc)
		}
	}
	badL2 := []L2Config{
		{N: 0, K: 1},
		{N: 10, K: 0},
		{N: 10, K: 1, Cs: 3},
	}
	for _, c := range badL2 {
		cc := c.withDefaults()
		if c.N == 0 {
			cc.N = 0
		}
		if c.K == 0 {
			cc.K = 0
		}
		if c.Cs == 3 {
			cc.Cs = 3
		}
		if cc.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", cc)
		}
	}
}

func TestEstimatorKindString(t *testing.T) {
	cases := map[EstimatorKind]string{
		EstimatorDefault:       "default",
		EstimatorSampledMedian: "sampled-median",
		EstimatorMedianBucket:  "median-bucket",
		EstimatorMean:          "mean",
		EstimatorKind(99):      "EstimatorKind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

// On the paper's own example the bias estimates should land near 100.
func TestBiasEstimateOnPaperExample(t *testing.T) {
	x, k := paperExample()
	l1 := NewL1SR(L1Config{N: len(x), K: k, SampleCount: 101}, rand.New(rand.NewSource(2)))
	feed(l1, x)
	if b := l1.Bias(); math.Abs(b-100) > 4 {
		t.Errorf("ℓ1 bias = %f, want ≈100", b)
	}
	l2 := NewL2SR(L2Config{N: len(x), K: k}, rand.New(rand.NewSource(3)))
	feed(l2, x)
	if b := l2.Bias(); math.Abs(b-100) > 60 {
		// n=10 is tiny; the middle buckets may still include an outlier.
		t.Errorf("ℓ2 bias = %f, want loosely ≈100", b)
	}
}

// The headline claim on realistic sizes: ℓ1/ℓ2-S/R recover a biased
// Gaussian vector far more accurately than Count-Median/Count-Sketch
// at the same size (Figure 1's qualitative shape).
func TestBiasAwareBeatsClassicalOnBiasedGaussian(t *testing.T) {
	const n, k = 50000, 64
	x := biasedGaussian(n, 100, 15, 4)
	seedA, seedB := int64(5), int64(6)

	l1 := NewL1SR(L1Config{N: n, K: k, SampleCount: 4 * k}, rand.New(rand.NewSource(seedA)))
	l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(seedB)))
	cm := must(sketch.NewCountMedian(sketch.Config{N: n, Rows: 4 * k, Depth: 10}, rand.New(rand.NewSource(seedA))))
	cs := must(sketch.NewCountSketch(sketch.Config{N: n, Rows: 4 * k, Depth: 10}, rand.New(rand.NewSource(seedB))))
	for _, s := range []sketch.Sketch{l1, l2, cm, cs} {
		feed(s, x)
	}

	l1Err := vecmath.AvgAbsErr(x, sketch.Recover(l1))
	l2Err := vecmath.AvgAbsErr(x, sketch.Recover(l2))
	cmErr := vecmath.AvgAbsErr(x, sketch.Recover(cm))
	csErr := vecmath.AvgAbsErr(x, sketch.Recover(cs))

	if l1Err >= cmErr/3 {
		t.Errorf("ℓ1-S/R avg err %f should be ≪ Count-Median %f", l1Err, cmErr)
	}
	// The improvement factor is parameter dependent (noise per bucket
	// scales with sqrt(n/s)·σ after de-biasing versus
	// sqrt(n/s)·sqrt(σ²+b²) before); at these sizes a 2× gap is the
	// conservative expectation.
	if l2Err >= csErr/2 {
		t.Errorf("ℓ2-S/R avg err %f should be ≪ Count-Sketch %f", l2Err, csErr)
	}
}

// Theorem 3 quantitative check: the bulk of coordinates obey
// C/k · min_β Err_1^k(x−β) for a modest constant C.
func TestL1TheoremBound(t *testing.T) {
	const n, k = 30000, 32
	r := rand.New(rand.NewSource(7))
	x := biasedGaussian(n, 250, 10, 8)
	for i := 0; i < k; i++ {
		x[r.Intn(n)] += 50000 // outliers
	}
	l1 := NewL1SR(L1Config{N: n, K: k, Depth: 11, SampleCount: 8 * k}, r)
	feed(l1, x)
	xhat := sketch.Recover(l1)
	_, opt := vecmath.MinBetaErrK(x, k, 1)
	bound := opt / float64(k)
	errs := make([]float64, n)
	for i := range errs {
		errs[i] = math.Abs(x[i] - xhat[i])
	}
	if got := vecmath.Percentile(errs, 0.995); got > 8*bound {
		t.Errorf("ℓ1-S/R P99.5 err %f exceeds 8×bound %f", got, 8*bound)
	}
}

// Theorem 4 quantitative check.
func TestL2TheoremBound(t *testing.T) {
	const n, k = 30000, 32
	r := rand.New(rand.NewSource(9))
	x := biasedGaussian(n, 250, 10, 10)
	for i := 0; i < k; i++ {
		x[r.Intn(n)] += 50000
	}
	l2 := NewL2SR(L2Config{N: n, K: k, Depth: 11}, r)
	feed(l2, x)
	xhat := sketch.Recover(l2)
	_, opt := vecmath.MinBetaErrK(x, k, 2)
	bound := opt / math.Sqrt(float64(k))
	errs := make([]float64, n)
	for i := range errs {
		errs[i] = math.Abs(x[i] - xhat[i])
	}
	if got := vecmath.Percentile(errs, 0.995); got > 8*bound {
		t.Errorf("ℓ2-S/R P99.5 err %f exceeds 8×bound %f", got, 8*bound)
	}
}

// §4.1's warm-up: the mean is ruined by extreme outliers while the
// sampled median is not.
func TestMeanEstimatorContaminated(t *testing.T) {
	const n = 10000
	x := make([]float64, n)
	for i := range x {
		x[i] = 50
	}
	x[0], x[1] = 1e12, 1e12

	mean := NewL1SR(L1Config{N: n, K: 2, Estimator: EstimatorMean}, rand.New(rand.NewSource(11)))
	med := NewL1SR(L1Config{N: n, K: 2, SampleCount: 401}, rand.New(rand.NewSource(12)))
	feed(mean, x)
	feed(med, x)
	if b := med.Bias(); math.Abs(b-50) > 1e-9 {
		t.Errorf("sampled-median bias = %f, want 50", b)
	}
	if b := mean.Bias(); math.Abs(b-50) < 1e6 {
		t.Errorf("mean bias = %f should be contaminated (far from 50)", b)
	}
}

// The streaming Bias-Heap mode must agree with the sort-based recovery
// on every point query when built from the same seed.
func TestBiasHeapMatchesSort(t *testing.T) {
	const n, k = 5000, 16
	x := biasedGaussian(n, 77, 9, 13)
	mkCfg := func(heap bool) L2Config {
		return L2Config{N: n, K: k, UseBiasHeap: heap}
	}
	a := NewL2SR(mkCfg(false), rand.New(rand.NewSource(14)))
	b := NewL2SR(mkCfg(true), rand.New(rand.NewSource(14)))
	for i, v := range x {
		a.Update(i, v)
		b.Update(i, v)
		if i%997 == 0 {
			// Bias estimates must agree mid-stream, not just at the end.
			if math.Abs(a.Bias()-b.Bias()) > 1e-9 {
				t.Fatalf("bias diverged mid-stream at %d: sort %f heap %f", i, a.Bias(), b.Bias())
			}
		}
	}
	for i := 0; i < n; i += 31 {
		if qa, qb := a.Query(i), b.Query(i); math.Abs(qa-qb) > 1e-9 {
			t.Fatalf("query %d: sort %f != heap %f", i, qa, qb)
		}
	}
}

// Linearity: merging per-site sketches equals sketching the global
// vector, for both schemes and all estimator kinds (§1's distributed
// model).
func TestMergeEqualsWhole(t *testing.T) {
	const n, k, sites = 4000, 8, 3
	r := rand.New(rand.NewSource(15))
	global := make([]float64, n)
	parts := make([][]float64, sites)
	for p := range parts {
		parts[p] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for p := 0; p < sites; p++ {
			v := math.Round(r.NormFloat64()*5 + 30)
			parts[p][i] = v
			global[i] += v
		}
	}

	t.Run("l1", func(t *testing.T) {
		for _, est := range []EstimatorKind{EstimatorSampledMedian, EstimatorMean} {
			cfg := L1Config{N: n, K: k, Estimator: est, SampleCount: 64}
			whole := NewL1SR(cfg, rand.New(rand.NewSource(16)))
			feed(whole, global)
			merged := NewL1SR(cfg, rand.New(rand.NewSource(16)))
			feed(merged, parts[0])
			for p := 1; p < sites; p++ {
				site := NewL1SR(cfg, rand.New(rand.NewSource(16)))
				feed(site, parts[p])
				if err := merged.MergeFrom(site); err != nil {
					t.Fatalf("est %v: merge: %v", est, err)
				}
			}
			for i := 0; i < n; i += 53 {
				if w, m := whole.Query(i), merged.Query(i); math.Abs(w-m) > 1e-6 {
					t.Fatalf("est %v: query %d: whole %f merged %f", est, i, w, m)
				}
			}
		}
	})

	t.Run("l2", func(t *testing.T) {
		for _, heap := range []bool{false, true} {
			cfg := L2Config{N: n, K: k, UseBiasHeap: heap}
			whole := NewL2SR(cfg, rand.New(rand.NewSource(17)))
			feed(whole, global)
			merged := NewL2SR(cfg, rand.New(rand.NewSource(17)))
			feed(merged, parts[0])
			for p := 1; p < sites; p++ {
				site := NewL2SR(cfg, rand.New(rand.NewSource(17)))
				feed(site, parts[p])
				if err := merged.MergeFrom(site); err != nil {
					t.Fatalf("heap=%v: merge: %v", heap, err)
				}
			}
			for i := 0; i < n; i += 53 {
				if w, m := whole.Query(i), merged.Query(i); math.Abs(w-m) > 1e-6 {
					t.Fatalf("heap=%v: query %d: whole %f merged %f", heap, i, w, m)
				}
			}
		}
	})
}

func TestMergeIncompatible(t *testing.T) {
	a := NewL1SR(L1Config{N: 100, K: 4}, rand.New(rand.NewSource(18)))
	b := NewL1SR(L1Config{N: 100, K: 8}, rand.New(rand.NewSource(18)))
	if err := a.MergeFrom(b); err == nil {
		t.Error("merging different K should fail")
	}
	c := NewL1SR(L1Config{N: 100, K: 4}, rand.New(rand.NewSource(19)))
	if err := a.MergeFrom(c); err == nil {
		t.Error("merging different seeds should fail")
	}
	d := NewL2SR(L2Config{N: 100, K: 4}, rand.New(rand.NewSource(20)))
	e := NewL2SR(L2Config{N: 100, K: 8}, rand.New(rand.NewSource(20)))
	if err := d.MergeFrom(e); err == nil {
		t.Error("ℓ2 merging different K should fail")
	}
}

// Negative updates (deletions, turnstile model) are fully supported by
// linearity: sketch of x then of -x recovers zero.
func TestTurnstileCancellation(t *testing.T) {
	const n, k = 2000, 8
	x := biasedGaussian(n, 60, 5, 21)
	l1 := NewL1SR(L1Config{N: n, K: k}, rand.New(rand.NewSource(22)))
	l2 := NewL2SR(L2Config{N: n, K: k, UseBiasHeap: true}, rand.New(rand.NewSource(23)))
	for i, v := range x {
		l1.Update(i, v)
		l2.Update(i, v)
	}
	for i, v := range x {
		l1.Update(i, -v)
		l2.Update(i, -v)
	}
	for i := 0; i < n; i += 97 {
		if q := l1.Query(i); math.Abs(q) > 1e-7 {
			t.Errorf("ℓ1 query %d = %f after cancellation, want 0", i, q)
		}
		if q := l2.Query(i); math.Abs(q) > 1e-7 {
			t.Errorf("ℓ2 query %d = %f after cancellation, want 0", i, q)
		}
	}
}

// Streaming real-time queries: mid-stream answers must track the
// prefix vector (the whole point of §4.4).
func TestStreamingMidStreamQueries(t *testing.T) {
	const n, k = 3000, 8
	r := rand.New(rand.NewSource(24))
	l2 := NewL2SR(L2Config{N: n, K: k, UseBiasHeap: true}, rand.New(rand.NewSource(25)))
	prefix := make([]float64, n)
	for step := 0; step < 60000; step++ {
		i := r.Intn(n)
		prefix[i]++
		l2.Update(i, 1)
		if step == 20000 || step == 59999 {
			// Bias should be near the prefix average (uniform stream,
			// no outliers).
			want := vecmath.Mean(prefix)
			if got := l2.Bias(); math.Abs(got-want) > 0.3*want+1 {
				t.Errorf("step %d: bias %f, want ≈%f", step, got, want)
			}
			maxErr := 0.0
			for i := 0; i < n; i += 29 {
				if e := math.Abs(l2.Query(i) - prefix[i]); e > maxErr {
					maxErr = e
				}
			}
			// Bucket noise is ~sqrt(n/s)·σ(prefix) ≈ 25 here; allow 3×.
			if maxErr > 75 {
				t.Errorf("step %d: mid-stream max point error %f too large", step, maxErr)
			}
		}
	}
}

func TestWordsAccounting(t *testing.T) {
	l1 := NewL1SR(L1Config{N: 1000, K: 10, SampleCount: 50}, rand.New(rand.NewSource(26)))
	// d*s + samples = 9*40 + 50.
	if got := l1.Words(); got != 410 {
		t.Errorf("ℓ1 Words = %d, want 410", got)
	}
	l2 := NewL2SR(L2Config{N: 1000, K: 10}, rand.New(rand.NewSource(27)))
	// d*s + s = 9*40 + 40.
	if got := l2.Words(); got != 400 {
		t.Errorf("ℓ2 Words = %d, want 400", got)
	}
	if l1.Dim() != 1000 || l2.Dim() != 1000 {
		t.Error("Dim mismatch")
	}
}

// ℓ2-S/R with the sampled-median estimator (ablation path) must still
// produce sane recoveries.
func TestL2WithSampledMedianEstimator(t *testing.T) {
	const n, k = 10000, 64
	x := biasedGaussian(n, 90, 10, 28)
	l2 := NewL2SR(L2Config{N: n, K: k, Estimator: EstimatorSampledMedian, SampleCount: 256},
		rand.New(rand.NewSource(29)))
	feed(l2, x)
	if b := l2.Bias(); math.Abs(b-90) > 5 {
		t.Errorf("bias = %f, want ≈90", b)
	}
	// Bucket noise after de-biasing is ~sqrt(n/s)·σ ≈ 63·... ≈ 20 per
	// row; the row median brings the average below that.
	if err := vecmath.AvgAbsErr(x, sketch.Recover(l2)); err > 25 {
		t.Errorf("avg err %f too large", err)
	}
}

// Bias independence (Figure 1c–1d): the recovery error of the
// bias-aware sketches must not grow with the bias magnitude.
func TestErrorIndependentOfBias(t *testing.T) {
	const n, k = 20000, 32
	errAt := func(bias float64, seed int64) (float64, float64) {
		x := biasedGaussian(n, bias, 15, seed)
		l1 := NewL1SR(L1Config{N: n, K: k, SampleCount: 4 * k}, rand.New(rand.NewSource(seed+100)))
		l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(seed+200)))
		feed(l1, x)
		feed(l2, x)
		return vecmath.AvgAbsErr(x, sketch.Recover(l1)), vecmath.AvgAbsErr(x, sketch.Recover(l2))
	}
	l1a, l2a := errAt(100, 30)
	l1b, l2b := errAt(500, 30)
	if l1b > 2*l1a+1 {
		t.Errorf("ℓ1 error grew with bias: %f -> %f", l1a, l1b)
	}
	if l2b > 2*l2a+1 {
		t.Errorf("ℓ2 error grew with bias: %f -> %f", l2a, l2b)
	}
}

func BenchmarkL1Update(b *testing.B) {
	l := NewL1SR(L1Config{N: 1 << 20, K: 256}, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Update(i&(1<<20-1), 1)
	}
}

func BenchmarkL2UpdateHeap(b *testing.B) {
	l := NewL2SR(L2Config{N: 1 << 20, K: 256, UseBiasHeap: true}, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Update(i&(1<<20-1), 1)
	}
}

func BenchmarkL2QueryHeap(b *testing.B) {
	l := NewL2SR(L2Config{N: 1 << 18, K: 256, UseBiasHeap: true}, rand.New(rand.NewSource(1)))
	for i := 0; i < 1<<18; i++ {
		l.Update(i, 100)
	}
	// Warm the ψ caches once so the benchmark measures queries.
	l.Query(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Query(i & (1<<18 - 1))
	}
}

func BenchmarkL2QuerySort(b *testing.B) {
	l := NewL2SR(L2Config{N: 1 << 18, K: 256}, rand.New(rand.NewSource(1)))
	for i := 0; i < 1<<18; i++ {
		l.Update(i, 100)
	}
	l.Query(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Query(i & (1<<18 - 1))
	}
}
