package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func TestTailEstimateGaussian(t *testing.T) {
	const n, k = 50000, 64
	x := biasedGaussian(n, 100, 15, 1)
	l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(2)))
	feed(l2, x)
	est, ok := l2.TailEstimate()
	if !ok {
		t.Fatal("median-bucket estimator should support TailEstimate")
	}
	_, truth := vecmath.MinBetaErrK(x, k, 2)
	if est < 0.7*truth || est > 1.3*truth {
		t.Errorf("TailEstimate = %f, true min_beta Err_2^k = %f (want within 30%%)", est, truth)
	}
}

// The estimate must be independent of the bias magnitude (it measures
// the de-biased tail).
func TestTailEstimateBiasIndependent(t *testing.T) {
	const n, k = 30000, 32
	estAt := func(b float64) float64 {
		x := biasedGaussian(n, b, 15, 3)
		l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(4)))
		feed(l2, x)
		e, ok := l2.TailEstimate()
		if !ok {
			t.Fatal("TailEstimate unsupported")
		}
		return e
	}
	a, b := estAt(100), estAt(5000)
	if math.Abs(a-b) > 0.2*a {
		t.Errorf("tail estimate moved with bias: %f vs %f", a, b)
	}
}

// Outliers must not inflate the estimate much — their buckets sort to
// the excluded edges.
func TestTailEstimateRobustToOutliers(t *testing.T) {
	const n, k = 30000, 64
	clean := biasedGaussian(n, 100, 15, 5)
	dirty := append([]float64(nil), clean...)
	r := rand.New(rand.NewSource(6))
	for j := 0; j < k/2; j++ {
		dirty[r.Intn(n)] += 1e7
	}
	estOf := func(x []float64) float64 {
		l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(7)))
		feed(l2, x)
		e, ok := l2.TailEstimate()
		if !ok {
			t.Fatal("unsupported")
		}
		return e
	}
	ec, ed := estOf(clean), estOf(dirty)
	if ed > 2*ec {
		t.Errorf("outliers inflated tail estimate: clean %f dirty %f", ec, ed)
	}
}

// The estimate should be a usable confidence scale: the realized max
// point error stays within a small multiple of TailEstimate/√k.
func TestTailEstimateCalibratesError(t *testing.T) {
	const n, k = 30000, 64
	x := biasedGaussian(n, 200, 10, 8)
	l2 := NewL2SR(L2Config{N: n, K: k, Depth: 11}, rand.New(rand.NewSource(9)))
	feed(l2, x)
	est, ok := l2.TailEstimate()
	if !ok {
		t.Fatal("unsupported")
	}
	scale := est / math.Sqrt(float64(k))
	var worst float64
	for i := 0; i < n; i += 17 {
		if e := math.Abs(l2.Query(i) - x[i]); e > worst {
			worst = e
		}
	}
	if worst > 4*scale {
		t.Errorf("realized max error %f exceeds 4×(TailEstimate/√k) = %f", worst, 4*scale)
	}
	if worst < scale/50 {
		t.Errorf("scale %f wildly pessimistic vs realized %f", scale, worst)
	}
}

func TestTailEstimateUnsupportedEstimators(t *testing.T) {
	const n, k = 1000, 8
	for _, kind := range []EstimatorKind{EstimatorMean, EstimatorSampledMedian} {
		l2 := NewL2SR(L2Config{N: n, K: k, Estimator: kind, SampleCount: 32},
			rand.New(rand.NewSource(10)))
		if _, ok := l2.TailEstimate(); ok {
			t.Errorf("estimator %v should not support TailEstimate", kind)
		}
	}
}

// Heap and sort modes must report identical tail estimates (the
// estimator state is identical; only bias maintenance differs).
func TestTailEstimateHeapMatchesSort(t *testing.T) {
	const n, k = 5000, 16
	x := biasedGaussian(n, 60, 8, 11)
	a := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(12)))
	b := NewL2SR(L2Config{N: n, K: k, UseBiasHeap: true}, rand.New(rand.NewSource(12)))
	feed(a, x)
	feed(b, x)
	ea, oka := a.TailEstimate()
	eb, okb := b.TailEstimate()
	if !oka || !okb {
		t.Fatal("unsupported")
	}
	if math.Abs(ea-eb) > 1e-9 {
		t.Errorf("tail estimates differ: sort %f heap %f", ea, eb)
	}
}

func TestInsertionSortByKey(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(2000)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(r.Intn(50)) // force ties
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		insertionSortByKey(ids, func(i int) float64 { return keys[i] })
		for i := 1; i < n; i++ {
			ka, kb := keys[ids[i-1]], keys[ids[i]]
			if ka > kb || (ka == kb && ids[i-1] > ids[i]) {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
	}
}
