package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sketch"
)

// An all-equal vector has min_β Err_p^k(x−β) = 0, so Theorem 3/4
// promise exact recovery: every de-biased bucket is exactly zero.
func TestExactRecoveryAllEqual(t *testing.T) {
	const n, k = 5000, 8
	x := make([]float64, n)
	for i := range x {
		x[i] = 42
	}
	l1 := NewL1SR(L1Config{N: n, K: k, SampleCount: 64}, rand.New(rand.NewSource(1)))
	l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(2)))
	feed(l1, x)
	feed(l2, x)
	for i := 0; i < n; i += 111 {
		if q := l1.Query(i); math.Abs(q-42) > 1e-9 {
			t.Errorf("ℓ1 Query(%d) = %f, want exactly 42", i, q)
		}
		if q := l2.Query(i); math.Abs(q-42) > 1e-9 {
			t.Errorf("ℓ2 Query(%d) = %f, want exactly 42", i, q)
		}
	}
}

// A perfectly biased k-sparse vector (bias + k outliers, no noise) is
// the other zero-tail case: the crowd must recover exactly and the
// outliers almost exactly (an outlier's own row can collide with
// another outlier, but the row median survives k ≪ s collisions).
func TestExactRecoveryBiasedSparse(t *testing.T) {
	const n, k = 20000, 8
	x := make([]float64, n)
	for i := range x {
		x[i] = 1000
	}
	outliers := map[int]float64{7: 1e6, 5000: -1e6, 19999: 5e5}
	for i, v := range outliers {
		x[i] = v
	}
	l2 := NewL2SR(L2Config{N: n, K: k, Depth: 11}, rand.New(rand.NewSource(3)))
	feed(l2, x)
	for i := 0; i < n; i += 97 {
		if _, isOut := outliers[i]; isOut {
			continue
		}
		if q := l2.Query(i); math.Abs(q-1000) > 1e-6 {
			t.Errorf("crowd Query(%d) = %f, want 1000", i, q)
		}
	}
	for i, v := range outliers {
		if q := l2.Query(i); math.Abs(q-v) > math.Abs(v)*1e-6 {
			t.Errorf("outlier Query(%d) = %f, want %f", i, q, v)
		}
	}
}

// §4.1's pathological input for the mean: two astronomically large
// coordinates. The sampled-median and median-bucket estimators must
// keep the crowd recoverable.
func TestInfinityStyleOutliers(t *testing.T) {
	const n, k = 10000, 4
	x := make([]float64, n)
	for i := range x {
		x[i] = 50
	}
	x[0], x[1] = 1e15, 1e15
	l1 := NewL1SR(L1Config{N: n, K: k, SampleCount: 201, Depth: 11}, rand.New(rand.NewSource(4)))
	l2 := NewL2SR(L2Config{N: n, K: k, Depth: 11}, rand.New(rand.NewSource(5)))
	feed(l1, x)
	feed(l2, x)
	if b := l1.Bias(); math.Abs(b-50) > 1e-9 {
		t.Errorf("ℓ1 bias = %f, want 50", b)
	}
	if b := l2.Bias(); math.Abs(b-50) > 1e-9 {
		t.Errorf("ℓ2 bias = %f, want 50", b)
	}
	bad1, bad2 := 0, 0
	for i := 2; i < n; i += 13 {
		if math.Abs(l1.Query(i)-50) > 1 {
			bad1++
		}
		if math.Abs(l2.Query(i)-50) > 1 {
			bad2++
		}
	}
	// The two huge outliers contaminate at most 2 buckets per row; a
	// handful of coordinates may share a majority of rows with them.
	if bad1 > 5 || bad2 > 5 {
		t.Errorf("too many crowd coordinates disturbed: ℓ1 %d, ℓ2 %d", bad1, bad2)
	}
}

// Tiny dimensions must not panic or divide by zero.
func TestTinyDimensions(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		l1 := NewL1SR(L1Config{N: n, K: 1, SampleCount: 5}, rand.New(rand.NewSource(6)))
		l2 := NewL2SR(L2Config{N: n, K: 1, UseBiasHeap: true}, rand.New(rand.NewSource(7)))
		for i := 0; i < n; i++ {
			l1.Update(i, float64(10*i))
			l2.Update(i, float64(10*i))
		}
		for i := 0; i < n; i++ {
			_ = l1.Query(i)
			_ = l2.Query(i)
		}
		_ = l1.Bias()
		_ = l2.Bias()
	}
}

// Zero updates: queries on an empty sketch return 0.
func TestEmptySketchQueries(t *testing.T) {
	l1 := NewL1SR(L1Config{N: 100, K: 2}, rand.New(rand.NewSource(8)))
	l2 := NewL2SR(L2Config{N: 100, K: 2}, rand.New(rand.NewSource(9)))
	for i := 0; i < 100; i += 7 {
		if l1.Query(i) != 0 || l2.Query(i) != 0 {
			t.Fatalf("empty sketch returned non-zero at %d", i)
		}
	}
}

// State round trips for every estimator kind (the wire-format codec substrate).
func TestStateRoundTrip(t *testing.T) {
	const n, k = 3000, 8
	x := biasedGaussian(n, 70, 9, 10)

	t.Run("l1-sampled", func(t *testing.T) {
		cfg := L1Config{N: n, K: k, SampleCount: 64}
		a := NewL1SR(cfg, rand.New(rand.NewSource(11)))
		feed(a, x)
		b := NewL1SR(cfg, rand.New(rand.NewSource(11)))
		if err := b.UnmarshalState(must(a.MarshalState())); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 41 {
			if a.Query(i) != b.Query(i) {
				t.Fatalf("query mismatch at %d", i)
			}
		}
		if a.Bias() != b.Bias() {
			t.Fatal("bias mismatch after restore")
		}
	})

	t.Run("l2-heap", func(t *testing.T) {
		cfg := L2Config{N: n, K: k, UseBiasHeap: true}
		a := NewL2SR(cfg, rand.New(rand.NewSource(12)))
		feed(a, x)
		b := NewL2SR(cfg, rand.New(rand.NewSource(12)))
		if err := b.UnmarshalState(must(a.MarshalState())); err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Bias()-b.Bias()) > 1e-12 {
			t.Fatalf("bias mismatch: %f vs %f", a.Bias(), b.Bias())
		}
		for i := 0; i < n; i += 41 {
			if a.Query(i) != b.Query(i) {
				t.Fatalf("query mismatch at %d", i)
			}
		}
		// The restored sketch must remain updatable (heap consistent).
		a.Update(5, 100)
		b.Update(5, 100)
		if math.Abs(a.Bias()-b.Bias()) > 1e-12 {
			t.Fatal("bias diverged after post-restore update")
		}
	})

	t.Run("l2-mean", func(t *testing.T) {
		cfg := L2Config{N: n, K: k, Estimator: EstimatorMean}
		a := NewL2SR(cfg, rand.New(rand.NewSource(13)))
		feed(a, x)
		b := NewL2SR(cfg, rand.New(rand.NewSource(13)))
		if err := b.UnmarshalState(must(a.MarshalState())); err != nil {
			t.Fatal(err)
		}
		if a.Bias() != b.Bias() {
			t.Fatal("mean bias mismatch")
		}
	})
}

func TestStateErrors(t *testing.T) {
	l2 := NewL2SR(L2Config{N: 100, K: 2}, rand.New(rand.NewSource(14)))
	if err := l2.UnmarshalState([]byte{1, 2}); err == nil {
		t.Error("short state should fail")
	}
	good := must(l2.MarshalState())
	if err := l2.UnmarshalState(good[:len(good)-3]); err == nil {
		t.Error("truncated state should fail")
	}
	// State from a different shape must be rejected.
	other := NewL2SR(L2Config{N: 100, K: 4}, rand.New(rand.NewSource(15)))
	if err := l2.UnmarshalState(must(other.MarshalState())); err == nil {
		t.Error("mismatched shape state should fail")
	}
}

// Recover must be consistent with Query (the batch recovery is just n
// point queries).
func TestRecoverMatchesQueries(t *testing.T) {
	const n, k = 2000, 8
	x := biasedGaussian(n, 30, 4, 16)
	l2 := NewL2SR(L2Config{N: n, K: k}, rand.New(rand.NewSource(17)))
	feed(l2, x)
	xhat := sketch.Recover(l2)
	for i := 0; i < n; i += 19 {
		if xhat[i] != l2.Query(i) {
			t.Fatalf("Recover[%d] != Query(%d)", i, i)
		}
	}
}
