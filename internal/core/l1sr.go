package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sketch"
)

// L1Config parameterizes the ℓ1-S/R scheme (Algorithms 1–2).
type L1Config struct {
	N int // dimension of the input vector
	K int // sparsity/accuracy trade-off parameter of Theorem 3

	// Cs is the row-width constant c_s: each CM row has s = Cs·K
	// buckets. The paper requires c_s >= 4; defaults to 4.
	Cs int

	// Depth is d, the number of CM rows (Θ(log n) in Theorem 3; the
	// paper's experiments use 9). Defaults to 9.
	Depth int

	// SampleCount is the number of rows of the sampling matrix Υ.
	// Algorithm 1 uses 20·log n; the paper's implementation uses s
	// extra words instead for a more stable estimate (§5.1). Defaults
	// to 20·⌈log₂ n⌉; set explicitly to mirror the paper's plots.
	SampleCount int

	// Estimator selects the bias estimator; EstimatorDefault and
	// EstimatorSampledMedian give the paper's ℓ1-S/R, EstimatorMean
	// gives the ℓ1-mean heuristic of §5.4.
	Estimator EstimatorKind
}

func (c L1Config) withDefaults() L1Config {
	if c.Cs == 0 {
		c.Cs = 4
	}
	if c.Depth == 0 {
		c.Depth = 9
	}
	if c.SampleCount == 0 {
		c.SampleCount = defaultSampleCount(c.N)
	}
	if c.Estimator == EstimatorDefault {
		c.Estimator = EstimatorSampledMedian
	}
	return c
}

// Validate checks the configuration.
func (c L1Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("core: N must be positive, got %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if c.Cs < 4 {
		return fmt.Errorf("core: Cs must be at least 4 (paper requirement), got %d", c.Cs)
	}
	if c.Depth <= 0 {
		return fmt.Errorf("core: Depth must be positive, got %d", c.Depth)
	}
	if c.SampleCount <= 0 {
		return fmt.Errorf("core: SampleCount must be positive, got %d", c.SampleCount)
	}
	switch c.Estimator {
	case EstimatorSampledMedian, EstimatorMean:
		return nil
	default:
		return fmt.Errorf("core: ℓ1-S/R supports sampled-median or mean estimators, got %v", c.Estimator)
	}
}

// L1SR is the bias-aware sketch with ℓ∞/ℓ1 guarantee (Theorem 3):
//
//	Pr[ ‖x̂−x‖∞ ≤ C1/k · min_β Err_1^k(x−β) ] ≥ 1 − C2/n.
//
// It combines d CM-matrix rows (a Count-Median sketch of x) with a
// sampling matrix Υ whose sampled values feed a running median — the
// bias estimate β̂. Recovery subtracts β̂·π from each row, runs the
// Count-Median reconstruction, and adds β̂ back (Algorithm 2).
//
// The whole sketch is linear, so L1SR supports MergeFrom and works in
// the distributed model unchanged. Updates keep the sampled values in
// an order-statistic tree, so the structure is also the streaming
// implementation of §4.4: point queries are answered in O(d + log t)
// without any post-processing pass.
type L1SR struct {
	cfg  L1Config
	cm   *sketch.CountMedian
	est  Estimator
	buf  []float64
	hbuf []int // per-row bucket indices, reused across Query calls
}

// NewL1SR creates an ℓ1-S/R sketch, drawing all randomness from r.
func NewL1SR(cfg L1Config, r *rand.Rand) *L1SR {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	scfg := sketch.Config{N: cfg.N, Rows: cfg.Cs * cfg.K, Depth: cfg.Depth}
	cm, err := sketch.NewCountMedian(scfg, r)
	if err != nil {
		panic(err)
	}
	l := &L1SR{
		cfg:  cfg,
		cm:   cm,
		buf:  make([]float64, cfg.Depth),
		hbuf: make([]int, cfg.Depth),
	}
	switch cfg.Estimator {
	case EstimatorSampledMedian:
		l.est = newSampleMedianEstimator(cfg.N, cfg.SampleCount, r)
	case EstimatorMean:
		l.est = newMeanEstimator(cfg.N)
	}
	return l
}

// Update applies x[i] += delta to the CM rows and the sampled
// coordinates (Algorithm 1 lines 2–3, streaming form).
//
//sketch:hotpath
func (l *L1SR) Update(i int, delta float64) {
	l.cm.Update(i, delta)
	l.est.Observe(i, delta)
}

// UpdateBatch applies the batch to the CM rows row-major (one hash-
// coefficient load per row, cache-hot rows) and replays it element-
// ordered into the bias estimator, leaving exactly the state of the
// element-wise Update loop.
//
//sketch:hotpath
func (l *L1SR) UpdateBatch(idx []int, deltas []float64) {
	l.cm.UpdateBatch(idx, deltas)
	for j, i := range idx {
		l.est.Observe(i, deltas[j])
	}
}

// Bias returns the current bias estimate β̂ (Algorithm 2 line 1).
func (l *L1SR) Bias() float64 { return l.est.Bias() }

// Query estimates x[i] by de-biased Count-Median recovery
// (Algorithm 2 lines 2–5, restricted to coordinate i):
//
//	x̂_i = median_t( y_t[h_t(i)] − β̂·π_t[h_t(i)] ) + β̂.
//
//sketch:hotpath
func (l *L1SR) Query(i int) float64 {
	beta := l.est.Bias()
	l.cm.BucketIndexes(i, l.hbuf)
	for t, b := range l.hbuf {
		l.buf[t] = l.cm.Bucket(t, b) - beta*l.cm.ColumnCounts(t)[b]
	}
	return median(l.buf) + beta
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j
// — de-biased Count-Median recovery, row-major: each CM row's hash
// coefficients, counters, and column counts π load once for the whole
// batch, then the median and the β̂ add-back run per element over the
// gathered, cache-hot columns. β̂ is read once up front; queries never
// change estimator state, so this matches the per-query Bias() calls
// of the element-wise loop and results are bit-identical to it. The
// whole batch is validated before out is written, and scratch is
// borrowed from the shared pool per call, so concurrent QueryBatch
// calls on a quiescent sketch (e.g. a Sharded snapshot replica) are
// safe.
//
//sketch:hotpath
func (l *L1SR) QueryBatch(idx []int, out []float64) {
	l.cm.CheckIndexBatch(idx, out)
	sketch.QueryBatchMedian(l.cfg.Depth, idx, out, l.est.Bias(), l)
}

// GatherRow implements sketch.BatchRecovery: row t's de-biased bucket
// values y_t[h_t(i)] − β̂·π_t[h_t(i)] for the tile, with β̂ read from
// sc.Bias. Used by sketch.QueryBatchMedian, not meant for direct
// callers.
//
//sketch:hotpath
func (l *L1SR) GatherRow(t int, tile []int, o []float64, sc *sketch.QScratch) {
	hb := sc.Ints[:len(tile)]
	l.cm.BucketIndexMany(t, tile, hb)
	row := l.cm.Row(t)
	pi := l.cm.ColumnCounts(t)
	beta := sc.Bias
	for j, b := range hb {
		o[j] = row[b] - beta*pi[b]
	}
}

// Combine implements sketch.BatchRecovery: the row median plus the β̂
// add-back of Algorithm 2 line 5.
//
//sketch:hotpath
func (l *L1SR) Combine(vals []float64, sc *sketch.QScratch) float64 {
	return median(vals) + sc.Bias
}

// PrepareRead precomputes every lazily built, data-independent cache a
// query touches (the per-row column counts π and the bias estimate's
// internal cache). The caches are concurrency-safe to build on demand;
// warming them up front just keeps the first reads of a published
// replica from paying the O(n·d) π computation.
func (l *L1SR) PrepareRead() {
	l.cm.ColumnCounts(0)
	l.est.Bias()
}

// AdoptReadCaches copies the seed-determined query caches (π) from a
// previously prepared replica of the same configuration — "common
// knowledge" in the paper's sense — so successive snapshot replicas
// skip the O(n·d) recompute. A src of another type or shape is
// ignored.
func (l *L1SR) AdoptReadCaches(src any) {
	if o, ok := src.(*L1SR); ok {
		l.cm.ShareColumnCounts(o.cm)
	}
}

// Dim returns n.
func (l *L1SR) Dim() int { return l.cfg.N }

// Words returns the sketch size in 64-bit words: the d·s counters plus
// the sampled values. (π is hash-derived common knowledge, like the
// hash seeds themselves.)
func (l *L1SR) Words() int { return l.cm.Words() + l.est.Words() }

// Config returns the (defaulted) configuration in use.
func (l *L1SR) Config() L1Config { return l.cfg }

// MergeFrom adds another L1SR built with the same configuration and
// random seed, exploiting linearity of both the CM rows and the
// sampled coordinates (the distributed model of §1).
func (l *L1SR) MergeFrom(other *L1SR) error {
	if other.cfg != l.cfg {
		return sketch.ErrIncompatible
	}
	if err := l.cm.MergeFrom(other.cm); err != nil {
		return err
	}
	return l.est.Merge(other.est)
}

// median returns the Table 1 median of buf, reordering it in place. It
// delegates to the sketch package's median so the recovery combine
// step shares its branchless sorting networks.
//
//sketch:hotpath
func median(buf []float64) float64 { return sketch.Median(buf) }
