package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file provides state capture/restore for the bias-aware
// sketches, used by internal/codec to ship sketches between
// processes. Only data-dependent state travels: hash functions,
// sampled positions, and column sums are shared randomness that both
// ends reconstruct from the configuration and seed (exactly the
// paper's distributed protocol, §5.5 footnote 4).

// MarshalState serializes the CM cells and bias-estimator state.
func (l *L1SR) MarshalState() ([]byte, error) {
	cells, err := l.cm.Marshal()
	if err != nil {
		return nil, err
	}
	return packState(cells, l.est.State()), nil
}

// UnmarshalState restores state captured by MarshalState on a sketch
// built with the same configuration and seed.
func (l *L1SR) UnmarshalState(b []byte) error {
	cells, est, err := unpackState(b)
	if err != nil {
		return err
	}
	if err := l.cm.Unmarshal(cells); err != nil {
		return err
	}
	return l.est.SetState(est)
}

// MarshalState serializes the CS cells and bias-estimator state.
func (l *L2SR) MarshalState() ([]byte, error) {
	cells, err := l.cs.Marshal()
	if err != nil {
		return nil, err
	}
	return packState(cells, l.est.State()), nil
}

// UnmarshalState restores state captured by MarshalState on a sketch
// built with the same configuration and seed.
func (l *L2SR) UnmarshalState(b []byte) error {
	cells, est, err := unpackState(b)
	if err != nil {
		return err
	}
	if err := l.cs.Unmarshal(cells); err != nil {
		return err
	}
	return l.est.SetState(est)
}

// packState frames a cell payload and an estimator float vector as
// len(cells) | cells | floats.
func packState(cells []byte, est []float64) []byte {
	out := make([]byte, 8+len(cells)+8*len(est))
	binary.LittleEndian.PutUint64(out, uint64(len(cells)))
	copy(out[8:], cells)
	off := 8 + len(cells)
	for _, v := range est {
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
		off += 8
	}
	return out
}

func unpackState(b []byte) (cells []byte, est []float64, err error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("core: state too short (%d bytes)", len(b))
	}
	cl := binary.LittleEndian.Uint64(b)
	if uint64(len(b)-8) < cl {
		return nil, nil, fmt.Errorf("core: cell payload truncated")
	}
	cells = b[8 : 8+cl]
	rest := b[8+cl:]
	if len(rest)%8 != 0 {
		return nil, nil, fmt.Errorf("core: estimator payload not a float64 multiple")
	}
	est = make([]float64, len(rest)/8)
	for i := range est {
		est[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return cells, est, nil
}
