package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sketch"
)

// L2Config parameterizes the ℓ2-S/R scheme (Algorithms 3–4).
type L2Config struct {
	N int // dimension of the input vector
	K int // sparsity/accuracy trade-off parameter of Theorem 4

	// Cs is the row-width constant c_s: rows have s = Cs·K buckets.
	// The paper requires c_s >= 4; defaults to 4.
	Cs int

	// Depth is d, the number of CS rows (Θ(log n) in Theorem 4; the
	// paper's experiments use 9). Defaults to 9.
	Depth int

	// Estimator selects the bias estimator; EstimatorDefault and
	// EstimatorMedianBucket give the paper's ℓ2-S/R, EstimatorMean
	// gives the ℓ2-mean heuristic of §5.4, and
	// EstimatorSampledMedian is available for the ablation study.
	Estimator EstimatorKind

	// UseBiasHeap selects the streaming implementation of the
	// median-bucket estimator (Algorithms 5–6, O(log s) maintenance
	// per update, O(1) per bias query) instead of the sort-at-query
	// recovery of Algorithm 4. Both produce identical estimates; see
	// TestBiasHeapMatchesSort.
	UseBiasHeap bool

	// SampleCount is used only with EstimatorSampledMedian.
	SampleCount int
}

func (c L2Config) withDefaults() L2Config {
	if c.Cs == 0 {
		c.Cs = 4
	}
	if c.Depth == 0 {
		c.Depth = 9
	}
	if c.Estimator == EstimatorDefault {
		c.Estimator = EstimatorMedianBucket
	}
	if c.SampleCount == 0 {
		c.SampleCount = defaultSampleCount(c.N)
	}
	return c
}

// Validate checks the configuration.
func (c L2Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("core: N must be positive, got %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if c.Cs < 4 {
		return fmt.Errorf("core: Cs must be at least 4 (paper requirement), got %d", c.Cs)
	}
	if c.Depth <= 0 {
		return fmt.Errorf("core: Depth must be positive, got %d", c.Depth)
	}
	switch c.Estimator {
	case EstimatorMedianBucket, EstimatorMean, EstimatorSampledMedian:
		return nil
	default:
		return fmt.Errorf("core: unsupported ℓ2 estimator %v", c.Estimator)
	}
}

// L2SR is the bias-aware sketch with ℓ∞/ℓ2 guarantee (Theorem 4):
//
//	Pr[ ‖x̂−x‖∞ ≤ C1/√k · min_β Err_2^k(x−β) ] ≥ 1 − C2/n.
//
// The sketch (Algorithm 3) is a CM-matrix row w = Π(g)x used only for
// bias estimation, stacked on d CS-matrix rows (a Count-Sketch of x).
// Recovery (Algorithm 4) sorts the CM buckets by average coordinate
// value w_i/π_i, averages the middle 2k buckets to get β̂ — outliers
// contaminate at most k of them, which Lemma 6 shows is harmless —
// then de-biases the CS rows by β̂·ψ and runs the Count-Sketch
// reconstruction, adding β̂ back.
//
// With UseBiasHeap the bucket ordering is maintained incrementally by
// the Bias-Heap (Algorithms 5–6), making every point query O(d) after
// O(log s) per update — the paper's real-time streaming mode.
type L2SR struct {
	cfg  L2Config
	cs   *sketch.CountSketch
	est  Estimator
	buf  []float64
	hbuf []int     // per-row bucket indices, reused across Query calls
	sbuf []float64 // per-row signs, reused across Query calls
}

// NewL2SR creates an ℓ2-S/R sketch, drawing all randomness from r.
func NewL2SR(cfg L2Config, r *rand.Rand) *L2SR {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	scfg := sketch.Config{N: cfg.N, Rows: cfg.Cs * cfg.K, Depth: cfg.Depth}
	cs, err := sketch.NewCountSketch(scfg, r)
	if err != nil {
		panic(err)
	}
	l := &L2SR{
		cfg:  cfg,
		cs:   cs,
		buf:  make([]float64, cfg.Depth),
		hbuf: make([]int, cfg.Depth),
		sbuf: make([]float64, cfg.Depth),
	}
	switch cfg.Estimator {
	case EstimatorMedianBucket:
		l.est = newMedianBucketEstimator(cfg.N, cfg.Cs*cfg.K, cfg.K, cfg.UseBiasHeap, r)
	case EstimatorMean:
		l.est = newMeanEstimator(cfg.N)
	case EstimatorSampledMedian:
		l.est = newSampleMedianEstimator(cfg.N, cfg.SampleCount, r)
	}
	return l
}

// Update applies x[i] += delta to the CS rows and the bias row
// (Algorithm 6 lines 4–6).
//
//sketch:hotpath
func (l *L2SR) Update(i int, delta float64) {
	l.cs.Update(i, delta)
	l.est.Observe(i, delta)
}

// UpdateBatch applies the batch to the CS rows row-major (one hash-
// coefficient load per row, cache-hot rows) and replays it element-
// ordered into the bias estimator, leaving exactly the state of the
// element-wise Update loop.
//
//sketch:hotpath
func (l *L2SR) UpdateBatch(idx []int, deltas []float64) {
	l.cs.UpdateBatch(idx, deltas)
	for j, i := range idx {
		l.est.Observe(i, deltas[j])
	}
}

// Bias returns the current bias estimate β̂ (Algorithm 4 line 2 /
// Algorithm 5 line 19).
func (l *L2SR) Bias() float64 { return l.est.Bias() }

// Query estimates x[i] by de-biased Count-Sketch recovery
// (Algorithm 4 lines 3–6 / Algorithm 6 lines 7–10):
//
//	x̂_i = median_t( r_t(i)·(y_t[h_t(i)] − β̂·ψ_t[h_t(i)]) ) + β̂.
//
//sketch:hotpath
func (l *L2SR) Query(i int) float64 {
	beta := l.est.Bias()
	l.cs.BucketIndexes(i, l.hbuf)
	l.cs.SignsOf(i, l.sbuf)
	for t, b := range l.hbuf {
		l.buf[t] = l.sbuf[t] * (l.cs.Bucket(t, b) - beta*l.cs.SignedColumnSums(t)[b])
	}
	return median(l.buf) + beta
}

// QueryBatch writes the estimate of x[idx[j]] into out[j] for every j
// — de-biased Count-Sketch recovery, row-major: each CS row's bucket
// hash, sign function, counters, and signed column sums ψ load once
// for the whole batch, then the median and the β̂ add-back run per
// element over the gathered, cache-hot columns. β̂ is read once up
// front; queries never change estimator state, so this matches the
// per-query Bias() calls of the element-wise loop and results are
// bit-identical to it. The whole batch is validated before out is
// written, and scratch is borrowed from the shared pool per call, so
// concurrent QueryBatch calls on a quiescent sketch (e.g. a Sharded
// snapshot replica) are safe.
//
//sketch:hotpath
func (l *L2SR) QueryBatch(idx []int, out []float64) {
	l.cs.CheckIndexBatch(idx, out)
	sketch.QueryBatchMedian(l.cfg.Depth, idx, out, l.est.Bias(), l)
}

// GatherRow implements sketch.BatchRecovery: row t's de-biased,
// sign-corrected bucket values r_t(i)·(y_t[h_t(i)] − β̂·ψ_t[h_t(i)])
// for the tile, with β̂ read from sc.Bias. Used by
// sketch.QueryBatchMedian, not meant for direct callers.
//
//sketch:hotpath
func (l *L2SR) GatherRow(t int, tile []int, o []float64, sc *sketch.QScratch) {
	hb := sc.Ints[:len(tile)]
	sg := sc.F1[:len(tile)]
	l.cs.BucketIndexMany(t, tile, hb)
	l.cs.SignOfMany(t, tile, sg)
	row := l.cs.Row(t)
	psi := l.cs.SignedColumnSums(t)
	beta := sc.Bias
	for j, b := range hb {
		o[j] = sg[j] * (row[b] - beta*psi[b])
	}
}

// Combine implements sketch.BatchRecovery: the row median plus the β̂
// add-back of Algorithm 4 line 6.
//
//sketch:hotpath
func (l *L2SR) Combine(vals []float64, sc *sketch.QScratch) float64 {
	return median(vals) + sc.Bias
}

// PrepareRead precomputes every lazily built, data-independent cache a
// query touches (the per-row signed column sums ψ and the bias
// estimate's internal cache). The caches are concurrency-safe to build
// on demand; warming them up front just keeps the first reads of a
// published replica from paying the O(n·d) ψ computation.
func (l *L2SR) PrepareRead() {
	l.cs.SignedColumnSums(0)
	l.est.Bias()
}

// AdoptReadCaches copies the seed-determined query caches (ψ) from a
// previously prepared replica of the same configuration — "common
// knowledge" in the paper's sense — so successive snapshot replicas
// skip the O(n·d) recompute. A src of another type or shape is
// ignored.
func (l *L2SR) AdoptReadCaches(src any) {
	if o, ok := src.(*L2SR); ok {
		l.cs.ShareSignedColumnSums(o.cs)
	}
}

// Dim returns n.
func (l *L2SR) Dim() int { return l.cfg.N }

// Words returns the sketch size in 64-bit words: d·s CS counters plus
// the s-bucket bias row (ψ and π are hash-derived common knowledge).
func (l *L2SR) Words() int { return l.cs.Words() + l.est.Words() }

// Config returns the (defaulted) configuration in use.
func (l *L2SR) Config() L2Config { return l.cfg }

// MergeFrom adds another L2SR built with the same configuration and
// random seed (the distributed model of §1). Both the CS rows and the
// bias row are linear.
func (l *L2SR) MergeFrom(other *L2SR) error {
	if other.cfg != l.cfg {
		return sketch.ErrIncompatible
	}
	if err := l.cs.MergeFrom(other.cs); err != nil {
		return err
	}
	return l.est.Merge(other.est)
}
