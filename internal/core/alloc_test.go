// AllocsPerRun gates are meaningless under the race detector: race-
// instrumented sync.Pool randomly drops Puts, so pooled paths
// legitimately allocate. The lexical hotpathalloc analyzer still
// covers these paths in race builds.
//go:build !race

package core

import (
	"math/rand"
	"testing"
)

// Runtime gates of the //sketch:hotpath contract for the bias-aware
// recoveries: with query caches warm (π/ψ, the estimator cache) and
// the shared scratch pool primed, QueryBatch and UpdateBatch run with
// zero allocations per call.

const (
	allocDim   = 1 << 12
	allocBatch = 600
)

func allocCoreBatch(r *rand.Rand) (idx []int, deltas, out []float64) {
	idx = make([]int, allocBatch)
	deltas = make([]float64, allocBatch)
	out = make([]float64, allocBatch)
	for j := range idx {
		idx[j] = r.Intn(allocDim)
		deltas[j] = float64(1 + r.Intn(5))
	}
	return idx, deltas, out
}

func TestL1SRQueryBatchAllocFree(t *testing.T) {
	for _, est := range []EstimatorKind{EstimatorSampledMedian, EstimatorMean} {
		r := rand.New(rand.NewSource(11))
		l := NewL1SR(L1Config{N: allocDim, K: 16, Estimator: est}, r)
		idx, deltas, out := allocCoreBatch(r)
		l.UpdateBatch(idx, deltas)
		l.PrepareRead()
		l.QueryBatch(idx, out) // warm-up: primes the scratch pool
		if n := testing.AllocsPerRun(50, func() { l.QueryBatch(idx, out) }); n != 0 {
			t.Errorf("estimator %v: QueryBatch allocates %.1f per call in steady state", est, n)
		}
	}
}

func TestL2SRQueryBatchAllocFree(t *testing.T) {
	for _, heap := range []bool{false, true} {
		r := rand.New(rand.NewSource(11))
		l := NewL2SR(L2Config{N: allocDim, K: 16, UseBiasHeap: heap}, r)
		idx, deltas, out := allocCoreBatch(r)
		l.UpdateBatch(idx, deltas)
		l.PrepareRead()
		l.QueryBatch(idx, out)
		if n := testing.AllocsPerRun(50, func() { l.QueryBatch(idx, out) }); n != 0 {
			t.Errorf("heap=%v: QueryBatch allocates %.1f per call in steady state", heap, n)
		}
	}
}

// The ℓ2 update path is fully in-place for both estimator variants:
// the bias row and the Bias-Heap re-seat buckets without allocating.
func TestL2SRUpdateBatchAllocFree(t *testing.T) {
	for _, heap := range []bool{false, true} {
		r := rand.New(rand.NewSource(11))
		l := NewL2SR(L2Config{N: allocDim, K: 16, UseBiasHeap: heap}, r)
		idx, deltas, _ := allocCoreBatch(r)
		l.UpdateBatch(idx, deltas)
		if n := testing.AllocsPerRun(50, func() { l.UpdateBatch(idx, deltas) }); n != 0 {
			t.Errorf("heap=%v: UpdateBatch allocates %.1f per call in steady state", heap, n)
		}
	}
}

// The ℓ1 sampled-median estimator stores sampled values in an
// order-statistic tree, which legitimately allocates a node when a
// sampled coordinate moves to a value not already in the tree — that
// is data-structure maintenance, not per-call scratch. The CM-row half
// of the update path must still be allocation-free, which this gate
// checks with a batch that avoids the sampled coordinates (and, for
// full coverage of the estimator-free path, the mean estimator).
func TestL1SRUpdateBatchAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	l := NewL1SR(L1Config{N: allocDim, K: 16}, r)
	sampled := l.est.(*sampleMedianEstimator).bySource
	idx := make([]int, 0, allocBatch)
	deltas := make([]float64, 0, allocBatch)
	for i := 0; len(idx) < allocBatch; i++ {
		c := i % allocDim
		if len(sampled[c]) > 0 {
			continue
		}
		idx = append(idx, c)
		deltas = append(deltas, float64(1+i%5))
	}
	l.UpdateBatch(idx, deltas)
	if n := testing.AllocsPerRun(50, func() { l.UpdateBatch(idx, deltas) }); n != 0 {
		t.Errorf("UpdateBatch (unsampled coords) allocates %.1f per call in steady state", n)
	}

	rm := rand.New(rand.NewSource(11))
	lm := NewL1SR(L1Config{N: allocDim, K: 16, Estimator: EstimatorMean}, rm)
	midx, mdeltas, _ := allocCoreBatch(rm)
	lm.UpdateBatch(midx, mdeltas)
	if n := testing.AllocsPerRun(50, func() { lm.UpdateBatch(midx, mdeltas) }); n != 0 {
		t.Errorf("UpdateBatch (mean estimator) allocates %.1f per call in steady state", n)
	}
}
