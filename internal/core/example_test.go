package core_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// The basic workflow: stream a biased vector into an ℓ2-S/R sketch,
// read the bias estimate and point queries in real time.
func ExampleL2SR() {
	const n = 100_000
	l2 := core.NewL2SR(core.L2Config{
		N: n, K: 1024,
		UseBiasHeap: true, // streaming mode: O(log s) updates, O(1) bias
	}, rand.New(rand.NewSource(7)))

	// Every key carries ~500 units (the bias); key 42 is an outlier.
	r := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		l2.Update(i, 500+float64(r.Intn(21)-10))
	}
	l2.Update(42, 90_000)

	fmt.Printf("bias ≈ %.0f\n", l2.Bias())
	fmt.Printf("outlier x[42] ≈ %.0f (exact %d)\n", l2.Query(42), 90_500+10-10)
	// Output:
	// bias ≈ 500
	// outlier x[42] ≈ 90508 (exact 90500)
}

// ℓ1-S/R with the sampled-median bias estimator; merge two sketches
// built with shared seeds (the distributed model).
func ExampleL1SR_mergeFrom() {
	cfg := core.L1Config{N: 10_000, K: 256, SampleCount: 1024}
	mk := func() *core.L1SR { return core.NewL1SR(cfg, rand.New(rand.NewSource(3))) }

	siteA, siteB := mk(), mk()
	for i := 0; i < 10_000; i++ {
		siteA.Update(i, 60) // site A sees 60 units per key
		siteB.Update(i, 40) // site B sees 40
	}
	if err := siteA.MergeFrom(siteB); err != nil {
		panic(err)
	}
	fmt.Printf("global bias ≈ %.0f\n", siteA.Bias())
	fmt.Printf("global x[7] ≈ %.0f\n", siteA.Query(7))
	// Output:
	// global bias ≈ 100
	// global x[7] ≈ 100
}

// The sketch can bound its own error (extension beyond the paper).
func ExampleL2SR_TailEstimate() {
	const n = 50_000
	l2 := core.NewL2SR(core.L2Config{N: n, K: 512}, rand.New(rand.NewSource(1)))
	r := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		l2.Update(i, 100+r.NormFloat64()*15)
	}
	est, ok := l2.TailEstimate()
	truth := 15 * 223.6 // σ·√n
	fmt.Printf("supported: %v, estimate within 30%% of σ√n: %v\n",
		ok, est > 0.7*truth && est < 1.3*truth)
	// Output:
	// supported: true, estimate within 30% of σ√n: true
}
