package core

import (
	"math/rand"
	"testing"
)

// biasBatcher is the surface shared by L1SR and L2SR that the batch
// equivalence tests exercise.
type biasBatcher interface {
	Update(i int, delta float64)
	UpdateBatch(idx []int, deltas []float64)
	Query(i int) float64
	Bias() float64
}

// The bias-aware sketches' UpdateBatch must leave exactly the state of
// the element-wise loop: identical point queries AND identical bias
// estimates (the estimator sees the batch in element order).
func TestBiasAwareUpdateBatchMatchesElementwise(t *testing.T) {
	const n = 10000
	cases := []struct {
		name string
		mk   func(seed int64) biasBatcher
	}{
		{"l1sr", func(seed int64) biasBatcher {
			return NewL1SR(L1Config{N: n, K: 64}, rand.New(rand.NewSource(seed)))
		}},
		{"l2sr-heap", func(seed int64) biasBatcher {
			return NewL2SR(L2Config{N: n, K: 64, UseBiasHeap: true}, rand.New(rand.NewSource(seed)))
		}},
		{"l2sr-sort", func(seed int64) biasBatcher {
			return NewL2SR(L2Config{N: n, K: 64}, rand.New(rand.NewSource(seed)))
		}},
		{"l1mean", func(seed int64) biasBatcher {
			return NewL1SR(L1Config{N: n, K: 64, SampleCount: 1, Estimator: EstimatorMean},
				rand.New(rand.NewSource(seed)))
		}},
		{"l2mean", func(seed int64) biasBatcher {
			return NewL2SR(L2Config{N: n, K: 64, Estimator: EstimatorMean},
				rand.New(rand.NewSource(seed)))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batched, seq := tc.mk(61), tc.mk(61)
			r := rand.New(rand.NewSource(62))
			for round := 0; round < 15; round++ {
				m := 1 + r.Intn(500)
				idx := make([]int, m)
				deltas := make([]float64, m)
				for j := range idx {
					idx[j] = r.Intn(n)
					deltas[j] = float64(r.Intn(7) - 2)
				}
				batched.UpdateBatch(idx, deltas)
				for j := range idx {
					seq.Update(idx[j], deltas[j])
				}
			}
			if a, b := batched.Bias(), seq.Bias(); a != b {
				t.Fatalf("bias: batched %v, element-wise %v", a, b)
			}
			for i := 0; i < n; i += 53 {
				if a, b := batched.Query(i), seq.Query(i); a != b {
					t.Fatalf("query %d: batched %v, element-wise %v", i, a, b)
				}
			}
		})
	}
}

// A batch with an invalid index panics before the CM/CS rows or the
// estimator see anything — the sketch and estimator cannot diverge.
func TestBiasAwareUpdateBatchAllOrNothing(t *testing.T) {
	l2 := NewL2SR(L2Config{N: 100, K: 4, UseBiasHeap: true}, rand.New(rand.NewSource(63)))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range batch should panic")
			}
		}()
		l2.UpdateBatch([]int{1, 2, 100}, []float64{5, 5, 5})
	}()
	if l2.Bias() != 0 {
		t.Fatalf("estimator saw a rejected batch: bias %v", l2.Bias())
	}
	for i := 0; i < 100; i++ {
		if l2.Query(i) != 0 {
			t.Fatalf("rows saw a rejected batch: query %d = %v", i, l2.Query(i))
		}
	}
}
