package core

import "math"

// This file adds an extension beyond the paper's API: the ℓ2 sketch
// can estimate its *own* error scale. Theorem 4 bounds the point-query
// error by O(1/√k)·Err_2^k(x−β); the bias row w = Π(g)x already
// carries enough information to estimate that tail, because for a
// crowd bucket the de-biased residual w_i − β̂·π_i is a sum of π_i
// centered coordinates, so (w_i − β̂·π_i)/√π_i has standard deviation
// σ(x−β). A direct second moment over the *middle* buckets is biased
// low (those buckets are selected for small residuals), so we use the
// robust MAD estimator over all buckets instead: at most k of the s ≥
// 4k buckets are contaminated by outliers (Lemma 6's argument), well
// below the MAD's 50% breakdown point. σ̂ = 1.4826·median|r_i/√π_i|
// is calibrated for Gaussian-ish crowds; heavier-tailed crowds read a
// little low. Then Err ≈ √(n·σ̂²) — no second pass over the data and
// no extra space.

// tailEstimator is implemented by bias estimators that can report the
// de-biased tail scale.
type tailEstimator interface {
	tailSigma2(beta float64) (sigma2 float64, ok bool)
}

// TailEstimate returns an estimate of Err_2^k(x − β̂) — the quantity
// the Theorem 4 guarantee is expressed in — computed from the sketch
// itself, and reports ok=false when the configured bias estimator
// cannot provide one (only the median-bucket estimator can; the mean
// and sampled-median estimators do not see bucket occupancies).
//
// Combined with Theorem 4, ±C·TailEstimate()/√k is a practical
// confidence band for point queries.
func (l *L2SR) TailEstimate() (est float64, ok bool) {
	te, can := l.est.(tailEstimator)
	if !can {
		return 0, false
	}
	sigma2, ok := te.tailSigma2(l.est.Bias())
	if !ok {
		return 0, false
	}
	n := float64(l.cfg.N)
	return math.Sqrt(n * sigma2), true
}

// tailSigma2 estimates the per-coordinate variance of x − β from the
// bucket residuals via the MAD (median absolute deviation), which
// tolerates the ≤ k outlier-contaminated buckets.
func (e *medianBucketEstimator) tailSigma2(beta float64) (float64, bool) {
	zs := make([]float64, 0, len(e.w))
	for id := range e.w {
		if e.pi[id] == 0 {
			continue
		}
		r := e.w[id] - beta*e.pi[id]
		z := r / math.Sqrt(e.pi[id])
		if z < 0 {
			z = -z
		}
		zs = append(zs, z)
	}
	if len(zs) == 0 {
		return 0, false
	}
	ids := make([]int, len(zs))
	for i := range ids {
		ids[i] = i
	}
	insertionSortByKey(ids, func(i int) float64 { return zs[i] })
	var med float64
	m := len(ids)
	if m%2 == 1 {
		med = zs[ids[m/2]]
	} else {
		med = (zs[ids[m/2-1]] + zs[ids[m/2]]) / 2
	}
	sigma := 1.4826 * med // Gaussian-consistent MAD scaling
	return sigma * sigma, true
}

// insertionSortByKey sorts ids by (key, id); bucket counts are a few
// thousand at most, and this avoids pulling package sort into the
// recovery hot path twice. For large s it falls back to a shell-sort
// style gap sequence to stay O(s^1.3)-ish.
func insertionSortByKey(ids []int, key func(int) float64) {
	n := len(ids)
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		if gap >= n {
			continue
		}
		for i := gap; i < n; i++ {
			v := ids[i]
			kv := key(v)
			j := i - gap
			for j >= 0 {
				kj := key(ids[j])
				if kj < kv || (kj == kv && ids[j] < v) {
					break
				}
				ids[j+gap] = ids[j]
				j -= gap
			}
			ids[j+gap] = v
		}
	}
}
