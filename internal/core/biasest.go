// Package core implements the paper's contribution: the bias-aware
// sketching and recovery schemes ℓ1-S/R (Algorithms 1–2, Theorem 3)
// and ℓ2-S/R (Algorithms 3–4, Theorem 4), their streaming
// implementations (§4.4, Algorithms 5–6), and the mean-heuristic
// variants ℓ1-mean and ℓ2-mean used as comparison points in §5.4.
//
// Both schemes factor into (a) a classical linear sketch of the input
// vector and (b) a bias estimator that watches the same update stream;
// recovery de-biases the sketch by the estimate β̂ before the usual
// Count-Median/Count-Sketch reconstruction and adds β̂ back at the end.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/biasheap"
	"repro/internal/hashing"
	"repro/internal/ost"
)

// Estimator maintains a running estimate of the bias β of the input
// vector under streaming updates.
type Estimator interface {
	// Observe is called for every stream update x[i] += delta.
	Observe(i int, delta float64)
	// Bias returns the current estimate β̂.
	Bias() float64
	// Words returns the extra sketch size in 64-bit words.
	Words() int
	// Merge adds another estimator's state (for the distributed
	// model); it fails unless the other estimator has the same type
	// and randomness.
	Merge(other Estimator) error
	// State returns the estimator's data-dependent state as a flat
	// float64 slice (hash functions and sampled positions are shared
	// randomness, not state). SetState restores it; the two round-trip.
	State() []float64
	// SetState restores state captured by State; it fails if the
	// length does not match this estimator's shape.
	SetState(v []float64) error
}

// ErrIncompatibleEstimator is returned by Merge on type/seed mismatch.
var ErrIncompatibleEstimator = errors.New("core: incompatible estimators")

// EstimatorKind selects the bias estimator of a bias-aware sketch.
type EstimatorKind int

const (
	// EstimatorDefault picks the paper's estimator for the scheme:
	// sampled median for ℓ1-S/R, median buckets for ℓ2-S/R.
	EstimatorDefault EstimatorKind = iota
	// EstimatorSampledMedian is the ℓ1-S/R estimator (§4.2): the
	// median of Θ(log n) coordinates sampled with replacement.
	EstimatorSampledMedian
	// EstimatorMedianBucket is the ℓ2-S/R estimator (§4.3): average
	// of the coordinates hashed into the middle 2k buckets of a
	// CM-matrix row, in bucket-average order.
	EstimatorMedianBucket
	// EstimatorMean is the §5.4 heuristic: the plain mean of all
	// coordinates. No theoretical guarantee (§4.1), often fine in
	// practice on outlier-free data.
	EstimatorMean
)

// String returns the estimator name as used in the paper.
func (k EstimatorKind) String() string {
	switch k {
	case EstimatorDefault:
		return "default"
	case EstimatorSampledMedian:
		return "sampled-median"
	case EstimatorMedianBucket:
		return "median-bucket"
	case EstimatorMean:
		return "mean"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// ---------------------------------------------------------------------------
// Mean estimator (§4.1 / §5.4)

// meanEstimator tracks the running mean of the vector: total mass over
// dimension. It is trivially linear.
type meanEstimator struct {
	sum float64
	n   float64
}

func newMeanEstimator(n int) *meanEstimator {
	return &meanEstimator{n: float64(n)}
}

func (m *meanEstimator) Observe(_ int, delta float64) { m.sum += delta }

func (m *meanEstimator) Bias() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / m.n
}

func (m *meanEstimator) Words() int { return 1 }

func (m *meanEstimator) Merge(other Estimator) error {
	o, ok := other.(*meanEstimator)
	if !ok || o.n != m.n {
		return ErrIncompatibleEstimator
	}
	m.sum += o.sum
	return nil
}

func (m *meanEstimator) State() []float64 { return []float64{m.sum} }

func (m *meanEstimator) SetState(v []float64) error {
	if len(v) != 1 {
		return fmt.Errorf("core: mean estimator state length %d, want 1", len(v))
	}
	m.sum = v[0]
	return nil
}

// ---------------------------------------------------------------------------
// Sampled-median estimator (ℓ1-S/R, Algorithm 1 line 1 + Algorithm 2
// line 1, maintained in a balanced BST per §4.4)

// sampleMedianEstimator realizes the sampling matrix Υ of Definition 3:
// t rows each pick one uniformly random coordinate (with replacement);
// the bias estimate is the median of the sampled values. An
// order-statistic tree keeps the values sorted so streaming updates
// cost O(log t) and the median O(log t).
type sampleMedianEstimator struct {
	slots    []int         // sampled coordinate per sample slot
	vals     []float64     // current value of each slot
	bySource map[int][]int // coordinate -> slots sampling it
	tree     *ost.Tree
}

func newSampleMedianEstimator(n, t int, r *rand.Rand) *sampleMedianEstimator {
	if t <= 0 {
		panic("core: sample count must be positive")
	}
	e := &sampleMedianEstimator{
		slots:    make([]int, t),
		vals:     make([]float64, t),
		bySource: make(map[int][]int),
		tree:     ost.New(r.Int63()),
	}
	for s := 0; s < t; s++ {
		i := r.Intn(n)
		e.slots[s] = i
		e.bySource[i] = append(e.bySource[i], s)
		e.tree.Insert(0)
	}
	return e
}

func (e *sampleMedianEstimator) Observe(i int, delta float64) {
	for _, s := range e.bySource[i] {
		e.tree.Delete(e.vals[s])
		e.vals[s] += delta
		e.tree.Insert(e.vals[s])
	}
}

func (e *sampleMedianEstimator) Bias() float64 { return e.tree.Median() }

func (e *sampleMedianEstimator) Words() int { return len(e.slots) }

func (e *sampleMedianEstimator) Merge(other Estimator) error {
	o, ok := other.(*sampleMedianEstimator)
	if !ok || len(o.slots) != len(e.slots) {
		return ErrIncompatibleEstimator
	}
	for s := range e.slots {
		if e.slots[s] != o.slots[s] {
			return ErrIncompatibleEstimator
		}
	}
	// Sampled values are coordinates of x, hence linear: add and
	// rebuild the order statistics.
	for s := range e.vals {
		e.tree.Delete(e.vals[s])
		e.vals[s] += o.vals[s]
		e.tree.Insert(e.vals[s])
	}
	return nil
}

func (e *sampleMedianEstimator) State() []float64 {
	return append([]float64(nil), e.vals...)
}

func (e *sampleMedianEstimator) SetState(v []float64) error {
	if len(v) != len(e.vals) {
		return fmt.Errorf("core: sample state length %d, want %d", len(v), len(e.vals))
	}
	for s := range e.vals {
		e.tree.Delete(e.vals[s])
		e.vals[s] = v[s]
		e.tree.Insert(e.vals[s])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Median-bucket estimator (ℓ2-S/R, Algorithm 3 line 1 + Algorithm 4
// lines 1–2; streaming variant via the Bias-Heap of Algorithm 5)

// medianBucketEstimator maintains w = Π(g)x for a single CM row of s
// buckets plus the column counts π, and estimates the bias as the
// average coordinate value inside the middle 2k buckets when buckets
// are ordered by w_i/π_i. With useHeap it maintains the order
// incrementally (Algorithm 5); otherwise it sorts lazily at query
// time (Algorithm 4), caching until the next update.
type medianBucketEstimator struct {
	g  hashing.Pairwise
	w  []float64
	pi []float64
	k  int

	useHeap bool
	heap    *biasheap.Heap

	// The sort-at-query cache is guarded by mu so that concurrent
	// readers of a quiescent sketch (the snapshot-serving contract of
	// QueryBatch) can share one estimator: the first Bias() after an
	// update sorts and fills the cache, later ones read it. The heap
	// variant needs no guard — its Bias() is a pure read.
	mu     sync.Mutex
	dirty  bool
	cached float64
}

func newMedianBucketEstimator(n, s, k int, useHeap bool, r *rand.Rand) *medianBucketEstimator {
	if s < 2*k {
		panic(fmt.Sprintf("core: bucket count s=%d must be at least 2k=%d", s, 2*k))
	}
	// s ≥ 2k ≥ 2 is checked above, so the range error is unreachable.
	g, err := hashing.NewPairwise(r, s)
	if err != nil {
		panic(err)
	}
	e := &medianBucketEstimator{
		g:       g,
		w:       make([]float64, s),
		pi:      make([]float64, s),
		k:       k,
		useHeap: useHeap,
		dirty:   true,
	}
	for j := 0; j < n; j++ {
		e.pi[e.g.Hash(uint64(j))]++
	}
	if useHeap {
		e.heap = biasheap.New(e.pi, 2*k)
	}
	return e
}

func (e *medianBucketEstimator) Observe(i int, delta float64) {
	b := e.g.Hash(uint64(i))
	e.w[b] += delta
	if e.useHeap {
		e.heap.Update(b, delta)
	} else {
		e.dirty = true
	}
}

func (e *medianBucketEstimator) Bias() float64 {
	if e.useHeap {
		return e.heap.Bias()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dirty {
		e.cached = e.sortBias()
		e.dirty = false
	}
	return e.cached
}

// sortBias implements Algorithm 4 line 2 directly: order buckets by
// w_i/π_i (ties by id, matching the Bias-Heap's total order), exclude
// the top and bottom (s−2k)/2, and average the rest.
func (e *medianBucketEstimator) sortBias() float64 {
	s := len(e.w)
	ids := make([]int, s)
	for i := range ids {
		ids[i] = i
	}
	key := func(i int) float64 {
		if e.pi[i] == 0 {
			return 0
		}
		return e.w[i] / e.pi[i]
	}
	sort.Slice(ids, func(a, b int) bool {
		ka, kb := key(ids[a]), key(ids[b])
		if ka != kb {
			return ka < kb
		}
		return ids[a] < ids[b]
	})
	mid := 2 * e.k
	topSize := (s - mid) / 2
	botSize := (s - mid) - topSize
	var wSum, piSum float64
	for _, id := range ids[botSize : s-topSize] {
		wSum += e.w[id]
		piSum += e.pi[id]
	}
	if piSum > 0 {
		return wSum / piSum
	}
	// Degenerate middle: fall back to the global average.
	var wTot, piTot float64
	for i := range e.w {
		wTot += e.w[i]
		piTot += e.pi[i]
	}
	if piTot > 0 {
		return wTot / piTot
	}
	return 0
}

func (e *medianBucketEstimator) Words() int { return len(e.w) }

func (e *medianBucketEstimator) State() []float64 {
	return append([]float64(nil), e.w...)
}

func (e *medianBucketEstimator) SetState(v []float64) error {
	if len(v) != len(e.w) {
		return fmt.Errorf("core: bucket state length %d, want %d", len(v), len(e.w))
	}
	for b := range e.w {
		if e.useHeap && v[b] != e.w[b] {
			e.heap.Update(b, v[b]-e.w[b])
		}
		e.w[b] = v[b]
	}
	e.dirty = true
	return nil
}

func (e *medianBucketEstimator) Merge(other Estimator) error {
	o, ok := other.(*medianBucketEstimator)
	if !ok || o.g != e.g || o.k != e.k || len(o.w) != len(e.w) {
		return ErrIncompatibleEstimator
	}
	for b := range e.w {
		if o.w[b] == 0 {
			continue
		}
		e.w[b] += o.w[b]
		if e.useHeap {
			e.heap.Update(b, o.w[b])
		}
	}
	e.dirty = true
	return nil
}

// defaultSampleCount is the paper's Θ(log n) sample size (Algorithm 1
// uses 20·log n rows in the sampling matrix).
func defaultSampleCount(n int) int {
	t := int(20 * math.Ceil(math.Log2(float64(n)+1)))
	if t < 1 {
		t = 1
	}
	return t
}
