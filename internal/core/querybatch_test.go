package core

import (
	"math/rand"
	"testing"
)

// biasBatchQuerier is the read surface shared by L1SR and L2SR that
// the batched-query equivalence tests exercise.
type biasBatchQuerier interface {
	Update(i int, delta float64)
	Query(i int) float64
	QueryBatch(idx []int, out []float64)
	Bias() float64
	PrepareRead()
}

func queryBatchCases() []struct {
	name string
	mk   func(seed int64) biasBatchQuerier
} {
	const n = 10000
	return []struct {
		name string
		mk   func(seed int64) biasBatchQuerier
	}{
		{"l1sr", func(seed int64) biasBatchQuerier {
			return NewL1SR(L1Config{N: n, K: 64}, rand.New(rand.NewSource(seed)))
		}},
		{"l2sr-heap", func(seed int64) biasBatchQuerier {
			return NewL2SR(L2Config{N: n, K: 64, UseBiasHeap: true}, rand.New(rand.NewSource(seed)))
		}},
		{"l2sr-sort", func(seed int64) biasBatchQuerier {
			return NewL2SR(L2Config{N: n, K: 64}, rand.New(rand.NewSource(seed)))
		}},
		{"l1mean", func(seed int64) biasBatchQuerier {
			return NewL1SR(L1Config{N: n, K: 64, SampleCount: 1, Estimator: EstimatorMean},
				rand.New(rand.NewSource(seed)))
		}},
		{"l2mean", func(seed int64) biasBatchQuerier {
			return NewL2SR(L2Config{N: n, K: 64, Estimator: EstimatorMean},
				rand.New(rand.NewSource(seed)))
		}},
	}
}

// The bias-aware sketches' QueryBatch must return bit-identical
// results to the element-wise Query loop — including the de-biasing by
// β̂ and the add-back — across every estimator variant.
func TestBiasAwareQueryBatchMatchesElementwise(t *testing.T) {
	const n = 10000
	for _, tc := range queryBatchCases() {
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.mk(81)
			r := rand.New(rand.NewSource(82))
			for u := 0; u < 30000; u++ {
				sk.Update(r.Intn(n), float64(r.Intn(7)-2))
			}
			for round := 0; round < 15; round++ {
				m := 1 + r.Intn(500)
				idx := make([]int, m)
				out := make([]float64, m)
				for j := range idx {
					idx[j] = r.Intn(n)
				}
				sk.QueryBatch(idx, out)
				for j, i := range idx {
					if want := sk.Query(i); out[j] != want {
						t.Fatalf("query %d: batched %v, element-wise %v", i, out[j], want)
					}
				}
			}
		})
	}
}

// An invalid query batch panics before out is written, and querying —
// batched or not — leaves the bias estimate untouched.
func TestBiasAwareQueryBatchValidates(t *testing.T) {
	l2 := NewL2SR(L2Config{N: 100, K: 4, UseBiasHeap: true}, rand.New(rand.NewSource(83)))
	for i := 0; i < 100; i++ {
		l2.Update(i, 5)
	}
	out := []float64{-1, -1, -1}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range query batch should panic")
			}
		}()
		l2.QueryBatch([]int{1, 2, 100}, out)
	}()
	for j, v := range out {
		if v != -1 {
			t.Fatalf("rejected batch wrote out[%d] = %v", j, v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch should panic")
			}
		}()
		l2.QueryBatch([]int{1, 2}, make([]float64, 1))
	}()
}

// Concurrent QueryBatch on a quiescent sketch must be safe even when
// the lazy query caches (π/ψ, the sort-estimator bias cache) are still
// cold — the batched-read contract holds without any PrepareRead
// warm-up. Exercised under -race; all readers must agree.
func TestConcurrentColdCacheQueryBatch(t *testing.T) {
	const n = 10000
	for _, tc := range queryBatchCases() {
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.mk(91)
			r := rand.New(rand.NewSource(92))
			for u := 0; u < 10000; u++ {
				sk.Update(r.Intn(n), float64(r.Intn(5)))
			}
			idx := make([]int, 200)
			for j := range idx {
				idx[j] = r.Intn(n)
			}
			done := make(chan []float64, 4)
			for g := 0; g < 4; g++ {
				go func() {
					out := make([]float64, len(idx))
					sk.QueryBatch(idx, out)
					done <- out
				}()
			}
			first := <-done
			for g := 1; g < 4; g++ {
				out := <-done
				for j := range idx {
					if out[j] != first[j] {
						t.Fatalf("cold-cache readers diverged at %d: %v vs %v", idx[j], out[j], first[j])
					}
				}
			}
		})
	}
}

// PrepareRead warms every lazily built cache a query touches: after it
// runs, batched queries must return the same answers (the caches are
// data-independent), and a prepared sketch must answer concurrent
// QueryBatch calls — exercised under -race.
func TestPrepareReadKeepsAnswersAndEnablesConcurrentReads(t *testing.T) {
	const n = 10000
	for _, tc := range queryBatchCases() {
		t.Run(tc.name, func(t *testing.T) {
			warm, cold := tc.mk(84), tc.mk(84)
			r := rand.New(rand.NewSource(85))
			for u := 0; u < 20000; u++ {
				i, d := r.Intn(n), float64(r.Intn(5))
				warm.Update(i, d)
				cold.Update(i, d)
			}
			warm.PrepareRead()
			if warm.Bias() != cold.Bias() {
				t.Fatalf("PrepareRead changed bias: %v vs %v", warm.Bias(), cold.Bias())
			}
			idx := make([]int, 256)
			for j := range idx {
				idx[j] = r.Intn(n)
			}
			a, b := make([]float64, 256), make([]float64, 256)
			warm.QueryBatch(idx, a)
			cold.QueryBatch(idx, b)
			for j := range idx {
				if a[j] != b[j] {
					t.Fatalf("PrepareRead changed query %d: %v vs %v", idx[j], a[j], b[j])
				}
			}

			// Concurrent readers on the prepared, quiescent sketch.
			done := make(chan []float64, 4)
			for g := 0; g < 4; g++ {
				go func() {
					out := make([]float64, len(idx))
					warm.QueryBatch(idx, out)
					done <- out
				}()
			}
			for g := 0; g < 4; g++ {
				out := <-done
				for j := range idx {
					if out[j] != a[j] {
						t.Fatalf("concurrent read diverged at %d: %v vs %v", idx[j], out[j], a[j])
					}
				}
			}
		})
	}
}
