package server

import (
	"fmt"
	"sort"
	"sync"
)

// entry is one registered sketch: identity, the spec that built it
// (persisted as the checkpoint sidecar), and the serving handle.
// gen/sum track the last durably written checkpoint generation and its
// container checksum — mutated only under the server's checkpoint
// mutex (or at boot, before any concurrency).
type entry struct {
	tenant, name string
	spec         Spec
	h            handle

	gen uint64
	sum string
}

// registry maps tenant → sketch name → entry under one RWMutex. The
// lock guards only the maps: handles are internally synchronized, so
// ingest and queries proceed without it once the entry is resolved.
type registry struct {
	mu      sync.RWMutex
	tenants map[string]map[string]*entry
}

func newRegistry() *registry {
	return &registry{tenants: make(map[string]map[string]*entry)}
}

// create validates the names, builds the handle, and registers it.
// The handle is built outside the lock — constructors can be costly —
// and a losing race with a concurrent identical create returns
// ErrExists rather than replacing live state.
func (r *registry) create(tenant, name string, spec Spec) (*entry, error) {
	if !validName(tenant) || !validName(name) {
		return nil, fmt.Errorf("%w: %q/%q", ErrBadName, tenant, name)
	}
	if exists := r.lookup(tenant, name) != nil; exists {
		return nil, fmt.Errorf("%w: %s/%s", ErrExists, tenant, name)
	}
	h, err := buildHandle(spec)
	if err != nil {
		return nil, err
	}
	e := &entry{tenant: tenant, name: name, spec: spec, h: h}
	if !r.put(e, false) {
		return nil, fmt.Errorf("%w: %s/%s", ErrExists, tenant, name)
	}
	return e, nil
}

// put registers e, returning false when the slot is already taken and
// replace is false. Restore-on-boot uses replace=false too: two
// sidecars can't collide (filenames are unique), so a collision there
// means loadAll was fed overlapping directories.
func (r *registry) put(e *entry, replace bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := r.tenants[e.tenant]
	if byName == nil {
		byName = make(map[string]*entry)
		r.tenants[e.tenant] = byName
	}
	if _, taken := byName[e.name]; taken && !replace {
		return false
	}
	byName[e.name] = e
	return true
}

// lookup returns the entry or nil.
func (r *registry) lookup(tenant, name string) *entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[tenant][name]
}

// get is lookup with a typed error for the HTTP layer.
func (r *registry) get(tenant, name string) (*entry, error) {
	if e := r.lookup(tenant, name); e != nil {
		return e, nil
	}
	return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, name)
}

// remove deletes the entry, reporting whether it existed.
func (r *registry) remove(tenant, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := r.tenants[tenant]
	if _, ok := byName[name]; !ok {
		return false
	}
	delete(byName, name)
	if len(byName) == 0 {
		delete(r.tenants, tenant)
	}
	return true
}

// list returns the tenant's entries sorted by name (a stable order
// for the list endpoint and the tests).
func (r *registry) list(tenant string) []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	es := make([]*entry, 0, len(r.tenants[tenant]))
	for _, e := range r.tenants[tenant] {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// all returns every entry across every tenant, sorted by tenant then
// name — the checkpoint pass order.
func (r *registry) all() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var es []*entry
	for _, byName := range r.tenants {
		for _, e := range byName {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].tenant != es[j].tenant {
			return es[i].tenant < es[j].tenant
		}
		return es[i].name < es[j].name
	})
	return es
}
