package server

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro"
)

// Spec describes one sketch as a client creates it and as the
// checkpoint sidecar persists it. Kind selects the serving container:
//
//   - "plain": a single repro.New sketch behind a server-side RWMutex;
//     the only kind that takes a Backend ("dense" or "compressed").
//   - "sharded": repro.NewSharded — per-shard locks, snapshot serving.
//   - "windowed": repro.NewWindowed — pane ring over sharded open pane.
//
// Zero-valued optional fields defer to the facade defaults.
type Spec struct {
	Kind        string `json:"kind"`
	Algo        string `json:"algo"`
	Dim         int    `json:"dim"`
	Words       int    `json:"words,omitempty"`
	Depth       int    `json:"depth,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	Backend     string `json:"backend,omitempty"`
	Hashing     string `json:"hashing,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	Panes       int    `json:"panes,omitempty"`
	PaneWidthMS int64  `json:"pane_width_ms,omitempty"`
}

// handle is one served sketch: the kind-specific concurrency wrapper
// behind a uniform batched surface. Implementations must be safe for
// concurrent use — ingest, queries, and checkpoints overlap freely.
type handle interface {
	kind() string
	algo() string
	dim() int
	words() int
	updateBatch(slot int, idx []int, deltas []float64) error
	queryBatch(idx []int, out []float64) error
	topK(k int) ([]repro.Deviator, error)
	checkpoint(w io.Writer) error
}

// sketchOptions translates the spec's optional shape fields to facade
// options. WithDim always; the rest only when set, so facade defaults
// apply.
func sketchOptions(spec Spec) []repro.Option {
	opts := []repro.Option{repro.WithDim(spec.Dim)}
	if spec.Words > 0 {
		opts = append(opts, repro.WithWords(spec.Words))
	}
	if spec.Depth > 0 {
		opts = append(opts, repro.WithDepth(spec.Depth))
	}
	if spec.Seed != 0 {
		opts = append(opts, repro.WithSeed(spec.Seed))
	}
	return opts
}

// hashingOf maps the spec's hashing string to a facade Hashing.
func hashingOf(name string) (repro.Hashing, error) {
	switch name {
	case "", "pairwise":
		return repro.HashPairwise, nil
	case "tabulation":
		return repro.HashTabulation, nil
	}
	return repro.HashPairwise, fmt.Errorf("%w: unknown hashing %q (valid: pairwise, tabulation)", ErrBadSpec, name)
}

// backendOf maps the spec's backend string to a facade Backend. Mmap
// is deliberately absent: mapped checkpoints are read-only serving
// replicas opened via OpenMmap, not something a live ingest endpoint
// can sit on.
func backendOf(name string) (repro.Backend, error) {
	switch name {
	case "", "dense":
		return repro.BackendDense, nil
	case "compressed":
		return repro.BackendCompressed, nil
	}
	return repro.BackendDense, fmt.Errorf("%w: unknown backend %q (valid: dense, compressed)", ErrBadSpec, name)
}

// buildHandle constructs the serving handle a spec describes. Facade
// errors (unknown algorithm, invalid shape, unsupported backend) pass
// through typed, so callers map them to 400.
func buildHandle(spec Spec) (handle, error) {
	h, err := hashingOf(spec.Hashing)
	if err != nil {
		return nil, err
	}
	withHash := func(opts []repro.Option) []repro.Option {
		if h != repro.HashPairwise {
			opts = append(opts, repro.WithHashing(h))
		}
		return opts
	}
	switch spec.Kind {
	case "plain":
		be, err := backendOf(spec.Backend)
		if err != nil {
			return nil, err
		}
		opts := append(withHash(sketchOptions(spec)), repro.WithBackend(be))
		sk, err := repro.New(spec.Algo, opts...)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		return &plainHandle{sk: sk, insertOnly: be == repro.BackendCompressed}, nil
	case "sharded":
		if spec.Backend != "" {
			return nil, fmt.Errorf("%w: sharded sketches are dense-only", ErrBadSpec)
		}
		sh, err := repro.NewSharded(shardsOrDefault(spec.Shards), spec.Algo, withHash(sketchOptions(spec))...)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		return &shardedHandle{s: sh}, nil
	case "windowed":
		if spec.Backend != "" {
			return nil, fmt.Errorf("%w: windowed sketches are dense-only", ErrBadSpec)
		}
		opts := withHash(sketchOptions(spec))
		if spec.Panes > 0 {
			opts = append(opts, repro.WithPanes(spec.Panes))
		}
		if spec.PaneWidthMS > 0 {
			opts = append(opts, repro.WithPaneWidth(time.Duration(spec.PaneWidthMS)*time.Millisecond))
		}
		wd, err := repro.NewWindowed(shardsOrDefault(spec.Shards), spec.Algo, opts...)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		return &windowedHandle{w: wd}, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q (valid: plain, sharded, windowed)", ErrBadSpec, spec.Kind)
}

func shardsOrDefault(n int) int {
	if n > 0 {
		return n
	}
	return 1
}

// shardedHandle serves a *repro.Sharded. Ingest goes to the slot's
// shard under its own lock; queries go through the published snapshot
// (refreshed only when some shard changed), so query bursts take zero
// shard locks.
type shardedHandle struct{ s *repro.Sharded }

func (h *shardedHandle) kind() string { return "sharded" }
func (h *shardedHandle) algo() string { return h.s.Algo() }
func (h *shardedHandle) dim() int     { return h.s.Dim() }
func (h *shardedHandle) words() int   { return h.s.Words() }

func (h *shardedHandle) updateBatch(slot int, idx []int, deltas []float64) error {
	return h.s.UpdateBatch(slot, idx, deltas)
}

func (h *shardedHandle) queryBatch(idx []int, out []float64) error {
	return h.s.QueryBatch(idx, out)
}

func (h *shardedHandle) topK(k int) ([]repro.Deviator, error) {
	sn, err := h.s.Refresh()
	if err != nil {
		return nil, err
	}
	return sn.TopK(k)
}

func (h *shardedHandle) checkpoint(w io.Writer) error { return h.s.Checkpoint(w) }

// windowedHandle serves a *repro.Windowed; the facade type is already
// concurrency-safe and folds due pane rotations into every operation.
type windowedHandle struct{ w *repro.Windowed }

func (h *windowedHandle) kind() string { return "windowed" }
func (h *windowedHandle) algo() string { return h.w.Algo() }
func (h *windowedHandle) dim() int     { return h.w.Dim() }
func (h *windowedHandle) words() int   { return h.w.Words() }

func (h *windowedHandle) updateBatch(slot int, idx []int, deltas []float64) error {
	return h.w.UpdateBatch(slot, idx, deltas)
}

func (h *windowedHandle) queryBatch(idx []int, out []float64) error {
	return h.w.QueryBatch(idx, out)
}

func (h *windowedHandle) topK(k int) ([]repro.Deviator, error) { return h.w.TopK(k) }

func (h *windowedHandle) checkpoint(w io.Writer) error { return h.w.Checkpoint(w) }

// plainHandle serves a single repro.Sketch behind an RWMutex — the
// fallback for algorithms without a Sharded wrapper (non-linear
// conservative-update sketches, compressed backends). Writers
// serialize; readers share.
type plainHandle struct {
	mu sync.RWMutex
	sk repro.Sketch
	// insertOnly marks a compressed counter plane: negative or
	// fractional deltas would panic inside the braid, so the batch is
	// pre-validated and rejected whole with a typed error instead.
	insertOnly bool
}

func (h *plainHandle) kind() string { return "plain" }
func (h *plainHandle) algo() string { return h.sk.Algo() }
func (h *plainHandle) dim() int     { return h.sk.Dim() }
func (h *plainHandle) words() int   { return h.sk.Words() }

func (h *plainHandle) updateBatch(_ int, idx []int, deltas []float64) error {
	if h.insertOnly {
		for j, d := range deltas {
			if d < 0 || d != math.Trunc(d) {
				return fmt.Errorf("%w: delta %v at batch element %d", repro.ErrInsertOnly, d, j)
			}
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return repro.UpdateBatch(h.sk, idx, deltas)
}

func (h *plainHandle) queryBatch(idx []int, out []float64) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return repro.QueryBatch(h.sk, idx, out)
}

func (h *plainHandle) topK(k int) ([]repro.Deviator, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return repro.TopK(h.sk, k)
}

func (h *plainHandle) checkpoint(w io.Writer) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return repro.Encode(w, h.sk)
}
