package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
)

// TestServeSmokeProcess is the end-to-end drill `make serve-smoke`
// runs: build the real sketchd binary, boot it on an ephemeral port,
// create/ingest/query over real TCP, kill -TERM it while an ingest
// loop is still firing, and assert (a) it drains cleanly — exit 0,
// final checkpoint on disk — and (b) a second boot from the data
// directory answers bit-identically to a reference twin built from
// the acknowledged batches (plus at most the one in-flight batch
// whose ack the drain may have torn away — see below). Skipped under
// -short: it shells out to the go tool.
func TestServeSmokeProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the sketchd binary; skipped in -short lanes")
	}
	const dim = 10_000

	bin := filepath.Join(t.TempDir(), "sketchd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sketchd")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sketchd: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	addr, proc, wait := startSketchd(t, bin, dataDir)
	base := "http://" + addr

	create := `{"name":"flows","kind":"sharded","algo":"l2sr","dim":10000,"words":1024,"shards":2,"seed":11}`
	resp, err := http.Post(base+"/v1/acme/sketches", "application/json", strings.NewReader(create))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create: %s: %s", resp.Status, body)
	}

	// Ingest loop: fires deterministic batches until the server goes
	// away, reporting how many were acknowledged. Batch b targets
	// coordinate groups derived from b, integer deltas.
	acked := make(chan int, 1)
	go func() {
		n := 0
		defer func() { acked <- n }()
		for b := 0; ; b++ {
			idx, deltas := smokeBatch(b, dim)
			var buf bytes.Buffer
			if err := repro.EncodeBatch(&buf, idx, deltas); err != nil {
				return
			}
			resp, err := http.Post(fmt.Sprintf("%s/v1/acme/sketches/flows/ingest?slot=%d", base, b%2),
				"application/octet-stream", &buf)
			if err != nil {
				return // drain tore the connection; batch b is the one ambiguous batch
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				return // 503 during drain; this batch was not applied
			}
			n++
		}
	}()

	// Let the soak run, then TERM mid-flight.
	time.Sleep(300 * time.Millisecond)
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out, err := wait()
	if err != nil {
		t.Fatalf("sketchd did not exit cleanly after SIGTERM: %v\n%s", err, out)
	}
	if !strings.Contains(out, "drained cleanly") {
		t.Fatalf("no clean-drain marker in output:\n%s", out)
	}
	applied := <-acked
	if applied == 0 {
		t.Fatal("soak acknowledged zero batches before the TERM")
	}
	if m, _ := filepath.Glob(filepath.Join(dataDir, "acme", "flows.g*.ckpt")); len(m) == 0 {
		t.Fatal("final checkpoint missing")
	}

	// Second boot from the same data directory.
	addr2, proc2, wait2 := startSketchd(t, bin, dataDir)
	defer func() { proc2.Signal(syscall.SIGTERM); wait2() }()

	probe := make([]int, 0, 200)
	for i := 0; i < dim; i += 53 {
		probe = append(probe, i)
	}
	var url bytes.Buffer
	fmt.Fprintf(&url, "http://%s/v1/acme/sketches/flows/query?", addr2)
	for j, i := range probe {
		if j > 0 {
			url.WriteByte('&')
		}
		fmt.Fprintf(&url, "i=%d", i)
	}
	resp, err = http.Get(url.String())
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("restored query: %s: %s", resp.Status, body)
	}
	var q struct{ Estimates []float64 }
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}

	// Reference twin: the acknowledged prefix of the same batch
	// sequence, applied in-process. Integer deltas make the sums — and
	// therefore the estimates — exact, so the restored server must
	// match bit for bit. One inherent ambiguity: the terminal request
	// may have been applied server-side with its 200 lost when the
	// drain tore the connection (the client saw EOF/reset after the
	// handler ran). TCP cannot tell "not applied" from "ack lost", so
	// the restored state must equal the acked prefix either exactly or
	// with exactly that one in-flight batch on top — anything else
	// (a lost acked batch, a double apply) is a real durability bug.
	ref, err := repro.NewSharded(2, "l2sr",
		repro.WithDim(dim), repro.WithWords(1024), repro.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < applied; b++ {
		idx, deltas := smokeBatch(b, dim)
		if err := ref.UpdateBatch(b%2, idx, deltas); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]float64, len(probe))
	if err := ref.QueryBatch(probe, want); err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(want, q.Estimates) {
		idx, deltas := smokeBatch(applied, dim)
		if err := ref.UpdateBatch(applied%2, idx, deltas); err != nil {
			t.Fatal(err)
		}
		if err := ref.QueryBatch(probe, want); err != nil {
			t.Fatal(err)
		}
		if bitIdentical(want, q.Estimates) {
			t.Logf("terminal batch %d was applied but its ack was lost to the drain", applied)
		} else {
			t.Fatalf("restored process matches neither the %d acked batches nor them plus the one in-flight batch", applied)
		}
	}
}

// bitIdentical reports whether two estimate vectors match bit for bit
// (math.Float64bits equality via ==, which is exact for these sums).
func bitIdentical(want, got []float64) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i] != got[i] {
			return false
		}
	}
	return true
}

// smokeBatch derives batch b deterministically: 100 updates with
// integer deltas, a few hot keys plus a spread tail.
func smokeBatch(b, dim int) ([]int, []float64) {
	idx := make([]int, 100)
	deltas := make([]float64, 100)
	for j := range idx {
		if j%5 == 0 {
			idx[j] = (b + j) % 10
		} else {
			idx[j] = (b*131 + j*7919) % dim
		}
		deltas[j] = float64(1 + (b+j)%4)
	}
	return idx, deltas
}

// repoRoot walks up from the package directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// startSketchd boots the binary against dataDir on an ephemeral port,
// parses the announced address, and returns the process plus a wait
// function yielding its combined output.
func startSketchd(t *testing.T, bin, dataDir string) (addr string, proc *os.Process, wait func() (string, error)) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-data", dataDir,
		"-checkpoint-every", "50ms", "-max-inflight", "0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	lines := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	donec := make(chan error, 1)
	go func() {
		announced := false
		for lines.Scan() {
			buf.WriteString(lines.Text())
			buf.WriteByte('\n')
			if !announced {
				if rest, ok := strings.CutPrefix(lines.Text(), "listening on "); ok {
					announced = true
					addrc <- rest
				}
			}
		}
		donec <- cmd.Wait()
	}()

	select {
	case addr = <-addrc:
	case err := <-donec:
		t.Fatalf("sketchd exited before announcing: %v\n%s", err, buf.String())
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("sketchd never announced its address\n%s", buf.String())
	}
	waitErr := func() (string, error) {
		select {
		case err := <-donec:
			return buf.String(), err
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			return buf.String(), fmt.Errorf("sketchd did not exit within 30s of SIGTERM")
		}
	}
	return addr, cmd.Process, waitErr
}
