package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// errInjectedSync is the fault these tests inject into the fsync
// indirection points.
var errInjectedSync = errors.New("injected sync failure")

// mkEntry builds a registered plain sketch with some state to
// checkpoint, bypassing HTTP: these tests exercise the durability
// layer directly.
func mkEntry(t *testing.T) *entry {
	t.Helper()
	h, err := buildHandle(Spec{Kind: "plain", Algo: "l2sr", Dim: 500, Words: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e := &entry{tenant: "acme", name: "s",
		spec: Spec{Kind: "plain", Algo: "l2sr", Dim: 500, Words: 64, Seed: 7}, h: h}
	if err := e.h.updateBatch(0, []int{3, 4, 3}, []float64{5, 7, 5}); err != nil {
		t.Fatal(err)
	}
	return e
}

func query(t *testing.T, h handle, i int) float64 {
	t.Helper()
	out := make([]float64, 1)
	if err := h.queryBatch([]int{i}, out); err != nil {
		t.Fatal(err)
	}
	return out[0]
}

// A failing fsync must fail the write, leave no temp litter, and leave
// the previously published file untouched — the checkpoint pair on
// disk stays the last durable one.
func TestWriteAtomicSyncErrorPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	if err := writeAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}

	oldSync := syncFile
	syncFile = func(*os.File) error { return errInjectedSync }
	t.Cleanup(func() { syncFile = oldSync })

	if err := writeAtomic(path, []byte("new")); !errors.Is(err, errInjectedSync) {
		t.Fatalf("writeAtomic err = %v, want the injected fsync failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("published file = %q, %v; a failed sync must not replace it", got, err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("temp litter left behind: %v", files)
	}

	// Directory-sync failure surfaces too (the rename has happened, but
	// the caller must learn the checkpoint is not yet durable).
	syncFile = oldSync
	oldDir := syncDir
	syncDir = func(string) error { return errInjectedSync }
	t.Cleanup(func() { syncDir = oldDir })
	if err := writeAtomic(path, []byte("new")); !errors.Is(err, errInjectedSync) {
		t.Fatalf("writeAtomic dir-sync err = %v, want the injected failure", err)
	}
}

// writeEntry through a failing fsync leaves the previous generation
// bootable: the sidecar still names it, so a restart serves the last
// durable checkpoint.
func TestWriteEntrySyncFailureKeepsPriorGeneration(t *testing.T) {
	dir := t.TempDir()
	e := mkEntry(t)
	if err := writeEntry(dir, e); err != nil {
		t.Fatal(err)
	}
	wantAt3 := query(t, e.h, 3)

	if err := e.h.updateBatch(0, []int{3}, []float64{100}); err != nil {
		t.Fatal(err)
	}
	oldSync := syncFile
	syncFile = func(*os.File) error { return errInjectedSync }
	t.Cleanup(func() { syncFile = oldSync })
	if err := writeEntry(dir, e); !errors.Is(err, errInjectedSync) {
		t.Fatalf("writeEntry err = %v", err)
	}
	syncFile = oldSync

	got, err := loadEntry(dir, "acme", "s")
	if err != nil {
		t.Fatal(err)
	}
	if v := query(t, got.h, 3); v != wantAt3 {
		t.Fatalf("restored Query(3) = %v, want the pre-failure %v", v, wantAt3)
	}
}

// The crash window this change closes: the new generation's container
// is on disk but the sidecar rename never happened. Boot must ignore
// the orphan and serve the pair the sidecar names.
func TestBootIgnoresOrphanContainer(t *testing.T) {
	dir := t.TempDir()
	e := mkEntry(t)
	if err := writeEntry(dir, e); err != nil {
		t.Fatal(err)
	}
	wantAt3 := query(t, e.h, 3)

	// Simulate the torn pair: a fully written gen-2 container with
	// newer state, sidecar still pointing at gen 1.
	if err := e.h.updateBatch(0, []int{3}, []float64{100}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.h.checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	orphan := containerPath(filepath.Join(dir, "acme", "s"), 2)
	if err := os.WriteFile(orphan, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := loadEntry(dir, "acme", "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.gen != 1 {
		t.Fatalf("boot picked generation %d, want the sidecar's 1", got.gen)
	}
	if v := query(t, got.h, 3); v != wantAt3 {
		t.Fatalf("restored Query(3) = %v, want %v — orphan container must not be served", v, wantAt3)
	}
}

// A current-generation container that is torn (truncated, corrupted)
// fails its recorded checksum, and boot falls back to the previous
// consistent pair instead of serving garbage or refusing to start.
func TestBootFallsBackOnTornContainer(t *testing.T) {
	dir := t.TempDir()
	e := mkEntry(t)
	if err := writeEntry(dir, e); err != nil {
		t.Fatal(err)
	}
	wantAt3 := query(t, e.h, 3)
	if err := e.h.updateBatch(0, []int{4}, []float64{50}); err != nil {
		t.Fatal(err)
	}
	if err := writeEntry(dir, e); err != nil {
		t.Fatal(err)
	}

	// Tear generation 2: chop the tail off the container.
	cur := containerPath(filepath.Join(dir, "acme", "s"), 2)
	data, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := loadEntry(dir, "acme", "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.gen != 1 {
		t.Fatalf("boot picked generation %d, want the fallback 1", got.gen)
	}
	if v := query(t, got.h, 3); v != wantAt3 {
		t.Fatalf("fallback Query(3) = %v, want the generation-1 %v", v, wantAt3)
	}

	// Both generations gone bad: boot refuses with both causes named.
	prev := containerPath(filepath.Join(dir, "acme", "s"), 1)
	if err := os.WriteFile(prev, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadEntry(dir, "acme", "s"); err == nil {
		t.Fatal("boot served a sketch with no consistent checkpoint pair")
	}
}

// Pre-generation checkpoints — bare <name>.ckpt and a plain-Spec
// sidecar — still boot, and the next checkpoint pass upgrades them to
// the generational layout.
func TestLegacyLayoutBootsAndUpgrades(t *testing.T) {
	dir := t.TempDir()
	e := mkEntry(t)
	tdir := filepath.Join(dir, "acme")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.h.checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, "s.ckpt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(e.spec) // legacy sidecar: Spec only, no envelope
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, "s.json"), spec, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := loadEntry(dir, "acme", "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.gen != 0 || got.sum != "" {
		t.Fatalf("legacy boot should report generation 0, got %d/%q", got.gen, got.sum)
	}
	if v := query(t, got.h, 3); v != query(t, e.h, 3) {
		t.Fatal("legacy restore diverged")
	}

	// Two passes later the legacy container is pruned: the sidecar
	// names generations 2 and 1 only.
	if err := writeEntry(dir, got); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(tdir, "s.ckpt")); err != nil {
		t.Fatal("first upgrade pass must keep the legacy container as fallback")
	}
	if err := writeEntry(dir, got); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(tdir, "s.ckpt")); !os.IsNotExist(err) {
		t.Errorf("legacy container not pruned after two generational passes: %v", err)
	}
}

// Repeated passes keep exactly the two generations the sidecar names.
func TestPruneKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	e := mkEntry(t)
	for i := 0; i < 5; i++ {
		if err := writeEntry(dir, e); err != nil {
			t.Fatal(err)
		}
	}
	m, err := filepath.Glob(filepath.Join(dir, "acme", "s.g*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("containers on disk after 5 passes: %v, want generations 4 and 5 only", m)
	}
	for _, gen := range []uint64{4, 5} {
		if _, err := os.Stat(containerPath(filepath.Join(dir, "acme", "s"), gen)); err != nil {
			t.Errorf("generation %d missing: %v", gen, err)
		}
	}
}
