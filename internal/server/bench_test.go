package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// BenchmarkIngestEndpoint measures the served ingestion path end to
// end — HTTP round trip, wire-v2 batch decode with full validation,
// and the sharded UpdateBatch — for one 512-element batch per op.
// Divide ns/op by 512 to compare against the in-process
// BenchmarkUpdateBatch numbers: the difference is the serving tax
// (transport + framing + validation).
func BenchmarkIngestEndpoint(b *testing.B) {
	const batchLen = 512
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	create := `{"name":"bench","kind":"sharded","algo":"l2sr","dim":1000000,"words":4096,"shards":4,"seed":1}`
	resp, err := http.Post(ts.URL+"/v1/bench/sketches", "application/json", bytes.NewReader([]byte(create)))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		b.Fatalf("create status %d", resp.StatusCode)
	}

	idx := make([]int, batchLen)
	deltas := make([]float64, batchLen)
	for j := range idx {
		idx[j] = (j * 7919) % 1000000
		deltas[j] = float64(1 + j%5)
	}
	var frame bytes.Buffer
	if err := repro.EncodeBatch(&frame, idx, deltas); err != nil {
		b.Fatal(err)
	}
	payload := frame.Bytes()
	url := ts.URL + "/v1/bench/sketches/bench/ingest"
	client := ts.Client()

	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := http.NewRequest("POST", fmt.Sprintf("%s?slot=%d", url, i%4), bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
}
