package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro"
)

// Request-size and batch-size bounds. The ingest bound comfortably
// fits a MaxBatchLen wire frame plus framing; the others keep hostile
// query strings from turning one request into a full-vector scan.
const (
	maxIngestBody   = 20 << 20
	maxCreateBody   = 1 << 20
	maxQueryBatch   = 4096
	maxRangeWidth   = 1 << 16
	rangeChunkWords = 1024
)

// info is the JSON shape describing one sketch.
type info struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Algo   string `json:"algo"`
	Dim    int    `json:"dim"`
	Words  int    `json:"words"`
	Spec   Spec   `json:"spec"`
}

func entryInfo(e *entry) info {
	return info{
		Tenant: e.tenant, Name: e.name,
		Kind: e.h.kind(), Algo: e.h.algo(),
		Dim: e.h.dim(), Words: e.h.words(),
		Spec: e.spec,
	}
}

// deviator is repro.Deviator with stable JSON field names.
type deviator struct {
	Index     int     `json:"index"`
	Estimate  float64 `json:"estimate"`
	Deviation float64 `json:"deviation"`
}

// Handler returns the server's HTTP surface:
//
//	GET    /healthz
//	POST   /v1/checkpoint
//	GET    /v1/{tenant}/sketches
//	POST   /v1/{tenant}/sketches
//	GET    /v1/{tenant}/sketches/{name}
//	DELETE /v1/{tenant}/sketches/{name}
//	POST   /v1/{tenant}/sketches/{name}/ingest?slot=N
//	GET    /v1/{tenant}/sketches/{name}/query?i=...&i=...
//	GET    /v1/{tenant}/sketches/{name}/range?lo=L&hi=H
//	GET    /v1/{tenant}/sketches/{name}/topk?k=K
//
// Every tenant route passes the per-tenant in-flight limiter (429 +
// Retry-After when saturated) and the draining gate (503 once Drain
// has begun); the whole mux sits behind a panic-recovery middleware
// that turns a panicking handler into a 500 without killing the
// process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/{tenant}/sketches", s.tenant(s.handleList))
	mux.HandleFunc("POST /v1/{tenant}/sketches", s.tenant(s.handleCreate))
	mux.HandleFunc("GET /v1/{tenant}/sketches/{name}", s.tenant(s.handleInfo))
	mux.HandleFunc("DELETE /v1/{tenant}/sketches/{name}", s.tenant(s.handleDelete))
	mux.HandleFunc("POST /v1/{tenant}/sketches/{name}/ingest", s.tenant(s.handleIngest))
	mux.HandleFunc("GET /v1/{tenant}/sketches/{name}/query", s.tenant(s.handleQuery))
	mux.HandleFunc("GET /v1/{tenant}/sketches/{name}/range", s.tenant(s.handleRange))
	mux.HandleFunc("GET /v1/{tenant}/sketches/{name}/topk", s.tenant(s.handleTopK))
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: a panicking handler (a
// poisoned sketch, an overloaded compressed plane's decode) becomes a
// 500 and the process keeps serving every other tenant.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler { // deliberate connection abort
				panic(v)
			}
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", v))
		}()
		next.ServeHTTP(w, r)
	})
}

// tenant wraps a tenant-scoped handler with name validation, the
// draining gate, and the in-flight limiter. The limiter slot is held
// for the whole request and released on the way out — including a
// panicking way out, so a shed tenant's slots can't leak.
func (s *Server) tenant(h func(w http.ResponseWriter, r *http.Request, tenant string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("tenant")
		if !validName(tenant) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %q", ErrBadName, tenant))
			return
		}
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		if !s.lim.acquire(tenant) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("%w: %s", ErrOverloaded, tenant))
			return
		}
		defer s.lim.release(tenant)
		h(w, r, tenant)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.draining.Load()})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	if err := s.CheckpointAll(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": len(s.reg.all())})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request, tenant string) {
	es := s.reg.list(tenant)
	infos := make([]info, len(es))
	for i, e := range es {
		infos[i] = entryInfo(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sketches": infos})
}

// createRequest is the create body: a name plus the spec, flat.
type createRequest struct {
	Name string `json:"name"`
	Spec
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request, tenant string) {
	var req createRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCreateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %w", ErrBadSpec, err))
		return
	}
	e, err := s.reg.create(tenant, req.Name, req.Spec)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, entryInfo(e))
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, tenant string) {
	e, err := s.reg.get(tenant, r.PathValue("name"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, entryInfo(e))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, tenant string) {
	name := r.PathValue("name")
	if !s.reg.remove(tenant, name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleIngest applies one wire-v2 batch frame. Decode validates the
// whole frame — framing, element count, every index against the
// sketch's dimension, NaN — before a single update is applied, so a
// hostile payload is a 400, never a partial write.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, tenant string) {
	e, err := s.reg.get(tenant, r.PathValue("name"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	slot := 0
	if v := r.URL.Query().Get("slot"); v != "" {
		if slot, err = strconv.Atoi(v); err != nil || slot < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: slot %q", ErrBadSpec, v))
			return
		}
	}
	idx, deltas, err := repro.DecodeBatch(http.MaxBytesReader(w, r.Body, maxIngestBody), e.h.dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := e.h.updateBatch(slot, idx, deltas); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": len(idx)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, tenant string) {
	e, err := s.reg.get(tenant, r.PathValue("name"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	params := r.URL.Query()["i"]
	if len(params) == 0 || len(params) > maxQueryBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: need 1..%d i= params, got %d", ErrBadSpec, maxQueryBatch, len(params)))
		return
	}
	idx := make([]int, len(params))
	for j, p := range params {
		i, err := strconv.Atoi(p)
		if err != nil || i < 0 || i >= e.h.dim() {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: index %q out of [0,%d)", ErrBadSpec, p, e.h.dim()))
			return
		}
		idx[j] = i
	}
	out := make([]float64, len(idx))
	if err := e.h.queryBatch(idx, out); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"estimates": out})
}

// handleRange sums estimates over [lo, hi] in fixed-size QueryBatch
// chunks — the interval is capped, so one request can't demand a
// full-vector recovery.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request, tenant string) {
	e, err := s.reg.get(tenant, r.PathValue("name"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	lo, err1 := strconv.Atoi(r.URL.Query().Get("lo"))
	hi, err2 := strconv.Atoi(r.URL.Query().Get("hi"))
	switch {
	case err1 != nil || err2 != nil || lo < 0 || hi < lo || hi >= e.h.dim():
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: need 0 <= lo <= hi < %d", ErrBadSpec, e.h.dim()))
		return
	case hi-lo+1 > maxRangeWidth:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: range width %d exceeds %d", ErrBadSpec, hi-lo+1, maxRangeWidth))
		return
	}
	idx := make([]int, rangeChunkWords)
	out := make([]float64, rangeChunkWords)
	var sum float64
	for base := lo; base <= hi; base += rangeChunkWords {
		m := hi - base + 1
		if m > rangeChunkWords {
			m = rangeChunkWords
		}
		for j := 0; j < m; j++ {
			idx[j] = base + j
		}
		if err := e.h.queryBatch(idx[:m], out[:m]); err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		for _, v := range out[:m] {
			sum += v
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"lo": lo, "hi": hi, "sum": sum})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request, tenant string) {
	e, err := s.reg.get(tenant, r.PathValue("name"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 || k > maxQueryBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: need 1 <= k <= %d", ErrBadSpec, maxQueryBatch))
		return
	}
	devs, err := e.h.topK(k)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	res := make([]deviator, len(devs))
	for i, d := range devs {
		res[i] = deviator{Index: d.Index, Estimate: d.Estimate, Deviation: d.Deviation}
	}
	writeJSON(w, http.StatusOK, map[string]any{"topk": res})
}

// statusOf maps a typed error to its HTTP status. Facade validation
// errors are client mistakes (400); anything unrecognized is a 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadSpec), errors.Is(err, ErrBadName),
		errors.Is(err, repro.ErrInvalidOption), errors.Is(err, repro.ErrUnknownAlgorithm),
		errors.Is(err, repro.ErrNotLinear), errors.Is(err, repro.ErrBadBatch),
		errors.Is(err, repro.ErrInsertOnly), errors.Is(err, repro.ErrBackendUnsupported),
		errors.Is(err, repro.ErrHashUnsupported), errors.Is(err, repro.ErrNoBias):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
