package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func mustCreate(t *testing.T, base, tenant, body string) {
	t.Helper()
	resp, msg := do(t, "POST", base+"/v1/"+tenant+"/sketches", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, msg)
	}
}

func frame(t *testing.T, idx []int, deltas []float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := repro.EncodeBatch(&buf, idx, deltas); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func ingest(t *testing.T, url string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

func TestCreateIngestQueryLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "acme",
		`{"name":"clicks","kind":"sharded","algo":"l2sr","dim":100000,"words":2048,"shards":2,"seed":3}`)

	if resp, _ := ingest(t, ts.URL+"/v1/acme/sketches/clicks/ingest?slot=1",
		frame(t, []int{5, 5, 9}, []float64{10, 10, 4})); resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/clicks/query?i=5&i=9&i=0", "")
	if resp.StatusCode != 200 {
		t.Fatalf("query: %s: %s", resp.Status, body)
	}
	var q struct{ Estimates []float64 }
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Estimates) != 3 {
		t.Fatalf("got %d estimates", len(q.Estimates))
	}
	// l2sr on a near-empty vector recovers the two heavy coordinates
	// closely; generous tolerance, this is a plumbing test.
	if e := q.Estimates[0]; e < 15 || e > 25 {
		t.Errorf("estimate for x[5]=20: %v", e)
	}

	resp, body = do(t, "GET", ts.URL+"/v1/acme/sketches/clicks/range?lo=0&hi=100", "")
	if resp.StatusCode != 200 {
		t.Fatalf("range: %s: %s", resp.Status, body)
	}
	var rr struct{ Sum float64 }
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Sum < 15 || rr.Sum > 35 {
		t.Errorf("range sum over all mass (24): %v", rr.Sum)
	}

	resp, body = do(t, "GET", ts.URL+"/v1/acme/sketches/clicks/topk?k=2", "")
	if resp.StatusCode != 200 {
		t.Fatalf("topk: %s: %s", resp.Status, body)
	}
	var tk struct {
		TopK []struct {
			Index     int
			Estimate  float64
			Deviation float64
		}
	}
	if err := json.Unmarshal([]byte(body), &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.TopK) != 2 || tk.TopK[0].Index != 5 {
		t.Errorf("topk = %+v, want x[5] first", tk.TopK)
	}

	resp, body = do(t, "GET", ts.URL+"/v1/acme/sketches", "")
	if resp.StatusCode != 200 || !strings.Contains(body, `"clicks"`) {
		t.Errorf("list: %s: %s", resp.Status, body)
	}
	if resp, _ := do(t, "DELETE", ts.URL+"/v1/acme/sketches/clicks", ""); resp.StatusCode != 204 {
		t.Errorf("delete status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/v1/acme/sketches/clicks", ""); resp.StatusCode != 404 {
		t.Errorf("get after delete status %d", resp.StatusCode)
	}
}

// TestHandlerRejects table-drives the 4xx surface: bad names, bad
// specs, missing sketches, and hostile wire-v2 ingest payloads must
// all be client errors — never 500s, never partial writes.
func TestHandlerRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "acme",
		`{"name":"s","kind":"sharded","algo":"countmin","dim":50,"words":64,"depth":2}`)

	valid := frame(t, []int{1}, []float64{1})
	wrongKind := func() []byte { // a sketch container, not a batch
		b, err := repro.Marshal(repro.MustNew("countmin", repro.WithDim(10), repro.WithWords(32), repro.WithDepth(2)))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad tenant name", "POST", "/v1/bad!tenant/sketches", `{"name":"x","kind":"plain","algo":"countmin","dim":10}`, 400},
		{"bad sketch name", "POST", "/v1/acme/sketches", `{"name":"no spaces","kind":"plain","algo":"countmin","dim":10}`, 400},
		{"unknown algo", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"hyperloglog","dim":10}`, 400},
		{"unknown kind", "POST", "/v1/acme/sketches", `{"name":"x","kind":"fancy","algo":"countmin","dim":10}`, 400},
		{"zero dim", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"countmin"}`, 400},
		{"unknown backend", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"countmin","dim":10,"backend":"mmap"}`, 400},
		{"backend on sharded", "POST", "/v1/acme/sketches", `{"name":"x","kind":"sharded","algo":"countmin","dim":10,"backend":"compressed"}`, 400},
		{"compressed l2sr", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"l2sr","dim":10,"backend":"compressed"}`, 400},
		{"unknown hashing", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"countmin","dim":10,"hashing":"xorshift"}`, 400},
		{"tabulation l1sr", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"l1sr","dim":10,"hashing":"tabulation"}`, 400},
		{"non-linear sharded", "POST", "/v1/acme/sketches", `{"name":"x","kind":"sharded","algo":"cmcu","dim":10}`, 400},
		{"malformed json", "POST", "/v1/acme/sketches", `{"name":`, 400},
		{"unknown field", "POST", "/v1/acme/sketches", `{"name":"x","kind":"plain","algo":"countmin","dim":10,"zim":1}`, 400},
		{"duplicate", "POST", "/v1/acme/sketches", `{"name":"s","kind":"plain","algo":"countmin","dim":10}`, 409},
		{"missing sketch info", "GET", "/v1/acme/sketches/ghost", "", 404},
		{"missing sketch delete", "DELETE", "/v1/acme/sketches/ghost", "", 404},
		{"missing sketch query", "GET", "/v1/acme/sketches/ghost/query?i=1", "", 404},
		{"query no params", "GET", "/v1/acme/sketches/s/query", "", 400},
		{"query index over dim", "GET", "/v1/acme/sketches/s/query?i=50", "", 400},
		{"query index junk", "GET", "/v1/acme/sketches/s/query?i=abc", "", 400},
		{"range inverted", "GET", "/v1/acme/sketches/s/range?lo=9&hi=3", "", 400},
		{"range over dim", "GET", "/v1/acme/sketches/s/range?lo=0&hi=50", "", 400},
		{"topk zero", "GET", "/v1/acme/sketches/s/topk?k=0", "", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := do(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: got %d (%s), want %d", tc.method, tc.path, resp.StatusCode, body, tc.want)
			}
			if !strings.Contains(body, "error") && tc.want != 204 {
				t.Errorf("error body %q has no error field", body)
			}
		})
	}

	hostile := []struct {
		name string
		body []byte
	}{
		{"garbage", []byte("BAS2 but not really, just garbage bytes")},
		{"empty", nil},
		{"wrong container kind", wrongKind},
		{"truncated frame", valid[:len(valid)-4]},
		{"index beyond dim", frame(t, []int{50}, []float64{1})},
	}
	for _, tc := range hostile {
		t.Run("ingest "+tc.name, func(t *testing.T) {
			resp, body := ingest(t, ts.URL+"/v1/acme/sketches/s/ingest", tc.body)
			if resp.StatusCode != 400 {
				t.Fatalf("hostile ingest: got %d (%s), want 400", resp.StatusCode, body)
			}
		})
	}
	if resp, body := ingest(t, ts.URL+"/v1/acme/sketches/s/ingest?slot=-1", valid); resp.StatusCode != 400 {
		t.Errorf("negative slot: got %d (%s)", resp.StatusCode, body)
	}

	// The hostile sweep must leave the sketch untouched.
	resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/s/query?i=1", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "[0]") {
		t.Errorf("sketch dirty after hostile sweep: %s %s", resp.Status, body)
	}
}

// A compressed plain sketch is insert-only: negative and fractional
// deltas are rejected whole with 400 before any counter moves, and
// valid inserts keep serving.
func TestCompressedPlainInsertOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "acme",
		`{"name":"c","kind":"plain","algo":"countmin","dim":1000,"words":2048,"depth":2,"backend":"compressed"}`)
	url := ts.URL + "/v1/acme/sketches/c/ingest"

	if resp, body := ingest(t, url, frame(t, []int{1, 2}, []float64{3, -1})); resp.StatusCode != 400 {
		t.Fatalf("negative delta: got %d (%s)", resp.StatusCode, body)
	}
	if resp, body := ingest(t, url, frame(t, []int{1}, []float64{0.5})); resp.StatusCode != 400 {
		t.Fatalf("fractional delta: got %d (%s)", resp.StatusCode, body)
	}
	if resp, body := ingest(t, url, frame(t, []int{7, 7}, []float64{2, 3})); resp.StatusCode != 200 {
		t.Fatalf("valid insert: got %d (%s)", resp.StatusCode, body)
	}
	resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/c/query?i=7", "")
	if resp.StatusCode != 200 || !strings.Contains(body, "[5]") {
		t.Errorf("compressed query: %s %s", resp.Status, body)
	}
}

// panicHandle stands in for a poisoned sketch: every query panics.
type panicHandle struct{}

func (panicHandle) kind() string { return "plain" }
func (panicHandle) algo() string { return "countmin" }
func (panicHandle) dim() int     { return 10 }
func (panicHandle) words() int   { return 10 }
func (panicHandle) updateBatch(int, []int, []float64) error {
	panic("poisoned update")
}
func (panicHandle) queryBatch([]int, []float64) error { panic("poisoned query") }
func (panicHandle) topK(int) ([]repro.Deviator, error) {
	panic("poisoned topk")
}
func (panicHandle) checkpoint(io.Writer) error { return nil }

// A panicking handler becomes a 500 and the process keeps serving —
// other sketches, and even the next request to the poisoned one.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "acme", `{"name":"ok","kind":"plain","algo":"countmin","dim":10,"words":32,"depth":2}`)
	s.reg.put(&entry{tenant: "acme", name: "bad", spec: Spec{Kind: "plain"}, h: panicHandle{}}, false)

	for i := 0; i < 2; i++ {
		resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/bad/query?i=1", "")
		if resp.StatusCode != 500 || !strings.Contains(body, "internal error") {
			t.Fatalf("poisoned query #%d: %s %s", i, resp.Status, body)
		}
	}
	if resp, _ := do(t, "GET", ts.URL+"/v1/acme/sketches/ok/query?i=1", ""); resp.StatusCode != 200 {
		t.Errorf("healthy sketch stopped serving after panic: %d", resp.StatusCode)
	}
}

// Limiter shed: with the tenant's only slot held, requests shed with
// 429 + Retry-After; releasing the slot restores service; other
// tenants are unaffected throughout.
func TestLimiterShedsPerTenant(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	mustCreate(t, ts.URL, "acme", `{"name":"s","kind":"plain","algo":"countmin","dim":10,"words":32,"depth":2}`)
	mustCreate(t, ts.URL, "beta", `{"name":"s","kind":"plain","algo":"countmin","dim":10,"words":32,"depth":2}`)

	if !s.lim.acquire("acme") {
		t.Fatal("fresh limiter refused the first slot")
	}
	resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/s/query?i=1", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: got %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	if resp, _ := do(t, "GET", ts.URL+"/v1/beta/sketches/s/query?i=1", ""); resp.StatusCode != 200 {
		t.Errorf("other tenant shed too: %d", resp.StatusCode)
	}
	s.lim.release("acme")
	if resp, _ := do(t, "GET", ts.URL+"/v1/acme/sketches/s/query?i=1", ""); resp.StatusCode != 200 {
		t.Errorf("released tenant still shed: %d", resp.StatusCode)
	}
}

func TestLimiterCounting(t *testing.T) {
	l := &limiter{max: 2, inflight: make(map[string]int)}
	if !l.acquire("t") || !l.acquire("t") {
		t.Fatal("limiter refused slots under cap")
	}
	if l.acquire("t") {
		t.Fatal("limiter granted a slot over cap")
	}
	if !l.acquire("u") {
		t.Fatal("cap leaked across tenants")
	}
	l.release("t")
	if !l.acquire("t") {
		t.Fatal("released slot not reusable")
	}
	if len(l.inflight) != 2 {
		t.Fatalf("inflight map: %v", l.inflight)
	}
	l.release("t")
	l.release("t")
	l.release("u")
	if len(l.inflight) != 0 {
		t.Fatalf("idle tenants not evicted: %v", l.inflight)
	}

	unlimited := &limiter{max: 0}
	for i := 0; i < 100; i++ {
		if !unlimited.acquire("t") {
			t.Fatal("unlimited limiter shed")
		}
	}
}

// Draining: tenant routes 503, healthz keeps answering and reports it.
func TestDrainingGate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "acme", `{"name":"s","kind":"plain","algo":"countmin","dim":10,"words":32,"depth":2}`)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if resp, _ := do(t, "GET", ts.URL+"/v1/acme/sketches/s/query?i=1", ""); resp.StatusCode != 503 {
		t.Errorf("draining tenant route: %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, "POST", ts.URL+"/v1/checkpoint", ""); resp.StatusCode != 503 {
		t.Errorf("draining checkpoint route: %d, want 503", resp.StatusCode)
	}
	resp, body := do(t, "GET", ts.URL+"/healthz", "")
	if resp.StatusCode != 200 || !strings.Contains(body, `"draining":true`) {
		t.Errorf("healthz while draining: %s %s", resp.Status, body)
	}
	if err := s.Drain(); err != nil { // idempotent
		t.Fatalf("second drain: %v", err)
	}
}

// The checkpoint scheduler writes the layout — tenant directory,
// container, sidecar — without being asked, and a fresh server
// restores from it.
func TestCheckpointSchedulerAndRestore(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir, CheckpointEvery: 10 * time.Millisecond})
	mustCreate(t, ts.URL, "acme", `{"name":"s","kind":"sharded","algo":"countmin","dim":100,"words":64,"depth":2,"seed":9}`)
	if resp, body := ingest(t, ts.URL+"/v1/acme/sketches/s/ingest",
		frame(t, []int{3, 3, 4}, []float64{5, 5, 7})); resp.StatusCode != 200 {
		t.Fatalf("ingest: %d (%s)", resp.StatusCode, body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(dir, "acme", "s.g*.ckpt")); len(m) > 0 {
			if _, err := os.Stat(filepath.Join(dir, "acme", "s.json")); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never wrote the checkpoint pair")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, body := do(t, "GET", ts2.URL+"/v1/acme/sketches/s/query?i=3&i=4", "")
	if resp.StatusCode != 200 {
		t.Fatalf("restored query: %s %s", resp.Status, body)
	}
	var q struct{ Estimates []float64 }
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	if q.Estimates[0] < 10 || q.Estimates[1] < 7 {
		t.Errorf("restored estimates %v, want >= [10 7]", q.Estimates)
	}
	resp, body = do(t, "GET", ts2.URL+"/v1/acme/sketches/s", "")
	if resp.StatusCode != 200 || !strings.Contains(body, `"sharded"`) {
		t.Errorf("restored info: %s %s", resp.Status, body)
	}
}

// Every kind round-trips through its checkpoint: plain dense, plain
// compressed, and windowed (sharded is covered above and in the soak).
func TestCheckpointRestoreAllKinds(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir})
	mustCreate(t, ts.URL, "acme", `{"name":"dense","kind":"plain","algo":"l2sr","dim":1000,"words":256,"seed":1}`)
	mustCreate(t, ts.URL, "acme", `{"name":"braid","kind":"plain","algo":"countmin","dim":1000,"words":2048,"depth":2,"backend":"compressed"}`)
	mustCreate(t, ts.URL, "acme", `{"name":"win","kind":"windowed","algo":"countmin","dim":1000,"words":128,"depth":2,"panes":4,"pane_width_ms":3600000}`)
	mustCreate(t, ts.URL, "acme", `{"name":"tab","kind":"plain","algo":"countmin","dim":1000,"words":128,"depth":2,"hashing":"tabulation"}`)

	for _, name := range []string{"dense", "braid", "win", "tab"} {
		if resp, body := ingest(t, ts.URL+"/v1/acme/sketches/"+name+"/ingest",
			frame(t, []int{11, 11, 12}, []float64{4, 4, 9})); resp.StatusCode != 200 {
			t.Fatalf("%s ingest: %d (%s)", name, resp.StatusCode, body)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	for _, name := range []string{"dense", "braid", "win", "tab"} {
		resp, body := do(t, "GET", ts2.URL+"/v1/acme/sketches/"+name+"/query?i=11", "")
		if resp.StatusCode != 200 {
			t.Fatalf("%s restored query: %s %s", name, resp.Status, body)
		}
		var q struct{ Estimates []float64 }
		if err := json.Unmarshal([]byte(body), &q); err != nil {
			t.Fatal(err)
		}
		if q.Estimates[0] < 7 {
			t.Errorf("%s restored estimate %v, want >= 8-ish", name, q.Estimates[0])
		}
	}
	// The restored braid must still be insert-only.
	if resp, _ := ingest(t, ts2.URL+"/v1/acme/sketches/braid/ingest",
		frame(t, []int{1}, []float64{-1})); resp.StatusCode != 400 {
		t.Errorf("restored braid accepted a negative delta: %d", resp.StatusCode)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "A-1_b", strings.Repeat("x", 64)} {
		if !validName(ok) {
			t.Errorf("validName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a b", "a/b", "../etc", "é", strings.Repeat("x", 65)} {
		if validName(bad) {
			t.Errorf("validName(%q) = true", bad)
		}
	}
}

// POST /v1/checkpoint forces a pass immediately; topk serves from
// every kind; Draining() reports the gate.
func TestManualCheckpointAndTopKKinds(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir})
	mustCreate(t, ts.URL, "acme", `{"name":"p","kind":"plain","algo":"l2sr","dim":500,"words":256,"seed":2}`)
	mustCreate(t, ts.URL, "acme", `{"name":"w","kind":"windowed","algo":"l2sr","dim":500,"words":256,"panes":4,"pane_width_ms":3600000}`)
	mustCreate(t, ts.URL, "acme", `{"name":"nb","kind":"plain","algo":"cmcu","dim":500,"words":256,"depth":3}`)

	for _, name := range []string{"p", "w"} {
		if resp, body := ingest(t, ts.URL+"/v1/acme/sketches/"+name+"/ingest",
			frame(t, []int{9, 9, 9}, []float64{50, 50, 50})); resp.StatusCode != 200 {
			t.Fatalf("%s ingest: %d (%s)", name, resp.StatusCode, body)
		}
		resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/"+name+"/topk?k=1", "")
		if resp.StatusCode != 200 || !strings.Contains(body, `"index":9`) {
			t.Errorf("%s topk: %s %s", name, resp.Status, body)
		}
		resp, body = do(t, "GET", ts.URL+"/v1/acme/sketches/"+name+"/range?lo=0&hi=20", "")
		if resp.StatusCode != 200 {
			t.Errorf("%s range: %s %s", name, resp.Status, body)
		}
	}
	// cmcu keeps no bias estimate: topk is a client error, not a 500.
	if resp, body := do(t, "GET", ts.URL+"/v1/acme/sketches/nb/topk?k=1", ""); resp.StatusCode != 400 {
		t.Errorf("biasless topk: %d (%s), want 400", resp.StatusCode, body)
	}

	resp, body := do(t, "POST", ts.URL+"/v1/checkpoint", "")
	if resp.StatusCode != 200 || !strings.Contains(body, `"checkpointed":3`) {
		t.Fatalf("manual checkpoint: %s %s", resp.Status, body)
	}
	for _, name := range []string{"p", "w", "nb"} {
		if _, err := os.Stat(filepath.Join(dir, "acme", name+".g1.ckpt")); err != nil {
			t.Errorf("checkpoint for %s missing: %v", name, err)
		}
	}
	if s.Draining() {
		t.Error("Draining() true before Drain")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}
}

// A corrupted data directory must fail the boot loudly, not serve a
// half-restored registry.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	cases := []struct {
		name    string
		sidecar string
		ckpt    string
	}{
		{"garbage container", `{"kind":"sharded","algo":"l2sr","dim":10}`, "not a container"},
		{"bad sidecar json", `{"kind":`, ""},
		{"unknown kind", `{"kind":"fancy","algo":"l2sr","dim":10}`, ""},
		{"kind mismatch", `{"kind":"windowed","algo":"l2sr","dim":10}`, ""},
	}
	var sharded bytes.Buffer
	sh, err := repro.NewSharded(2, "l2sr", repro.WithDim(10), repro.WithWords(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Checkpoint(&sharded); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tdir := filepath.Join(dir, "acme")
			if err := os.MkdirAll(tdir, 0o755); err != nil {
				t.Fatal(err)
			}
			ckpt := tc.ckpt
			if ckpt == "" {
				ckpt = sharded.String()
			}
			if err := os.WriteFile(filepath.Join(tdir, "s.json"), []byte(tc.sidecar), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(tdir, "s.ckpt"), []byte(ckpt), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := New(Config{DataDir: dir}); err == nil {
				t.Fatal("corrupt checkpoint booted without error")
			}
		})
	}
	// Stray files that are not sidecars are ignored, not fatal.
	dir := t.TempDir()
	tdir := filepath.Join(dir, "acme")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DataDir: dir}); err != nil {
		t.Fatalf("stray file broke the boot: %v", err)
	}
}
