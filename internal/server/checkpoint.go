package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

// Checkpoint layout under DataDir:
//
//	<data>/<tenant>/<name>.g<gen>.ckpt  wire-v2 container (sketch,
//	                                    sharded, or windowed checkpoint)
//	                                    for generation <gen>
//	<data>/<tenant>/<name>.json         sidecar — the client-facing Spec
//	                                    plus the crash-consistency
//	                                    envelope: which generation is
//	                                    current, its SHA-256, and the
//	                                    previous pair to fall back to
//
// Every file is written to a temp name in the same directory, fsynced,
// and renamed into place, with the directory synced after the rename —
// so the pair survives not just a reader racing a writer but a power
// cut mid-checkpoint. The container for a new generation lands under a
// brand-new name *before* the sidecar starts pointing at it; a crash
// between the two renames leaves the sidecar referencing the previous,
// fully-written pair. The checksum closes the remaining hole: a
// sidecar that does point at a generation whose container is missing
// or torn falls back to the previous generation at boot. Legacy
// pre-generation checkpoints (<name>.ckpt, plain-Spec sidecar) are
// still readable and upgrade on their next checkpoint pass.
//
// Tenant and sketch names are validated to [A-Za-z0-9_-]{1,64}, so
// they are safe as path components by construction.

// sidecarDoc is the on-disk .json document. Spec embeds so legacy
// sidecars — a bare Spec — unmarshal with zero Gen and empty Sum,
// which readContainer treats as the unversioned layout.
type sidecarDoc struct {
	Spec
	Gen     uint64 `json:"gen,omitempty"`
	Sum     string `json:"sum,omitempty"`
	PrevGen uint64 `json:"prev_gen,omitempty"`
	PrevSum string `json:"prev_sum,omitempty"`
}

// containerPath names the container file of one generation; generation
// zero is the legacy unversioned layout.
func containerPath(base string, gen uint64) string {
	if gen == 0 {
		return base + ".ckpt"
	}
	return fmt.Sprintf("%s.g%d.ckpt", base, gen)
}

// writeEntry checkpoints one sketch crash-consistently: the container
// for the next generation first, then the sidecar that makes it
// current (still naming the previous pair as fallback), then a
// best-effort prune of generations the sidecar no longer references.
// The container is staged in memory so the handle's checkpoint lock is
// held for the encode only, not the disk writes.
func writeEntry(dir string, e *entry) error {
	var buf bytes.Buffer
	if err := e.h.checkpoint(&buf); err != nil {
		return err
	}
	tdir := filepath.Join(dir, e.tenant)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(tdir, e.name)
	gen := e.gen + 1
	sum := sha256.Sum256(buf.Bytes())
	cur := hex.EncodeToString(sum[:])
	if err := writeAtomic(containerPath(base, gen), buf.Bytes()); err != nil {
		return err
	}
	doc, err := json.Marshal(sidecarDoc{
		Spec: e.spec, Gen: gen, Sum: cur, PrevGen: e.gen, PrevSum: e.sum,
	})
	if err != nil {
		return err
	}
	if err := writeAtomic(base+".json", doc); err != nil {
		return err
	}
	pruneContainers(tdir, e.name, gen, e.gen)
	e.gen, e.sum = gen, cur
	return nil
}

// pruneContainers removes container files of generations the sidecar
// no longer references — everything but keep and prev. Best effort:
// a leftover file costs disk, never correctness (boot only opens what
// the sidecar names).
func pruneContainers(tdir, name string, keep, prev uint64) {
	files, err := os.ReadDir(tdir)
	if err != nil {
		return
	}
	for _, f := range files {
		rest, ok := strings.CutPrefix(f.Name(), name+".")
		if !ok {
			continue
		}
		var gen uint64
		if rest != "ckpt" { // "ckpt" alone is the legacy generation 0
			if _, err := fmt.Sscanf(rest, "g%d.ckpt", &gen); err != nil || containerPath(name, gen) != name+"."+rest {
				continue
			}
		}
		if gen == keep || gen == prev {
			continue
		}
		os.Remove(filepath.Join(tdir, f.Name()))
	}
}

// syncFile and syncDir are the durability syscalls behind writeAtomic,
// indirected so tests can fault-inject a failing fsync.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		if err := d.Sync(); err != nil {
			d.Close()
			return err
		}
		return d.Close()
	}
)

// writeAtomic writes data to path durably: temp file in the same
// directory, fsync, rename, then fsync of the directory so the rename
// itself survives a power cut. Without the file sync the rename could
// publish a name whose bytes were never forced to disk — the classic
// zero-length-file-after-crash bug; without the directory sync the
// rename may simply not be there after a crash.
func writeAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// loadAll restores every checkpointed sketch under dir into reg. A
// missing directory is a fresh start. Each sidecar names its sketch;
// the newest consistent container is restored through the facade, so
// the rebuilt handle answers bit-identically to the one that wrote it.
func loadAll(dir string, reg *registry) error {
	tenants, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, td := range tenants {
		if !td.IsDir() || !validName(td.Name()) {
			continue
		}
		tenant := td.Name()
		files, err := os.ReadDir(filepath.Join(dir, tenant))
		if err != nil {
			return err
		}
		for _, f := range files {
			name, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok || !validName(name) {
				continue
			}
			e, err := loadEntry(dir, tenant, name)
			if err != nil {
				return fmt.Errorf("restore %s/%s: %w", tenant, name, err)
			}
			if !reg.put(e, false) {
				return fmt.Errorf("restore %s/%s: duplicate registration", tenant, name)
			}
		}
	}
	return nil
}

// loadEntry restores one sketch from its sidecar + container pair,
// falling back to the previous generation when the current one is
// missing or fails its checksum (the crash window between the two
// checkpoint renames, or torn container bytes).
func loadEntry(dir, tenant, name string) (*entry, error) {
	base := filepath.Join(dir, tenant, name)
	raw, err := os.ReadFile(base + ".json")
	if err != nil {
		return nil, err
	}
	var doc sidecarDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	data, gen, sum, err := readContainer(base, doc)
	if err != nil {
		return nil, err
	}
	h, err := restoreHandle(doc.Spec, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return &entry{tenant: tenant, name: name, spec: doc.Spec, h: h, gen: gen, sum: sum}, nil
}

// readContainer picks the newest consistent container the sidecar
// names. Legacy sidecars (no generation envelope) read the unversioned
// container unverified — there is no recorded checksum to hold it to.
func readContainer(base string, doc sidecarDoc) ([]byte, uint64, string, error) {
	if doc.Gen == 0 && doc.Sum == "" {
		data, err := os.ReadFile(containerPath(base, 0))
		return data, 0, "", err
	}
	data, curErr := verifyContainer(containerPath(base, doc.Gen), doc.Sum)
	if curErr == nil {
		return data, doc.Gen, doc.Sum, nil
	}
	prev, prevErr := verifyContainer(containerPath(base, doc.PrevGen), doc.PrevSum)
	if prevErr != nil {
		return nil, 0, "", fmt.Errorf("generation %d unusable (%w); generation %d fallback unusable (%w)",
			doc.Gen, curErr, doc.PrevGen, prevErr)
	}
	return prev, doc.PrevGen, doc.PrevSum, nil
}

// verifyContainer reads a container file and holds it to the sidecar's
// recorded checksum. An empty wantSum is the legacy generation, which
// predates checksums and is accepted as read.
func verifyContainer(path, wantSum string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if wantSum != "" {
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != wantSum {
			return nil, fmt.Errorf("container %s fails its recorded checksum", filepath.Base(path))
		}
	}
	return data, nil
}

// restoreHandle rebuilds the serving handle a checkpoint container
// holds, dispatching on the sidecar's kind.
func restoreHandle(spec Spec, r io.Reader) (handle, error) {
	switch spec.Kind {
	case "sharded":
		sh, err := repro.RestoreSharded(r)
		if err != nil {
			return nil, err
		}
		return &shardedHandle{s: sh}, nil
	case "windowed":
		wd, err := repro.RestoreWindowed(r)
		if err != nil {
			return nil, err
		}
		return &windowedHandle{w: wd}, nil
	case "plain":
		be, err := backendOf(spec.Backend)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		sk, err := repro.DecodeWith(data, be)
		if err != nil {
			return nil, err
		}
		return &plainHandle{sk: sk, insertOnly: be == repro.BackendCompressed}, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q in checkpoint sidecar", ErrBadSpec, spec.Kind)
}
