package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

// Checkpoint layout under DataDir:
//
//	<data>/<tenant>/<name>.ckpt   wire-v2 container (sketch, sharded,
//	                              or windowed checkpoint)
//	<data>/<tenant>/<name>.json   Spec sidecar — how to rebuild the
//	                              serving wrapper around the container
//
// Both files are written to a temp name in the same directory and
// renamed into place, so a reader (or a crash) sees either the old
// checkpoint or the new one, never a torn file. Tenant and sketch
// names are validated to [A-Za-z0-9_-]{1,64}, so they are safe as
// path components by construction.

// writeEntry checkpoints one sketch: container first, sidecar second,
// each atomically. The container is staged in memory so the handle's
// checkpoint lock is held for the encode only, not the disk write.
func writeEntry(dir string, e *entry) error {
	var buf bytes.Buffer
	if err := e.h.checkpoint(&buf); err != nil {
		return err
	}
	tdir := filepath.Join(dir, e.tenant)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(tdir, e.name+".ckpt"), buf.Bytes()); err != nil {
		return err
	}
	spec, err := json.Marshal(e.spec)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(tdir, e.name+".json"), spec)
}

// writeAtomic writes data to path via a temp file in the same
// directory and a rename.
func writeAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// loadAll restores every checkpointed sketch under dir into reg. A
// missing directory is a fresh start. Each sidecar names its sketch;
// the paired .ckpt container is restored through the facade, so the
// rebuilt handle answers bit-identically to the one that wrote it.
func loadAll(dir string, reg *registry) error {
	tenants, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, td := range tenants {
		if !td.IsDir() || !validName(td.Name()) {
			continue
		}
		tenant := td.Name()
		files, err := os.ReadDir(filepath.Join(dir, tenant))
		if err != nil {
			return err
		}
		for _, f := range files {
			name, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok || !validName(name) {
				continue
			}
			e, err := loadEntry(dir, tenant, name)
			if err != nil {
				return fmt.Errorf("restore %s/%s: %w", tenant, name, err)
			}
			if !reg.put(e, false) {
				return fmt.Errorf("restore %s/%s: duplicate registration", tenant, name)
			}
		}
	}
	return nil
}

// loadEntry restores one sketch from its sidecar + container pair.
func loadEntry(dir, tenant, name string) (*entry, error) {
	base := filepath.Join(dir, tenant, name)
	sidecar, err := os.ReadFile(base + ".json")
	if err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(sidecar, &spec); err != nil {
		return nil, err
	}
	f, err := os.Open(base + ".ckpt")
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, err := restoreHandle(spec, f)
	if err != nil {
		return nil, err
	}
	return &entry{tenant: tenant, name: name, spec: spec, h: h}, nil
}

// restoreHandle rebuilds the serving handle a checkpoint container
// holds, dispatching on the sidecar's kind.
func restoreHandle(spec Spec, r io.Reader) (handle, error) {
	switch spec.Kind {
	case "sharded":
		sh, err := repro.RestoreSharded(r)
		if err != nil {
			return nil, err
		}
		return &shardedHandle{s: sh}, nil
	case "windowed":
		wd, err := repro.RestoreWindowed(r)
		if err != nil {
			return nil, err
		}
		return &windowedHandle{w: wd}, nil
	case "plain":
		be, err := backendOf(spec.Backend)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		sk, err := repro.DecodeWith(data, be)
		if err != nil {
			return nil, err
		}
		return &plainHandle{sk: sk, insertOnly: be == repro.BackendCompressed}, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q in checkpoint sidecar", ErrBadSpec, spec.Kind)
}
