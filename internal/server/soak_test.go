package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro"
)

// TestDrainRestoreSoak hammers a live server with concurrent tenants,
// drains it, boots a twin server from the checkpoint directory, and
// asserts the restored answers are bit-identical — both to the
// pre-drain server and to an in-process reference built from the same
// update log. Deltas are small integers, so per-shard counter sums
// are exact regardless of interleaving and bit-identity is a fair
// demand, not a flaky one. Run under -race this doubles as the
// concurrency check on registry, limiter, and handles.
func TestDrainRestoreSoak(t *testing.T) {
	const (
		tenants     = 3
		workers     = 4 // one slot each => disjoint shards
		batches     = 20
		batchLen    = 200
		dim         = 20_000
		probeStride = 97
	)
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir, MaxInflight: 0})

	for ten := 0; ten < tenants; ten++ {
		mustCreate(t, ts.URL, fmt.Sprintf("t%d", ten), fmt.Sprintf(
			`{"name":"flows","kind":"sharded","algo":"l2sr","dim":%d,"words":1024,"shards":%d,"seed":%d}`,
			dim, workers, 100+ten))
	}

	// genBatch derives worker w of tenant ten's b-th batch
	// deterministically, so the reference twin can replay the exact
	// same updates without any cross-goroutine bookkeeping.
	genBatch := func(ten, w, b int) ([]int, []float64) {
		r := rand.New(rand.NewSource(int64(ten*1000 + w*100 + b)))
		idx := make([]int, batchLen)
		deltas := make([]float64, batchLen)
		for j := range idx {
			if r.Intn(8) == 0 {
				idx[j] = r.Intn(20) // hot keys
			} else {
				idx[j] = r.Intn(dim)
			}
			deltas[j] = float64(1 + r.Intn(7))
		}
		return idx, deltas
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants*workers)
	for ten := 0; ten < tenants; ten++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ten, w int) {
				defer wg.Done()
				url := fmt.Sprintf("%s/v1/t%d/sketches/flows/ingest?slot=%d", ts.URL, ten, w)
				for b := 0; b < batches; b++ {
					idx, deltas := genBatch(ten, w, b)
					var buf bytes.Buffer
					if err := repro.EncodeBatch(&buf, idx, deltas); err != nil {
						errs <- err
						return
					}
					resp, err := http.Post(url, "application/octet-stream", &buf)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- ingestStatusErr(url, resp.StatusCode)
						return
					}
				}
			}(ten, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	probes := probeURL(ts.URL, dim, probeStride)
	before := make([][]float64, tenants)
	for ten := range before {
		before[ten] = queryEstimates(t, fmt.Sprintf(probes, ten))
	}

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{DataDir: dir})
	probes2 := probeURL(ts2.URL, dim, probeStride)
	for ten := 0; ten < tenants; ten++ {
		after := queryEstimates(t, fmt.Sprintf(probes2, ten))
		assertBitIdentical(t, fmt.Sprintf("t%d drained vs restored", ten), before[ten], after)
	}

	// Reference twin: same spec, same updates, same slots, applied
	// in-process without a server in sight.
	for ten := 0; ten < tenants; ten++ {
		ref, err := repro.NewSharded(workers, "l2sr",
			repro.WithDim(dim), repro.WithWords(1024), repro.WithSeed(int64(100+ten)))
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			for b := 0; b < batches; b++ {
				idx, deltas := genBatch(ten, w, b)
				if err := ref.UpdateBatch(w, idx, deltas); err != nil {
					t.Fatal(err)
				}
			}
		}
		idx := make([]int, 0, dim/probeStride+1)
		for i := 0; i < dim; i += probeStride {
			idx = append(idx, i)
		}
		out := make([]float64, len(idx))
		if err := ref.QueryBatch(idx, out); err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("t%d server vs reference", ten), out, before[ten])
	}
}

// probeURL returns a query URL template (one %d for the tenant) that
// probes every probeStride-th coordinate.
// ingestStatusErr builds the soak workers' non-200 report (unexported
// so the typederr boundary rule doesn't ask a test goroutine to wrap
// a package sentinel).
func ingestStatusErr(url string, code int) error {
	return fmt.Errorf("ingest %s: status %d", url, code)
}

func probeURL(base string, dim, stride int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s/v1/t%%d/sketches/flows/query?", base)
	for i := 0; i < dim; i += stride {
		if i > 0 {
			b.WriteByte('&')
		}
		fmt.Fprintf(&b, "i=%d", i)
	}
	return b.String()
}

func queryEstimates(t *testing.T, url string) []float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("query: %s: %s", resp.Status, body)
	}
	var q struct{ Estimates []float64 }
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	return q.Estimates
}

func assertBitIdentical(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d estimates", label, len(want), len(got))
	}
	for j := range want {
		if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
			t.Fatalf("%s: probe %d differs: %v (%x) vs %v (%x)",
				label, j, want[j], math.Float64bits(want[j]), got[j], math.Float64bits(got[j]))
		}
	}
}
