package server

import "sync"

// limiter bounds in-flight requests per tenant. One mutex over a
// small map is deliberate: acquire/release bracket whole HTTP
// requests (micro- to milliseconds of work), so the critical section
// — a map read and an increment — is never the bottleneck, and a
// single lock keeps the shed decision exact rather than approximate.
type limiter struct {
	mu       sync.Mutex
	max      int // <= 0 means unlimited
	inflight map[string]int
}

// acquire reserves a slot for the tenant, reporting false when the
// tenant is at its cap — the caller sheds the request with 429 and
// must NOT call release.
func (l *limiter) acquire(tenant string) bool {
	if l.max <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[tenant] >= l.max {
		return false
	}
	l.inflight[tenant]++
	return true
}

// release returns a slot acquired by a successful acquire. Entries
// drop out of the map at zero so an idle tenant costs nothing.
func (l *limiter) release(tenant string) {
	if l.max <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[tenant]--; l.inflight[tenant] <= 0 {
		delete(l.inflight, tenant)
	}
}
