// Package server implements the multi-tenant sketch-serving layer
// behind cmd/sketchd: a registry of named sketches per tenant, HTTP
// handlers for create/ingest/query/topk over the repro facade, a
// checkpoint scheduler persisting every sketch to a data directory
// (restored on boot), per-tenant in-flight limits that shed load with
// 429, and a drain path that writes one final checkpoint so a restart
// answers bit-identically.
//
// The package deliberately sits on the public facade — repro.New,
// NewSharded, NewWindowed, the wire-v2 batch frame, Checkpoint/Restore
// — so the server exercises exactly the API any other embedder gets.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Typed errors: server is an API boundary (the typederr lint set), so
// every exported entry point wraps one of these — handlers map them to
// HTTP statuses and callers can errors.Is.
var (
	// ErrNotFound: no such tenant or sketch name (HTTP 404).
	ErrNotFound = errors.New("server: no such sketch")
	// ErrExists: create collided with a live sketch (HTTP 409).
	ErrExists = errors.New("server: sketch already exists")
	// ErrBadSpec: the create spec is malformed — unknown kind, backend
	// on a sharded spec, and so on (HTTP 400).
	ErrBadSpec = errors.New("server: bad sketch spec")
	// ErrBadName: tenant or sketch name outside [A-Za-z0-9_-]{1,64}
	// (HTTP 400). Names are path and filename components; the charset
	// makes traversal impossible by construction.
	ErrBadName = errors.New("server: bad tenant or sketch name")
	// ErrOverloaded: the tenant's in-flight limit is saturated; the
	// request was shed (HTTP 429 with Retry-After).
	ErrOverloaded = errors.New("server: tenant over in-flight limit")
	// ErrDraining: the server is draining and no longer accepts work
	// (HTTP 503).
	ErrDraining = errors.New("server: draining")
)

// Config configures a Server.
type Config struct {
	// DataDir is the checkpoint directory: one subdirectory per
	// tenant, one <name>.ckpt (wire-v2 container) plus <name>.json
	// (spec sidecar) per sketch. Empty disables persistence.
	DataDir string
	// CheckpointEvery is the periodic checkpoint interval; zero
	// disables the scheduler (checkpoints still happen on Drain and on
	// POST /v1/checkpoint).
	CheckpointEvery time.Duration
	// MaxInflight caps concurrently-served requests per tenant;
	// requests beyond it are shed with 429. Zero or negative means
	// unlimited.
	MaxInflight int
}

// Server is the multi-tenant serving state: the sketch registry, the
// per-tenant limiter, and the checkpoint scheduler. Build one with
// New, mount Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config
	reg *registry
	lim *limiter

	draining atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// ckptMu serializes checkpoint passes: the scheduler goroutine,
	// POST /v1/checkpoint, and Drain can all trigger one, and the
	// per-entry generation numbering (entry.gen/entry.sum) must advance
	// atomically with the files it describes.
	ckptMu sync.Mutex
	// ckptErr holds the last scheduler checkpoint failure (nil when
	// the last pass succeeded); surfaced by POST /v1/checkpoint.
	ckptErr atomic.Value // error
}

// New builds a Server from cfg, restoring every checkpointed sketch
// from cfg.DataDir (missing directory is a fresh start, not an error)
// and starting the periodic checkpoint scheduler when both DataDir and
// CheckpointEvery are set.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:  cfg,
		reg:  newRegistry(),
		lim:  &limiter{max: cfg.MaxInflight, inflight: make(map[string]int)},
		stop: make(chan struct{}),
	}
	if cfg.DataDir != "" {
		if err := loadAll(cfg.DataDir, s.reg); err != nil {
			return nil, fmt.Errorf("server: restore from %s: %w", cfg.DataDir, err)
		}
	}
	if cfg.DataDir != "" && cfg.CheckpointEvery > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// checkpointLoop writes periodic checkpoints until Drain stops it. A
// failing pass is recorded, not fatal: the next POST /v1/checkpoint
// reports it, and the data directory keeps the last good checkpoint
// (writes are temp-file + rename, so a failure never corrupts one).
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.ckptErr.Store(errBox{s.CheckpointAll()})
		}
	}
}

// errBox lets a nil error round-trip through atomic.Value (which
// rejects bare nil and inconsistently-typed values).
type errBox struct{ err error }

// CheckpointAll writes every registered sketch to the data directory
// — durable and atomic per sketch (fsynced temp file + rename into a
// fresh generation, then the sidecar), so a crash mid-pass leaves each
// sketch with either its old or its new checkpoint pair, never a torn
// or mismatched one. Passes are serialized: concurrent callers queue
// rather than interleave generation numbering. No data directory
// configured is a no-op.
func (s *Server) CheckpointAll() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	for _, e := range s.reg.all() {
		if err := writeEntry(s.cfg.DataDir, e); err != nil {
			return fmt.Errorf("server: checkpoint %s/%s: %w", e.tenant, e.name, err)
		}
	}
	return nil
}

// Drain moves the server to draining (every subsequent request is
// refused with 503), stops the checkpoint scheduler, and writes one
// final checkpoint of every sketch. Call it after http.Server.Shutdown
// has returned, so in-flight requests have finished and the final
// checkpoint holds every acknowledged update — the restart then
// answers bit-identically. Drain is idempotent; later calls just
// re-checkpoint.
func (s *Server) Drain() error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if err := s.CheckpointAll(); err != nil {
		return fmt.Errorf("server: final checkpoint: %w", err)
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// validName reports whether s is a legal tenant or sketch name:
// 1–64 characters from [A-Za-z0-9_-].
func validName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z',
			'0' <= c && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
