// Package workload generates synthetic equivalents of every dataset in
// the paper's evaluation (§5.1). The real datasets (WorldCup access
// logs, Wikipedia pageviews, Higgs Monte Carlo, Memetracker, Hudong)
// are not redistributable in an offline build, so each generator
// reproduces the statistical property the corresponding experiment
// exercises: the bias structure (where most coordinates concentrate)
// and the tail/outlier shape. DESIGN.md §2 records each substitution.
package workload

import (
	"math"
	"math/rand"
)

// Poisson draws from Poisson(lambda). It uses Knuth's product method
// for small lambda and a Gaussian approximation (rounded, clamped at
// zero) above 30, which is indistinguishable at the workload scales
// used here.
func Poisson(r *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64())
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k := 0.0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Gamma draws from Gamma(shape, scale) using the Marsaglia–Tsang
// method (with Johnk-style boosting for shape < 1).
func Gamma(r *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		return Gamma(r, shape+1, scale) * math.Pow(r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// LogNormal draws from exp(N(mu, sigma²)).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
