package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadVector parses a frequency vector from r, one float per line
// (blank lines skipped) — the format written by cmd/datagen. It fails
// on unparsable lines and on empty input.
func ReadVector(r io.Reader) ([]float64, error) {
	var x []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: parse %q: %w", line, s, err)
		}
		x = append(x, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("workload: empty vector")
	}
	return x, nil
}

// ReadVectorFile opens path and parses it with ReadVector.
func ReadVectorFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	x, err := ReadVector(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return x, nil
}
