package workload

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/vecmath"
)

func TestPoissonMoments(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 4, 25, 100, 5000} {
		const n = 20000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := Poisson(r, lambda)
			if v < 0 {
				t.Fatalf("negative Poisson draw %f", v)
			}
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.5 {
			t.Errorf("lambda=%g: mean %f", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.2*lambda+1 {
			t.Errorf("lambda=%g: variance %f", lambda, variance)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -3) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestGammaMoments(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, c := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 0.5}, {9, 3}} {
		const n = 40000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := Gamma(r, c.shape, c.scale)
			if v < 0 {
				t.Fatalf("negative Gamma draw")
			}
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("shape=%g scale=%g: mean %f, want %f", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("shape=%g scale=%g: var %f, want %f", c.shape, c.scale, variance, wantVar)
		}
	}
	if Gamma(r, 0, 1) != 0 || Gamma(r, 1, -1) != 0 {
		t.Error("degenerate Gamma params should give 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 30000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = LogNormal(r, math.Log(12), 0.7)
	}
	sort.Float64s(vals)
	med := vals[n/2]
	if math.Abs(med-12) > 1 {
		t.Errorf("log-normal median %f, want ≈12", med)
	}
}

func TestGaussianVector(t *testing.T) {
	g := Gaussian{Bias: 100, Sigma: 15}
	x := g.Vector(50000, rand.New(rand.NewSource(4)))
	if math.Abs(vecmath.Mean(x)-100) > 1 {
		t.Errorf("mean %f", vecmath.Mean(x))
	}
	sd := math.Sqrt(vecmath.Variance(x))
	if math.Abs(sd-15) > 1 {
		t.Errorf("sd %f", sd)
	}
	if g.Name() == "" {
		t.Error("empty name")
	}
}

func TestGaussianShifted(t *testing.T) {
	g := GaussianShifted{Bias: 100, Sigma: 15, ShiftCount: 500, ShiftBy: 100000}
	n := 100000
	x := g.Vector(n, rand.New(rand.NewSource(5)))
	// Exactly 500 coordinates should exceed, say, 50000.
	big := 0
	for _, v := range x {
		if v > 50000 {
			big++
		}
	}
	if big != 500 {
		t.Errorf("%d shifted coordinates, want 500", big)
	}
	// The optimal bias stays ≈100 despite the shift (that is the
	// point of Figure 8).
	beta, _ := vecmath.MinBetaErrK(x, 500, 1)
	if math.Abs(beta-100) > 5 {
		t.Errorf("optimal bias %f, want ≈100", beta)
	}
}

func TestGaussianShiftedClampsCount(t *testing.T) {
	g := GaussianShifted{Bias: 0, Sigma: 1, ShiftCount: 50, ShiftBy: 10}
	x := g.Vector(10, rand.New(rand.NewSource(6)))
	if len(x) != 10 {
		t.Fatal("wrong dimension")
	}
}

func TestWorldCupLikeShape(t *testing.T) {
	w := WorldCupLike{}
	n := 86400
	x := w.Vector(n, rand.New(rand.NewSource(7)))
	if len(x) != n {
		t.Fatal("wrong dimension")
	}
	for i, v := range x {
		if v < 0 {
			t.Fatalf("negative request count at %d", i)
		}
	}
	mean := vecmath.Mean(x)
	if mean < 20 || mean > 80 {
		t.Errorf("mean rate %f out of plausible band", mean)
	}
	// Bursts create a head: max should be far above the mean.
	if vecmath.NormInf(x) < 5*mean {
		t.Error("expected bursty head")
	}
}

func TestWikiLikeHighBias(t *testing.T) {
	w := WikiLike{}
	x := w.Vector(200000, rand.New(rand.NewSource(8)))
	mean := vecmath.Mean(x)
	if mean < 3000 || mean > 4500 {
		t.Errorf("mean %f, want ≈3700", mean)
	}
	// Relative dispersion must be small outside events — the defining
	// property of Wiki (large bias, small noise): the optimal ℓ1 bias
	// residual is far below the raw tail mass.
	k := 2000
	_, biased := vecmath.MinBetaErrK(x, k, 1)
	raw := vecmath.ErrK(x, k, 1)
	if biased > raw/4 {
		t.Errorf("bias should explain most of the mass: residual %f vs raw %f", biased, raw)
	}
}

func TestHiggsLikeNonNegativeSkewed(t *testing.T) {
	h := HiggsLike{}
	x := h.Vector(100000, rand.New(rand.NewSource(9)))
	var neg int
	for _, v := range x {
		if v < 0 {
			neg++
		}
	}
	if neg > 0 {
		t.Fatalf("%d negative values", neg)
	}
	mean := vecmath.Mean(x)
	med := vecmath.Median(x)
	if mean <= med {
		t.Errorf("right-skew expected: mean %f should exceed median %f", mean, med)
	}
}

func TestMemeLikeLengths(t *testing.T) {
	m := MemeLike{}
	x := m.Vector(100000, rand.New(rand.NewSource(10)))
	for i, v := range x {
		if v < 1 || v != math.Round(v) {
			t.Fatalf("length at %d is %f, want integer >= 1", i, v)
		}
	}
	med := vecmath.Median(x)
	if med < 8 || med > 16 {
		t.Errorf("median length %f, want ≈12", med)
	}
	// Long tail: P99.9 well above the median.
	if p := vecmath.Percentile(x, 0.999); p < 4*med {
		t.Errorf("tail too short: P99.9 %f vs median %f", p, med)
	}
}

func TestHudongLikeStream(t *testing.T) {
	h := HudongLike{}
	n := 20000
	stream := h.EdgeStream(n, rand.New(rand.NewSource(11)))
	wantEdges := int(float64(n) * 7.7)
	if len(stream) != wantEdges {
		t.Fatalf("stream length %d, want %d", len(stream), wantEdges)
	}
	deg := make([]float64, n)
	for _, s := range stream {
		if s < 0 || s >= n {
			t.Fatalf("edge source %d out of range", s)
		}
		deg[s]++
	}
	// Power law: the max out-degree should be far above the mean.
	mean := vecmath.Mean(deg)
	if vecmath.NormInf(deg) < 10*mean {
		t.Errorf("expected heavy-tailed degrees: max %f mean %f", vecmath.NormInf(deg), mean)
	}
	// Vector() must agree with accumulating the stream distribution-wise.
	x := h.Vector(n, rand.New(rand.NewSource(11)))
	if vecmath.Norm1(x) != float64(wantEdges) {
		t.Errorf("vector mass %f, want %d", vecmath.Norm1(x), wantEdges)
	}
}

func TestAllGeneratorsNamed(t *testing.T) {
	gens := []Generator{
		Gaussian{Bias: 1, Sigma: 1},
		GaussianShifted{},
		WorldCupLike{},
		WikiLike{},
		HiggsLike{},
		MemeLike{},
		HudongLike{},
	}
	seen := map[string]bool{}
	for _, g := range gens {
		name := g.Name()
		if name == "" {
			t.Errorf("%T has empty name", g)
		}
		if seen[name] {
			t.Errorf("duplicate generator name %q", name)
		}
		seen[name] = true
		x := g.Vector(100, rand.New(rand.NewSource(12)))
		if len(x) != 100 {
			t.Errorf("%s: wrong dimension", name)
		}
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	g := WorldCupLike{}
	a := g.Vector(1000, rand.New(rand.NewSource(13)))
	b := g.Vector(1000, rand.New(rand.NewSource(13)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same vector")
		}
	}
}

func TestReadVector(t *testing.T) {
	x, err := ReadVector(strings.NewReader("1.5\n\n-2\n3e2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 300}
	if len(x) != 3 {
		t.Fatalf("len = %d", len(x))
	}
	for i := range want {
		if x[i] != want[i] {
			t.Errorf("x[%d] = %f, want %f", i, x[i], want[i])
		}
	}
	if _, err := ReadVector(strings.NewReader("abc\n")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadVector(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestReadVectorFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.txt")
	if err := os.WriteFile(path, []byte("7\n8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	x, err := ReadVectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 2 || x[0] != 7 || x[1] != 8 {
		t.Errorf("got %v", x)
	}
	if _, err := ReadVectorFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestZipfLike(t *testing.T) {
	z := ZipfLike{}
	n := 50000
	x := z.Vector(n, rand.New(rand.NewSource(14)))
	if vecmath.Norm1(x) != float64(10*n) {
		t.Errorf("mass %f, want %d", vecmath.Norm1(x), 10*n)
	}
	// Heavy head: the max count dwarfs the mean.
	if vecmath.NormInf(x) < 100*vecmath.Mean(x) {
		t.Errorf("Zipf head too light: max %f mean %f", vecmath.NormInf(x), vecmath.Mean(x))
	}
	if z.Name() != "zipf-like" {
		t.Error("bad name")
	}
	st := z.Stream(100, 5000, rand.New(rand.NewSource(15)))
	if len(st) != 5000 {
		t.Fatalf("stream length %d", len(st))
	}
	for _, v := range st {
		if v < 0 || v >= 100 {
			t.Fatalf("stream item %d out of range", v)
		}
	}
}
