package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator produces a frequency vector of a given dimension. Every
// dataset of §5.1 has a Generator here; dimensions are parameters so
// experiments can run at paper scale or laptop scale (the -scale knob
// of cmd/biasrepro).
type Generator interface {
	// Name identifies the dataset in tables and logs.
	Name() string
	// Vector draws an n-dimensional frequency vector.
	Vector(n int, r *rand.Rand) []float64
}

// ---------------------------------------------------------------------------

// Gaussian is the paper's first synthetic dataset: every coordinate is
// an independent N(Bias, Sigma²) draw (§5.1 uses n = 5·10⁸, σ = 15,
// b ∈ {100, 500}).
type Gaussian struct {
	Bias  float64
	Sigma float64
}

// Name implements Generator.
func (g Gaussian) Name() string { return fmt.Sprintf("gaussian(b=%g,sigma=%g)", g.Bias, g.Sigma) }

// Vector implements Generator.
func (g Gaussian) Vector(n int, r *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Round(r.NormFloat64()*g.Sigma + g.Bias)
	}
	return x
}

// GaussianShifted is the Gaussian-2 dataset of §5.4: N(100, 15²)
// coordinates with ShiftCount randomly chosen entries shifted by
// ShiftBy (the paper shifts 500 entries by 100,000), which wrecks the
// plain mean as a bias estimate.
type GaussianShifted struct {
	Bias       float64
	Sigma      float64
	ShiftCount int
	ShiftBy    float64
}

// Name implements Generator.
func (g GaussianShifted) Name() string {
	return fmt.Sprintf("gaussian2(shift %d by %g)", g.ShiftCount, g.ShiftBy)
}

// Vector implements Generator.
func (g GaussianShifted) Vector(n int, r *rand.Rand) []float64 {
	x := Gaussian{Bias: g.Bias, Sigma: g.Sigma}.Vector(n, r)
	count := g.ShiftCount
	if count > n {
		count = n
	}
	// Sample distinct positions to shift.
	for _, i := range r.Perm(n)[:count] {
		x[i] += g.ShiftBy
	}
	return x
}

// ---------------------------------------------------------------------------

// WorldCupLike models the 1998 World Cup site's requests-per-second
// vector (n = 86,400 seconds, ~3.2M requests on the chosen day): a
// double-peaked diurnal base rate with Poisson arrivals and occasional
// heavy bursts (match kickoffs), giving a moderate bias with a bursty
// head.
type WorldCupLike struct {
	// MeanRate is the average requests per second (paper's day:
	// 3.2M/86400 ≈ 37). Defaults to 37 when zero.
	MeanRate float64
}

// Name implements Generator.
func (w WorldCupLike) Name() string { return "worldcup-like" }

// Vector implements Generator.
func (w WorldCupLike) Vector(n int, r *rand.Rand) []float64 {
	mean := w.MeanRate
	if mean == 0 {
		mean = 37
	}
	x := make([]float64, n)
	for i := range x {
		// Two diurnal peaks (midday and evening) over a 24h cycle
		// mapped onto the vector; rates vary ±60% around the mean.
		t := float64(i) / float64(n) // position in the day
		base := mean * (1 + 0.45*math.Sin(2*math.Pi*(t-0.3)) + 0.25*math.Sin(4*math.Pi*(t-0.1)))
		if base < 1 {
			base = 1
		}
		x[i] = Poisson(r, base)
	}
	// Heavy bursts: a few short windows at 10–40× the base rate.
	bursts := 1 + n/20000
	for b := 0; b < bursts; b++ {
		start := r.Intn(n)
		width := 30 + r.Intn(120)
		boost := (10 + 30*r.Float64()) * mean
		for j := start; j < start+width && j < n; j++ {
			x[j] += Poisson(r, boost)
		}
	}
	return x
}

// WikiLike models the English-Wikipedia pageviews-per-second vector
// (n ≈ 3.5M seconds, ~1.3·10¹⁰ views → ≈3,700 views/s): a high, very
// stable base rate — an archetypal large bias with small relative
// noise — plus rare spikes and near-zero dips (outages).
type WikiLike struct {
	// MeanRate defaults to 3700 when zero.
	MeanRate float64
}

// Name implements Generator.
func (w WikiLike) Name() string { return "wiki-like" }

// Vector implements Generator.
func (w WikiLike) Vector(n int, r *rand.Rand) []float64 {
	mean := w.MeanRate
	if mean == 0 {
		mean = 3700
	}
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / float64(n)
		// Mild diurnal swing (±15%) around the large base.
		base := mean * (1 + 0.15*math.Sin(2*math.Pi*t))
		x[i] = math.Round(base + math.Sqrt(base)*r.NormFloat64())
	}
	// Rare events: viral spikes and outage dips.
	events := 1 + n/100000
	for e := 0; e < events; e++ {
		start := r.Intn(n)
		width := 10 + r.Intn(60)
		if r.Intn(2) == 0 {
			for j := start; j < start+width && j < n; j++ {
				x[j] *= 5
			}
		} else {
			for j := start; j < start+width && j < n; j++ {
				x[j] = math.Round(x[j] * 0.02)
			}
		}
	}
	return x
}

// HiggsLike models the fourth kinematic feature of the HIGGS Monte
// Carlo dataset (n = 11M): non-negative, unimodal, right-skewed
// values, generated as Gamma(Shape, Scale). The default Shape=2,
// Scale=0.5 gives mean 1 with a visible right tail, matching the
// published feature histograms' shape.
type HiggsLike struct {
	Shape, Scale float64
}

// Name implements Generator.
func (h HiggsLike) Name() string { return "higgs-like" }

// Vector implements Generator.
func (h HiggsLike) Vector(n int, r *rand.Rand) []float64 {
	shape, scale := h.Shape, h.Scale
	if shape == 0 {
		shape = 2
	}
	if scale == 0 {
		scale = 0.5
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = Gamma(r, shape, scale)
	}
	return x
}

// MemeLike models the Memetracker meme-length vector (n ≈ 2.1·10⁸):
// discrete word counts with a body around a small mode and a long
// tail, generated as discretized log-normal lengths (μ = ln 12,
// σ = 0.7 by default).
type MemeLike struct {
	Mu, Sigma float64
}

// Name implements Generator.
func (m MemeLike) Name() string { return "meme-like" }

// Vector implements Generator.
func (m MemeLike) Vector(n int, r *rand.Rand) []float64 {
	mu, sigma := m.Mu, m.Sigma
	if mu == 0 {
		mu = math.Log(12)
	}
	if sigma == 0 {
		sigma = 0.7
	}
	x := make([]float64, n)
	for i := range x {
		v := math.Round(LogNormal(r, mu, sigma))
		if v < 1 {
			v = 1
		}
		x[i] = v
	}
	return x
}

// ---------------------------------------------------------------------------

// HudongLike models the Hudong encyclopedia "related-to" edge stream
// (2.45M articles, 18.9M edges): the vector is article out-degree and
// the experiment consumes edges one at a time in the streaming model
// (§5.5). Sources follow a preferential-attachment rule, yielding the
// power-law out-degree distribution of real link graphs.
type HudongLike struct {
	// EdgesPerNode is the average out-degree (paper: 18.9M/2.45M ≈
	// 7.7). Defaults to 7.7 when zero.
	EdgesPerNode float64
	// Uniform is the probability mass of the uniform component mixed
	// into the preferential choice (keeps low-degree articles alive).
	// Defaults to 0.3.
	Uniform float64
}

// Name implements Generator.
func (h HudongLike) Name() string { return "hudong-like" }

// EdgeStream draws a stream of edge insertions over n articles; the
// returned slice holds the source article of each edge, in arrival
// order. The implied frequency vector is the out-degree vector.
func (h HudongLike) EdgeStream(n int, r *rand.Rand) []int {
	epn := h.EdgesPerNode
	if epn == 0 {
		epn = 7.7
	}
	uni := h.Uniform
	if uni == 0 {
		uni = 0.3
	}
	m := int(float64(n) * epn)
	stream := make([]int, 0, m)
	// Preferential attachment via the repeated-endpoint trick: keep a
	// bag of past sources and draw from it with probability 1−uni.
	bag := make([]int, 0, m)
	for e := 0; e < m; e++ {
		var src int
		if len(bag) == 0 || r.Float64() < uni {
			src = r.Intn(n)
		} else {
			src = bag[r.Intn(len(bag))]
		}
		stream = append(stream, src)
		bag = append(bag, src)
	}
	return stream
}

// Vector implements Generator: the final out-degree vector of a full
// edge stream.
func (h HudongLike) Vector(n int, r *rand.Rand) []float64 {
	x := make([]float64, n)
	for _, src := range h.EdgeStream(n, r) {
		x[src]++
	}
	return x
}

// ZipfLike is the classic skewed frequency workload (not one of the
// paper's datasets, but the canonical regime where conservative-update
// sketches shine and bias-aware ones have nothing to de-bias): x_i is
// the number of occurrences of rank-i items under a Zipf(S) law over a
// stream of Items draws.
type ZipfLike struct {
	// S is the Zipf exponent (> 1). Defaults to 1.2.
	S float64
	// ItemsPerCoord is the average stream length per coordinate.
	// Defaults to 10.
	ItemsPerCoord float64
}

// Name implements Generator.
func (z ZipfLike) Name() string { return "zipf-like" }

// Vector implements Generator.
func (z ZipfLike) Vector(n int, r *rand.Rand) []float64 {
	s := z.S
	if s == 0 {
		s = 1.2
	}
	ipc := z.ItemsPerCoord
	if ipc == 0 {
		ipc = 10
	}
	zf := rand.NewZipf(r, s, 1, uint64(n-1))
	x := make([]float64, n)
	for i := 0; i < int(float64(n)*ipc); i++ {
		x[zf.Uint64()]++
	}
	return x
}

// Stream draws the item sequence itself for streaming experiments.
func (z ZipfLike) Stream(n, length int, r *rand.Rand) []int {
	s := z.S
	if s == 0 {
		s = 1.2
	}
	zf := rand.NewZipf(r, s, 1, uint64(n-1))
	out := make([]int, length)
	for i := range out {
		out[i] = int(zf.Uint64())
	}
	return out
}
