package ost

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertKthSorted(t *testing.T) {
	tr := New(1)
	vals := []float64{5, 3, 8, 1, 9, 2, 7}
	for _, v := range vals {
		tr.Insert(v)
	}
	sort.Float64s(vals)
	if tr.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(vals))
	}
	for i, want := range vals {
		if got := tr.Kth(i); got != want {
			t.Errorf("Kth(%d) = %f, want %f", i, got, want)
		}
	}
}

func TestDuplicates(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Insert(7)
	}
	tr.Insert(3)
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	if tr.Kth(0) != 3 || tr.Kth(1) != 7 || tr.Kth(5) != 7 {
		t.Error("duplicate ordering wrong")
	}
	if !tr.Delete(7) {
		t.Error("Delete(7) should succeed")
	}
	if tr.Len() != 5 {
		t.Errorf("Len after delete = %d, want 5", tr.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(3)
	tr.Insert(1)
	if tr.Delete(2) {
		t.Error("Delete of absent key should report false")
	}
	if tr.Len() != 1 {
		t.Error("failed delete must not change size")
	}
}

func TestMedianOddEven(t *testing.T) {
	tr := New(4)
	for _, v := range []float64{10, 20, 30} {
		tr.Insert(v)
	}
	if got := tr.Median(); got != 20 {
		t.Errorf("odd median = %f, want 20", got)
	}
	tr.Insert(40)
	if got := tr.Median(); got != 25 {
		t.Errorf("even median = %f, want 25", got)
	}
}

func TestMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(5).Median()
}

func TestKthOutOfRangePanics(t *testing.T) {
	tr := New(6)
	tr.Insert(1)
	for _, k := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Kth(%d) should panic", k)
				}
			}()
			tr.Kth(k)
		}()
	}
}

func TestRank(t *testing.T) {
	tr := New(7)
	for _, v := range []float64{1, 3, 3, 5} {
		tr.Insert(v)
	}
	cases := []struct {
		key  float64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {5, 3}, {6, 4}}
	for _, c := range cases {
		if got := tr.Rank(c.key); got != c.want {
			t.Errorf("Rank(%f) = %d, want %d", c.key, got, c.want)
		}
	}
}

// Property: after a random sequence of inserts and deletes, the tree
// agrees with a sorted-slice reference on length, every rank, and the
// median.
func TestAgainstReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(seed ^ 0x5a5a)
		var ref []float64
		for step := 0; step < 300; step++ {
			if len(ref) > 0 && r.Intn(3) == 0 {
				// Delete a random existing value.
				v := ref[r.Intn(len(ref))]
				if !tr.Delete(v) {
					return false
				}
				for i, rv := range ref {
					if rv == v {
						ref = append(ref[:i], ref[i+1:]...)
						break
					}
				}
			} else {
				v := float64(r.Intn(40)) // small domain forces duplicates
				tr.Insert(v)
				ref = append(ref, v)
			}
			if tr.Len() != len(ref) {
				return false
			}
			if len(ref) > 0 {
				sorted := append([]float64(nil), ref...)
				sort.Float64s(sorted)
				for _, k := range []int{0, len(sorted) / 2, len(sorted) - 1} {
					if tr.Kth(k) != sorted[k] {
						return false
					}
				}
				var wantMed float64
				if len(sorted)%2 == 1 {
					wantMed = sorted[len(sorted)/2]
				} else {
					wantMed = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
				}
				if tr.Median() != wantMed {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLargeSequential(t *testing.T) {
	tr := New(8)
	const n = 20000
	for i := 0; i < n; i++ {
		tr.Insert(float64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Kth(n/2) != float64(n/2) {
		t.Error("Kth wrong on sequential input")
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(float64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if tr.Kth(0) != 1 || tr.Kth(1) != 3 {
		t.Error("odd keys should remain")
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := New(9)
	r := rand.New(rand.NewSource(10))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = r.Float64()
		tr.Insert(vals[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vals[i&1023]
		tr.Delete(v)
		nv := v + 1
		tr.Insert(nv)
		vals[i&1023] = nv
	}
}

func BenchmarkMedian(b *testing.B) {
	tr := New(11)
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 4096; i++ {
		tr.Insert(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Median()
	}
}
