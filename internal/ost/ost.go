// Package ost implements an order-statistic treap over float64 keys
// with duplicates. Section 4.4 of the paper uses a balanced binary
// search tree to keep the Θ(log n) sampled coordinates of the ℓ1
// sketch sorted during streaming, so the median (the running bias
// estimate β̂) is available in O(log log n)-ish time per update; the
// treap provides expected O(log m) insert, delete, and k-th selection.
package ost

import "math/rand"

type node struct {
	key         float64
	prio        uint64
	count       int // multiplicity of key in this node
	size        int // total multiplicity in subtree
	left, right *node
}

func (n *node) subSize() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) fix() {
	n.size = n.count + n.left.subSize() + n.right.subSize()
}

// Tree is an order-statistic multiset of float64 keys. The zero value
// is not usable; construct with New.
type Tree struct {
	root *node
	rng  *rand.Rand
}

// New creates an empty tree drawing rotation priorities from seed.
func New(seed int64) *Tree {
	return &Tree{rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of stored keys (counting multiplicity).
func (t *Tree) Len() int { return t.root.subSize() }

// Insert adds one occurrence of key.
func (t *Tree) Insert(key float64) {
	t.root = t.insert(t.root, key)
}

func (t *Tree) insert(n *node, key float64) *node {
	if n == nil {
		return &node{key: key, prio: t.rng.Uint64(), count: 1, size: 1}
	}
	switch {
	case key == n.key:
		n.count++
		n.size++
		return n
	case key < n.key:
		n.left = t.insert(n.left, key)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	default:
		n.right = t.insert(n.right, key)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	n.fix()
	return n
}

// Delete removes one occurrence of key; it reports whether the key was
// present.
func (t *Tree) Delete(key float64) bool {
	var ok bool
	t.root, ok = t.delete(t.root, key)
	return ok
}

func (t *Tree) delete(n *node, key float64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var ok bool
	switch {
	case key < n.key:
		n.left, ok = t.delete(n.left, key)
	case key > n.key:
		n.right, ok = t.delete(n.right, key)
	default:
		if n.count > 1 {
			n.count--
			n.size--
			return n, true
		}
		// Rotate the node down to a leaf position, then drop it.
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		if n.left.prio > n.right.prio {
			n = rotateRight(n)
			n.right, ok = t.delete(n.right, key)
		} else {
			n = rotateLeft(n)
			n.left, ok = t.delete(n.left, key)
		}
	}
	n.fix()
	return n, ok
}

// Kth returns the k-th smallest key, 0-based (counting multiplicity).
// It panics if k is out of range.
func (t *Tree) Kth(k int) float64 {
	if k < 0 || k >= t.Len() {
		panic("ost: rank out of range")
	}
	n := t.root
	for {
		ls := n.left.subSize()
		switch {
		case k < ls:
			n = n.left
		case k < ls+n.count:
			return n.key
		default:
			k -= ls + n.count
			n = n.right
		}
	}
}

// Median returns the median per the paper's Table 1 definition
// (midpoint average for even sizes). It panics on an empty tree.
func (t *Tree) Median() float64 {
	m := t.Len()
	if m == 0 {
		panic("ost: median of empty tree")
	}
	if m%2 == 1 {
		return t.Kth(m / 2)
	}
	return (t.Kth(m/2-1) + t.Kth(m/2)) / 2
}

// Rank returns the number of stored keys strictly smaller than key.
func (t *Tree) Rank(key float64) int {
	r := 0
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			r += n.left.subSize() + n.count
			n = n.right
		default:
			return r + n.left.subSize()
		}
	}
	return r
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}
