package sketchio

import (
	"bytes"
	"testing"

	"repro/internal/bench"
)

// FuzzLoad feeds arbitrary bytes to the loader: it must reject garbage
// with an error — never panic, never allocate absurdly.
func FuzzLoad(f *testing.F) {
	// Seed with a valid payload so the fuzzer explores deep paths.
	var buf bytes.Buffer
	desc := Desc{Algo: bench.AlgoCM, N: 100, S: 16, D: 3, Seed: 1}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	sk.Update(5, 3)
	if err := Save(&buf, desc, sk); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("BAS1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Loading may succeed only for structurally valid payloads;
		// anything else must return an error without panicking.
		sk, _, err := Load(bytes.NewReader(data))
		if err == nil && sk == nil {
			t.Fatal("nil sketch with nil error")
		}
		if err == nil {
			// A successfully loaded sketch must answer queries.
			_ = sk.Query(0)
		}
	})
}

// FuzzSaveLoadRoundTrip mutates the valid header fields and checks
// that every accepted load round-trips queries exactly.
func FuzzSaveLoadRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(16), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, sRaw uint16, dRaw uint8) {
		s := 8 + int(sRaw)%64
		d := 1 + int(dRaw)%6
		desc := Desc{Algo: bench.AlgoCS, N: 200, S: s, D: d, Seed: seed}
		orig := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
		for i := 0; i < 200; i++ {
			orig.Update(i, float64(i%11))
		}
		var buf bytes.Buffer
		if err := Save(&buf, desc, orig); err != nil {
			t.Fatal(err)
		}
		loaded, gotDesc, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotDesc != desc {
			t.Fatalf("desc mismatch: %+v vs %+v", gotDesc, desc)
		}
		for i := 0; i < 200; i += 17 {
			if orig.Query(i) != loaded.Query(i) {
				t.Fatalf("query %d mismatch", i)
			}
		}
	})
}
