// Package sketchio serializes sketches to self-describing byte
// streams: a header naming the algorithm, shape, and seed, followed by
// the data-dependent state. A loader reconstructs the sketch from the
// header (rebuilding hash functions, sampled positions, and column
// sums from the seed — the paper's shared-randomness protocol, §5.5
// footnote 4) and then restores the state, so a coordinator can
// receive site sketches over any byte transport.
package sketchio

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/registry"
	"repro/internal/sketch"
)

// magic identifies the format; bump the version byte on change.
const magic = "BAS1"

// Stateful is the capture/restore surface a sketch must offer to be
// serializable. The bias-aware sketches implement it via
// MarshalState/UnmarshalState; the table-based sketches via
// Marshal/Unmarshal (adapted by the registry).
type Stateful = registry.Stateful

// Desc describes how to reconstruct a sketch: the registry constructor
// arguments. Two processes exchanging sketches must agree on it,
// exactly as they must agree on hash functions in the paper. Algo is
// any name the registry resolves — canonical ("l2sr") or the paper's
// legend ("l2-S/R") — so streams written by older builds still load.
type Desc struct {
	Algo string
	N    int
	S    int
	D    int
	Seed int64
}

// Save writes desc and sk's state to w.
func Save(w io.Writer, desc Desc, sk sketch.Sketch) error {
	st, err := stateful(sk)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	name := []byte(desc.Algo)
	hdr := make([]byte, 4+len(name)+8*4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(name)))
	copy(hdr[4:], name)
	off := 4 + len(name)
	for _, v := range []uint64{uint64(desc.N), uint64(desc.S), uint64(desc.D), uint64(desc.Seed)} {
		binary.LittleEndian.PutUint64(hdr[off:], v)
		off += 8
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	payload := st.MarshalState()
	var plen [8]byte
	binary.LittleEndian.PutUint64(plen[:], uint64(len(payload)))
	if _, err := w.Write(plen[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Load reads a sketch written by Save, reconstructing it via the
// algorithm registry and restoring its state.
func Load(r io.Reader) (sketch.Sketch, Desc, error) {
	var desc Desc
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, desc, fmt.Errorf("sketchio: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, desc, fmt.Errorf("sketchio: bad magic %q", head)
	}
	var nameLen [4]byte
	if _, err := io.ReadFull(r, nameLen[:]); err != nil {
		return nil, desc, err
	}
	nl := binary.LittleEndian.Uint32(nameLen[:])
	if nl > 256 {
		return nil, desc, fmt.Errorf("sketchio: implausible algorithm name length %d", nl)
	}
	name := make([]byte, nl)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, desc, err
	}
	nums := make([]byte, 8*4)
	if _, err := io.ReadFull(r, nums); err != nil {
		return nil, desc, err
	}
	desc = Desc{
		Algo: string(name),
		N:    int(binary.LittleEndian.Uint64(nums)),
		S:    int(binary.LittleEndian.Uint64(nums[8:])),
		D:    int(binary.LittleEndian.Uint64(nums[16:])),
		Seed: int64(binary.LittleEndian.Uint64(nums[24:])),
	}
	if _, ok := registry.Lookup(desc.Algo); !ok {
		return nil, desc, fmt.Errorf("sketchio: unknown algorithm %q", desc.Algo)
	}
	if err := desc.Validate(); err != nil {
		return nil, desc, err
	}

	var plen [8]byte
	if _, err := io.ReadFull(r, plen[:]); err != nil {
		return nil, desc, err
	}
	pl := binary.LittleEndian.Uint64(plen[:])
	// The state of any serializable sketch is at most (D+2)·S cells
	// plus estimator floats; anything bigger is corrupt, and the bound
	// keeps hostile headers from forcing huge allocations.
	if max := uint64(8*(desc.D+2)*desc.S + 4096); pl > max {
		return nil, desc, fmt.Errorf("sketchio: payload length %d exceeds shape bound %d", pl, max)
	}
	payload := make([]byte, pl)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, desc, err
	}
	sk, err := registry.SafeNew(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	if err != nil {
		return nil, desc, err
	}
	st, err := stateful(sk)
	if err != nil {
		return nil, desc, err
	}
	if err := st.UnmarshalState(payload); err != nil {
		return nil, desc, err
	}
	return sk, desc, nil
}

// Validate bounds the descriptor fields before they reach a
// constructor — payloads come from the network and must not be able
// to panic or exhaust memory here. The public facade applies the same
// bounds at construction time, so every sketch it builds round-trips.
func (d Desc) Validate() error {
	if d.N < 1 || d.N > 1<<26 {
		return fmt.Errorf("sketchio: implausible dimension %d", d.N)
	}
	if d.S < 4 || d.S > 1<<22 {
		return fmt.Errorf("sketchio: implausible row width %d", d.S)
	}
	if d.D < 1 || d.D > 64 {
		return fmt.Errorf("sketchio: implausible depth %d", d.D)
	}
	if d.S*d.D > 1<<24 {
		return fmt.Errorf("sketchio: implausible table size %d cells", d.S*d.D)
	}
	if d.Seed < 0 {
		return fmt.Errorf("sketchio: negative seed")
	}
	return nil
}

// stateful adapts the concrete sketch types to the Stateful surface.
func stateful(sk sketch.Sketch) (Stateful, error) {
	st, err := registry.State(sk)
	if err != nil {
		return nil, fmt.Errorf("sketchio: %T is not serializable (its state is not carried by the wire format)", sk)
	}
	return st, nil
}
