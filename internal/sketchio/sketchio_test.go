package sketchio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/sketch"
)

func roundTrip(t *testing.T, algo string) {
	t.Helper()
	desc := Desc{Algo: algo, N: 20000, S: 256, D: 7, Seed: 99}
	orig := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	r := rand.New(rand.NewSource(1))
	for u := 0; u < 30000; u++ {
		orig.Update(r.Intn(desc.N), float64(1+r.Intn(5)))
	}
	var buf bytes.Buffer
	if err := Save(&buf, desc, orig); err != nil {
		t.Fatalf("%s: Save: %v", algo, err)
	}
	loaded, gotDesc, err := Load(&buf)
	if err != nil {
		t.Fatalf("%s: Load: %v", algo, err)
	}
	if gotDesc != desc {
		t.Fatalf("%s: desc round-trip %+v != %+v", algo, gotDesc, desc)
	}
	for i := 0; i < desc.N; i += 97 {
		if a, b := orig.Query(i), loaded.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("%s: query %d: %f != %f", algo, i, a, b)
		}
	}
}

func TestRoundTripAllSerializable(t *testing.T) {
	for _, algo := range []string{
		bench.AlgoL1SR, bench.AlgoL2SR, bench.AlgoL1Mean, bench.AlgoL2Mean,
		bench.AlgoCM, bench.AlgoCS, bench.AlgoCntMin,
		bench.AlgoCMCU, bench.AlgoCMLCU, bench.AlgoDeng,
	} {
		roundTrip(t, algo)
	}
}

// Canonical registry names resolve the same algorithms as the paper's
// legend names, so a stream written under either loads.
func TestRoundTripCanonicalNames(t *testing.T) {
	for _, algo := range []string{
		"l1sr", "l2sr", "countmin", "countmedian", "countsketch",
		"cmcu", "cmlcu", "dengrafiei",
	} {
		roundTrip(t, algo)
	}
}

func TestExactNotSerializable(t *testing.T) {
	sk := bench.Make("exact", 100, 16, 3, 1)
	var buf bytes.Buffer
	err := Save(&buf, Desc{Algo: "exact", N: 100, S: 16, D: 3, Seed: 1}, sk)
	if err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Errorf("exact should refuse to serialize, got %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE0000"),
		"truncated": append([]byte(magic), 1, 0, 0),
	}
	for name, b := range cases {
		if _, _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
}

func TestLoadRejectsUnknownAlgo(t *testing.T) {
	// Hand-craft a header with a bogus algorithm name.
	var buf bytes.Buffer
	desc := Desc{Algo: bench.AlgoCM, N: 100, S: 16, D: 3, Seed: 5}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	if err := Save(&buf, desc, sk); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The algorithm name "CM" begins at offset 8; corrupt it.
	raw[8] = 'Z'
	if _, _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted algorithm name should fail")
	}
}

func TestStatePayloadTamperDetected(t *testing.T) {
	var buf bytes.Buffer
	desc := Desc{Algo: bench.AlgoL2SR, N: 1000, S: 64, D: 3, Seed: 2}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	if err := Save(&buf, desc, sk); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncate the payload: Load must error, not panic.
	if _, _, err := Load(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Error("truncated payload should fail")
	}
}

// The distributed flow end to end: two sites serialize, a coordinator
// loads and merges, and the result matches the centralized sketch.
func TestShipAndMerge(t *testing.T) {
	desc := Desc{Algo: bench.AlgoCS, N: 5000, S: 128, D: 7, Seed: 11}
	mk := func() sketch.Sketch { return bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed) }
	siteA, siteB, central := mk(), mk(), mk()
	r := rand.New(rand.NewSource(12))
	for u := 0; u < 20000; u++ {
		i, d := r.Intn(desc.N), float64(r.Intn(9)-2)
		central.Update(i, d)
		if u%2 == 0 {
			siteA.Update(i, d)
		} else {
			siteB.Update(i, d)
		}
	}
	ship := func(s sketch.Sketch) sketch.Sketch {
		var buf bytes.Buffer
		if err := Save(&buf, desc, s); err != nil {
			t.Fatal(err)
		}
		loaded, _, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return loaded
	}
	a := ship(siteA).(*sketch.CountSketch)
	b := ship(siteB).(*sketch.CountSketch)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < desc.N; i += 53 {
		if x, y := central.Query(i), a.Query(i); math.Abs(x-y) > 1e-9 {
			t.Fatalf("query %d: central %f shipped-merged %f", i, x, y)
		}
	}
}
