// Package vecmath implements the vector statistics used throughout the
// paper: norms, mean/median/variance (Table 1), the tail error
// Err_p^k(x), and exact computation of min_β Err_p^k(x − β) — the right
// hand side of the paper's headline guarantee (Inequality (4)). The
// exact optimum is used as ground truth by tests and as the "theory
// column" in experiment reports.
package vecmath

import (
	"math"
	"sort"
)

// Norm1 returns the ℓ1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns the ℓ2 norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the ℓ∞ norm of x; 0 for an empty vector.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Mean returns the arithmetic mean of x; 0 for an empty vector.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Median returns the median per Table 1 of the paper: the middle
// element for odd length, the average of the two middle elements for
// even length. It does not modify x. It returns 0 for an empty vector.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	tmp := append([]float64(nil), x...)
	sort.Float64s(tmp)
	return MedianSorted(tmp)
}

// MedianSorted returns the median of an already-sorted vector.
func MedianSorted(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return x[n/2]
	}
	return (x[n/2-1] + x[n/2]) / 2
}

// Variance returns the population variance σ²(x) per Table 1;
// 0 for an empty vector.
func Variance(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return s / float64(n)
}

// SubScalar returns x − β (coordinate-wise, Table 1's x − β notation)
// as a new vector.
func SubScalar(x []float64, beta float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - beta
	}
	return out
}

// ErrK returns Err_p^k(x) = min over k-sparse x' of ||x − x'||_p, i.e.
// the ℓp norm of x with the k largest-magnitude coordinates zeroed.
// p must be 1 or 2. k is clamped to [0, len(x)].
func ErrK(x []float64, k, p int) float64 {
	if p != 1 && p != 2 {
		panic("vecmath: ErrK requires p == 1 or p == 2")
	}
	n := len(x)
	if k < 0 {
		k = 0
	}
	if k >= n {
		return 0
	}
	abs := make([]float64, n)
	for i, v := range x {
		abs[i] = math.Abs(v)
	}
	sort.Float64s(abs)
	// Tail = all but the k largest magnitudes = abs[:n-k].
	var s float64
	if p == 1 {
		for _, v := range abs[:n-k] {
			s += v
		}
		return s
	}
	for _, v := range abs[:n-k] {
		s += v * v
	}
	return math.Sqrt(s)
}

// MinBetaErrK returns the pair (β*, Err_p^k(x − β*)) minimizing
// Err_p^k(x − β) over all real β — the bias of x per Definition (5) of
// the paper, computed exactly.
//
// The kept coordinates for any fixed β are those with the n−k smallest
// deviations |x_i − β|, which form a contiguous window of the sorted
// coordinates; sweeping all windows of width n−k with prefix sums gives
// the exact optimum in O(n log n) time. For p=1 the optimal β of a
// window is its median, for p=2 its mean.
func MinBetaErrK(x []float64, k, p int) (beta, err float64) {
	if p != 1 && p != 2 {
		panic("vecmath: MinBetaErrK requires p == 1 or p == 2")
	}
	n := len(x)
	if k < 0 {
		k = 0
	}
	if k >= n {
		// Any β attains zero error; report β = median/mean of x for
		// determinism (the whole vector can be dropped).
		if n == 0 {
			return 0, 0
		}
		if p == 1 {
			return Median(x), 0
		}
		return Mean(x), 0
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	// Center on the median before computing prefix sums; the p=2 cost
	// uses the cancellation-prone sum² formula, and centering keeps the
	// intermediate magnitudes small so large common offsets in x do not
	// destroy precision. The result is shifted back at return.
	center := sorted[n/2]
	for i := range sorted {
		sorted[i] -= center
	}
	m := n - k // window width

	// Prefix sums of values and squares.
	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, v := range sorted {
		pre[i+1] = pre[i] + v
		pre2[i+1] = pre2[i] + v*v
	}

	best := math.Inf(1)
	var bestBeta float64
	for l := 0; l+m <= n; l++ {
		var cost, b float64
		if p == 1 {
			h := m / 2
			// Window median; cost = (sum of top part) − (sum of bottom part).
			b = MedianSorted(sorted[l : l+m])
			upper := pre[l+m] - pre[l+m-h]
			lower := pre[l+h] - pre[l]
			cost = upper - lower
		} else {
			sum := pre[l+m] - pre[l]
			sum2 := pre2[l+m] - pre2[l]
			b = sum / float64(m)
			ss := sum2 - sum*sum/float64(m)
			if ss < 0 {
				ss = 0 // guard against tiny negative round-off
			}
			cost = math.Sqrt(ss)
		}
		if cost < best {
			best = cost
			bestBeta = b
		}
	}
	return bestBeta + center, best
}

// AvgAbsErr returns (1/n)·||x − y||_1, the paper's "average error"
// measurement for point query (§5.1). Panics if lengths differ.
func AvgAbsErr(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vecmath: AvgAbsErr length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s / float64(len(x))
}

// MaxAbsErr returns ||x − y||_∞, the paper's "maximum error"
// measurement for point query (§5.1). Panics if lengths differ.
func MaxAbsErr(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vecmath: MaxAbsErr length mismatch")
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// TopKDeviating returns the indices of the k coordinates of x that
// deviate the most from beta, in arbitrary order. These are the
// "outliers" O in the proof of Lemma 6. k is clamped to [0, len(x)].
func TopKDeviating(x []float64, beta float64, k int) []int {
	n := len(x)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := math.Abs(x[idx[a]] - beta)
		db := math.Abs(x[idx[b]] - beta)
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// DropTopKDeviating returns x with the k coordinates deviating most
// from beta removed — the vector x* of Lemmas 1 and 4.
func DropTopKDeviating(x []float64, beta float64, k int) []float64 {
	drop := TopKDeviating(x, beta, k)
	dropped := make(map[int]bool, len(drop))
	for _, i := range drop {
		dropped[i] = true
	}
	out := make([]float64, 0, len(x)-len(drop))
	for i, v := range x {
		if !dropped[i] {
			out = append(out, v)
		}
	}
	return out
}

// Percentile returns the q-th percentile (q in [0,1]) of x using
// nearest-rank on a sorted copy. 0 for empty input.
func Percentile(x []float64, q float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	tmp := append([]float64(nil), x...)
	sort.Float64s(tmp)
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return tmp[i]
}
