package vecmath

import (
	"math"
	"sort"
)

// This file quantifies Remark 1 of the paper: allowing m > 1 bias
// values cannot be supported by any o(n)-size sketch (each coordinate
// would need to remember which bias was subtracted), but the *offline*
// optimum is computable and tells you how much a second bias value
// would have bought on a given dataset. MinMultiBiasErr computes it by
// dynamic programming over the sorted coordinates: for ℓp costs the
// optimal assignment partitions the sorted order into m contiguous
// segments, each using its own optimal bias (median for p=1, mean for
// p=2).

// MinMultiBiasErr returns the minimum over m bias values β₁..β_m and
// assignments of ‖x − β_{a(·)}‖_p — i.e. Err with an m-level bias and
// no dropped outliers (k = 0; combine with ErrK-style dropping by
// preprocessing if needed). p must be 1 or 2. m is clamped to [1, n].
//
// Complexity O(n²·m) time, O(n·m) space — an offline analysis tool,
// not a sketch component.
func MinMultiBiasErr(x []float64, m, p int) float64 {
	if p != 1 && p != 2 {
		panic("vecmath: MinMultiBiasErr requires p == 1 or p == 2")
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	// Center for numerical stability (cf. MinBetaErrK).
	c := sorted[n/2]
	for i := range sorted {
		sorted[i] -= c
	}

	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, v := range sorted {
		pre[i+1] = pre[i] + v
		pre2[i+1] = pre2[i] + v*v
	}
	// segCost(l, r) = optimal single-bias ℓp^p cost of sorted[l:r]
	// (sum of |·| for p=1, sum of squares for p=2, so costs add).
	segCost := func(l, r int) float64 {
		w := r - l
		if w <= 1 {
			return 0
		}
		if p == 2 {
			sum := pre[r] - pre[l]
			ss := pre2[r] - pre2[l] - sum*sum/float64(w)
			if ss < 0 {
				ss = 0
			}
			return ss
		}
		h := w / 2
		upper := pre[r] - pre[r-h]
		lower := pre[l+h] - pre[l]
		return upper - lower
	}

	// dp[j][i] = best cost of covering sorted[:i] with j segments.
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		prev[i] = segCost(0, i)
	}
	for j := 2; j <= m; j++ {
		cur[0] = 0
		for i := 1; i <= n; i++ {
			best := math.Inf(1)
			for l := j - 1; l <= i; l++ {
				if c := prev[l] + segCost(l, i); c < best {
					best = c
				}
			}
			cur[i] = best
		}
		prev, cur = cur, prev
	}
	total := prev[n]
	if p == 2 {
		return math.Sqrt(total)
	}
	return total
}
