package vecmath

import (
	"encoding/binary"
	"math"
	"testing"
)

// vectorFromBytes decodes a fuzz payload into a bounded float vector.
func vectorFromBytes(data []byte) []float64 {
	n := len(data) / 2
	if n == 0 || n > 64 {
		return nil
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		v := int16(binary.LittleEndian.Uint16(data[2*i:]))
		x[i] = float64(v)
	}
	return x
}

// FuzzMinBetaErrK cross-checks the sliding-window optimum against the
// quadratic brute force on arbitrary integer vectors.
func FuzzMinBetaErrK(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0, 4, 0}, uint8(1))
	f.Add([]byte{255, 255, 0, 0, 7, 0}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		x := vectorFromBytes(data)
		if x == nil {
			t.Skip()
		}
		k := int(kRaw) % len(x)
		for _, p := range []int{1, 2} {
			_, got := MinBetaErrK(x, k, p)
			want := bruteMinBeta(x, k, p)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("p=%d k=%d x=%v: MinBetaErrK=%g brute=%g", p, k, x, got, want)
			}
		}
	})
}

// FuzzErrKInvariants checks structural invariants of the tail error on
// arbitrary inputs: symmetry under negation, monotonicity in k, and
// the ordering Err2 <= Err1.
func FuzzErrKInvariants(f *testing.F) {
	f.Add([]byte{10, 0, 20, 0, 30, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		x := vectorFromBytes(data)
		if x == nil {
			t.Skip()
		}
		neg := make([]float64, len(x))
		for i, v := range x {
			neg[i] = -v
		}
		prev1, prev2 := math.Inf(1), math.Inf(1)
		for k := 0; k <= len(x); k++ {
			e1, e2 := ErrK(x, k, 1), ErrK(x, k, 2)
			if e1 > prev1+1e-9 || e2 > prev2+1e-9 {
				t.Fatalf("ErrK not monotone at k=%d", k)
			}
			prev1, prev2 = e1, e2
			if e2 > e1+1e-9 {
				t.Fatalf("Err2 %g > Err1 %g at k=%d", e2, e1, k)
			}
			if n1 := ErrK(neg, k, 1); math.Abs(n1-e1) > 1e-9 {
				t.Fatalf("ErrK not negation-symmetric at k=%d", k)
			}
		}
	})
}

// FuzzMultiBias checks the DP against the m=1 closed form and
// monotonicity in m.
func FuzzMultiBias(f *testing.F) {
	f.Add([]byte{5, 0, 5, 0, 9, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		x := vectorFromBytes(data)
		if x == nil || len(x) > 40 {
			t.Skip()
		}
		for _, p := range []int{1, 2} {
			_, want := MinBetaErrK(x, 0, p)
			got := MinMultiBiasErr(x, 1, p)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("p=%d m=1: %g != %g", p, got, want)
			}
			prev := math.Inf(1)
			for m := 1; m <= 4 && m <= len(x); m++ {
				c := MinMultiBiasErr(x, m, p)
				if c > prev+1e-9 {
					t.Fatalf("p=%d: cost increased at m=%d", p, m)
				}
				prev = c
			}
		}
	})
}
