package vecmath

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4, 0}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %f, want 7", got)
	}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %f, want 5", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %f, want 4", got)
	}
}

func TestNormsEmpty(t *testing.T) {
	if Norm1(nil) != 0 || Norm2(nil) != 0 || NormInf(nil) != 0 {
		t.Error("norms of empty vector should be 0")
	}
}

func TestMeanMedianVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Mean(x); got != 3 {
		t.Errorf("Mean = %f, want 3", got)
	}
	if got := Median(x); got != 3 {
		t.Errorf("Median = %f, want 3", got)
	}
	if got := Variance(x); got != 2 {
		t.Errorf("Variance = %f, want 2", got)
	}
	even := []float64{4, 1, 3, 2}
	if got := Median(even); got != 2.5 {
		t.Errorf("Median even = %f, want 2.5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 3}
	Median(x)
	if x[0] != 5 || x[1] != 1 || x[2] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestEmptyStats(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Variance(nil) != 0 {
		t.Error("stats of empty vector should be 0")
	}
}

func TestSubScalar(t *testing.T) {
	x := []float64{10, 20, 30}
	y := SubScalar(x, 5)
	want := []float64{5, 15, 25}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("SubScalar[%d] = %f, want %f", i, y[i], want[i])
		}
	}
	if x[0] != 10 {
		t.Error("SubScalar mutated input")
	}
}

// TestErrKPaperExample reproduces the running example of §1:
// x = (3, 100, 101, 500, 102, 98, 97, 100, 99, 103), k = 2.
func TestErrKPaperExample(t *testing.T) {
	x := []float64{3, 100, 101, 500, 102, 98, 97, 100, 99, 103}
	k := 2
	if got := ErrK(x, k, 1); got != 700 {
		t.Errorf("Err_1^2 = %f, want 700", got)
	}
	if got := ErrK(x, k, 2); !almostEq(got, math.Sqrt(69428), 1e-12) {
		t.Errorf("Err_2^2 = %f, want sqrt(69428) = %f", got, math.Sqrt(69428))
	}
	b1, e1 := MinBetaErrK(x, k, 1)
	if e1 != 12 {
		t.Errorf("min_beta Err_1^2 = %f, want 12", e1)
	}
	if b1 != 100 {
		t.Errorf("argmin beta (p=1) = %f, want 100", b1)
	}
	b2, e2 := MinBetaErrK(x, k, 2)
	if !almostEq(e2, math.Sqrt(28), 1e-12) {
		t.Errorf("min_beta Err_2^2 = %f, want sqrt(28) = %f", e2, math.Sqrt(28))
	}
	if !almostEq(b2, 100, 1e-12) {
		t.Errorf("argmin beta (p=2) = %f, want 100", b2)
	}
}

func TestErrKSparse(t *testing.T) {
	// A k-sparse vector has Err_p^k = 0.
	x := []float64{0, 0, 7, 0, -3, 0}
	if ErrK(x, 2, 1) != 0 || ErrK(x, 2, 2) != 0 {
		t.Error("Err_p^k of a k-sparse vector should be 0")
	}
}

func TestErrKClamping(t *testing.T) {
	x := []float64{1, 2, 3}
	if ErrK(x, -1, 1) != 6 {
		t.Error("negative k should clamp to 0")
	}
	if ErrK(x, 10, 1) != 0 {
		t.Error("k >= n should give 0")
	}
}

func TestErrKPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=3")
		}
	}()
	ErrK([]float64{1}, 0, 3)
}

func TestMinBetaErrKPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	MinBetaErrK([]float64{1}, 0, 0)
}

func TestMinBetaDegenerate(t *testing.T) {
	if _, e := MinBetaErrK(nil, 0, 1); e != 0 {
		t.Error("empty vector should have zero error")
	}
	b, e := MinBetaErrK([]float64{5, 5, 5}, 3, 2)
	if e != 0 {
		t.Error("k >= n should give zero error")
	}
	if b != 5 {
		t.Errorf("degenerate beta = %f, want 5", b)
	}
}

func TestMinBetaAllEqual(t *testing.T) {
	x := []float64{42, 42, 42, 42}
	for _, p := range []int{1, 2} {
		b, e := MinBetaErrK(x, 1, p)
		if e != 0 {
			t.Errorf("p=%d: error = %f, want 0", p, e)
		}
		if b != 42 {
			t.Errorf("p=%d: beta = %f, want 42", p, b)
		}
	}
}

// bruteMinBeta computes min_beta Err_p^k by trying every candidate
// window directly (quadratic reference implementation).
func bruteMinBeta(x []float64, k, p int) float64 {
	n := len(x)
	if k >= n {
		return 0
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	m := n - k
	best := math.Inf(1)
	for l := 0; l+m <= n; l++ {
		w := sorted[l : l+m]
		var cost float64
		if p == 1 {
			med := MedianSorted(w)
			for _, v := range w {
				cost += math.Abs(v - med)
			}
		} else {
			mu := Mean(w)
			for _, v := range w {
				cost += (v - mu) * (v - mu)
			}
			cost = math.Sqrt(cost)
		}
		if cost < best {
			best = cost
		}
	}
	return best
}

func TestMinBetaMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(40)
		k := r.Intn(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Round(r.NormFloat64()*50) + 100
		}
		for _, p := range []int{1, 2} {
			_, got := MinBetaErrK(x, k, p)
			want := bruteMinBeta(x, k, p)
			if !almostEq(got, want, 1e-9) {
				t.Fatalf("trial %d p=%d k=%d: MinBetaErrK = %f, brute = %f (x=%v)",
					trial, p, k, got, want, x)
			}
		}
	}
}

// Property: min_beta Err_p^k(x − β) <= Err_p^k(x) (β=0 is a candidate).
func TestMinBetaNoWorseThanZeroBiasProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(60)
		k := rr.Intn(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.NormFloat64() * 100
		}
		for _, p := range []int{1, 2} {
			_, e := MinBetaErrK(x, k, p)
			if e > ErrK(x, k, p)+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Err_p^k is non-increasing in k.
func TestErrKMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(50)
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.NormFloat64() * 10
		}
		for _, p := range []int{1, 2} {
			prev := math.Inf(1)
			for k := 0; k <= n; k++ {
				e := ErrK(x, k, p)
				if e > prev+1e-12 {
					return false
				}
				prev = e
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

// Property: shifting the whole vector shifts the optimal bias but
// preserves the optimal error (translation invariance).
func TestMinBetaTranslationInvarianceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func(seed int64, shiftRaw float64) bool {
		rr := rand.New(rand.NewSource(seed))
		shift := math.Mod(shiftRaw, 1e6)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 17
		}
		n := 3 + rr.Intn(40)
		k := rr.Intn(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.NormFloat64() * 30
		}
		y := make([]float64, n)
		for i := range x {
			y[i] = x[i] + shift
		}
		for _, p := range []int{1, 2} {
			_, e1 := MinBetaErrK(x, k, p)
			_, e2 := MinBetaErrK(y, k, p)
			if !almostEq(e1, e2, 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestAvgMaxAbsErr(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 2, 1, 4}
	if got := AvgAbsErr(x, y); got != 0.75 {
		t.Errorf("AvgAbsErr = %f, want 0.75", got)
	}
	if got := MaxAbsErr(x, y); got != 2 {
		t.Errorf("MaxAbsErr = %f, want 2", got)
	}
}

func TestAvgAbsErrPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AvgAbsErr([]float64{1}, []float64{1, 2})
}

func TestMaxAbsErrPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxAbsErr([]float64{1}, []float64{1, 2})
}

func TestTopKDeviating(t *testing.T) {
	x := []float64{100, 3, 101, 500, 99}
	got := TopKDeviating(x, 100, 2)
	want := map[int]bool{1: true, 3: true} // 3 and 500 deviate most from 100
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("TopKDeviating = %v, want indices {1,3}", got)
	}
}

func TestDropTopKDeviating(t *testing.T) {
	x := []float64{100, 3, 101, 500, 99}
	got := DropTopKDeviating(x, 100, 2)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Should keep 100, 101, 99 in original order.
	want := []float64{100, 101, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kept[%d] = %f, want %f", i, got[i], want[i])
		}
	}
}

func TestTopKDeviatingClamp(t *testing.T) {
	x := []float64{1, 2}
	if len(TopKDeviating(x, 0, 5)) != 2 {
		t.Error("k > n should clamp to n")
	}
	if len(TopKDeviating(x, 0, -3)) != 0 {
		t.Error("negative k should clamp to 0")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	if got := Percentile(x, 0); got != 1 {
		t.Errorf("P0 = %f, want 1", got)
	}
	if got := Percentile(x, 1); got != 5 {
		t.Errorf("P100 = %f, want 5", got)
	}
	if got := Percentile(x, 0.5); got != 3 {
		t.Errorf("P50 = %f, want 3", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// Lemma 1 (sanity): for p=1 the optimal bias equals the median of x*
// (the vector with the k worst deviators dropped).
func TestLemma1MedianConnection(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		n := 5 + 2*r.Intn(20) // keep n-k odd often enough
		k := r.Intn(n / 2)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Round(r.NormFloat64() * 20)
		}
		beta, e := MinBetaErrK(x, k, 1)
		xStar := DropTopKDeviating(x, beta, k)
		med := Median(xStar)
		// ||x* − med||_1 must equal the optimal error (Lemma 1).
		var cost float64
		for _, v := range xStar {
			cost += math.Abs(v - med)
		}
		if !almostEq(cost, e, 1e-9) {
			t.Fatalf("trial %d: ||x*-median||_1 = %f != optimal %f", trial, cost, e)
		}
	}
}

// Lemma 4 (sanity): for p=2 the squared optimum equals (n−k)·σ²(x*).
func TestLemma4VarianceConnection(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	for trial := 0; trial < 100; trial++ {
		n := 5 + r.Intn(40)
		k := r.Intn(n / 2)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 20
		}
		beta, e := MinBetaErrK(x, k, 2)
		xStar := DropTopKDeviating(x, beta, k)
		want := math.Sqrt(float64(len(xStar)) * Variance(xStar))
		if !almostEq(want, e, 1e-8) {
			t.Fatalf("trial %d: sqrt((n-k)σ²(x*)) = %f != optimal %f", trial, want, e)
		}
	}
}

func BenchmarkMinBetaErrK1(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := make([]float64, 100000)
	for i := range x {
		x[i] = r.NormFloat64()*15 + 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinBetaErrK(x, 100, 1)
	}
}

func BenchmarkMinBetaErrK2(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := make([]float64, 100000)
	for i := range x {
		x[i] = r.NormFloat64()*15 + 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinBetaErrK(x, 100, 2)
	}
}
