package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMultiBiasPaperRemark1Example(t *testing.T) {
	// Remark 1's vector: two natural levels 50 and 100 with outliers
	// 200 and 10.
	y := []float64{200, 100, 50, 50, 50, 50, 100, 100, 100, 10}
	one := MinMultiBiasErr(y, 1, 1)
	two := MinMultiBiasErr(y, 2, 1)
	three := MinMultiBiasErr(y, 3, 1)
	if !(two < one) {
		t.Errorf("two biases (%f) should beat one (%f)", two, one)
	}
	if !(three <= two) {
		t.Errorf("three biases (%f) should not lose to two (%f)", three, two)
	}
}

func TestMultiBiasSingleMatchesErrK0(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 20
		}
		for _, p := range []int{1, 2} {
			_, want := MinBetaErrK(x, 0, p)
			got := MinMultiBiasErr(x, 1, p)
			if !almostEq(got, want, 1e-9) {
				t.Fatalf("trial %d p=%d: m=1 cost %f != MinBetaErrK %f", trial, p, got, want)
			}
		}
	}
}

func TestMultiBiasPerfectBimodal(t *testing.T) {
	// Exactly two levels → zero cost with m=2 but large with m=1.
	x := []float64{10, 10, 10, 500, 500, 500}
	for _, p := range []int{1, 2} {
		if got := MinMultiBiasErr(x, 2, p); got > 1e-9 {
			t.Errorf("p=%d: bimodal m=2 cost %f, want 0", p, got)
		}
		if got := MinMultiBiasErr(x, 1, p); got < 100 {
			t.Errorf("p=%d: bimodal m=1 cost %f should be large", p, got)
		}
	}
}

func TestMultiBiasMonotoneInM(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := make([]float64, 60)
	for i := range x {
		x[i] = math.Round(r.NormFloat64() * 30)
	}
	for _, p := range []int{1, 2} {
		prev := math.Inf(1)
		for m := 1; m <= 10; m++ {
			got := MinMultiBiasErr(x, m, p)
			if got > prev+1e-9 {
				t.Fatalf("p=%d: cost increased at m=%d: %f > %f", p, m, got, prev)
			}
			prev = got
		}
	}
}

func TestMultiBiasDegenerate(t *testing.T) {
	if MinMultiBiasErr(nil, 2, 1) != 0 {
		t.Error("empty vector should cost 0")
	}
	if MinMultiBiasErr([]float64{5}, 1, 2) != 0 {
		t.Error("single coordinate should cost 0")
	}
	x := []float64{1, 7, 9}
	if MinMultiBiasErr(x, 99, 1) != 0 {
		t.Error("m >= n should cost 0")
	}
	if MinMultiBiasErr(x, -1, 1) != MinMultiBiasErr(x, 1, 1) {
		t.Error("m < 1 should clamp to 1")
	}
}

func TestMultiBiasPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMultiBiasErr([]float64{1}, 1, 3)
}

// Brute force m=2 reference: try every split of the sorted order.
func TestMultiBiasTwoMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(25)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Round(r.NormFloat64() * 40)
		}
		sorted := append([]float64(nil), x...)
		sortFloats(sorted)
		for _, p := range []int{1, 2} {
			best := math.Inf(1)
			for cut := 1; cut < n; cut++ {
				c := segCostRef(sorted[:cut], p) + segCostRef(sorted[cut:], p)
				if c < best {
					best = c
				}
			}
			if p == 2 {
				best = math.Sqrt(best)
			}
			got := MinMultiBiasErr(x, 2, p)
			if !almostEq(got, best, 1e-8) {
				t.Fatalf("trial %d p=%d: DP %f != brute %f", trial, p, got, best)
			}
		}
	}
}

func segCostRef(w []float64, p int) float64 {
	if len(w) == 0 {
		return 0
	}
	var cost float64
	if p == 1 {
		med := MedianSorted(w)
		for _, v := range w {
			cost += math.Abs(v - med)
		}
	} else {
		mu := Mean(w)
		for _, v := range w {
			cost += (v - mu) * (v - mu)
		}
	}
	return cost
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// Property: adding a constant shift never changes multi-bias cost.
func TestMultiBiasShiftInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		m := 1 + r.Intn(4)
		x := make([]float64, n)
		y := make([]float64, n)
		shift := r.NormFloat64() * 1000
		for i := range x {
			x[i] = r.NormFloat64() * 25
			y[i] = x[i] + shift
		}
		for _, p := range []int{1, 2} {
			if !almostEq(MinMultiBiasErr(x, m, p), MinMultiBiasErr(y, m, p), 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
