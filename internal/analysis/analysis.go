// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The
// repository vendors nothing, so the framework is rebuilt here on the
// standard library's go/ast and go/types alone — the driver
// subpackage loads and type-checks packages through `go list -export`
// plus the gc export-data importer, and cmd/sketchlint fronts the
// suite both standalone and behind `go vet -vettool`.
//
// The analyzers in the subpackages encode this repository's hot-path,
// lock, and decode invariants; see doc.go at the module root
// ("Static analysis & invariants") for the catalog and rationale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name diagnostics are
// attributed to, a doc string explaining the invariant it enforces,
// and the Run function applied to every package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is one (analyzer, package) unit of work: the parsed files, the
// type-checked package, and the Report sink diagnostics go to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// BaseName reduces a package path to the base name analyzers scope
// their rules by: the test-variant suffix `pkg [pkg.test]` that go
// list attaches, any directory prefix, and an external-test `_test`
// suffix are all stripped, so "repro/internal/window_test
// [repro/internal/window.test]" and "repro/internal/window" both
// reduce to "window".
func BaseName(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return strings.TrimSuffix(path, "_test")
}

// Inspect walks every file of the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree — the same
// contract as ast.Inspect, lifted to the whole package.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
