package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestBaseName(t *testing.T) {
	cases := []struct{ path, want string }{
		{"repro", "repro"},
		{"repro/internal/window", "window"},
		{"repro/internal/window [repro/internal/window.test]", "window"},
		{"repro/internal/window_test [repro/internal/window.test]", "window"},
		{"repro_test [repro.test]", "repro"},
		{"repro/internal/codec", "codec"},
	}
	for _, c := range cases {
		if got := analysis.BaseName(c.path); got != c.want {
			t.Errorf("BaseName(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}
