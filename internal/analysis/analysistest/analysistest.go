// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against `// want`
// comments in the fixtures — the same convention as x/tools'
// analysistest, rebuilt on the local driver.
//
// A fixture line expecting diagnostics carries a comment of the form
//
//	code() // want "first regexp" "second regexp"
//
// where each quoted string is a regular expression that must match
// the message of one diagnostic reported on that line. Lines without
// a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// wantRx pulls the quoted expectations out of a want comment.
var wantRx = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run analyzes each fixture package (a directory under
// testdata/src/<pkg>) with a and reports any mismatch between the
// diagnostics produced and the // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, testdata, a, pkg)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func runPackage(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("analysistest: no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)

	wants, imports, err := collect(names)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := stdExports(imports)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := driver.RunFiles(pkg, names, driver.Lookup(nil, exports), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %s: %v", pkg, err)
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		if !claim(wants[key], f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.rx)
			}
		}
	}
}

// claim marks the first unmatched expectation matching msg and reports
// whether one existed.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collect parses the fixtures, gathering want expectations keyed by
// "file:line" and the set of imported packages.
func collect(names []string) (map[string][]*expectation, []string, error) {
	wants := make(map[string][]*expectation)
	importSet := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysistest: parsing %s: %w", name, err)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			importSet[p] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(name), fset.Position(c.Pos()).Line)
				for _, q := range quotedRx.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, nil, fmt.Errorf("analysistest: %s: bad want pattern %s", key, q)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, nil, fmt.Errorf("analysistest: %s: %w", key, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return wants, imports, nil
}

// stdExports resolves export data for the fixtures' imports (standard
// library packages — fixtures are self-contained by design).
func stdExports(imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return nil, nil
	}
	pkgs, err := driver.Load(".", false, imports...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
