// Package driver loads, type-checks, and runs analyzers over Go
// packages using only the standard library and the go tool itself.
//
// Loading leans on `go list -export -json -deps`: the go command
// compiles every dependency into the build cache and hands back the
// path of each package's gc export data, which go/importer reads
// through a lookup function. That gives the analyzers fully
// type-checked packages — the same information x/tools' go/packages
// would provide — without vendoring anything.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// ListPackage is the subset of `go list -json` output the driver
// consumes.
type ListPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ForTest    string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// Load runs `go list -export -json -deps` (plus -test when tests is
// set) over the patterns and returns every listed package, in
// dependency order.
func Load(dir string, tests bool, patterns ...string) ([]*ListPackage, error) {
	args := []string{"list", "-export", "-json", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*ListPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportIndex maps import paths to gc export-data files across a
// whole `go list -deps` result set.
func exportIndex(pkgs []*ListPackage) map[string]string {
	idx := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx
}

// Lookup builds the go/importer lookup function for one package: an
// import path written in its sources resolves through the package's
// ImportMap (test-variant and vendor redirections), then to the
// export-data file the build cache holds for it.
func Lookup(importMap map[string]string, exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// TypeCheck parses and type-checks one package from its file list,
// resolving imports through lookup. It returns the inputs an analysis
// Pass needs.
func TypeCheck(path string, filenames []string, lookup func(string) (io.ReadCloser, error)) (*token.FileSet, []*ast.File, *types.Package, *types.Info, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("driver: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("driver: type-checking %s: %w", path, err)
	}
	return fset, files, pkg, info, nil
}

// Finding is one diagnostic with its position resolved and the
// analyzer that raised it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// analyzable selects the unit a package contributes to analysis: test
// variants supersede their base package (same files plus _test.go
// ones), and only packages of the current module are analyzed.
func analyzable(pkgs []*ListPackage) []*ListPackage {
	hasTestVariant := make(map[string]bool)
	for _, p := range pkgs {
		// Only the in-package variant `pkg [pkg.test]` carries the base
		// sources plus _test.go files and supersedes the base package;
		// an external `pkg_test [pkg.test]` package is its own unit.
		base := p.ImportPath
		if i := strings.Index(base, " ["); i >= 0 {
			base = base[:i]
		}
		if p.ForTest != "" && base == p.ForTest {
			hasTestVariant[p.ForTest] = true
		}
	}
	var out []*ListPackage
	for _, p := range pkgs {
		switch {
		case p.Standard || p.DepOnly || p.Module == nil:
		case strings.HasSuffix(p.ImportPath, ".test"): // generated test main
		case p.ForTest == "" && hasTestVariant[p.ImportPath]: // superseded
		default:
			out = append(out, p)
		}
	}
	return out
}

// Run analyzes every module package matched by the patterns with every
// analyzer and returns the findings, sorted by position. tests selects
// whether _test.go files (and external test packages) are included.
func Run(dir string, tests bool, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := Load(dir, tests, patterns...)
	if err != nil {
		return nil, err
	}
	exports := exportIndex(pkgs)
	var findings []Finding
	for _, p := range analyzable(pkgs) {
		if len(p.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, f)
		}
		fs, err := RunFiles(p.ImportPath, filenames, Lookup(p.ImportMap, exports), analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunFiles type-checks one package from explicit file names and runs
// the analyzers over it — the unit shared by standalone runs, the
// vet -vettool protocol, and analysistest.
func RunFiles(path string, filenames []string, lookup func(string) (io.ReadCloser, error), analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset, files, pkg, info, err := TypeCheck(path, filenames, lookup)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, path, err)
		}
	}
	return findings, nil
}
