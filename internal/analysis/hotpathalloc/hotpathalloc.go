// Package hotpathalloc enforces the zero-allocation contract of the
// batched serving paths: a function whose doc comment carries the
// //sketch:hotpath tag must not contain allocating constructs. The
// batch fast paths live or die on zero allocations per operation; the
// runtime twin of this rule is the testing.AllocsPerRun gates in
// alloc_test.go files.
//
// Flagged constructs: make, new, append, slice/map composite
// literals, &composite literals, function literals (closure capture),
// fmt.* calls, string<->[]byte/[]rune conversions, string
// concatenation, go statements, channel sends, and interface boxing
// of concrete non-pointer operands. Arguments of panic(...) calls are
// exempt: a panic is off the hot path by definition, and the
// validation helpers deliberately build their messages only when
// dying.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Tag is the magic doc-comment marker.
const Tag = "sketch:hotpath"

// Analyzer is the hotpathalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions tagged //sketch:hotpath must not contain allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !tagged(fn) {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

// tagged reports whether the function's doc comment carries the
// hotpath marker.
func tagged(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, Tag) {
			return true
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{pass: pass, fn: fn}
	ast.Inspect(fn.Body, c.visit)
}

func (c *checker) report(n ast.Node, what string) {
	c.pass.Reportf(n.Pos(), "%s in //sketch:hotpath function %s allocates", what, c.fn.Name.Name)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		return c.call(n)
	case *ast.CompositeLit:
		c.composite(n)
		// Descend: element expressions may allocate on their own.
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				c.report(n, "&composite literal")
				ast.Inspect(cl, func(m ast.Node) bool { // still scan elements
					if m == cl {
						return true
					}
					return c.visit(m)
				})
				return false
			}
		}
	case *ast.FuncLit:
		c.report(n, "function literal (closure)")
		return false
	case *ast.GoStmt:
		c.report(n, "go statement")
	case *ast.SendStmt:
		c.report(n, "channel send")
	case *ast.BinaryExpr:
		if n.Op == token.ADD && c.isString(n.X) {
			c.report(n, "string concatenation")
		}
	}
	return true
}

// call classifies one call expression, returning false to prune the
// walk when its arguments were already handled.
func (c *checker) call(call *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	// panic(...) arguments are off the hot path: never scanned.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return false
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				c.report(call, b.Name())
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				c.report(call, "fmt."+fun.Sel.Name+" call")
			}
		}
	}
	// Type conversions crossing string/[]byte/[]rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if c.stringConversion(tv.Type, call.Args[0]) {
			c.report(call, "string conversion")
		}
		// Conversion into an interface boxes the operand.
		if types.IsInterface(tv.Type.Underlying()) {
			c.boxes(call.Args[0], call)
		}
		return true
	}
	// Interface-typed parameters box concrete non-pointer arguments.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			c.boxedArgs(sig, call)
		}
	}
	return true
}

// boxedArgs reports concrete non-pointer arguments passed to
// interface-typed parameters.
func (c *checker) boxedArgs(sig *types.Signature, call *ast.CallExpr) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt.Underlying()) {
			c.boxes(arg, arg)
		}
	}
}

// boxes reports arg if converting it to an interface must heap-box it:
// a concrete non-pointer, non-interface value that is not a constant.
// Type parameters are skipped — their instantiations are unknown here.
func (c *checker) boxes(arg ast.Expr, at ast.Node) {
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Value != nil { // constants are interned by the runtime
		return
	}
	t := tv.Type
	if t == nil {
		return
	}
	if _, isParam := t.(*types.TypeParam); isParam {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return // single-word values: no heap box for pointers/interfaces
	}
	c.pass.Reportf(at.Pos(), "interface boxing of %s operand in //sketch:hotpath function %s allocates", t.String(), c.fn.Name.Name)
}

// composite flags slice and map literals (heap-backed); plain struct
// and array literals are value constructions and stay off the heap
// unless they escape through other flagged constructs.
func (c *checker) composite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.report(lit, "slice literal")
	case *types.Map:
		c.report(lit, "map literal")
	}
}

func (c *checker) isString(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringConversion reports conversions between string and []byte or
// []rune in either direction.
func (c *checker) stringConversion(to types.Type, from ast.Expr) bool {
	fromT := c.pass.TypesInfo.Types[from].Type
	if fromT == nil {
		return false
	}
	return (isStringT(to) && isByteOrRuneSlice(fromT)) || (isByteOrRuneSlice(to) && isStringT(fromT))
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
