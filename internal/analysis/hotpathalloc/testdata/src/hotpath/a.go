// Fixtures for the hotpathalloc analyzer: only functions tagged
// //sketch:hotpath are checked, and panic arguments are exempt.
package hotpath

import "fmt"

type sk struct {
	rows    []float64
	scratch []int
}

// Update is tagged and allocation-free.
//
//sketch:hotpath
func (s *sk) Update(i int, d float64) {
	s.rows[i] += d
}

// grow is untagged: allocations are allowed off the hot path.
func (s *sk) grow() {
	s.rows = append(s.rows, 0)
}

//sketch:hotpath
func (s *sk) badMake(n int) {
	s.scratch = make([]int, n) // want "make in //sketch:hotpath function badMake allocates"
}

//sketch:hotpath
func (s *sk) badNew() *sk {
	return new(sk) // want "new in //sketch:hotpath function badNew allocates"
}

//sketch:hotpath
func (s *sk) badAppend(v float64) {
	s.rows = append(s.rows, v) // want "append in //sketch:hotpath function badAppend allocates"
}

//sketch:hotpath
func (s *sk) badClosure() func() {
	return func() {} // want "function literal"
}

//sketch:hotpath
func (s *sk) badFmt(i int) {
	fmt.Println(i) // want "fmt.Println call" "interface boxing"
}

//sketch:hotpath
func badSliceLit() []int {
	return []int{1, 2} // want "slice literal"
}

//sketch:hotpath
func badMapLit() map[int]int {
	return map[int]int{} // want "map literal"
}

//sketch:hotpath
func badAddrComposite() *sk {
	return &sk{} // want "&composite literal"
}

//sketch:hotpath
func badString(b []byte) string {
	return string(b) // want "string conversion"
}

//sketch:hotpath
func badBytes(s string) []byte {
	return []byte(s) // want "string conversion"
}

//sketch:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//sketch:hotpath
func badGo() {
	go helper() // want "go statement"
}

//sketch:hotpath
func badSend(ch chan int) {
	ch <- 1 // want "channel send"
}

func helper() {}

type iface interface{ M() }

type impl struct{ x int }

func (impl) M() {}

func use(v iface) { v.M() }

//sketch:hotpath
func badBox() {
	var v impl
	use(v) // want "interface boxing"
}

//sketch:hotpath
func goodBoxPointer(v *impl) {
	usePtr(v)
}

func usePtr(v iface) { v.M() }

// goodPanic allocates only inside a panic argument, which is off the
// hot path by definition.
//
//sketch:hotpath
func goodPanic(i, n int) {
	if i >= n {
		panic(fmt.Sprintf("index %d out of range %d", i, n))
	}
}

// goodArray builds a stack array and does arithmetic: clean.
//
//sketch:hotpath
func goodArray(i int) float64 {
	var buf [4]float64
	buf[0] = float64(i)
	for j := 1; j < len(buf); j++ {
		buf[j] = buf[j-1] * 2
	}
	return buf[3]
}
