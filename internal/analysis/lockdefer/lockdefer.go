// Package lockdefer enforces the PR 2 deadlock rule: inside the
// concurrency-bearing packages, every sync.Mutex/RWMutex Lock() or
// RLock() must be paired with a matching deferred Unlock()/RUnlock()
// in the same function. A panicking critical section must never leave
// a shard locked for every later writer — the exact bug class the
// shard-lock-leak fix in PR 2 removed.
package lockdefer

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Packages lists the package base names the rule applies to — the
// layers that own mutexes guarding shared sketch state.
var Packages = map[string]bool{
	"concurrent":  true,
	"window":      true,
	"distributed": true,
	"server":      true,
}

// Analyzer is the lockdefer analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockdefer",
	Doc:  "every Lock/RLock in the concurrency packages must be paired with a deferred Unlock/RUnlock in the same function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !Packages[analysis.BaseName(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
				return false // nested literals are handled by checkBody
			case *ast.FuncLit: // package-level var initializer
				checkBody(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// lockCall describes one mutex method call inside a function body.
type lockCall struct {
	recv     string // receiver expression, e.g. "sh.mu" or "w.rot"
	method   string // Lock, RLock, Unlock, RUnlock
	deferred bool
	pos      ast.Node
}

// unlockFor maps an acquire method to the release that must be
// deferred for it.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkBody verifies one function body (treating nested function
// literals as their own scopes, which the caller visits separately).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var calls []lockCall
	collect(pass, body, false, &calls)

	deferredReleases := make(map[string]bool) // "recv\x00method"
	for _, c := range calls {
		if c.deferred && (c.method == "Unlock" || c.method == "RUnlock") {
			deferredReleases[c.recv+"\x00"+c.method] = true
		}
	}
	for _, c := range calls {
		want, isAcquire := unlockFor[c.method]
		if !isAcquire || c.deferred {
			continue
		}
		if !deferredReleases[c.recv+"\x00"+want] {
			pass.Reportf(c.pos.Pos(), "%s.%s() is not paired with a deferred %s.%s() in this function; a panic in the critical section leaves the lock held",
				c.recv, c.method, c.recv, want)
		}
	}
}

// collect gathers mutex calls in body. Statements inside a DeferStmt
// (including bodies of deferred function literals) are marked
// deferred; nested function literals are additionally checked as
// scopes of their own.
func collect(pass *analysis.Pass, n ast.Node, deferred bool, out *[]lockCall) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// Releases inside the deferred closure pair with this
				// function's acquires; acquires inside it form a scope
				// of their own.
				collect(pass, fl.Body, true, out)
				checkBody(pass, fl.Body)
			} else {
				collect(pass, n.Call, true, out)
			}
			return false
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.CallExpr:
			if c, ok := mutexCall(pass, n, deferred); ok {
				*out = append(*out, c)
			}
		}
		return true
	})
}

// mutexCall reports whether call is sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock and describes it.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr, deferred bool) (lockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockCall{}, false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockCall{}, false
	}
	named, ok := deref(recv.Type()).(*types.Named)
	if !ok {
		return lockCall{}, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return lockCall{}, false
	}
	return lockCall{
		recv:     types.ExprString(sel.X),
		method:   obj.Name(),
		deferred: deferred,
		pos:      call,
	}, true
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
