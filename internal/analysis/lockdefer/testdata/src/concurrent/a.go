// Fixtures for the lockdefer analyzer. The package base name
// "concurrent" puts this fixture inside the rule's scope.
package concurrent

import "sync"

type shard struct {
	mu sync.Mutex
	ro sync.RWMutex
	n  int
}

func good(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func goodRead(s *shard) int {
	s.ro.RLock()
	defer s.ro.RUnlock()
	return s.n
}

func badInline(s *shard) {
	s.mu.Lock() // want "not paired with a deferred s.mu.Unlock"
	s.n++
	s.mu.Unlock()
}

func badRead(s *shard) int {
	s.ro.RLock() // want "not paired with a deferred s.ro.RUnlock"
	n := s.n
	s.ro.RUnlock()
	return n
}

func badOtherMutex(s, t *shard) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.mu.Lock() // want "not paired with a deferred s.mu.Unlock"
	s.n = t.n
	s.mu.Unlock()
}

func badWrongKind(s *shard) {
	s.ro.Lock() // want "not paired with a deferred s.ro.Unlock"
	defer s.ro.RUnlock()
	s.n++
}

func goodDeferredClosure(s *shard) {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

func badNestedLiteral(s *shard) func() {
	return func() {
		s.mu.Lock() // want "not paired with a deferred s.mu.Unlock"
		s.n++
		s.mu.Unlock()
	}
}

func goodNestedLiteral(s *shard) func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.n
	}
}
