// Package other is outside the lockdefer scope: the same unpaired
// lock that fires in the concurrent fixture stays silent here.
package other

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func inline(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
