package lockdefer_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockdefer"
)

func TestLockDefer(t *testing.T) {
	analysistest.Run(t, "testdata", lockdefer.Analyzer, "concurrent", "other")
}
