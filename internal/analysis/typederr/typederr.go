// Package typederr enforces the error discipline at the API
// boundary: exported functions of the public facade (package repro),
// exported functions of the distributed simulation, and exported
// constructors across internal packages must return typed or
// sentinel-wrapped errors — a bare fmt.Errorf at the boundary leaves
// callers nothing to errors.Is against. Three rules:
//
//  1. In boundary functions, fmt.Errorf must wrap a sentinel with %w
//     (and errors.New must not be called inline — sentinels are
//     package-level vars).
//  2. Everywhere, an error-typed argument formatted with %v or %s is
//     flagged: it silently severs the error chain that %w preserves.
//  3. In the wire-format decode packages, panic is forbidden —
//     hostile input must error, never crash the process.
package typederr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// BoundaryPackages lists package base names whose exported functions
// are all API boundary (rule 1).
var BoundaryPackages = map[string]bool{"repro": true, "distributed": true, "server": true}

// ConstructorPrefixes are the exported-function name prefixes treated
// as constructors in every other package (rule 1).
var ConstructorPrefixes = []string{"New", "Open"}

// NoPanicPackages lists package base names where panic is forbidden
// outright (rule 3).
var NoPanicPackages = map[string]bool{"codec": true}

// Analyzer is the typederr analysis.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "API-boundary errors must be typed/sentinel-wrapped; error args need %w; decode paths must not panic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	base := analysis.BaseName(pass.Pkg.Path())
	boundaryPkg := BoundaryPackages[base]
	noPanic := NoPanicPackages[base]

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			boundary := fn.Name.IsExported() && (boundaryPkg || constructor(fn.Name.Name))
			checkFunc(pass, fn, boundary, noPanic)
		}
	}
	return nil
}

func constructor(name string) bool {
	for _, p := range ConstructorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, boundary, noPanic bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if noPanic {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in decode package %s: hostile input must error, never panic", pass.Pkg.Name())
					return true
				}
			}
		}
		switch callee(pass, call) {
		case "fmt.Errorf":
			checkErrorf(pass, call, boundary, fn.Name.Name)
		case "errors.New":
			if boundary {
				pass.Reportf(call.Pos(), "inline errors.New in API-boundary function %s: declare a package-level sentinel and wrap it with %%w", fn.Name.Name)
			}
		}
		return true
	})
}

// callee names a pkg.Func call, or "".
func callee(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkg.Imported().Path() + "." + sel.Sel.Name
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, boundary bool, fname string) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := constString(pass, call.Args[0])
	if !ok {
		if boundary {
			pass.Reportf(call.Pos(), "fmt.Errorf with non-constant format in API-boundary function %s: cannot verify a %%w-wrapped sentinel", fname)
		}
		return
	}
	verbs := parseVerbs(format)
	wraps := false
	argIdx := 1
	for _, v := range verbs {
		if argIdx >= len(call.Args) {
			break
		}
		arg := call.Args[argIdx]
		argIdx++
		switch v {
		case 'w':
			wraps = true
		case 'v', 's':
			if isErrorType(pass, arg) {
				pass.Reportf(arg.Pos(), "error formatted with %%%c severs the error chain; use %%w", v)
			}
		}
	}
	if boundary && !wraps {
		pass.Reportf(call.Pos(), "untyped fmt.Errorf in API-boundary function %s: wrap a package sentinel with %%w so callers can errors.Is", fname)
	}
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the argument-consuming verbs of a format string
// in order, with '*' width/precision slots included as pseudo-verbs.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			switch {
			case c == '%':
				// literal %%
			case c == '*':
				verbs = append(verbs, '*')
				i++
				continue
			case (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' || c == '[' || c == ']':
				i++
				continue
			default:
				verbs = append(verbs, c)
			}
			break
		}
	}
	return verbs
}

func isErrorType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errType)
}
