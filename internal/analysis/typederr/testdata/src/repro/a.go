// Fixtures for typederr rule 1 in a boundary package: every exported
// function's errors must wrap a sentinel.
package repro

import (
	"errors"
	"fmt"
)

// ErrBad is the package sentinel the good paths wrap.
var ErrBad = errors.New("repro: bad input")

func Exported(n int) error {
	if n < 0 {
		return fmt.Errorf("repro: negative count %d", n) // want "untyped fmt.Errorf in API-boundary function Exported"
	}
	return nil
}

func ExportedWrapped(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: count %d", ErrBad, n)
	}
	return nil
}

func ExportedInline() error {
	return errors.New("repro: nope") // want "inline errors.New in API-boundary function ExportedInline"
}

func ExportedRewrap(err error) error {
	if err != nil {
		return fmt.Errorf("repro: setup: %w", err)
	}
	return nil
}

// internalHelper is unexported: bare fmt.Errorf is allowed below the
// boundary.
func internalHelper(n int) error {
	return fmt.Errorf("helper: %d", n)
}
