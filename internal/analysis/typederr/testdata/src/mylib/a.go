// Fixtures for typederr outside the boundary packages: only exported
// constructors fall under rule 1, while rule 2 (%v/%s on an error
// severs the chain) applies everywhere.
package mylib

import (
	"errors"
	"fmt"
)

var errBase = errors.New("mylib: base")

type T struct{ n int }

func NewT(n int) (*T, error) {
	if n < 0 {
		return nil, fmt.Errorf("mylib: bad n %d", n) // want "untyped fmt.Errorf in API-boundary function NewT"
	}
	return &T{n: n}, nil
}

func NewGood(n int) (*T, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n %d", errBase, n)
	}
	return &T{n: n}, nil
}

// Exported is not a constructor and mylib is not a boundary package:
// rule 1 does not apply.
func Exported(n int) error {
	return fmt.Errorf("mylib: n %d", n)
}

func wrapSevered(err error) error {
	return fmt.Errorf("mylib: %v", err) // want "severs the error chain"
}

func wrapPrinted(err error) error {
	return fmt.Errorf("mylib: %s", err) // want "severs the error chain"
}

func wrapOK(err error) error {
	return fmt.Errorf("mylib: %w", err)
}

func formatValue(n int) error {
	return fmt.Errorf("mylib: %v", n)
}
