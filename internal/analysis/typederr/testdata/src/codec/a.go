// Fixtures for typederr rule 3: panic is forbidden anywhere in the
// decode packages — hostile input must error.
package codec

import (
	"errors"
	"fmt"
)

var errShort = errors.New("codec: short input")

func decodeStrict(b []byte) error {
	if len(b) == 0 {
		panic("empty input") // want "panic in decode package codec"
	}
	return nil
}

func anyHelper(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // want "panic in decode package codec"
	}
}

func decodeSafe(b []byte) error {
	if len(b) == 0 {
		return errShort
	}
	return nil
}
