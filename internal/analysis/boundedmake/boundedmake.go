// Package boundedmake enforces the PR 5 hostile-input rule: in the
// wire-format decode paths, a make() whose size derives from decoded
// bytes must be dominated by a comparison against a validated bound
// before it drives an allocation. A length prefix read off the wire
// and handed straight to make is an OOM primitive — the exact class
// the v2 codec hardening removed.
//
// The analysis is a conservative single-function dataflow over
// statement order: a size expression is "bounded" when every leaf is
// a constant, a len/cap of in-memory data, or a variable that was
// either assigned from a bounded expression, guarded by a comparison
// in an if whose body terminates (return/panic), or clamped by an
// `if small < big { big = small }` assignment. Everything else —
// notably integers decoded via encoding/binary or io — is unbounded
// until proven otherwise.
package boundedmake

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Packages lists the package base names holding decode paths the rule
// applies to.
var Packages = map[string]bool{"codec": true}

// decodePrefixes mark the functions treated as decode paths.
var decodePrefixes = []string{"decode", "read", "restore", "unmarshal"}

// Analyzer is the boundedmake analysis.
var Analyzer = &analysis.Analyzer{
	Name: "boundedmake",
	Doc:  "decode-path make() sizes must be bounded by a validated descriptor bound before allocating",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !Packages[analysis.BaseName(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !decodeFunc(fn.Name.Name) {
				continue
			}
			st := &state{pass: pass, bounded: map[string]bool{}}
			st.block(fn.Body)
		}
	}
	return nil
}

func decodeFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range decodePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// state tracks which variables are currently bounded, keyed by their
// expression string (idents and field selectors alike).
type state struct {
	pass    *analysis.Pass
	bounded map[string]bool
}

// block processes statements in source order.
func (st *state) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		st.stmt(s)
	}
}

func (st *state) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		st.checkExprs(s.Rhs)
		st.assign(s, nil)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				st.checkExprs(vs.Values)
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						st.bounded[name.Name] = st.boundedExpr(vs.Values[i])
					} else {
						st.bounded[name.Name] = true // zero value
					}
				}
			}
		}
	case *ast.IfStmt:
		st.ifStmt(s)
	case *ast.ForStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		if s.Cond != nil {
			st.checkExpr(s.Cond)
		}
		st.block(s.Body)
		if s.Post != nil {
			st.stmt(s.Post)
		}
	case *ast.RangeStmt:
		st.checkExpr(s.X)
		st.block(s.Body)
	case *ast.BlockStmt:
		st.block(s)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			st.checkExpr(s.Tag)
		}
		for _, cl := range s.Body.List {
			if c, ok := cl.(*ast.CaseClause); ok {
				for _, cs := range c.Body {
					st.stmt(cs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if c, ok := cl.(*ast.CaseClause); ok {
				for _, cs := range c.Body {
					st.stmt(cs)
				}
			}
		}
	case *ast.ExprStmt:
		st.checkExpr(s.X)
	case *ast.ReturnStmt:
		st.checkExprs(s.Results)
	case *ast.DeferStmt:
		st.checkExpr(s.Call)
	case *ast.GoStmt:
		st.checkExpr(s.Call)
	}
}

// ifStmt handles guards and clamps. After an if whose body terminates,
// variables compared against bounded values in its condition become
// bounded ("if n > max { return err }"). Inside the body, an
// assignment `big = small` under a condition comparing the two keeps
// big's bounded status ("if rem < m { m = rem }").
func (st *state) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		st.stmt(s.Init)
	}
	st.checkExpr(s.Cond)

	clamps := comparisons(s.Cond)

	// Then-branch facts: inside the body, an operand compared below a
	// bounded value is itself bounded ("if n <= chunk { make([]byte,
	// n) }"). The facts are scoped to the body — restored afterwards,
	// conservatively clobbering any body assignment to the same names.
	thenKeys := st.thenFacts(clamps)
	saved := make(map[string]bool, len(thenKeys))
	for _, k := range thenKeys {
		saved[k] = st.bounded[k]
		st.bounded[k] = true
	}
	for _, bs := range s.Body.List {
		if as, ok := bs.(*ast.AssignStmt); ok {
			st.checkExprs(as.Rhs)
			st.assign(as, clamps)
			continue
		}
		st.stmt(bs)
	}
	for _, k := range thenKeys {
		st.bounded[k] = saved[k]
	}

	if s.Else != nil {
		st.stmt(s.Else)
	}
	if terminates(s.Body) {
		for _, cmp := range clamps {
			st.applyGuard(cmp)
		}
	}
}

// thenFacts returns the state keys provably bounded inside the then
// branch: the small side of an ordered comparison against a bounded
// value, or either side of an equality with a bounded counterpart.
// (&&-joined conditions are sound here; a ||-joined one is over-
// approximate, which this conservative checker accepts.)
func (st *state) thenFacts(clamps []cmp) []string {
	var keys []string
	for _, c := range clamps {
		xb, yb := st.boundedExpr(c.x), st.boundedExpr(c.y)
		switch c.op {
		case token.LSS, token.LEQ: // x < y: x bounded when y is
			if yb && !xb {
				keys = append(keys, boundKeys(c.x)...)
			}
		case token.GTR, token.GEQ: // x > y: y bounded when x is
			if xb && !yb {
				keys = append(keys, boundKeys(c.y)...)
			}
		case token.EQL:
			if yb && !xb {
				keys = append(keys, boundKeys(c.x)...)
			}
			if xb && !yb {
				keys = append(keys, boundKeys(c.y)...)
			}
		}
	}
	return keys
}

// cmp is one ordered comparison a OP b appearing in a condition.
type cmp struct {
	x, y ast.Expr
	op   token.Token
}

// comparisons flattens a condition into its comparison operands,
// descending through && and ||.
func comparisons(e ast.Expr) []cmp {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return comparisons(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			return append(comparisons(e.X), comparisons(e.Y)...)
		case token.GTR, token.LSS, token.GEQ, token.LEQ, token.NEQ, token.EQL:
			return []cmp{{x: e.X, y: e.Y, op: e.Op}}
		}
	}
	return nil
}

// applyGuard marks comparison operands bounded after a terminating
// guard: in `if n > max { return }`, falling through bounds n when max
// is bounded (and vice versa).
func (st *state) applyGuard(c cmp) {
	xb, yb := st.boundedExpr(c.x), st.boundedExpr(c.y)
	if yb && !xb {
		for _, k := range boundKeys(c.x) {
			st.bounded[k] = true
		}
	}
	if xb && !yb {
		for _, k := range boundKeys(c.y) {
			st.bounded[k] = true
		}
	}
}

// boundKeys lists the state keys an expression boundens: the
// expression itself for idents and selectors, the operand for
// conversions like uint64(n) in a guard.
func boundKeys(e ast.Expr) []string {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return []string{types.ExprString(e)}
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return boundKeys(e.Args[0])
		}
	case *ast.ParenExpr:
		return boundKeys(e.X)
	}
	return nil
}

// assign updates boundedness through an assignment. clamps carries the
// enclosing if condition's comparisons when the assignment sits
// directly in a clamp-shaped if body.
func (st *state) assign(as *ast.AssignStmt, clamps []cmp) {
	for i, lhs := range as.Lhs {
		key := types.ExprString(lhs)
		if i >= len(as.Rhs) {
			// multi-value assignment (x, err := f()): unbounded results
			st.bounded[key] = false
			continue
		}
		rhs := as.Rhs[i]
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// compound ops (+=, *=) on a bounded var may exceed the
			// bound; conservatively unbound unless rhs is bounded too.
			st.bounded[key] = st.bounded[key] && st.boundedExpr(rhs)
			continue
		}
		if st.boundedExpr(rhs) {
			st.bounded[key] = true
			continue
		}
		// Clamp: `if small < big { big = small }` keeps big bounded.
		if st.bounded[key] && clampedBy(clamps, rhs, lhs) {
			continue
		}
		st.bounded[key] = false
	}
}

// clampedBy reports whether the condition contains a comparison
// proving rhs < lhs (or <=) at the assignment site.
func clampedBy(clamps []cmp, rhs, lhs ast.Expr) bool {
	rs, ls := types.ExprString(rhs), types.ExprString(lhs)
	for _, c := range clamps {
		xs, ys := types.ExprString(c.x), types.ExprString(c.y)
		switch c.op {
		case token.LSS, token.LEQ: // x < y
			if xs == rs && ys == ls {
				return true
			}
		case token.GTR, token.GEQ: // x > y
			if xs == ls && ys == rs {
				return true
			}
		}
	}
	return false
}

// terminates reports whether a block always exits the function or
// loop iteration (return, panic, break, continue, goto as last
// statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkExprs scans expressions for make calls with unbounded sizes.
func (st *state) checkExprs(es []ast.Expr) {
	for _, e := range es {
		st.checkExpr(e)
	}
}

func (st *state) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := st.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		for _, sz := range call.Args[1:] {
			if !st.boundedExpr(sz) {
				st.pass.Reportf(call.Pos(), "make size %s is not dominated by a bound check; a hostile length prefix could drive this allocation", types.ExprString(sz))
			}
		}
		return true
	})
}

// boundedExpr reports whether every leaf of e is provably bounded.
func (st *state) boundedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if st.isConst(e) {
			return true
		}
		return st.bounded[e.Name]
	case *ast.SelectorExpr:
		if st.isConst(e.Sel) {
			return true
		}
		return st.bounded[types.ExprString(e)]
	case *ast.ParenExpr:
		return st.boundedExpr(e.X)
	case *ast.BinaryExpr:
		return st.boundedExpr(e.X) && st.boundedExpr(e.Y)
	case *ast.UnaryExpr:
		return st.boundedExpr(e.X)
	case *ast.CallExpr:
		// len/cap of in-memory data are bounded by what was already
		// read; min() is bounded if any argument is; conversions
		// follow their operand.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := st.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap":
					return true
				case "min":
					for _, a := range e.Args {
						if st.boundedExpr(a) {
							return true
						}
					}
					return false
				}
			}
		}
		if tv, ok := st.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return st.boundedExpr(e.Args[0])
		}
		// A plain function call whose arguments are all bounded
		// integers yields a value derived from validated data
		// (chainLen(int(n))). Byte-slice arguments never qualify:
		// a slice's boundedness covers its length, not its hostile
		// contents.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if _, isFunc := st.pass.TypesInfo.Uses[id].(*types.Func); isFunc && len(e.Args) > 0 {
				for _, a := range e.Args {
					if !st.isInt(a) || !st.boundedExpr(a) {
						return false
					}
				}
				return true
			}
		}
		return false
	default:
		if tv, ok := st.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
			return true
		}
		return false
	}
}

// isInt reports whether the expression has integer type.
func (st *state) isInt(e ast.Expr) bool {
	tv, ok := st.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isConst reports whether the identifier denotes a constant.
func (st *state) isConst(id *ast.Ident) bool {
	obj := st.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = st.pass.TypesInfo.Defs[id]
	}
	_, ok := obj.(*types.Const)
	return ok
}
