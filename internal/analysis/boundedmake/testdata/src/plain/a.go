// Package plain is outside the boundedmake scope: an unbounded decode
// make that fires in the codec fixture stays silent here.
package plain

import (
	"encoding/binary"
	"io"
)

func decodeRaw(r io.Reader) []byte {
	var hdr [8]byte
	_, _ = io.ReadFull(r, hdr[:])
	n := binary.LittleEndian.Uint64(hdr[:])
	return make([]byte, n)
}
