// Fixtures for the boundedmake analyzer. The package base name
// "codec" and the decode*/read* function names put these inside the
// rule's scope.
package codec

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxLen = 1 << 20

const chunk = 4096

var errTooBig = errors.New("too big")

// decodeBad hands a wire-derived length straight to make: the classic
// OOM primitive.
func decodeBad(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	buf := make([]byte, n) // want "make size n is not dominated by a bound check"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// decodeGuarded validates the length against a constant bound first.
func decodeGuarded(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > maxLen {
		return nil, errTooBig
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// decodeThenBranch allocates inside the body of the comparison that
// bounds the size.
func decodeThenBranch(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n <= chunk {
		return make([]byte, n), nil
	}
	return nil, errTooBig
}

// decodeAfterIf shows the then-branch fact does not leak past the if.
func decodeAfterIf(r io.Reader) []byte {
	var hdr [8]byte
	_, _ = io.ReadFull(r, hdr[:])
	n := binary.LittleEndian.Uint64(hdr[:])
	if n <= chunk {
		n++
	}
	return make([]byte, n) // want "make size n is not dominated by a bound check"
}

// readClamped caps the per-iteration allocation with a clamp
// assignment, the chunked-read idiom.
func readClamped(r io.Reader, n uint64) ([]byte, error) {
	out := make([]byte, 0, chunk)
	for read := uint64(0); read < n; {
		m := uint64(chunk)
		if rem := n - read; rem < m {
			m = rem
		}
		buf := make([]byte, m)
		k, err := io.ReadFull(r, buf)
		if err != nil {
			return nil, err
		}
		out = append(out, buf[:k]...)
		read += m
	}
	return out, nil
}

// decodeDerived sizes the allocation from a pure integer function of a
// validated value.
func decodeDerived(r io.Reader) ([]uint64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > maxLen {
		return nil, errTooBig
	}
	return make([]uint64, levelsFor(int(n))), nil
}

func levelsFor(n int) int {
	l := 0
	for n > 1 {
		n /= 2
		l++
	}
	return l
}

// decodeFromLen sizes from in-memory data already read: bounded.
func decodeFromLen(b []byte) [][]byte {
	parts := make([][]byte, 0, len(b)/2)
	return parts
}

// helper is not a decode path: the rule does not apply.
func helper(n uint64) []byte {
	return make([]byte, n)
}
