// Package concurrent makes any linear sketch safe for multi-goroutine
// ingestion by sharding: P writers each own a private replica built
// with the same configuration and seeds, so updates are contention
// free; linearity (the same property that powers the distributed model
// of §1) means the replicas simply sum, and a reader merges them into
// a consistent snapshot on demand.
//
// This is the idiomatic way to parallelize sketch ingestion — a single
// mutex serializes the hot path, while striped locks break the
// sketch's cross-bucket invariants (the bias-aware sketches update a
// bucket row *and* an estimator per call, which must stay atomic
// relative to each other for mid-stream queries).
package concurrent

import (
	"fmt"
	"sync"
)

// Mergeable is the sketch surface sharding needs: streaming updates,
// point queries, and linear merge. core.L1SR and core.L2SR satisfy it
// via small adapters (see MergeFunc), as do the linear baselines.
type Mergeable interface {
	Update(i int, delta float64)
	Query(i int) float64
	Dim() int
	Words() int
}

// Sharded is a set of P replicas of one sketch plus a merge rule.
type Sharded[S Mergeable] struct {
	shards []shard[S]
	mk     func() S
	merge  func(dst, src S) error
}

type shard[S Mergeable] struct {
	mu sync.Mutex
	sk S
	_  [40]byte // pad to keep shard locks off one cache line
}

// New creates a sharded sketch with p shards. mk must build replicas
// with identical configuration and seeds (so they merge); merge adds
// src into dst.
func New[S Mergeable](p int, mk func() S, merge func(dst, src S) error) *Sharded[S] {
	if p <= 0 {
		panic(fmt.Sprintf("concurrent: shard count %d must be positive", p))
	}
	s := &Sharded[S]{
		shards: make([]shard[S], p),
		mk:     mk,
		merge:  merge,
	}
	for i := range s.shards {
		s.shards[i].sk = mk()
	}
	return s
}

// Update applies x[i] += delta on the shard owning the caller's slot.
// slot is any caller-chosen integer (e.g. a worker id); updates with
// the same slot serialize, different slots proceed in parallel.
//
// The shard lock is released by defer: sk.Update panics on programmer
// errors (an out-of-range index), and a panicking writer must not
// leave the shard locked forever for every later writer.
func (s *Sharded[S]) Update(slot, i int, delta float64) {
	sh := &s.shards[uint(slot)%uint(len(s.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sk.Update(i, delta)
}

// batchUpdater matches sketches with a native batched path — the
// sketch.BatchUpdater capability, restated structurally so this
// package keeps zero sketch dependencies.
type batchUpdater interface {
	UpdateBatch(idx []int, deltas []float64)
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j on the slot's
// shard under a single lock acquisition — one acquire/release per
// batch instead of per element, the high-throughput ingestion path.
// Replicas with a native batched path get the whole batch at once;
// others absorb it element-wise under the one lock.
func (s *Sharded[S]) UpdateBatch(slot int, idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("concurrent: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	sh := &s.shards[uint(slot)%uint(len(s.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if b, ok := any(sh.sk).(batchUpdater); ok {
		b.UpdateBatch(idx, deltas)
		return
	}
	for j, i := range idx {
		sh.sk.Update(i, deltas[j])
	}
}

// Snapshot merges all shards into a fresh sketch that the caller owns
// exclusively. The merge locks shards one at a time, so concurrent
// writers stall only briefly; the snapshot is a consistent sum of some
// interleaving of the updates (exactly the semantics of the
// distributed model).
func (s *Sharded[S]) Snapshot() (S, error) {
	out := s.mk()
	for idx := range s.shards {
		if err := s.mergeShard(out, idx); err != nil {
			var zero S
			return zero, fmt.Errorf("concurrent: merging shard %d: %w", idx, err)
		}
	}
	return out, nil
}

// mergeShard folds shard idx into out, holding the shard lock with
// defer so a panicking merge cannot leave the shard locked.
func (s *Sharded[S]) mergeShard(out S, idx int) error {
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.merge(out, sh.sk)
}

// Query answers a point query against a merged snapshot. For query
// bursts, take one Snapshot and query it directly instead.
func (s *Sharded[S]) Query(i int) (float64, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return 0, err
	}
	return snap.Query(i), nil
}

// Shards returns the shard count.
func (s *Sharded[S]) Shards() int { return len(s.shards) }

// Words returns the total memory across shards (P× the single-sketch
// cost — the price of contention-free writes).
func (s *Sharded[S]) Words() int {
	var w int
	for idx := range s.shards {
		w += s.shards[idx].sk.Words()
	}
	return w
}
