// Package concurrent makes any linear sketch safe for multi-goroutine
// ingestion by sharding: P writers each own a private replica built
// with the same configuration and seeds, so updates are contention
// free; linearity (the same property that powers the distributed model
// of §1) means the replicas simply sum, and readers consume merged
// snapshots.
//
// This is the idiomatic way to parallelize sketch ingestion — a single
// mutex serializes the hot path, while striped locks break the
// sketch's cross-bucket invariants (the bias-aware sketches update a
// bucket row *and* an estimator per call, which must stay atomic
// relative to each other for mid-stream queries).
//
// The read side is epoch-counted: every shard carries an atomic epoch
// bumped on each write, and the merged replica readers see is an
// immutable Snapshot swapped in atomically by Refresh. Reading a
// published snapshot takes zero shard locks and never blocks writers;
// a refresh locks — briefly, one at a time — only the shards whose
// epoch advanced since their state was last frozen, re-freezes those,
// and re-sums the frozen replicas lock-free. The price is a lazily
// made frozen replica per written shard plus the published merge
// (memory up to 2P+1 single sketches once snapshots are in use); the
// return is a serving path where query bursts from many goroutines
// proceed with no coordination at all.
package concurrent

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mergeable is the sketch surface sharding needs: streaming updates,
// point queries, and linear merge. core.L1SR and core.L2SR satisfy it
// via small adapters (see MergeFunc), as do the linear baselines.
type Mergeable interface {
	Update(i int, delta float64)
	Query(i int) float64
	Dim() int
	Words() int
}

// Sharded is a set of P replicas of one sketch plus a merge rule.
type Sharded[S Mergeable] struct {
	shards []shard[S]
	mk     func() S
	merge  func(dst, src S) error

	// view is the published read replica; readers atomic-load it and
	// never touch shard locks. refreshMu serializes refreshes and
	// guards frozen/frozenOK/frozenEpo.
	view      atomic.Pointer[Snapshot[S]]
	refreshMu sync.Mutex
	frozen    []S      // per-shard copy as of frozenEpo[i], lazily made
	frozenEpo []uint64 // shard epoch when frozen[i] was captured; 0 = never frozen
}

type shard[S Mergeable] struct {
	mu    sync.Mutex
	sk    S
	epoch atomic.Uint64 // bumped under mu after every applied write
	_     [32]byte      // pad to 64 bytes: one shard's mutex+epoch per cache line
}

// New creates a sharded sketch with p shards. mk must build replicas
// with identical configuration and seeds (so they merge); merge adds
// src into dst.
func New[S Mergeable](p int, mk func() S, merge func(dst, src S) error) *Sharded[S] {
	if p <= 0 {
		panic(fmt.Sprintf("concurrent: shard count %d must be positive", p))
	}
	s := &Sharded[S]{
		shards:    make([]shard[S], p),
		mk:        mk,
		merge:     merge,
		frozen:    make([]S, p),
		frozenEpo: make([]uint64, p),
	}
	for i := range s.shards {
		s.shards[i].sk = mk()
	}
	// Frozen replicas are made lazily, on the first refresh that finds
	// the shard written: a never-written shard is empty, exactly what an
	// absent frozen copy contributes to the merged snapshot, and
	// write-only users (or Merged-only users) never pay the extra P
	// replicas at all.
	return s
}

// Update applies x[i] += delta on the shard owning the caller's slot.
// slot is any caller-chosen integer (e.g. a worker id); updates with
// the same slot serialize, different slots proceed in parallel.
//
// The shard lock is released by defer: sk.Update panics on programmer
// errors (an out-of-range index), and a panicking writer must not
// leave the shard locked forever for every later writer. The epoch
// bumps by defer too, even when the write panics: the sketches in this
// module validate before mutating, but a foreign replica might panic
// half-applied, and a spurious epoch bump merely costs one refresh
// while a missed one would hide the partial write from every snapshot.
//
//sketch:hotpath
func (s *Sharded[S]) Update(slot, i int, delta float64) {
	sh := &s.shards[uint(slot)%uint(len(s.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	defer sh.epoch.Add(1)
	sh.sk.Update(i, delta)
}

// batchUpdater matches sketches with a native batched ingestion path —
// the sketch.BatchUpdater capability, restated structurally so this
// package keeps zero sketch dependencies.
type batchUpdater interface {
	UpdateBatch(idx []int, deltas []float64)
}

// batchQuerier is the read-side twin (sketch.BatchQuerier).
type batchQuerier interface {
	QueryBatch(idx []int, out []float64)
}

// readPreparer matches sketches that precompute lazily built query
// caches, so the first reads of a published snapshot don't pay the
// cache construction.
type readPreparer interface {
	PrepareRead()
}

// readCacheAdopter matches sketches that can copy seed-determined
// query caches from an earlier replica of the same configuration —
// successive snapshot replicas then share one cache instead of each
// recomputing it.
type readCacheAdopter interface {
	AdoptReadCaches(src any)
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j on the slot's
// shard under a single lock acquisition — one acquire/release per
// batch instead of per element, the high-throughput ingestion path.
// Replicas with a native batched path get the whole batch at once;
// others absorb it element-wise under the one lock. The shard epoch
// advances once per batch, by defer — even a batch that panics
// half-applied (possible only through the element-wise fallback) stays
// visible to the next refresh.
//
//sketch:hotpath
func (s *Sharded[S]) UpdateBatch(slot int, idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("concurrent: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	if len(idx) == 0 {
		return // nothing to apply; don't mark snapshots stale for a no-op
	}
	sh := &s.shards[uint(slot)%uint(len(s.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	defer sh.epoch.Add(1)
	if b, ok := any(sh.sk).(batchUpdater); ok {
		b.UpdateBatch(idx, deltas)
		return
	}
	for j, i := range idx {
		sh.sk.Update(i, deltas[j])
	}
}

// Snapshot is an immutable merged view of a Sharded sketch: the sum of
// every shard's state as of the Refresh that published it. Readers
// share it — neither they nor the Sharded ever mutate a published
// snapshot — so any number of goroutines may query it concurrently
// with zero locks while writers keep ingesting.
type Snapshot[S Mergeable] struct {
	owner  *Sharded[S]
	sk     S
	epochs []uint64 // per-shard epoch folded into sk
}

// Sketch returns the merged replica. It is shared and immutable:
// callers must not update or merge into it (clone it via the owner's
// Merged for a mutable copy).
func (sn *Snapshot[S]) Sketch() S { return sn.sk }

// pointBufs is the pooled one-element batch a Snapshot point query
// routes through: pooling keeps the buffers off the heap per call even
// though they escape into the replica's QueryBatch via an interface.
type pointBufs struct {
	idx [1]int
	out [1]float64
}

var pointPool = sync.Pool{New: func() any { return new(pointBufs) }}

// Query answers a point query against the snapshot, lock-free. It
// routes through the replica's batched path as a batch of one: the
// single-element Query methods of most sketches reuse per-sketch
// scratch, which concurrent readers of a shared snapshot must not
// touch, while the batched paths borrow their scratch per call.
//
//sketch:hotpath
func (sn *Snapshot[S]) Query(i int) float64 {
	pb := pointPool.Get().(*pointBufs)
	// Returned by defer: a panicking replica QueryBatch (an
	// out-of-range index, a poisoned foreign replica) must not leak the
	// pooled buffers — callers that recover the panic (a server turning
	// it into a 500) would otherwise bleed one allocation per recovery.
	defer pointPool.Put(pb)
	pb.idx[0] = i
	sn.QueryBatch(pb.idx[:], pb.out[:])
	return pb.out[0]
}

// QueryBatch answers a batch of point queries against the snapshot,
// lock-free, through the replica's native batched path when it has one
// (bit-identical to the Query loop either way). The native batched
// paths borrow pooled scratch per call, so concurrent QueryBatch calls
// on one snapshot are safe. (Replicas from outside this module without
// a QueryBatch fall back to their Query method; whether concurrent
// snapshot reads are then safe depends on that Query being
// scratch-free.)
//
//sketch:hotpath
func (sn *Snapshot[S]) QueryBatch(idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("concurrent: batch index count %d != output count %d", len(idx), len(out)))
	}
	if b, ok := any(sn.sk).(batchQuerier); ok {
		b.QueryBatch(idx, out)
		return
	}
	for j, i := range idx {
		out[j] = sn.sk.Query(i)
	}
}

// Stale reports whether any shard has absorbed writes since this
// snapshot was published — an atomic epoch comparison, no locks. A
// false result is momentary under concurrent writers.
func (sn *Snapshot[S]) Stale() bool {
	for i := range sn.owner.shards {
		if sn.owner.shards[i].epoch.Load() != sn.epochs[i] {
			return true
		}
	}
	return false
}

// Written reports whether any shard has ever absorbed a write — an
// atomic epoch scan, no locks. Callers about to pay for a merged copy
// (e.g. a sliding window freezing a pane) use it to skip empty shards
// sets entirely.
func (s *Sharded[S]) Written() bool {
	for i := range s.shards {
		if s.shards[i].epoch.Load() != 0 {
			return true
		}
	}
	return false
}

// Snapshot returns the current published snapshot without taking any
// shard lock, building the first one if none has been published yet.
// The view is as fresh as the last Refresh; callers that need the
// latest writes folded in call Refresh instead.
func (s *Sharded[S]) Snapshot() (*Snapshot[S], error) {
	if v := s.view.Load(); v != nil {
		return v, nil
	}
	return s.Refresh()
}

// Refresh folds shards that changed since the last refresh into a new
// immutable snapshot, publishes it atomically, and returns it. Only
// the changed shards are locked — briefly, one at a time, to re-freeze
// their state — so writers stall at most for one state copy; the
// re-sum of the frozen replicas runs without any lock. If nothing
// changed, the published snapshot is returned as is. On a merge error
// the previous snapshot stays published.
func (s *Sharded[S]) Refresh() (*Snapshot[S], error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	for i := range s.shards {
		if s.shards[i].epoch.Load() == s.frozenEpo[i] {
			continue // also covers never-written shards: no frozen copy needed
		}
		epoch, fresh, err := s.freezeShard(i)
		if err != nil {
			return nil, fmt.Errorf("concurrent: freezing shard %d: %w", i, err)
		}
		s.frozen[i] = fresh
		s.frozenEpo[i] = epoch
	}
	// Republish the current view only if it already carries everything
	// frozen — comparing against the view's own epochs (not a "did this
	// call freeze anything" flag) so that a previous refresh that froze
	// state but failed to publish is retried here instead of silently
	// dropping those writes.
	if v := s.view.Load(); v != nil && equalEpochs(v.epochs, s.frozenEpo) {
		return v, nil
	}
	merged := s.mk()
	for i := range s.frozen {
		if s.frozenEpo[i] == 0 {
			continue // never frozen, hence never written: nothing to add
		}
		if err := s.merge(merged, s.frozen[i]); err != nil {
			return nil, fmt.Errorf("concurrent: merging frozen shard %d: %w", i, err)
		}
	}
	// Replica query caches are seed-determined: adopt them from the
	// outgoing snapshot when possible, compute them once otherwise, so
	// refreshes after the first don't pay the O(n·d) warm-up.
	if a, ok := any(merged).(readCacheAdopter); ok {
		if prev := s.view.Load(); prev != nil {
			a.AdoptReadCaches(any(prev.sk))
		}
	}
	if p, ok := any(merged).(readPreparer); ok {
		p.PrepareRead()
	}
	snap := &Snapshot[S]{
		owner:  s,
		sk:     merged,
		epochs: append([]uint64(nil), s.frozenEpo...),
	}
	s.view.Store(snap)
	return snap, nil
}

// equalEpochs compares two per-shard epoch vectors. A length mismatch
// is "not equal" — fail closed as stale: the vectors can only diverge
// in length through a bug (say, a restore path swapping in a replica
// set of a different shard count), and silently comparing a prefix
// would let a snapshot built for the wrong shard set stay published.
func equalEpochs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// freezeShard copies shard i's current state into a fresh replica,
// holding the shard lock with defer so a panicking merge cannot leave
// the shard locked, and returns the epoch the copy is valid for.
func (s *Sharded[S]) freezeShard(i int) (uint64, S, error) {
	fresh := s.mk()
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := s.merge(fresh, sh.sk); err != nil {
		var zero S
		return 0, zero, err
	}
	return sh.epoch.Load(), fresh, nil
}

// fresh returns a snapshot with every write so far folded in: the
// published view if no shard advanced, otherwise a refresh.
func (s *Sharded[S]) fresh() (*Snapshot[S], error) {
	if v := s.view.Load(); v != nil && !v.Stale() {
		return v, nil
	}
	return s.Refresh()
}

// Merged merges all shards into a fresh sketch that the caller owns
// exclusively and may mutate freely — the hand-off shape of the
// distributed model, as opposed to the shared read replica Snapshot
// returns. The merge locks shards one at a time, so concurrent writers
// stall only briefly; the result is a consistent sum of some
// interleaving of the updates.
func (s *Sharded[S]) Merged() (S, error) {
	out := s.mk()
	for i := range s.shards {
		if err := s.mergeShard(out, i); err != nil {
			var zero S
			return zero, fmt.Errorf("concurrent: merging shard %d: %w", i, err)
		}
	}
	return out, nil
}

// mergeShard folds shard idx into out, holding the shard lock with
// defer so a panicking merge cannot leave the shard locked.
func (s *Sharded[S]) mergeShard(out S, idx int) error {
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.merge(out, sh.sk)
}

// Query answers a point query with every write so far folded in,
// refreshing the snapshot only if some shard advanced. For query
// bursts, take one Snapshot and query it directly instead.
//
//sketch:hotpath
func (s *Sharded[S]) Query(i int) (float64, error) {
	snap, err := s.fresh()
	if err != nil {
		return 0, err
	}
	return snap.Query(i), nil
}

// QueryBatch answers a batch of point queries with every write so far
// folded in, refreshing the snapshot only if some shard advanced.
//
//sketch:hotpath
func (s *Sharded[S]) QueryBatch(idx []int, out []float64) error {
	snap, err := s.fresh()
	if err != nil {
		return err
	}
	snap.QueryBatch(idx, out)
	return nil
}

// Shards returns the shard count.
func (s *Sharded[S]) Shards() int { return len(s.shards) }

// Words returns the total memory across shards (P× the single-sketch
// cost — the price of contention-free writes; once snapshots are in
// use, frozen replicas and the published merge add up to P+1 more).
func (s *Sharded[S]) Words() int {
	var w int
	for idx := range s.shards {
		w += s.shards[idx].sk.Words()
	}
	return w
}
