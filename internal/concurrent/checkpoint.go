package concurrent

import "fmt"

// This file is the checkpoint surface the streaming codec drives: a
// Sharded's durable identity is its per-shard replica states plus the
// per-shard epochs. Capturing both lets a restore rebuild not just the
// summed answer but the exact snapshot behavior — which shards a
// Refresh freezes, and in what order the frozen replicas merge — so a
// restored Sharded answers queries bit-identically to the original.

// CheckpointShards invokes f once per shard, in shard order, with the
// shard's live sketch and current epoch, holding that shard's lock for
// the duration of the call: f sees a single-shard-consistent state and
// must capture (copy or serialize) what it needs without retaining sk.
// Writers on other shards proceed concurrently, so a checkpoint taken
// under load is a consistent sum of some interleaving of the updates —
// the same guarantee Merged gives. An error from f aborts the walk.
func (s *Sharded[S]) CheckpointShards(f func(i int, epoch uint64, sk S) error) error {
	for i := range s.shards {
		if err := s.checkpointShard(i, f); err != nil {
			return fmt.Errorf("concurrent: checkpointing shard %d: %w", i, err)
		}
	}
	return nil
}

// checkpointShard runs f against shard i under its lock, released by
// defer so a panicking f cannot leave the shard locked.
func (s *Sharded[S]) checkpointShard(i int, f func(int, uint64, S) error) error {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return f(i, sh.epoch.Load(), sh.sk)
}

// CheckpointShard is the single-shard form of CheckpointShards: f runs
// once against shard i under its lock, with the same capture contract.
// The delta-shipping fabric uses it to serialize only the shards whose
// epoch advanced since the last acknowledged hop, instead of walking
// (and locking) the whole replica set.
func (s *Sharded[S]) CheckpointShard(i int, f func(epoch uint64, sk S) error) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("concurrent: shard %d out of range [0,%d)", i, len(s.shards))
	}
	if err := s.checkpointShard(i, func(_ int, epoch uint64, sk S) error {
		return f(epoch, sk)
	}); err != nil {
		return fmt.Errorf("concurrent: checkpointing shard %d: %w", i, err)
	}
	return nil
}

// Epochs appends every shard's current epoch to dst and returns it —
// an atomic scan, no locks, so writers are never stalled by a staleness
// probe. Pass a slice with spare capacity to avoid the allocation. A
// shard whose epoch differs from an earlier reading has absorbed
// writes in between; under concurrent writers the vector is a
// momentary reading, exactly like Stale.
func (s *Sharded[S]) Epochs(dst []uint64) []uint64 {
	for i := range s.shards {
		dst = append(dst, s.shards[i].epoch.Load())
	}
	return dst
}

// RestoreShards rebuilds every shard from checkpointed state: f is
// invoked once per shard in shard order with the shard's replica to
// mutate in place, and returns the epoch to install — the value
// CheckpointShards reported, so the restored Sharded freezes and
// merges exactly as the original would. The snapshot machinery is
// reset (frozen copies dropped, published view cleared); the next read
// rebuilds it from the restored shards.
//
// Restore is meant for a freshly constructed Sharded (the codec path).
// Restoring a live instance is safe with respect to locks, but
// snapshots handed out earlier keep serving the pre-restore state.
func (s *Sharded[S]) RestoreShards(f func(i int, sk S) (epoch uint64, err error)) error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	var zero S
	for i := range s.shards {
		if err := s.restoreShard(i, f); err != nil {
			return fmt.Errorf("concurrent: restoring shard %d: %w", i, err)
		}
		s.frozen[i] = zero
		s.frozenEpo[i] = 0
	}
	s.view.Store(nil)
	return nil
}

// restoreShard runs f against shard i under its lock, installing the
// returned epoch only on success.
func (s *Sharded[S]) restoreShard(i int, f func(int, S) (uint64, error)) error {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch, err := f(i, sh.sk)
	if err != nil {
		return err
	}
	sh.epoch.Store(epoch)
	return nil
}
