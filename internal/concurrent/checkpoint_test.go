package concurrent

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// Checkpoint → restore into a fresh Sharded must reproduce per-shard
// state, epochs, and snapshot answers exactly.
func TestCheckpointRestoreShards(t *testing.T) {
	src := New(3, mkL2(9), mergeL2)
	r := rand.New(rand.NewSource(5))
	for u := 0; u < 9000; u++ {
		src.Update(u%3, r.Intn(10000), float64(1+r.Intn(4)))
	}

	// Capture: clone each shard (the codec serializes instead).
	var states []*core.L2SR
	var epochs []uint64
	err := src.CheckpointShards(func(i int, epoch uint64, sk *core.L2SR) error {
		cp := mkL2(9)()
		if err := cp.MergeFrom(sk); err != nil {
			return err
		}
		states = append(states, cp)
		epochs = append(epochs, epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("captured %d shards", len(states))
	}
	for i, e := range epochs {
		if e == 0 {
			t.Fatalf("shard %d never written?", i)
		}
	}

	dst := New(3, mkL2(9), mergeL2)
	err = dst.RestoreShards(func(i int, sk *core.L2SR) (uint64, error) {
		return epochs[i], sk.MergeFrom(states[i])
	})
	if err != nil {
		t.Fatal(err)
	}

	// Epochs restored verbatim.
	var gotEpochs []uint64
	_ = dst.CheckpointShards(func(i int, epoch uint64, _ *core.L2SR) error {
		gotEpochs = append(gotEpochs, epoch)
		return nil
	})
	for i := range epochs {
		if gotEpochs[i] != epochs[i] {
			t.Fatalf("shard %d epoch %d != %d", i, gotEpochs[i], epochs[i])
		}
	}

	// Snapshot answers identical (same shard states, same merge order).
	a, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i += 97 {
		if x, y := a.Query(i), b.Query(i); x != y {
			t.Fatalf("query %d: %v != %v", i, x, y)
		}
	}
	if a.Sketch().Bias() != b.Sketch().Bias() {
		t.Fatal("bias diverged")
	}

	// The restored instance keeps absorbing writes.
	dst.Update(1, 7, 3)
	snap, err := dst.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stale() {
		t.Fatal("fresh refresh reported stale")
	}
}

// Restoring over a Sharded that already published a snapshot must
// clear the view: the next read reflects restored state, not the
// pre-restore merge.
func TestRestoreShardsResetsSnapshots(t *testing.T) {
	s := New(2, mkL2(11), mergeL2)
	s.Update(0, 42, 100)
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	err := s.RestoreShards(func(i int, sk *core.L2SR) (uint64, error) {
		return 0, nil // empty state, never written
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v := snap.Query(42); v != 0 {
		t.Fatalf("pre-restore state leaked into snapshot: %v", v)
	}
}

// Callback errors abort both walks with the shard named, and a
// failing restore leaves no lock held.
func TestCheckpointRestoreErrorsPropagate(t *testing.T) {
	s := New(2, mkL2(12), mergeL2)
	s.Update(0, 1, 1)
	boom := errors.New("boom")
	if err := s.CheckpointShards(func(i int, _ uint64, _ *core.L2SR) error {
		if i == 1 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("checkpoint error = %v", err)
	}
	if err := s.RestoreShards(func(i int, _ *core.L2SR) (uint64, error) {
		if i == 1 {
			return 0, boom
		}
		return 1, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("restore error = %v", err)
	}
	// Locks released: further writes and reads proceed.
	s.Update(1, 2, 1)
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
}

// Checkpointing while writers are running must see per-shard-consistent
// state (run with -race).
func TestCheckpointUnderWriters(t *testing.T) {
	s := New(4, mkL2(13), mergeL2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for u := 0; ; u++ {
				select {
				case <-stop:
					return
				default:
					s.Update(slot, (u+slot*7)%10000, 1)
				}
			}
		}(w)
	}
	for k := 0; k < 30; k++ {
		prev := make([]uint64, 0, 4)
		err := s.CheckpointShards(func(i int, epoch uint64, sk *core.L2SR) error {
			prev = append(prev, epoch)
			_ = sk.Query(5)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(prev) != 4 {
			t.Fatalf("saw %d shards", len(prev))
		}
	}
	close(stop)
	wg.Wait()
}

// counters is a tiny Mergeable Sharded for the single-shard capture
// and epoch-scan tests: per-shard plainCounter replicas.
func newCounters(p int) *Sharded[*plainCounter] {
	return New(p,
		func() *plainCounter { return &plainCounter{x: make([]float64, 16)} },
		func(dst, src *plainCounter) error {
			for i, v := range src.x {
				dst.x[i] += v
			}
			return nil
		})
}

func TestCheckpointShardSingle(t *testing.T) {
	s := newCounters(4)
	s.Update(2, 7, 1)
	s.Update(2, 7, 1)
	var gotEpoch uint64
	var got float64
	if err := s.CheckpointShard(2, func(epoch uint64, sk *plainCounter) error {
		gotEpoch = epoch
		got = sk.Query(7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gotEpoch != 2 || got != 2 {
		t.Fatalf("shard 2: epoch %d value %v, want 2 and 2", gotEpoch, got)
	}
	if err := s.CheckpointShard(-1, func(uint64, *plainCounter) error { return nil }); err == nil {
		t.Error("negative shard index accepted")
	}
	if err := s.CheckpointShard(4, func(uint64, *plainCounter) error { return nil }); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	wantErr := errors.New("capture failed")
	err := s.CheckpointShard(1, func(uint64, *plainCounter) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("capture error not propagated: %v", err)
	}
}

func TestEpochsLockFreeScan(t *testing.T) {
	s := newCounters(3)
	if got := s.Epochs(nil); len(got) != 3 || got[0]|got[1]|got[2] != 0 {
		t.Fatalf("fresh epochs = %v, want zeros", got)
	}
	s.Update(0, 1, 1)
	s.Update(0, 1, 1)
	s.Update(1, 2, 1)
	got := s.Epochs(make([]uint64, 0, 3))
	if got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("epochs = %v, want [2 1 0]", got)
	}
	// Appends to dst, preserving its prefix.
	pre := s.Epochs([]uint64{99})
	if pre[0] != 99 || len(pre) != 4 {
		t.Fatalf("Epochs must append to dst: %v", pre)
	}
}
