package concurrent

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

func mkExact(n int) func() *stream.Exact {
	return func() *stream.Exact { return stream.NewExact(n) }
}

func mergeExact(dst, src *stream.Exact) error {
	for i, v := range src.Vector() {
		if v != 0 {
			dst.Update(i, v)
		}
	}
	return nil
}

// A published snapshot is immutable: writes that land after the
// refresh must not change it, must flip Stale, and must appear in the
// next refreshed snapshot.
func TestSnapshotStalenessSemantics(t *testing.T) {
	sh := New(4, mkExact(100), mergeExact)
	sh.Update(0, 7, 3)
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stale() {
		t.Fatal("fresh snapshot reports stale")
	}
	if got := snap.Query(7); got != 3 {
		t.Fatalf("Query(7) = %v, want 3", got)
	}

	sh.Update(1, 7, 10)
	if !snap.Stale() {
		t.Fatal("snapshot not stale after a write")
	}
	if got := snap.Query(7); got != 3 {
		t.Fatalf("published snapshot changed under a writer: Query(7) = %v", got)
	}

	next, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Query(7); got != 13 {
		t.Fatalf("refreshed Query(7) = %v, want 13", got)
	}
	if got := snap.Query(7); got != 3 {
		t.Fatalf("old snapshot changed by refresh: Query(7) = %v", got)
	}
}

// Refresh is epoch-gated: an unchanged Sharded republishes the same
// snapshot, and a refresh after writes to one shard freezes only that
// shard — observable through the replica-constructor call count.
func TestRefreshMergesOnlyChangedShards(t *testing.T) {
	var mkCalls atomic.Int64
	mk := func() *stream.Exact {
		mkCalls.Add(1)
		return stream.NewExact(50)
	}
	sh := New(4, mk, mergeExact)
	if got := mkCalls.Load(); got != 4 { // shards only: frozen copies are lazy
		t.Fatalf("New made %d replicas, want 4", got)
	}

	snap1, err := sh.Refresh() // first publish: 1 mk for the merged sum
	if err != nil {
		t.Fatal(err)
	}
	if got := mkCalls.Load(); got != 5 {
		t.Fatalf("first refresh made %d replicas, want 5", got)
	}

	snap2, err := sh.Refresh() // nothing changed: no mk, same snapshot
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != snap1 {
		t.Fatal("refresh of an unchanged Sharded built a new snapshot")
	}
	if got := mkCalls.Load(); got != 5 {
		t.Fatalf("no-op refresh made replicas: %d, want 5", got)
	}

	sh.Update(2, 1, 1) // dirty exactly one shard (slot 2 of 4)
	if _, err := sh.Refresh(); err != nil {
		t.Fatal(err)
	}
	// One freeze for the dirty shard + one merged sum: 2 more.
	if got := mkCalls.Load(); got != 7 {
		t.Fatalf("one-dirty-shard refresh made %d extra replicas, want 2", got-5)
	}
}

// Concurrent readers on snapshots while writers batch-update: every
// batch adds the same delta to coordinates 0 and 1, so any snapshot
// that tore a batch — or a merge — would show x[0] != x[1]. Successive
// snapshots must also be monotone on an insert-only stream. Run with
// -race.
func TestSnapshotReadersNeverSeeTornMerge(t *testing.T) {
	const writers, batches = 4, 300
	sh := New(writers, mkExact(10), mergeExact)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := 0; u < batches; u++ {
				sh.UpdateBatch(w, []int{0, 1}, []float64{1, 1})
			}
		}(w)
	}

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			last := math.Inf(-1)
			out := make([]float64, 2)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				var snap *Snapshot[*stream.Exact]
				var err error
				if g%2 == 0 {
					snap, err = sh.Snapshot()
				} else {
					snap, err = sh.Refresh()
				}
				if err != nil {
					t.Error(err)
					return
				}
				snap.QueryBatch([]int{0, 1}, out)
				if out[0] != out[1] {
					t.Errorf("torn merge: x[0]=%v x[1]=%v", out[0], out[1])
					return
				}
				if out[0] < last {
					t.Errorf("snapshot went backwards: %v after %v", out[0], last)
					return
				}
				last = out[0]
			}
		}(g)
	}

	wg.Wait()
	close(stopReaders)
	readers.Wait()

	final, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(writers * batches)
	if got := final.Query(0); got != want {
		t.Fatalf("final x[0] = %v, want %v", got, want)
	}
}

// The sharded QueryBatch refreshes on staleness and falls back to a
// Query loop for replicas without a native batched path.
func TestShardedQueryBatch(t *testing.T) {
	sh := New(2, mkExact(100), mergeExact)
	sh.UpdateBatch(0, []int{3, 7}, []float64{2, 5})
	out := make([]float64, 2)
	if err := sh.QueryBatch([]int{3, 7}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 5 {
		t.Fatalf("QueryBatch = %v, want [2 5]", out)
	}
	sh.Update(1, 3, 1) // must be folded in by the next batched read
	if err := sh.QueryBatch([]int{3, 7}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("stale read: x[3] = %v, want 3", out[0])
	}

	// plainCounter has no QueryBatch: the snapshot loops.
	plain := New(2, func() *plainCounter { return &plainCounter{x: make([]float64, 10)} },
		func(dst, src *plainCounter) error {
			for i, v := range src.x {
				dst.x[i] += v
			}
			return nil
		})
	plain.Update(0, 4, 9)
	pout := make([]float64, 1)
	if err := plain.QueryBatch([]int{4}, pout); err != nil {
		t.Fatal(err)
	}
	if pout[0] != 9 {
		t.Fatalf("fallback QueryBatch = %v, want 9", pout[0])
	}
}

// A refresh that froze shard state but failed to publish (merge error
// in the re-sum) must not let the next refresh republish the stale
// view as if it were current — the frozen writes have to surface once
// the fault clears.
func TestRefreshRetriesAfterFailedPublish(t *testing.T) {
	sh := New(2, mkExact(10), mergeExact)
	if _, err := sh.Refresh(); err != nil { // publish the empty view
		t.Fatal(err)
	}
	sh.Update(0, 3, 5)

	// The freeze copy is the first merge call of the next refresh, the
	// re-sum the second: let the freeze pass, fail the sum.
	calls := 0
	sh.merge = func(dst, src *stream.Exact) error {
		if calls++; calls > 1 {
			return errFault
		}
		return mergeExact(dst, src)
	}
	if _, err := sh.Refresh(); err == nil {
		t.Fatal("refresh should surface the sum-merge error")
	}
	sh.merge = mergeExact

	snap, err := sh.Refresh()
	if err != nil {
		t.Fatalf("refresh after fault cleared: %v", err)
	}
	if got := snap.Query(3); got != 5 {
		t.Fatalf("write frozen before the failed publish was dropped: Query(3) = %v, want 5", got)
	}
}

var errFault = errors.New("injected merge fault")

// A batch that panics half-applied through the element-wise fallback
// still bumps the shard epoch, so the partial write reaches the next
// snapshot instead of silently diverging from Merged.
func TestPartialFallbackBatchStaysVisibleToSnapshots(t *testing.T) {
	sh := New(1, func() *plainCounter { return &plainCounter{x: make([]float64, 10)} },
		func(dst, src *plainCounter) error {
			for i, v := range src.x {
				dst.x[i] += v
			}
			return nil
		})
	if _, err := sh.Refresh(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range element should panic")
			}
		}()
		// plainCounter has no UpdateBatch and no pre-validation: the
		// first element lands before the second panics.
		sh.UpdateBatch(0, []int{4, 99}, []float64{7, 1})
	}()
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Query(4); got != 7 {
		t.Fatalf("partial batch invisible to snapshot: Query(4) = %v, want 7", got)
	}
}

// Snapshots of a sketch-typed Sharded (the facade's instantiation) use
// the native batched query path and agree with Merged.
func TestSnapshotMatchesMergedForSketches(t *testing.T) {
	cfg := sketch.Config{N: 5000, Rows: 128, Depth: 7}
	mk := func() sketch.Sketch {
		return must(sketch.NewCountSketch(cfg, rand.New(rand.NewSource(21))))
	}
	merge := func(dst, src sketch.Sketch) error {
		return dst.(sketch.Linear).MergeFrom(src.(sketch.Linear))
	}
	sh := New(3, mk, merge)
	r := rand.New(rand.NewSource(22))
	for u := 0; u < 20000; u++ {
		sh.Update(u, r.Intn(cfg.N), float64(r.Intn(5)-1))
	}
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sh.Merged()
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, cfg.N/53)
	for i := 0; i < cfg.N; i += 53 {
		idx = append(idx, i)
	}
	out := make([]float64, len(idx))
	snap.QueryBatch(idx, out)
	for j, i := range idx {
		if want := merged.Query(i); out[j] != want {
			t.Fatalf("query %d: snapshot %v, merged %v", i, out[j], want)
		}
	}
}
