package concurrent

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

func mkExact(n int) func() *stream.Exact {
	return func() *stream.Exact { return stream.NewExact(n) }
}

func mergeExact(dst, src *stream.Exact) error {
	for i, v := range src.Vector() {
		if v != 0 {
			dst.Update(i, v)
		}
	}
	return nil
}

// A published snapshot is immutable: writes that land after the
// refresh must not change it, must flip Stale, and must appear in the
// next refreshed snapshot.
func TestSnapshotStalenessSemantics(t *testing.T) {
	sh := New(4, mkExact(100), mergeExact)
	sh.Update(0, 7, 3)
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stale() {
		t.Fatal("fresh snapshot reports stale")
	}
	if got := snap.Query(7); got != 3 {
		t.Fatalf("Query(7) = %v, want 3", got)
	}

	sh.Update(1, 7, 10)
	if !snap.Stale() {
		t.Fatal("snapshot not stale after a write")
	}
	if got := snap.Query(7); got != 3 {
		t.Fatalf("published snapshot changed under a writer: Query(7) = %v", got)
	}

	next, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Query(7); got != 13 {
		t.Fatalf("refreshed Query(7) = %v, want 13", got)
	}
	if got := snap.Query(7); got != 3 {
		t.Fatalf("old snapshot changed by refresh: Query(7) = %v", got)
	}
}

// Refresh is epoch-gated: an unchanged Sharded republishes the same
// snapshot, and a refresh after writes to one shard freezes only that
// shard — observable through the replica-constructor call count.
func TestRefreshMergesOnlyChangedShards(t *testing.T) {
	var mkCalls atomic.Int64
	mk := func() *stream.Exact {
		mkCalls.Add(1)
		return stream.NewExact(50)
	}
	sh := New(4, mk, mergeExact)
	if got := mkCalls.Load(); got != 4 { // shards only: frozen copies are lazy
		t.Fatalf("New made %d replicas, want 4", got)
	}

	snap1, err := sh.Refresh() // first publish: 1 mk for the merged sum
	if err != nil {
		t.Fatal(err)
	}
	if got := mkCalls.Load(); got != 5 {
		t.Fatalf("first refresh made %d replicas, want 5", got)
	}

	snap2, err := sh.Refresh() // nothing changed: no mk, same snapshot
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != snap1 {
		t.Fatal("refresh of an unchanged Sharded built a new snapshot")
	}
	if got := mkCalls.Load(); got != 5 {
		t.Fatalf("no-op refresh made replicas: %d, want 5", got)
	}

	sh.Update(2, 1, 1) // dirty exactly one shard (slot 2 of 4)
	if _, err := sh.Refresh(); err != nil {
		t.Fatal(err)
	}
	// One freeze for the dirty shard + one merged sum: 2 more.
	if got := mkCalls.Load(); got != 7 {
		t.Fatalf("one-dirty-shard refresh made %d extra replicas, want 2", got-5)
	}
}

// Concurrent readers on snapshots while writers batch-update: every
// batch adds the same delta to coordinates 0 and 1, so any snapshot
// that tore a batch — or a merge — would show x[0] != x[1]. Successive
// snapshots must also be monotone on an insert-only stream. Run with
// -race.
func TestSnapshotReadersNeverSeeTornMerge(t *testing.T) {
	const writers, batches = 4, 300
	sh := New(writers, mkExact(10), mergeExact)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := 0; u < batches; u++ {
				sh.UpdateBatch(w, []int{0, 1}, []float64{1, 1})
			}
		}(w)
	}

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			last := math.Inf(-1)
			out := make([]float64, 2)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				var snap *Snapshot[*stream.Exact]
				var err error
				if g%2 == 0 {
					snap, err = sh.Snapshot()
				} else {
					snap, err = sh.Refresh()
				}
				if err != nil {
					t.Error(err)
					return
				}
				snap.QueryBatch([]int{0, 1}, out)
				if out[0] != out[1] {
					t.Errorf("torn merge: x[0]=%v x[1]=%v", out[0], out[1])
					return
				}
				if out[0] < last {
					t.Errorf("snapshot went backwards: %v after %v", out[0], last)
					return
				}
				last = out[0]
			}
		}(g)
	}

	wg.Wait()
	close(stopReaders)
	readers.Wait()

	final, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(writers * batches)
	if got := final.Query(0); got != want {
		t.Fatalf("final x[0] = %v, want %v", got, want)
	}
}

// The sharded QueryBatch refreshes on staleness and falls back to a
// Query loop for replicas without a native batched path.
func TestShardedQueryBatch(t *testing.T) {
	sh := New(2, mkExact(100), mergeExact)
	sh.UpdateBatch(0, []int{3, 7}, []float64{2, 5})
	out := make([]float64, 2)
	if err := sh.QueryBatch([]int{3, 7}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 5 {
		t.Fatalf("QueryBatch = %v, want [2 5]", out)
	}
	sh.Update(1, 3, 1) // must be folded in by the next batched read
	if err := sh.QueryBatch([]int{3, 7}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("stale read: x[3] = %v, want 3", out[0])
	}

	// plainCounter has no QueryBatch: the snapshot loops.
	plain := New(2, func() *plainCounter { return &plainCounter{x: make([]float64, 10)} },
		func(dst, src *plainCounter) error {
			for i, v := range src.x {
				dst.x[i] += v
			}
			return nil
		})
	plain.Update(0, 4, 9)
	pout := make([]float64, 1)
	if err := plain.QueryBatch([]int{4}, pout); err != nil {
		t.Fatal(err)
	}
	if pout[0] != 9 {
		t.Fatalf("fallback QueryBatch = %v, want 9", pout[0])
	}
}

// A refresh that froze shard state but failed to publish (merge error
// in the re-sum) must not let the next refresh republish the stale
// view as if it were current — the frozen writes have to surface once
// the fault clears.
func TestRefreshRetriesAfterFailedPublish(t *testing.T) {
	sh := New(2, mkExact(10), mergeExact)
	if _, err := sh.Refresh(); err != nil { // publish the empty view
		t.Fatal(err)
	}
	sh.Update(0, 3, 5)

	// The freeze copy is the first merge call of the next refresh, the
	// re-sum the second: let the freeze pass, fail the sum.
	calls := 0
	sh.merge = func(dst, src *stream.Exact) error {
		if calls++; calls > 1 {
			return errFault
		}
		return mergeExact(dst, src)
	}
	if _, err := sh.Refresh(); err == nil {
		t.Fatal("refresh should surface the sum-merge error")
	}
	sh.merge = mergeExact

	snap, err := sh.Refresh()
	if err != nil {
		t.Fatalf("refresh after fault cleared: %v", err)
	}
	if got := snap.Query(3); got != 5 {
		t.Fatalf("write frozen before the failed publish was dropped: Query(3) = %v, want 5", got)
	}
}

var errFault = errors.New("injected merge fault")

// A batch that panics half-applied through the element-wise fallback
// still bumps the shard epoch, so the partial write reaches the next
// snapshot instead of silently diverging from Merged.
func TestPartialFallbackBatchStaysVisibleToSnapshots(t *testing.T) {
	sh := New(1, func() *plainCounter { return &plainCounter{x: make([]float64, 10)} },
		func(dst, src *plainCounter) error {
			for i, v := range src.x {
				dst.x[i] += v
			}
			return nil
		})
	if _, err := sh.Refresh(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range element should panic")
			}
		}()
		// plainCounter has no UpdateBatch and no pre-validation: the
		// first element lands before the second panics.
		sh.UpdateBatch(0, []int{4, 99}, []float64{7, 1})
	}()
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Query(4); got != 7 {
		t.Fatalf("partial batch invisible to snapshot: Query(4) = %v, want 7", got)
	}
}

// Snapshots of a sketch-typed Sharded (the facade's instantiation) use
// the native batched query path and agree with Merged.
func TestSnapshotMatchesMergedForSketches(t *testing.T) {
	cfg := sketch.Config{N: 5000, Rows: 128, Depth: 7}
	mk := func() sketch.Sketch {
		return must(sketch.NewCountSketch(cfg, rand.New(rand.NewSource(21))))
	}
	merge := func(dst, src sketch.Sketch) error {
		return dst.(sketch.Linear).MergeFrom(src.(sketch.Linear))
	}
	sh := New(3, mk, merge)
	r := rand.New(rand.NewSource(22))
	for u := 0; u < 20000; u++ {
		sh.Update(u, r.Intn(cfg.N), float64(r.Intn(5)-1))
	}
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sh.Merged()
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, cfg.N/53)
	for i := 0; i < cfg.N; i += 53 {
		idx = append(idx, i)
	}
	out := make([]float64, len(idx))
	snap.QueryBatch(idx, out)
	for j, i := range idx {
		if want := merged.Query(i); out[j] != want {
			t.Fatalf("query %d: snapshot %v, merged %v", i, out[j], want)
		}
	}
}

// recordingExact is an Exact whose batched query path records the
// batch buffer it was handed and panics on an out-of-range index —
// the shape of a poisoned request a serving layer recovers from.
type recordingExact struct {
	*stream.Exact
	last *int // &idx[0] of the most recent QueryBatch call
}

func (r *recordingExact) QueryBatch(idx []int, out []float64) {
	r.last = &idx[0]
	for j, i := range idx {
		if i < 0 || i >= r.Dim() {
			panic("recordingExact: index out of range")
		}
		out[j] = r.Exact.Query(i)
	}
}

// A panicking replica QueryBatch must not leak the pooled point-query
// buffers: Snapshot.Query returns them by defer, so the next query on
// the same goroutine reuses the very same buffer instead of allocating
// a fresh one (observable through the batch pointer the replica saw).
// sync.Pool intentionally drops a random fraction of Puts under the
// race detector (and a goroutine can migrate off the P holding the
// private slot), so one iteration proving reuse is enough while a
// single miss proves nothing — with the pre-fix leak the recorded
// pointer keeps the buffer alive, its address can never be recycled,
// and no amount of retrying would ever see it again.
func TestSnapshotQueryReturnsPooledBuffersOnPanic(t *testing.T) {
	mk := func() *recordingExact { return &recordingExact{Exact: stream.NewExact(8)} }
	merge := func(dst, src *recordingExact) error { return mergeExact(dst.Exact, src.Exact) }
	sh := New(1, mk, merge)
	sh.Update(0, 1, 5)
	snap, err := sh.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	rec := snap.Sketch()

	for attempt := 0; attempt < 50; attempt++ {
		if got := snap.Query(1); got != 5 {
			t.Fatalf("Query(1) = %v, want 5", got)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range snapshot Query did not panic")
				}
			}()
			snap.Query(99)
		}()
		leaked := rec.last
		if got := snap.Query(2); got != 0 {
			t.Fatalf("Query(2) = %v, want 0", got)
		}
		if rec.last == leaked {
			return
		}
	}
	t.Fatal("panicking QueryBatch leaked the pooled point buffers: no later Query ever saw the same buffer again")
}

// equalEpochs must fail closed on a length mismatch: a shard-count
// divergence (e.g. a restore-path regression swapping in a different
// replica set) must read as "stale", never as a silent prefix match.
func TestEqualEpochsLengthMismatch(t *testing.T) {
	if equalEpochs([]uint64{1}, []uint64{1, 2}) {
		t.Fatal("prefix of a longer vector compared equal")
	}
	if equalEpochs([]uint64{1, 2}, []uint64{1}) {
		t.Fatal("longer vector compared equal to its prefix")
	}
	if !equalEpochs([]uint64{3, 4}, []uint64{3, 4}) {
		t.Fatal("identical vectors compared unequal")
	}
	if equalEpochs([]uint64{3, 4}, []uint64{3, 5}) {
		t.Fatal("differing vectors compared equal")
	}
	if !equalEpochs(nil, nil) {
		t.Fatal("two empty vectors compared unequal")
	}
}
