package concurrent

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sketch"
)

func mkL2(seed int64) func() *core.L2SR {
	return func() *core.L2SR {
		return core.NewL2SR(core.L2Config{N: 10000, K: 64, UseBiasHeap: true},
			rand.New(rand.NewSource(seed)))
	}
}

func mergeL2(dst, src *core.L2SR) error { return dst.MergeFrom(src) }

func TestNewPanicsOnBadShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, mkL2(1), mergeL2)
}

func TestSequentialMatchesPlain(t *testing.T) {
	sh := New(4, mkL2(2), mergeL2)
	plain := mkL2(2)()
	r := rand.New(rand.NewSource(3))
	for u := 0; u < 20000; u++ {
		i, d := r.Intn(10000), float64(r.Intn(7))
		sh.Update(u, i, d)
		plain.Update(i, d)
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i += 111 {
		if a, b := plain.Query(i), snap.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: plain %f sharded %f", i, a, b)
		}
	}
	if math.Abs(plain.Bias()-snap.Sketch().Bias()) > 1e-9 {
		t.Fatalf("bias mismatch: %f vs %f", plain.Bias(), snap.Sketch().Bias())
	}
}

// Concurrent writers from many goroutines; final snapshot must equal
// the deterministic total regardless of interleaving. Run with -race.
func TestConcurrentWritersExactTotal(t *testing.T) {
	const workers, perWorker, n = 8, 5000, 10000
	sh := New(workers, mkL2(4), mergeL2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for u := 0; u < perWorker; u++ {
				sh.Update(w, r.Intn(n), 1)
			}
		}(w)
	}
	wg.Wait()

	// Replay the same updates sequentially for the reference.
	ref := mkL2(4)()
	for w := 0; w < workers; w++ {
		r := rand.New(rand.NewSource(int64(100 + w)))
		for u := 0; u < perWorker; u++ {
			ref.Update(r.Intn(n), 1)
		}
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		if a, b := ref.Query(i), snap.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: ref %f sharded %f", i, a, b)
		}
	}
}

// Snapshots taken while writers are running must be internally
// consistent (no panics, no torn reads) — exercised under -race.
func TestSnapshotDuringWrites(t *testing.T) {
	const n = 10000
	sh := New(4, mkL2(5), mergeL2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
					sh.Update(w, r.Intn(n), 1)
				}
			}
		}(w)
	}
	for q := 0; q < 50; q++ {
		if _, err := sh.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestQueryAndAccessors(t *testing.T) {
	sh := New(3, mkL2(6), mergeL2)
	sh.Update(0, 42, 10)
	got, err := sh.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 5 {
		t.Errorf("Query(42) = %f, want ≈10", got)
	}
	if sh.Shards() != 3 {
		t.Errorf("Shards = %d", sh.Shards())
	}
	single := mkL2(6)().Words()
	if sh.Words() != 3*single {
		t.Errorf("Words = %d, want %d", sh.Words(), 3*single)
	}
}

// Sharding also works for the plain linear baselines.
func TestShardedCountSketch(t *testing.T) {
	cfg := sketch.Config{N: 5000, Rows: 128, Depth: 7}
	mk := func() *sketch.CountSketch {
		return must(sketch.NewCountSketch(cfg, rand.New(rand.NewSource(7))))
	}
	sh := New(2, mk, func(d, s *sketch.CountSketch) error { return d.MergeFrom(s) })
	plain := mk()
	r := rand.New(rand.NewSource(8))
	for u := 0; u < 10000; u++ {
		i, d := r.Intn(cfg.N), float64(r.Intn(5)-1)
		sh.Update(u, i, d)
		plain.Update(i, d)
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i += 53 {
		if a, b := plain.Query(i), snap.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

// A bad factory (mismatched seeds) must surface as a merge error, not
// silent corruption.
func TestMergeErrorSurfaces(t *testing.T) {
	seed := int64(0)
	mk := func() *core.L2SR {
		seed++
		return core.NewL2SR(core.L2Config{N: 100, K: 4}, rand.New(rand.NewSource(seed)))
	}
	sh := New(2, mk, mergeL2)
	sh.Update(0, 1, 1)
	if _, err := sh.Snapshot(); err == nil {
		t.Error("mismatched shard seeds should fail to merge")
	}
}

func BenchmarkShardedUpdateParallel(b *testing.B) {
	sh := New(8, mkL2(9), mergeL2)
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(10))
		slot := r.Int()
		i := 0
		for pb.Next() {
			sh.Update(slot, i%10000, 1)
			i++
		}
	})
}

func BenchmarkMerged(b *testing.B) {
	sh := New(8, mkL2(11), mergeL2)
	for u := 0; u < 100000; u++ {
		sh.Update(u, u%10000, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Merged(); err != nil {
			b.Fatal(err)
		}
	}
}

// Refresh with exactly one dirty shard per iteration: the epoch check
// skips the seven clean shards, so this measures one freeze plus the
// frozen-replica re-sum.
func BenchmarkRefreshOneDirtyShard(b *testing.B) {
	sh := New(8, mkL2(11), mergeL2)
	for u := 0; u < 100000; u++ {
		sh.Update(u, u%10000, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Update(0, i%10000, 1)
		if _, err := sh.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// Snapshot on a quiet Sharded is the serving fast path: one atomic
// pointer load, no locks, no merging.
func BenchmarkSnapshotPublished(b *testing.B) {
	sh := New(8, mkL2(11), mergeL2)
	for u := 0; u < 100000; u++ {
		sh.Update(u, u%10000, 1)
	}
	if _, err := sh.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// Regression test for the shard-mutex deadlock: a writer that panics
// inside sk.Update (out-of-range index) must release the shard lock on
// the way out, so later writers on the same shard still make progress.
func TestPanickingUpdateDoesNotDeadlockShard(t *testing.T) {
	sh := New(1, mkL2(12), mergeL2) // one shard: every slot shares the mutex
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range update should panic")
			}
		}()
		sh.Update(0, 1_000_000, 1) // N is 10000
	}()

	done := make(chan struct{})
	go func() {
		sh.Update(1, 42, 5) // same (only) shard as the panicking writer
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second writer blocked: shard mutex leaked by panicking update")
	}
	if v, err := sh.Query(42); err != nil || v == 0 {
		t.Fatalf("Query(42) = %v, %v after recovery", v, err)
	}
}

// The batched entry point holds the same invariant.
func TestPanickingUpdateBatchDoesNotDeadlockShard(t *testing.T) {
	sh := New(1, mkL2(13), mergeL2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid batch should panic")
			}
		}()
		sh.UpdateBatch(0, []int{1, 1_000_000}, []float64{1, 1})
	}()

	done := make(chan struct{})
	go func() {
		sh.UpdateBatch(1, []int{7, 7}, []float64{2, 3})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second writer blocked: shard mutex leaked by panicking batch")
	}
	// The rejected batch is all-or-nothing AND the later batch landed.
	if v, err := sh.Query(7); err != nil || v == 0 {
		t.Fatalf("Query(7) = %v, %v after recovery", v, err)
	}
}

// Batched sharded ingestion must produce the same final counters as
// element-wise sharded ingestion (same slots, same stream order).
func TestUpdateBatchMatchesElementwise(t *testing.T) {
	const n, rounds = 10000, 50
	batched := New(4, mkL2(14), mergeL2)
	seq := New(4, mkL2(14), mergeL2)
	r := rand.New(rand.NewSource(15))
	for round := 0; round < rounds; round++ {
		m := 1 + r.Intn(400)
		idx := make([]int, m)
		deltas := make([]float64, m)
		for j := range idx {
			idx[j] = r.Intn(n)
			deltas[j] = float64(1 + r.Intn(5))
		}
		batched.UpdateBatch(round, idx, deltas)
		for j := range idx {
			seq.Update(round, idx[j], deltas[j])
		}
	}
	a, err := batched.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := seq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 37 {
		if x, y := a.Query(i), b.Query(i); x != y {
			t.Fatalf("query %d: batched %v, element-wise %v", i, x, y)
		}
	}
	if a.Sketch().Bias() != b.Sketch().Bias() {
		t.Fatalf("bias: batched %v, element-wise %v", a.Sketch().Bias(), b.Sketch().Bias())
	}
}

// UpdateBatch under concurrent writers, checked with -race: the final
// snapshot must carry every batch exactly once.
func TestConcurrentBatchWritersExactTotal(t *testing.T) {
	const workers, batches, batchLen, n = 8, 200, 64, 10000
	sh := New(workers, mkL2(16), mergeL2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + w)))
			idx := make([]int, batchLen)
			deltas := make([]float64, batchLen)
			for u := 0; u < batches; u++ {
				for j := range idx {
					idx[j] = r.Intn(n)
					deltas[j] = 1
				}
				sh.UpdateBatch(w, idx, deltas)
			}
		}(w)
	}
	wg.Wait()

	ref := mkL2(16)()
	for w := 0; w < workers; w++ {
		r := rand.New(rand.NewSource(int64(200 + w)))
		for u := 0; u < batches*batchLen; u++ {
			ref.Update(r.Intn(n), 1)
		}
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		if a, b := ref.Query(i), snap.Query(i); math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: ref %f sharded %f", i, a, b)
		}
	}
}

// Replicas without a native batched path absorb batches element-wise
// under the single lock — same counters either way.
func TestUpdateBatchFallbackForPlainMergeable(t *testing.T) {
	mk := func() *plainCounter { return &plainCounter{x: make([]float64, 100)} }
	sh := New(2, mk, func(dst, src *plainCounter) error {
		for i, v := range src.x {
			dst.x[i] += v
		}
		return nil
	})
	sh.UpdateBatch(0, []int{3, 3, 7}, []float64{1, 2, 4})
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Query(3) != 3 || snap.Query(7) != 4 {
		t.Fatalf("fallback batch lost updates: x[3]=%v x[7]=%v", snap.Query(3), snap.Query(7))
	}
}

// plainCounter is a Mergeable with no UpdateBatch method.
type plainCounter struct{ x []float64 }

func (p *plainCounter) Update(i int, delta float64) { p.x[i] += delta }
func (p *plainCounter) Query(i int) float64         { return p.x[i] }
func (p *plainCounter) Dim() int                    { return len(p.x) }
func (p *plainCounter) Words() int                  { return len(p.x) }

func BenchmarkShardedUpdateBatchParallel(b *testing.B) {
	const batchLen = 1024
	sh := New(8, mkL2(17), mergeL2)
	var nextSlot atomic.Int64 // distinct slot per goroutine: writers spread over shards
	b.RunParallel(func(pb *testing.PB) {
		slot := int(nextSlot.Add(1))
		r := rand.New(rand.NewSource(int64(18 + slot)))
		idx := make([]int, batchLen)
		deltas := make([]float64, batchLen)
		for j := range idx {
			idx[j] = r.Intn(10000)
			deltas[j] = 1
		}
		for pb.Next() {
			sh.UpdateBatch(slot, idx, deltas)
		}
	})
	b.ReportMetric(float64(b.N*batchLen), "updates")
}
