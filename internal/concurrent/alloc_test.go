// AllocsPerRun gates are meaningless under the race detector: race-
// instrumented sync.Pool randomly drops Puts, so pooled paths
// legitimately allocate. The lexical hotpathalloc analyzer still
// covers these paths in race builds.
//go:build !race

package concurrent

import (
	"math/rand"
	"testing"
)

// Runtime gates of the hot-path zero-allocation contract (the lexical
// half is the hotpathalloc analyzer) for the lock-free serving path:
// once a snapshot is published and the replica's query caches are
// warm, Snapshot.Query and Snapshot.QueryBatch run with zero
// allocations per call — the point-query buffers and the batched
// paths' scratch all come from pools.
func TestSnapshotQueryAllocFree(t *testing.T) {
	sh := New(4, mkL2(9), mergeL2)
	r := rand.New(rand.NewSource(10))
	for u := 0; u < 5000; u++ {
		sh.Update(u, r.Intn(10000), float64(r.Intn(5)))
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 300)
	out := make([]float64, 300)
	for j := range idx {
		idx[j] = r.Intn(10000)
	}
	snap.QueryBatch(idx, out) // warm-up: primes the scratch pools
	_ = snap.Query(idx[0])

	if n := testing.AllocsPerRun(50, func() { _ = snap.Query(idx[0]) }); n != 0 {
		t.Errorf("Snapshot.Query allocates %.1f per call in steady state", n)
	}
	if n := testing.AllocsPerRun(50, func() { snap.QueryBatch(idx, out) }); n != 0 {
		t.Errorf("Snapshot.QueryBatch allocates %.1f per call in steady state", n)
	}
}
