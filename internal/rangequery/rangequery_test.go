package rangequery

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/workload"
)

// exactFactory builds exact per-level accumulators, isolating the
// dyadic plumbing from sketch noise.
func exactFactory(_, size int, _ *rand.Rand) PointSketch { return stream.NewExact(size) }

// cmFactory builds wide Count-Median levels (quasi-exact).
func cmFactory(s, d int) Factory {
	return func(_, size int, r *rand.Rand) PointSketch {
		// Rows stay at s even when the level is smaller: small top
		// levels are dense (all mass aggregated into few coordinates),
		// so shrinking the row width there causes heavy collisions.
		return must(sketch.NewCountMedian(sketch.Config{N: size, Rows: s, Depth: d}, r))
	}
}

// l2Factory builds bias-aware levels.
func l2Factory(k int) Factory {
	return func(_, size int, r *rand.Rand) PointSketch {
		kk := k
		if 4*kk > size {
			kk = size / 4
		}
		if kk < 1 {
			kk = 1
		}
		return core.NewL2SR(core.L2Config{N: size, K: kk, UseBiasHeap: true}, r)
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, exactFactory, rand.New(rand.NewSource(1)))
}

func TestLevelCount(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {1024, 11}, {1000, 11},
	} {
		s := New(c.n, exactFactory, rand.New(rand.NewSource(2)))
		if s.Levels() != c.want {
			t.Errorf("n=%d: Levels = %d, want %d", c.n, s.Levels(), c.want)
		}
		if s.Dim() != c.n {
			t.Errorf("n=%d: Dim = %d", c.n, s.Dim())
		}
	}
}

func TestRangeSumExactLevels(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 64, 100, 1000} {
		s := New(n, exactFactory, r)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(r.Intn(100) - 20)
			s.Update(i, x[i])
		}
		prefix := make([]float64, n+1)
		for i, v := range x {
			prefix[i+1] = prefix[i] + v
		}
		// Exhaustive on small n, sampled on large.
		step := 1
		if n > 100 {
			step = 13
		}
		for lo := 0; lo <= n; lo += step {
			for hi := lo; hi <= n; hi += step {
				want := prefix[hi] - prefix[lo]
				if got := s.RangeSum(lo, hi); math.Abs(got-want) > 1e-9 {
					t.Fatalf("n=%d: RangeSum(%d,%d) = %f, want %f", n, lo, hi, got, want)
				}
			}
		}
		if math.Abs(s.Total()-prefix[n]) > 1e-9 {
			t.Fatalf("n=%d: Total = %f, want %f", n, s.Total(), prefix[n])
		}
	}
}

func TestRangeSumPanicsOnBadRange(t *testing.T) {
	s := New(10, exactFactory, rand.New(rand.NewSource(4)))
	for _, c := range [][2]int{{-1, 5}, {0, 11}, {7, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RangeSum(%d,%d) should panic", c[0], c[1])
				}
			}()
			s.RangeSum(c[0], c[1])
		}()
	}
}

func TestUpdatePanicsOutOfRange(t *testing.T) {
	s := New(10, exactFactory, rand.New(rand.NewSource(5)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Update(10, 1)
}

// Property: with exact levels, RangeSum always equals the direct sum,
// for random dimensions, vectors and ranges.
func TestRangeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		s := New(n, exactFactory, r)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
			s.Update(i, x[i])
		}
		for trial := 0; trial < 20; trial++ {
			lo := r.Intn(n + 1)
			hi := lo + r.Intn(n+1-lo)
			var want float64
			for i := lo; i < hi; i++ {
				want += x[i]
			}
			if math.Abs(s.RangeSum(lo, hi)-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Count-Median levels are accurate on sparse vectors (small ℓ1 tail).
// On dense *biased* vectors they overestimate badly — which is exactly
// the paper's motivation and what TestRangeSumBiasAwareLevels below
// shows the ℓ2-S/R levels fix.
func TestRangeSumWithCountMedianLevels(t *testing.T) {
	const n = 4096
	r := rand.New(rand.NewSource(6))
	s := New(n, cmFactory(512, 9), r)
	x := make([]float64, n)
	for j := 0; j < 50; j++ { // sparse: 50 non-zeros
		x[r.Intn(n)] = float64(10 + r.Intn(90))
	}
	for i, v := range x {
		if v != 0 {
			s.Update(i, v)
		}
	}
	var exact float64
	for _, v := range x[100:1100] {
		exact += v
	}
	got := s.RangeSum(100, 1100)
	if math.Abs(got-exact) > 0.05*exact+1 {
		t.Errorf("RangeSum = %f, want within 5%% of %f", got, exact)
	}
}

// The bias problem propagates to range queries: on dense biased data,
// Count-Median levels overshoot while bias-aware levels stay accurate.
func TestRangeSumBiasedDataCMOvershoots(t *testing.T) {
	const n = 4096
	r := rand.New(rand.NewSource(66))
	cm := New(n, cmFactory(512, 9), rand.New(rand.NewSource(67)))
	l2 := New(n, l2Factory(64), rand.New(rand.NewSource(68)))
	x := workload.Gaussian{Bias: 10, Sigma: 2}.Vector(n, r)
	for i, v := range x {
		cm.Update(i, v)
		l2.Update(i, v)
	}
	var exact float64
	for _, v := range x[100:1100] {
		exact += v
	}
	cmErr := math.Abs(cm.RangeSum(100, 1100) - exact)
	l2Err := math.Abs(l2.RangeSum(100, 1100) - exact)
	if l2Err >= cmErr {
		t.Errorf("bias-aware range error %f should beat Count-Median %f", l2Err, cmErr)
	}
}

// Bias-aware levels: on biased data, range sums from an ℓ2-S/R stack
// should be accurate because each level independently discovers the
// (scaled) bias.
func TestRangeSumBiasAwareLevels(t *testing.T) {
	const n = 8192
	r := rand.New(rand.NewSource(7))
	s := New(n, l2Factory(64), r)
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	for i, v := range x {
		s.Update(i, v)
	}
	for _, c := range [][2]int{{0, n}, {500, 2500}, {4000, 4100}} {
		var exact float64
		for _, v := range x[c[0]:c[1]] {
			exact += v
		}
		got := s.RangeSum(c[0], c[1])
		if math.Abs(got-exact) > 0.10*exact+200 {
			t.Errorf("RangeSum(%d,%d) = %f, want ≈%f", c[0], c[1], got, exact)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	const n = 4096
	r := rand.New(rand.NewSource(8))
	s := New(n, exactFactory, r)
	// Uniform unit mass: quantile q should land at ≈ q·n.
	for i := 0; i < n; i++ {
		s.Update(i, 1)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
		got := s.Quantile(q)
		want := int(q * n)
		if got < want-1 || got > want+1 {
			t.Errorf("Quantile(%g) = %d, want ≈%d", q, got, want)
		}
	}
}

func TestQuantileSkewed(t *testing.T) {
	const n = 1000
	s := New(n, exactFactory, rand.New(rand.NewSource(9)))
	// All mass on coordinate 700.
	s.Update(700, 100)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := s.Quantile(q); got != 700 {
			t.Errorf("Quantile(%g) = %d, want 700", q, got)
		}
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	s := New(10, exactFactory, rand.New(rand.NewSource(10)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Quantile(1.5)
}

func TestWordsAccumulates(t *testing.T) {
	s := New(1024, cmFactory(64, 3), rand.New(rand.NewSource(11)))
	// Levels: 1024, 512, ..., 1 → 11 levels, each 64×3 words.
	if got, want := s.Words(), 11*64*3; got != want {
		t.Errorf("Words = %d, want %d", got, want)
	}
}

func BenchmarkRangeSum(b *testing.B) {
	const n = 1 << 16
	r := rand.New(rand.NewSource(12))
	s := New(n, cmFactory(256, 7), r)
	for i := 0; i < n; i++ {
		s.Update(i, float64(r.Intn(50)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := i & (n/2 - 1)
		s.RangeSum(lo, lo+n/4)
	}
}

func BenchmarkDyadicUpdate(b *testing.B) {
	const n = 1 << 16
	s := New(n, cmFactory(256, 7), rand.New(rand.NewSource(13)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(i&(n-1), 1)
	}
}
