package rangequery_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/rangequery"
	"repro/internal/stream"
)

// Build a hybrid dyadic stack — exact counters for the small coarse
// levels, bias-aware sketches for the large fine levels — and answer
// range sums and quantiles over a counter vector.
func Example() {
	const n = 1 << 16

	factory := func(_, size int, r *rand.Rand) rangequery.PointSketch {
		if size <= 2048 {
			return stream.NewExact(size)
		}
		return core.NewL2SR(core.L2Config{N: size, K: 512, UseBiasHeap: true}, r)
	}
	rq := rangequery.New(n, factory, rand.New(rand.NewSource(1)))

	// Uniform traffic: 10 units everywhere.
	for i := 0; i < n; i++ {
		rq.Update(i, 10)
	}

	fmt.Printf("levels: %d\n", rq.Levels())
	fmt.Printf("sum over [1000, 2000): %.0f (exact 10000)\n", rq.RangeSum(1000, 2000))
	fmt.Printf("median of mass at index: %d (exact %d)\n", rq.Quantile(0.5), n/2)
	// Output:
	// levels: 17
	// sum over [1000, 2000): 10000 (exact 10000)
	// median of mass at index: 32767 (exact 32768)
}
