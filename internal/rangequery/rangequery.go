// Package rangequery answers range-sum and quantile queries over a
// sketched frequency vector — one of the §1 applications ("range
// query") of point-query sketches. It uses the classical dyadic
// decomposition: level ℓ sketches the 2^ℓ-block-aggregated vector
// x^(ℓ), so any interval [lo, hi) splits into at most 2·log₂ n dyadic
// blocks, each answered by one point query at its level.
//
// The level sketches are pluggable. With bias-aware sketches the
// per-level bias is handled automatically: if x has bias β, the
// level-ℓ aggregate has bias 2^ℓ·β, which each level's estimator
// discovers independently — no coordination needed.
package rangequery

import (
	"errors"
	"fmt"
	"math/rand"
)

// PointSketch is the per-level requirement: streaming point updates
// and point queries. Both the classical and the bias-aware sketches in
// this repository satisfy it.
type PointSketch interface {
	Update(i int, delta float64)
	Query(i int) float64
	Words() int
}

// Factory builds the sketch for one dyadic level; size is the level's
// vector dimension (≈ n/2^level). All randomness must come from r so
// sketches are reproducible and mergeable across sites.
type Factory func(level, size int, r *rand.Rand) PointSketch

// Sketch is a dyadic stack of point sketches.
type Sketch struct {
	n      int
	levels []level
}

type level struct {
	size int
	sk   PointSketch
}

// New creates a range-query sketch over vectors of dimension n.
func New(n int, f Factory, r *rand.Rand) *Sketch {
	if n <= 0 {
		panic(fmt.Sprintf("rangequery: dimension %d must be positive", n))
	}
	s := &Sketch{n: n}
	size := n
	for lv := 0; ; lv++ {
		s.levels = append(s.levels, level{size: size, sk: f(lv, size, r)})
		if size == 1 {
			break
		}
		size = (size + 1) / 2
	}
	return s
}

// ErrBadLevels is returned by NewFromLevels when the level sketches
// do not form the dyadic chain for the requested dimension.
var ErrBadLevels = errors.New("rangequery: level sketches do not form a dyadic chain")

// NewFromLevels reassembles a Sketch from pre-built level sketches —
// the checkpoint-restore path of the streaming codec. sks must hold
// exactly the dyadic chain for n (sizes n, ⌈n/2⌉, …, 1), finest
// first, each able to answer indices in [0, size) at its level.
func NewFromLevels(n int, sks []PointSketch) (*Sketch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: dimension %d must be positive", ErrBadLevels, n)
	}
	want := 1
	for size := n; size > 1; size = (size + 1) / 2 {
		want++
	}
	if len(sks) != want {
		return nil, fmt.Errorf("%w: %d level sketches for dimension %d, want %d", ErrBadLevels, len(sks), n, want)
	}
	s := &Sketch{n: n, levels: make([]level, want)}
	size := n
	for lv := range sks {
		if sks[lv] == nil {
			return nil, fmt.Errorf("%w: nil sketch for level %d", ErrBadLevels, lv)
		}
		s.levels[lv] = level{size: size, sk: sks[lv]}
		if size > 1 {
			size = (size + 1) / 2
		}
	}
	return s, nil
}

// ForEachLevel invokes f for every dyadic level, finest (level 0,
// size n) first — the checkpoint-capture path of the streaming codec.
// An error from f stops the walk and is returned.
func (s *Sketch) ForEachLevel(f func(level, size int, sk PointSketch) error) error {
	for lv := range s.levels {
		if err := f(lv, s.levels[lv].size, s.levels[lv].sk); err != nil {
			return err
		}
	}
	return nil
}

// Update applies x[i] += delta, propagating to every level.
func (s *Sketch) Update(i int, delta float64) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("rangequery: index %d out of range [0,%d)", i, s.n))
	}
	for lv := range s.levels {
		s.levels[lv].sk.Update(i>>uint(lv), delta)
	}
}

// RangeSum estimates Σ_{i ∈ [lo, hi)} x[i].
func (s *Sketch) RangeSum(lo, hi int) float64 {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("rangequery: bad range [%d,%d) over [0,%d)", lo, hi, s.n))
	}
	var sum float64
	for lo < hi {
		// Largest dyadic block starting at lo that fits in [lo, hi).
		lv := 0
		for lv+1 < len(s.levels) &&
			lo&((1<<uint(lv+1))-1) == 0 &&
			lo+(1<<uint(lv+1)) <= hi {
			lv++
		}
		sum += s.levels[lv].sk.Query(lo >> uint(lv))
		lo += 1 << uint(lv)
	}
	return sum
}

// PrefixSum estimates Σ_{i < hi} x[i].
func (s *Sketch) PrefixSum(hi int) float64 { return s.RangeSum(0, hi) }

// Total estimates the full vector mass from the top level.
func (s *Sketch) Total() float64 {
	top := s.levels[len(s.levels)-1]
	var sum float64
	for j := 0; j < top.size; j++ {
		sum += top.sk.Query(j)
	}
	return sum
}

// Quantile returns the smallest index i such that the estimated prefix
// mass through i reaches q·Total(), for q in [0, 1]. It assumes a
// non-negative vector (quantiles of signed vectors are undefined).
func (s *Sketch) Quantile(q float64) int {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("rangequery: quantile %f out of [0,1]", q))
	}
	target := q * s.Total()
	lo, hi := 0, s.n // invariant: PrefixSum(lo) < target <= PrefixSum(hi)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.PrefixSum(mid+1) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Words returns the total sketch size across levels.
func (s *Sketch) Words() int {
	var w int
	for _, lv := range s.levels {
		w += lv.sk.Words()
	}
	return w
}

// Levels returns the number of dyadic levels (≈ log₂ n + 1).
func (s *Sketch) Levels() int { return len(s.levels) }

// Dim returns the vector dimension n.
func (s *Sketch) Dim() int { return s.n }
