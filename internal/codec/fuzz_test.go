package codec

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/registry"
	"repro/internal/sketch"
)

// FuzzDecodeSketch feeds arbitrary bytes to the single-sketch loader
// (both versions share the entry point): it must reject garbage with
// an error — never panic, never allocate absurdly.
func FuzzDecodeSketch(f *testing.F) {
	desc := Desc{Algo: "countmin", N: 100, S: 16, D: 3, Seed: 1}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	sk.Update(5, 3)
	var v1, v2 bytes.Buffer
	if err := EncodeV1(&v1, desc, sk); err != nil {
		f.Fatal(err)
	}
	if err := EncodeSketch(&v2, desc, sk); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	tabDesc := desc
	tabDesc.Hash = sketch.HashTabulation
	tabSk, err := registry.SafeNew(tabDesc.Algo, tabDesc.Shape())
	if err != nil {
		f.Fatal(err)
	}
	tabSk.Update(5, 3)
	var vt bytes.Buffer
	if err := EncodeSketch(&vt, tabDesc, tabSk); err != nil {
		f.Fatal(err)
	}
	f.Add(vt.Bytes())
	f.Add([]byte("BAS1garbage"))
	f.Add([]byte("BAS2garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, _, err := DecodeSketch(bytes.NewReader(data))
		if err == nil && sk == nil {
			t.Fatal("nil sketch with nil error")
		}
		if err == nil {
			// A successfully loaded sketch must answer queries.
			_ = sk.Query(0)
		}
	})
}

// FuzzSketchRoundTrip mutates the shape fields and checks that every
// accepted v2 encode/decode round-trips queries exactly.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(16), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, sRaw uint16, dRaw uint8) {
		s := 8 + int(sRaw)%64
		d := 1 + int(dRaw)%6
		desc := Desc{Algo: "countsketch", N: 200, S: s, D: d, Seed: seed & (1<<63 - 1)}
		orig := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
		for i := 0; i < 200; i++ {
			orig.Update(i, float64(i%11))
		}
		var buf bytes.Buffer
		if err := EncodeSketch(&buf, desc, orig); err != nil {
			t.Fatal(err)
		}
		loaded, gotDesc, err := DecodeSketch(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotDesc != desc {
			t.Fatalf("desc mismatch: %+v vs %+v", gotDesc, desc)
		}
		for i := 0; i < 200; i += 17 {
			if orig.Query(i) != loaded.Query(i) {
				t.Fatalf("query %d mismatch", i)
			}
		}
	})
}
