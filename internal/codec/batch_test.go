package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	idx := []int{0, 7, 99, 7}
	deltas := []float64{1, -2.5, 1e12, 0}
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, idx, deltas); err != nil {
		t.Fatal(err)
	}
	gi, gd, err := DecodeBatch(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(gi) != len(idx) {
		t.Fatalf("decoded %d elements, want %d", len(gi), len(idx))
	}
	for j := range idx {
		if gi[j] != idx[j] || math.Float64bits(gd[j]) != math.Float64bits(deltas[j]) {
			t.Fatalf("element %d: (%d, %v), want (%d, %v)", j, gi[j], gd[j], idx[j], deltas[j])
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left unread after one batch", buf.Len())
	}
}

func TestBatchRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	gi, gd, err := DecodeBatch(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(gi) != 0 || len(gd) != 0 {
		t.Fatalf("empty batch decoded to %d/%d elements", len(gi), len(gd))
	}
}

func TestEncodeBatchRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, []int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := EncodeBatch(&buf, []int{-1}, []float64{1}); err == nil {
		t.Error("negative index accepted")
	}
	if err := EncodeBatch(&buf, []int{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN delta accepted")
	}
	if err := EncodeBatch(&buf, make([]int, MaxBatchLen+1), make([]float64, MaxBatchLen+1)); err == nil {
		t.Error("over-length batch accepted")
	}
}

// validBatchBytes returns a well-formed one-element batch frame.
func validBatchBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, []int{5}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeBatchHostile(t *testing.T) {
	valid := validBatchBytes(t)

	overCount := func() []byte {
		// Claimed element count over MaxBatchLen with a matching huge
		// section length: must be rejected by the count bound, not
		// allocated.
		payload := binary.LittleEndian.AppendUint32(nil, MaxBatchLen+1)
		var buf bytes.Buffer
		buf.WriteString(MagicV2)
		buf.WriteByte(KindBatch)
		var nsec [4]byte
		binary.LittleEndian.PutUint32(nsec[:], 1)
		buf.Write(nsec[:])
		var sh [9]byte
		sh[0] = secBatch
		binary.LittleEndian.PutUint64(sh[1:], 4+16*uint64(MaxBatchLen+1))
		buf.Write(sh[:])
		buf.Write(payload)
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
		dim  int
		want string // substring of the error
	}{
		{"garbage magic", []byte("NOPE....."), 100, "bad magic"},
		{"truncated", valid[:len(valid)-3], 100, "reading"},
		{"wrong kind", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = KindSketch
			return b
		}(), 100, "not an update batch"},
		{"wrong section tag", func() []byte {
			b := append([]byte(nil), valid...)
			b[9] = secState
			return b
		}(), 100, "section tag"},
		{"index out of range", valid, 5, "out of range"},
		{"count/length mismatch", func() []byte {
			b := append([]byte(nil), valid...)
			// bump the element count without extending the payload
			binary.LittleEndian.PutUint32(b[18:], 2)
			return b
		}(), 100, "want"},
		{"NaN delta", func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(b[len(b)-8:], math.Float64bits(math.NaN()))
			return b
		}(), 100, "NaN"},
		{"implausible count", overCount, 100, "exceeds"},
		{"bad dim", valid, 0, "dimension"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeBatch(bytes.NewReader(tc.data), tc.dim)
			if err == nil {
				t.Fatal("hostile batch decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A batch frame is framed like every other v2 container, so frames
// compose back to back on one stream.
func TestBatchFramesCompose(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, []int{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBatch(&buf, []int{2}, []float64{4}); err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 2; want++ {
		gi, _, err := DecodeBatch(&buf, 10)
		if err != nil {
			t.Fatal(err)
		}
		if gi[0] != want {
			t.Fatalf("frame decoded index %d, want %d", gi[0], want)
		}
	}
}
