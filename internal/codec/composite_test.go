package codec

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/concurrent"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/window"
)

func mkFor(t testing.TB, desc Desc) func() sketch.Sketch {
	t.Helper()
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		t.Fatalf("unknown algo %q", desc.Algo)
	}
	return func() sketch.Sketch { return e.MustNew(desc.Shape()) }
}

// Sharded checkpoints must restore shard-for-shard: same per-shard
// states, same epochs, bit-identical snapshot answers — for hashed
// algorithms and for exact (carried as dense vectors).
func TestShardedCheckpointRoundTrip(t *testing.T) {
	for _, algo := range []string{"l2sr", "countmin", "exact"} {
		t.Run(algo, func(t *testing.T) {
			desc := Desc{Algo: algo, N: 400, S: 32, D: 3, Seed: 11}
			s := concurrent.New(3, mkFor(t, desc), registry.Merge)
			for u := 0; u < 4000; u++ {
				s.Update(u%3, (u*u+13)%desc.N, float64(1+u%5))
			}
			var buf bytes.Buffer
			if err := EncodeSharded(&buf, desc, s); err != nil {
				t.Fatal(err)
			}
			restored, gotDesc, err := DecodeSharded(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if gotDesc != desc {
				t.Fatalf("desc %+v != %+v", gotDesc, desc)
			}
			if restored.Shards() != s.Shards() {
				t.Fatalf("shards %d != %d", restored.Shards(), s.Shards())
			}
			// Per-shard equality, including epochs.
			var orig []uint64
			var origQ []float64
			_ = s.CheckpointShards(func(i int, epoch uint64, sk sketch.Sketch) error {
				orig = append(orig, epoch)
				origQ = append(origQ, sk.Query(7), sk.Query(111))
				return nil
			})
			var j int
			err = restored.CheckpointShards(func(i int, epoch uint64, sk sketch.Sketch) error {
				if epoch != orig[i] {
					t.Errorf("shard %d epoch %d != %d", i, epoch, orig[i])
				}
				if a, b := sk.Query(7), origQ[2*i]; a != b {
					t.Errorf("shard %d q7 %v != %v", i, a, b)
				}
				if a, b := sk.Query(111), origQ[2*i+1]; a != b {
					t.Errorf("shard %d q111 %v != %v", i, a, b)
				}
				j++
				return nil
			})
			if err != nil || j != 3 {
				t.Fatalf("walk: %v (%d shards)", err, j)
			}
			// Snapshot answers bit-identical.
			a, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < desc.N; i += 7 {
				if x, y := a.Query(i), b.Query(i); x != y {
					t.Fatalf("query %d: %v != %v", i, x, y)
				}
			}
		})
	}
}

// A checkpoint taken while writers are mid-flight must be decodable
// and internally consistent (run under -race in CI).
func TestShardedCheckpointUnderConcurrentWriters(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 256, S: 16, D: 3, Seed: 3}
	s := concurrent.New(4, mkFor(t, desc), registry.Merge)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for u := 0; ; u++ {
				select {
				case <-stop:
					return
				default:
					s.Update(slot, (u+slot)%desc.N, 1)
				}
			}
		}(w)
	}
	for k := 0; k < 20; k++ {
		var buf bytes.Buffer
		if err := EncodeSharded(&buf, desc, s); err != nil {
			t.Fatal(err)
		}
		restored, _, err := DecodeSharded(&buf)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := restored.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < desc.N; i += 17 {
			if v := snap.Query(i); v < 0 {
				t.Fatalf("negative count %v", v)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestDecodeShardedRejectsHostileStructure(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 200, S: 16, D: 2, Seed: 1}
	s := concurrent.New(2, mkFor(t, desc), registry.Merge)
	s.Update(0, 5, 1)
	var buf bytes.Buffer
	if err := EncodeSharded(&buf, desc, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	// Offsets: header 9, desc section 9+2+8+32 (algo "countmin"), then
	// shard-meta header at 9+9+42 = 60, its payload (count at 61+8=69).
	metaHdr := 9 + 9 + (2 + len("countmin") + 32)
	if valid[metaHdr] != secShardMeta {
		t.Fatalf("layout drifted: tag %d", valid[metaHdr])
	}
	countOff := metaHdr + 9
	cases := map[string][]byte{
		"v1 magic":    append([]byte(MagicV1), valid[4:]...),
		"wrong kind":  mutate(func(b []byte) { b[4] = KindRange }),
		"zero shards": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[countOff:], 0) }),
		"huge shards": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[countOff:], 1<<40) }),
		"shard count / meta length mismatch": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[countOff:], 3)
		}),
		"truncated": valid[:len(valid)-3],
	}
	for name, b := range cases {
		if _, _, err := DecodeSharded(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: DecodeSharded should fail", name)
		}
	}
	// Single-sketch bytes are not a sharded checkpoint.
	var single bytes.Buffer
	if err := EncodeSketch(&single, desc, bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSharded(&single); err == nil {
		t.Error("sketch container accepted as sharded checkpoint")
	}
}

// A sharded checkpoint whose header implies more replica memory than
// the bound must be rejected before the replica set is built.
func TestDecodeShardedBoundsTotalCells(t *testing.T) {
	// words·(depth+2) = 4M cells per shard: 65 shards crosses 2^28.
	desc := Desc{Algo: "countmin", N: 1000, S: 1 << 21, D: 8, Seed: 1}
	var buf bytes.Buffer
	secs := []section{
		{secDesc, descPayload(desc)},
	}
	const p = 4096
	meta := binary.LittleEndian.AppendUint64(nil, p)
	for i := 0; i < p; i++ {
		meta = binary.LittleEndian.AppendUint64(meta, 1)
	}
	secs = append(secs, section{secShardMeta, meta})
	if err := writeContainer(&buf, KindSharded, secs); err != nil {
		t.Fatal(err)
	}
	// Claim the full section count so decoding reaches the cell bound
	// (the shard states themselves are absent — the bound must fire
	// before any replica is allocated).
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[5:], 2+p)
	_, _, err := DecodeSharded(bytes.NewReader(raw))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("bound")) {
		t.Fatalf("cell-bound violation not rejected: %v", err)
	}
}

func TestDecodeShardedRejectsNonLinear(t *testing.T) {
	desc := Desc{Algo: "cmcu", N: 100, S: 16, D: 2, Seed: 1}
	var buf bytes.Buffer
	secs := []section{
		{secDesc, descPayload(desc)},
		{secShardMeta, binary.LittleEndian.AppendUint64(binary.LittleEndian.AppendUint64(nil, 1), 0)},
	}
	if err := writeContainer(&buf, KindSharded, secs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSharded(&buf); err == nil {
		t.Error("non-linear algorithm accepted as sharded checkpoint")
	}
}

// Windowed checkpoints must carry rotation state exactly: sequences,
// closed panes, open pane, pane width.
func TestWindowedCheckpointRoundTrip(t *testing.T) {
	desc := Desc{Algo: "countsketch", N: 300, S: 16, D: 3, Seed: 9}
	mk := mkFor(t, desc)
	win, err := window.New(window.Config{Panes: 4, Shards: 2}, mk, registry.Merge)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6000; u++ {
		if err := win.Update(u%2, (u*u+7)%desc.N, float64(1+u%3)); err != nil {
			t.Fatal(err)
		}
		if u%1000 == 999 {
			if err := win.Advance(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := EncodeWindowed(&buf, desc, win); err != nil {
		t.Fatal(err)
	}
	restored, gotDesc, err := DecodeWindowed(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotDesc != desc {
		t.Fatalf("desc %+v != %+v", gotDesc, desc)
	}
	if restored.Panes() != win.Panes() || restored.Live() != win.Live() {
		t.Fatalf("shape: %d/%d panes, %d/%d live",
			restored.Panes(), win.Panes(), restored.Live(), win.Live())
	}
	for i := 0; i < desc.N; i += 7 {
		a, err := win.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: %v != %v", i, a, b)
		}
	}
	// Rotation semantics survive: advancing both by the same amount
	// keeps them identical.
	if err := win.Advance(2); err != nil {
		t.Fatal(err)
	}
	if err := restored.Advance(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < desc.N; i += 13 {
		a, _ := win.Query(i)
		b, _ := restored.Query(i)
		if a != b {
			t.Fatalf("post-advance query %d: %v != %v", i, a, b)
		}
	}
}

// Clock-driven windows serialize their width but not their absolute
// deadlines: the restored window rotates on its own (injected) clock.
func TestWindowedCheckpointClockDriven(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 100, S: 16, D: 2, Seed: 2}
	mk := mkFor(t, desc)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	win, err := window.New(window.Config{Panes: 3, Shards: 1, Width: time.Minute, Now: clock}, mk, registry.Merge)
	if err != nil {
		t.Fatal(err)
	}
	if err := win.Update(0, 5, 10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeWindowed(&buf, desc, win); err != nil {
		t.Fatal(err)
	}
	restoredNow := time.Unix(5000, 0)
	restored, _, err := DecodeWindowed(&buf, func() time.Time { return restoredNow })
	if err != nil {
		t.Fatal(err)
	}
	if restored.Width() != time.Minute {
		t.Fatalf("width %v", restored.Width())
	}
	if v, _ := restored.Query(5); v != 10 {
		t.Fatalf("query = %v", v)
	}
	// Two pane widths later the restored window must have rotated the
	// update out of the open pane but kept it live as a closed pane.
	restoredNow = restoredNow.Add(2 * time.Minute)
	if v, _ := restored.Query(5); v != 10 {
		t.Fatalf("after 2 widths: query = %v (pane should still be live)", v)
	}
	restoredNow = restoredNow.Add(2 * time.Minute)
	if v, _ := restored.Query(5); v != 0 {
		t.Fatalf("after 4 widths: query = %v (pane should have expired)", v)
	}
}

func TestDecodeWindowedRejectsHostileStructure(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 100, S: 16, D: 2, Seed: 4}
	mk := mkFor(t, desc)
	win, err := window.New(window.Config{Panes: 3, Shards: 1}, mk, registry.Merge)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 100; u++ {
		_ = win.Update(0, u%100, 1)
	}
	_ = win.Advance(1)
	for u := 0; u < 50; u++ {
		_ = win.Update(0, u%100, 1)
	}
	var buf bytes.Buffer
	if err := EncodeWindowed(&buf, desc, win); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	metaHdr := 9 + 9 + (2 + len("countmin") + 32)
	if valid[metaHdr] != secWindowMeta {
		t.Fatalf("layout drifted: tag %d", valid[metaHdr])
	}
	payload := metaHdr + 9
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"zero panes": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[payload:], 0) }),
		"huge panes": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[payload:], 1<<30) }),
		"negative width": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[payload+8:], 1<<63)
		}),
		"closed count over panes": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[payload+24:], 99)
		}),
		"closed seq above open": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[payload+32:], 1<<40)
		}),
		"truncated": valid[:len(valid)-5],
	}
	for name, b := range cases {
		if _, _, err := DecodeWindowed(bytes.NewReader(b), nil); err == nil {
			t.Errorf("%s: DecodeWindowed should fail", name)
		}
	}
}

// Range checkpoints must restore every dyadic level, including exact
// coarse levels, with bit-identical range answers.
func TestRangeCheckpointRoundTrip(t *testing.T) {
	const n = 500
	// Build the level stack by hand: countsketch for fine levels,
	// exact for coarse ones — the standard engineering.
	var levels []Level
	size := n
	for lv := 0; ; lv++ {
		var d Desc
		if size > 32 {
			d = Desc{Algo: "countsketch", N: size, S: 16, D: 3, Seed: int64(100 + lv)}
		} else {
			d = Desc{Algo: "exact", N: size, S: 16, D: 3, Seed: 1}
		}
		levels = append(levels, Level{Desc: d, Sk: bench.Make(d.Algo, d.N, d.S, d.D, d.Seed)})
		if size == 1 {
			break
		}
		size = (size + 1) / 2
	}
	// Ingest the same stream into every level at its own granularity.
	update := func(lvls []Level, i int, delta float64) {
		for lv := range lvls {
			lvls[lv].Sk.Update(i>>uint(lv), delta)
		}
	}
	for u := 0; u < 3000; u++ {
		update(levels, (u*17+u*u)%n, float64(1+u%4))
	}
	var buf bytes.Buffer
	if err := EncodeRange(&buf, n, levels); err != nil {
		t.Fatal(err)
	}
	gotN, restored, err := DecodeRange(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != n || len(restored) != len(levels) {
		t.Fatalf("shape: n=%d levels=%d", gotN, len(restored))
	}
	for lv := range levels {
		if restored[lv].Desc != levels[lv].Desc {
			t.Fatalf("level %d desc %+v != %+v", lv, restored[lv].Desc, levels[lv].Desc)
		}
		for i := 0; i < levels[lv].Desc.N; i += 3 {
			if a, b := levels[lv].Sk.Query(i), restored[lv].Sk.Query(i); a != b {
				t.Fatalf("level %d query %d: %v != %v", lv, i, a, b)
			}
		}
	}
}

func TestEncodeRangeValidates(t *testing.T) {
	if err := EncodeRange(&bytes.Buffer{}, 0, nil); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := EncodeRange(&bytes.Buffer{}, 100, nil); err == nil {
		t.Error("missing levels accepted")
	}
}

func TestDecodeRangeRejectsHostileStructure(t *testing.T) {
	d := Desc{Algo: "countmin", N: 4, S: 16, D: 2, Seed: 1}
	mkLevels := func() []Level {
		var out []Level
		for _, sz := range []int{4, 2, 1} {
			ld := d
			ld.N = sz
			// countmin accepts any positive dim; keep desc valid.
			if ld.N < 1 {
				ld.N = 1
			}
			out = append(out, Level{Desc: ld, Sk: bench.Make(ld.Algo, ld.N, ld.S, ld.D, ld.Seed)})
		}
		return out
	}
	var buf bytes.Buffer
	if err := EncodeRange(&buf, 4, mkLevels()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	payload := 9 + 9 // range meta payload offset
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"zero dim": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[payload:], 0) }),
		"huge dim": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[payload:], 1<<40) }),
		"level count mismatch": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[payload+8:], 7)
		}),
		"truncated": valid[:len(valid)-2],
		"single-sketch bytes": func() []byte {
			var s bytes.Buffer
			_ = EncodeSketch(&s, d, bench.Make(d.Algo, d.N, d.S, d.D, d.Seed))
			return s.Bytes()
		}(),
	}
	for name, b := range cases {
		if _, _, err := DecodeRange(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: DecodeRange should fail", name)
		}
	}
}
