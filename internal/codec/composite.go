package codec

// Composite containers: checkpoint/restore for the serving structures
// built on top of single sketches. Encoding captures live structures
// under their own locks (per-shard for Sharded, the rotation lock for
// windows), so checkpoints taken under concurrent writers are a
// consistent sum of some interleaving of the updates — the same
// guarantee Merged gives. Decoding validates every count and length
// against the already-validated descriptor before structure-
// proportional allocation, and reads the state bytes before building
// replica sets, so a hostile header cannot imply allocations the
// input has not paid for.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/concurrent"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/window"
)

// EncodeSharded writes a checkpoint of s: the descriptor, the shard
// count with per-shard epochs, then every shard's state in shard
// order. Safe under concurrent writers (each shard is captured under
// its own lock).
func EncodeSharded(w io.Writer, desc Desc, s *concurrent.Sharded[sketch.Sketch]) error {
	p := s.Shards()
	meta := make([]byte, 0, 8+8*p)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(p))
	states := make([]section, 0, p)
	err := s.CheckpointShards(func(i int, epoch uint64, sk sketch.Sketch) error {
		tag, payload, err := captureState(sk)
		if err != nil {
			return err
		}
		meta = binary.LittleEndian.AppendUint64(meta, epoch)
		states = append(states, section{tag, payload})
		return nil
	})
	if err != nil {
		return err
	}
	secs := append([]section{
		{secDesc, descPayload(desc)},
		{secShardMeta, meta},
	}, states...)
	return writeContainer(w, KindSharded, secs)
}

// DecodeSharded reads a sharded checkpoint, reconstructing the replica
// set through the registry and restoring every shard's state and
// epoch. The restored Sharded serves exactly the answers the
// checkpointed one did: shard order, epochs, and therefore snapshot
// merge order are all preserved.
func DecodeSharded(r io.Reader) (*concurrent.Sharded[sketch.Sketch], Desc, error) {
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if version != 2 || kind != KindSharded {
		return nil, Desc{}, wrongKindError(version, kind, "sharded checkpoint")
	}
	return decodeShardedSections(r, nsec)
}

func decodeShardedSections(r io.Reader, nsec uint32) (*concurrent.Sharded[sketch.Sketch], Desc, error) {
	desc, e, err := readDescSection(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if !e.Linear {
		return nil, Desc{}, fmt.Errorf("codec: %s is not linear and cannot have been sharded", e.Name)
	}
	metaLen, err := readSectionHeader(r, secShardMeta)
	if err != nil {
		return nil, Desc{}, err
	}
	meta, err := readPayload(r, metaLen, 8+8*MaxShards)
	if err != nil {
		return nil, Desc{}, err
	}
	if len(meta) < 8 {
		return nil, Desc{}, fmt.Errorf("codec: shard metadata section truncated")
	}
	p := binary.LittleEndian.Uint64(meta)
	if p < 1 || p > MaxShards {
		return nil, Desc{}, fmt.Errorf("codec: implausible shard count %d", p)
	}
	if uint64(len(meta)) != 8+8*p {
		return nil, Desc{}, fmt.Errorf("codec: shard metadata is %d bytes for %d shards", len(meta), p)
	}
	if uint64(nsec) != 2+p {
		return nil, Desc{}, fmt.Errorf("codec: sharded container has %d sections for %d shards", nsec, p)
	}
	if p*desc.cells(e) > maxCheckpointCells {
		return nil, Desc{}, fmt.Errorf("codec: checkpoint implies %d cells across %d shards, over the %d bound",
			p*desc.cells(e), p, uint64(maxCheckpointCells))
	}
	epochs := make([]uint64, p)
	for i := range epochs {
		epochs[i] = binary.LittleEndian.Uint64(meta[8+8*i:])
	}
	// Read every shard's state bytes before building the replica set:
	// the input pays for the allocation it is about to cause.
	states := make([]section, p)
	for i := range states {
		tag, payload, err := readStateSection(r, desc, e)
		if err != nil {
			return nil, Desc{}, fmt.Errorf("codec: shard %d: %w", i, err)
		}
		states[i] = section{tag, payload}
	}
	mk, err := maker(desc, e)
	if err != nil {
		return nil, Desc{}, err
	}
	s := concurrent.New(int(p), mk, registry.Merge)
	err = s.RestoreShards(func(i int, sk sketch.Sketch) (uint64, error) {
		if err := restoreState(sk, states[i].tag, states[i].payload); err != nil {
			return 0, err
		}
		return epochs[i], nil
	})
	if err != nil {
		return nil, Desc{}, err
	}
	return s, desc, nil
}

// EncodeWindowed writes a checkpoint of win: the descriptor, the
// rotation metadata (pane count, clock-independent pane width, pane
// sequences), every closed pane's state oldest first, then the open
// pane as a nested sharded container. Absolute pane boundaries are
// deliberately not part of the format: on restore the open pane's
// clock restarts, only the width survives.
func EncodeWindowed(w io.Writer, desc Desc, win *window.Window[sketch.Sketch]) error {
	return win.Checkpoint(func(cp window.Checkpoint[sketch.Sketch]) error {
		meta := make([]byte, 0, 32+8*len(cp.ClosedSeqs))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(win.Panes()))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(win.Width()))
		meta = binary.LittleEndian.AppendUint64(meta, cp.CurSeq)
		meta = binary.LittleEndian.AppendUint64(meta, uint64(len(cp.ClosedSeqs)))
		for _, seq := range cp.ClosedSeqs {
			meta = binary.LittleEndian.AppendUint64(meta, seq)
		}
		secs := []section{
			{secDesc, descPayload(desc)},
			{secWindowMeta, meta},
		}
		for _, pane := range cp.Closed {
			tag, payload, err := captureState(pane)
			if err != nil {
				return err
			}
			secs = append(secs, section{tag, payload})
		}
		var open bytes.Buffer
		if err := EncodeSharded(&open, desc, cp.Open); err != nil {
			return err
		}
		secs = append(secs, section{secNested, open.Bytes()})
		return writeContainer(w, KindWindowed, secs)
	})
}

// DecodeWindowed reads a windowed checkpoint and reconstructs the
// window: closed panes restored oldest first, the open pane decoded
// from its nested sharded container, the cached closed-pane sum
// rebuilt with the same merge association the live window uses — so
// the restored window answers bit-identically. now is the clock for
// clock-driven rotation (nil means time.Now); the open pane's width
// timer restarts at restore time.
func DecodeWindowed(r io.Reader, now func() time.Time) (*window.Window[sketch.Sketch], Desc, error) {
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if version != 2 || kind != KindWindowed {
		return nil, Desc{}, wrongKindError(version, kind, "windowed checkpoint")
	}
	desc, e, err := readDescSection(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if !e.Linear {
		return nil, Desc{}, fmt.Errorf("codec: %s is not linear and cannot have been windowed", e.Name)
	}
	metaLen, err := readSectionHeader(r, secWindowMeta)
	if err != nil {
		return nil, Desc{}, err
	}
	meta, err := readPayload(r, metaLen, 32+8*MaxPanes)
	if err != nil {
		return nil, Desc{}, err
	}
	if len(meta) < 32 {
		return nil, Desc{}, fmt.Errorf("codec: window metadata section truncated")
	}
	panes := binary.LittleEndian.Uint64(meta)
	width := binary.LittleEndian.Uint64(meta[8:])
	curSeq := binary.LittleEndian.Uint64(meta[16:])
	closedCount := binary.LittleEndian.Uint64(meta[24:])
	if panes < 1 || panes > MaxPanes {
		return nil, Desc{}, fmt.Errorf("codec: implausible pane count %d", panes)
	}
	if width > math.MaxInt64 {
		return nil, Desc{}, fmt.Errorf("codec: implausible pane width %d", width)
	}
	if closedCount >= panes {
		return nil, Desc{}, fmt.Errorf("codec: %d closed panes do not fit a %d-pane window", closedCount, panes)
	}
	if uint64(len(meta)) != 32+8*closedCount {
		return nil, Desc{}, fmt.Errorf("codec: window metadata is %d bytes for %d closed panes", len(meta), closedCount)
	}
	if uint64(nsec) != 3+closedCount {
		return nil, Desc{}, fmt.Errorf("codec: windowed container has %d sections for %d closed panes", nsec, closedCount)
	}
	seqs := make([]uint64, closedCount)
	for i := range seqs {
		seqs[i] = binary.LittleEndian.Uint64(meta[32+8*i:])
	}
	mk, err := maker(desc, e)
	if err != nil {
		return nil, Desc{}, err
	}
	closed := make([]sketch.Sketch, closedCount)
	for i := range closed {
		tag, payload, err := readStateSection(r, desc, e)
		if err != nil {
			return nil, Desc{}, fmt.Errorf("codec: closed pane %d: %w", i, err)
		}
		pane := mk()
		if err := restoreState(pane, tag, payload); err != nil {
			return nil, Desc{}, fmt.Errorf("codec: closed pane %d: %w", i, err)
		}
		closed[i] = pane
	}
	open, openDesc, err := decodeNested(r, func(nr io.Reader) (*concurrent.Sharded[sketch.Sketch], Desc, error) {
		return DecodeSharded(nr)
	})
	if err != nil {
		return nil, Desc{}, fmt.Errorf("codec: open pane: %w", err)
	}
	if openDesc != desc {
		return nil, Desc{}, fmt.Errorf("codec: open pane descriptor %+v does not match window descriptor %+v", openDesc, desc)
	}
	if now == nil {
		now = time.Now
	}
	// The shell is built with a single shard: Restore discards its open
	// pane in favor of the decoded one and adopts that pane's shard
	// count, so pre-building open.Shards() replicas here would be pure
	// waste.
	win, err := window.New(window.Config{
		Panes:  int(panes),
		Shards: 1,
		Width:  time.Duration(width),
		Now:    now,
	}, mk, registry.Merge)
	if err != nil {
		return nil, Desc{}, fmt.Errorf("codec: %w", err)
	}
	if err := win.Restore(window.Checkpoint[sketch.Sketch]{
		CurSeq:     curSeq,
		ClosedSeqs: seqs,
		Closed:     closed,
		Open:       open,
	}); err != nil {
		return nil, Desc{}, fmt.Errorf("codec: %w", err)
	}
	return win, desc, nil
}

// Level is one dyadic level of a range checkpoint: the level sketch
// and the descriptor that rebuilds it.
type Level struct {
	Desc Desc
	Sk   sketch.Sketch
}

// EncodeRange writes a checkpoint of a dyadic range-query stack over
// base dimension n: the dimension and level count, then one nested
// sketch container per level, finest (size n) first. Exact levels are
// carried as dense vectors — the standard build uses exact for the
// coarse levels, and a checkpoint must not lose them.
func EncodeRange(w io.Writer, n int, levels []Level) error {
	if n < 1 || n > maxRangeDim {
		return fmt.Errorf("codec: range dimension %d outside [1, %d]", n, maxRangeDim)
	}
	if want := chainLen(n); len(levels) != want {
		return fmt.Errorf("codec: %d level sketches for dimension %d, want %d", len(levels), n, want)
	}
	meta := make([]byte, 0, 16)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(n))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(levels)))
	secs := []section{{secRangeMeta, meta}}
	size := n
	for i, l := range levels {
		if l.Desc.N < size {
			return fmt.Errorf("codec: level %d sketch has dimension %d, below level size %d", i, l.Desc.N, size)
		}
		var buf bytes.Buffer
		if err := encodeSketchContainer(&buf, l.Desc, l.Sk); err != nil {
			return fmt.Errorf("codec: level %d: %w", i, err)
		}
		secs = append(secs, section{secNested, buf.Bytes()})
		if size > 1 {
			size = (size + 1) / 2
		}
	}
	return writeContainer(w, KindRange, secs)
}

// DecodeRange reads a range checkpoint, returning the base dimension
// and the restored level sketches with their descriptors, finest
// first. The caller reassembles the stack (the facade wraps each
// level and hands them to rangequery.NewFromLevels).
func DecodeRange(r io.Reader) (int, []Level, error) {
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return 0, nil, err
	}
	if version != 2 || kind != KindRange {
		return 0, nil, wrongKindError(version, kind, "range checkpoint")
	}
	metaLen, err := readSectionHeader(r, secRangeMeta)
	if err != nil {
		return 0, nil, err
	}
	meta, err := readPayload(r, metaLen, 16)
	if err != nil {
		return 0, nil, err
	}
	if len(meta) != 16 {
		return 0, nil, fmt.Errorf("codec: range metadata is %d bytes, want 16", len(meta))
	}
	n := binary.LittleEndian.Uint64(meta)
	levels := binary.LittleEndian.Uint64(meta[8:])
	if n < 1 || n > maxRangeDim {
		return 0, nil, fmt.Errorf("codec: implausible range dimension %d", n)
	}
	if want := uint64(chainLen(int(n))); levels != want {
		return 0, nil, fmt.Errorf("codec: %d levels for dimension %d, want %d", levels, n, want)
	}
	if uint64(nsec) != 1+levels {
		return 0, nil, fmt.Errorf("codec: range container has %d sections for %d levels", nsec, levels)
	}
	out := make([]Level, levels)
	size := int(n)
	for i := range out {
		sk, desc, err := decodeNested(r, decodeSketchContainer)
		if err != nil {
			return 0, nil, fmt.Errorf("codec: level %d: %w", i, err)
		}
		if desc.N < size {
			return 0, nil, fmt.Errorf("codec: level %d sketch has dimension %d, below level size %d", i, desc.N, size)
		}
		out[i] = Level{Desc: desc, Sk: sk}
		if size > 1 {
			size = (size + 1) / 2
		}
	}
	return int(n), out, nil
}

// decodeNested consumes a secNested section and decodes the embedded
// container with decode, enforcing that the container consumes its
// declared framing exactly.
func decodeNested[T any](r io.Reader, decode func(io.Reader) (T, Desc, error)) (T, Desc, error) {
	var zero T
	n, err := readSectionHeader(r, secNested)
	if err != nil {
		return zero, Desc{}, err
	}
	if n > math.MaxInt64 {
		return zero, Desc{}, fmt.Errorf("codec: implausible nested container length %d", n)
	}
	lr := io.LimitReader(r, int64(n))
	v, desc, err := decode(lr)
	if err != nil {
		return zero, Desc{}, err
	}
	var drain [1]byte
	if m, err := lr.Read(drain[:]); m != 0 || err != io.EOF {
		return zero, Desc{}, fmt.Errorf("codec: nested container shorter than its declared %d bytes", n)
	}
	return v, desc, nil
}

// maker builds the replica constructor for a validated descriptor,
// probing it once so a parameter combination the algorithm rejects
// surfaces as an error instead of a panic from the first replica.
func maker(desc Desc, e *registry.Entry) (func() sketch.Sketch, error) {
	if _, err := registry.SafeNew(desc.Algo, desc.Shape()); err != nil {
		return nil, err
	}
	return func() sketch.Sketch {
		return e.MustNew(desc.Shape())
	}, nil
}

// chainLen is the dyadic level count for base dimension n: sizes n,
// ⌈n/2⌉, …, 1.
func chainLen(n int) int {
	c := 1
	for s := n; s > 1; s = (s + 1) / 2 {
		c++
	}
	return c
}

// wrongKindError reports a container of the wrong kind in terms of
// what it actually holds.
func wrongKindError(version int, kind byte, want string) error {
	if version == 1 {
		return fmt.Errorf("codec: v1 payloads carry single sketches, not a %s", want)
	}
	return fmt.Errorf("codec: container holds a %s, not a %s", kindName(kind), want)
}
