package codec

// Delta frames: the wire unit of the delta-shipping distributed
// fabric (internal/distributed). A site's replica set is a
// concurrent.Sharded whose per-shard epochs advance on every write;
// a delta frame carries only the shards whose epoch advanced since
// the last acknowledged hop — the sections of a sharded checkpoint,
// filtered by staleness — so a site whose stream went quiet ships
// nothing at all. Interior aggregation-tree nodes merge child frames
// (linearity: per-shard states sum) and forward one frame upward, so
// the per-edge cost is bounded by the sketch size, not the subtree's
// site count.
//
// Two frame flavors share the layout, distinguished by a flag bit:
//
//   - delta: Entries holds the changed shards only, each with the
//     sender's per-shard epoch, which must advance monotonically on
//     one edge (insert-only per epoch: an epoch is shipped at most
//     once and never regresses inside delta frames).
//   - full: Entries holds every shard — the resynchronization frame a
//     site ships when it rejoins after a restart from checkpoint, and
//     the only frame kind allowed to regress epochs (the receiver
//     resets its tracking wholesale).
//
// Layout (v2 container, KindDelta): a desc section, a delta-meta
// section (flags byte, shard count, entry count, then one
// (shard, epoch) pair per entry), then one state section per entry in
// entry order. Decode validates every count, index, and epoch rule
// before any structure-proportional allocation; garbage errors, it
// never panics.

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/registry"
	"repro/internal/sketch"
)

// deltaFlagFull marks a full-state (resynchronization) frame.
const deltaFlagFull = 1

// deltaMetaFixed is the fixed prefix of a delta-meta payload: flags
// byte + u64 shard count + u64 entry count.
const deltaMetaFixed = 17

// DeltaEntry is one shard section of a delta frame: the shard's
// replica state as of the given epoch.
type DeltaEntry struct {
	Shard int
	Epoch uint64
	// Sk is the shard replica. EncodeDelta serializes its state;
	// DecodeDelta reconstructs it through the registry.
	Sk sketch.Sketch
}

// DeltaFrame is one hop's payload in the delta-shipping fabric.
type DeltaFrame struct {
	Desc Desc
	// Full marks a resynchronization frame: Entries covers every
	// shard and the receiver resets its epoch tracking to the carried
	// values instead of enforcing monotonicity.
	Full bool
	// Shards is the sender's replica-set width; entry shard indices
	// are positions in [0, Shards).
	Shards  int
	Entries []DeltaEntry
}

// deltaEntryRule checks the per-entry invariants shared by encode and
// decode: indices strictly increasing within [0, shards), and — in
// delta frames — a nonzero epoch (epoch 0 means "never written",
// which a changed shard cannot be; full frames carry unwritten shards
// too, so there 0 is legal).
func deltaEntryRule(shard, prevShard int, epoch uint64, shards int, full bool) error {
	if shard < 0 || shard >= shards {
		return fmt.Errorf("codec: delta entry shard %d out of range [0,%d)", shard, shards)
	}
	if shard <= prevShard {
		return fmt.Errorf("codec: delta entry shards must be strictly increasing (%d after %d)", shard, prevShard)
	}
	if !full && epoch == 0 {
		return fmt.Errorf("codec: delta entry for shard %d carries epoch 0", shard)
	}
	return nil
}

// deltaLookup resolves and gates the frame's algorithm: delta frames
// exist to be merged through the tree, so the algorithm must be
// linear, and exact would ship the raw vector.
func deltaLookup(d Desc) (*registry.Entry, error) {
	e, err := d.lookup()
	if err != nil {
		return nil, err
	}
	if !e.Linear {
		return nil, fmt.Errorf("codec: %s is not linear; delta frames cannot be aggregated", e.Name)
	}
	if e.Name == registry.Exact {
		return nil, fmt.Errorf("codec: exact ships the raw vector; delta frames carry sketches only")
	}
	return e, nil
}

// EncodeDelta writes f as a v2 delta-frame container. Entries must be
// sorted by strictly increasing shard index; full frames must cover
// every shard, delta frames must carry nonzero epochs.
func EncodeDelta(w io.Writer, f DeltaFrame) error {
	if _, err := deltaLookup(f.Desc); err != nil {
		return err
	}
	if f.Shards < 1 || f.Shards > MaxShards {
		return fmt.Errorf("codec: implausible delta shard count %d", f.Shards)
	}
	if len(f.Entries) > f.Shards {
		return fmt.Errorf("codec: %d delta entries for %d shards", len(f.Entries), f.Shards)
	}
	if f.Full && len(f.Entries) != f.Shards {
		return fmt.Errorf("codec: full frame carries %d of %d shards", len(f.Entries), f.Shards)
	}
	var flags byte
	if f.Full {
		flags = deltaFlagFull
	}
	meta := make([]byte, 0, deltaMetaFixed+16*len(f.Entries))
	meta = append(meta, flags)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(f.Shards))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(f.Entries)))
	prev := -1
	states := make([]section, 0, len(f.Entries))
	for _, e := range f.Entries {
		if err := deltaEntryRule(e.Shard, prev, e.Epoch, f.Shards, f.Full); err != nil {
			return err
		}
		prev = e.Shard
		meta = binary.LittleEndian.AppendUint64(meta, uint64(e.Shard))
		meta = binary.LittleEndian.AppendUint64(meta, e.Epoch)
		tag, payload, err := captureState(e.Sk)
		if err != nil {
			return err
		}
		if tag == secExact {
			return fmt.Errorf("codec: exact state in a delta frame")
		}
		states = append(states, section{tag, payload})
	}
	secs := append([]section{
		{secDesc, descPayload(f.Desc)},
		{secDeltaMeta, meta},
	}, states...)
	return writeContainer(w, KindDelta, secs)
}

// DecodeDelta reads one delta frame written by EncodeDelta,
// reconstructing every carried shard replica through the registry.
// Trailing bytes after the container are left unread, so frames
// compose on a stream. Hostile input — truncated metadata, duplicated
// or out-of-range shard indices, zero epochs in delta frames, counts
// that disagree with the section count — errors; it never panics.
func DecodeDelta(r io.Reader) (DeltaFrame, error) {
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return DeltaFrame{}, err
	}
	if version != 2 || kind != KindDelta {
		return DeltaFrame{}, wrongKindError(version, kind, "delta frame")
	}
	desc, e, err := readDescSection(r)
	if err != nil {
		return DeltaFrame{}, err
	}
	if _, err := deltaLookup(desc); err != nil {
		return DeltaFrame{}, err
	}
	metaLen, err := readSectionHeader(r, secDeltaMeta)
	if err != nil {
		return DeltaFrame{}, err
	}
	meta, err := readPayload(r, metaLen, deltaMetaFixed+16*MaxShards)
	if err != nil {
		return DeltaFrame{}, err
	}
	if len(meta) < deltaMetaFixed {
		return DeltaFrame{}, fmt.Errorf("codec: delta metadata section truncated (%d bytes)", len(meta))
	}
	flags := meta[0]
	if flags&^byte(deltaFlagFull) != 0 {
		return DeltaFrame{}, fmt.Errorf("codec: unknown delta flags %#x", flags)
	}
	full := flags&deltaFlagFull != 0
	shards := binary.LittleEndian.Uint64(meta[1:])
	count := binary.LittleEndian.Uint64(meta[9:])
	if shards < 1 || shards > MaxShards {
		return DeltaFrame{}, fmt.Errorf("codec: implausible delta shard count %d", shards)
	}
	if count > shards {
		return DeltaFrame{}, fmt.Errorf("codec: %d delta entries for %d shards", count, shards)
	}
	if full && count != shards {
		return DeltaFrame{}, fmt.Errorf("codec: full frame carries %d of %d shards", count, shards)
	}
	if uint64(len(meta)) != deltaMetaFixed+16*count {
		return DeltaFrame{}, fmt.Errorf("codec: delta metadata is %d bytes for %d entries", len(meta), count)
	}
	if uint64(nsec) != 2+count {
		return DeltaFrame{}, fmt.Errorf("codec: delta container has %d sections for %d entries", nsec, count)
	}
	if count*desc.cells(e) > maxCheckpointCells {
		return DeltaFrame{}, fmt.Errorf("codec: delta frame implies %d cells across %d entries, over the %d bound",
			count*desc.cells(e), count, uint64(maxCheckpointCells))
	}
	f := DeltaFrame{Desc: desc, Full: full, Shards: int(shards)}
	f.Entries = make([]DeltaEntry, 0, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		shard := binary.LittleEndian.Uint64(meta[deltaMetaFixed+16*i:])
		epoch := binary.LittleEndian.Uint64(meta[deltaMetaFixed+16*i+8:])
		if shard > uint64(MaxShards) {
			return DeltaFrame{}, fmt.Errorf("codec: delta entry shard %d out of range [0,%d)", shard, shards)
		}
		if err := deltaEntryRule(int(shard), prev, epoch, int(shards), full); err != nil {
			return DeltaFrame{}, err
		}
		prev = int(shard)
		f.Entries = append(f.Entries, DeltaEntry{Shard: int(shard), Epoch: epoch})
	}
	// Read every entry's state bytes, then build replicas: the input
	// pays for the allocations it is about to cause.
	states := make([]section, count)
	for i := range states {
		tag, payload, err := readStateSection(r, desc, e)
		if err != nil {
			return DeltaFrame{}, fmt.Errorf("codec: delta entry %d: %w", i, err)
		}
		states[i] = section{tag, payload}
	}
	for i := range f.Entries {
		sk, err := registry.SafeNew(desc.Algo, desc.Shape())
		if err != nil {
			return DeltaFrame{}, err
		}
		if err := restoreState(sk, states[i].tag, states[i].payload); err != nil {
			return DeltaFrame{}, fmt.Errorf("codec: delta entry %d: %w", i, err)
		}
		f.Entries[i].Sk = sk
	}
	return f, nil
}
