package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/registry"
	"repro/internal/sketch"
)

// This file is the checkpoint-file layer of the v2 format: an aligned
// writer whose state payload starts at an 8-byte-aligned file offset,
// and an mmap-backed opener that serves a sketch straight out of such
// a file — O(1) time-to-first-query, no decode into the heap. The
// aligned layout is an ordinary 3-section v2 sketch container (desc,
// pad, state), so streams and older readers that understand the pad
// section decode it normally; only the mmap opener *requires* the
// alignment.

// Typed file/mmap errors.
var (
	// ErrMmap wraps every failure to serve a checkpoint file by mmap:
	// unreadable file, malformed or misaligned container, a state
	// section that does not span the rest of the file, or an algorithm
	// without mmap capability. Rewrite the file with WriteSketchFile to
	// get the aligned layout.
	ErrMmap = errors.New("codec: cannot serve checkpoint file by mmap")
	// ErrMmapUnsupported is returned on platforms without memory
	// mapping support (the non-unix build).
	ErrMmapUnsupported = errors.New("codec: mmap is not supported on this platform")
)

// alignedSketchSections builds the 3-section aligned container: the
// pad section sizes itself so the state payload begins at an 8-aligned
// offset (header 9 + three section headers 9·3 + desc payload + pad).
func alignedSketchSections(desc Desc, tag byte, payload []byte) []section {
	dlen := len(descPayload(desc))
	padLen := (8 - (36+dlen)%8) % 8
	return []section{
		{secDesc, descPayload(desc)},
		{secPad, make([]byte, padLen)},
		{tag, payload},
	}
}

// EncodeSketchAligned writes one sketch as a v2 container whose state
// payload starts at an 8-byte-aligned offset from the start of the
// stream — the layout OpenMmapSketch requires. Decoders treat it as a
// normal sketch container (the pad section is skipped).
func EncodeSketchAligned(w io.Writer, desc Desc, sk sketch.Sketch) error {
	tag, payload, err := captureState(sk)
	if err != nil {
		return err
	}
	if tag == secExact {
		return fmt.Errorf("codec: exact sketches are not serializable as standalone containers")
	}
	return writeContainer(w, KindSketch, alignedSketchSections(desc, tag, payload))
}

// WriteSketchFile writes the sketch to path in the aligned container
// layout, so OpenMmapSketch can later serve it in place. The write
// goes through a temp file + rename, so a crash never leaves a
// half-written checkpoint at path.
func WriteSketchFile(path string, desc Desc, sk sketch.Sketch) error {
	f, err := os.CreateTemp(dirOf(path), ".sketch-*")
	if err != nil {
		return fmt.Errorf("codec: creating checkpoint file: %w", err)
	}
	tmp := f.Name()
	if err := EncodeSketchAligned(f, desc, sk); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: writing checkpoint file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: publishing checkpoint file: %w", err)
	}
	return nil
}

// dirOf is filepath.Dir without the import: the temp file must live on
// the same filesystem as path for the rename to be atomic.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			if i == 0 {
				return string(path[0])
			}
			return path[:i]
		}
	}
	return "."
}

// parseMappedSketch validates an aligned sketch container sitting in
// mapped memory and returns its descriptor, registry entry, and the
// in-place state payload. Every slice is bounds-checked first — a
// hostile or truncated file must error, never panic — and nothing is
// copied: the returned payload aliases data.
func parseMappedSketch(data []byte) (Desc, *registry.Entry, []byte, error) {
	if len(data) < 9 {
		return Desc{}, nil, nil, fmt.Errorf("%w: file of %d bytes is shorter than a container header", ErrMmap, len(data))
	}
	if string(data[:4]) != MagicV2 {
		return Desc{}, nil, nil, fmt.Errorf("%w: bad magic %q (v1 payloads cannot be mapped; rewrite with WriteSketchFile)", ErrMmap, data[:4])
	}
	if data[4] != KindSketch {
		return Desc{}, nil, nil, fmt.Errorf("%w: container holds a %s, not a single sketch", ErrMmap, kindName(data[4]))
	}
	if nsec := binary.LittleEndian.Uint32(data[5:9]); nsec != 3 {
		return Desc{}, nil, nil, fmt.Errorf("%w: container has %d sections, want the 3-section aligned layout (rewrite with WriteSketchFile)", ErrMmap, nsec)
	}

	// Desc section.
	off := 9
	tag, n, err := mappedSectionHeader(data, off)
	if err != nil {
		return Desc{}, nil, nil, err
	}
	if tag != secDesc {
		return Desc{}, nil, nil, fmt.Errorf("%w: section tag %d where descriptor expected", ErrMmap, tag)
	}
	if n > 2+maxNameLen+33 {
		return Desc{}, nil, nil, fmt.Errorf("%w: descriptor section of %d bytes", ErrMmap, n)
	}
	payload := data[off+9 : off+9+int(n)]
	if len(payload) < 2 {
		return Desc{}, nil, nil, fmt.Errorf("%w: descriptor section truncated", ErrMmap)
	}
	// As in readDescSection, an optional trailing byte carries the hash
	// family; its absence means pairwise.
	nameLen := int(binary.LittleEndian.Uint16(payload))
	if nameLen > maxNameLen || (len(payload) != 2+nameLen+32 && len(payload) != 2+nameLen+33) {
		return Desc{}, nil, nil, fmt.Errorf("%w: malformed descriptor section (%d bytes, name length %d)", ErrMmap, len(payload), nameLen)
	}
	nums := payload[2+nameLen:]
	desc := Desc{
		Algo: string(payload[2 : 2+nameLen]),
		N:    int(binary.LittleEndian.Uint64(nums)),
		S:    int(binary.LittleEndian.Uint64(nums[8:])),
		D:    int(binary.LittleEndian.Uint64(nums[16:])),
		Seed: int64(binary.LittleEndian.Uint64(nums[24:])),
	}
	if len(nums) == 33 {
		desc.Hash = sketch.HashKind(nums[32])
	}
	e, err := desc.lookup()
	if err != nil {
		return Desc{}, nil, nil, fmt.Errorf("%w: %w", ErrMmap, err)
	}
	off += 9 + int(n)

	// Pad section.
	tag, n, err = mappedSectionHeader(data, off)
	if err != nil {
		return Desc{}, nil, nil, err
	}
	if tag != secPad || n >= maxPad {
		return Desc{}, nil, nil, fmt.Errorf("%w: section tag %d length %d where pad expected", ErrMmap, tag, n)
	}
	off += 9 + int(n)

	// State section: must span exactly the rest of the file, start
	// 8-aligned, and sit under the shape bound.
	tag, n, err = mappedSectionHeader(data, off)
	if err != nil {
		return Desc{}, nil, nil, err
	}
	if tag != secState {
		return Desc{}, nil, nil, fmt.Errorf("%w: state section tag %d cannot be served in place", ErrMmap, tag)
	}
	stateOff := off + 9
	if uint64(len(data)-stateOff) != n {
		return Desc{}, nil, nil, fmt.Errorf("%w: state section claims %d bytes, file holds %d", ErrMmap, n, len(data)-stateOff)
	}
	if n > stateBound(desc, e) {
		return Desc{}, nil, nil, fmt.Errorf("%w: state section length %d exceeds shape bound %d", ErrMmap, n, stateBound(desc, e))
	}
	if stateOff%8 != 0 {
		return Desc{}, nil, nil, fmt.Errorf("%w: state payload at file offset %d is not 8-aligned (rewrite with WriteSketchFile)", ErrMmap, stateOff)
	}
	return desc, e, data[stateOff:], nil
}

// mappedSectionHeader reads the section header at off with bounds
// checks (tag byte + u64 length), for the in-place parser.
func mappedSectionHeader(data []byte, off int) (byte, uint64, error) {
	if off < 0 || len(data)-off < 9 {
		return 0, 0, fmt.Errorf("%w: truncated section header at offset %d", ErrMmap, off)
	}
	tag := data[off]
	n := binary.LittleEndian.Uint64(data[off+1 : off+9])
	if n > uint64(len(data)-off-9) {
		return 0, 0, fmt.Errorf("%w: section at offset %d claims %d bytes, file holds %d", ErrMmap, off, n, len(data)-off-9)
	}
	return tag, n, nil
}

// OpenMmapSketch maps the checkpoint file at path and constructs its
// sketch directly over the mapped state — the counters are never
// decoded into the heap, so time-to-first-query is O(1) in the sketch
// size. The result is read-only: updates and merges return (or panic
// with) sketch.ErrReadOnlyPlane. close unmaps the file; the sketch
// must not be used after close returns.
//
// The file must be in the aligned layout WriteSketchFile produces and
// hold an algorithm with mmap capability; anything else errors (wrap
// target ErrMmap) without mapping left behind.
func OpenMmapSketch(path string) (sk sketch.Sketch, desc Desc, close func() error, err error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, Desc{}, nil, err
	}
	defer func() {
		if err != nil {
			unmap()
		}
	}()
	desc, _, payload, err := parseMappedSketch(data)
	if err != nil {
		return nil, Desc{}, nil, err
	}
	sk, err = registry.SafeNewBackend(desc.Algo, desc.Shape(),
		sketch.Backend{Kind: sketch.BackendMmap, Mapped: payload})
	if err != nil {
		return nil, Desc{}, nil, fmt.Errorf("%w: %w", ErrMmap, err)
	}
	desc.Backend = sketch.BackendMmap
	return sk, desc, unmap, nil
}

// DecodeSketchBackend is DecodeSketch constructing the sketch on the
// given counter-plane backend: dense (the zero Backend, identical to
// DecodeSketch) or compressed (the cell stream is re-inserted into a
// Counter Braids plane). Mmap restores need a file, not a stream — use
// OpenMmapSketch.
func DecodeSketchBackend(r io.Reader, be sketch.Backend) (sketch.Sketch, Desc, error) {
	if be.Kind == sketch.BackendMmap {
		return nil, Desc{}, fmt.Errorf("%w: a stream has no mappable bytes; use OpenMmapSketch on a checkpoint file", ErrMmap)
	}
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if version == 1 {
		if be.Kind != sketch.BackendDense {
			return nil, Desc{}, fmt.Errorf("codec: v1 payloads restore to the dense backend only")
		}
		return decodeV1Body(r)
	}
	if kind != KindSketch {
		return nil, Desc{}, fmt.Errorf("codec: container holds a %s, not a single sketch", kindName(kind))
	}
	return decodeSketchSectionsBackend(r, nsec, false, be)
}
